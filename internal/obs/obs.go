// Package obs is the pipeline-wide observability layer: a Tracer of
// hierarchical spans (wall time plus allocation deltas sampled from
// runtime/metrics) and a registry of named counters and gauges. Every
// stage of the H-DivExplorer pipeline — CSV parsing, tree discretization,
// universe construction, mining, ranking — reports into an optional
// *Tracer, so regressions can be attributed per stage and the paper's
// pruning claims (§V-C) validated by counter instead of by stopwatch.
//
// The whole API is nil-safe: a nil *Tracer, *Span or *Counter accepts
// every call as a no-op, so instrumented code needs no "if tracing"
// branches and a disabled pipeline pays only a nil check. All types are
// safe for concurrent use; Counter.Add is a single atomic add, suitable
// for worker goroutines.
//
// A Tracer is consumed by taking a Snapshot, an immutable Trace that
// marshals to JSON (for BENCH_*.json trajectories and -trace-json) and
// renders as an indented span tree (for -trace).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans, counters and gauges for one pipeline run. The
// zero value is not useful; construct with New. A nil *Tracer disables
// all collection at near-zero cost.
type Tracer struct {
	mu         sync.Mutex
	id         string
	start      time.Time
	spans      []*Span
	counters   map[string]*Counter
	gauges     map[string]float64
	histograms map[string]*Histogram
}

// New returns an empty tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{
		start:      time.Now(),
		counters:   map[string]*Counter{},
		gauges:     map[string]float64{},
		histograms: map[string]*Histogram{},
	}
}

// Enabled reports whether the tracer is collecting (i.e. non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetID labels the tracer with a correlation (request) ID; snapshots
// carry it so every span of a trace can be tied back to the request that
// produced it. No-op on nil.
func (t *Tracer) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// Reset discards all recorded spans and restarts the tracer's clock,
// keeping counters, gauges and histograms (which are cumulative by
// nature). Long-lived tracers — one per daemon process — call it between
// requests to keep span memory bounded; per-request child tracers are the
// preferred alternative. Spans still open when Reset is called are
// detached: their End becomes a harmless no-op on the old backing array.
// No-op on nil.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.start = time.Now()
	t.mu.Unlock()
}

// Absorb folds a finished trace's cumulative metrics into the tracer:
// counter values add, gauges merge by maximum (a lifetime high-water
// view), and histograms with identical bounds merge bin-wise (histograms
// whose bounds differ are absorbed only if the name is new). Spans are
// deliberately not absorbed — they describe one run, and copying them
// would reintroduce the unbounded span growth per-request tracers exist
// to avoid. No-op on a nil tracer or nil trace.
func (t *Tracer) Absorb(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	for name, v := range tr.Counters {
		t.Counter(name).Add(v)
	}
	for name, v := range tr.Gauges {
		t.MaxGauge(name, v)
	}
	for name, rec := range tr.Histograms {
		h := t.Histogram(name, rec.Bounds)
		if len(h.bounds) != len(rec.Bounds) {
			continue
		}
		match := true
		for i, b := range h.bounds {
			if b != rec.Bounds[i] {
				match = false
				break
			}
		}
		if match {
			h.add(rec)
		}
	}
}

// Span is one timed region of the pipeline. Spans form a tree: children
// are started from their parent with Span.Start. A span is finished with
// End, which records the wall time and the heap-allocation deltas
// (AllocSample) since the span started. Deltas are process-global, so
// spans running concurrently attribute each other's allocations; treat
// Bytes and Allocs as exact only for serial regions.
type Span struct {
	t      *Tracer
	id     int
	parent int // -1 for top-level spans
	name   string

	start        time.Time
	startBytes   uint64
	startMallocs uint64

	mu      sync.Mutex
	dur     time.Duration
	bytes   int64
	mallocs int64
	ended   bool
}

// newSpan registers a span under the given parent id. Caller holds no
// locks.
func (t *Tracer) newSpan(parent int, name string) *Span {
	bytes, objects := AllocSample()
	s := &Span{
		t:            t,
		parent:       parent,
		name:         name,
		start:        time.Now(),
		startBytes:   bytes,
		startMallocs: objects,
	}
	t.mu.Lock()
	s.id = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Start opens a top-level span. Returns nil (which is itself usable) on a
// nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(-1, name)
}

// Start opens a child span. Nil-safe: a nil span yields a nil child.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.id, name)
}

// End finishes the span, recording duration and allocation deltas. A
// second End (and End on nil) is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	bytes, objects := AllocSample()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.bytes = int64(bytes - s.startBytes)
	s.mallocs = int64(objects - s.startMallocs)
}

// Tracer returns the tracer that owns the span (nil for a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.t
}

// Counter is shorthand for s.Tracer().Counter(name).
func (s *Span) Counter(name string) *Counter { return s.Tracer().Counter(name) }

// Counter is a named monotonically adjusted int64, safe for concurrent
// use. A nil *Counter ignores Add and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a usable no-op counter) on a nil tracer. Hot loops should hoist
// the lookup out of the loop and call Add on the result.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{}
		t.counters[name] = c
	}
	return c
}

// SetGauge records a point-in-time value under the given name,
// overwriting any previous value. No-op on nil.
func (t *Tracer) SetGauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.gauges[name] = v
	t.mu.Unlock()
}

// MaxGauge records v only if it exceeds the current value of the gauge
// (useful for high-water marks such as recursion depth). No-op on nil.
func (t *Tracer) MaxGauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if cur, ok := t.gauges[name]; !ok || v > cur {
		t.gauges[name] = v
	}
	t.mu.Unlock()
}

// SpanRecord is the immutable snapshot of one span.
type SpanRecord struct {
	// ID is the span's index in creation order; Parent is the ID of the
	// enclosing span, -1 for top-level spans.
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Name   string `json:"name"`
	// StartNS is the span's start offset from tracer creation; DurNS its
	// wall-clock duration. Both in nanoseconds.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Bytes and Allocs are process-global heap-allocation deltas
	// (cumulative bytes, object count) over the span; approximate under
	// concurrency.
	Bytes  int64 `json:"bytes"`
	Allocs int64 `json:"allocs"`
	// Unfinished marks spans still open when the snapshot was taken;
	// their DurNS is the time elapsed so far.
	Unfinished bool `json:"unfinished,omitempty"`
}

// Duration returns the span's wall time.
func (r *SpanRecord) Duration() time.Duration { return time.Duration(r.DurNS) }

// Trace is an immutable snapshot of a tracer: all spans in creation
// order plus the counter, gauge and histogram registries. It marshals
// directly to the -trace-json format.
type Trace struct {
	// ID is the correlation (request) ID set via Tracer.SetID, empty for
	// untagged traces.
	ID         string                     `json:"request_id,omitempty"`
	Spans      []SpanRecord               `json:"spans"`
	Counters   map[string]int64           `json:"counters,omitempty"`
	Gauges     map[string]float64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramRecord `json:"histograms,omitempty"`
}

// Snapshot captures the tracer's current state. Unfinished spans are
// included with their elapsed-so-far duration and marked Unfinished.
// Returns nil on a nil tracer.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	counters := make(map[string]int64, len(t.counters))
	for k, c := range t.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]float64, len(t.gauges))
	for k, v := range t.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]HistogramRecord, len(t.histograms))
	for k, h := range t.histograms {
		histograms[k] = h.snapshot()
	}
	id := t.id
	start := t.start
	t.mu.Unlock()

	tr := &Trace{ID: id, Counters: counters, Gauges: gauges, Histograms: histograms}
	if len(counters) == 0 {
		tr.Counters = nil
	}
	if len(gauges) == 0 {
		tr.Gauges = nil
	}
	if len(histograms) == 0 {
		tr.Histograms = nil
	}
	tr.Spans = make([]SpanRecord, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		rec := SpanRecord{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartNS: s.start.Sub(start).Nanoseconds(),
			DurNS:   s.dur.Nanoseconds(),
			Bytes:   s.bytes,
			Allocs:  s.mallocs,
		}
		if !s.ended {
			rec.DurNS = time.Since(s.start).Nanoseconds()
			rec.Unfinished = true
		}
		s.mu.Unlock()
		tr.Spans[i] = rec
	}
	return tr
}

// Span returns the first span record with the given name, or nil.
func (tr *Trace) Span(name string) *SpanRecord {
	if tr == nil {
		return nil
	}
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// Counter returns the value of a named counter (0 if absent or nil).
func (tr *Trace) Counter(name string) int64 {
	if tr == nil {
		return 0
	}
	return tr.Counters[name]
}

// WriteJSON writes the trace as indented JSON followed by a newline.
func (tr *Trace) WriteJSON(w io.Writer) error {
	raw, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// ReadJSON parses a trace snapshot previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Tree renders the spans as an indented tree with duration, bytes and
// allocation columns, followed by sorted counters and gauges — the
// -trace human-readable report.
func (tr *Trace) Tree() string {
	var b strings.Builder
	children := map[int][]int{}
	for i := range tr.Spans {
		children[tr.Spans[i].Parent] = append(children[tr.Spans[i].Parent], i)
	}
	var walk func(id, depth int)
	walk = func(id, depth int) {
		s := &tr.Spans[id]
		mark := ""
		if s.Unfinished {
			mark = " (unfinished)"
		}
		fmt.Fprintf(&b, "%-44s %10s %10s %9d allocs%s\n",
			strings.Repeat("  ", depth)+s.Name,
			fmtDuration(s.Duration()), fmtBytes(s.Bytes), s.Allocs, mark)
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, id := range children[-1] {
		walk(id, 0)
	}
	if len(tr.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(tr.Counters) {
			fmt.Fprintf(&b, "  %-42s %12d\n", k, tr.Counters[k])
		}
	}
	if len(tr.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range sortedKeys(tr.Gauges) {
			fmt.Fprintf(&b, "  %-42s %12g\n", k, tr.Gauges[k])
		}
	}
	if len(tr.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, k := range sortedKeys(tr.Histograms) {
			h := tr.Histograms[k]
			fmt.Fprintf(&b, "  %-42s n=%d sum=%g p50=%g p99=%g\n",
				k, h.Count, h.Sum, h.Quantile(0.50), h.Quantile(0.99))
		}
	}
	return b.String()
}

// WritePrometheus renders the trace's counters, gauges and histograms in
// the Prometheus text exposition format, the payload served by the HTTP
// server's GET /metrics. Names are sanitized to [a-zA-Z0-9_:]; each
// exported metric gets exactly one `# TYPE` (and, when registered in
// MetricHelp, one `# HELP`) line even when several dotted names sanitize
// to the same Prometheus name: colliding counters merge by sum, while a
// gauge or histogram whose sanitized name was already emitted is dropped
// (first in sorted-key order wins). Histograms export the standard
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Spans
// are not exported — they describe one run, not a monotonic series.
func (tr *Trace) WritePrometheus(w io.Writer) error {
	return tr.writeExposition(w, false)
}

// WriteOpenMetrics renders the same registries in the OpenMetrics text
// format: counter samples carry the `_total` suffix, and histogram
// buckets with a recorded exemplar append the `# {request_id="..."} v ts`
// exemplar clause. The caller owns the trailing `# EOF` line (the server
// appends runtime-metrics families first).
func (tr *Trace) WriteOpenMetrics(w io.Writer) error {
	return tr.writeExposition(w, true)
}

func (tr *Trace) writeExposition(w io.Writer, openMetrics bool) error {
	emitted := map[string]bool{}
	header := func(name, typ string) error {
		if help, ok := MetricHelp[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, promEscapeHelp(help)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}

	// Counters: merge sanitization collisions by summing (both series are
	// monotonic, so the sum is too).
	merged := map[string]int64{}
	for k, v := range tr.Counters {
		merged[promName(k)] += v
	}
	for _, name := range sortedKeys(merged) {
		if err := header(name, "counter"); err != nil {
			return err
		}
		sample := name
		if openMetrics {
			sample += "_total"
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", sample, merged[name]); err != nil {
			return err
		}
		emitted[name] = true
	}

	for _, k := range sortedKeys(tr.Gauges) {
		name := promName(k)
		if emitted[name] {
			continue
		}
		emitted[name] = true
		if err := header(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, promFloat(tr.Gauges[k])); err != nil {
			return err
		}
	}

	for _, k := range sortedKeys(tr.Histograms) {
		name := promName(k)
		if emitted[name] {
			continue
		}
		emitted[name] = true
		if err := header(name, "histogram"); err != nil {
			return err
		}
		rec := tr.Histograms[k]
		exemplar := func(i int) string {
			if !openMetrics || i < 0 || i >= len(rec.Exemplars) || rec.Exemplars[i] == nil {
				return ""
			}
			ex := rec.Exemplars[i]
			return fmt.Sprintf(" # {request_id=%q} %s %s",
				promEscapeHelp(ex.Label), promFloat(ex.Value),
				promFloat(float64(ex.UnixNano)/1e9))
		}
		var cum int64
		for i, b := range rec.Bounds {
			cum += rec.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", name, promFloat(b), cum, exemplar(i)); err != nil {
				return err
			}
		}
		if len(rec.Counts) > 0 {
			cum += rec.Counts[len(rec.Counts)-1]
		}
		// The +Inf cumulative bucket and _count must agree exactly, so both
		// come from the same bin total (rec.Count may lag under concurrent
		// Observe between the snapshot's bin and counter reads).
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, cum, exemplar(len(rec.Counts)-1)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(rec.Sum), name, cum); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, no exponent for ordinary magnitudes.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscapeHelp escapes a HELP string per the exposition format:
// backslashes and newlines only.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promName maps a dotted metric name onto the Prometheus charset,
// replacing every character outside [a-zA-Z0-9_:] with an underscore and
// prefixing a leading digit.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
