package dataset

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
)

// Versioned wraps a table in an epoch-versioned lifecycle: rows may be
// appended after construction, each successful append bumping a monotonic
// epoch counter, while every snapshot ever handed out stays immutable.
//
// The concurrency contract is the frozen-prefix invariant: rows [0, n) of
// epoch e are never rewritten by any later epoch. Canonical column storage
// grows by amortized append; snapshots are built from capacity-clamped
// sub-slices, so a writer extending the backing array past a snapshot's
// length is invisible to that snapshot's readers. Categorical dictionaries
// are append-only for the same reason: a level keeps its code forever, so
// items bound to an old epoch's codes remain valid on every later one.
//
// Appends are atomic: a batch is fully validated against the schema before
// any column is touched, and the epoch advances only after every column
// has grown. Concurrent Snapshot/Append calls are safe; Append callers are
// serialized.
type Versioned struct {
	mu    sync.Mutex
	epoch uint64
	cols  []vcol
	nrows int
	snap  *Table // cached snapshot of the current epoch
}

// vcol is the canonical growable storage of one column.
type vcol struct {
	field  Field
	floats []float64
	codes  []int
	levels []string
	index  map[string]int // level name -> code, mirrors levels
}

// NewVersioned wraps t as epoch 1 of a versioned dataset. Column storage
// is copied, so the source table is unaffected by later appends.
func NewVersioned(t *Table) *Versioned {
	v := &Versioned{epoch: 1, nrows: t.nrows}
	for _, c := range t.cols {
		vc := vcol{field: c.field}
		if c.field.Kind == Continuous {
			vc.floats = append([]float64(nil), c.floats...)
		} else {
			vc.codes = append([]int(nil), c.codes...)
			vc.levels = append([]string(nil), c.levels...)
			vc.index = make(map[string]int, len(c.levels))
			for i, l := range c.levels {
				vc.index[l] = i
			}
		}
		v.cols = append(v.cols, vc)
	}
	return v
}

// Epoch returns the current epoch (1 for the as-loaded table, +1 per
// successful append).
func (v *Versioned) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

// NumRows returns the current row count.
func (v *Versioned) NumRows() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.nrows
}

// Fields returns the schema in column order.
func (v *Versioned) Fields() []Field {
	out := make([]Field, len(v.cols))
	for i := range v.cols {
		out[i] = v.cols[i].field
	}
	return out
}

// Snapshot returns an immutable table view of the current epoch together
// with its epoch number. The table shares storage with the canonical
// columns through capacity-clamped slices, so building one is O(columns),
// and it remains valid (and constant) however many appends follow.
func (v *Versioned) Snapshot() (*Table, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.snap == nil {
		b := NewBuilder()
		for i := range v.cols {
			c := &v.cols[i]
			if c.field.Kind == Continuous {
				b.AddFloat(c.field.Name, c.floats[:v.nrows:v.nrows])
			} else {
				nl := len(c.levels)
				b.AddCategoricalCodes(c.field.Name, c.codes[:v.nrows:v.nrows], c.levels[:nl:nl])
			}
		}
		v.snap = b.MustBuild()
	}
	return v.snap, v.epoch
}

// Batch is a parsed, schema-checked set of rows to append: per column of
// the schema, the column's new values in row order. Build one with
// ParseBatch (the HTTP body format) or assemble it in code for tests.
type Batch struct {
	// Floats holds the new values of every continuous column.
	Floats map[string][]float64
	// Levels holds the new level names of every categorical column.
	Levels map[string][]string
	// N is the number of rows in the batch.
	N int
}

// batchWire is the JSON wire format of an append request body:
//
//	{"columns": ["age", "sex"], "rows": [[41, "male"], [null, "female"]]}
//
// Columns must name every schema column exactly once (any order); nulls in
// continuous positions become NaN (a missing value).
type batchWire struct {
	Columns []string            `json:"columns"`
	Rows    [][]json.RawMessage `json:"rows"`
}

// ParseBatch decodes and validates an append body against a schema. It
// touches no shared state: a parse error leaves nothing half-applied, so
// append atomicity reduces to Append's own all-or-nothing contract.
func ParseBatch(data []byte, fields []Field) (*Batch, error) {
	var w batchWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("dataset: invalid append body: %w", err)
	}
	if len(w.Rows) == 0 {
		return nil, fmt.Errorf("dataset: append batch has no rows")
	}
	byName := make(map[string]int, len(fields))
	for i, f := range fields {
		byName[f.Name] = i
	}
	colOf := make([]int, len(w.Columns)) // batch position -> schema index
	seen := make([]bool, len(fields))
	for i, name := range w.Columns {
		fi, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("dataset: append names unknown column %q", name)
		}
		if seen[fi] {
			return nil, fmt.Errorf("dataset: append names column %q twice", name)
		}
		seen[fi] = true
		colOf[i] = fi
	}
	for i, f := range fields {
		if !seen[i] {
			return nil, fmt.Errorf("dataset: append is missing column %q", f.Name)
		}
	}
	b := &Batch{
		Floats: map[string][]float64{},
		Levels: map[string][]string{},
		N:      len(w.Rows),
	}
	for ri, row := range w.Rows {
		if len(row) != len(w.Columns) {
			return nil, fmt.Errorf("dataset: append row %d has %d values, want %d", ri, len(row), len(w.Columns))
		}
		for ci, raw := range row {
			f := fields[colOf[ci]]
			if f.Kind == Continuous {
				val := math.NaN()
				if string(raw) != "null" {
					if err := json.Unmarshal(raw, &val); err != nil {
						return nil, fmt.Errorf("dataset: append row %d, column %q: want a number or null: %v", ri, f.Name, err)
					}
				}
				b.Floats[f.Name] = append(b.Floats[f.Name], val)
			} else {
				var s string
				if err := json.Unmarshal(raw, &s); err != nil {
					return nil, fmt.Errorf("dataset: append row %d, column %q: want a string: %v", ri, f.Name, err)
				}
				b.Levels[f.Name] = append(b.Levels[f.Name], s)
			}
		}
	}
	return b, nil
}

// validate checks a batch against the schema without mutating anything.
func (v *Versioned) validate(b *Batch) error {
	if b == nil || b.N <= 0 {
		return fmt.Errorf("dataset: empty append batch")
	}
	for i := range v.cols {
		c := &v.cols[i]
		if c.field.Kind == Continuous {
			if got := len(b.Floats[c.field.Name]); got != b.N {
				return fmt.Errorf("dataset: append column %q has %d values, want %d", c.field.Name, got, b.N)
			}
		} else {
			if got := len(b.Levels[c.field.Name]); got != b.N {
				return fmt.Errorf("dataset: append column %q has %d values, want %d", c.field.Name, got, b.N)
			}
		}
	}
	return nil
}

// Append grows the dataset by one batch and returns the new epoch and
// total row count. The append is atomic: validation happens up front, and
// the epoch (with the snapshot rows it exposes) advances only after every
// column has grown. Unknown categorical level names extend the column's
// dictionary append-only; existing codes are never reassigned.
func (v *Versioned) Append(b *Batch) (epoch uint64, total int, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.validate(b); err != nil {
		return v.epoch, v.nrows, err
	}
	v.applyLocked(b)
	return v.epoch, v.nrows, nil
}

// applyLocked grows every column by the (already validated) batch and
// advances the epoch. Callers hold v.mu.
func (v *Versioned) applyLocked(b *Batch) {
	for i := range v.cols {
		c := &v.cols[i]
		if c.field.Kind == Continuous {
			c.floats = append(c.floats, b.Floats[c.field.Name]...)
			continue
		}
		for _, name := range b.Levels[c.field.Name] {
			code, ok := c.index[name]
			if !ok {
				code = len(c.levels)
				c.levels = append(c.levels, name)
				c.index[name] = code
			}
			c.codes = append(c.codes, code)
		}
	}
	v.nrows += b.N
	v.epoch++
	v.snap = nil
}

// NewLevels reports whether the batch introduces categorical level names
// absent from the current dictionaries — the trigger that forces a full
// re-discretization, since hierarchies built on the old dictionary carry
// no items for the new levels. Read-only; callable before Append.
func (v *Versioned) NewLevels(b *Batch) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := range v.cols {
		c := &v.cols[i]
		if c.field.Kind != Categorical {
			continue
		}
		for _, name := range b.Levels[c.field.Name] {
			if _, ok := c.index[name]; !ok {
				return true
			}
		}
	}
	return false
}
