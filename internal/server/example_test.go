package server_test

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	hdiv "repro"
	"repro/internal/server"
)

// Example starts the exploration service on an httptest server and runs
// one exploration over a small dataset with a planted anomaly: rows with
// x > 80 are always mispredicted, so the top subgroup is the deepest
// frequent interval inside that tail.
func Example() {
	n := 600
	x := make([]float64, n)
	y := make([]string, n)
	p := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 100)
		y[i] = "false"
		if i%2 == 0 {
			y[i] = "true"
		}
		p[i] = y[i]
		if x[i] > 80 { // plant the anomaly: mispredict the tail
			if p[i] == "true" {
				p[i] = "false"
			} else {
				p[i] = "true"
			}
		}
	}
	tab := hdiv.NewTableBuilder().
		AddFloat("x", x).
		AddCategorical("y", y).
		AddCategorical("p", p).
		MustBuild()

	h, err := server.New(server.Config{
		Datasets: []server.DatasetConfig{{Name: "anomaly", Table: tab}},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(`{
		"dataset": "anomaly",
		"stat": "error", "actual": "y", "predicted": "p",
		"s": 0.05, "st": 0.1,
		"top": 1, "format": "csv"
	}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("status:", resp.Status)
	fmt.Print(string(body))

	// Output:
	// status: 200 OK
	// itemset,support,count,statistic,divergence,t,p_value
	// x>80,0.19,114,1,0.81,50.53346988825692,0
}
