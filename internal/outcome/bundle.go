package outcome

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/engine"
)

// AccShard returns the engine accumulator of the subgroup rows falling in
// shard s of the plan — the per-shard view of MomentsOf plus the support,
// ⊥ and (for boolean outcomes) positive/negative splits. rows may be dense
// or compressed.
func (o *Outcome) AccShard(p engine.Plan, s int, rows bitvec.Set) engine.Acc {
	return engine.Accumulate(p, s, rows, o.Valid, o.Values, o.Boolean)
}

// AccOf merges the per-shard accumulators of every shard of the plan in
// ascending order. For boolean (and any integral-valued) outcomes the
// result is bit-identical to a single unsharded pass.
func (o *Outcome) AccOf(p engine.Plan, rows bitvec.Set) engine.Acc {
	return engine.AccumulateAll(p, rows, o.Valid, o.Values, o.Boolean)
}

// Bundle is an ordered set of outcome functions evaluated together in one
// mining pass. All outcomes must cover the same rows; the first outcome is
// the primary: it determines item polarities (and, upstream, the
// discretization) and therefore the itemset lattice the whole bundle
// shares.
type Bundle struct {
	outs []*Outcome
}

// NewBundle validates and assembles a bundle. At least one outcome is
// required and all outcomes must have the same length.
func NewBundle(outs ...*Outcome) (*Bundle, error) {
	if len(outs) == 0 {
		return nil, fmt.Errorf("outcome: empty bundle")
	}
	for i, o := range outs {
		if o == nil {
			return nil, fmt.Errorf("outcome: nil outcome at bundle position %d", i)
		}
		if o.Len() != outs[0].Len() {
			return nil, fmt.Errorf("outcome: bundle outcome %q has %d rows, primary %q has %d",
				o.Name, o.Len(), outs[0].Name, outs[0].Len())
		}
	}
	return &Bundle{outs: append([]*Outcome(nil), outs...)}, nil
}

// Single wraps one outcome as a bundle of one.
func Single(o *Outcome) *Bundle { return &Bundle{outs: []*Outcome{o}} }

// Len returns the number of outcomes in the bundle.
func (b *Bundle) Len() int { return len(b.outs) }

// Primary returns the lattice-determining first outcome.
func (b *Bundle) Primary() *Outcome { return b.outs[0] }

// At returns the k-th outcome.
func (b *Bundle) At(k int) *Outcome { return b.outs[k] }

// Outcomes returns the outcomes in order (shared slice; do not mutate).
func (b *Bundle) Outcomes() []*Outcome { return b.outs }

// Names returns the outcome names in order.
func (b *Bundle) Names() []string {
	names := make([]string, len(b.outs))
	for i, o := range b.outs {
		names[i] = o.Name
	}
	return names
}
