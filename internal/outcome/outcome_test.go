package outcome

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func TestFalsePositiveRate(t *testing.T) {
	//            TN     FP    (pos: ⊥)  FP     TN
	actual := []bool{false, false, true, false, false}
	pred := []bool{false, true, true, true, false}
	o := FalsePositiveRate(actual, pred)
	if o.Name != "FPR" {
		t.Errorf("Name = %q", o.Name)
	}
	if !o.Boolean {
		t.Error("FPR should be boolean")
	}
	if o.Valid.Count() != 4 {
		t.Fatalf("valid = %d, want 4 (actual negatives)", o.Valid.Count())
	}
	if got := o.GlobalMean(); got != 0.5 {
		t.Errorf("GlobalMean = %v, want 0.5 (2 FP / 4 neg)", got)
	}
	// Subgroup of rows {1,3}: both FP → f=1, Δ=0.5.
	rows := bitvec.FromIndices(5, []int{1, 3})
	if got := o.StatOf(rows); got != 1 {
		t.Errorf("StatOf = %v, want 1", got)
	}
	if got := o.DivergenceOf(rows); got != 0.5 {
		t.Errorf("DivergenceOf = %v, want 0.5", got)
	}
}

func TestFalseNegativeRate(t *testing.T) {
	actual := []bool{true, true, true, false}
	pred := []bool{false, true, false, false}
	o := FalseNegativeRate(actual, pred)
	if o.Valid.Count() != 3 {
		t.Fatalf("valid = %d, want 3 (actual positives)", o.Valid.Count())
	}
	if got := o.GlobalMean(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("GlobalMean = %v, want 2/3", got)
	}
}

func TestErrorRateAndAccuracy(t *testing.T) {
	actual := []bool{true, false, true, false}
	pred := []bool{true, true, false, false}
	e := ErrorRate(actual, pred)
	a := Accuracy(actual, pred)
	if e.Valid.Count() != 4 || a.Valid.Count() != 4 {
		t.Fatal("error/accuracy must be defined everywhere")
	}
	if e.GlobalMean() != 0.5 || a.GlobalMean() != 0.5 {
		t.Errorf("means = %v, %v, want 0.5, 0.5", e.GlobalMean(), a.GlobalMean())
	}
	all := bitvec.NewFull(4)
	for i := 0; i < 4; i++ {
		sum := e.Values[i] + a.Values[i]
		if sum != 1 {
			t.Errorf("row %d: error+accuracy = %v, want 1", i, sum)
		}
	}
	if e.DivergenceOf(all) != 0 {
		t.Error("whole-dataset divergence must be 0")
	}
}

func TestNumeric(t *testing.T) {
	vals := []float64{10, 20, math.NaN(), 30}
	o := Numeric("income", vals)
	if o.Boolean {
		t.Error("numeric outcome should not be boolean")
	}
	if o.Valid.Count() != 3 {
		t.Fatalf("valid = %d, want 3", o.Valid.Count())
	}
	if got := o.GlobalMean(); got != 20 {
		t.Errorf("GlobalMean = %v, want 20", got)
	}
	// NaN row contributes nothing even when included in the subgroup.
	rows := bitvec.FromIndices(4, []int{2, 3})
	if got := o.StatOf(rows); got != 30 {
		t.Errorf("StatOf = %v, want 30", got)
	}
	if got := o.MomentsOf(rows).N; got != 1 {
		t.Errorf("MomentsOf.N = %d, want 1", got)
	}
}

func TestNumericBooleanDetection(t *testing.T) {
	if !Numeric("b", []float64{0, 1, 1, 0}).Boolean {
		t.Error("0/1 numeric outcome should be flagged boolean")
	}
	if Numeric("n", []float64{0, 0.5}).Boolean {
		t.Error("non-0/1 outcome must not be boolean")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("x", []float64{1, 2}, bitvec.New(3)); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := New("x", []float64{1, 2}, bitvec.New(2)); err == nil {
		t.Error("no valid rows should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew("x", []float64{1}, bitvec.New(1))
}

func TestMismatchedLengthsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"FPR":   func() { FalsePositiveRate([]bool{true}, []bool{true, false}) },
		"FNR":   func() { FalseNegativeRate([]bool{true, false}, []bool{true}) },
		"Error": func() { ErrorRate([]bool{true}, nil) },
		"Acc":   func() { Accuracy(nil, []bool{true}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDivergenceFromMomentsMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 500
	actual := make([]bool, n)
	pred := make([]bool, n)
	for i := range actual {
		actual[i] = r.Intn(2) == 0
		pred[i] = r.Intn(2) == 0
	}
	o := ErrorRate(actual, pred)
	rows := bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			rows.Set(i)
		}
	}
	m := o.MomentsOf(rows)
	if got, want := o.DivergenceFromMoments(m), o.DivergenceOf(rows); math.Abs(got-want) > 1e-12 {
		t.Errorf("DivergenceFromMoments = %v, direct = %v", got, want)
	}
	if got, want := o.TValueFromMoments(m), o.TValueOf(rows); math.Abs(got-want) > 1e-12 {
		t.Errorf("TValueFromMoments = %v, direct = %v", got, want)
	}
}

// Property: divergence of the full dataset is always 0, and divergence of
// any subgroup lies within [min−mean, max−mean] of the outcome values.
func TestQuickDivergenceBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 100
		}
		o := Numeric("v", vals)
		full := bitvec.NewFull(n)
		if math.Abs(o.DivergenceOf(full)) > 1e-9 {
			return false
		}
		rows := bitvec.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				rows.Set(i)
			}
		}
		if rows.Count() == 0 {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		d := o.DivergenceOf(rows)
		return d >= lo-o.GlobalMean()-1e-9 && d <= hi-o.GlobalMean()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FPR and FNR validity masks partition the rows (every row is an
// actual positive or an actual negative).
func TestQuickFPRFNRPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		actual := make([]bool, n)
		pred := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range actual {
			actual[i] = r.Intn(2) == 0
			pred[i] = r.Intn(2) == 0
			if actual[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true // constructors require at least one valid row
		}
		fpr := FalsePositiveRate(actual, pred)
		fnr := FalseNegativeRate(actual, pred)
		if fpr.Valid.Intersects(fnr.Valid) {
			return false
		}
		return fpr.Valid.Count()+fnr.Valid.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
