package core

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/outcome"
)

// BuildStatistic assembles the outcome function named by stat from a
// table's label columns, returning the outcome plus the label columns to
// exclude from the exploration itself. Recognized statistics are "fpr",
// "fnr", "error", "accuracy" (requiring actual and predicted boolean
// columns) and "numeric" (requiring a numeric target column). It is the
// single statistic-resolution path shared by the CLI and the HTTP
// server, so both front ends produce identical explorations for the same
// parameters.
func BuildStatistic(tab *dataset.Table, stat, actualCol, predCol, targetCol string) (*outcome.Outcome, []string, error) {
	switch strings.ToLower(stat) {
	case "numeric":
		if targetCol == "" {
			return nil, nil, fmt.Errorf("statistic numeric requires a target column")
		}
		if !tab.HasColumn(targetCol) {
			return nil, nil, fmt.Errorf("no column %q", targetCol)
		}
		return outcome.Numeric(targetCol, tab.Floats(targetCol)), []string{targetCol}, nil
	case "fpr", "fnr", "error", "accuracy":
		if actualCol == "" || predCol == "" {
			return nil, nil, fmt.Errorf("statistic %s requires actual and predicted columns", stat)
		}
		actual, err := BoolColumn(tab, actualCol)
		if err != nil {
			return nil, nil, err
		}
		pred, err := BoolColumn(tab, predCol)
		if err != nil {
			return nil, nil, err
		}
		exclude := []string{actualCol, predCol}
		switch strings.ToLower(stat) {
		case "fpr":
			return outcome.FalsePositiveRate(actual, pred), exclude, nil
		case "fnr":
			return outcome.FalseNegativeRate(actual, pred), exclude, nil
		case "error":
			return outcome.ErrorRate(actual, pred), exclude, nil
		default:
			return outcome.Accuracy(actual, pred), exclude, nil
		}
	default:
		return nil, nil, fmt.Errorf("unknown statistic %q", stat)
	}
}

// BoolColumn reads a column as booleans: numeric columns treat nonzero as
// true; categorical columns accept true/false, yes/no, 1/0, t/f, y/n
// (case-insensitive).
func BoolColumn(tab *dataset.Table, name string) ([]bool, error) {
	if !tab.HasColumn(name) {
		return nil, fmt.Errorf("no column %q", name)
	}
	n := tab.NumRows()
	out := make([]bool, n)
	if tab.KindOf(name) == dataset.Continuous {
		for i, v := range tab.Floats(name) {
			out[i] = v != 0
		}
		return out, nil
	}
	codes := tab.Codes(name)
	levels := tab.Levels(name)
	truth := make([]bool, len(levels))
	for c, l := range levels {
		switch strings.ToLower(strings.TrimSpace(l)) {
		case "true", "yes", "1", "t", "y":
			truth[c] = true
		case "false", "no", "0", "f", "n":
			truth[c] = false
		default:
			return nil, fmt.Errorf("column %q: level %q is not boolean", name, l)
		}
	}
	for i, c := range codes {
		out[i] = truth[c]
	}
	return out, nil
}
