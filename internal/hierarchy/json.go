package hierarchy

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dataset"
)

// The JSON encoding persists item hierarchies so a discretization computed
// on one run (or one dataset snapshot) can be reused on another — the
// production workflow for monitoring a model over time with stable
// subgroup definitions. Infinities are encoded as the strings "-inf" and
// "+inf" because JSON has no literal for them.

type itemJSON struct {
	Attr  string   `json:"attr"`
	Kind  string   `json:"kind"` // "continuous" | "categorical"
	Lo    *string  `json:"lo,omitempty"`
	Hi    *string  `json:"hi,omitempty"`
	Codes []int    `json:"codes,omitempty"`
	Names []string `json:"names,omitempty"`
	Label string   `json:"label,omitempty"`
}

type nodeJSON struct {
	Item     itemJSON `json:"item"`
	Parent   int      `json:"parent"`
	Children []int    `json:"children,omitempty"`
}

type hierarchyJSON struct {
	Attr  string     `json:"attr"`
	Nodes []nodeJSON `json:"nodes"`
}

func encodeBound(v float64) *string {
	var s string
	switch {
	case math.IsInf(v, -1):
		s = "-inf"
	case math.IsInf(v, 1):
		s = "+inf"
	default:
		s = fmt.Sprintf("%g", v)
	}
	return &s
}

func decodeBound(s *string) (float64, error) {
	if s == nil {
		return 0, fmt.Errorf("hierarchy: missing interval bound")
	}
	switch *s {
	case "-inf":
		return math.Inf(-1), nil
	case "+inf":
		return math.Inf(1), nil
	default:
		var v float64
		if _, err := fmt.Sscanf(*s, "%g", &v); err != nil {
			return 0, fmt.Errorf("hierarchy: bad bound %q: %w", *s, err)
		}
		return v, nil
	}
}

// MarshalJSON encodes the hierarchy, preserving structure, interval bounds
// (including infinities), level codes and labels.
func (h *Hierarchy) MarshalJSON() ([]byte, error) {
	out := hierarchyJSON{Attr: h.Attr, Nodes: make([]nodeJSON, len(h.Nodes))}
	for i, n := range h.Nodes {
		ij := itemJSON{Attr: n.Item.Attr, Label: n.Item.Label}
		if n.Item.Kind == dataset.Continuous {
			ij.Kind = "continuous"
			ij.Lo = encodeBound(n.Item.Lo)
			ij.Hi = encodeBound(n.Item.Hi)
		} else {
			ij.Kind = "categorical"
			ij.Codes = n.Item.Codes
			ij.Names = n.Item.Names
		}
		out.Nodes[i] = nodeJSON{Item: ij, Parent: n.Parent, Children: n.Children}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a hierarchy previously encoded with MarshalJSON
// and validates its partition property.
func (h *Hierarchy) UnmarshalJSON(data []byte) error {
	var in hierarchyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	out := Hierarchy{Attr: in.Attr, Nodes: make([]Node, len(in.Nodes))}
	for i, nj := range in.Nodes {
		it := &Item{Attr: nj.Item.Attr, Label: nj.Item.Label}
		switch nj.Item.Kind {
		case "continuous":
			it.Kind = dataset.Continuous
			lo, err := decodeBound(nj.Item.Lo)
			if err != nil {
				return err
			}
			hi, err := decodeBound(nj.Item.Hi)
			if err != nil {
				return err
			}
			it.Lo, it.Hi = lo, hi
		case "categorical":
			it.Kind = dataset.Categorical
			it.Codes = nj.Item.Codes
			it.Names = nj.Item.Names
		default:
			return fmt.Errorf("hierarchy: unknown item kind %q", nj.Item.Kind)
		}
		for _, c := range nj.Children {
			if c < 0 || c >= len(in.Nodes) {
				return fmt.Errorf("hierarchy: child index %d out of range", c)
			}
		}
		out.Nodes[i] = Node{Item: it, Parent: nj.Parent, Children: nj.Children}
	}
	if err := out.Validate(); err != nil {
		return fmt.Errorf("hierarchy: decoded hierarchy invalid: %w", err)
	}
	*h = out
	return nil
}

// MarshalSetJSON encodes a whole hierarchy set as a JSON object mapping
// attribute names to hierarchies, in insertion order.
func MarshalSetJSON(s *Set) ([]byte, error) {
	ordered := make([]json.RawMessage, 0, len(s.Attrs()))
	names := s.Attrs()
	for _, a := range names {
		raw, err := json.Marshal(s.ByAttr[a])
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, raw)
	}
	return json.Marshal(struct {
		Attrs       []string          `json:"attrs"`
		Hierarchies []json.RawMessage `json:"hierarchies"`
	}{names, ordered})
}

// UnmarshalSetJSON decodes a hierarchy set encoded by MarshalSetJSON.
func UnmarshalSetJSON(data []byte) (*Set, error) {
	var in struct {
		Attrs       []string          `json:"attrs"`
		Hierarchies []json.RawMessage `json:"hierarchies"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	if len(in.Attrs) != len(in.Hierarchies) {
		return nil, fmt.Errorf("hierarchy: %d attrs but %d hierarchies", len(in.Attrs), len(in.Hierarchies))
	}
	s := NewSet()
	for i, raw := range in.Hierarchies {
		var h Hierarchy
		if err := json.Unmarshal(raw, &h); err != nil {
			return nil, err
		}
		if h.Attr != in.Attrs[i] {
			return nil, fmt.Errorf("hierarchy: attr order mismatch: %q vs %q", h.Attr, in.Attrs[i])
		}
		s.Add(&h)
	}
	return s, nil
}
