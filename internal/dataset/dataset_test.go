package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Table {
	t.Helper()
	tab, err := NewBuilder().
		AddFloat("age", []float64{23, 45, 31, 23}).
		AddCategorical("sex", []string{"M", "F", "F", "M"}).
		AddCategorical("charge", []string{"F", "F", "M", "M"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestBuilderBasics(t *testing.T) {
	tab := buildSample(t)
	if tab.NumRows() != 4 || tab.NumCols() != 3 {
		t.Fatalf("dims = (%d,%d), want (4,3)", tab.NumRows(), tab.NumCols())
	}
	fields := tab.Fields()
	if fields[0] != (Field{"age", Continuous}) {
		t.Errorf("field 0 = %+v", fields[0])
	}
	if fields[1] != (Field{"sex", Categorical}) {
		t.Errorf("field 1 = %+v", fields[1])
	}
	if got := tab.Names(); got[2] != "charge" {
		t.Errorf("Names = %v", got)
	}
	nc, nk := tab.CountKinds()
	if nc != 1 || nk != 2 {
		t.Errorf("CountKinds = (%d,%d), want (1,2)", nc, nk)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().AddFloat("a", []float64{1}).AddFloat("a", []float64{2}).Build(); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewBuilder().AddFloat("a", []float64{1, 2}).AddFloat("b", []float64{1}).Build(); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewBuilder().AddCategoricalCodes("c", []int{0, 5}, []string{"x"}).Build(); err == nil {
		t.Error("out-of-range code should fail")
	}
	// Error is sticky: later valid adds do not clear it.
	if _, err := NewBuilder().
		AddFloat("a", []float64{1, 2}).
		AddFloat("b", []float64{1}).
		AddFloat("c", []float64{3, 4}).Build(); err == nil {
		t.Error("sticky error lost")
	}
}

func TestCategoricalEncoding(t *testing.T) {
	tab := buildSample(t)
	codes := tab.Codes("sex")
	levels := tab.Levels("sex")
	if len(levels) != 2 || levels[0] != "M" || levels[1] != "F" {
		t.Fatalf("levels = %v", levels)
	}
	want := []int{0, 1, 1, 0}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if tab.LevelCode("sex", "F") != 1 {
		t.Error("LevelCode(F) != 1")
	}
	if tab.LevelCode("sex", "X") != -1 {
		t.Error("LevelCode of missing level should be -1")
	}
}

func TestKindAccessorPanics(t *testing.T) {
	tab := buildSample(t)
	for name, fn := range map[string]func(){
		"FloatsOnCat":  func() { tab.Floats("sex") },
		"CodesOnFloat": func() { tab.Codes("age") },
		"NoSuchColumn": func() { tab.Floats("nope") },
		"RowRange":     func() { tab.ValueString(99, "age") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestValueString(t *testing.T) {
	tab := buildSample(t)
	if got := tab.ValueString(1, "age"); got != "45" {
		t.Errorf("ValueString age = %q", got)
	}
	if got := tab.ValueString(1, "sex"); got != "F" {
		t.Errorf("ValueString sex = %q", got)
	}
}

func TestSelectAndDrop(t *testing.T) {
	tab := buildSample(t)
	sub, err := tab.Select("sex", "age")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCols() != 2 || sub.Names()[0] != "sex" {
		t.Errorf("Select got %v", sub.Names())
	}
	if _, err := tab.Select("nope"); err == nil {
		t.Error("Select of missing column should fail")
	}
	d, err := tab.Drop("charge")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCols() != 2 || d.HasColumn("charge") {
		t.Errorf("Drop got %v", d.Names())
	}
	if _, err := tab.Drop("nope"); err == nil {
		t.Error("Drop of missing column should fail")
	}
}

func TestFilterRows(t *testing.T) {
	tab := buildSample(t)
	f := tab.FilterRows([]int{2, 0})
	if f.NumRows() != 2 {
		t.Fatalf("NumRows = %d", f.NumRows())
	}
	if f.Floats("age")[0] != 31 || f.Floats("age")[1] != 23 {
		t.Errorf("age = %v", f.Floats("age"))
	}
	if f.ValueString(0, "sex") != "F" || f.ValueString(1, "sex") != "M" {
		t.Error("sex values wrong after filter")
	}
}

func TestSortedUniqueFloats(t *testing.T) {
	tab, _ := NewBuilder().
		AddFloat("x", []float64{3, 1, 3, math.NaN(), 2, 1}).
		Build()
	got := tab.SortedUniqueFloats("x")
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

const sampleCSV = `age,sex,zip,score
23,M,90210,0.5
45,F,10001,0.25
31,F,90210,
,M,10001,0.75
`

func TestReadCSVInference(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{ForceCategorical: []string{"zip"}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if tab.KindOf("age") != Continuous || tab.KindOf("sex") != Categorical {
		t.Error("kind inference wrong")
	}
	if tab.KindOf("zip") != Categorical {
		t.Error("ForceCategorical ignored")
	}
	if !math.IsNaN(tab.Floats("age")[3]) {
		t.Error("missing continuous value should be NaN")
	}
	if !math.IsNaN(tab.Floats("score")[2]) {
		t.Error("missing score should be NaN")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty CSV should fail")
	}
	// csv.Reader rejects ragged rows itself.
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), CSVOptions{}); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := buildSample(t)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatalf("round trip dims (%d,%d)", back.NumRows(), back.NumCols())
	}
	for i := 0; i < tab.NumRows(); i++ {
		for _, n := range tab.Names() {
			if tab.ValueString(i, n) != back.ValueString(i, n) {
				t.Fatalf("row %d col %s: %q != %q", i, n, tab.ValueString(i, n), back.ValueString(i, n))
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tab := buildSample(t)
	path := t.TempDir() + "/t.csv"
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 4 {
		t.Fatalf("NumRows = %d", back.NumRows())
	}
	if _, err := ReadCSVFile(path+".missing", CSVOptions{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestAllMissingColumnIsCategorical(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader("a,b\n1,?\n2,?\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.KindOf("b") != Categorical {
		t.Error("all-missing column should be categorical")
	}
	if tab.ValueString(0, "b") != "?" {
		t.Error("missing categorical should read as ?")
	}
}

// Property: dictionary encoding round-trips arbitrary string columns.
func TestQuickCategoricalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		alphabet := []string{"a", "b", "c", "d", "e é", "x,y", `q"u`}
		vals := make([]string, n)
		for i := range vals {
			vals[i] = alphabet[r.Intn(len(alphabet))]
		}
		tab := NewBuilder().AddCategorical("c", vals).MustBuild()
		codes, levels := tab.Codes("c"), tab.Levels("c")
		for i := range vals {
			if levels[codes[i]] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CSV write/read round-trips tables with special characters.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		floats := make([]float64, n)
		cats := make([]string, n)
		alphabet := []string{"plain", "with,comma", `with"quote`, "with\nnewline", "ünïcødé"}
		for i := range floats {
			floats[i] = math.Round(r.Float64()*1000) / 8
			cats[i] = alphabet[r.Intn(len(alphabet))]
		}
		tab := NewBuilder().AddFloat("f", floats).AddCategorical("c", cats).MustBuild()
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, CSVOptions{})
		if err != nil {
			return false
		}
		if back.NumRows() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if back.Floats("f")[i] != floats[i] || back.ValueString(i, "c") != cats[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVRejectsEmptyColumnName(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(" \n1\n"), CSVOptions{}); err == nil {
		t.Error("blank header name should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,,c\n1,2,3\n"), CSVOptions{}); err == nil {
		t.Error("empty header name should fail")
	}
}
