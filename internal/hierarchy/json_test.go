package hierarchy

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestHierarchyJSONRoundTrip(t *testing.T) {
	h := buildAgeHierarchy()
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hierarchy
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Attr != h.Attr || len(back.Nodes) != len(h.Nodes) {
		t.Fatalf("structure mismatch: %d nodes vs %d", len(back.Nodes), len(h.Nodes))
	}
	for i := range h.Nodes {
		a, b := h.Nodes[i], back.Nodes[i]
		if a.Parent != b.Parent || len(a.Children) != len(b.Children) {
			t.Fatalf("node %d structure differs", i)
		}
		if a.Item.String() != b.Item.String() {
			t.Fatalf("node %d item %q != %q", i, a.Item.String(), b.Item.String())
		}
		if a.Item.Lo != b.Item.Lo || a.Item.Hi != b.Item.Hi {
			t.Fatalf("node %d bounds differ", i)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyJSONInfinities(t *testing.T) {
	h := NewRooted("x", ContinuousItem("x", math.Inf(-1), math.Inf(1)))
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"-inf"`) || !strings.Contains(string(raw), `"+inf"`) {
		t.Errorf("infinities not encoded: %s", raw)
	}
	var back Hierarchy
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Nodes[0].Item.Lo, -1) || !math.IsInf(back.Nodes[0].Item.Hi, 1) {
		t.Error("infinities not decoded")
	}
}

func TestCategoricalHierarchyJSON(t *testing.T) {
	tab := dataset.NewBuilder().
		AddCategorical("occ", []string{"MGR-Sales", "MGR-Fin", "MED-Dent", "MED-Nurse"}).
		MustBuild()
	h := PathTaxonomy(tab, "occ", func(level string) []string {
		return []string{strings.SplitN(level, "-", 2)[0]}
	})
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hierarchy
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	if len(back.Items()) != len(h.Items()) {
		t.Error("item count changed through JSON")
	}
}

func TestHierarchyJSONRejectsInvalid(t *testing.T) {
	var h Hierarchy
	cases := []string{
		`{"attr":"x","nodes":[{"item":{"attr":"x","kind":"weird"},"parent":-1}]}`,
		// gap between children
		`{"attr":"x","nodes":[
		   {"item":{"attr":"x","kind":"continuous","lo":"-inf","hi":"+inf"},"parent":-1,"children":[1,2]},
		   {"item":{"attr":"x","kind":"continuous","lo":"-inf","hi":"1"},"parent":0},
		   {"item":{"attr":"x","kind":"continuous","lo":"2","hi":"+inf"},"parent":0}]}`,
		// missing bound
		`{"attr":"x","nodes":[{"item":{"attr":"x","kind":"continuous","hi":"+inf"},"parent":-1}]}`,
		// child index out of range
		`{"attr":"x","nodes":[{"item":{"attr":"x","kind":"continuous","lo":"-inf","hi":"+inf"},"parent":-1,"children":[7]}]}`,
		`not json`,
	}
	for i, c := range cases {
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("case %d: invalid hierarchy accepted", i)
		}
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	tab := sampleTable(t)
	s := NewSet()
	s.Add(buildAgeHierarchy())
	s.Add(FlatCategorical(tab, "occ"))
	raw, err := MarshalSetJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSetJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Attrs()) != 2 || back.Attrs()[0] != "age" || back.Attrs()[1] != "occ" {
		t.Errorf("Attrs = %v", back.Attrs())
	}
	if len(back.AllItems()) != len(s.AllItems()) {
		t.Error("item universe changed through JSON")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSetJSON([]byte(`{"attrs":["a"],"hierarchies":[]}`)); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := UnmarshalSetJSON([]byte(`nope`)); err == nil {
		t.Error("bad JSON should fail")
	}
}
