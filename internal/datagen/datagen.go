// Package datagen generates the datasets of the paper's evaluation.
//
// synthetic-peak is generated exactly as specified in §VI-A. The seven
// public datasets (compas, folktables, adult, bank, german, intentions,
// wine) are not redistributable/available offline, so this package provides
// statistically calibrated synthetic analogs: each has the attribute schema
// of the paper's Table II (same |A|, |A|num, |A|cat and default sizes) and
// planted structure that reproduces the paper's qualitative findings (e.g.
// for the compas analog, false positives concentrate among young defendants
// with many prior offenses, so hierarchical exploration finds strictly more
// divergent subgroups than fixed discretizations). See DESIGN.md §4.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Config parameterizes a generator.
type Config struct {
	// N is the number of instances; 0 means the paper's dataset size.
	N int
	// Seed drives all randomness; generators are deterministic per seed.
	Seed int64
}

func (c Config) n(def int) int {
	if c.N > 0 {
		return c.N
	}
	return def
}

// Classified bundles a feature table with true labels and, when the dataset
// carries an intrinsic model (compas' proprietary score, synthetic-peak's
// injected predictions), the model's predictions.
type Classified struct {
	Table *dataset.Table
	// Actual is the ground-truth class label.
	Actual []bool
	// Predicted is the intrinsic model's prediction; nil when the caller is
	// expected to train its own model (the UCI analogs).
	Predicted []bool
}

// Regression bundles a feature table with a numeric target (folktables'
// income).
type Regression struct {
	Table  *dataset.Table
	Target []float64
}

// sigmoid is the logistic function used by several label models.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// pick draws a categorical level according to the given weights.
func pick(r *rand.Rand, levels []string, weights []float64) string {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return levels[i]
		}
	}
	return levels[len(levels)-1]
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// truncNorm samples a normal(mean, sd) truncated to [lo, hi] by resampling.
func truncNorm(r *rand.Rand, mean, sd, lo, hi float64) float64 {
	for i := 0; i < 100; i++ {
		v := mean + sd*r.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	return clamp(mean, lo, hi)
}
