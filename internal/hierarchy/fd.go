package hierarchy

import (
	"fmt"

	"repro/internal/dataset"
)

// FDViolation measures how far the functional dependency attr → byAttr is
// from holding on the table: the fraction of rows whose byAttr value
// differs from the majority byAttr value of their attr level. 0 means the
// dependency holds exactly (every attr level maps to a single byAttr
// level); TANE-style approximate dependencies accept small positive
// values.
func FDViolation(t *dataset.Table, attr, byAttr string) float64 {
	_, violations := fdMajority(t, attr, byAttr)
	return float64(violations) / float64(t.NumRows())
}

// fdMajority computes, per attr code, the majority byAttr code, and the
// number of rows disagreeing with their level's majority.
func fdMajority(t *dataset.Table, attr, byAttr string) (map[int]int, int) {
	ac := t.Codes(attr)
	bc := t.Codes(byAttr)
	counts := map[int]map[int]int{}
	for i := range ac {
		m, ok := counts[ac[i]]
		if !ok {
			m = map[int]int{}
			counts[ac[i]] = m
		}
		m[bc[i]]++
	}
	mapping := make(map[int]int, len(counts))
	violations := 0
	for a, m := range counts {
		bestCode, bestCount, total := -1, -1, 0
		for b, c := range m {
			total += c
			if c > bestCount || (c == bestCount && b < bestCode) {
				bestCode, bestCount = b, c
			}
		}
		mapping[a] = bestCode
		violations += total - bestCount
	}
	return mapping, violations
}

// FromFunctionalDependency derives an item hierarchy for a categorical
// attribute by grouping its levels under the values of a coarser attribute
// that it (approximately) functionally determines — the paper's §II route
// for revealing hierarchies from data, e.g. city → state. The dependency
// attr → byAttr must hold up to maxViolation (fraction of disagreeing
// rows); rows that disagree are grouped by their level's majority byAttr
// value, preserving the partition property.
func FromFunctionalDependency(t *dataset.Table, attr, byAttr string, maxViolation float64) (*Hierarchy, error) {
	if t.KindOf(attr) != dataset.Categorical || t.KindOf(byAttr) != dataset.Categorical {
		return nil, fmt.Errorf("hierarchy: FD derivation requires categorical attributes")
	}
	if attr == byAttr {
		return nil, fmt.Errorf("hierarchy: FD derivation needs two distinct attributes")
	}
	mapping, violations := fdMajority(t, attr, byAttr)
	if rate := float64(violations) / float64(t.NumRows()); rate > maxViolation {
		return nil, fmt.Errorf("hierarchy: dependency %s→%s violated on %.1f%% of rows (max %.1f%%)",
			attr, byAttr, rate*100, maxViolation*100)
	}
	byLevels := t.Levels(byAttr)
	groupOf := make(map[string]string, len(mapping))
	for code, level := range t.Levels(attr) {
		groupOf[level] = byLevels[mapping[code]]
	}
	return PathTaxonomy(t, attr, func(level string) []string {
		return []string{groupOf[level]}
	}), nil
}
