// Package outcome implements the paper's outcome functions o: D → ℝ ∪ {⊥}.
// A statistic f over a subgroup S is the mean of o over the members of S
// whose outcome is defined; the divergence of S is f(S) − f(D). Boolean
// outcome functions (values in {0,1}) express rates such as the
// false-positive rate; numeric outcomes express quantities such as income.
package outcome

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// Outcome holds per-row outcome values and the mask of rows where the
// outcome is defined (not ⊥).
type Outcome struct {
	// Name identifies the statistic, e.g. "FPR" or "income".
	Name string
	// Values[i] is o(x_i); meaningful only where Valid.Get(i).
	Values []float64
	// Valid marks rows with a defined outcome.
	Valid *bitvec.Vector
	// Boolean records whether every defined value is 0 or 1, enabling the
	// entropy-based split criterion.
	Boolean bool

	global stats.Moments
}

// New assembles an Outcome from raw values and a validity mask, computing
// the global moments and the boolean flag. values and valid must have the
// same length.
func New(name string, values []float64, valid *bitvec.Vector) (*Outcome, error) {
	if len(values) != valid.Len() {
		return nil, fmt.Errorf("outcome: %d values, %d validity bits", len(values), valid.Len())
	}
	o := &Outcome{Name: name, Values: values, Valid: valid, Boolean: true}
	valid.ForEach(func(i int) {
		v := values[i]
		if math.IsNaN(v) {
			panic(fmt.Sprintf("outcome: NaN value at valid row %d", i))
		}
		if v != 0 && v != 1 {
			o.Boolean = false
		}
		o.global.Add(v)
	})
	if o.global.N == 0 {
		return nil, fmt.Errorf("outcome %q: no valid rows", name)
	}
	return o, nil
}

// MustNew is New that panics on error.
func MustNew(name string, values []float64, valid *bitvec.Vector) *Outcome {
	o, err := New(name, values, valid)
	if err != nil {
		panic(err)
	}
	return o
}

// Len returns the number of dataset rows.
func (o *Outcome) Len() int { return len(o.Values) }

// GlobalMoments returns the moments of the outcome over the whole dataset.
func (o *Outcome) GlobalMoments() stats.Moments { return o.global }

// GlobalMean returns f(D), the statistic on the entire dataset.
func (o *Outcome) GlobalMean() float64 { return o.global.Mean() }

// MomentsOf returns the outcome moments over the rows of the given bitset,
// restricted to valid rows. The rows ∩ valid intersection is computed by
// the fused bitvec.AndMoments pass, with no intermediate vector.
func (o *Outcome) MomentsOf(rows *bitvec.Vector) stats.Moments {
	n, sum, sumSq := rows.AndMoments(o.Valid, o.Values)
	return stats.Moments{N: n, Sum: sum, SumSq: sumSq}
}

// MomentsOfSet is MomentsOf for any row-set representation. Every
// bitvec.Set visits bits in ascending index order, so the float
// accumulation order — and therefore the result, bit for bit — matches
// MomentsOf on the equivalent dense vector.
func (o *Outcome) MomentsOfSet(rows bitvec.Set) stats.Moments {
	n, sum, sumSq := rows.AndMomentsRange(o.Valid, o.Values, 0, rows.NumWords())
	return stats.Moments{N: n, Sum: sum, SumSq: sumSq}
}

// DivergenceOfSet is DivergenceOf for any row-set representation,
// bit-identical to the dense path.
func (o *Outcome) DivergenceOfSet(rows bitvec.Set) float64 {
	return o.MomentsOfSet(rows).Mean() - o.GlobalMean()
}

// StatOf returns f(S) for the subgroup defined by rows, or NaN when no
// member has a defined outcome.
func (o *Outcome) StatOf(rows *bitvec.Vector) float64 {
	return o.MomentsOf(rows).Mean()
}

// DivergenceOf returns Δf(S) = f(S) − f(D) for the subgroup, or NaN when
// f(S) is undefined.
func (o *Outcome) DivergenceOf(rows *bitvec.Vector) float64 {
	return o.StatOf(rows) - o.GlobalMean()
}

// TValueOf returns the Welch t-statistic between the subgroup outcome
// sample and the whole-dataset outcome sample, the significance measure
// used by DivExplorer.
func (o *Outcome) TValueOf(rows *bitvec.Vector) float64 {
	return stats.WelchT(o.MomentsOf(rows), o.global)
}

// DivergenceFromMoments returns Δf given precomputed subgroup moments, as
// accumulated inside the mining algorithms.
func (o *Outcome) DivergenceFromMoments(m stats.Moments) float64 {
	return m.Mean() - o.GlobalMean()
}

// TValueFromMoments returns the Welch t-value given precomputed subgroup
// moments.
func (o *Outcome) TValueFromMoments(m stats.Moments) float64 {
	return stats.WelchT(m, o.global)
}

// FalsePositiveRate builds the FPR outcome: defined on actual-negative
// instances, 1 where the model predicted positive (a false positive), 0
// where it predicted negative (a true negative). f(S) is then the
// false-positive rate of S.
func FalsePositiveRate(actual, predicted []bool) *Outcome {
	return rateOutcome("FPR", actual, predicted, false, func(pred bool) float64 {
		if pred {
			return 1
		}
		return 0
	})
}

// FalseNegativeRate builds the FNR outcome: defined on actual-positive
// instances, 1 where the model predicted negative.
func FalseNegativeRate(actual, predicted []bool) *Outcome {
	return rateOutcome("FNR", actual, predicted, true, func(pred bool) float64 {
		if pred {
			return 0
		}
		return 1
	})
}

func rateOutcome(name string, actual, predicted []bool, definedOn bool, value func(pred bool) float64) *Outcome {
	if len(actual) != len(predicted) {
		panic(fmt.Sprintf("outcome: %d actual vs %d predicted", len(actual), len(predicted)))
	}
	vals := make([]float64, len(actual))
	valid := bitvec.New(len(actual))
	for i := range actual {
		if actual[i] == definedOn {
			valid.Set(i)
			vals[i] = value(predicted[i])
		}
	}
	return MustNew(name, vals, valid)
}

// ErrorRate builds the misclassification outcome: defined everywhere, 1
// where prediction differs from the actual label.
func ErrorRate(actual, predicted []bool) *Outcome {
	if len(actual) != len(predicted) {
		panic(fmt.Sprintf("outcome: %d actual vs %d predicted", len(actual), len(predicted)))
	}
	vals := make([]float64, len(actual))
	for i := range actual {
		if actual[i] != predicted[i] {
			vals[i] = 1
		}
	}
	return MustNew("error", vals, bitvec.NewFull(len(actual)))
}

// Accuracy builds the accuracy outcome: defined everywhere, 1 where the
// prediction matches the actual label.
func Accuracy(actual, predicted []bool) *Outcome {
	if len(actual) != len(predicted) {
		panic(fmt.Sprintf("outcome: %d actual vs %d predicted", len(actual), len(predicted)))
	}
	vals := make([]float64, len(actual))
	for i := range actual {
		if actual[i] == predicted[i] {
			vals[i] = 1
		}
	}
	return MustNew("accuracy", vals, bitvec.NewFull(len(actual)))
}

// Numeric builds an outcome directly from a numeric target (e.g. income in
// folktables). NaN values are treated as ⊥.
func Numeric(name string, values []float64) *Outcome {
	valid := bitvec.New(len(values))
	for i, v := range values {
		if !math.IsNaN(v) {
			valid.Set(i)
		}
	}
	return MustNew(name, values, valid)
}

// fullMask returns an all-ones validity mask of length n.
func fullMask(n int) *bitvec.Vector { return bitvec.NewFull(n) }

// emptyMask returns an all-zeros validity mask of length n.
func emptyMask(n int) *bitvec.Vector { return bitvec.New(n) }
