package discretize

import (
	"math"
	"sort"
)

// KSDrift returns the two-sample Kolmogorov–Smirnov statistic between two
// samples of a continuous attribute: the maximum absolute difference of
// their empirical CDFs, in [0, 1]. NaNs (missing values) are ignored. It is
// the drift measure the server uses to decide whether an appended batch can
// reuse the existing discretization cutpoints (small drift: the quantile
// structure moved little, so the split points remain near-optimal) or
// forces a full re-discretization.
//
// Degenerate samples — either side empty after dropping NaNs — report zero
// drift: a batch contributing no observations of an attribute cannot move
// its quantiles.
func KSDrift(a, b []float64) float64 {
	sa := sortedNonNaN(a)
	sb := sortedNonNaN(b)
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Advance past ties on the smaller value so both CDFs are evaluated
		// just after the common jump point.
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d
}

func sortedNonNaN(vals []float64) []float64 {
	s := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return s
}
