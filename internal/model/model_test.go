package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// xorData builds a dataset whose label is an XOR of a continuous threshold
// and a categorical value — learnable by a depth-2 tree but not depth-1.
func xorData(n int, seed int64) (*dataset.Table, []bool) {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	c := make([]string, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 10
		if r.Intn(2) == 0 {
			c[i] = "a"
		} else {
			c[i] = "b"
		}
		labels[i] = (x[i] > 5) != (c[i] == "a")
	}
	t := dataset.NewBuilder().AddFloat("x", x).AddCategorical("c", c).MustBuild()
	return t, labels
}

func TestTreeLearnsThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 1000
	x := make([]float64, n)
	labels := make([]bool, n)
	for i := range x {
		x[i] = r.Float64() * 10
		labels[i] = x[i] > 3.7
	}
	tab := dataset.NewBuilder().AddFloat("x", x).MustBuild()
	tr, err := TrainTree(tab, []string{"x"}, labels, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := tr.Predict(tab)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(pred, labels); acc < 0.999 {
		t.Errorf("accuracy = %v, want ~1 for a pure threshold", acc)
	}
	if tr.Depth() != 1 {
		t.Errorf("Depth = %d, want 1", tr.Depth())
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	tab, labels := xorData(2000, 2)
	tr, err := TrainTree(tab, []string{"x", "c"}, labels, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := tr.Predict(tab)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(pred, labels); acc < 0.99 {
		t.Errorf("XOR accuracy = %v", acc)
	}
	if tr.Depth() < 2 {
		t.Errorf("XOR needs depth ≥ 2, got %d", tr.Depth())
	}
}

func TestTreeMaxDepth(t *testing.T) {
	tab, labels := xorData(500, 3)
	tr, err := TrainTree(tab, []string{"x", "c"}, labels, TreeOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Errorf("Depth = %d > MaxDepth 1", tr.Depth())
	}
}

func TestTreeMinLeaf(t *testing.T) {
	tab, labels := xorData(100, 4)
	tr, err := TrainTree(tab, []string{"x", "c"}, labels, TreeOptions{MinLeaf: 40})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 40 of 100 rows, at most one split level is possible.
	if tr.Depth() > 1 {
		t.Errorf("Depth = %d with MinLeaf 40", tr.Depth())
	}
}

func TestTreeErrors(t *testing.T) {
	tab, labels := xorData(50, 5)
	if _, err := TrainTree(tab, nil, labels, TreeOptions{}); err == nil {
		t.Error("no features should fail")
	}
	if _, err := TrainTree(tab, []string{"nope"}, labels, TreeOptions{}); err == nil {
		t.Error("missing feature should fail")
	}
	if _, err := TrainTree(tab, []string{"x"}, labels[:10], TreeOptions{}); err == nil {
		t.Error("label length mismatch should fail")
	}
}

func TestPredictOnDifferentTable(t *testing.T) {
	tab, labels := xorData(1000, 6)
	tr, err := TrainTree(tab, []string{"x", "c"}, labels, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	test, testLabels := xorData(500, 7)
	pred, err := tr.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(pred, testLabels); acc < 0.97 {
		t.Errorf("holdout accuracy = %v", acc)
	}
	// Missing feature column on the prediction table must error.
	noC, _ := test.Select("x")
	if _, err := tr.Predict(noC); err == nil {
		t.Error("prediction without feature column should fail")
	}
}

func TestNaNGoesLeftDeterministically(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	labels := []bool{false, false, false, false, false, true, true, true, true, true}
	tab := dataset.NewBuilder().AddFloat("x", x).MustBuild()
	tr, err := TrainTree(tab, []string{"x"}, labels, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nanTab := dataset.NewBuilder().AddFloat("x", []float64{math.NaN(), math.NaN()}).MustBuild()
	p1, err := tr.Predict(nanTab)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := tr.Predict(nanTab)
	if p1[0] != p2[0] || p1[0] != p1[1] {
		t.Error("NaN routing must be deterministic")
	}
}

func TestForestBeatsOrMatchesNoise(t *testing.T) {
	// Noisy XOR: forest should still reach high accuracy on clean holdout
	// structure.
	r := rand.New(rand.NewSource(8))
	n := 2000
	x := make([]float64, n)
	c := make([]string, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 10
		if r.Intn(2) == 0 {
			c[i] = "a"
		} else {
			c[i] = "b"
		}
		labels[i] = (x[i] > 5) != (c[i] == "a")
		if r.Float64() < 0.1 {
			labels[i] = !labels[i]
		}
	}
	tab := dataset.NewBuilder().AddFloat("x", x).AddCategorical("c", c).MustBuild()
	f, err := TrainForest(tab, []string{"x", "c"}, labels, ForestOptions{NumTrees: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 15 {
		t.Errorf("NumTrees = %d", f.NumTrees())
	}
	pred, err := f.Predict(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Bayes-optimal training accuracy is ~0.9 under 10% label noise.
	if acc := Accuracy(pred, labels); acc < 0.85 {
		t.Errorf("forest accuracy = %v", acc)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	tab, labels := xorData(500, 9)
	var preds [2][]bool
	for i := 0; i < 2; i++ {
		f, err := TrainForest(tab, []string{"x", "c"}, labels, ForestOptions{NumTrees: 5, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		preds[i], err = f.Predict(tab)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range preds[0] {
		if preds[0][i] != preds[1][i] {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestForestDefaults(t *testing.T) {
	tab, labels := xorData(200, 10)
	f, err := TrainForest(tab, []string{"x", "c"}, labels, ForestOptions{Seed: 1, NumTrees: 3})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := f.PredictProb(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
	if _, err := TrainForest(tab, []string{"x"}, labels[:5], ForestOptions{}); err == nil {
		t.Error("label mismatch should fail")
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Accuracy([]bool{true}, []bool{true, false})
}

func TestGiniProperties(t *testing.T) {
	if gini(0, 0) != 0 || gini(5, 0) != 0 || gini(0, 5) != 0 {
		t.Error("pure/empty nodes must have zero impurity")
	}
	if g := gini(5, 5); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("gini(5,5) = %v, want 0.5", g)
	}
	f := func(pos, neg uint8) bool {
		g := gini(int(pos), int(neg))
		return g >= 0 && g <= 0.5+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a split never increases weighted Gini beyond the parent's.
func TestQuickSplitNeverWorsensGini(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		posL, negL, posR, negR := int(a), int(b), int(c), int(d)
		if posL+negL == 0 || posR+negR == 0 {
			return true
		}
		parent := gini(posL+posR, negL+negR)
		child := weightedChildGini(posL, negL, posR, negR)
		return child <= parent+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
