package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// ForceCategorical lists columns to load as categorical even when every
	// value parses as a number (e.g. zip codes).
	ForceCategorical []string
	// MissingTokens are treated as missing values. Missing continuous values
	// become NaN; missing categorical values become the level "?".
	// Defaults to {"", "?", "NA"} when nil.
	MissingTokens []string
	// Tracer, when non-nil, receives parse/inference spans and row/column
	// counters for the read.
	Tracer *obs.Tracer
}

func (o CSVOptions) missing() map[string]bool {
	toks := o.MissingTokens
	if toks == nil {
		toks = []string{"", "?", "NA"}
	}
	m := map[string]bool{}
	for _, t := range toks {
		m[t] = true
	}
	return m
}

// ReadCSV parses a headed CSV stream into a Table, inferring each column's
// kind: a column where every non-missing value parses as a float becomes
// continuous, otherwise categorical.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	span := opts.Tracer.Start(obs.SpanReadCSV)
	defer span.End()

	if err := faultinject.Hit(faultinject.SiteCSVLoad); err != nil {
		return nil, err
	}
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.TrimLeadingSpace = true
	parseSpan := span.Start(obs.SpanCSVParse)
	records, err := cr.ReadAll()
	parseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV (no header)")
	}
	header := records[0]
	rows := records[1:]
	missing := opts.missing()
	force := map[string]bool{}
	for _, n := range opts.ForceCategorical {
		force[n] = true
	}

	colSpan := span.Start(obs.SpanCSVColumns)
	defer colSpan.End()
	continuous, categorical := 0, 0
	b := NewBuilder()
	for j, name := range header {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("dataset: empty column name at position %d", j+1)
		}
		raw := make([]string, len(rows))
		for i, rec := range rows {
			if j >= len(rec) {
				return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(rec), len(header))
			}
			raw[i] = strings.TrimSpace(rec[j])
		}
		if !force[name] && allNumeric(raw, missing) {
			vals := make([]float64, len(raw))
			for i, s := range raw {
				if missing[s] {
					vals[i] = math.NaN()
					continue
				}
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: column %q row %d: %w", name, i+1, err)
				}
				vals[i] = v
			}
			b.AddFloat(name, vals)
			continuous++
		} else {
			for i, s := range raw {
				if missing[s] {
					raw[i] = "?"
				}
			}
			b.AddCategorical(name, raw)
			categorical++
		}
	}
	if tr := opts.Tracer; tr != nil {
		tr.Counter(obs.CtrRows).Add(int64(len(rows)))
		tr.Counter(obs.CtrCols).Add(int64(len(header)))
		tr.Counter(obs.CtrColsContinuous).Add(int64(continuous))
		tr.Counter(obs.CtrColsCategorical).Add(int64(categorical))
	}
	return b.Build()
}

// ReadCSVFile opens and parses a CSV file.
func ReadCSVFile(path string, opts CSVOptions) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

func allNumeric(vals []string, missing map[string]bool) bool {
	seen := false
	for _, s := range vals {
		if missing[s] {
			continue
		}
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			return false
		}
		seen = true
	}
	return seen // an all-missing column is categorical
}

// WriteCSV writes the table as a headed CSV to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Names()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	names := t.Names()
	for i := 0; i < t.NumRows(); i++ {
		for j, n := range names {
			rec[j] = t.ValueString(i, n)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a file path.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
