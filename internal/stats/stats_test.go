package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMomentsBasics(t *testing.T) {
	m := FromValues([]float64{1, 2, 3, 4})
	if m.N != 4 || m.Sum != 10 || m.SumSq != 30 {
		t.Fatalf("Moments = %+v", m)
	}
	if !almostEqual(m.Mean(), 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", m.Mean())
	}
	// sample variance of 1..4 is 5/3
	if !almostEqual(m.Var(), 5.0/3.0, 1e-12) {
		t.Errorf("Var = %v, want %v", m.Var(), 5.0/3.0)
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) {
		t.Error("empty Mean should be NaN")
	}
	if !math.IsNaN(m.Var()) {
		t.Error("empty Var should be NaN")
	}
	m.Add(7)
	if m.Mean() != 7 {
		t.Errorf("single Mean = %v", m.Mean())
	}
	if !math.IsNaN(m.Var()) {
		t.Error("single Var should be NaN")
	}
}

func TestMomentsAddN(t *testing.T) {
	a := FromValues([]float64{1, 2})
	b := FromValues([]float64{3, 4, 5})
	a.AddN(b)
	want := FromValues([]float64{1, 2, 3, 4, 5})
	if a != want {
		t.Errorf("AddN = %+v, want %+v", a, want)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Classic example: two samples with clearly different means.
	a := FromValues([]float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4})
	b := FromValues([]float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5})
	got := WelchT(a, b)
	// Verified against an independent two-pass implementation.
	if !almostEqual(got, -2.70778, 1e-4) {
		t.Errorf("WelchT = %v, want ≈ -2.70778", got)
	}
	df := WelchDF(a, b)
	if !almostEqual(df, 26.9527, 1e-3) {
		t.Errorf("WelchDF = %v, want ≈ 26.9527", df)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	small := FromValues([]float64{1})
	big := FromValues([]float64{1, 2, 3})
	if WelchT(small, big) != 0 {
		t.Error("WelchT with n<2 should be 0")
	}
	zeroVarSame := FromValues([]float64{2, 2, 2})
	if WelchT(zeroVarSame, zeroVarSame) != 0 {
		t.Error("equal-mean zero-variance should be 0")
	}
	zeroVarHigher := FromValues([]float64{3, 3, 3})
	if !math.IsInf(WelchT(zeroVarHigher, zeroVarSame), 1) {
		t.Error("zero-variance different means should be +Inf")
	}
	if !math.IsInf(WelchT(zeroVarSame, zeroVarHigher), -1) {
		t.Error("zero-variance different means should be -Inf")
	}
}

func TestWelchTSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMoments(r, 2+r.Intn(50))
		b := randomMoments(r, 2+r.Intn(50))
		return almostEqual(WelchT(a, b), -WelchT(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomMoments(r *rand.Rand, n int) Moments {
	var m Moments
	for i := 0; i < n; i++ {
		m.Add(r.NormFloat64()*3 + 1)
	}
	return m
}

func TestBinaryEntropy(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0, 0},
		{1, 0},
		{-0.5, 0},
		{1.5, 0},
		{0.5, math.Log(2)},
	}
	for _, c := range cases {
		if got := BinaryEntropy(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("BinaryEntropy(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !almostEqual(BinaryEntropy(math.NaN()), 0, 0) {
		t.Error("BinaryEntropy(NaN) should be 0")
	}
}

func TestBinaryEntropyProperties(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		h := BinaryEntropy(p)
		// Symmetric, bounded by log 2, nonnegative.
		return h >= 0 && h <= math.Log(2)+1e-12 && almostEqual(h, BinaryEntropy(1-p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty input")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantilesSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	got := QuantilesSorted(s, []float64{0, 0.5, 1})
	want := []float64{1, 2.5, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("QuantilesSorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalPDF(t *testing.T) {
	// Standard normal at 0 is 1/sqrt(2π).
	if got := NormalPDF(0, 0, 1); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("NormalPDF(0,0,1) = %v", got)
	}
	// Symmetry about the mean.
	if !almostEqual(NormalPDF(2, 1, 3), NormalPDF(0, 1, 3), 1e-12) {
		t.Error("NormalPDF should be symmetric about the mean")
	}
}

func TestIsotropicGaussian(t *testing.T) {
	g := IsotropicGaussian{Mean: []float64{0, 1, 2}, Sigma: 1}
	if got := g.NormalizedDensity([]float64{0, 1, 2}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("NormalizedDensity at mode = %v, want 1", got)
	}
	far := g.NormalizedDensity([]float64{5, 5, 5})
	if far <= 0 || far >= 0.01 {
		t.Errorf("NormalizedDensity far from mode = %v, want small positive", far)
	}
	// Monotone decrease with distance from the mode along an axis.
	prev := math.Inf(1)
	for d := 0.0; d < 4; d += 0.5 {
		v := g.NormalizedDensity([]float64{d, 1, 2})
		if v > prev {
			t.Fatalf("density not decreasing at distance %v", d)
		}
		prev = v
	}
}

func TestIsotropicGaussianDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	g := IsotropicGaussian{Mean: []float64{0, 0}, Sigma: 1}
	g.Density([]float64{1})
}

func TestCohenD(t *testing.T) {
	a := FromValues([]float64{2, 4, 6, 8})
	b := FromValues([]float64{1, 3, 5, 7})
	d := CohenD(a, b)
	// Means differ by 1, pooled sd = sqrt(20/3) ≈ 2.582 → d ≈ 0.387.
	if !almostEqual(d, 1/math.Sqrt(20.0/3.0), 1e-9) {
		t.Errorf("CohenD = %v", d)
	}
	if CohenD(Moments{N: 1}, b) != 0 {
		t.Error("CohenD with tiny sample should be 0")
	}
	if got := CohenD(b, a); !almostEqual(got, -d, 1e-12) {
		t.Error("CohenD should be antisymmetric")
	}
}

// Property: Moments.Var matches a two-pass variance computation.
func TestQuickVarTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		m := FromValues(xs)
		mean := m.Mean()
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		want := ss / float64(n-1)
		return almostEqual(m.Var(), want, 1e-6*math.Max(1, want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
