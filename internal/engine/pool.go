package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
)

// Pool recycles the flat buffers the mining hot path burns through —
// materialized row bitvectors and partial-count matrices — across Apriori
// levels and FP-Growth branches of one mining run. It is keyed by the run's
// Plan so every pooled vector has the same geometry and a Get can skip all
// shape checks.
//
// Ownership rules (see DESIGN.md §11 for the full lifecycle):
//
//   - A vector obtained from GetVector has unspecified contents; the caller
//     must fully overwrite it (e.g. via Set.AndInto, which writes every
//     word) before reading.
//   - Universe-owned vectors (Universe.Rows) must never be passed to
//     PutVector; only buffers obtained from the pool (or allocated with the
//     run's geometry and owned by the caller) may be returned.
//   - A buffer must not be used after PutVector. Returning is optional:
//     dropping a pooled buffer on an error or truncation path is safe, the
//     GC reclaims it.
//
// Hits and misses are counted so obs.Explain can report the reuse rate;
// NoteHit/NoteMiss let satellite caches (e.g. the FP-Growth scratch pool)
// fold their reuse into the same counters. Because sync.Pool is emptied
// under GC pressure, the hit counts are measured — not deterministic — and
// are stripped by Explain.Deterministic.
//
// Pool is safe for concurrent use.
type Pool struct {
	rows         int
	vecs         sync.Pool
	ints         sync.Pool
	hits, misses atomic.Int64
}

// NewPool returns a pool dispensing vectors of the plan's row count.
func NewPool(p Plan) *Pool {
	return &Pool{rows: p.NumRows()}
}

// GetVector returns a vector of the plan's row count with unspecified
// contents. The caller must fully overwrite it before reading.
func (pl *Pool) GetVector() *bitvec.Vector {
	if v, ok := pl.vecs.Get().(*bitvec.Vector); ok {
		pl.hits.Add(1)
		return v
	}
	pl.misses.Add(1)
	return bitvec.New(pl.rows)
}

// PutVector returns a vector to the pool. Vectors of the wrong geometry
// are dropped, so a caller holding mixed-origin buffers can return them
// indiscriminately.
func (pl *Pool) PutVector(v *bitvec.Vector) {
	if v == nil || v.Len() != pl.rows {
		return
	}
	pl.vecs.Put(v)
}

// GetInts returns a zeroed []int of length n, reusing pooled capacity
// when possible.
func (pl *Pool) GetInts(n int) []int {
	if s, ok := pl.ints.Get().(*[]int); ok && cap(*s) >= n {
		pl.hits.Add(1)
		out := (*s)[:n]
		for i := range out {
			out[i] = 0
		}
		return out
	}
	pl.misses.Add(1)
	return make([]int, n)
}

// PutInts returns an int slice's capacity to the pool.
func (pl *Pool) PutInts(s []int) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	pl.ints.Put(&s)
}

// NoteHit and NoteMiss fold an external cache's reuse outcome into the
// pool's counters, so per-run scratch pools layered on top of Pool report
// through the same engine.pool_* metrics.
func (pl *Pool) NoteHit()  { pl.hits.Add(1) }
func (pl *Pool) NoteMiss() { pl.misses.Add(1) }

// Hits returns the number of Get calls (and noted external lookups)
// satisfied from the pool.
func (pl *Pool) Hits() int64 { return pl.hits.Load() }

// Misses returns the number of Get calls (and noted external lookups)
// that had to allocate.
func (pl *Pool) Misses() int64 { return pl.misses.Load() }
