package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestLifetimeSpansBounded is the span-leak regression test: the daemon's
// lifetime tracer must not accumulate spans across requests (each request
// runs on its own tracer and only counters/gauges/histograms are folded
// in), while /metrics still accumulates mining work across requests.
func TestLifetimeSpansBounded(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"}

	const n = 6
	for i := 0; i < n; i++ {
		if rec := postExplore(t, s, req); rec.Code != 200 {
			t.Fatalf("explore %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}

	snap := s.tracer.Snapshot()
	if len(snap.Spans) != 0 {
		t.Errorf("lifetime tracer holds %d spans after %d requests; spans must stay per-request", len(snap.Spans), n)
	}
	// The mining counters still accumulate across requests via Absorb.
	cand := snap.Counter(obs.CtrCandidates)
	if cand <= 0 || cand%int64(n) != 0 {
		t.Errorf("lifetime fpm.candidates = %d, want a positive multiple of %d", cand, n)
	}
	if got := snap.Histograms[obs.HistRequestSeconds].Count; got != n {
		t.Errorf("request-latency histogram count = %d, want %d", got, n)
	}
	if got := snap.Histograms[obs.HistItemsetSupport].Count; got <= 0 || got%int64(n) != 0 {
		t.Errorf("itemset-support histogram count = %d, want a positive multiple of %d", got, n)
	}
}

// TestMetricsHistograms checks /metrics renders all three canonical
// histograms with coherent _bucket/_sum/_count series after traffic.
func TestMetricsHistograms(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	if rec := postExplore(t, s, ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
	}); rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, h := range []string{"server_request_seconds", "fpm_candidate_batch", "fpm_itemset_support"} {
		for _, want := range []string{
			"# TYPE " + h + " histogram",
			h + `_bucket{le="+Inf"}`,
			h + "_sum",
			h + "_count",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("metrics missing %q:\n%s", want, body)
			}
		}
	}
}

// TestRequestIDHeader checks the correlation-ID contract: well-formed
// client IDs are honoured and echoed, malformed ones replaced, absent
// ones generated.
func TestRequestIDHeader(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	body, _ := json.Marshal(ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"})

	post := func(id string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body))
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		s.ServeHTTP(rec, req)
		return rec
	}

	if rec := post("my-req.01"); rec.Header().Get("X-Request-ID") != "my-req.01" {
		t.Errorf("client ID not echoed: %q", rec.Header().Get("X-Request-ID"))
	}
	if rec := post("bad id\n"); rec.Header().Get("X-Request-ID") == "bad id\n" || rec.Header().Get("X-Request-ID") == "" {
		t.Errorf("malformed client ID not replaced: %q", rec.Header().Get("X-Request-ID"))
	}
	if rec := post(""); len(rec.Header().Get("X-Request-ID")) != 16 {
		t.Errorf("generated ID = %q, want 16 hex chars", rec.Header().Get("X-Request-ID"))
	}
}

// TestProgressEndpointLive drives a slow exploration with a
// client-supplied request ID and polls /v1/progress/{id} while it runs:
// counts must advance monotonically and the final state must be done
// with status "done".
func TestProgressEndpointLive(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "slow", Table: slowTable(t)}}})
	const id = "live-poll-1"

	// Warm the universe cache so polling observes mining, not the build.
	if rec := postExplore(t, s, ExploreRequest{
		Dataset: "slow", Stat: "error", Actual: "y", Predicted: "p", S: 0.4, ST: 0.05,
	}); rec.Code != 200 {
		t.Fatalf("warmup: %d %s", rec.Code, rec.Body.String())
	}

	// ~0.5–1s of mining on the warm cache: long enough for many polls,
	// well inside the 30s request timeout.
	body, _ := json.Marshal(ExploreRequest{
		Dataset: "slow", Stat: "error", Actual: "y", Predicted: "p",
		S: 0.008, ST: 0.05, Algorithm: "apriori", MaxLen: 3, Top: 5,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body))
		req.Header.Set("X-Request-ID", id)
		s.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Errorf("explore: %d %s", rec.Code, rec.Body.String())
		}
	}()

	poll := func() (progressReply, int) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/progress/"+id, nil))
		var pr progressReply
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
				t.Fatalf("bad progress JSON: %v", err)
			}
		}
		return pr, rec.Code
	}

	sawRunning := false
	var prev int64 = -1
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		pr, code := poll()
		if code == 404 { // not registered yet
			time.Sleep(time.Millisecond)
			continue
		}
		if code != 200 {
			t.Fatalf("progress poll: %d", code)
		}
		if pr.Progress.Candidates < prev {
			t.Fatalf("candidates went backwards: %d after %d", pr.Progress.Candidates, prev)
		}
		prev = pr.Progress.Candidates
		if pr.Status == "running" && pr.Progress.Candidates > 0 {
			sawRunning = true
		}
		if pr.Progress.Done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	pr, code := poll()
	if code != 200 || pr.Status != "done" || !pr.Progress.Done {
		t.Errorf("final progress: code=%d %+v", code, pr)
	}
	if pr.Progress.Candidates <= 0 || pr.Progress.Frequent <= 0 {
		t.Errorf("final counts empty: %+v", pr.Progress)
	}
	if pr.Dataset != "slow" || pr.ID != id {
		t.Errorf("progress identity: %+v", pr)
	}
	if !sawRunning {
		t.Log("mining finished before a running snapshot was observed; live polling not exercised")
	}

	// The listing endpoint knows the request too.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/progress", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), id) {
		t.Errorf("progress list: %d %s", rec.Code, rec.Body.String())
	}
}

// TestTraceEndpoint checks /v1/trace/{id}: the default Chrome export
// passes structural validation and carries the request ID; the json and
// tree formats render; unknown IDs 404.
func TestTraceEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	const id = "trace-req-1"
	body, _ := json.Marshal(ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", id)
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	chrome := get("/v1/trace/" + id)
	if chrome.Code != 200 {
		t.Fatalf("trace: %d %s", chrome.Code, chrome.Body.String())
	}
	if n, err := obs.ValidateChromeTrace(bytes.NewReader(chrome.Body.Bytes())); err != nil {
		t.Errorf("chrome trace invalid: %v", err)
	} else if n < 3 {
		t.Errorf("chrome trace has only %d events", n)
	}
	if !strings.Contains(chrome.Body.String(), id) {
		t.Error("chrome trace lost the request ID")
	}

	raw := get("/v1/trace/" + id + "?format=json")
	var tr obs.Trace
	if err := json.Unmarshal(raw.Body.Bytes(), &tr); err != nil || tr.ID != id {
		t.Errorf("raw trace: err=%v id=%q", err, tr.ID)
	}
	if tr.Span(obs.SpanMine) == nil {
		t.Error("raw trace missing mining span")
	}

	if tree := get("/v1/trace/" + id + "?format=tree"); tree.Code != 200 || !strings.Contains(tree.Body.String(), obs.SpanMine) {
		t.Errorf("tree trace: %d %s", tree.Code, tree.Body.String())
	}
	if bad := get("/v1/trace/" + id + "?format=nope"); bad.Code != 400 {
		t.Errorf("bad format: %d", bad.Code)
	}
	if missing := get("/v1/trace/absent"); missing.Code != 404 {
		t.Errorf("unknown trace id: %d", missing.Code)
	}
	if missing := get("/v1/progress/absent"); missing.Code != 404 {
		t.Errorf("unknown progress id: %d", missing.Code)
	}
}

// TestStructuredRequestLog checks the per-request slog line: JSON
// output, request_id matching the response header, and the request's
// outcome fields.
func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	s := newTestServer(t, Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		Logger:   logger,
	})
	body, _ := json.Marshal(ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "log-req-1")
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}

	mu.Lock()
	line := buf.String()
	mu.Unlock()
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, line)
	}
	if entry["request_id"] != "log-req-1" || entry["dataset"] != "anomaly" || entry["status"] != "done" {
		t.Errorf("log entry = %v", entry)
	}
	if entry["subgroups"] == nil || entry["elapsed_ms"] == nil {
		t.Errorf("log entry missing outcome fields: %v", entry)
	}
}

// lockedWriter serializes writes from handler goroutines during tests.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestRecentRingBounded checks completed requests are retained for
// trace export but the retention is bounded.
func TestRecentRingBounded(t *testing.T) {
	g := newRequestRegistry(0) // 0 takes the default capacity
	for i := 0; i < DefaultTraceRing+20; i++ {
		st := g.start(obs.NewRequestID(), "d", obs.NewProgress())
		g.finish(st, &obs.Trace{}, "done")
	}
	g.mu.Lock()
	n, active := len(g.recent), len(g.active)
	g.mu.Unlock()
	if n != DefaultTraceRing || active != 0 {
		t.Errorf("registry holds %d recent / %d active, want %d / 0", n, active, DefaultTraceRing)
	}

	// An explicit capacity is honoured and clamped at the ceiling.
	small := newRequestRegistry(3)
	for i := 0; i < 10; i++ {
		st := small.start(obs.NewRequestID(), "d", obs.NewProgress())
		small.finish(st, &obs.Trace{}, "done")
	}
	small.mu.Lock()
	n = len(small.recent)
	small.mu.Unlock()
	if n != 3 {
		t.Errorf("registry with cap 3 holds %d recent", n)
	}
	if huge := newRequestRegistry(1 << 20); huge.cap != maxTraceRing {
		t.Errorf("oversized ring not clamped: %d", huge.cap)
	}
}
