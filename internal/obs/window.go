package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Windowed is a sliding-window histogram: a rotating ring of fixed-bucket
// epoch histograms merged on read, so quantiles and rates describe the
// *recent* past instead of the process lifetime. The server's SLO engine
// is built on it — a lifetime-cumulative histogram hides a p99 regression
// behind hours of healthy traffic, a 60×1s window ring does not.
//
// The ring holds `epochs` slots of `epoch` duration each. Observe lands
// in the slot of the current epoch (index now/epoch modulo ring size);
// when a slot is revisited after a full ring revolution it is reset under
// a per-slot mutex before reuse, so rotation needs no background
// goroutine and idle windows cost nothing. Observes are lock-free on the
// fast path (the slot already belongs to the current epoch): a binary
// search plus three atomic adds, safe for concurrent use.
//
// Merged(window) folds the slots belonging to the last `window` epochs
// (including the current, partial one) into a HistogramRecord. Under
// concurrent writes the merge is a consistent sample, not a transaction:
// an observation racing a slot reset may land in the freshly reset epoch
// (never lost entirely, at most attributed one ring revolution late).
// Single-writer use — the property tests drive it with a fake clock — is
// exact: merged windows agree bin-for-bin with a plain Histogram fed the
// same in-window observations.
//
// With nil bounds a Windowed degrades to a windowed counter/sum: only
// Count and Sum carry information, which is exactly what availability
// (requests, errors) tracking needs.
//
// A nil *Windowed ignores Observe and reports empty windows, mirroring
// the package's nil-safe contract.
type Windowed struct {
	bounds []float64
	epoch  time.Duration
	now    func() time.Time
	slots  []windowSlot
}

// windowSlot is one epoch's histogram. epoch is the absolute epoch index
// the slot currently accumulates (-1 while still virgin); mu serializes
// the reset when a slot is claimed for a new epoch.
type windowSlot struct {
	mu    sync.Mutex
	epoch atomic.Int64
	bins  []atomic.Int64
	count atomic.Int64
	sum   atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewWindowed builds a sliding-window histogram of `epochs` slots, each
// covering `epoch` of wall time, over the given bucket bounds (nil for a
// count/sum-only window). now overrides the clock for tests; nil means
// time.Now. epoch defaults to one second and epochs to 64 when
// non-positive.
func NewWindowed(bounds []float64, epoch time.Duration, epochs int, now func() time.Time) *Windowed {
	if epoch <= 0 {
		epoch = time.Second
	}
	if epochs <= 0 {
		epochs = 64
	}
	if now == nil {
		now = time.Now
	}
	proto := newHistogram(bounds) // normalizes: sorted, deduplicated, finite
	w := &Windowed{
		bounds: proto.bounds,
		epoch:  epoch,
		now:    now,
		slots:  make([]windowSlot, epochs),
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(-1)
		w.slots[i].bins = make([]atomic.Int64, len(w.bounds)+1)
	}
	return w
}

// Epochs returns the ring size (the maximum merge window), 0 on nil.
func (w *Windowed) Epochs() int {
	if w == nil {
		return 0
	}
	return len(w.slots)
}

// EpochDuration returns the width of one epoch (0 on nil).
func (w *Windowed) EpochDuration() time.Duration {
	if w == nil {
		return 0
	}
	return w.epoch
}

// epochIndex is the absolute epoch the given instant falls in.
func (w *Windowed) epochIndex(t time.Time) int64 {
	return t.UnixNano() / int64(w.epoch)
}

// slot returns the ring slot for epoch e, reset and claimed for e if it
// still holds an older epoch.
func (w *Windowed) slot(e int64) *windowSlot {
	s := &w.slots[e%int64(len(w.slots))]
	if s.epoch.Load() == e {
		return s
	}
	s.mu.Lock()
	if s.epoch.Load() != e {
		for i := range s.bins {
			s.bins[i].Store(0)
		}
		s.count.Store(0)
		s.sum.Store(0)
		s.epoch.Store(e)
	}
	s.mu.Unlock()
	return s
}

// Observe records one value into the current epoch. NaN observations are
// dropped; no-op on nil.
func (w *Windowed) Observe(v float64) {
	if w == nil || math.IsNaN(v) {
		return
	}
	s := w.slot(w.epochIndex(w.now()))
	i := sort.SearchFloat64s(w.bounds, v)
	s.bins[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Add records n unit-less events into the current epoch without touching
// the value distribution — the windowed-counter idiom (each event counts
// 1 toward Count, contributes 0 to Sum and lands in the overflow bin
// only when the window has no bounds). No-op on nil or n <= 0.
func (w *Windowed) Add(n int64) {
	if w == nil || n <= 0 {
		return
	}
	s := w.slot(w.epochIndex(w.now()))
	s.bins[len(s.bins)-1].Add(n)
	s.count.Add(n)
}

// Merged folds the last `window` epochs (clamped to the ring size,
// including the current partial epoch) into an immutable HistogramRecord.
// Returns an empty record on nil.
func (w *Windowed) Merged(window int) HistogramRecord {
	if w == nil {
		return HistogramRecord{}
	}
	if window <= 0 || window > len(w.slots) {
		window = len(w.slots)
	}
	cur := w.epochIndex(w.now())
	rec := HistogramRecord{
		Bounds: append([]float64(nil), w.bounds...),
		Counts: make([]int64, len(w.bounds)+1),
	}
	oldest := cur - int64(window) + 1
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < oldest || e > cur {
			continue
		}
		var total int64
		for j := range s.bins {
			c := s.bins[j].Load()
			rec.Counts[j] += c
			total += c
		}
		// Count is repaired from the bin total like Histogram.snapshot, so
		// the record stays internally consistent under concurrent Observe.
		if c := s.count.Load(); c > total {
			total = c
		}
		rec.Count += total
		rec.Sum += math.Float64frombits(s.sum.Load())
	}
	return rec
}

// CountWindow returns the number of observations in the last `window`
// epochs — the cheap path for windowed counters (no bin copying).
func (w *Windowed) CountWindow(window int) int64 {
	if w == nil {
		return 0
	}
	if window <= 0 || window > len(w.slots) {
		window = len(w.slots)
	}
	cur := w.epochIndex(w.now())
	oldest := cur - int64(window) + 1
	var n int64
	for i := range w.slots {
		s := &w.slots[i]
		if e := s.epoch.Load(); e >= oldest && e <= cur {
			n += s.count.Load()
		}
	}
	return n
}
