// Package core implements the subgroup explorers: DivExplorer (base,
// non-hierarchical) and H-DivExplorer (hierarchical/generalized). Given a
// dataset, an outcome function and a set of item hierarchies, Explore mines
// all frequent (generalized) itemsets and reports each one's support,
// statistic value, divergence and Welch t-value, ranked by divergence.
//
// The full H-DivExplorer pipeline of the paper is: build item hierarchies
// for continuous attributes with the tree discretizer (package discretize),
// add flat or taxonomy hierarchies for categorical attributes, then call
// Explore in Hierarchical mode. Base mode restricts the item universe to
// hierarchy leaves, reproducing the behaviour of prior non-hierarchical
// tools for comparison.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/outcome"
)

// Mode selects base (leaf items only) or hierarchical (all items)
// exploration.
type Mode int

const (
	// Hierarchical explores generalized itemsets over all hierarchy levels
	// (H-DivExplorer).
	Hierarchical Mode = iota
	// Base explores leaf items only (classic DivExplorer over a fixed
	// discretization).
	Base
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Hierarchical:
		return "hierarchical"
	case Base:
		return "base"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes Explore.
type Config struct {
	// Outcome is the statistic whose divergence is explored.
	Outcome *outcome.Outcome
	// Hierarchies supplies the item universe, one hierarchy per attribute.
	Hierarchies *hierarchy.Set
	// MinSupport is the exploration support threshold s.
	MinSupport float64
	// MaxLen bounds itemset length (0 = unlimited).
	MaxLen int
	// PolarityPrune enables polarity pruning (§V-C).
	PolarityPrune bool
	// Algorithm selects the miner; FPGrowth by default.
	Algorithm fpm.Algorithm
	// Mode selects hierarchical or base exploration.
	Mode Mode
	// Workers enables parallel mining (0 or 1 = serial). Results are
	// identical regardless of the setting.
	Workers int
	// Tracer, when non-nil, receives exploration spans (universe build,
	// mining, ranking) and the fpm.* counters; the report's Trace field is
	// set to its snapshot. Nil disables all collection.
	Tracer *obs.Tracer
	// Progress, when non-nil, receives live mining progress (level,
	// candidates, pruned, frequent) and is Finished when the exploration
	// body returns, freezing its elapsed clock. Poll it from another
	// goroutine to watch a long run; nil disables collection.
	Progress *obs.Progress

	// span nests exploration under an enclosing span (internal).
	span *obs.Span
}

// Subgroup is one explored data subgroup.
type Subgroup struct {
	// Itemset is the pattern defining the subgroup.
	Itemset hierarchy.Itemset
	// ItemIdx are the universe indices of the items (sorted).
	ItemIdx []int
	// Count and Support measure the subgroup size.
	Count   int
	Support float64
	// Statistic is f(S); Divergence is Δf(S) = f(S) − f(D).
	Statistic  float64
	Divergence float64
	// T is the Welch t-value of the divergence against the whole dataset.
	T float64
}

// String renders the subgroup compactly.
func (s *Subgroup) String() string {
	return fmt.Sprintf("{%s} sup=%.3f Δ=%+.4f t=%.1f", s.Itemset, s.Support, s.Divergence, s.T)
}

// Report is the result of an exploration.
type Report struct {
	// Subgroups holds every frequent itemset, sorted by |divergence|
	// descending.
	Subgroups []Subgroup
	// Global is f(D), the statistic on the whole dataset.
	Global float64
	// NumRows is the dataset size.
	NumRows int
	// NumItems is the size of the item universe explored.
	NumItems int
	// Elapsed is the wall-clock mining time (excluding universe setup).
	Elapsed time.Duration
	// Mining reports candidate/frequent counts from the miner.
	Mining fpm.MiningStats
	// Trace is the observability snapshot (spans, counters, gauges) when
	// the exploration ran with a Config.Tracer; nil otherwise. It covers
	// everything the tracer saw, including upstream parse/discretize spans
	// when the same tracer was threaded through the whole pipeline.
	Trace *obs.Trace

	// byKey lazily indexes subgroups by canonical itemset key for the
	// lattice-navigation helpers.
	byKey map[string]int
}

// Explore runs (H-)DivExplorer over the table.
func Explore(t *dataset.Table, cfg Config) (*Report, error) {
	return ExploreContext(context.Background(), t, cfg)
}

// ExploreContext is Explore with cancellation: the miners poll ctx at
// candidate granularity, so a cancelled or timed-out context makes the
// exploration return promptly with an error wrapping ctx.Err(). A
// context.Background() ctx behaves exactly like Explore.
func ExploreContext(ctx context.Context, t *dataset.Table, cfg Config) (*Report, error) {
	if cfg.Outcome == nil {
		return nil, fmt.Errorf("core: Config.Outcome is nil")
	}
	if cfg.Hierarchies == nil {
		return nil, fmt.Errorf("core: Config.Hierarchies is nil")
	}
	if err := cfg.Hierarchies.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid hierarchies: %w", err)
	}
	switch cfg.Mode {
	case Hierarchical, Base:
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: exploration cancelled: %w", err)
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		cfg.Tracer.SetID(id)
	}
	span := cfg.Tracer.Start(obs.SpanExplore)
	cfg.span = span
	us := span.Start(obs.SpanUniverse)
	var u *fpm.Universe
	if cfg.Mode == Hierarchical {
		u = fpm.GeneralizedUniverse(t, cfg.Hierarchies, cfg.Outcome)
	} else {
		u = fpm.BaseUniverse(t, cfg.Hierarchies, cfg.Outcome)
	}
	us.End()
	rep, err := exploreUniverse(ctx, u, cfg)
	span.End()
	if err == nil {
		rep.snapshotTrace(cfg.Tracer)
	}
	return rep, err
}

// ExploreUniverse runs the exploration over a prebuilt item universe; use
// this to supply a custom item set.
func ExploreUniverse(u *fpm.Universe, cfg Config) (*Report, error) {
	return ExploreUniverseContext(context.Background(), u, cfg)
}

// ExploreUniverseContext is ExploreUniverse with cancellation, with the
// same contract as ExploreContext. The universe is never mutated, so a
// cancelled run leaves it valid for reuse (the serving layer relies on
// this to keep cached universes intact across aborted requests).
func ExploreUniverseContext(ctx context.Context, u *fpm.Universe, cfg Config) (*Report, error) {
	span := cfg.span
	owned := span == nil // Explore manages the span (and snapshot) itself
	if owned {
		if id := obs.RequestIDFrom(ctx); id != "" {
			cfg.Tracer.SetID(id)
		}
		span = cfg.Tracer.Start(obs.SpanExplore)
		cfg.span = span
	}
	rep, err := exploreUniverse(ctx, u, cfg)
	if owned {
		span.End()
		if err == nil {
			rep.snapshotTrace(cfg.Tracer)
		}
	}
	return rep, err
}

// exploreUniverse is the shared mining+ranking body; cfg.span (possibly
// nil) encloses the emitted spans.
func exploreUniverse(ctx context.Context, u *fpm.Universe, cfg Config) (*Report, error) {
	defer cfg.Progress.Finish()
	start := time.Now()
	res, err := fpm.Mine(u, cfg.Outcome, fpm.Options{
		Ctx:           ctx,
		MinSupport:    cfg.MinSupport,
		MaxLen:        cfg.MaxLen,
		PolarityPrune: cfg.PolarityPrune,
		Algorithm:     cfg.Algorithm,
		Workers:       cfg.Workers,
		Tracer:        cfg.Tracer,
		TraceParent:   cfg.span,
		Progress:      cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	rank := cfg.span.Start(obs.SpanRank)
	if rank == nil {
		rank = cfg.Tracer.Start(obs.SpanRank)
	}
	fpm.SortByDivergence(res.Itemsets, cfg.Outcome, false, false)
	rep := &Report{
		Global:   cfg.Outcome.GlobalMean(),
		NumRows:  u.NumRows,
		NumItems: len(u.Items),
		Elapsed:  elapsed,
		Mining:   res.Stats,
	}
	rep.Subgroups = make([]Subgroup, len(res.Itemsets))
	for i, m := range res.Itemsets {
		rep.Subgroups[i] = Subgroup{
			Itemset:    u.Itemset(m.Items),
			ItemIdx:    m.Items,
			Count:      m.Count,
			Support:    m.Support(u.NumRows),
			Statistic:  m.M.Mean(),
			Divergence: cfg.Outcome.DivergenceFromMoments(m.M),
			T:          cfg.Outcome.TValueFromMoments(m.M),
		}
	}
	rank.End()
	return rep, nil
}

// snapshotTrace attaches the tracer's snapshot to the report (no-op on a
// nil tracer).
func (r *Report) snapshotTrace(t *obs.Tracer) {
	if t != nil {
		r.Trace = t.Snapshot()
	}
}

// TopK returns the k subgroups with largest |divergence| (fewer if the
// report is smaller).
func (r *Report) TopK(k int) []Subgroup {
	if k > len(r.Subgroups) {
		k = len(r.Subgroups)
	}
	return r.Subgroups[:k]
}

// MaxAbsDivergence returns the largest |Δ| over all subgroups, 0 if none.
func (r *Report) MaxAbsDivergence() float64 {
	if len(r.Subgroups) == 0 {
		return 0
	}
	return math.Abs(r.Subgroups[0].Divergence)
}

// MaxDivergence returns the most positive divergence (0 if none positive).
func (r *Report) MaxDivergence() float64 {
	best := 0.0
	for i := range r.Subgroups {
		if d := r.Subgroups[i].Divergence; d > best {
			best = d
		}
	}
	return best
}

// Top returns the single most divergent subgroup, or nil if empty.
func (r *Report) Top() *Subgroup {
	if len(r.Subgroups) == 0 {
		return nil
	}
	return &r.Subgroups[0]
}

// FilterMinT returns the subgroups whose |t| is at least tMin, preserving
// order.
func (r *Report) FilterMinT(tMin float64) []Subgroup {
	var out []Subgroup
	for _, s := range r.Subgroups {
		if math.Abs(s.T) >= tMin {
			out = append(out, s)
		}
	}
	return out
}

// FilterLength returns the subgroups of exactly the given length.
func (r *Report) FilterLength(n int) []Subgroup {
	var out []Subgroup
	for _, s := range r.Subgroups {
		if len(s.Itemset) == n {
			out = append(out, s)
		}
	}
	return out
}

// Find returns the subgroup whose itemset renders to the given canonical
// string (as produced by hierarchy.Itemset.String), or nil.
func (r *Report) Find(pattern string) *Subgroup {
	for i := range r.Subgroups {
		if r.Subgroups[i].Itemset.String() == pattern {
			return &r.Subgroups[i]
		}
	}
	return nil
}

// Table renders the top k subgroups as an aligned text table.
func (r *Report) Table(k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-60s %8s %10s %8s\n", "itemset", "sup", "Δ", "t")
	for _, s := range r.TopK(k) {
		fmt.Fprintf(&b, "%-60s %8.3f %+10.4f %8.1f\n", s.Itemset.String(), s.Support, s.Divergence, s.T)
	}
	return b.String()
}

// DescribeHierarchy renders an item hierarchy with the support and
// divergence of every node, reproducing the annotated tree of the paper's
// Figure 1.
func DescribeHierarchy(t *dataset.Table, h *hierarchy.Hierarchy, o *outcome.Outcome) string {
	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		n := h.Nodes[i]
		rows := n.Item.Rows(t)
		sup := float64(rows.Count()) / float64(t.NumRows())
		indent := strings.Repeat("  ", depth)
		if i == 0 {
			fmt.Fprintf(&b, "%sroot sup=%.2f %s=%.3f\n", indent, sup, o.Name, o.GlobalMean())
		} else {
			fmt.Fprintf(&b, "%s%s sup=%.2f Δ=%+.3f\n", indent, n.Item, sup, o.DivergenceOf(rows))
		}
		children := append([]int(nil), n.Children...)
		sort.Ints(children)
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}
