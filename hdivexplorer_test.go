package hdivexplorer

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
)

// pipelineFixture builds a small dataset with a planted anomaly reachable
// through the public API alone.
func pipelineFixture(n int, seed int64) (*Table, []bool, []bool) {
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	g := make([]string, n)
	actual := make([]bool, n)
	pred := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 10
		if r.Intn(2) == 0 {
			g[i] = "u"
		} else {
			g[i] = "v"
		}
		actual[i] = r.Intn(2) == 0
		pred[i] = actual[i]
		p := 0.04
		if x[i] > 8 && g[i] == "u" {
			p = 0.7
		}
		if r.Float64() < p {
			pred[i] = !pred[i]
		}
	}
	tab := NewTableBuilder().AddFloat("x", x).AddCategorical("g", g).MustBuild()
	return tab, actual, pred
}

func TestPipelineEndToEnd(t *testing.T) {
	tab, actual, pred := pipelineFixture(3000, 1)
	rep, err := Pipeline(tab, ErrorRate(actual, pred), PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Top()
	if top == nil {
		t.Fatal("no subgroups")
	}
	s := top.Itemset.String()
	if !strings.Contains(s, "x>") || !strings.Contains(s, "g=u") {
		t.Errorf("top subgroup %q does not isolate the planted anomaly", s)
	}
	if top.Divergence < 0.2 {
		t.Errorf("top divergence = %v", top.Divergence)
	}
}

func TestPipelineDefaults(t *testing.T) {
	tab, actual, pred := pipelineFixture(1000, 2)
	rep, err := Pipeline(tab, ErrorRate(actual, pred), PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: s = 0.05, st = 0.1, hierarchical mode.
	for _, sg := range rep.Subgroups {
		if sg.Support < 0.05-1e-12 {
			t.Fatalf("default MinSupport not applied: %v", sg.Support)
		}
	}
}

func TestPipelineModesAndOptions(t *testing.T) {
	tab, actual, pred := pipelineFixture(2000, 3)
	o := ErrorRate(actual, pred)
	base, err := Pipeline(tab, o, PipelineOptions{Mode: Base})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Pipeline(tab, o, PipelineOptions{Mode: Hierarchical})
	if err != nil {
		t.Fatal(err)
	}
	if hier.MaxAbsDivergence()+1e-12 < base.MaxAbsDivergence() {
		t.Error("hierarchical below base")
	}
	capped, err := Pipeline(tab, o, PipelineOptions{MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range capped.Subgroups {
		if len(sg.Itemset) > 1 {
			t.Fatal("MaxLen ignored")
		}
	}
	apriori, err := Pipeline(tab, o, PipelineOptions{Algorithm: Apriori})
	if err != nil {
		t.Fatal(err)
	}
	if len(apriori.Subgroups) != len(hier.Subgroups) {
		t.Error("Apriori and FP-Growth disagree through the facade")
	}
}

func TestPipelineExclude(t *testing.T) {
	tab, actual, pred := pipelineFixture(1000, 4)
	o := ErrorRate(actual, pred)
	rep, err := Pipeline(tab, o, PipelineOptions{Exclude: []string{"g"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range rep.Subgroups {
		if strings.Contains(sg.Itemset.String(), "g=") {
			t.Fatal("excluded attribute appeared in results")
		}
	}
	if _, err := Pipeline(tab, o, PipelineOptions{Exclude: []string{"missing"}}); err == nil {
		t.Error("excluding a missing attribute should fail")
	}
}

func TestPipelineTaxonomies(t *testing.T) {
	d := datagen.Folktables(datagen.Config{N: 8_000, Seed: 5})
	o := Numeric("income", d.Target)
	rep, err := Pipeline(d.Table, o, PipelineOptions{
		Taxonomies: datagen.FolktablesTaxonomies(d.Table),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Some subgroup must use a supercategory item (an OCCP or POBP item
	// covering more than one level).
	found := false
	for _, sg := range rep.Subgroups {
		for _, it := range sg.Itemset {
			if (it.Attr == "OCCP" || it.Attr == "POBP") && len(it.Codes) > 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no subgroup used a taxonomy supercategory item")
	}
}

func TestPipelineNumericOutcome(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 2000
	x := make([]float64, n)
	target := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 10
		target[i] = 100 + 50*x[i] + 10*r.NormFloat64()
	}
	tab := NewTableBuilder().AddFloat("x", x).MustBuild()
	rep, err := Pipeline(tab, Numeric("target", target), PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Top()
	// The most divergent subgroup is an upper x range with mean ≫ global.
	if top.Divergence <= 100 {
		t.Errorf("top divergence = %v, want large", top.Divergence)
	}
	if !strings.Contains(top.Itemset.String(), "x>") {
		t.Errorf("top subgroup %q should be an upper x range", top.Itemset)
	}
}

func TestFacadeDiscretizers(t *testing.T) {
	tab, actual, pred := pipelineFixture(1000, 7)
	o := ErrorRate(actual, pred)
	if _, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0.1}); err != nil {
		t.Error(err)
	}
	if _, err := Quantile(tab, "x", 4); err != nil {
		t.Error(err)
	}
	if _, err := UniformWidth(tab, "x", 4); err != nil {
		t.Error(err)
	}
	if _, err := ManualCuts("x", []float64{2, 5}); err != nil {
		t.Error(err)
	}
	h := FlatCategorical(tab, "g")
	if len(h.LeafItems()) != 2 {
		t.Error("FlatCategorical via facade broken")
	}
}

func TestFacadeExploreWithCustomHierarchies(t *testing.T) {
	tab, actual, pred := pipelineFixture(2000, 8)
	o := ErrorRate(actual, pred)
	hs := NewHierarchySet()
	h, err := ManualCuts("x", []float64{5, 8})
	if err != nil {
		t.Fatal(err)
	}
	hs.Add(h)
	hs.Add(FlatCategorical(tab, "g"))
	rep, err := Explore(tab, ExploreConfig{
		Outcome: o, Hierarchies: hs, MinSupport: 0.05, Mode: Base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Top() == nil {
		t.Fatal("no subgroups")
	}
	// Manual cut at 8 means the planted x>8 ∧ g=u region is representable.
	found := rep.Find("g=u, x>8")
	if found == nil {
		t.Fatalf("expected subgroup {g=u, x>8}; top is %v", rep.Top().Itemset)
	}
	if found.Divergence < 0.2 {
		t.Errorf("planted subgroup divergence = %v", found.Divergence)
	}
}

func TestFacadeItemsAndOutcomes(t *testing.T) {
	it := ContinuousItem("age", 25, 45)
	if it.String() != "age=(25-45]" {
		t.Errorf("ContinuousItem = %q", it.String())
	}
	ci := CategoricalItem("g", "g=u", 0)
	if !ci.MatchesCode(0) || ci.MatchesCode(1) {
		t.Error("CategoricalItem broken")
	}
	actual := []bool{true, false, true, false}
	pred := []bool{true, true, false, false}
	if FalsePositiveRate(actual, pred).GlobalMean() != 0.5 {
		t.Error("FPR via facade")
	}
	if FalseNegativeRate(actual, pred).GlobalMean() != 0.5 {
		t.Error("FNR via facade")
	}
	if Accuracy(actual, pred).GlobalMean() != 0.5 {
		t.Error("Accuracy via facade")
	}
	if v := Numeric("v", []float64{1, 2, 3}).GlobalMean(); v != 2 {
		t.Error("Numeric via facade")
	}
	if math.IsNaN(ErrorRate(actual, pred).GlobalMean()) {
		t.Error("ErrorRate via facade")
	}
}

func TestFacadeCSV(t *testing.T) {
	tab := NewTableBuilder().
		AddFloat("x", []float64{1, 2}).
		AddCategorical("g", []string{"a", "b"}).
		MustBuild()
	path := t.TempDir() + "/t.csv"
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || back.KindOf("x") != Continuous || back.KindOf("g") != Categorical {
		t.Error("CSV round trip via facade broken")
	}
}

func TestFacadeAnalysisExports(t *testing.T) {
	tab, actual, pred := pipelineFixture(2500, 9)
	o := ErrorRate(actual, pred)
	rep, err := Pipeline(tab, o, PipelineOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Top()
	if len(top.Itemset) >= 2 {
		phi, err := ItemShapley(tab, o, top.Itemset)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range phi {
			sum += v
		}
		if math.Abs(sum-top.Divergence) > 1e-9 {
			t.Errorf("facade Shapley sum %v != divergence %v", sum, top.Divergence)
		}
	}
	if len(rep.Significant(0.05)) == 0 {
		t.Error("no significant subgroups through facade")
	}
	if _, err := rep.TopKDiverse(tab, 3, 0.4); err != nil {
		t.Error(err)
	}
	if p := top.PValue(); p < 0 || p > 1 {
		t.Errorf("PValue = %v", p)
	}
}

func TestFacadeExtendedOutcomes(t *testing.T) {
	actual := []bool{true, true, false, false}
	pred := []bool{true, false, true, false}
	if TruePositiveRate(actual, pred).GlobalMean() != 0.5 {
		t.Error("TPR facade")
	}
	if TrueNegativeRate(actual, pred).GlobalMean() != 0.5 {
		t.Error("TNR facade")
	}
	if Precision(actual, pred).GlobalMean() != 0.5 {
		t.Error("Precision facade")
	}
	if FalseDiscoveryRate(actual, pred).GlobalMean() != 0.5 {
		t.Error("FDR facade")
	}
	if FalseOmissionRate(actual, pred).GlobalMean() != 0.5 {
		t.Error("FOR facade")
	}
	if PredictedPositiveRate(pred).GlobalMean() != 0.5 {
		t.Error("PPR facade")
	}
	if PositiveRate(actual).GlobalMean() != 0.5 {
		t.Error("PositiveRate facade")
	}
	o, err := FromBoolFunc("c", 4, func(i int) Tristate {
		if i == 0 {
			return True
		}
		if i == 1 {
			return False
		}
		return Bottom
	})
	if err != nil || o.GlobalMean() != 0.5 {
		t.Error("FromBoolFunc facade")
	}
}

func TestFacadeFDHierarchy(t *testing.T) {
	tab := NewTableBuilder().
		AddCategorical("city", []string{"SF", "LA", "NYC", "SF"}).
		AddCategorical("state", []string{"CA", "CA", "NY", "CA"}).
		MustBuild()
	if v := FDViolation(tab, "city", "state"); v != 0 {
		t.Errorf("FDViolation = %v", v)
	}
	h, err := FromFunctionalDependency(tab, "city", "state", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ValidateOn(tab); err != nil {
		t.Error(err)
	}
	ih, err := IntervalHierarchyFromCuts("x", [][]float64{{0}, {-1, 0, 1}})
	if err != nil || len(ih.LeafItems()) != 4 {
		t.Error("IntervalHierarchyFromCuts facade")
	}
}

func TestFacadeMonitoringWorkflow(t *testing.T) {
	// Explore on snapshot 1, persist hierarchies and top patterns, then
	// re-evaluate on snapshot 2 whose dictionary differs.
	tab1, actual1, pred1 := pipelineFixture(2500, 10)
	o1 := ErrorRate(actual1, pred1)
	hs, err := TreeSet(tab1, o1, TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	hs.Add(FlatCategorical(tab1, "g"))
	rep, err := Explore(tab1, ExploreConfig{Outcome: o1, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalHierarchySet(hs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalHierarchySet(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.AllItems()) != len(hs.AllItems()) {
		t.Fatal("hierarchy set changed through persistence")
	}

	tab2, actual2, pred2 := pipelineFixture(2500, 11)
	o2 := ErrorRate(actual2, pred2)
	var pats []Itemset
	for _, sg := range rep.TopK(3) {
		pats = append(pats, sg.Itemset)
	}
	got, err := EvaluateItemsets(tab2, o2, pats)
	if err != nil {
		t.Fatal(err)
	}
	// The planted anomaly (x>8 ∧ g=u) persists across snapshots; the top
	// pattern must stay strongly divergent under re-evaluation.
	if got[0].Divergence < 0.15 {
		t.Errorf("top pattern lost on new snapshot: Δ=%v (%s)", got[0].Divergence, got[0].Itemset)
	}
}
