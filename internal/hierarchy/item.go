// Package hierarchy models items, itemsets and item hierarchies — the
// paper's Definition 4.1. An item is a constraint on a single attribute:
// an interval for a continuous attribute, or a set of levels for a
// categorical one (generalized categorical items cover several levels, e.g.
// OCCP=MGR covering every managerial sub-occupation). An item hierarchy is a
// tree of items per attribute in which each node's domain is partitioned by
// its children's domains.
package hierarchy

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/dataset"
)

// Item is a constraint on one attribute. For continuous attributes the
// constraint is the half-open interval (Lo, Hi]; Lo may be -Inf and Hi +Inf.
// For categorical attributes the constraint is membership of the row's level
// code in Codes.
type Item struct {
	Attr string
	Kind dataset.Kind

	// Continuous payload: value v matches iff Lo < v ≤ Hi.
	Lo, Hi float64

	// Categorical payload: sorted, deduplicated level codes covered.
	Codes []int
	// Names holds the covered level names, parallel in meaning to Codes
	// but independent of any particular table's dictionary. Builders that
	// know the dictionary populate it; Rebind uses it to re-map the item
	// onto another table whose dictionary assigns different codes.
	Names []string

	// Label is the human-readable rendering, e.g. "age≤27" or "occ=MGR".
	// If empty, String derives one.
	Label string
}

// ContinuousItem returns the item attr ∈ (lo, hi].
func ContinuousItem(attr string, lo, hi float64) *Item {
	return &Item{Attr: attr, Kind: dataset.Continuous, Lo: lo, Hi: hi}
}

// CategoricalItem returns an item covering the given level codes of attr,
// displayed with the given label. Items built this way are bound to one
// table's dictionary; prefer CategoricalItemNamed (or the hierarchy
// builders, which record level names) when the item must survive
// re-evaluation on other tables.
func CategoricalItem(attr, label string, codes ...int) *Item {
	cs := append([]int(nil), codes...)
	sort.Ints(cs)
	cs = dedupInts(cs)
	return &Item{Attr: attr, Kind: dataset.Categorical, Codes: cs, Label: label}
}

// CategoricalItemNamed returns a categorical item carrying both the codes
// (valid for the dictionary of the table it was built from) and the level
// names, enabling Rebind onto tables with different dictionaries.
func CategoricalItemNamed(attr, label string, names []string, codes ...int) *Item {
	it := CategoricalItem(attr, label, codes...)
	it.Names = append([]string(nil), names...)
	sort.Strings(it.Names)
	return it
}

// Rebind returns an item equivalent to it but valid for the dictionary of
// table t: categorical codes are re-derived from the item's level names.
// Continuous items are returned unchanged. Level names absent from t
// simply cover no rows there. Items without recorded names cannot be
// re-mapped and are returned unchanged (correct only if t shares the
// original dictionary).
func (it *Item) Rebind(t *dataset.Table) *Item {
	if it.Kind != dataset.Categorical || len(it.Names) == 0 {
		return it
	}
	out := &Item{Attr: it.Attr, Kind: dataset.Categorical, Label: it.Label}
	out.Names = append([]string(nil), it.Names...)
	for _, name := range it.Names {
		if c := t.LevelCode(it.Attr, name); c >= 0 {
			out.Codes = append(out.Codes, c)
		}
	}
	sort.Ints(out.Codes)
	return out
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// MatchesFloat reports whether a continuous value satisfies the item.
// NaN never matches.
func (it *Item) MatchesFloat(v float64) bool {
	if it.Kind != dataset.Continuous || math.IsNaN(v) {
		return false
	}
	return it.Lo < v && v <= it.Hi
}

// MatchesCode reports whether a categorical level code satisfies the item.
func (it *Item) MatchesCode(c int) bool {
	if it.Kind != dataset.Categorical {
		return false
	}
	i := sort.SearchInts(it.Codes, c)
	return i < len(it.Codes) && it.Codes[i] == c
}

// IsUniversal reports whether the item covers the entire attribute domain
// (an unbounded interval). Universal items correspond to hierarchy roots and
// are not used as exploration items.
func (it *Item) IsUniversal() bool {
	return it.Kind == dataset.Continuous && math.IsInf(it.Lo, -1) && math.IsInf(it.Hi, 1)
}

// String renders the item. Continuous items use the compact forms
// "attr≤a", "attr>a" and "attr=(a-b]".
func (it *Item) String() string {
	if it.Label != "" {
		return it.Label
	}
	if it.Kind == dataset.Categorical {
		return fmt.Sprintf("%s∈%v", it.Attr, it.Codes)
	}
	switch {
	case it.IsUniversal():
		return it.Attr + "=*"
	case math.IsInf(it.Lo, -1):
		return fmt.Sprintf("%s≤%s", it.Attr, fnum(it.Hi))
	case math.IsInf(it.Hi, 1):
		return fmt.Sprintf("%s>%s", it.Attr, fnum(it.Lo))
	default:
		return fmt.Sprintf("%s=(%s-%s]", it.Attr, fnum(it.Lo), fnum(it.Hi))
	}
}

func fnum(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%.6g", v), ".0")
}

// SubsumesItem reports whether it covers a superset of the domain of other.
// Both items must refer to the same attribute; otherwise it returns false.
func (it *Item) SubsumesItem(other *Item) bool {
	if it.Attr != other.Attr || it.Kind != other.Kind {
		return false
	}
	if it.Kind == dataset.Continuous {
		return it.Lo <= other.Lo && other.Hi <= it.Hi
	}
	for _, c := range other.Codes {
		if !it.MatchesCode(c) {
			return false
		}
	}
	return true
}

// Rows returns the bitset of table rows satisfying the item. Missing
// (NaN) continuous values match no item.
func (it *Item) Rows(t *dataset.Table) *bitvec.Vector {
	v := bitvec.New(t.NumRows())
	switch it.Kind {
	case dataset.Continuous:
		for i, x := range t.Floats(it.Attr) {
			if it.MatchesFloat(x) {
				v.Set(i)
			}
		}
	case dataset.Categorical:
		codes := t.Codes(it.Attr)
		// Small covered sets: mark membership via map for O(n).
		in := make(map[int]bool, len(it.Codes))
		for _, c := range it.Codes {
			in[c] = true
		}
		for i, c := range codes {
			if in[c] {
				v.Set(i)
			}
		}
	}
	return v
}

// Itemset is a conjunction of items, at most one per attribute.
type Itemset []*Item

// Valid reports whether the itemset references each attribute at most once.
func (s Itemset) Valid() bool {
	seen := map[string]bool{}
	for _, it := range s {
		if seen[it.Attr] {
			return false
		}
		seen[it.Attr] = true
	}
	return true
}

// String renders the itemset as a sorted, comma-separated conjunction.
func (s Itemset) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// Rows returns the bitset of rows satisfying every item of the set.
func (s Itemset) Rows(t *dataset.Table) *bitvec.Vector {
	if len(s) == 0 {
		return bitvec.NewFull(t.NumRows())
	}
	v := s[0].Rows(t)
	for _, it := range s[1:] {
		v.And(it.Rows(t))
	}
	return v
}
