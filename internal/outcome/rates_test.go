package outcome

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// confusion fixture:
//
//	row  actual predicted  class
//	0    T      T          TP
//	1    T      F          FN
//	2    F      T          FP
//	3    F      F          TN
//	4    T      T          TP
//	5    F      T          FP
var (
	confActual = []bool{true, true, false, false, true, false}
	confPred   = []bool{true, false, true, false, true, true}
)

func TestTruePositiveRate(t *testing.T) {
	o := TruePositiveRate(confActual, confPred)
	if o.Valid.Count() != 3 { // three actual positives
		t.Fatalf("valid = %d", o.Valid.Count())
	}
	if got := o.GlobalMean(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("TPR = %v, want 2/3", got)
	}
}

func TestTrueNegativeRate(t *testing.T) {
	o := TrueNegativeRate(confActual, confPred)
	if o.Valid.Count() != 3 { // three actual negatives
		t.Fatalf("valid = %d", o.Valid.Count())
	}
	if got := o.GlobalMean(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("TNR = %v, want 1/3", got)
	}
}

func TestPrecisionAndFDR(t *testing.T) {
	p := Precision(confActual, confPred)
	f := FalseDiscoveryRate(confActual, confPred)
	// Predicted positives: rows 0, 2, 4, 5 → precision 2/4.
	if p.Valid.Count() != 4 || f.Valid.Count() != 4 {
		t.Fatalf("valid = %d/%d, want 4", p.Valid.Count(), f.Valid.Count())
	}
	if got := p.GlobalMean(); got != 0.5 {
		t.Errorf("precision = %v, want 0.5", got)
	}
	if got := f.GlobalMean(); got != 0.5 {
		t.Errorf("FDR = %v, want 0.5", got)
	}
}

func TestFalseOmissionRate(t *testing.T) {
	o := FalseOmissionRate(confActual, confPred)
	// Predicted negatives: rows 1, 3 → one actual positive → FOR 1/2.
	if o.Valid.Count() != 2 {
		t.Fatalf("valid = %d, want 2", o.Valid.Count())
	}
	if got := o.GlobalMean(); got != 0.5 {
		t.Errorf("FOR = %v, want 0.5", got)
	}
}

func TestPredictedPositiveAndPositiveRate(t *testing.T) {
	ppr := PredictedPositiveRate(confPred)
	pr := PositiveRate(confActual)
	if ppr.Valid.Count() != 6 || pr.Valid.Count() != 6 {
		t.Fatal("parity rates must be defined everywhere")
	}
	if got := ppr.GlobalMean(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("PPR = %v, want 2/3", got)
	}
	if got := pr.GlobalMean(); got != 0.5 {
		t.Errorf("positive rate = %v, want 0.5", got)
	}
}

func TestFromBoolFunc(t *testing.T) {
	o, err := FromBoolFunc("custom", 4, func(row int) Tristate {
		switch row {
		case 0:
			return True
		case 1:
			return False
		default:
			return Bottom
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Valid.Count() != 2 || o.GlobalMean() != 0.5 {
		t.Errorf("custom outcome wrong: valid=%d mean=%v", o.Valid.Count(), o.GlobalMean())
	}
	if !o.Boolean {
		t.Error("tristate outcome must be boolean")
	}
	if _, err := FromBoolFunc("bad", 1, func(int) Tristate { return Tristate(99) }); err == nil {
		t.Error("invalid tristate should fail")
	}
}

// Identity: FDR = 1 − precision on every subgroup where both are defined.
func TestQuickFDRPrecisionComplement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(100)
		actual := make([]bool, n)
		pred := make([]bool, n)
		anyPos := false
		for i := range actual {
			actual[i] = r.Intn(2) == 0
			pred[i] = r.Intn(2) == 0
			if pred[i] {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		p := Precision(actual, pred)
		fd := FalseDiscoveryRate(actual, pred)
		return math.Abs(p.GlobalMean()+fd.GlobalMean()-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Identity: TPR = 1 − FNR and TNR = 1 − FPR.
func TestQuickRateComplements(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(100)
		actual := make([]bool, n)
		pred := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range actual {
			actual[i] = r.Intn(2) == 0
			pred[i] = r.Intn(2) == 0
			if actual[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		tpr := TruePositiveRate(actual, pred).GlobalMean()
		fnr := FalseNegativeRate(actual, pred).GlobalMean()
		tnr := TrueNegativeRate(actual, pred).GlobalMean()
		fpr := FalsePositiveRate(actual, pred).GlobalMean()
		return math.Abs(tpr+fnr-1) < 1e-12 && math.Abs(tnr+fpr-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatePanicsOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"TPR":       func() { TruePositiveRate([]bool{true}, nil) },
		"TNR":       func() { TrueNegativeRate(nil, []bool{true}) },
		"Precision": func() { Precision([]bool{true}, []bool{true, false}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
