// Command hdivexplorerd serves H-DivExplorer explorations over HTTP.
//
// It loads one or more CSV datasets at startup, then answers exploration
// requests against them, caching the discretized item hierarchies and
// mining universes so repeated explorations skip straight to mining:
//
//	hdivexplorerd -addr :8080 -dataset compas=compas.csv -dataset census=census.csv
//
//	curl -s localhost:8080/v1/datasets
//	curl -s -X POST localhost:8080/v1/explore -d '{
//	    "dataset": "compas", "stat": "fpr",
//	    "actual": "recid", "predicted": "pred", "top": 10
//	}'
//
// Endpoints: POST /v1/explore, POST /v1/explore/batch (several
// statistics over one mining pass), GET /v1/datasets, GET /v1/progress,
// GET /v1/progress/{id}, GET /v1/trace/{id}, GET /healthz, GET /metrics
// (Prometheus text format). SIGINT/SIGTERM trigger a graceful shutdown
// that drains in-flight explorations.
//
// Every exploration carries a correlation ID (client-supplied via
// X-Request-ID or generated, echoed in the response header) that keys
// the structured request log, the live progress endpoint and the
// Chrome/Perfetto trace export. -debug-addr starts a second listener
// with net/http/pprof and expvar handlers for live profiling:
//
//	hdivexplorerd -dataset d=d.csv -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=5
//	curl -s localhost:6060/debug/vars
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// datasetFlags collects repeated -dataset name=path.csv values.
type datasetFlags []server.DatasetConfig

func (d *datasetFlags) String() string {
	var parts []string
	for _, c := range *d {
		parts = append(parts, c.Name+"="+c.Path)
	}
	return strings.Join(parts, ",")
}

func (d *datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.csv, got %q", v)
	}
	*d = append(*d, server.DatasetConfig{Name: name, Path: path})
	return nil
}

// daemonConfig holds the flag values for one daemon run.
type daemonConfig struct {
	datasets  []server.DatasetConfig
	addr      string
	debugAddr string
	inflight  int
	cacheMax  int
	timeout   time.Duration
	drain     time.Duration
	logJSON   bool
}

func main() {
	var (
		datasets  datasetFlags
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional second listener for /debug/pprof and /debug/vars (e.g. localhost:6060); off when empty")
		inflight  = flag.Int("max-inflight", 0, "max concurrent explorations (0 = GOMAXPROCS)")
		cacheMax  = flag.Int("cache-max", 32, "max cached universes before LRU eviction (negative = unbounded)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request exploration timeout")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Var(&datasets, "dataset", "dataset to serve as name=path.csv (repeatable, required)")
	flag.Parse()
	cfg := daemonConfig{
		datasets: datasets, addr: *addr, debugAddr: *debugAddr,
		inflight: *inflight, cacheMax: *cacheMax,
		timeout: *timeout, drain: *drain, logJSON: *logJSON,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hdivexplorerd:", err)
		os.Exit(1)
	}
}

// debugMux returns the opt-in debug handler set: the net/http/pprof
// endpoints plus expvar, registered explicitly so nothing depends on
// http.DefaultServeMux.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func run(cfg daemonConfig) error {
	if len(cfg.datasets) == 0 {
		return fmt.Errorf("at least one -dataset name=path.csv is required")
	}
	var logger *slog.Logger
	if cfg.logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	h, err := server.New(server.Config{
		Datasets:       cfg.datasets,
		MaxInFlight:    cfg.inflight,
		RequestTimeout: cfg.timeout,
		CacheMax:       cfg.cacheMax,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	for _, name := range h.Datasets() {
		logger.Info("serving dataset", slog.String("dataset", name))
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var dsrv *http.Server
	if cfg.debugAddr != "" {
		dsrv = &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug listener on", slog.String("addr", cfg.debugAddr))
			if err := dsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("addr", cfg.addr))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight explorations
	// finish within the drain budget, then force-close stragglers.
	logger.Info("shutting down", slog.Duration("drain", cfg.drain))
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if dsrv != nil {
		dsrv.Close() // debug listener holds no exploration state; close hard
	}
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
