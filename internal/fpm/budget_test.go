package fpm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func TestBudgetValidate(t *testing.T) {
	for _, b := range []Budget{
		{MaxCandidates: -1},
		{MaxItemsets: -1},
		{SoftDeadline: -time.Second},
	} {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", b)
		}
	}
	if err := (Budget{}).Validate(); err != nil {
		t.Fatalf("zero budget rejected: %v", err)
	}
	if !(Budget{}).IsZero() {
		t.Fatal("zero budget not IsZero")
	}
	if (Budget{MaxHeapBytes: 1}).IsZero() {
		t.Fatal("heap budget reported IsZero")
	}
}

// TestBudgetGenerousMatchesUnbudgeted pins that merely enabling the
// budget machinery (without exhausting it) changes nothing: results are
// identical to an unbudgeted run and the report is not truncated.
func TestBudgetGenerousMatchesUnbudgeted(t *testing.T) {
	u, o := randomUniverse(t, 7, 400, true)
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		base, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: alg, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		big, err := Mine(u, o, Options{
			MinSupport: 0.05, Algorithm: alg, Workers: 4,
			Budget: Budget{MaxCandidates: 1 << 30, MaxItemsets: 1 << 30, SoftDeadline: time.Hour},
		})
		if err != nil {
			t.Fatal(err)
		}
		if big.Truncated || big.Exhausted != "" {
			t.Fatalf("%v: generous budget reported truncated (%q)", alg, big.Exhausted)
		}
		sameRanked(t, alg.String(), sortedCopy(big, o), sortedCopy(base, o))
		if big.Stats != base.Stats {
			t.Errorf("%v: stats differ: %+v vs %+v", alg, big.Stats, base.Stats)
		}
	}
}

// TestBudgetTruncationDeterministic is the acceptance property for
// deterministic budgets: for each algorithm, the truncated ranked output
// is identical — bitwise, including moments — across Workers and Shards
// in {1,4}×{1,4}, and the result is flagged with the exhausted dimension.
func TestBudgetTruncationDeterministic(t *testing.T) {
	u, o := randomUniverse(t, 11, 400, true)
	budgets := []struct {
		name string
		b    Budget
		dim  string
	}{
		{"candidates", Budget{MaxCandidates: 40}, ExhaustedCandidates},
		{"itemsets", Budget{MaxItemsets: 12}, ExhaustedItemsets},
		{"both", Budget{MaxCandidates: 60, MaxItemsets: 9}, ""}, // either dimension may win
	}
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		for _, bc := range budgets {
			var ref *Result
			for _, workers := range []int{1, 4} {
				for _, shards := range []int{1, 4} {
					label := fmt.Sprintf("%v/%s/w%d/s%d", alg, bc.name, workers, shards)
					res, err := Mine(u, o, Options{
						MinSupport: 0.05, Algorithm: alg,
						Workers: workers, Shards: shards, Budget: bc.b,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if !res.Truncated {
						t.Fatalf("%s: not truncated (budget too generous for the fixture?)", label)
					}
					if bc.dim != "" && res.Exhausted != bc.dim {
						t.Errorf("%s: exhausted %q, want %q", label, res.Exhausted, bc.dim)
					}
					if bc.b.MaxItemsets > 0 && len(res.Itemsets) > bc.b.MaxItemsets {
						t.Errorf("%s: %d itemsets exceed cap %d", label, len(res.Itemsets), bc.b.MaxItemsets)
					}
					if ref == nil {
						ref = res
						continue
					}
					sameRanked(t, label, sortedCopy(res, o), sortedCopy(ref, o))
					if res.Stats != ref.Stats {
						t.Errorf("%s: stats differ: %+v vs %+v", label, res.Stats, ref.Stats)
					}
					if res.Exhausted != ref.Exhausted {
						t.Errorf("%s: exhausted %q vs reference %q", label, res.Exhausted, ref.Exhausted)
					}
				}
			}
			// A truncated run must be a genuine cut, not the full lattice.
			full, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Itemsets) >= len(full.Itemsets) {
				t.Errorf("%v/%s: truncated run found %d itemsets, full run %d",
					alg, bc.name, len(ref.Itemsets), len(full.Itemsets))
			}
		}
	}
}

// TestBudgetSoftDimensions exercises the cooperative (nondeterministic)
// dimensions at the tracker level, where they are deterministic: the
// deadline timer and the heap watermark both raise the soft flag, and
// truncated() reports them.
func TestBudgetSoftDimensions(t *testing.T) {
	dl := newBudgetTracker(Budget{SoftDeadline: time.Millisecond})
	defer dl.release()
	deadline := time.Now().Add(2 * time.Second)
	for dl.softExhausted() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if dim := dl.softExhausted(); dim != ExhaustedDeadline {
		t.Fatalf("deadline flag = %q", dim)
	}
	if trunc, dim := dl.truncated(); !trunc || dim != ExhaustedDeadline {
		t.Fatalf("truncated() = %v, %q", trunc, dim)
	}

	// Any live process holds more than one byte of heap, so the first
	// sample must trip a 1-byte watermark.
	hp := newBudgetTracker(Budget{MaxHeapBytes: 1})
	defer hp.release()
	hp.allowCandidates(1)
	if dim := hp.softExhausted(); dim != ExhaustedHeap {
		t.Fatalf("heap flag = %q", dim)
	}

	// Deterministic exhaustion wins the label when both fire.
	both := newBudgetTracker(Budget{MaxCandidates: 1, MaxHeapBytes: 1})
	defer both.release()
	both.allowCandidates(5)
	if trunc, dim := both.truncated(); !trunc || dim != ExhaustedCandidates {
		t.Fatalf("mixed truncated() = %v, %q", trunc, dim)
	}
}

// TestMineSoftDeadlineTruncates drives a soft deadline through MineMulti:
// an already-expired deadline must yield a valid, truncated (not failed)
// result whose exhausted dimension is "deadline".
func TestMineSoftDeadlineTruncates(t *testing.T) {
	u, o := randomUniverse(t, 13, 400, true)
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		res, err := Mine(u, o, Options{
			MinSupport: 0.05, Algorithm: alg, Workers: 4,
			Budget: Budget{SoftDeadline: time.Nanosecond},
		})
		if err != nil {
			t.Fatalf("%v: soft deadline returned error %v", alg, err)
		}
		// The 1ns timer may lose the race against a fast mine; when it
		// does fire, the labelling must be right.
		if res.Truncated && res.Exhausted != ExhaustedDeadline {
			t.Errorf("%v: exhausted %q, want %q", alg, res.Exhausted, ExhaustedDeadline)
		}
	}
}

// TestMineFaultInjection pins the failpoint wiring inside both miners:
// an armed candidate-batch or shard-merge site surfaces as a clean error
// (never a crash), and a panic-armed site is recovered into a
// *engine.PanicError with the recovery counted.
func TestMineFaultInjection(t *testing.T) {
	u, o := randomUniverse(t, 17, 400, true)
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		for _, site := range []string{faultinject.SiteCandidateBatch, faultinject.SiteShardMerge} {
			t.Cleanup(faultinject.Reset)
			if err := faultinject.Arm(site, "error(injected)"); err != nil {
				t.Fatal(err)
			}
			_, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: alg, Workers: 4, Shards: 4})
			var fe *faultinject.Error
			if !errors.As(err, &fe) || fe.Site != site {
				t.Fatalf("%v/%s: want injected *faultinject.Error, got %v", alg, site, err)
			}
			faultinject.Reset()
			// The same call with failpoints disarmed succeeds.
			if _, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: alg, Workers: 4, Shards: 4}); err != nil {
				t.Fatalf("%v/%s: disarmed run failed: %v", alg, site, err)
			}
		}

		t.Cleanup(faultinject.Reset)
		if err := faultinject.Arm(faultinject.SiteCandidateBatch, "panic"); err != nil {
			t.Fatal(err)
		}
		tr := obs.New()
		_, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: alg, Workers: 4, Tracer: tr})
		var pe *engine.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%v: want *engine.PanicError, got %v", alg, err)
		}
		if pe.Stack == "" {
			t.Errorf("%v: recovered panic carries no stack", alg)
		}
		if c := tr.Snapshot().Counters[obs.CtrPanicsRecovered]; c < 1 {
			t.Errorf("%v: panic recovery not counted", alg)
		}
		faultinject.Reset()
	}
}

// TestBudgetExhaustionCounted pins the obs counter contract: a truncated
// run records fpm.budget_exhausted.<dimension> on the tracer.
func TestBudgetExhaustionCounted(t *testing.T) {
	u, o := randomUniverse(t, 19, 400, true)
	tr := obs.New()
	res, err := Mine(u, o, Options{
		MinSupport: 0.05, Algorithm: FPGrowth, Tracer: tr,
		Budget: Budget{MaxItemsets: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("not truncated")
	}
	if c := tr.Snapshot().Counters[obs.CtrBudgetExhaustedPrefix+res.Exhausted]; c != 1 {
		t.Fatalf("budget_exhausted.%s = %d, want 1", res.Exhausted, c)
	}
}
