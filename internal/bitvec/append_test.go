package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomVector returns a vector of n bits where each bit is set with
// probability p.
func randomDensityVector(rng *rand.Rand, n int, p float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			v.Set(i)
		}
	}
	return v
}

// tailWordsOf extracts the AppendWords tail for growing a prefix of oldLen
// bits to the full vector: the words from oldLen/64 on, with the frozen
// prefix's bits masked out of the first word.
func tailWordsOf(full *Vector, oldLen int) []uint64 {
	start := oldLen / wordBits
	newWords := (full.n + wordBits - 1) / wordBits
	tail := make([]uint64, newWords-start)
	for i := range tail {
		tail[i] = full.words[start+i]
	}
	if r := oldLen % wordBits; r != 0 {
		tail[0] &^= (uint64(1) << uint(r)) - 1
	}
	return tail
}

// prefixOf returns a fresh vector holding the first oldLen bits of full.
func prefixOf(full *Vector, oldLen int) *Vector {
	v := New(oldLen)
	full.ForEach(func(i int) {
		if i < oldLen {
			v.Set(i)
		}
	})
	return v
}

func TestVectorAppendWords(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ oldLen, newLen int }{
		{0, 1}, {1, 2}, {63, 64}, {64, 65}, {100, 130}, {100, 100},
		{1000, 70000}, {65536, 66000}, {65530, 131072}, {200000, 220001},
	} {
		full := randomDensityVector(rng, tc.newLen, 0.3)
		v := prefixOf(full, tc.oldLen)
		v.AppendWords(tailWordsOf(full, tc.oldLen), tc.newLen)
		if !v.Equal(full) {
			t.Errorf("AppendWords(%d->%d): grown vector differs", tc.oldLen, tc.newLen)
		}
	}
}

func TestVectorAppendWordsPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	v := New(100)
	mustPanic("shrink", func() { v.AppendWords(nil, 50) })
	mustPanic("tail size", func() { v.AppendWords(make([]uint64, 5), 130) })
	mustPanic("prefix overlap", func() { v.AppendWords([]uint64{1 << 10}, 130) })
	u := New(100)
	mustPanic("unaligned container", func() { u.AppendContainer(make([]uint64, 1), 101) })
}

// TestCompressedAppendWordsIdentical pins the incremental-maintenance
// invariant: a compressed set grown by AppendWords is structurally
// identical (container kinds, payloads, cardinality) to Compress of the
// equivalent full dense vector, across densities that select array, run
// and bitmap containers and splits landing mid-word, mid-container and on
// container boundaries.
func TestCompressedAppendWordsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	densities := []float64{0.0005, 0.01, 0.2, 0.9}
	splits := []struct{ oldLen, newLen int }{
		{1000, 1100}, {60000, 70000}, {65536, 131072}, {65000, 66000},
		{131072, 131073}, {100000, 300000}, {1, 200000},
	}
	for _, p := range densities {
		for _, tc := range splits {
			full := randomDensityVector(rng, tc.newLen, p)
			want := Compress(full)
			grown := Compress(prefixOf(full, tc.oldLen)).AppendWords(tailWordsOf(full, tc.oldLen), tc.newLen)
			if !reflect.DeepEqual(want, grown) {
				t.Errorf("p=%g %d->%d: grown compressed set differs from from-scratch Compress", p, tc.oldLen, tc.newLen)
			}
		}
	}
}

func TestCompressedAppendContainer(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	full := randomDensityVector(rng, 5*containerBits/2, 0.005)
	want := Compress(full)
	grown := Compress(prefixOf(full, containerBits))
	chunk := tailWordsOf(full, containerBits)
	grown = grown.AppendContainer(chunk[:containerWords], 2*containerBits)
	grown = grown.AppendContainer(chunk[containerWords:], 5*containerBits/2)
	if !reflect.DeepEqual(want, grown) {
		t.Error("AppendContainer chain differs from from-scratch Compress")
	}
}

// TestGrowMatchesPack pins the representation re-selection rule: Grow must
// return exactly what Pack of the full dense vector returns — same
// representation, same encoding — whatever representation the prefix had.
func TestGrowMatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, p := range []float64{0.001, 0.01, 1.0 / 64, 0.05, 0.5} {
		for _, tc := range []struct{ oldLen, newLen int }{
			{5000, 5500}, {65530, 131072}, {100000, 110000},
		} {
			full := randomDensityVector(rng, tc.newLen, p)
			want := Pack(full)
			prefix := prefixOf(full, tc.oldLen)
			tail := tailWordsOf(full, tc.oldLen)
			for _, s := range []Set{Set(prefix.Clone()), Set(Compress(prefix))} {
				got := Grow(s, tail, tc.newLen)
				if reflect.TypeOf(got) != reflect.TypeOf(want) {
					t.Fatalf("p=%g %d->%d: Grow(%T) selected %T, Pack selected %T",
						p, tc.oldLen, tc.newLen, s, got, want)
				}
				switch w := want.(type) {
				case *Vector:
					if !got.(*Vector).Equal(w) {
						t.Errorf("p=%g %d->%d: dense Grow differs", p, tc.oldLen, tc.newLen)
					}
				case *Compressed:
					if !reflect.DeepEqual(got, w) {
						t.Errorf("p=%g %d->%d: compressed Grow differs", p, tc.oldLen, tc.newLen)
					}
				}
			}
		}
	}
}
