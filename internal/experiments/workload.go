// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI). Each experiment has a typed runner returning structured
// results (used by tests and benchmarks) and a renderer producing the
// table/series text (used by cmd/experiments). DESIGN.md §3 maps experiment
// IDs to paper artifacts.
package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/hierarchy"
	"repro/internal/model"
	"repro/internal/outcome"
)

// Config scales the experiment suite. The zero value gives a laptop-scale
// run: synthetic analogs are generated at reduced sizes and the random
// forest is small. FullScale restores the paper's dataset sizes.
type Config struct {
	// Seed drives data generation and model training.
	Seed int64
	// FullScale uses the paper's dataset sizes (Table II) instead of the
	// reduced defaults.
	FullScale bool
	// ForestTrees is the random-forest size for the UCI analogs
	// (default 15).
	ForestTrees int
	// SizeOverride forces specific dataset sizes by name, overriding both
	// the reduced defaults and FullScale. Used by schema-only probes and
	// tests.
	SizeOverride map[string]int
}

func (c Config) trees() int {
	if c.ForestTrees > 0 {
		return c.ForestTrees
	}
	return 15
}

// reducedSizes keeps quick runs quick; FullScale uses the generators'
// defaults (the paper's sizes).
var reducedSizes = map[string]int{
	"adult":          8_000,
	"bank":           8_000,
	"compas":         6_172,
	"folktables":     20_000,
	"german":         1_000,
	"intentions":     6_000,
	"synthetic-peak": 10_000,
	"wine":           5_000,
}

func (c Config) size(name string) int {
	if n, ok := c.SizeOverride[name]; ok {
		return n
	}
	if c.FullScale {
		return 0 // generator default = paper size
	}
	return reducedSizes[name]
}

// Workload is a ready-to-explore dataset: feature table, outcome function,
// and the hierarchies to use for its categorical attributes.
type Workload struct {
	Name    string
	Table   *dataset.Table
	Outcome *outcome.Outcome
	// catHier builds the categorical hierarchies (flat for most datasets,
	// the OCCP/POBP taxonomies for folktables).
	catHier func() []*hierarchy.Hierarchy
}

// ClassificationNames lists the seven classification workloads of the
// quantitative experiments (Figures 2–4), in the paper's order.
var ClassificationNames = []string{
	"adult", "bank", "compas", "german", "intentions", "synthetic-peak", "wine",
}

// Load builds the named workload. For compas the outcome is the FPR of the
// proprietary-style score; for synthetic-peak the error rate of the
// injected predictions; for folktables the income itself; for the UCI
// analogs the error rate of a random forest trained on the data (the
// paper's protocol).
func Load(name string, cfg Config) (*Workload, error) {
	gen := datagen.Config{N: cfg.size(name), Seed: cfg.Seed}
	switch name {
	case "compas":
		d := datagen.Compas(gen)
		return classified(name, d.Table, outcome.FalsePositiveRate(d.Actual, d.Predicted)), nil
	case "synthetic-peak":
		d := datagen.SyntheticPeak(gen)
		return classified(name, d.Table, outcome.ErrorRate(d.Actual, d.Predicted)), nil
	case "folktables":
		d := datagen.Folktables(gen)
		w := classified(name, d.Table, outcome.Numeric("income", d.Target))
		w.catHier = func() []*hierarchy.Hierarchy {
			hs := datagen.FolktablesTaxonomies(d.Table)
			for _, f := range d.Table.Fields() {
				if f.Kind == dataset.Categorical && f.Name != "OCCP" && f.Name != "POBP" {
					hs = append(hs, hierarchy.FlatCategorical(d.Table, f.Name))
				}
			}
			return hs
		}
		return w, nil
	case "adult", "bank", "german", "intentions", "wine":
		var d datagen.Classified
		switch name {
		case "adult":
			d = datagen.Adult(gen)
		case "bank":
			d = datagen.Bank(gen)
		case "german":
			d = datagen.German(gen)
		case "intentions":
			d = datagen.Intentions(gen)
		case "wine":
			d = datagen.Wine(gen)
		}
		pred, err := trainPredict(d.Table, d.Actual, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: training on %s: %w", name, err)
		}
		return classified(name, d.Table, outcome.ErrorRate(d.Actual, pred)), nil
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
}

func classified(name string, t *dataset.Table, o *outcome.Outcome) *Workload {
	w := &Workload{Name: name, Table: t, Outcome: o}
	w.catHier = func() []*hierarchy.Hierarchy {
		var hs []*hierarchy.Hierarchy
		for _, f := range t.Fields() {
			if f.Kind == dataset.Categorical {
				hs = append(hs, hierarchy.FlatCategorical(t, f.Name))
			}
		}
		return hs
	}
	return w
}

// trainPredict fits the paper's "random forest with default parameters"
// stand-in and returns its training-set predictions.
func trainPredict(t *dataset.Table, labels []bool, cfg Config) ([]bool, error) {
	f, err := model.TrainForest(t, t.Names(), labels, model.ForestOptions{
		NumTrees: cfg.trees(),
		Seed:     cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return f.Predict(t)
}

// Hierarchies builds the full hierarchy set for the workload: divergence
// trees (or entropy trees) for every continuous attribute at tree support
// st, plus the workload's categorical hierarchies.
func (w *Workload) Hierarchies(st float64, crit discretize.Criterion) (*hierarchy.Set, error) {
	set, err := discretize.TreeSet(w.Table, w.Outcome, discretize.TreeOptions{
		Criterion:  crit,
		MinSupport: st,
	})
	if err != nil {
		return nil, err
	}
	for _, h := range w.catHier() {
		set.Add(h)
	}
	return set, nil
}
