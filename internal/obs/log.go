package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"sync/atomic"
)

// Request correlation. Every exploration request gets one opaque ID,
// generated at the HTTP edge (or supplied by the client via the
// X-Request-ID header) and threaded through context.Context into the
// pipeline: the server tags its log lines and the per-request tracer
// (Tracer.SetID) with it, so a span tree, a progress endpoint reply and
// a request log line can all be joined on one key.

type requestIDKey struct{}

var requestSeq atomic.Int64

// NewRequestID returns a fresh 16-hex-digit correlation ID. IDs come
// from crypto/rand; on the (effectively impossible) failure path a
// process-local sequence keeps them unique.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		b[7] = byte(requestSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the correlation ID from the context, "" if none.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// RequestLogger returns base with the request_id attribute attached to
// every record, the logger request handlers thread through their call
// chain. A nil base yields the no-op logger.
func RequestLogger(base *slog.Logger, id string) *slog.Logger {
	if base == nil {
		return NopLogger()
	}
	return base.With(slog.String("request_id", id))
}

// NopLogger returns a logger that discards every record; it is the
// default for servers constructed without an explicit logger, keeping
// call sites free of nil checks.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}
