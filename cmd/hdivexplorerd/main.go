// Command hdivexplorerd serves H-DivExplorer explorations over HTTP.
//
// It loads one or more CSV datasets at startup, then answers exploration
// requests against them, caching the discretized item hierarchies and
// mining universes so repeated explorations skip straight to mining:
//
//	hdivexplorerd -addr :8080 -dataset compas=compas.csv -dataset census=census.csv
//
//	curl -s localhost:8080/v1/datasets
//	curl -s -X POST localhost:8080/v1/explore -d '{
//	    "dataset": "compas", "stat": "fpr",
//	    "actual": "recid", "predicted": "pred", "top": 10
//	}'
//
// Endpoints: POST /v1/explore, GET /v1/datasets, GET /healthz,
// GET /metrics (Prometheus text format). SIGINT/SIGTERM trigger a
// graceful shutdown that drains in-flight explorations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// datasetFlags collects repeated -dataset name=path.csv values.
type datasetFlags []server.DatasetConfig

func (d *datasetFlags) String() string {
	var parts []string
	for _, c := range *d {
		parts = append(parts, c.Name+"="+c.Path)
	}
	return strings.Join(parts, ",")
}

func (d *datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.csv, got %q", v)
	}
	*d = append(*d, server.DatasetConfig{Name: name, Path: path})
	return nil
}

func main() {
	var (
		datasets datasetFlags
		addr     = flag.String("addr", ":8080", "listen address")
		inflight = flag.Int("max-inflight", 0, "max concurrent explorations (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request exploration timeout")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	)
	flag.Var(&datasets, "dataset", "dataset to serve as name=path.csv (repeatable, required)")
	flag.Parse()
	if err := run(datasets, *addr, *inflight, *timeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "hdivexplorerd:", err)
		os.Exit(1)
	}
}

func run(datasets []server.DatasetConfig, addr string, inflight int, timeout, drain time.Duration) error {
	if len(datasets) == 0 {
		return fmt.Errorf("at least one -dataset name=path.csv is required")
	}
	h, err := server.New(server.Config{
		Datasets:       datasets,
		MaxInFlight:    inflight,
		RequestTimeout: timeout,
	})
	if err != nil {
		return err
	}
	for _, name := range h.Datasets() {
		log.Printf("serving dataset %q", name)
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight explorations
	// finish within the drain budget, then force-close stragglers.
	log.Printf("shutting down, draining for up to %s", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
