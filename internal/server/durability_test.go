package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/wal"
)

// durableConfig builds a WAL-enabled server config over the anomaly
// fixture.
func durableConfig(t *testing.T, walDir string) Config {
	t.Helper()
	return Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		WALDir:   walDir,
		WALSync:  wal.SyncAlways,
	}
}

// activeSegment returns the path of the dataset's highest-numbered WAL
// segment — the one a crash would tear.
func activeSegment(t *testing.T, walDir, dataset string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(walDir, dataset, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatalf("no WAL segments under %s/%s", walDir, dataset)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

// chopTail truncates the file by n bytes, simulating a crash that lost
// the unsynced tail of the log.
func chopTail(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRestartRoundTrip is the core durability contract over the
// server surface: acknowledged appends survive a restart against the
// same WAL directory — same epoch, byte-identical explore output — and
// pinned replays of recent epochs keep answering because the epoch
// history is rebuilt during replay.
func TestDurableRestartRoundTrip(t *testing.T) {
	walDir := t.TempDir()
	s1 := newTestServer(t, durableConfig(t, walDir))
	for i := 0; i < 2; i++ {
		if rec := postAppend(t, s1, "anomaly", quietBatch(30, 600+30*i)); rec.Code != 200 {
			t.Fatalf("append %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv"}
	before := postExplore(t, s1, req)
	if before.Code != 200 {
		t.Fatalf("explore before restart: %d %s", before.Code, before.Body.String())
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, durableConfig(t, walDir))
	t.Cleanup(func() { s2.Close() })
	if epoch, rows := datasetEpoch(t, s2, "anomaly"); epoch != 3 || rows != 660 {
		t.Fatalf("recovered state: epoch %d rows %d, want 3/660", epoch, rows)
	}
	after := postExplore(t, s2, req)
	if after.Code != 200 {
		t.Fatalf("explore after restart: %d %s", after.Code, after.Body.String())
	}
	if !bytes.Equal(before.Body.Bytes(), after.Body.Bytes()) {
		t.Errorf("explore diverged across restart:\nbefore:\n%s\nafter:\n%s", before.Body.Bytes(), after.Body.Bytes())
	}

	// Pinned replay survives the restart: epoch 2's universe was never
	// built on s2, but its frozen table was reconstructed during replay.
	pinned := req
	pinned.Epoch = 2
	repin := postExplore(t, s2, pinned)
	if repin.Code != 200 {
		t.Fatalf("pinned epoch 2 after restart: %d %s", repin.Code, repin.Body.String())
	}
	if got := repin.Header().Get("X-Dataset-Epoch"); got != "2" {
		t.Errorf("pinned replay epoch header = %q, want 2", got)
	}

	// And the log keeps accepting appends where it left off.
	if rec := postAppend(t, s2, "anomaly", quietBatch(10, 660)); rec.Code != 200 {
		t.Fatalf("append after restart: %d %s", rec.Code, rec.Body.String())
	}
	if epoch, rows := datasetEpoch(t, s2, "anomaly"); epoch != 4 || rows != 670 {
		t.Errorf("post-recovery append: epoch %d rows %d, want 4/670", epoch, rows)
	}
}

// TestRecoveryTruncatesCorruptTail flips a byte in the log's tail and
// checks startup never refuses: the corrupt record is truncated and
// counted, the prefix before it is served.
func TestRecoveryTruncatesCorruptTail(t *testing.T) {
	walDir := t.TempDir()
	s1 := newTestServer(t, durableConfig(t, walDir))
	for i := 0; i < 3; i++ {
		if rec := postAppend(t, s1, "anomaly", quietBatch(20, 600+20*i)); rec.Code != 200 {
			t.Fatalf("append %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop into the last record: a torn tail, not a clean record boundary.
	chopTail(t, activeSegment(t, walDir, "anomaly"), 7)

	s2 := newTestServer(t, durableConfig(t, walDir))
	t.Cleanup(func() { s2.Close() })
	if epoch, rows := datasetEpoch(t, s2, "anomaly"); epoch != 3 || rows != 640 {
		t.Errorf("recovered prefix: epoch %d rows %d, want 3/640 (last record torn)", epoch, rows)
	}
	if got := s2.tracer.Snapshot().Counter(obs.CtrWALTruncatedRecords); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrWALTruncatedRecords, got)
	}
	// The parked write offset accepts new appends cleanly.
	if rec := postAppend(t, s2, "anomaly", quietBatch(5, 640)); rec.Code != 200 {
		t.Fatalf("append after truncation: %d %s", rec.Code, rec.Body.String())
	}
}

// TestRetentionAgainstPinnedReplay pins the -epoch-retain contract with
// durability on: epochs inside the window answer pinned requests even
// when their universe was never built (rebuilt from the epoch history),
// epochs aged out answer 410 Gone.
func TestRetentionAgainstPinnedReplay(t *testing.T) {
	cfg := durableConfig(t, t.TempDir())
	cfg.EpochRetain = 2
	s := newTestServer(t, cfg)
	t.Cleanup(func() { s.Close() })
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv"}
	// Build the epoch-1 universe so the sweep has a cache entry to retire.
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("warm explore: %d", rec.Code)
	}
	for i := 0; i < 5; i++ { // epoch 1 -> 6
		if rec := postAppend(t, s, "anomaly", quietBatch(10, 600+10*i)); rec.Code != 200 {
			t.Fatalf("append %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}

	// Epoch 5 is inside the retention window (floor = 6-2 = 4) and was
	// never explored — the history rebuilds it.
	recent := req
	recent.Epoch = 5
	if rec := postExplore(t, s, recent); rec.Code != 200 {
		t.Errorf("pinned epoch 5 (retained): %d %s, want 200", rec.Code, rec.Body.String())
	}
	// Epoch 3 aged out: 410, agreeing with the log's compaction horizon.
	old := req
	old.Epoch = 3
	if rec := postExplore(t, s, old); rec.Code != http.StatusGone {
		t.Errorf("pinned epoch 3 (retired): %d, want 410", rec.Code)
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrServerEpochsRetired); got < 1 {
		t.Errorf("%s = %d, want >= 1", obs.CtrServerEpochsRetired, got)
	}
}

// TestFaultAppendSyncRefusesAck errors the wal.append_sync failpoint:
// the append answers 500 "append not durable" instead of acking a batch
// whose durability is unknown, and clears back to 200 when the fault
// lifts.
func TestFaultAppendSyncRefusesAck(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, durableConfig(t, t.TempDir()))
	t.Cleanup(func() { s.Close() })

	if err := faultinject.Arm(faultinject.SiteWALAppendSync, "error(injected sync fault)@1"); err != nil {
		t.Fatal(err)
	}
	rec := postAppend(t, s, "anomaly", quietBatch(10, 600))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted append: %d %s, want 500", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "append not durable") {
		t.Errorf("500 body = %q, want 'append not durable'", rec.Body.String())
	}
	// The fault fired once; the next append commits (covering the earlier
	// buffered record) and acks.
	if rec := postAppend(t, s, "anomaly", quietBatch(10, 610)); rec.Code != 200 {
		t.Fatalf("append after fault cleared: %d %s", rec.Code, rec.Body.String())
	}
}

// TestFaultSnapshotWriteKeepsOldAuthoritative errors the
// server.snapshot_write failpoint during compaction: the staged file is
// discarded, no snapshot appears, and a retry with the fault cleared
// writes one.
func TestFaultSnapshotWriteKeepsOldAuthoritative(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	walDir := t.TempDir()
	s := newTestServer(t, durableConfig(t, walDir))
	t.Cleanup(func() { s.Close() })
	if rec := postAppend(t, s, "anomaly", quietBatch(10, 600)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}

	snaps := func() []string {
		m, _ := filepath.Glob(filepath.Join(walDir, "anomaly", "snapshot-*.snap"))
		return m
	}
	if err := faultinject.Arm(faultinject.SiteSnapshotWrite, "error(injected snapshot fault)"); err != nil {
		t.Fatal(err)
	}
	s.compact("anomaly")
	if got := snaps(); len(got) != 0 {
		t.Fatalf("faulted compaction left snapshots: %v", got)
	}
	faultinject.Reset()
	s.compact("anomaly")
	if got := snaps(); len(got) != 1 {
		t.Fatalf("compaction after reset wrote %d snapshots, want 1", len(got))
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrWALSnapshotsWritten); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrWALSnapshotsWritten, got)
	}
}

// TestSnapshotCompactionRecovery proves recovery through a snapshot: a
// server that compacted restarts from the snapshot plus the WAL suffix,
// byte-identical to the pre-restart state.
func TestSnapshotCompactionRecovery(t *testing.T) {
	walDir := t.TempDir()
	s1 := newTestServer(t, durableConfig(t, walDir))
	if rec := postAppend(t, s1, "anomaly", quietBatch(25, 600)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}
	s1.compact("anomaly") // snapshot at epoch 2, covered segments deleted
	if rec := postAppend(t, s1, "anomaly", quietBatch(25, 625)); rec.Code != 200 {
		t.Fatalf("append past snapshot: %d %s", rec.Code, rec.Body.String())
	}
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv"}
	before := postExplore(t, s1, req)
	if before.Code != 200 {
		t.Fatalf("explore: %d", before.Code)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, durableConfig(t, walDir))
	t.Cleanup(func() { s2.Close() })
	if epoch, rows := datasetEpoch(t, s2, "anomaly"); epoch != 3 || rows != 650 {
		t.Fatalf("recovered from snapshot: epoch %d rows %d, want 3/650", epoch, rows)
	}
	after := postExplore(t, s2, req)
	if !bytes.Equal(before.Body.Bytes(), after.Body.Bytes()) {
		t.Errorf("snapshot-based recovery diverged:\nbefore:\n%s\nafter:\n%s", before.Body.Bytes(), after.Body.Bytes())
	}
}

// TestCrashRecoveryProperty is the crash-recovery equivalence property:
// a server killed at an arbitrary point in a seeded append workload —
// including mid-append, via the wal.append_sync failpoint — recovers to
// some acknowledged prefix of the workload, and its ranked CSV and
// deterministic explain output are byte-identical to a from-scratch
// server fed that same prefix over HTTP, across worker/shard settings.
func TestCrashRecoveryProperty(t *testing.T) {
	const k = 6
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			rng := rand.New(rand.NewSource(seed))
			walDir := t.TempDir()
			s1 := newTestServer(t, durableConfig(t, walDir))

			// The seeded workload: every batch's content is a pure function
			// of the seed, so the comparison server can replay any prefix.
			batches := make([]string, k)
			off := 600
			for i := range batches {
				n := 10 + rng.Intn(30)
				batches[i] = quietBatch(n, off)
				off += n
			}
			midAppend := rng.Intn(2) == 0
			crashIdx := rng.Intn(k) // batch the crash interrupts
			acked := 0
			for i, b := range batches {
				if midAppend && i == crashIdx {
					// The sync fault models power loss inside the commit: the
					// record may be in the file but was never fsynced, and the
					// client got no ack.
					if err := faultinject.Arm(faultinject.SiteWALAppendSync, "error(crash)"); err != nil {
						t.Fatal(err)
					}
					if rec := postAppend(t, s1, "anomaly", b); rec.Code != http.StatusInternalServerError {
						t.Fatalf("mid-append crash: %d, want 500", rec.Code)
					}
					faultinject.Reset()
					break
				}
				if rec := postAppend(t, s1, "anomaly", b); rec.Code != 200 {
					t.Fatalf("append %d: %d %s", i, rec.Code, rec.Body.String())
				}
				acked++
				if !midAppend && i == crashIdx {
					break
				}
			}
			// Hard stop: abandon s1 without Close (no final fsync) and tear
			// the unsynced tail off the active segment, as a real crash may.
			if midAppend {
				// Only the unacked record is unsynced; chop into it.
				chopTail(t, activeSegment(t, walDir, "anomaly"), 1+int64(rng.Intn(12)))
			} else if rng.Intn(2) == 0 {
				chopTail(t, activeSegment(t, walDir, "anomaly"), int64(rng.Intn(64)))
			}

			s2 := newTestServer(t, durableConfig(t, walDir))
			t.Cleanup(func() { s2.Close() })
			epoch, _ := datasetEpoch(t, s2, "anomaly")
			replayed := int(epoch - 1)
			if replayed > acked {
				t.Fatalf("recovered %d batches but only %d were acked", replayed, acked)
			}
			if midAppend && replayed != acked {
				t.Fatalf("recovered %d batches, want the full acked prefix %d (only the unacked tail was torn)", replayed, acked)
			}

			// From-scratch reference: same base table, the recovered prefix
			// fed through the HTTP append path.
			ref := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
			for i := 0; i < replayed; i++ {
				if rec := postAppend(t, ref, "anomaly", batches[i]); rec.Code != 200 {
					t.Fatalf("reference append %d: %d %s", i, rec.Code, rec.Body.String())
				}
			}
			for _, grid := range []struct{ workers, shards int }{{0, 0}, {4, 0}, {0, 3}, {4, 3}} {
				req := ExploreRequest{
					Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
					S: 0.05, ST: 0.1, Format: "csv",
					Workers: grid.workers, Shards: grid.shards,
				}
				got := postExplore(t, s2, req)
				want := postExplore(t, ref, req)
				if got.Code != 200 || want.Code != 200 {
					t.Fatalf("w%d_s%d: recovered %d, reference %d", grid.workers, grid.shards, got.Code, want.Code)
				}
				if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
					t.Errorf("w%d_s%d: recovered CSV differs from reference:\nrecovered:\n%s\nreference:\n%s",
						grid.workers, grid.shards, got.Body.Bytes(), want.Body.Bytes())
				}
				exReq := req
				exReq.Format = ""
				exReq.Explain = true
				ge := deterministicExplain(t, postExplore(t, s2, exReq))
				fe := deterministicExplain(t, postExplore(t, ref, exReq))
				if !reflect.DeepEqual(ge, fe) {
					gj, _ := json.Marshal(ge)
					fj, _ := json.Marshal(fe)
					t.Errorf("w%d_s%d: deterministic explain differs:\nrecovered: %s\nreference: %s",
						grid.workers, grid.shards, gj, fj)
				}
			}
		})
	}
}

// TestDriftRearmsAfterReplay checks the drift monitor satellite: a
// baseline persisted before the crash re-arms the debounce timer at
// startup when WAL replay advances the epoch past it, so the post-crash
// epochs get a background re-mine without waiting for new traffic.
func TestDriftRearmsAfterReplay(t *testing.T) {
	walDir := t.TempDir()
	cfg := durableConfig(t, walDir)
	cfg.DriftDebounce = 50 * time.Millisecond
	s1 := newTestServer(t, cfg)
	// Establish a watch at epoch 1 (noteExplore persists the baseline).
	if rec := postExplore(t, s1, ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1}); rec.Code != 200 {
		t.Fatalf("baseline explore: %d", rec.Code)
	}
	if rec := postAppend(t, s1, "anomaly", quietBatch(20, 600)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}
	// Wait for the baseline to advance to epoch 2 so drift.json holds it.
	awaitDrift(t, s1, "anomaly", func(r driftReply) bool { return r.BaselineEpoch == 2 })
	// Another append whose re-mine the "crash" preempts: the persisted
	// baseline stays at 2 while the WAL holds epoch 3.
	if rec := postAppend(t, s1, "anomaly", quietBatch(20, 620)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}
	s1.drift.mu.Lock()
	if tm := s1.drift.watches["anomaly"]; tm != nil && tm.timer != nil {
		tm.timer.Stop() // preempt the pending re-mine: the crash wins
	}
	s1.drift.mu.Unlock()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, cfg)
	t.Cleanup(func() { s2.Close() })
	// restore() saw recovered epoch 3 > persisted baseline 2 and re-armed
	// the debounce; the background re-mine advances the baseline with no
	// new traffic at all.
	got := awaitDrift(t, s2, "anomaly", func(r driftReply) bool { return r.BaselineEpoch == 3 })
	if !got.Watching || got.BaselineEpoch != 3 {
		t.Errorf("drift after replay: watching=%v baseline=%d, want true/3", got.Watching, got.BaselineEpoch)
	}
}
