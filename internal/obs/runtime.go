package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
)

// allocMetrics are the two runtime/metrics samples behind AllocSample.
// Unlike runtime.ReadMemStats they are read without a stop-the-world,
// which is what makes per-span and per-worker allocation deltas cheap
// enough to leave on in production.
var allocMetricNames = [2]string{"/gc/heap/allocs:bytes", "/gc/heap/allocs:objects"}

// allocSampleSupported is probed once at init: both samples must resolve
// to KindUint64 on this runtime, otherwise AllocSample falls back to
// runtime.ReadMemStats.
var allocSampleSupported = func() bool {
	s := make([]rtmetrics.Sample, len(allocMetricNames))
	for i, n := range allocMetricNames {
		s[i].Name = n
	}
	rtmetrics.Read(s)
	for i := range s {
		if s[i].Value.Kind() != rtmetrics.KindUint64 {
			return false
		}
	}
	return true
}()

// AllocSample returns the process-lifetime heap allocation totals —
// cumulative bytes and object count — from runtime/metrics. Two samples
// subtracted give the allocation delta over a region; deltas are
// process-global, so concurrent regions attribute each other's
// allocations. Falls back to runtime.ReadMemStats (TotalAlloc, Mallocs)
// on runtimes without the /gc/heap/allocs metrics.
func AllocSample() (bytes, objects uint64) {
	if allocSampleSupported {
		var s [2]rtmetrics.Sample
		s[0].Name = allocMetricNames[0]
		s[1].Name = allocMetricNames[1]
		rtmetrics.Read(s[:])
		return s[0].Value.Uint64(), s[1].Value.Uint64()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc, ms.Mallocs
}

// runtimeFamily describes one curated runtime/metrics export: the
// Prometheus family name, its HELP text, the metric type, and the
// runtime/metrics names to try in order (later entries are fallbacks for
// older runtimes). Only families whose metric exists with the expected
// kind are emitted, so the allowlist degrades gracefully across Go
// versions.
type runtimeFamily struct {
	name       string
	help       string
	typ        string // "gauge", "counter" or "histogram"
	candidates []string
}

// runtimeFamilies is the curated allowlist exported on /metrics; DESIGN
// §10 documents the selection. Deliberately small: heap size, allocation
// throughput, GC activity and scheduler health — the dimensions the
// Figure2 memory work needs — not the full runtime/metrics catalogue.
var runtimeFamilies = []runtimeFamily{
	{"go_mem_heap_objects_bytes", "Bytes of live heap memory occupied by objects.", "gauge",
		[]string{"/memory/classes/heap/objects:bytes"}},
	{"go_mem_total_bytes", "Total memory mapped by the Go runtime.", "gauge",
		[]string{"/memory/classes/total:bytes"}},
	{"go_gc_heap_allocs_bytes", "Cumulative bytes allocated on the heap.", "counter",
		[]string{"/gc/heap/allocs:bytes"}},
	{"go_gc_heap_allocs_objects", "Cumulative heap objects allocated.", "counter",
		[]string{"/gc/heap/allocs:objects"}},
	{"go_gc_cycles", "Completed GC cycles.", "counter",
		[]string{"/gc/cycles/total:gc-cycles"}},
	{"go_goroutines", "Live goroutines.", "gauge",
		[]string{"/sched/goroutines:goroutines"}},
	{"go_gomaxprocs", "GOMAXPROCS at sample time.", "gauge",
		[]string{"/sched/gomaxprocs:threads"}},
	{"go_gc_pauses_seconds", "Distribution of stop-the-world GC pause latencies.", "histogram",
		[]string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}},
	{"go_sched_latencies_seconds", "Distribution of goroutine scheduling latencies.", "histogram",
		[]string{"/sched/latencies:seconds"}},
}

// maxRuntimeBuckets caps the bucket count of exported runtime histograms;
// runtime/metrics latency histograms have hundreds of fine-grained
// buckets, which would bloat every scrape. Adjacent buckets are merged
// (counts summed, upper bound kept) down to at most this many.
const maxRuntimeBuckets = 32

// WriteRuntimeMetrics renders the curated runtime/metrics allowlist in
// the Prometheus text exposition format. When openMetrics is true,
// counter samples carry the `_total` suffix OpenMetrics requires.
// Families whose runtime metric is missing or has an unexpected kind are
// skipped silently, so the output is stable within one Go version but
// tolerant across them.
func WriteRuntimeMetrics(w io.Writer, openMetrics bool) error {
	// One Read call for every candidate name keeps the samples mutually
	// consistent enough for a scrape.
	var names []string
	for _, f := range runtimeFamilies {
		names = append(names, f.candidates...)
	}
	samples := make([]rtmetrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	rtmetrics.Read(samples)
	byName := make(map[string]*rtmetrics.Sample, len(samples))
	for i := range samples {
		byName[samples[i].Name] = &samples[i]
	}

	for _, f := range runtimeFamilies {
		var s *rtmetrics.Sample
		for _, cand := range f.candidates {
			if c := byName[cand]; c != nil && c.Value.Kind() != rtmetrics.KindBad {
				s = c
				break
			}
		}
		if s == nil {
			continue
		}
		var v float64
		switch s.Value.Kind() {
		case rtmetrics.KindUint64:
			v = float64(s.Value.Uint64())
		case rtmetrics.KindFloat64:
			v = s.Value.Float64()
		case rtmetrics.KindFloat64Histogram:
			if f.typ != "histogram" {
				continue
			}
			if err := writeRuntimeHistogram(w, f, s.Value.Float64Histogram(), openMetrics); err != nil {
				return err
			}
			continue
		default:
			continue
		}
		if f.typ == "histogram" {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, promEscapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		sample := f.name
		if openMetrics && f.typ == "counter" {
			sample += "_total"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", sample, promFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// writeRuntimeHistogram converts a runtime/metrics Float64Histogram —
// per-interval counts between len(Counts)+1 boundaries, possibly
// including ±Inf — into cumulative Prometheus buckets, merging adjacent
// buckets down to maxRuntimeBuckets. The _sum is approximated from
// bucket midpoints (runtime histograms carry no exact sum).
func writeRuntimeHistogram(w io.Writer, f runtimeFamily, h *rtmetrics.Float64Histogram, openMetrics bool) error {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return nil
	}
	type bucket struct {
		le  float64 // upper bound
		n   uint64  // count in the merged interval
		sum float64 // midpoint-approximated mass
	}
	var merged []bucket
	stride := (len(h.Counts) + maxRuntimeBuckets - 1) / maxRuntimeBuckets
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(h.Counts); i += stride {
		end := i + stride
		if end > len(h.Counts) {
			end = len(h.Counts)
		}
		b := bucket{le: h.Buckets[end]}
		for j := i; j < end; j++ {
			c := h.Counts[j]
			b.n += c
			if c == 0 {
				continue
			}
			lo, hi := h.Buckets[j], h.Buckets[j+1]
			mid := (lo + hi) / 2
			if math.IsInf(lo, -1) {
				mid = hi
			}
			if math.IsInf(hi, +1) {
				mid = lo
			}
			if math.IsInf(mid, 0) || math.IsNaN(mid) {
				mid = 0
			}
			b.sum += mid * float64(c)
		}
		merged = append(merged, b)
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, promEscapeHelp(f.help), f.name); err != nil {
		return err
	}
	var cum uint64
	var sum float64
	for _, b := range merged {
		cum += b.n
		sum += b.sum
		le := promFloat(b.le)
		if math.IsInf(b.le, +1) {
			le = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, le, cum); err != nil {
			return err
		}
	}
	if !math.IsInf(merged[len(merged)-1].le, +1) {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", f.name, promFloat(sum), f.name, cum)
	return err
}
