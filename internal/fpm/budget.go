package fpm

import (
	"fmt"
	"runtime/metrics"
	"sync/atomic"
	"time"
)

// Budget bounds the resources one mining run may consume. The
// generalized-itemset lattice is worst-case exponential in the number of
// items; a budget turns "this request would exhaust the machine" into a
// best-effort truncated report instead of an OOM kill or an unbounded
// stall. The zero value means unlimited (no budget checks at all).
//
// Dimensions fall in two classes with different determinism guarantees:
//
//   - MaxCandidates and MaxItemsets are counted at the deterministic
//     MiningStats sites, so the truncated ranked output is byte-identical
//     across Workers and Shards settings: Apriori trims each level's
//     candidate batch to a deterministic prefix, and FP-Growth runs its
//     growth phase serially under these caps (a capped run is bounded by
//     construction, so the lost parallelism is bounded too).
//   - SoftDeadline and MaxHeapBytes are wall-clock and heap watermarks
//     polled cooperatively at the same sites; where the run stops depends
//     on timing, so the truncated output is best-effort, not
//     reproducible.
//
// On exhaustion the miner stops expanding the lattice, finishes scoring
// the itemsets it has already admitted, and returns a Result flagged
// Truncated with the exhausted dimension.
type Budget struct {
	// MaxCandidates caps the number of itemset candidates whose support is
	// evaluated (the MiningStats.Candidates counter). 0 = unlimited.
	MaxCandidates int
	// MaxItemsets caps the number of frequent itemsets kept live. 0 =
	// unlimited.
	MaxItemsets int
	// SoftDeadline bounds the mining wall clock. Unlike a context
	// deadline, expiry truncates the run instead of failing it. 0 =
	// unlimited.
	SoftDeadline time.Duration
	// MaxHeapBytes truncates the run when the live heap (the
	// /memory/classes/heap/objects:bytes runtime metric) exceeds this
	// watermark. The check is process-global and approximate. 0 = off.
	MaxHeapBytes uint64
}

// IsZero reports whether the budget imposes no limits.
func (b Budget) IsZero() bool {
	return b.MaxCandidates == 0 && b.MaxItemsets == 0 && b.SoftDeadline == 0 && b.MaxHeapBytes == 0
}

// Validate rejects negative limits.
func (b Budget) Validate() error {
	if b.MaxCandidates < 0 {
		return fmt.Errorf("fpm: negative candidate budget %d", b.MaxCandidates)
	}
	if b.MaxItemsets < 0 {
		return fmt.Errorf("fpm: negative itemset budget %d", b.MaxItemsets)
	}
	if b.SoftDeadline < 0 {
		return fmt.Errorf("fpm: negative deadline budget %v", b.SoftDeadline)
	}
	return nil
}

// deterministic reports whether the budget includes a deterministic
// dimension, which makes FP-Growth serialize its growth phase so the
// truncation point is independent of Workers.
func (b Budget) deterministic() bool {
	return b.MaxCandidates > 0 || b.MaxItemsets > 0
}

// Budget-exhaustion dimensions, reported in Result.Exhausted.
const (
	ExhaustedCandidates = "candidates"
	ExhaustedItemsets   = "itemsets"
	ExhaustedDeadline   = "deadline"
	ExhaustedHeap       = "heap"
)

// heapSampleEvery throttles heap-watermark reads: one runtime/metrics
// read per this many candidate observations.
const heapSampleEvery = 1 << 12

// heapMetric is the runtime/metrics sample name for live heap bytes.
const heapMetric = "/memory/classes/heap/objects:bytes"

// budgetTracker is the runtime state of one mining run's budget. The
// deterministic counters (candidates, itemsets) are only touched from
// deterministic contexts — Apriori's level loop on the caller goroutine,
// FP-Growth's serialized growth — so they need no synchronization. The
// soft flag is an atomic written by the deadline timer and the heap
// sampler and polled from any goroutine. A nil tracker (no budget)
// reports unlimited everywhere.
type budgetTracker struct {
	b          Budget
	candidates int
	itemsets   int
	exhausted  string       // first deterministic dimension exhausted
	soft       atomic.Value // string: ExhaustedDeadline or ExhaustedHeap
	timer      *time.Timer
	heapTick   atomic.Int64
	heapPeak   atomic.Uint64 // high-water mark of sampled live-heap bytes
}

// newBudgetTracker returns a tracker for b, or nil when b is zero.
// Callers must release a non-nil tracker to stop its deadline timer.
func newBudgetTracker(b Budget) *budgetTracker {
	if b.IsZero() {
		return nil
	}
	t := &budgetTracker{b: b}
	if b.SoftDeadline > 0 {
		t.timer = time.AfterFunc(b.SoftDeadline, func() {
			t.soft.CompareAndSwap(nil, ExhaustedDeadline)
		})
	}
	return t
}

// release stops the deadline timer. Nil-safe.
func (t *budgetTracker) release() {
	if t != nil && t.timer != nil {
		t.timer.Stop()
	}
}

// allowCandidates admits up to n more candidate evaluations against the
// deterministic candidate cap, consuming the admitted amount, and reports
// how many of the n are allowed. It also advances the heap sampler. A
// nil tracker admits everything.
func (t *budgetTracker) allowCandidates(n int) int {
	if t == nil {
		return n
	}
	t.sampleHeap(n)
	if t.b.MaxCandidates == 0 {
		// No deterministic cap: only the (atomic) heap sampler ran above.
		// Skipping the counter keeps this path safe from parallel branches.
		return n
	}
	remaining := t.b.MaxCandidates - t.candidates
	if remaining < 0 {
		remaining = 0
	}
	if n > remaining {
		n = remaining
		t.markExhausted(ExhaustedCandidates)
	}
	t.candidates += n
	return n
}

// allowItemsets admits up to n more frequent itemsets against the
// deterministic itemset cap, consuming the admitted amount. A nil
// tracker admits everything.
func (t *budgetTracker) allowItemsets(n int) int {
	if t == nil || t.b.MaxItemsets == 0 {
		return n
	}
	remaining := t.b.MaxItemsets - t.itemsets
	if remaining < 0 {
		remaining = 0
	}
	if n > remaining {
		n = remaining
		t.markExhausted(ExhaustedItemsets)
	}
	t.itemsets += n
	return n
}

// detExhausted reports whether a deterministic dimension has run out,
// telling the miners to stop expanding the lattice. Caller-goroutine
// only; nil-safe.
func (t *budgetTracker) detExhausted() bool {
	return t != nil && t.exhausted != ""
}

// markExhausted records the first deterministic dimension to run out.
func (t *budgetTracker) markExhausted(dim string) {
	if t.exhausted == "" {
		t.exhausted = dim
	}
}

// sampleHeap reads the live-heap metric once per heapSampleEvery
// candidate observations and raises the soft flag past the watermark.
func (t *budgetTracker) sampleHeap(n int) {
	if t.b.MaxHeapBytes == 0 {
		return
	}
	before := t.heapTick.Load()
	after := t.heapTick.Add(int64(n))
	if before/heapSampleEvery == after/heapSampleEvery && before != 0 {
		return
	}
	sample := []metrics.Sample{{Name: heapMetric}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return
	}
	heap := sample[0].Value.Uint64()
	for {
		old := t.heapPeak.Load()
		if heap <= old || t.heapPeak.CompareAndSwap(old, heap) {
			break
		}
	}
	if heap > t.b.MaxHeapBytes {
		t.soft.CompareAndSwap(nil, ExhaustedHeap)
	}
}

// heapHighWater returns the largest live-heap sample the tracker
// observed (0 when heap budgeting is off or never sampled). Nil-safe.
func (t *budgetTracker) heapHighWater() uint64 {
	if t == nil {
		return 0
	}
	return t.heapPeak.Load()
}

// softExhausted reports the nondeterministic dimension (deadline or heap)
// that fired, if any. Safe from any goroutine; nil-safe.
func (t *budgetTracker) softExhausted() string {
	if t == nil {
		return ""
	}
	if v := t.soft.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// truncated reports whether any dimension was exhausted, and which one
// (deterministic dimensions win the label so the reported reason is
// stable when both fire). Called once, at the end of the run, from the
// caller goroutine.
func (t *budgetTracker) truncated() (bool, string) {
	if t == nil {
		return false, ""
	}
	if t.exhausted != "" {
		return true, t.exhausted
	}
	if dim := t.softExhausted(); dim != "" {
		return true, dim
	}
	return false, ""
}
