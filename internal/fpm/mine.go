package fpm

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// Algorithm selects the mining algorithm.
type Algorithm int

const (
	// FPGrowth mines via a generalized FP-tree (the default; fastest).
	FPGrowth Algorithm = iota
	// Apriori mines level-wise with candidate generation over row bitsets.
	Apriori
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case FPGrowth:
		return "fp-growth"
	case Apriori:
		return "apriori"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a mining run.
type Options struct {
	// Ctx, when non-nil, makes the run cancellable: both miners poll the
	// context at candidate granularity and Mine returns an error wrapping
	// ctx.Err() as soon as cancellation is observed. A nil Ctx (or one
	// that can never be cancelled) adds no per-candidate cost.
	Ctx context.Context
	// MinSupport is the exploration support threshold s ∈ (0, 1].
	MinSupport float64
	// MaxLen bounds itemset length; 0 means unlimited.
	MaxLen int
	// PolarityPrune enables the paper's polarity-pruning heuristic: itemsets
	// of length ≥ 2 only combine items whose individual divergence has the
	// same sign. Length-1 itemsets are always kept.
	PolarityPrune bool
	// Algorithm selects Apriori or FPGrowth.
	Algorithm Algorithm
	// Workers enables parallel mining with the given number of goroutines.
	// 0 or 1 runs serially; values above the task count or GOMAXPROCS are
	// clamped. Results are identical and deterministically ordered
	// regardless of Workers.
	Workers int
	// Tracer, when non-nil, receives mining spans, the fpm.* counters and
	// the worker-utilization gauges.
	Tracer *obs.Tracer
	// TraceParent optionally nests the mining span under an existing span
	// (e.g. core's explore span). When nil, spans are emitted top-level on
	// Tracer.
	TraceParent *obs.Span
	// Progress, when non-nil, receives live mining progress: the current
	// (or, for FP-Growth, deepest) itemset length, candidates evaluated,
	// candidates pruned and frequent itemsets found. Updates happen at the
	// same sites as the MiningStats increments, so on an uncancelled run
	// the final Progress totals equal the deterministic Stats. The caller
	// owns the lifecycle (and calls Finish); a nil Progress costs nothing.
	Progress *obs.Progress
}

// MiningStats reports work done by a mining run. All fields are
// deterministic for a given universe and options, independent of Workers.
type MiningStats struct {
	// Candidates is the number of itemsets whose support was evaluated.
	Candidates int `json:"candidates"`
	// Frequent is the number of frequent itemsets found.
	Frequent int `json:"frequent"`
	// PrunedSupport counts candidates discarded as infrequent, including
	// Apriori's subset-infrequency prunes.
	PrunedSupport int `json:"pruned_support"`
	// PrunedPolarity counts combinations skipped by polarity pruning
	// (§V-C): Apriori joins rejected for mixed polarity, and FP-Growth
	// conditional-pattern-base entries excluded for opposite polarity.
	// Always 0 when Options.PolarityPrune is off.
	PrunedPolarity int `json:"pruned_polarity"`
}

// Result is the output of Mine: all frequent itemsets (length ≥ 1) with
// their support counts and outcome moments.
type Result struct {
	Itemsets []MinedItemset
	Stats    MiningStats
	NumRows  int
}

// Mine runs frequent generalized itemset mining with integrated divergence
// accumulation over the universe.
func Mine(u *Universe, o *outcome.Outcome, opt Options) (*Result, error) {
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("fpm: MinSupport %v out of (0, 1]", opt.MinSupport)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if o.Len() != u.NumRows {
		return nil, fmt.Errorf("fpm: outcome has %d rows, universe %d", o.Len(), u.NumRows)
	}
	minCount := int(math.Ceil(opt.MinSupport * float64(u.NumRows)))
	if minCount < 1 {
		minCount = 1
	}
	if opt.Tracer == nil {
		opt.Tracer = opt.TraceParent.Tracer()
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fpm: mining cancelled: %w", err)
	}
	cancel := watchContext(ctx)
	defer cancel.release()
	span := opt.TraceParent.Start(obs.SpanMine)
	if span == nil {
		span = opt.Tracer.Start(obs.SpanMine)
	}
	hBatch := opt.Tracer.Histogram(obs.HistCandidateBatch, obs.SizeBuckets)
	var res *Result
	switch opt.Algorithm {
	case Apriori:
		res = mineApriori(u, o, opt, minCount, span, cancel, hBatch)
	case FPGrowth:
		res = mineFPGrowth(u, o, opt, minCount, span, cancel, hBatch)
	default:
		span.End()
		return nil, fmt.Errorf("fpm: unknown algorithm %v", opt.Algorithm)
	}
	if err := ctx.Err(); err != nil {
		span.End()
		return nil, fmt.Errorf("fpm: mining cancelled: %w", err)
	}
	res.NumRows = u.NumRows
	res.Stats.Frequent = len(res.Itemsets)
	span.End()
	if tr := opt.Tracer; tr != nil {
		tr.Counter(obs.CtrCandidates).Add(int64(res.Stats.Candidates))
		tr.Counter(obs.CtrPrunedSupport).Add(int64(res.Stats.PrunedSupport))
		tr.Counter(obs.CtrPrunedPolarity).Add(int64(res.Stats.PrunedPolarity))
		tr.Counter(obs.CtrItemsetsEmitted).Add(int64(res.Stats.Frequent))
		if hs := tr.Histogram(obs.HistItemsetSupport, obs.SupportBuckets); hs != nil && u.NumRows > 0 {
			inv := 1 / float64(u.NumRows)
			for i := range res.Itemsets {
				hs.Observe(float64(res.Itemsets[i].Count) * inv)
			}
		}
	}
	return res, nil
}

// canceller adapts a context to a lock-free flag the mining hot loops can
// poll at candidate granularity: one goroutine watches ctx.Done() and
// flips an atomic, so a poll costs a single atomic load instead of the
// mutex acquisition inside context.Context.Err. A nil *canceller reports
// not-cancelled, so uncancellable contexts cost nothing.
type canceller struct {
	stop     atomic.Bool
	released chan struct{}
}

// watchContext returns a canceller following ctx, or nil when ctx can
// never be cancelled. Callers must release it to stop the watcher.
func watchContext(ctx context.Context) *canceller {
	if ctx.Done() == nil {
		return nil
	}
	c := &canceller{released: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			c.stop.Store(true)
		case <-c.released:
		}
	}()
	return c
}

// cancelled reports whether the watched context was cancelled.
func (c *canceller) cancelled() bool { return c != nil && c.stop.Load() }

// release stops the watcher goroutine.
func (c *canceller) release() {
	if c != nil {
		close(c.released)
	}
}

// momentsOf computes the outcome moments over the rows of a bitset,
// restricted to rows with a defined outcome.
func momentsOf(rows *bitvec.Vector, o *outcome.Outcome) stats.Moments {
	return o.MomentsOf(rows)
}

// mineApriori is the level-wise candidate-generation miner. Level k
// candidates join two frequent (k−1)-itemsets sharing their first k−2
// items; the two differing items must constrain different attributes (the
// generalized-itemset rule) and, under polarity pruning, share polarity.
// Candidates with an infrequent (k−1)-subset are pruned before counting.
func mineApriori(u *Universe, o *outcome.Outcome, opt Options, minCount int, span *obs.Span, cancel *canceller, hBatch *obs.Histogram) *Result {
	res := &Result{}
	prog := opt.Progress

	type entry struct {
		items []int
		rows  *bitvec.Vector
	}

	// Level 1.
	scan := span.Start(obs.SpanMineScan)
	prog.SetLevel(1)
	hBatch.Observe(float64(len(u.Items)))
	var level []entry
	for i := range u.Items {
		res.Stats.Candidates++
		prog.AddCandidates(1)
		if u.Rows[i].Count() < minCount {
			res.Stats.PrunedSupport++
			prog.AddPruned(1)
			continue
		}
		level = append(level, entry{items: []int{i}, rows: u.Rows[i]})
		prog.AddFrequent(1)
		res.Itemsets = append(res.Itemsets, MinedItemset{
			Items: []int{i},
			Count: u.Rows[i].Count(),
			M:     momentsOf(u.Rows[i], o),
		})
	}

	scan.End()

	frequent := map[string]bool{}
	for _, e := range level {
		frequent[key(e.items)] = true
	}

	levels := span.Start(obs.SpanMineLevels)
	defer levels.End()
	for k := 2; opt.MaxLen == 0 || k <= opt.MaxLen; k++ {
		prog.SetLevel(k)
		// Phase 1: candidate generation. The level is sorted
		// lexicographically by construction (level 1 is index-ordered;
		// joins preserve order), enabling prefix grouping.
		type candidate struct {
			items []int
			base  int // index into level of the prefix entry
			extra int // the appended item
		}
		var cands []candidate
		for a := 0; a < len(level); a++ {
			if cancel.cancelled() {
				return res
			}
			ea := level[a]
			for b := a + 1; b < len(level); b++ {
				eb := level[b]
				if !samePrefix(ea.items, eb.items) {
					break // sorted: no further b shares ea's prefix
				}
				x, y := ea.items[k-2], eb.items[k-2]
				if u.AttrID[x] == u.AttrID[y] {
					continue
				}
				if opt.PolarityPrune && !polarityCompatible(u, ea.items, y) {
					res.Stats.PrunedPolarity++
					prog.AddPruned(1)
					continue
				}
				cand := append(append([]int{}, ea.items...), y)
				if k > 2 && !allSubsetsFrequent(cand, frequent) {
					res.Stats.PrunedSupport++
					prog.AddPruned(1)
					continue
				}
				cands = append(cands, candidate{items: cand, base: a, extra: y})
			}
		}
		res.Stats.Candidates += len(cands)
		hBatch.Observe(float64(len(cands)))

		// Phase 2: support counting and divergence accumulation, optionally
		// parallel. Evaluation of distinct candidates is independent;
		// results land in a fixed-position slice so the output order is
		// deterministic regardless of Workers.
		evaluated := make([]*entry, len(cands))
		moments := make([]stats.Moments, len(cands))
		eval := func(i int) {
			if cancel.cancelled() {
				return
			}
			// Counted here, per candidate, so the live view advances while a
			// wide level is being evaluated (the batch-granular alternative
			// would stall for the whole level).
			prog.AddCandidates(1)
			c := cands[i]
			base := level[c.base].rows
			// Fused AND+popcount screens the candidate without allocating;
			// only survivors (the minority) materialize their row bitset.
			if base.AndCount(u.Rows[c.extra]) < minCount {
				return
			}
			rows := base.Clone().And(u.Rows[c.extra])
			evaluated[i] = &entry{items: c.items, rows: rows}
			moments[i] = momentsOf(rows, o)
		}
		parallelFor(len(cands), opt.Workers, opt.Tracer, eval)
		if cancel.cancelled() {
			return res
		}

		var next []entry
		nextKeys := map[string]bool{}
		for i, e := range evaluated {
			if e == nil {
				res.Stats.PrunedSupport++
				prog.AddPruned(1)
				continue
			}
			next = append(next, *e)
			prog.AddFrequent(1)
			nextKeys[key(e.items)] = true
			res.Itemsets = append(res.Itemsets, MinedItemset{
				Items: e.items,
				Count: e.rows.Count(),
				M:     moments[i],
			})
		}
		if len(next) == 0 {
			break
		}
		level = next
		frequent = nextKeys
	}
	return res
}

// parallelFor runs fn(0..n-1) across at most workers goroutines; workers
// ≤ 1 runs inline. The worker count is clamped to both n and
// runtime.GOMAXPROCS(0), so callers may pass arbitrarily large values
// without spawning useless goroutines. fn invocations must be
// independent. When tr is non-nil, each worker's completed-task count is
// recorded under obs.CtrWorkerTaskPrefix+index and the clamped worker
// count under obs.GaugeWorkers.
func parallelFor(n, workers int, tr *obs.Tracer, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers <= 1 || n < 2 {
		if tr != nil {
			tr.SetGauge(obs.GaugeWorkers, 1)
			tr.Counter(fmt.Sprintf("%s%d", obs.CtrWorkerTaskPrefix, 0)).Add(int64(n))
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	tr.SetGauge(obs.GaugeWorkers, float64(workers))
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tasks := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(i)
				tasks++
			}
			if tr != nil {
				tr.Counter(fmt.Sprintf("%s%d", obs.CtrWorkerTaskPrefix, w)).Add(int64(tasks))
			}
		}(w)
	}
	wg.Wait()
}

// polarityCompatible reports whether appending item y to the itemset keeps
// all polarities equal. Single items are exempt (length-1 itemsets are
// always kept), so the check binds from length 2 upward.
func polarityCompatible(u *Universe, items []int, y int) bool {
	for _, x := range items {
		if u.Polarity[x] != u.Polarity[y] {
			return false
		}
	}
	return true
}

func samePrefix(a, b []int) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []int, frequent map[string]bool) bool {
	sub := make([]int, 0, len(cand)-1)
	for drop := 0; drop < len(cand); drop++ {
		sub = sub[:0]
		for i, v := range cand {
			if i != drop {
				sub = append(sub, v)
			}
		}
		if !frequent[key(sub)] {
			return false
		}
	}
	return true
}

// key encodes a sorted index slice as a map key.
func key(items []int) string {
	b := make([]byte, 0, len(items)*3)
	for _, v := range items {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

// SortByDivergence orders mined itemsets for reporting: by |divergence|
// descending by default. Ties break toward smaller length, then higher
// support, then lexicographic items for determinism.
func SortByDivergence(items []MinedItemset, o *outcome.Outcome, signed bool, positive bool) {
	div := func(m *MinedItemset) float64 {
		d := o.DivergenceFromMoments(m.M)
		if math.IsNaN(d) {
			return math.Inf(-1)
		}
		if !signed {
			return math.Abs(d)
		}
		if positive {
			return d
		}
		return -d
	}
	sort.SliceStable(items, func(a, b int) bool {
		da, db := div(&items[a]), div(&items[b])
		if da != db {
			return da > db
		}
		if len(items[a].Items) != len(items[b].Items) {
			return len(items[a].Items) < len(items[b].Items)
		}
		if items[a].Count != items[b].Count {
			return items[a].Count > items[b].Count
		}
		return key(items[a].Items) < key(items[b].Items)
	})
}
