package datagen

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// PeakMean is the center of the injected anomaly in synthetic-peak, the
// paper's "multivariate normal random variable with a mean of [0, 1, 2]".
var PeakMean = []float64{0, 1, 2}

// SyntheticPeak generates the paper's synthetic-peak dataset (§VI-A):
// 10,000 points uniform in [−5,5]³ with attributes a, b, c; a class label T
// or F with equal probability; and a predicted label equal to the class
// label flipped with probability given by the normalized density of an
// isotropic Gaussian centered at PeakMean with unit covariance. The error
// rate of the "model" therefore peaks at [0,1,2], an anomaly spanning all
// three attributes.
func SyntheticPeak(cfg Config) Classified {
	n := cfg.n(10_000)
	r := rand.New(rand.NewSource(cfg.Seed))
	g := stats.IsotropicGaussian{Mean: PeakMean, Sigma: 1}

	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	actual := make([]bool, n)
	pred := make([]bool, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64()*10 - 5
		b[i] = r.Float64()*10 - 5
		c[i] = r.Float64()*10 - 5
		actual[i] = r.Intn(2) == 0
		pred[i] = actual[i]
		if r.Float64() < g.NormalizedDensity([]float64{a[i], b[i], c[i]}) {
			pred[i] = !pred[i]
		}
	}
	tab := dataset.NewBuilder().
		AddFloat("a", a).
		AddFloat("b", b).
		AddFloat("c", c).
		MustBuild()
	return Classified{Table: tab, Actual: actual, Predicted: pred}
}
