package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/outcome"
)

// driftMonitor watches live datasets for divergence drift: per dataset,
// the last complete exploration's parameters become the watch
// specification and its ranked report the baseline. When an append bumps
// the dataset's epoch, a debounced background re-mine runs the same
// exploration on the new epoch and compares subgroup t-values against the
// baseline; subgroups whose |t| crossed the configured threshold in
// either direction become drift events, served by GET /v1/drift/{name}.
// Event rates also feed a sliding window (obs.Windowed), so the reply can
// answer "how many subgroups crossed t in the trailing hour" without a
// metrics backend.
type driftMonitor struct {
	server   *Server
	t        float64 // |t| crossing threshold; < 0 disables the monitor
	debounce time.Duration
	remines  *obs.Counter
	events   *obs.Counter
	// stateDir, when set, persists each watch (spec, baseline epoch and
	// subgroup snapshots) to stateDir/<name>/drift.json so a restart
	// resumes monitoring where the crash interrupted it.
	stateDir string

	mu      sync.Mutex
	watches map[string]*driftWatch
}

// driftWatch is one dataset's monitoring state. All fields are guarded by
// the monitor's mutex; the re-mine goroutine copies what it needs out
// under the lock and writes results back the same way.
type driftWatch struct {
	params    exploreParams // copy of the last complete exploration
	haveWatch bool
	baseEpoch uint64
	baseline  map[string]subgroupSnap
	events    []DriftEvent
	window    *obs.Windowed // events per trailing hour, minute epochs
	timer     *time.Timer
	remining  bool
	lastError string
}

// subgroupSnap is the per-subgroup state compared across epochs.
type subgroupSnap struct {
	Support    float64
	Divergence float64
	T          float64
}

// DriftEvent records one subgroup whose divergence significance crossed
// the t-threshold between two epochs. A subgroup absent from one epoch's
// frequent set (it fell below support, or newly emerged) participates
// with t = 0 on that side.
type DriftEvent struct {
	Subgroup         string  `json:"subgroup"`
	FromEpoch        uint64  `json:"from_epoch"`
	ToEpoch          uint64  `json:"to_epoch"`
	TBefore          float64 `json:"t_before"`
	TAfter           float64 `json:"t_after"`
	DivergenceBefore float64 `json:"divergence_before"`
	DivergenceAfter  float64 `json:"divergence_after"`
	// Direction is "crossed_up" when |t| rose past the threshold,
	// "crossed_down" when it fell below.
	Direction string `json:"direction"`
	UnixNano  int64  `json:"unix_nano"`
}

// maxDriftEvents bounds the per-dataset event log; older events rotate
// out (the windowed counter keeps aggregate history).
const maxDriftEvents = 64

func newDriftMonitor(s *Server, t float64, debounce time.Duration) *driftMonitor {
	return &driftMonitor{
		server:   s,
		t:        t,
		debounce: debounce,
		remines:  s.tracer.Counter(obs.CtrServerDriftRemines),
		events:   s.tracer.Counter(obs.CtrServerDriftEvents),
		watches:  map[string]*driftWatch{},
	}
}

func (m *driftMonitor) watch(name string) *driftWatch {
	w, ok := m.watches[name]
	if !ok {
		w = &driftWatch{window: obs.NewWindowed(nil, time.Minute, 60, nil)}
		m.watches[name] = w
	}
	return w
}

// noteExplore records a complete current-epoch exploration as the
// dataset's watch specification and drift baseline. Nil-safe on a
// disabled monitor.
func (m *driftMonitor) noteExplore(p *exploreParams, rep *core.Report) {
	if m == nil || m.t < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.watch(p.req.Dataset)
	w.params = *p
	w.params.req.Trace = false
	w.params.req.Explain = false
	w.haveWatch = true
	// Only move the baseline forward: a re-run at the same epoch refreshes
	// it, but an older cached epoch must not rewind an advanced baseline.
	if p.epoch >= w.baseEpoch {
		w.baseEpoch = p.epoch
		w.baseline = snapshotSubgroups(rep)
	}
	m.persistLocked(p.req.Dataset, w)
}

// noteEpoch schedules (or reschedules) the debounced background re-mine
// after an epoch bump. Bursts of appends within the debounce window
// coalesce into one re-mine.
func (m *driftMonitor) noteEpoch(name string) {
	if m == nil || m.t < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.watch(name)
	if !w.haveWatch {
		return // nothing to re-mine until someone explores the dataset
	}
	if w.timer != nil {
		w.timer.Reset(m.debounce)
		return
	}
	w.timer = time.AfterFunc(m.debounce, func() { m.remine(name) })
}

// remine runs the watch exploration against the dataset's current epoch
// and diffs subgroup t-values against the baseline. It runs on the
// debounce timer's goroutine: panics are contained here (recorded on the
// watch, counted as server panics) so a poisoned re-mine can never take
// the daemon down.
func (m *driftMonitor) remine(name string) {
	defer func() {
		if pe := engine.RecoverError(recover()); pe != nil {
			m.server.tracer.Counter(obs.CtrServerPanics).Add(1)
			m.server.logger.Error("drift remine panic",
				slog.String("dataset", name),
				slog.String("panic", fmt.Sprint(pe.Value)),
			)
			m.setError(name, pe.Error())
		}
	}()
	m.mu.Lock()
	w := m.watch(name)
	w.timer = nil
	if !w.haveWatch || w.remining {
		m.mu.Unlock()
		return
	}
	w.remining = true
	p := w.params
	baseEpoch, baseline := w.baseEpoch, w.baseline
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		w.remining = false
		m.mu.Unlock()
	}()

	m.remines.Add(1)
	if err := faultinject.Hit(faultinject.SiteDriftRemine); err != nil {
		m.setError(name, err.Error())
		return
	}

	v, ok := m.server.tables[name]
	if !ok {
		return
	}
	p.tab, p.epoch = v.Snapshot()
	p.pinned = false
	p.req.Epoch = 0
	if p.epoch == baseEpoch {
		return // the bump was superseded by an explore that moved the baseline
	}

	ctx, cancel := context.WithTimeout(context.Background(), m.server.timeout)
	defer cancel()
	entry, _, err := m.server.cache.get(ctx, p.key(), func(e *cacheEntry) error {
		return m.server.buildOrAppend(e, &p, nil)
	})
	if err != nil {
		m.setError(name, err.Error())
		return
	}
	bundle, err := outcome.NewBundle(entry.out)
	if err != nil {
		m.setError(name, err.Error())
		return
	}
	reps, err := core.ExploreUniverseMultiContext(ctx, entry.uni[p.mode], core.Config{
		Hierarchies:   entry.hs,
		MinSupport:    p.req.S,
		MaxLen:        p.req.MaxLen,
		PolarityPrune: p.req.Polarity,
		Algorithm:     p.algorithm,
		Mode:          p.mode,
		Workers:       p.req.Workers,
		Shards:        p.req.Shards,
		Budget:        p.budget,
	}, bundle)
	if err != nil {
		m.setError(name, err.Error())
		return
	}
	current := snapshotSubgroups(reps[0])
	events := diffSubgroups(baseline, current, m.t, baseEpoch, p.epoch)

	m.mu.Lock()
	w.baseEpoch = p.epoch
	w.baseline = current
	w.lastError = ""
	w.events = append(w.events, events...)
	if len(w.events) > maxDriftEvents {
		w.events = w.events[len(w.events)-maxDriftEvents:]
	}
	w.window.Add(int64(len(events)))
	m.persistLocked(name, w)
	m.mu.Unlock()
	m.events.Add(int64(len(events)))
	if len(events) > 0 {
		m.server.logger.Info("drift detected",
			slog.String("dataset", name),
			slog.Int("events", len(events)),
			slog.Uint64("from_epoch", baseEpoch),
			slog.Uint64("to_epoch", p.epoch),
		)
	}
}

// driftState is the persisted form of one dataset's watch: everything
// needed to resume monitoring after a restart. Events and the sliding
// window are deliberately in-memory only — they describe observations,
// not obligations.
type driftState struct {
	Request   ExploreRequest          `json:"request"`
	BaseEpoch uint64                  `json:"base_epoch"`
	Baseline  map[string]subgroupSnap `json:"baseline"`
}

// statePath is the watch's persistence file, "" when persistence is off.
func (m *driftMonitor) statePath(name string) string {
	if m.stateDir == "" {
		return ""
	}
	return filepath.Join(m.stateDir, name, "drift.json")
}

// persistLocked writes the watch to its state file (atomic tmp+rename;
// best-effort — a failed persist costs a post-restart re-arm, nothing
// more). Caller holds m.mu.
func (m *driftMonitor) persistLocked(name string, w *driftWatch) {
	path := m.statePath(name)
	if path == "" || !w.haveWatch {
		return
	}
	raw, err := json.Marshal(driftState{
		Request:   w.params.req,
		BaseEpoch: w.baseEpoch,
		Baseline:  w.baseline,
	})
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		m.server.logger.Warn("drift state persist failed",
			slog.String("dataset", name), slog.String("error", err.Error()))
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		m.server.logger.Warn("drift state persist failed",
			slog.String("dataset", name), slog.String("error", err.Error()))
	}
}

// restore reloads persisted watches after WAL recovery and re-arms the
// debounce timer for any dataset whose replay advanced the epoch past
// the persisted baseline — a crash between an append and its re-mine
// still produces the drift report. Called once from New, before the
// server takes traffic.
func (m *driftMonitor) restore() {
	if m == nil || m.t < 0 || m.stateDir == "" {
		return
	}
	for _, name := range m.server.order {
		path := m.statePath(name)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue // no watch persisted (or unreadable): nothing to resume
		}
		var st driftState
		if err := json.Unmarshal(raw, &st); err != nil {
			m.server.logger.Warn("drift state corrupt, ignoring",
				slog.String("dataset", name), slog.String("error", err.Error()))
			continue
		}
		st.Request.Dataset = name
		st.Request.Epoch = 0
		p, _, err := m.server.resolve(st.Request)
		if err != nil {
			m.server.logger.Warn("drift state no longer resolvable, ignoring",
				slog.String("dataset", name), slog.String("error", err.Error()))
			continue
		}
		m.mu.Lock()
		w := m.watch(name)
		w.params = *p
		w.haveWatch = true
		w.baseEpoch = st.BaseEpoch
		w.baseline = st.Baseline
		m.mu.Unlock()
		cur := m.server.tables[name].Epoch()
		if cur > st.BaseEpoch {
			m.server.logger.Info("drift watch re-armed after replay",
				slog.String("dataset", name),
				slog.Uint64("baseline_epoch", st.BaseEpoch),
				slog.Uint64("epoch", cur))
			m.noteEpoch(name)
		}
	}
}

func (m *driftMonitor) setError(name, msg string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watch(name).lastError = msg
}

// snapshotSubgroups indexes a ranked report by subgroup label.
func snapshotSubgroups(rep *core.Report) map[string]subgroupSnap {
	out := make(map[string]subgroupSnap, len(rep.Subgroups))
	for _, sg := range rep.Subgroups {
		out[sg.Itemset.String()] = subgroupSnap{
			Support:    sg.Support,
			Divergence: sg.Divergence,
			T:          sg.T,
		}
	}
	return out
}

// diffSubgroups returns the subgroups whose |t| crossed the threshold
// between two epoch snapshots, in deterministic order (crossing-up first,
// larger |t-after| first).
func diffSubgroups(before, after map[string]subgroupSnap, thresh float64, fromEpoch, toEpoch uint64) []DriftEvent {
	now := time.Now().UnixNano()
	var events []DriftEvent
	seen := map[string]bool{}
	consider := func(label string) {
		if seen[label] {
			return
		}
		seen[label] = true
		b := before[label] // zero value: absent ⇒ t = 0
		a := after[label]
		wasOver := abs(b.T) >= thresh
		isOver := abs(a.T) >= thresh
		if wasOver == isOver {
			return
		}
		dir := "crossed_up"
		if !isOver {
			dir = "crossed_down"
		}
		events = append(events, DriftEvent{
			Subgroup:         label,
			FromEpoch:        fromEpoch,
			ToEpoch:          toEpoch,
			TBefore:          b.T,
			TAfter:           a.T,
			DivergenceBefore: b.Divergence,
			DivergenceAfter:  a.Divergence,
			Direction:        dir,
			UnixNano:         now,
		})
	}
	for label := range after {
		consider(label)
	}
	for label := range before {
		consider(label)
	}
	sortDriftEvents(events)
	return events
}

func sortDriftEvents(events []DriftEvent) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && driftLess(events[j], events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

func driftLess(a, b DriftEvent) bool {
	if a.Direction != b.Direction {
		return a.Direction == "crossed_up"
	}
	if abs(a.TAfter) != abs(b.TAfter) {
		return abs(a.TAfter) > abs(b.TAfter)
	}
	return a.Subgroup < b.Subgroup
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// driftReply is the GET /v1/drift/{name} response body.
type driftReply struct {
	Dataset       string       `json:"dataset"`
	Epoch         uint64       `json:"epoch"`
	BaselineEpoch uint64       `json:"baseline_epoch"`
	Threshold     float64      `json:"threshold"`
	Watching      bool         `json:"watching"`
	Stat          string       `json:"stat,omitempty"`
	Remining      bool         `json:"remining"`
	LastError     string       `json:"last_error,omitempty"`
	WindowMinutes int          `json:"window_minutes"`
	WindowEvents  int64        `json:"window_events"`
	Events        []DriftEvent `json:"events"`
}

// handleDrift implements GET /v1/drift/{name}: the dataset's drift-watch
// state and the subgroups whose divergence significance crossed the
// t-threshold between epochs. A dataset never explored reports
// watching=false — the monitor needs one complete exploration to learn
// what to watch.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "drift").Add(1)
	name := r.PathValue("name")
	v, ok := s.tables[name]
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	reply := driftReply{
		Dataset:   name,
		Epoch:     v.Epoch(),
		Threshold: s.drift.t,
		Events:    []DriftEvent{},
	}
	s.drift.mu.Lock()
	if dw, ok := s.drift.watches[name]; ok {
		reply.BaselineEpoch = dw.baseEpoch
		reply.Watching = dw.haveWatch
		reply.Stat = dw.params.req.Stat
		reply.Remining = dw.remining
		reply.LastError = dw.lastError
		reply.Events = append(reply.Events, dw.events...)
		reply.WindowEvents = dw.window.CountWindow(0)
		reply.WindowMinutes = dw.window.Epochs()
	}
	s.drift.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}
