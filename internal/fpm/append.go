package fpm

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/outcome"
)

// AppendUniverse incrementally maintains a universe after rows were
// appended to its dataset: t is the grown table (the old rows a frozen
// prefix of it), u the universe built over the prefix, and o the outcome
// recomputed over the full table. Only the appended row range [u.NumRows,
// t.NumRows()) is scanned per item; each item's row set grows by a tail of
// words via bitvec.Grow, which re-selects the dense/compressed
// representation with the same density rule as a from-scratch build.
//
// The result is byte-identical — row sets, representations, polarities,
// memory stats — to NewUniverse(t, u.Items, o). That equivalence is what
// lets the server swap incremental and full builds freely: it holds
// because append primitives re-encode containers from their bits alone and
// every Set visits bits in ascending order, so polarity recomputation
// accumulates floats in the same order as the dense pass. u itself is
// never mutated (dense sets are cloned, compressed ones grown
// copy-on-write), so explorations holding the old epoch's universe are
// undisturbed.
//
// The items must still describe the table: categorical dictionaries are
// append-only under dataset.Versioned, so old codes remain valid; batches
// introducing new levels (or drifting quantiles) should trigger a full
// rebuild instead, which is the server's drift policy, not a concern here.
func AppendUniverse(t *dataset.Table, u *Universe, o *outcome.Outcome) (*Universe, error) {
	if err := faultinject.Hit(faultinject.SiteUniverseAppend); err != nil {
		return nil, err
	}
	oldN, newN := u.NumRows, t.NumRows()
	if newN < oldN {
		return nil, fmt.Errorf("fpm: append universe shrinks %d -> %d rows", oldN, newN)
	}
	g := &Universe{
		Items:    u.Items,
		Rows:     make([]bitvec.Set, len(u.Items)),
		AttrID:   append([]int(nil), u.AttrID...),
		Polarity: make([]int8, len(u.Items)),
		NumRows:  newN,
		attrs:    append([]string(nil), u.attrs...),
	}
	startWord := oldN / 64
	tailWords := (newN+63)/64 - startWord
	tail := make([]uint64, tailWords)
	for i, it := range u.Items {
		for w := range tail {
			tail[w] = 0
		}
		switch it.Kind {
		case dataset.Continuous:
			floats := t.Floats(it.Attr)
			for j := oldN; j < newN; j++ {
				if it.MatchesFloat(floats[j]) {
					tail[j/64-startWord] |= 1 << uint(j%64)
				}
			}
		case dataset.Categorical:
			codes := t.Codes(it.Attr)
			in := make(map[int]bool, len(it.Codes))
			for _, c := range it.Codes {
				in[c] = true
			}
			for j := oldN; j < newN; j++ {
				if in[codes[j]] {
					tail[j/64-startWord] |= 1 << uint(j%64)
				}
			}
		}
		grown := bitvec.Grow(u.Rows[i], tail, newN)
		g.Rows[i] = grown
		if d := o.DivergenceOfSet(grown); d < 0 {
			g.Polarity[i] = -1
		} else {
			g.Polarity[i] = 1
		}
		denseBytes := int64(grown.NumWords()) * 8
		g.mem.DenseBytes += denseBytes
		if c, isCompressed := grown.(*bitvec.Compressed); isCompressed {
			st := c.Stats()
			g.mem.ItemsCompressed++
			g.mem.ContainersArray += st.Array
			g.mem.ContainersBitmap += st.Bitmap
			g.mem.ContainersRun += st.Run
			g.mem.Bytes += st.Bytes
		} else {
			g.mem.ItemsDense++
			g.mem.Bytes += denseBytes
		}
	}
	return g, nil
}
