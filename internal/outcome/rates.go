package outcome

import "fmt"

// This file provides the remaining classifier statistics expressible as
// boolean outcome functions (DivExplorer §4.1 lists them): true
// positive/negative rates, precision-style rates over predicted classes,
// and a generic constructor for custom statistics.

// TruePositiveRate builds the TPR (recall) outcome: defined on
// actual-positive instances, 1 where the model predicted positive.
func TruePositiveRate(actual, predicted []bool) *Outcome {
	return rateOutcome("TPR", actual, predicted, true, func(pred bool) float64 {
		if pred {
			return 1
		}
		return 0
	})
}

// TrueNegativeRate builds the TNR (specificity) outcome: defined on
// actual-negative instances, 1 where the model predicted negative.
func TrueNegativeRate(actual, predicted []bool) *Outcome {
	return rateOutcome("TNR", actual, predicted, false, func(pred bool) float64 {
		if pred {
			return 0
		}
		return 1
	})
}

// Precision builds the positive-predictive-value outcome: defined on
// predicted-positive instances, 1 where the instance is actually positive.
// Note the conditioning flips: validity follows the prediction, the value
// follows the truth.
func Precision(actual, predicted []bool) *Outcome {
	return predictionConditioned("precision", actual, predicted, true, func(act bool) float64 {
		if act {
			return 1
		}
		return 0
	})
}

// FalseDiscoveryRate builds the FDR outcome: defined on predicted-positive
// instances, 1 where the instance is actually negative (1 − precision).
func FalseDiscoveryRate(actual, predicted []bool) *Outcome {
	return predictionConditioned("FDR", actual, predicted, true, func(act bool) float64 {
		if act {
			return 0
		}
		return 1
	})
}

// FalseOmissionRate builds the FOR outcome: defined on predicted-negative
// instances, 1 where the instance is actually positive.
func FalseOmissionRate(actual, predicted []bool) *Outcome {
	return predictionConditioned("FOR", actual, predicted, false, func(act bool) float64 {
		if act {
			return 1
		}
		return 0
	})
}

func predictionConditioned(name string, actual, predicted []bool, definedOnPred bool, value func(act bool) float64) *Outcome {
	if len(actual) != len(predicted) {
		panic(fmt.Sprintf("outcome: %d actual vs %d predicted", len(actual), len(predicted)))
	}
	// Reuse rateOutcome with roles swapped: condition on the prediction,
	// score the actual label.
	return rateOutcome(name, predicted, actual, definedOnPred, value)
}

// PredictedPositiveRate builds the demographic-parity outcome: defined
// everywhere, 1 where the model predicted positive. Its divergence
// measures how much more often a subgroup is predicted positive than the
// population (statistical-parity difference).
func PredictedPositiveRate(predicted []bool) *Outcome {
	vals := make([]float64, len(predicted))
	for i, p := range predicted {
		if p {
			vals[i] = 1
		}
	}
	return MustNew("PPR", vals, fullMask(len(predicted)))
}

// PositiveRate builds the base-rate outcome: defined everywhere, 1 where
// the instance is actually positive.
func PositiveRate(actual []bool) *Outcome {
	vals := make([]float64, len(actual))
	for i, a := range actual {
		if a {
			vals[i] = 1
		}
	}
	return MustNew("positive-rate", vals, fullMask(len(actual)))
}

// Tristate is the value of a custom boolean outcome function: True, False
// or Bottom (⊥, undefined).
type Tristate int

// Tristate values.
const (
	Bottom Tristate = iota
	False
	True
)

// FromBoolFunc builds an outcome from an arbitrary per-row three-valued
// function, the paper's o: D → {T, F, ⊥}. Use it for statistics not
// covered by the stock constructors.
func FromBoolFunc(name string, n int, fn func(row int) Tristate) (*Outcome, error) {
	vals := make([]float64, n)
	valid := emptyMask(n)
	for i := 0; i < n; i++ {
		switch fn(i) {
		case True:
			vals[i] = 1
			valid.Set(i)
		case False:
			valid.Set(i)
		case Bottom:
		default:
			return nil, fmt.Errorf("outcome: invalid tristate at row %d", i)
		}
	}
	return New(name, vals, valid)
}
