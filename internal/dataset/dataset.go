// Package dataset implements the columnar table substrate on which
// H-DivExplorer operates: a typed, immutable-after-build table with
// continuous (float64) and categorical (dictionary-encoded string) columns,
// plus a CSV codec.
//
// The paper's pipeline consumes a dataset D with attributes A, a subset of
// which are continuous; this package is the Go equivalent of the pandas
// DataFrame the reference implementation uses.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Kind distinguishes continuous from categorical attributes.
type Kind int

const (
	// Continuous attributes have domain ℝ and are represented as float64.
	Continuous Kind = iota
	// Categorical attributes have a finite domain of string levels,
	// dictionary-encoded as small integer codes.
	Categorical
)

// String returns "continuous" or "categorical".
func (k Kind) String() string {
	switch k {
	case Continuous:
		return "continuous"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Field describes one attribute of a table.
type Field struct {
	Name string
	Kind Kind
}

// column is the internal storage for one attribute.
type column struct {
	field  Field
	floats []float64 // set iff Kind == Continuous
	codes  []int     // set iff Kind == Categorical
	levels []string  // dictionary for codes
}

// Table is a columnar dataset. Build one with NewBuilder or ReadCSV.
// A Table is safe for concurrent readers once built.
type Table struct {
	cols   []column
	byName map[string]int
	nrows  int
}

// Builder incrementally assembles a Table column by column. All columns must
// have the same length; the first column added fixes the row count.
type Builder struct {
	t   Table
	err error
}

// NewBuilder returns an empty table builder.
func NewBuilder() *Builder {
	return &Builder{t: Table{byName: map[string]int{}}}
}

// AddFloat adds a continuous column. The slice is retained, not copied.
func (b *Builder) AddFloat(name string, vals []float64) *Builder {
	if b.check(name, len(vals)) {
		b.t.cols = append(b.t.cols, column{field: Field{name, Continuous}, floats: vals})
		b.t.byName[name] = len(b.t.cols) - 1
	}
	return b
}

// AddCategorical adds a categorical column from string values, building the
// dictionary of levels in order of first appearance.
func (b *Builder) AddCategorical(name string, vals []string) *Builder {
	if !b.check(name, len(vals)) {
		return b
	}
	codes := make([]int, len(vals))
	var levels []string
	index := map[string]int{}
	for i, v := range vals {
		c, ok := index[v]
		if !ok {
			c = len(levels)
			levels = append(levels, v)
			index[v] = c
		}
		codes[i] = c
	}
	b.t.cols = append(b.t.cols, column{field: Field{name, Categorical}, codes: codes, levels: levels})
	b.t.byName[name] = len(b.t.cols) - 1
	return b
}

// AddCategoricalCodes adds a categorical column from pre-encoded codes and an
// explicit level dictionary. Codes must index into levels.
func (b *Builder) AddCategoricalCodes(name string, codes []int, levels []string) *Builder {
	if !b.check(name, len(codes)) {
		return b
	}
	for i, c := range codes {
		if c < 0 || c >= len(levels) {
			b.err = fmt.Errorf("dataset: column %q: code %d at row %d out of range [0,%d)", name, c, i, len(levels))
			return b
		}
	}
	b.t.cols = append(b.t.cols, column{field: Field{name, Categorical}, codes: codes, levels: levels})
	b.t.byName[name] = len(b.t.cols) - 1
	return b
}

func (b *Builder) check(name string, n int) bool {
	if b.err != nil {
		return false
	}
	if _, dup := b.t.byName[name]; dup {
		b.err = fmt.Errorf("dataset: duplicate column %q", name)
		return false
	}
	if len(b.t.cols) == 0 {
		b.t.nrows = n
	} else if n != b.t.nrows {
		b.err = fmt.Errorf("dataset: column %q has %d rows, want %d", name, n, b.t.nrows)
		return false
	}
	return true
}

// Build finalizes the table or reports the first construction error.
func (b *Builder) Build() (*Table, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := b.t
	return &t, nil
}

// MustBuild is Build that panics on error, for tests and generators.
func (b *Builder) MustBuild() *Table {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the number of instances in the table.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return len(t.cols) }

// Fields returns the schema in column order. The slice is freshly allocated.
func (t *Table) Fields() []Field {
	out := make([]Field, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.field
	}
	return out
}

// Names returns the attribute names in column order.
func (t *Table) Names() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.field.Name
	}
	return out
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// KindOf returns the kind of the named column; it panics if absent.
func (t *Table) KindOf(name string) Kind {
	return t.cols[t.mustIndex(name)].field.Kind
}

// Floats returns the value slice of a continuous column. The returned slice
// is shared with the table and must not be modified.
func (t *Table) Floats(name string) []float64 {
	c := t.cols[t.mustIndex(name)]
	if c.field.Kind != Continuous {
		panic(fmt.Sprintf("dataset: column %q is %v, not continuous", name, c.field.Kind))
	}
	return c.floats
}

// Codes returns the code slice of a categorical column. The returned slice
// is shared with the table and must not be modified.
func (t *Table) Codes(name string) []int {
	c := t.cols[t.mustIndex(name)]
	if c.field.Kind != Categorical {
		panic(fmt.Sprintf("dataset: column %q is %v, not categorical", name, c.field.Kind))
	}
	return c.codes
}

// Levels returns the dictionary of a categorical column, indexed by code.
// The returned slice is shared with the table and must not be modified.
func (t *Table) Levels(name string) []string {
	c := t.cols[t.mustIndex(name)]
	if c.field.Kind != Categorical {
		panic(fmt.Sprintf("dataset: column %q is %v, not categorical", name, c.field.Kind))
	}
	return c.levels
}

// LevelCode returns the code for a level of a categorical column, or -1 if
// the level does not occur.
func (t *Table) LevelCode(name, level string) int {
	for i, l := range t.Levels(name) {
		if l == level {
			return i
		}
	}
	return -1
}

// ValueString renders the value at (row, column name) for display.
func (t *Table) ValueString(row int, name string) string {
	c := t.cols[t.mustIndex(name)]
	if row < 0 || row >= t.nrows {
		panic(fmt.Sprintf("dataset: row %d out of range [0,%d)", row, t.nrows))
	}
	if c.field.Kind == Continuous {
		return strconv.FormatFloat(c.floats[row], 'g', -1, 64)
	}
	return c.levels[c.codes[row]]
}

// Select returns a new table containing only the named columns, sharing
// storage with t.
func (t *Table) Select(names ...string) (*Table, error) {
	b := NewBuilder()
	for _, n := range names {
		i, ok := t.byName[n]
		if !ok {
			return nil, fmt.Errorf("dataset: no column %q", n)
		}
		c := t.cols[i]
		if c.field.Kind == Continuous {
			b.AddFloat(n, c.floats)
		} else {
			b.AddCategoricalCodes(n, c.codes, c.levels)
		}
	}
	return b.Build()
}

// Drop returns a new table without the named columns, sharing storage.
func (t *Table) Drop(names ...string) (*Table, error) {
	drop := map[string]bool{}
	for _, n := range names {
		if !t.HasColumn(n) {
			return nil, fmt.Errorf("dataset: no column %q", n)
		}
		drop[n] = true
	}
	var keep []string
	for _, c := range t.cols {
		if !drop[c.field.Name] {
			keep = append(keep, c.field.Name)
		}
	}
	return t.Select(keep...)
}

// FilterRows returns a new table with only the given rows (in the given
// order). Row storage is copied; dictionaries are shared.
func (t *Table) FilterRows(rows []int) *Table {
	b := NewBuilder()
	for _, c := range t.cols {
		if c.field.Kind == Continuous {
			vals := make([]float64, len(rows))
			for i, r := range rows {
				vals[i] = c.floats[r]
			}
			b.AddFloat(c.field.Name, vals)
		} else {
			codes := make([]int, len(rows))
			for i, r := range rows {
				codes[i] = c.codes[r]
			}
			b.AddCategoricalCodes(c.field.Name, codes, c.levels)
		}
	}
	return b.MustBuild()
}

// SortedUniqueFloats returns the sorted distinct values of a continuous
// column, ignoring NaNs. It is the split-candidate source for the
// discretization trees.
func (t *Table) SortedUniqueFloats(name string) []float64 {
	vals := t.Floats(name)
	s := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// CountKinds returns the number of continuous and categorical attributes,
// the |A|num and |A|cat of the paper's Table II.
func (t *Table) CountKinds() (numContinuous, numCategorical int) {
	for _, c := range t.cols {
		if c.field.Kind == Continuous {
			numContinuous++
		} else {
			numCategorical++
		}
	}
	return
}

func (t *Table) mustIndex(name string) int {
	i, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("dataset: no column %q", name))
	}
	return i
}
