package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/hierarchy"
)

// TopKDiverse greedily selects up to k subgroups in |divergence| order,
// skipping any whose row set overlaps a previously selected subgroup with
// Jaccard similarity above maxJaccard. Exploration reports are dominated
// by near-duplicates of the same anomaly (every sub-interval and superset
// of the top pattern); diverse selection surfaces *distinct* anomalous
// regions instead.
func (r *Report) TopKDiverse(t *dataset.Table, k int, maxJaccard float64) ([]Subgroup, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive")
	}
	if maxJaccard < 0 || maxJaccard >= 1 {
		return nil, fmt.Errorf("core: maxJaccard must be in [0, 1)")
	}
	var out []Subgroup
	var rows []*bitvec.Vector
	for i := range r.Subgroups {
		if len(out) == k {
			break
		}
		sg := &r.Subgroups[i]
		cand := sg.Itemset.Rows(t)
		overlaps := false
		for _, prev := range rows {
			if jaccard(cand, prev) > maxJaccard {
				overlaps = true
				break
			}
		}
		if overlaps {
			continue
		}
		out = append(out, *sg)
		rows = append(rows, cand)
	}
	return out, nil
}

// jaccard returns |a∩b| / |a∪b|, defining the similarity of two empty sets
// as 0.
func jaccard(a, b *bitvec.Vector) float64 {
	inter := a.AndCount(b)
	union := a.Count() + b.Count() - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// FilterClosed returns the closed subgroups of the report: those whose
// support strictly exceeds every frequent one-item refinement's support.
// A non-closed subgroup is redundant — some refinement covers exactly the
// same rows and is therefore at least as informative — so closed filtering
// compresses reports without losing any distinct row set. Order is
// preserved.
func (r *Report) FilterClosed() []Subgroup {
	// Group subgroups by length for child lookup.
	byLen := map[int][]*Subgroup{}
	for i := range r.Subgroups {
		sg := &r.Subgroups[i]
		byLen[len(sg.ItemIdx)] = append(byLen[len(sg.ItemIdx)], sg)
	}
	var out []Subgroup
	for i := range r.Subgroups {
		sg := &r.Subgroups[i]
		closed := true
		for _, cand := range byLen[len(sg.ItemIdx)+1] {
			if cand.Count == sg.Count && containsAll(cand.ItemIdx, sg.ItemIdx) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, *sg)
		}
	}
	return out
}

// DriftEntry is one pattern's change between two evaluations.
type DriftEntry struct {
	Itemset hierarchy.Itemset
	// Before and After are the subgroup's states in the two reports.
	Before, After Subgroup
	// DivergenceShift is After.Divergence − Before.Divergence.
	DivergenceShift float64
	// SupportShift is After.Support − Before.Support.
	SupportShift float64
}

// Drift pairs two evaluations of the same patterns (e.g. two data
// snapshots scored via EvaluateItemsets) and returns per-pattern shifts,
// ordered by |divergence shift| descending — the monitoring view of which
// subgroups' behaviour moved most between snapshots. The inputs must be
// parallel (same patterns in the same order), as produced by calling
// EvaluateItemsets twice with the same itemset list.
func Drift(before, after []Subgroup) ([]DriftEntry, error) {
	if len(before) != len(after) {
		return nil, fmt.Errorf("core: drift inputs have %d vs %d subgroups", len(before), len(after))
	}
	out := make([]DriftEntry, len(before))
	for i := range before {
		if before[i].Itemset.String() != after[i].Itemset.String() {
			return nil, fmt.Errorf("core: drift inputs disagree at %d: %q vs %q",
				i, before[i].Itemset, after[i].Itemset)
		}
		out[i] = DriftEntry{
			Itemset:         before[i].Itemset,
			Before:          before[i],
			After:           after[i],
			DivergenceShift: after[i].Divergence - before[i].Divergence,
			SupportShift:    after[i].Support - before[i].Support,
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].DivergenceShift) > math.Abs(out[b].DivergenceShift)
	})
	return out, nil
}

// Covering returns the report's subgroups that contain the given row,
// preserving the report's |divergence| order. This is the instance-level
// triage view: for one flagged individual, which anomalous subgroups is it
// a member of?
func (r *Report) Covering(t *dataset.Table, row int) []Subgroup {
	if row < 0 || row >= t.NumRows() {
		panic(fmt.Sprintf("core: row %d out of range [0,%d)", row, t.NumRows()))
	}
	var out []Subgroup
	for i := range r.Subgroups {
		sg := &r.Subgroups[i]
		if itemsetContainsRow(t, sg.Itemset, row) {
			out = append(out, *sg)
		}
	}
	return out
}

// itemsetContainsRow tests membership of one row without materializing the
// itemset's full bitset.
func itemsetContainsRow(t *dataset.Table, its hierarchy.Itemset, row int) bool {
	for _, it := range its {
		switch it.Kind {
		case dataset.Continuous:
			if !it.MatchesFloat(t.Floats(it.Attr)[row]) {
				return false
			}
		case dataset.Categorical:
			if !it.MatchesCode(t.Codes(it.Attr)[row]) {
				return false
			}
		}
	}
	return true
}
