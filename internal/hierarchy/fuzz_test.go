package hierarchy

import (
	"encoding/json"
	"testing"
)

// FuzzHierarchyJSON asserts the hierarchy decoder never panics and never
// accepts a structurally invalid hierarchy (decoded hierarchies always
// pass Validate).
func FuzzHierarchyJSON(f *testing.F) {
	if raw, err := json.Marshal(buildAgeHierarchy()); err == nil {
		f.Add(string(raw))
	}
	f.Add(`{"attr":"x","nodes":[{"item":{"attr":"x","kind":"continuous","lo":"-inf","hi":"+inf"},"parent":-1}]}`)
	f.Add(`{"attr":"x","nodes":[]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, input string) {
		var h Hierarchy
		if err := json.Unmarshal([]byte(input), &h); err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid hierarchy: %v\ninput: %q", err, input)
		}
	})
}
