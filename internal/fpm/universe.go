// Package fpm implements the frequent-pattern mining core of DivExplorer
// and H-DivExplorer: Apriori and FP-Growth, extended in three ways.
//
//   - Generalized itemsets: the item universe may contain items at several
//     granularity levels of the same attribute (from an item hierarchy); an
//     itemset uses at most one item per attribute, so items of one attribute
//     are never combined even when their domains overlap.
//   - Divergence accumulation: while counting supports, the miners also
//     accumulate the outcome moments (n, Σo, Σo²) of every frequent itemset,
//     so divergence and Welch t-values are available with no extra dataset
//     pass — the key efficiency property of DivExplorer.
//   - Polarity pruning: optionally, only items whose individual divergence
//     has the same sign are combined (the paper's §V-C heuristic), pruning
//     the search space roughly by 2^(n−1) for n continuous attributes.
//
// Memory model: both miners consume item row sets through the bitvec.Set
// interface (dense vectors or compressed bitmaps, selected per item by
// density at universe build time) and recycle their hot-path buffers —
// Apriori's materialized row vectors and partial-count matrices, FP-
// Growth's conditional trees and scratch arrays — through a per-run
// engine.Pool. Accumulator merges follow the engine contract (ascending
// shard order; bitvec.Set primitives visit bits in ascending index order),
// so representation choice and buffer reuse cannot perturb the ranked
// output. DESIGN.md §11 documents the ownership rules.
package fpm

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// Universe is the prepared item universe over which mining runs: per item,
// its covered row set, attribute group, and divergence polarity. Row sets
// are representation-selected at build time: dense items stay bitvec
// vectors, sparse ones (deep hierarchy nodes covering few rows) become
// compressed bitmaps — invisible to the miners, which consume Rows through
// the bitvec.Set contract.
type Universe struct {
	Items    []*hierarchy.Item
	Rows     []bitvec.Set // Rows[i] = rows satisfying Items[i]
	AttrID   []int        // attribute group of each item
	Polarity []int8       // sign of the item's individual divergence (+1 / -1)
	NumRows  int
	attrs    []string
	mem      MemStats
}

// MemStats summarizes the universe's row-set representations: how many
// items stayed dense vs compressed, the compressed container mix, and the
// byte footprint against the all-dense equivalent. Deterministic for a
// given dataset and item set.
type MemStats struct {
	ItemsDense       int
	ItemsCompressed  int
	ContainersArray  int
	ContainersBitmap int
	ContainersRun    int
	// Bytes is the row-set payload actually held; DenseBytes what an
	// all-dense universe would hold.
	Bytes, DenseBytes int64
}

// NewUniverse precomputes row sets, attribute groups and polarities for
// the given items. The outcome determines polarity: items whose individual
// divergence is ≥ 0 get polarity +1, otherwise -1. Polarity is computed on
// the dense vector before representation selection, so packing cannot
// perturb it.
func NewUniverse(t *dataset.Table, items []*hierarchy.Item, o *outcome.Outcome) *Universe {
	u := &Universe{
		Items:    items,
		Rows:     make([]bitvec.Set, len(items)),
		AttrID:   make([]int, len(items)),
		Polarity: make([]int8, len(items)),
		NumRows:  t.NumRows(),
	}
	attrIndex := map[string]int{}
	for i, it := range items {
		rows := it.Rows(t)
		id, ok := attrIndex[it.Attr]
		if !ok {
			id = len(u.attrs)
			attrIndex[it.Attr] = id
			u.attrs = append(u.attrs, it.Attr)
		}
		u.AttrID[i] = id
		if d := o.DivergenceOf(rows); d < 0 {
			u.Polarity[i] = -1
		} else {
			u.Polarity[i] = 1
		}
		u.Rows[i] = bitvec.Pack(rows)
		denseBytes := int64(rows.NumWords()) * 8
		u.mem.DenseBytes += denseBytes
		if c, isCompressed := u.Rows[i].(*bitvec.Compressed); isCompressed {
			st := c.Stats()
			u.mem.ItemsCompressed++
			u.mem.ContainersArray += st.Array
			u.mem.ContainersBitmap += st.Bitmap
			u.mem.ContainersRun += st.Run
			u.mem.Bytes += st.Bytes
		} else {
			u.mem.ItemsDense++
			u.mem.Bytes += denseBytes
		}
	}
	return u
}

// Memory returns the universe's representation statistics.
func (u *Universe) Memory() MemStats { return u.mem }

// NumAttrs returns the number of distinct attributes among the items.
func (u *Universe) NumAttrs() int { return len(u.attrs) }

// Attr returns the attribute name for an attribute group id.
func (u *Universe) Attr(id int) string { return u.attrs[id] }

// Itemset materializes a mined index set as a hierarchy.Itemset.
func (u *Universe) Itemset(idx []int) hierarchy.Itemset {
	out := make(hierarchy.Itemset, len(idx))
	for i, j := range idx {
		out[i] = u.Items[j]
	}
	return out
}

// Validate performs sanity checks: items exist, bitset lengths match, and
// no two items of the same attribute have identical index.
func (u *Universe) Validate() error {
	for i, it := range u.Items {
		if it == nil {
			return fmt.Errorf("fpm: nil item at %d", i)
		}
		if u.Rows[i].Len() != u.NumRows {
			return fmt.Errorf("fpm: item %d bitset length %d, want %d", i, u.Rows[i].Len(), u.NumRows)
		}
	}
	return nil
}

// GeneralizedUniverse builds the universe for hierarchical exploration: all
// non-root items of every hierarchy in the set.
func GeneralizedUniverse(t *dataset.Table, hs *hierarchy.Set, o *outcome.Outcome) *Universe {
	return NewUniverse(t, hs.AllItems(), o)
}

// BaseUniverse builds the universe for base (non-hierarchical) exploration:
// leaf items only, i.e. a conventional non-overlapping discretization.
func BaseUniverse(t *dataset.Table, hs *hierarchy.Set, o *outcome.Outcome) *Universe {
	return NewUniverse(t, hs.AllLeafItems(), o)
}

// MinedItemset is one frequent itemset with its accumulated divergence
// statistics.
type MinedItemset struct {
	// Items are sorted universe indices.
	Items []int
	// Count is the absolute support count (#rows satisfying all items).
	Count int
	// M holds the outcome moments over the itemset's rows with defined
	// outcome: M.N = non-⊥ members, M.Sum = Σo, M.SumSq = Σo². Under a
	// multi-outcome bundle M belongs to the primary (lattice-determining)
	// outcome.
	M stats.Moments
	// Multi holds the moments of the bundle's extra outcomes (Multi[k-1]
	// corresponds to bundle outcome k); nil on single-outcome runs.
	Multi []stats.Moments
}

// MomentsAt returns the moments for bundle outcome k: k = 0 is the primary
// (M), higher k index into Multi.
func (m *MinedItemset) MomentsAt(k int) stats.Moments {
	if k == 0 {
		return m.M
	}
	return m.Multi[k-1]
}

// Support returns the relative support given the dataset size.
func (m *MinedItemset) Support(numRows int) float64 {
	return float64(m.Count) / float64(numRows)
}
