package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func postBatch(t *testing.T, h http.Handler, req BatchExploreRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/explore/batch", bytes.NewReader(body)))
	return rec
}

// TestExploreBatch pins the /v1/explore/batch contract: one report per
// statistic in request order, the primary statistic byte-identical to a
// plain /v1/explore with the same parameters (both run the same mining
// code path over the same cached universe), and the batch-statistics
// counter advanced by the bundle size.
func TestExploreBatch(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	base := ExploreRequest{
		Dataset: "anomaly", Actual: "y", Predicted: "p",
		S: 0.05, ST: 0.1,
	}

	req := BatchExploreRequest{ExploreRequest: base, Stats: []string{"fpr", "fnr", "error"}}
	rec := postBatch(t, s, req)
	if rec.Code != 200 {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body.String())
	}
	var reps []struct {
		Stat   string          `json:"stat"`
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reps); err != nil {
		t.Fatalf("batch reply not a JSON array: %v", err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports, want 3", len(reps))
	}
	for i, want := range []string{"fpr", "fnr", "error"} {
		if reps[i].Stat != want {
			t.Errorf("report %d stat = %q, want %q", i, reps[i].Stat, want)
		}
		var rep struct {
			NumRows   int               `json:"num_rows"`
			Subgroups []json.RawMessage `json:"subgroups"`
		}
		if err := json.Unmarshal(reps[i].Report, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.NumRows != 600 || len(rep.Subgroups) == 0 {
			t.Errorf("report %d looks empty: rows=%d subgroups=%d", i, rep.NumRows, len(rep.Subgroups))
		}
	}

	// The primary statistic must rank identically to a plain explore with
	// stat = stats[0]: everything except the wall-clock elapsed_ms field
	// is byte-identical.
	single := base
	single.Stat = "fpr"
	srec := postExplore(t, s, single)
	if srec.Code != 200 {
		t.Fatalf("single: %d %s", srec.Code, srec.Body.String())
	}
	stripElapsed := func(raw []byte) map[string]json.RawMessage {
		t.Helper()
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "elapsed_ms")
		return m
	}
	got, want := stripElapsed(reps[0].Report), stripElapsed(srec.Body.Bytes())
	if len(got) != len(want) {
		t.Fatalf("report fields differ: %d vs %d", len(got), len(want))
	}
	for k, v := range want {
		var g, w bytes.Buffer
		if err := json.Compact(&g, got[k]); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&w, v); err != nil {
			t.Fatal(err)
		}
		if g.String() != w.String() {
			t.Errorf("batch primary field %q differs from single explore:\nbatch:  %.200s\nsingle: %.200s", k, g.String(), w.String())
		}
	}

	snap := s.tracer.Snapshot()
	if got := snap.Counter(obs.CtrServerBatchStats); got != 3 {
		t.Errorf("batch statistics counter = %d, want 3", got)
	}
	// Both requests share one universe (keyed by the primary statistic).
	if m, h := snap.Counter(obs.CtrServerCacheMisses), snap.Counter(obs.CtrServerCacheHits); m != 1 || h != 1 {
		t.Errorf("cache counters: misses=%d hits=%d, want 1/1", m, h)
	}

	// CSV format: one block per statistic with # stat= separators.
	creq := req
	creq.Format = "csv"
	crec := postBatch(t, s, creq)
	if crec.Code != 200 {
		t.Fatalf("csv batch: %d %s", crec.Code, crec.Body.String())
	}
	for _, want := range []string{"# stat=fpr", "# stat=fnr", "# stat=error"} {
		if !strings.Contains(crec.Body.String(), want) {
			t.Errorf("csv batch missing separator %q", want)
		}
	}
}

// TestExploreBatchErrors pins the 400 paths of the batch endpoint.
func TestExploreBatchErrors(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	base := ExploreRequest{Dataset: "anomaly", Actual: "y", Predicted: "p"}

	for name, stats := range map[string][]string{
		"empty stats":     nil,
		"blank stats":     {" ", ""},
		"duplicate stats": {"fpr", "fpr"},
		"unknown primary": {"wat"},
		"unknown extra":   {"fpr", "wat"},
	} {
		rec := postBatch(t, s, BatchExploreRequest{ExploreRequest: base, Stats: stats})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}

	// Negative workers/shards are rejected on both endpoints.
	neg := base
	neg.Stat = "fpr"
	neg.Workers = -1
	if rec := postExplore(t, s, neg); rec.Code != http.StatusBadRequest {
		t.Errorf("negative workers: code = %d, want 400", rec.Code)
	}
	neg.Workers, neg.Shards = 0, -2
	if rec := postExplore(t, s, neg); rec.Code != http.StatusBadRequest {
		t.Errorf("negative shards: code = %d, want 400", rec.Code)
	}
}

// TestCacheLRUEviction bounds the universe cache: with CacheMax=2, a
// third distinct key evicts the least-recently-used entry (counted), and
// re-requesting the evicted key is a miss that rebuilds it.
func TestCacheLRUEviction(t *testing.T) {
	s := newTestServer(t, Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		CacheMax: 2,
	})
	explore := func(stat string) {
		t.Helper()
		rec := postExplore(t, s, ExploreRequest{
			Dataset: "anomaly", Stat: stat, Actual: "y", Predicted: "p",
			S: 0.05, ST: 0.1,
		})
		if rec.Code != 200 {
			t.Fatalf("%s: %d %s", stat, rec.Code, rec.Body.String())
		}
	}

	explore("fpr")   // cache: fpr
	explore("fnr")   // cache: fnr, fpr
	explore("error") // cache: error, fnr — fpr evicted
	snap := s.tracer.Snapshot()
	if got := snap.Counter(obs.CtrServerCacheEvictions); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := s.cache.len(); got != 2 {
		t.Errorf("cache len = %d, want 2", got)
	}

	explore("fpr") // evicted above: must rebuild (miss), evicting fnr
	snap = s.tracer.Snapshot()
	if got := snap.Counter(obs.CtrServerCacheMisses); got != 4 {
		t.Errorf("misses = %d, want 4 (fpr was rebuilt)", got)
	}
	if got := snap.Counter(obs.CtrServerCacheEvictions); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}

	explore("error") // still resident: a hit, refreshing its recency
	snap = s.tracer.Snapshot()
	if got := snap.Counter(obs.CtrServerCacheHits); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := s.cache.len(); got != 2 {
		t.Errorf("cache len = %d, want 2", got)
	}
}
