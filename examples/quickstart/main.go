// Quickstart: find the data subgroups where a model's error rate diverges
// from its overall value.
//
// The example fabricates a small loan-approval dataset with a model that is
// systematically wrong for young applicants requesting large amounts, then
// lets H-DivExplorer recover that subgroup from (features, labels,
// predictions) alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	hdiv "repro"
)

func main() {
	tab, actual, predicted := makeLoanData(8_000, 42)

	// The statistic to analyze: the model's error rate. Also available:
	// FalsePositiveRate, FalseNegativeRate, Accuracy, Numeric.
	o := hdiv.ErrorRate(actual, predicted)

	// One call runs the whole pipeline: divergence-aware tree discretization
	// of age and amount, a flat hierarchy for the purpose attribute, and
	// hierarchical exploration of all frequent generalized itemsets.
	rep, err := hdiv.Pipeline(tab, o, hdiv.PipelineOptions{
		TreeSupport: 0.1,  // st: minimum support of discretization intervals
		MinSupport:  0.05, // s: minimum support of reported subgroups
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overall error rate: %.3f over %d rows\n", rep.Global, rep.NumRows)
	fmt.Printf("explored %d items, found %d frequent subgroups in %v\n\n",
		rep.NumItems, len(rep.Subgroups), rep.Elapsed)
	fmt.Println("most divergent subgroups:")
	fmt.Print(rep.Table(8))

	top := rep.Top()
	fmt.Printf("\nworst subgroup: %s\n", top.Itemset)
	fmt.Printf("  error rate %.3f vs %.3f overall (Δ=%+.3f, t=%.1f, %d rows)\n",
		top.Statistic, rep.Global, top.Divergence, top.T, top.Count)
}

// makeLoanData fabricates applications with a planted model weakness.
func makeLoanData(n int, seed int64) (*hdiv.Table, []bool, []bool) {
	r := rand.New(rand.NewSource(seed))
	age := make([]float64, n)
	amount := make([]float64, n)
	purpose := make([]string, n)
	actual := make([]bool, n)
	predicted := make([]bool, n)
	purposes := []string{"car", "home", "business", "education"}
	for i := 0; i < n; i++ {
		age[i] = 18 + r.Float64()*50
		amount[i] = 1_000 + r.ExpFloat64()*9_000
		purpose[i] = purposes[r.Intn(len(purposes))]
		// Ground truth: repayment mostly depends on age and amount.
		actual[i] = r.Float64() < 1/(1+amount[i]/(400*age[i]))
		// The model is decent overall but unreliable for young applicants
		// with large amounts.
		predicted[i] = actual[i]
		errP := 0.05
		if age[i] < 30 && amount[i] > 8_000 {
			errP = 0.45
		}
		if r.Float64() < errP {
			predicted[i] = !predicted[i]
		}
	}
	tab := hdiv.NewTableBuilder().
		AddFloat("age", age).
		AddFloat("amount", amount).
		AddCategorical("purpose", purpose).
		MustBuild()
	return tab, actual, predicted
}
