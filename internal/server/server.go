package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/engine"
	"repro/internal/fpm"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/wal"
)

// DatasetConfig names one dataset served by the server. Exactly one of
// Path and Table must be set: Path is a headed CSV file loaded at
// startup; Table supplies an already-built table (used by tests and
// embedders).
type DatasetConfig struct {
	// Name is the identifier requests use to select the dataset.
	Name string
	// Path is the CSV file to load (column kinds are inferred).
	Path string
	// Table, when non-nil, is served directly instead of loading Path.
	Table *dataset.Table
}

// Config parameterizes New.
type Config struct {
	// Datasets lists the datasets to load and serve. At least one is
	// required.
	Datasets []DatasetConfig
	// MaxInFlight caps concurrent explorations; requests beyond the cap
	// receive 429 immediately. Defaults to runtime.GOMAXPROCS(0).
	MaxInFlight int
	// RequestTimeout bounds each exploration's wall time (504 on expiry).
	// A request may shorten it via timeout_ms but never extend it.
	// Defaults to 30s.
	RequestTimeout time.Duration
	// CacheMax bounds the universe cache: beyond this many
	// (dataset, statistic, criterion, st) entries, the least-recently-used
	// one is evicted. 0 defaults to 32; negative disables the bound.
	CacheMax int
	// Budget is the default resource budget applied to every exploration:
	// on exhaustion the request is answered 200 with a ranked report
	// flagged "truncated" instead of running away with the machine.
	// Requests may tighten individual dimensions via the body's budget
	// object but never loosen them. The zero value is unlimited.
	Budget fpm.Budget
	// TraceRing bounds how many completed requests keep their progress,
	// trace snapshot and flight record queryable (GET /v1/trace/{id},
	// /v1/explain/{id}, /v1/debug/requests). 0 defaults to
	// DefaultTraceRing; values above 4096 are clamped.
	TraceRing int
	// SlowThreshold is the flight recorder's slow-request latency bar:
	// requests at least this slow keep their full trace and explain
	// profile even after rotating out of the trace ring. 0 is automatic:
	// the tightest SLO latency target when one is declared, else 1s —
	// so every objective-violating request is captured in full. Negative
	// disables slow capture.
	SlowThreshold time.Duration
	// SLO declares the server's service-level objectives and measurement
	// windows (see SLOConfig and ParseSLO). The windowed latency/error
	// tracking behind GET /v1/slo and the server_window_* metric families
	// runs whether or not objectives are declared.
	SLO SLOConfig
	// SlowRequests caps how many slow requests are retained (competing by
	// latency). 0 defaults to 8.
	SlowRequests int
	// RediscretizeDrift is the per-column quantile-drift threshold (two-
	// sample Kolmogorov–Smirnov statistic between an appended batch and the
	// rows before it) above which an epoch-bump universe build abandons the
	// cached discretization cutpoints and re-discretizes from scratch.
	// Batches introducing new categorical levels always re-discretize.
	// 0 defaults to 0.2; negative disables incremental maintenance
	// entirely (every epoch bump re-discretizes).
	RediscretizeDrift float64
	// DriftT is the Welch t-value threshold of the divergence-drift
	// monitor: a subgroup whose |t| crosses this value between epochs is
	// reported by GET /v1/drift/{name}. 0 defaults to 3 (the paper's
	// significance convention); negative disables the monitor.
	DriftT float64
	// DriftDebounce delays the monitor's background re-mine after an
	// epoch bump, coalescing append bursts into one re-mine. 0 defaults
	// to 2s.
	DriftDebounce time.Duration
	// WALDir enables the durable dataset lifecycle: each dataset keeps a
	// write-ahead log (and its snapshots) under WALDir/<name>/. Appends
	// are acknowledged only after the record satisfies WALSync, and New
	// replays the log so a restart resumes at the exact pre-crash epoch.
	// Empty disables durability: appends live only in memory.
	WALDir string
	// WALSync is the append durability policy (see wal.SyncPolicy). The
	// zero value is wal.SyncAlways.
	WALSync wal.SyncPolicy
	// WALSyncInterval is the background flush period under
	// wal.SyncInterval. 0 defaults to 50ms.
	WALSyncInterval time.Duration
	// WALSegmentBytes rotates WAL segments at this size (0 = 4 MiB).
	// Each rotation also triggers background snapshot/compaction.
	WALSegmentBytes int64
	// EpochRetain bounds how many recent epochs of a dataset stay
	// servable as pinned replays: after an append acks epoch E, cache
	// entries at or below E−EpochRetain are retired (410 Gone).
	// 0 defaults to 8; negative disables the sweep.
	EpochRetain int
	// Recovery, when non-nil, receives WAL replay progress while New
	// runs — the daemon surfaces it on /readyz during startup.
	Recovery *RecoveryState
	// Tracer accumulates the server.* lifetime counters, gauges and
	// histograms rendered by GET /metrics. Each exploration runs on its
	// own per-request tracer whose counters are folded in here on
	// completion, so the lifetime tracer never accumulates spans. New
	// creates one when nil.
	Tracer *obs.Tracer
	// Logger receives one structured line per exploration request,
	// carrying the request's correlation ID. Nil discards logs.
	Logger *slog.Logger
}

// Server is the exploration service. It implements http.Handler; mount
// it directly on an http.Server. All fields are internal — construct
// with New.
type Server struct {
	mux               *http.ServeMux
	tracer            *obs.Tracer
	logger            *slog.Logger
	requests          *requestRegistry
	flight            *flightRecorder
	slo               *sloEngine
	hLatency          *obs.Histogram
	tables            map[string]*dataset.Versioned
	order             []string                 // dataset names in registration order
	wals              map[string]*wal.Log      // nil values when WALDir is unset
	compacting        map[string]*atomic.Bool  // per-dataset compaction latch
	history           map[string]*epochHistory // pinned-epoch tables; nil values when WALDir is unset
	epochRetain       int
	cache             *universeCache
	drift             *driftMonitor
	sem               chan struct{}
	timeout           time.Duration
	budget            fpm.Budget
	rediscretizeDrift float64
	inFlight          atomic.Int64
	draining          atomic.Bool
}

// New loads every configured dataset and returns the ready-to-serve
// handler. Dataset loading errors (missing file, duplicate name) fail
// construction; nothing is served until every dataset parsed.
func New(cfg Config) (*Server, error) {
	if len(cfg.Datasets) == 0 {
		return nil, fmt.Errorf("server: no datasets configured")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.CacheMax == 0 {
		cfg.CacheMax = 32
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = DefaultTraceRing
	}
	if cfg.TraceRing > maxTraceRing {
		cfg.TraceRing = maxTraceRing
	}
	if err := cfg.SLO.normalize(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	switch {
	case cfg.SlowThreshold == 0:
		// Automatic: capture everything that violates the tightest latency
		// objective; 1s when no SLO is declared.
		if t := cfg.SLO.slowCaptureThreshold(); t > 0 {
			cfg.SlowThreshold = t
		} else {
			cfg.SlowThreshold = time.Second
		}
	case cfg.SlowThreshold < 0:
		cfg.SlowThreshold = 0 // disables slow capture
	}
	if cfg.SlowRequests <= 0 {
		cfg.SlowRequests = 8
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.New()
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.RediscretizeDrift == 0 {
		cfg.RediscretizeDrift = 0.2
	}
	if cfg.DriftT == 0 {
		cfg.DriftT = 3
	}
	if cfg.DriftDebounce <= 0 {
		cfg.DriftDebounce = 2 * time.Second
	}
	if err := cfg.Budget.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.EpochRetain == 0 {
		cfg.EpochRetain = 8
	}
	s := &Server{
		mux:      http.NewServeMux(),
		tracer:   cfg.Tracer,
		logger:   cfg.Logger,
		requests: newRequestRegistry(cfg.TraceRing),
		flight:   newFlightRecorder(cfg.TraceRing, cfg.SlowRequests, cfg.SlowThreshold),
		hLatency: cfg.Tracer.Histogram(obs.HistRequestSeconds, obs.LatencyBuckets),
		tables:   map[string]*dataset.Versioned{},
		cache: newUniverseCache(cfg.CacheMax,
			cfg.Tracer.Counter(obs.CtrServerCacheEvictions),
			cfg.Tracer.Counter(obs.CtrServerCacheStaleEvictions)),
		sem:               make(chan struct{}, cfg.MaxInFlight),
		timeout:           cfg.RequestTimeout,
		budget:            cfg.Budget,
		rediscretizeDrift: cfg.RediscretizeDrift,
		wals:              map[string]*wal.Log{},
		compacting:        map[string]*atomic.Bool{},
		history:           map[string]*epochHistory{},
		epochRetain:       cfg.EpochRetain,
	}
	s.slo = newSLOEngine(cfg.SLO, cfg.Tracer)
	for _, d := range cfg.Datasets {
		if d.Name == "" {
			return nil, fmt.Errorf("server: dataset with empty name")
		}
		if _, dup := s.tables[d.Name]; dup {
			return nil, fmt.Errorf("server: duplicate dataset %q", d.Name)
		}
		tab := d.Table
		if tab == nil {
			var err error
			tab, err = dataset.ReadCSVFile(d.Path, dataset.CSVOptions{})
			if err != nil {
				return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
			}
		}
		if cfg.WALDir != "" {
			hist := newEpochHistory(cfg.EpochRetain)
			v, w, err := recoverDataset(&cfg, d.Name, tab, cfg.Recovery, hist)
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("server: %w", err)
			}
			s.tables[d.Name] = v
			s.wals[d.Name] = w
			s.history[d.Name] = hist
		} else {
			s.tables[d.Name] = dataset.NewVersioned(tab)
		}
		s.order = append(s.order, d.Name)
		s.compacting[d.Name] = new(atomic.Bool)
		s.tracer.SetGauge(obs.GaugeServerEpochPrefix+d.Name, float64(s.tables[d.Name].Epoch()))
	}
	// Stale-preferring eviction consults the live epoch of each entry's
	// dataset; entries of unknown datasets (impossible today) read as
	// current.
	s.cache.currentEpoch = func(name string) uint64 {
		if v, ok := s.tables[name]; ok {
			return v.Epoch()
		}
		return 0
	}
	s.drift = newDriftMonitor(s, cfg.DriftT, cfg.DriftDebounce)
	if cfg.WALDir != "" {
		s.drift.stateDir = cfg.WALDir
		// A crash between an append and its debounced re-mine must still
		// produce the drift report: restore each persisted watch and, when
		// replay advanced the epoch past its baseline, re-arm the timer.
		s.drift.restore()
	}
	s.tracer.SetGauge(obs.GaugeServerDatasets, float64(len(s.order)))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("POST /v1/explore/batch", s.handleExploreBatch)
	s.mux.HandleFunc("GET /v1/progress", s.handleProgressList)
	s.mux.HandleFunc("GET /v1/progress/{id}", s.handleProgress)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/explain/{id}", s.handleExplain)
	s.mux.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /v1/slo", s.handleSLO)
	s.mux.HandleFunc("POST /v1/datasets/{name}/rows", s.handleAppend)
	s.mux.HandleFunc("GET /v1/drift/{name}", s.handleDrift)
	return s, nil
}

// ServeHTTP dispatches to the server's endpoints. Every request runs
// under recovery middleware: a panicking handler is answered with a 500
// naming the request's correlation ID (best-effort — the reply may
// already be partially written) while the daemon keeps serving. The
// panic value and stack go to the log and obs.CtrServerPanics; per-panic
// state (spans, registry entries, semaphore slots) is released by the
// handlers' own defers during unwinding, so a recovered panic leaks
// nothing. http.ErrAbortHandler is re-raised: it is net/http's own
// drop-the-connection idiom, not a failure.
//
// Every request is also attributed to its SLO endpoint class: status and
// latency feed the engine's sliding windows behind GET /v1/slo and the
// server_window_* metric families. The observation defer is registered
// before the recovery defer, so (LIFO) recovery writes its 500 first and
// the observation records the final status.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	w = rec
	defer func() {
		status := rec.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: implicit 200
		}
		s.slo.observe(endpointClass(r.URL.Path), status, time.Since(start))
	}()
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if v == http.ErrAbortHandler {
			panic(v)
		}
		pe := engine.RecoverError(v)
		s.tracer.Counter(obs.CtrServerPanics).Add(1)
		id := w.Header().Get("X-Request-ID") // set early by serveExplore
		s.logger.Error("handler panic",
			slog.String("request_id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("panic", fmt.Sprint(pe.Value)),
			slog.String("stack", pe.Stack),
		)
		s.httpError(w, http.StatusInternalServerError, "internal error (request %s)", id)
	}()
	s.mux.ServeHTTP(w, r)
}

// StartDrain flips the server into draining mode: GET /readyz answers
// 503 so load balancers stop routing new work here, while /healthz and
// every exploration endpoint keep working so in-flight requests finish.
// Call it on SIGTERM, before http.Server.Shutdown. Idempotent.
func (s *Server) StartDrain() {
	s.draining.Store(true)
}

// httpError answers the request with a plain-text error and counts it.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.tracer.Counter(obs.CtrServerErrors).Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "healthz").Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 200 once the server can take
// traffic, 503 while draining. Liveness (/healthz) stays 200 throughout a
// drain — the process is healthy, it just should not receive new work.
// The not-yet-loaded window is the daemon's concern: cmd/hdivexplorerd
// answers /readyz 503 itself until New has returned.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "readyz").Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics renders the lifetime tracer plus the curated
// runtime/metrics families. The default is the classic Prometheus text
// format; clients whose Accept header names application/openmetrics-text
// get OpenMetrics 1.0 instead, whose bucket lines carry request-ID
// exemplars (classic format has no exemplar syntax).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "metrics").Add(1)
	openMetrics := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
	snap := s.tracer.Snapshot()
	if openMetrics {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := snap.WriteOpenMetrics(w); err != nil {
			return // headers are gone; nothing to do but drop the connection
		}
		if err := obs.WriteRuntimeMetrics(w, true); err != nil {
			return
		}
		s.slo.writeMetrics(w)
		fmt.Fprint(w, "# EOF\n")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := snap.WritePrometheus(w); err != nil {
		return
	}
	_ = obs.WriteRuntimeMetrics(w, false)
	s.slo.writeMetrics(w)
}

// datasetInfo is one entry of the GET /v1/datasets reply.
type datasetInfo struct {
	Name    string       `json:"name"`
	Rows    int          `json:"rows"`
	Epoch   uint64       `json:"epoch"`
	Columns []columnInfo `json:"columns"`
}

// columnInfo describes one dataset column. Levels (categorical) and
// Min/Max (continuous, over non-missing values) describe the column's
// observed domain so clients — the load generator's append class in
// particular — can synthesize plausible rows.
type columnInfo struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"` // "continuous" or "categorical"
	Levels []string `json:"levels,omitempty"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "datasets").Add(1)
	out := make([]datasetInfo, 0, len(s.order))
	for _, name := range s.order {
		tab, epoch := s.tables[name].Snapshot()
		info := datasetInfo{Name: name, Rows: tab.NumRows(), Epoch: epoch}
		for _, f := range tab.Fields() {
			ci := columnInfo{Name: f.Name, Kind: f.Kind.String()}
			if f.Kind == dataset.Categorical {
				ci.Levels = tab.Levels(f.Name)
			} else if vals := tab.SortedUniqueFloats(f.Name); len(vals) > 0 {
				lo, hi := vals[0], vals[len(vals)-1]
				ci.Min, ci.Max = &lo, &hi
			}
			info.Columns = append(info.Columns, ci)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// ExploreRequest is the POST /v1/explore request body. Zero values take
// the same defaults as the hdivexplorer CLI flags, so identical
// parameters produce byte-identical CSV results on either front end.
type ExploreRequest struct {
	// Dataset selects a configured dataset by name.
	Dataset string `json:"dataset"`
	// Stat names the statistic: fpr, fnr, error, accuracy or numeric.
	// Default "error".
	Stat string `json:"stat,omitempty"`
	// Actual and Predicted name the boolean label columns used by the
	// classification statistics.
	Actual    string `json:"actual,omitempty"`
	Predicted string `json:"predicted,omitempty"`
	// Target names the numeric column used by the numeric statistic.
	Target string `json:"target,omitempty"`
	// S is the exploration support threshold (default 0.05).
	S float64 `json:"s,omitempty"`
	// ST is the tree discretization support threshold (default 0.1).
	ST float64 `json:"st,omitempty"`
	// Criterion selects the tree split gain: divergence (default) or
	// entropy.
	Criterion string `json:"criterion,omitempty"`
	// Mode selects hierarchical (default) or base exploration.
	Mode string `json:"mode,omitempty"`
	// Algorithm selects the miner: fpgrowth (default) or apriori.
	Algorithm string `json:"algorithm,omitempty"`
	// Polarity enables §V-C polarity pruning.
	Polarity bool `json:"polarity,omitempty"`
	// MaxLen bounds itemset length (0 = unlimited).
	MaxLen int `json:"max_len,omitempty"`
	// Top truncates the reply to the k most divergent subgroups (0 = all).
	Top int `json:"top,omitempty"`
	// MinT drops subgroups with |t| below the threshold (0 = keep all).
	MinT float64 `json:"min_t,omitempty"`
	// Workers enables parallel mining (results are identical regardless).
	Workers int `json:"workers,omitempty"`
	// Shards fixes the engine data plane's row-shard count (0 = automatic;
	// ranked results are identical regardless for the built-in rate
	// statistics).
	Shards int `json:"shards,omitempty"`
	// Format selects the reply encoding: json (default) or csv. The CSV
	// bytes equal `hdivexplorer -format csv` output for the same
	// parameters.
	Format string `json:"format,omitempty"`
	// Trace includes the observability snapshot in a JSON reply.
	Trace bool `json:"trace,omitempty"`
	// Explain includes a cost-attribution profile (per-stage wall time and
	// allocations, mining counters, shard balance, budget consumption) in
	// a JSON reply's "explain" field. Cheaper than Trace: the profile is
	// an aggregated summary, not the span-by-span snapshot.
	Explain bool `json:"explain,omitempty"`
	// Epoch pins the exploration to a specific dataset epoch instead of
	// the current one. A pinned epoch is servable exactly while its
	// universe-cache entry survives: the reply is computed on that epoch's
	// frozen snapshot, byte-identical to what it answered before later
	// appends. A pinned epoch no longer cached (or never explored) answers
	// 410 Gone. 0 means "current epoch".
	Epoch uint64 `json:"epoch,omitempty"`
	// TimeoutMS shortens the server's per-request timeout (it can never
	// extend it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Budget tightens the server's per-request mining budget; like
	// TimeoutMS it can only narrow the server's configuration, never widen
	// it. A budget-exhausted exploration still answers 200, with the
	// report flagged "truncated".
	Budget *BudgetRequest `json:"budget,omitempty"`
}

// BudgetRequest is the per-request mining budget of an ExploreRequest.
// Each dimension combines with the server's configured budget by taking
// the tighter (smaller nonzero) value; 0 leaves the server's setting in
// force. The heap watermark is deliberately absent — it is a
// process-level guard, not a per-request knob.
type BudgetRequest struct {
	// MaxCandidates caps evaluated itemset candidates.
	MaxCandidates int `json:"max_candidates,omitempty"`
	// MaxItemsets caps frequent itemsets kept.
	MaxItemsets int `json:"max_itemsets,omitempty"`
	// SoftDeadlineMS bounds mining wall-clock; expiry truncates the
	// report instead of failing the request (unlike timeout_ms).
	SoftDeadlineMS int `json:"soft_deadline_ms,omitempty"`
}

// exploreParams is a validated, defaulted ExploreRequest. tab and epoch
// are the dataset snapshot the exploration runs on; pinned marks a
// request that named a non-current epoch explicitly.
type exploreParams struct {
	req       ExploreRequest
	tab       *dataset.Table
	epoch     uint64
	pinned    bool
	criterion discretize.Criterion
	mode      core.Mode
	algorithm fpm.Algorithm
	timeout   time.Duration
	budget    fpm.Budget
}

// resolve validates the request and applies CLI-equivalent defaults.
func (s *Server) resolve(req ExploreRequest) (*exploreParams, int, error) {
	p := &exploreParams{req: req}
	v, ok := s.tables[req.Dataset]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	p.tab, p.epoch = v.Snapshot()
	if req.Epoch != 0 && req.Epoch != p.epoch {
		if req.Epoch > p.epoch {
			return nil, http.StatusBadRequest, fmt.Errorf("dataset %q is at epoch %d, future epoch %d requested", req.Dataset, p.epoch, req.Epoch)
		}
		// The pinned snapshot is only reachable through its cache entry;
		// serveExplore resolves it (or answers 410 Gone).
		p.epoch = req.Epoch
		p.pinned = true
	}
	if p.req.Stat == "" {
		p.req.Stat = "error"
	}
	if p.req.S == 0 {
		p.req.S = 0.05
	}
	if p.req.ST == 0 {
		p.req.ST = 0.1
	}
	switch strings.ToLower(p.req.Criterion) {
	case "", "divergence":
		p.criterion = discretize.DivergenceGain
	case "entropy":
		p.criterion = discretize.EntropyGain
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown criterion %q", req.Criterion)
	}
	switch strings.ToLower(p.req.Mode) {
	case "", "hierarchical":
		p.mode = core.Hierarchical
	case "base":
		p.mode = core.Base
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown mode %q", req.Mode)
	}
	switch strings.ToLower(p.req.Algorithm) {
	case "", "fpgrowth", "fp-growth":
		p.algorithm = fpm.FPGrowth
	case "apriori":
		p.algorithm = fpm.Apriori
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	switch strings.ToLower(p.req.Format) {
	case "", "json", "csv":
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown format %q", req.Format)
	}
	if req.Workers < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("workers must be >= 0 (got %d)", req.Workers)
	}
	if req.Shards < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("shards must be >= 0 (got %d)", req.Shards)
	}
	p.timeout = s.timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < p.timeout {
			p.timeout = d
		}
	}
	p.budget = s.budget
	if b := req.Budget; b != nil {
		if b.MaxCandidates < 0 || b.MaxItemsets < 0 || b.SoftDeadlineMS < 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("budget dimensions must be >= 0")
		}
		p.budget.MaxCandidates = tighten(p.budget.MaxCandidates, b.MaxCandidates)
		p.budget.MaxItemsets = tighten(p.budget.MaxItemsets, b.MaxItemsets)
		p.budget.SoftDeadline = time.Duration(tighten64(int64(p.budget.SoftDeadline),
			int64(b.SoftDeadlineMS)*int64(time.Millisecond)))
	}
	return p, 0, nil
}

// tighten combines a configured limit with a requested one: the smaller
// nonzero value wins, 0 meaning "no limit from this side".
func tighten(configured, requested int) int {
	if requested <= 0 {
		return configured
	}
	if configured <= 0 || requested < configured {
		return requested
	}
	return configured
}

func tighten64(configured, requested int64) int64 {
	if requested <= 0 {
		return configured
	}
	if configured <= 0 || requested < configured {
		return requested
	}
	return configured
}

// key derives the universe-cache key for the resolved request.
func (p *exploreParams) key() cacheKey {
	return cacheKey{
		dataset:   p.req.Dataset,
		epoch:     p.epoch,
		stat:      strings.ToLower(p.req.Stat),
		actual:    p.req.Actual,
		predicted: p.req.Predicted,
		target:    p.req.Target,
		criterion: p.criterion,
		st:        p.req.ST,
	}
}

// BatchExploreRequest is the POST /v1/explore/batch request body: an
// ExploreRequest whose Stats list names the statistics to compute over
// one itemset lattice in a single mining pass. Stats[0] is the primary
// statistic — it drives discretization, universe construction (and thus
// the universe-cache key) and polarity pruning; the Stat field is
// ignored. The reply is a JSON array of {stat, report} pairs in Stats
// order (or, for format csv, the reports' CSV blocks separated by
// "# stat=<name>" comment lines).
type BatchExploreRequest struct {
	ExploreRequest
	Stats []string `json:"stats"`
}

// batchReport is one element of the POST /v1/explore/batch JSON reply.
type batchReport struct {
	Stat   string       `json:"stat"`
	Report *core.Report `json:"report"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	s.serveExplore(w, r, false)
}

func (s *Server) handleExploreBatch(w http.ResponseWriter, r *http.Request) {
	s.serveExplore(w, r, true)
}

// parseStats normalizes a batch request's statistic list: lower-cased,
// trimmed, no blanks, no duplicates, at least one entry.
func parseStats(raw []string) ([]string, error) {
	seen := map[string]bool{}
	var stats []string
	for _, st := range raw {
		st = strings.ToLower(strings.TrimSpace(st))
		if st == "" {
			continue
		}
		if seen[st] {
			return nil, fmt.Errorf("stats names %q twice", st)
		}
		seen[st] = true
		stats = append(stats, st)
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("stats must name at least one statistic")
	}
	return stats, nil
}

// serveExplore implements both exploration endpoints: POST /v1/explore
// (one statistic) and POST /v1/explore/batch (a statistic bundle mined
// in one pass). Both run the same code path — a single statistic is a
// bundle of one — so their results for a shared statistic are
// byte-identical.
func (s *Server) serveExplore(w http.ResponseWriter, r *http.Request, batch bool) {
	endpoint := "explore"
	if batch {
		endpoint = "explore_batch"
	}
	s.tracer.Counter(obs.CtrServerRequestPrefix + endpoint).Add(1)
	start := time.Now()
	id := requestID(r)
	w.Header().Set("X-Request-ID", id)
	logger := obs.RequestLogger(s.logger, id)

	// The flight record accumulates through the handler and lands in the
	// always-on ring from this outermost defer — after the exploration
	// defer below has settled the status fields — together with the
	// latency observation, which carries the request ID as its exemplar.
	frec := FlightRecord{ID: id, Endpoint: endpoint, Status: "rejected"}
	defer func() {
		now := time.Now()
		frec.LatencyNS = now.Sub(start).Nanoseconds()
		frec.UnixNano = now.UnixNano()
		s.hLatency.ObserveExemplar(now.Sub(start).Seconds(), id, now.UnixNano())
		s.flight.record(frec)
	}()

	var req ExploreRequest
	var stats []string
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if batch {
		var breq BatchExploreRequest
		if err := dec.Decode(&breq); err != nil {
			logger.Warn("explore rejected", slog.String("error", err.Error()))
			s.httpError(w, http.StatusBadRequest, "invalid request body: %v", err)
			return
		}
		var err error
		if stats, err = parseStats(breq.Stats); err != nil {
			logger.Warn("explore rejected", slog.String("error", err.Error()))
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		req = breq.ExploreRequest
		req.Stat = stats[0]
	} else {
		if err := dec.Decode(&req); err != nil {
			logger.Warn("explore rejected", slog.String("error", err.Error()))
			s.httpError(w, http.StatusBadRequest, "invalid request body: %v", err)
			return
		}
	}
	p, code, err := s.resolve(req)
	if err != nil {
		logger.Warn("explore rejected", slog.String("error", err.Error()))
		s.httpError(w, code, "%v", err)
		return
	}
	if !batch {
		stats = []string{strings.ToLower(p.req.Stat)}
	}
	frec.Dataset, frec.Stat = p.req.Dataset, strings.ToLower(p.req.Stat)
	w.Header().Set("X-Dataset-Epoch", strconv.FormatUint(p.epoch, 10))

	// Admission control: reject rather than queue when saturated, so
	// callers see back-pressure instead of unbounded latency.
	select {
	case s.sem <- struct{}{}:
	default:
		s.tracer.Counter(obs.CtrServerRejected).Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(time.Now())))
		s.httpError(w, http.StatusTooManyRequests, "exploration limit reached, retry later")
		return
	}
	defer func() { <-s.sem }()
	n := s.inFlight.Add(1)
	s.tracer.SetGauge(obs.GaugeServerInFlight, float64(n))
	s.tracer.MaxGauge(obs.GaugeServerInFlightMax, float64(n))
	defer func() {
		s.tracer.SetGauge(obs.GaugeServerInFlight, float64(s.inFlight.Add(-1)))
	}()

	ctx, cancel := context.WithTimeout(obs.WithRequestID(r.Context(), id), p.timeout)
	defer cancel()

	// Every exploration runs on its own tracer: spans stay bounded per
	// request, and the completion hook below folds the counters, gauges
	// and histograms into the lifetime tracer so /metrics stays
	// cumulative. The snapshot also feeds GET /v1/trace/{id}.
	reqTracer := obs.New()
	reqTracer.SetID(id)
	prog := obs.NewProgress()
	reqState := s.requests.start(id, p.req.Dataset, prog)
	status := "error"
	subgroups := 0
	hit := false
	defer func() {
		prog.Finish() // idempotent; covers paths that never reach the miner
		trace := reqTracer.Snapshot()
		s.tracer.Absorb(trace)
		s.requests.finish(reqState, trace, status)
		frec.Status = status
		frec.CacheHit = hit
		frec.Subgroups = subgroups
		lat := time.Since(start)
		frec.LatencyNS = lat.Nanoseconds()
		frec.UnixNano = time.Now().UnixNano()
		s.flight.noteSlow(frec, trace)
		if s.flight != nil && s.flight.threshold > 0 && lat >= s.flight.threshold {
			logger.Warn("slow request",
				slog.String("dataset", p.req.Dataset),
				slog.String("stat", p.req.Stat),
				slog.String("status", status),
				slog.Int64("elapsed_ms", lat.Milliseconds()),
				slog.Int64("threshold_ms", s.flight.threshold.Milliseconds()),
			)
		}
		logger.Info("explore",
			slog.String("dataset", p.req.Dataset),
			slog.String("stat", p.req.Stat),
			slog.String("algorithm", p.algorithm.String()),
			slog.String("status", status),
			slog.Bool("cache_hit", hit),
			slog.Int("subgroups", subgroups),
			slog.Int64("elapsed_ms", lat.Milliseconds()),
		)
	}()

	var entry *cacheEntry
	if p.pinned {
		// Without durability a pinned epoch is never rebuilt — its
		// snapshot table is only reachable through the cache entry built
		// while it was current. With a WAL, the epoch history retains
		// recent epochs' frozen tables, so a pinned epoch inside the
		// retention window rebuilds after a restart (or cache eviction)
		// and 410 is decided by the retention policy alone.
		entry, hit = s.cache.peek(p.key())
		if !hit {
			tab := s.pinnedTable(p.req.Dataset, p.epoch)
			if tab == nil {
				status = "gone"
				s.httpError(w, http.StatusGone, "dataset %q epoch %d is no longer cached", p.req.Dataset, p.epoch)
				return
			}
			p.tab = tab
			entry, hit, err = s.cache.get(ctx, p.key(), func(e *cacheEntry) error {
				return buildEntry(e, p.tab, p.key(), reqTracer)
			})
		} else {
			err = nil
		}
	} else {
		entry, hit, err = s.cache.get(ctx, p.key(), func(e *cacheEntry) error {
			return s.buildOrAppend(e, p, reqTracer)
		})
	}
	if hit {
		s.tracer.Counter(obs.CtrServerCacheHits).Add(1)
		reqTracer.SetGauge(obs.GaugeCacheHit, 1)
	} else {
		s.tracer.Counter(obs.CtrServerCacheMisses).Add(1)
		s.tracer.SetGauge(obs.GaugeServerCachedUniverses, float64(s.cache.len()))
		reqTracer.SetGauge(obs.GaugeCacheHit, 0)
	}
	if err != nil {
		if ctx.Err() != nil {
			status = "cancelled"
			s.exploreCancelled(w, ctx)
			return
		}
		// Build errors are normally the client's fault (bad column names),
		// but a panic recovered inside the build is ours.
		code := http.StatusBadRequest
		var pe *engine.PanicError
		if errors.As(err, &pe) {
			s.tracer.Counter(obs.CtrServerPanics).Add(1)
			code = http.StatusInternalServerError
		}
		s.httpError(w, code, "%v", err)
		return
	}

	// Assemble the outcome bundle: the cached primary plus one outcome per
	// extra statistic. Extra outcomes are cheap to build (no discretization
	// or universe construction), so they are not cached. They are built on
	// the entry's snapshot table — not the resolve-time snapshot — so a
	// pinned-epoch request's extra statistics cover exactly the rows its
	// universe covers.
	outs := make([]*outcome.Outcome, 0, len(stats))
	outs = append(outs, entry.out)
	for _, stat := range stats[1:] {
		o, _, err := core.BuildStatistic(entry.tab, stat, p.req.Actual, p.req.Predicted, p.req.Target)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		outs = append(outs, o)
	}
	bundle, err := outcome.NewBundle(outs...)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.tracer.Counter(obs.CtrServerExplores).Add(1)
	if batch {
		s.tracer.Counter(obs.CtrServerBatchStats).Add(int64(len(stats)))
	}
	reps, err := core.ExploreUniverseMultiContext(ctx, entry.uni[p.mode], core.Config{
		Hierarchies:   entry.hs,
		MinSupport:    p.req.S,
		MaxLen:        p.req.MaxLen,
		PolarityPrune: p.req.Polarity,
		Algorithm:     p.algorithm,
		Mode:          p.mode,
		Workers:       p.req.Workers,
		Shards:        p.req.Shards,
		Budget:        p.budget,
		Explain:       p.req.Explain,
		Tracer:        reqTracer,
		Progress:      prog,
	}, bundle)
	if err != nil {
		if ctx.Err() != nil {
			status = "cancelled"
			s.exploreCancelled(w, ctx)
			return
		}
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status = "done"
	// A complete current-epoch exploration becomes (or refreshes) the
	// dataset's drift-watch baseline.
	if !p.pinned && !reps[0].Truncated {
		s.drift.noteExplore(p, reps[0])
	}
	if reps[0].Truncated {
		// Still a 200: the ranked prefix is valid, the lattice just was
		// not fully explored. The flag travels in the report body.
		status = "truncated"
		s.tracer.Counter(obs.CtrServerTruncated).Add(1)
	}
	subgroups = len(reps[0].Subgroups)
	frec.Truncated = reps[0].Truncated
	frec.Candidates = int64(reps[0].Mining.Candidates)
	frec.Itemsets = int64(reps[0].Mining.Frequent)

	for _, rep := range reps {
		if p.req.MinT > 0 {
			rep.Subgroups = rep.FilterMinT(p.req.MinT)
		}
		if p.req.Top > 0 {
			rep.Subgroups = rep.TopK(p.req.Top)
		}
		if !p.req.Trace {
			rep.Trace = nil
		}
	}

	if strings.EqualFold(p.req.Format, "csv") {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		for i, rep := range reps {
			if batch {
				fmt.Fprintf(w, "# stat=%s\n", stats[i])
			}
			if err := rep.WriteCSV(w); err != nil {
				return // reply already partially written
			}
		}
		return
	}
	if batch {
		out := make([]batchReport, len(reps))
		for i, rep := range reps {
			out[i] = batchReport{Stat: stats[i], Report: rep}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJSON(w, http.StatusOK, reps[0])
}

// retryAfter estimates the Retry-After seconds for a 429: a slot frees
// when some in-flight exploration finishes, and the hard bound on that is
// the oldest one's remaining timeout budget. The estimate is that
// residual, rounded up to whole seconds and clamped to [1, ceil(server
// timeout)] — so a server whose oldest exploration is nearly done hints
// an immediate retry, while one that just admitted a full batch hints the
// full window.
func (s *Server) retryAfter(now time.Time) int {
	ceil := func(d time.Duration) int {
		n := int((d + time.Second - 1) / time.Second)
		if n < 1 {
			n = 1
		}
		return n
	}
	max := ceil(s.timeout)
	oldest, ok := s.requests.oldestActive()
	if !ok {
		// Saturated with nothing registered: requests sit between semaphore
		// acquire and registry start, a microseconds-wide window. The
		// tightest honest hint is 1s.
		return 1
	}
	remaining := s.timeout - now.Sub(oldest)
	if remaining < 0 {
		remaining = 0
	}
	n := ceil(remaining)
	if n > max {
		n = max
	}
	return n
}

// exploreCancelled answers a request whose context expired: 504 on
// deadline; the same status for a client disconnect, where the reply is
// moot but the counter is not.
func (s *Server) exploreCancelled(w http.ResponseWriter, ctx context.Context) {
	s.tracer.Counter(obs.CtrServerCancelled).Add(1)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.httpError(w, http.StatusGatewayTimeout, "exploration timed out")
		return
	}
	s.httpError(w, http.StatusGatewayTimeout, "exploration cancelled: %v", ctx.Err())
}

// writeJSON writes v as indented JSON, matching the CLI's json.MarshalIndent
// rendering so JSON replies and `-format json` output align.
func writeJSON(w http.ResponseWriter, code int, v any) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(append(raw, '\n'))
}

// Datasets returns the served dataset names in registration order.
func (s *Server) Datasets() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}
