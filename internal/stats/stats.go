// Package stats provides the statistical primitives used by the discretizer
// and the subgroup explorers: binary entropy, Welch's t-test, running
// moments, quantiles and small distribution helpers.
//
// All divergence significance testing in the paper is done with Welch's
// t-test between the outcome values of the subgroup and of the entire
// dataset; the explorer accumulates (n, Σo, Σo²) per itemset so the t-value
// can be computed without another dataset pass.
package stats

import (
	"math"
	"sort"
)

// Moments accumulates count, sum and sum of squares of a stream of values.
// It is the per-itemset accumulator used by the mining algorithms.
type Moments struct {
	N     int
	Sum   float64
	SumSq float64
}

// Add folds a value into the accumulator.
func (m *Moments) Add(x float64) {
	m.N++
	m.Sum += x
	m.SumSq += x * x
}

// AddN folds another accumulator into m.
func (m *Moments) AddN(o Moments) {
	m.N += o.N
	m.Sum += o.Sum
	m.SumSq += o.SumSq
}

// Mean returns the mean of the accumulated values, or NaN if empty.
func (m Moments) Mean() float64 {
	if m.N == 0 {
		return math.NaN()
	}
	return m.Sum / float64(m.N)
}

// Var returns the unbiased sample variance, or NaN if fewer than two values.
func (m Moments) Var() float64 {
	if m.N < 2 {
		return math.NaN()
	}
	n := float64(m.N)
	v := (m.SumSq - m.Sum*m.Sum/n) / (n - 1)
	if v < 0 { // guard against tiny negative values from cancellation
		v = 0
	}
	return v
}

// FromValues builds a Moments accumulator from a slice.
func FromValues(xs []float64) Moments {
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return m
}

// WelchT returns the Welch t-statistic between two samples summarized by
// their moments, as used to assess statistical significance of divergence.
// It returns 0 when either sample has fewer than two elements or both
// variances are zero with equal means; it returns +Inf/-Inf when variances
// are zero but the means differ.
func WelchT(a, b Moments) float64 {
	if a.N < 2 || b.N < 2 {
		return 0
	}
	va, vb := a.Var(), b.Var()
	se := math.Sqrt(va/float64(a.N) + vb/float64(b.N))
	diff := a.Mean() - b.Mean()
	if se == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(sign(diff))
	}
	return diff / se
}

// WelchDF returns the Welch–Satterthwaite degrees of freedom for the two
// samples, or 0 when undefined.
func WelchDF(a, b Moments) float64 {
	if a.N < 2 || b.N < 2 {
		return 0
	}
	va, vb := a.Var()/float64(a.N), b.Var()/float64(b.N)
	den := va*va/float64(a.N-1) + vb*vb/float64(b.N-1)
	if den == 0 {
		return 0
	}
	return (va + vb) * (va + vb) / den
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// BinaryEntropy returns the Shannon entropy (natural log) of a Bernoulli
// distribution with success probability p. By convention 0·log 0 = 0, and p
// outside [0,1] (possible only through caller bugs or NaN propagation)
// yields 0.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (the "linear"/type-7 definition).
// It panics if xs is empty. xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantilesSorted returns the q-quantiles of already-sorted xs.
func QuantilesSorted(sorted []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// NormalPDF returns the density of a univariate normal with the given mean
// and standard deviation at x. sigma must be positive.
func NormalPDF(x, mean, sigma float64) float64 {
	z := (x - mean) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// IsotropicGaussian is a multivariate normal with identity covariance scaled
// by Sigma², used by the synthetic-peak generator: the paper's "multivariate
// normal random variable with a mean of [0, 1, 2] and covariance of 1".
type IsotropicGaussian struct {
	Mean  []float64
	Sigma float64
}

// Density returns the (unnormalized-dimension-correct) density at x.
func (g IsotropicGaussian) Density(x []float64) float64 {
	if len(x) != len(g.Mean) {
		panic("stats: dimension mismatch in IsotropicGaussian.Density")
	}
	d2 := 0.0
	for i, xi := range x {
		d := (xi - g.Mean[i]) / g.Sigma
		d2 += d * d
	}
	k := float64(len(x))
	norm := math.Pow(2*math.Pi*g.Sigma*g.Sigma, -k/2)
	return norm * math.Exp(-0.5*d2)
}

// NormalizedDensity returns Density(x) scaled so the mode has value 1; the
// synthetic-peak generator uses it directly as a label-flip probability.
func (g IsotropicGaussian) NormalizedDensity(x []float64) float64 {
	return g.Density(x) / g.Density(g.Mean)
}

// CohenD returns Cohen's d effect size between two samples summarized by
// their moments (difference of means over pooled standard deviation). It is
// the effect-size measure used by the Slice Finder baseline. Returns 0 when
// undefined.
func CohenD(a, b Moments) float64 {
	if a.N < 2 || b.N < 2 {
		return 0
	}
	na, nb := float64(a.N), float64(b.N)
	pooled := ((na-1)*a.Var() + (nb-1)*b.Var()) / (na + nb - 2)
	if pooled <= 0 {
		return 0
	}
	return (a.Mean() - b.Mean()) / math.Sqrt(pooled)
}
