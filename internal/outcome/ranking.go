package outcome

import (
	"fmt"
	"math"
	"sort"
)

// TopKMembership builds the ranking outcome of the paper's companion work
// on biased subgroups in rankings (reference [24]): o(x) = 1 when x ranks
// within the top k by score, 0 otherwise, defined everywhere. The
// divergence of a subgroup is then its over- or under-representation in
// the top k relative to the population rate k/n — e.g. which applicant
// subgroups a ranker systematically keeps out of the first page.
//
// Ties at the k-th score are broken by row order, matching a stable
// ranking of the input.
func TopKMembership(scores []float64, k int, higherIsBetter bool) (*Outcome, error) {
	n := len(scores)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("outcome: top-k k=%d out of [1, %d]", k, n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if higherIsBetter {
			return scores[order[a]] > scores[order[b]]
		}
		return scores[order[a]] < scores[order[b]]
	})
	vals := make([]float64, n)
	for _, i := range order[:k] {
		vals[i] = 1
	}
	return New("top-k", vals, fullMask(n))
}

// ExposureRate builds a graded ranking outcome: o(x) = 1/log2(rank(x)+1),
// the standard position-bias exposure weight of ranking fairness metrics.
// A subgroup's divergence is its average exposure minus the population
// average — positive means the ranker surfaces the subgroup's members
// disproportionately high.
func ExposureRate(scores []float64, higherIsBetter bool) (*Outcome, error) {
	n := len(scores)
	if n == 0 {
		return nil, fmt.Errorf("outcome: exposure of empty ranking")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if higherIsBetter {
			return scores[order[a]] > scores[order[b]]
		}
		return scores[order[a]] < scores[order[b]]
	})
	vals := make([]float64, n)
	for pos, i := range order {
		vals[i] = 1 / math.Log2(float64(pos)+2)
	}
	return New("exposure", vals, fullMask(n))
}
