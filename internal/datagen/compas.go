package datagen

import (
	"math/rand"

	"repro/internal/dataset"
)

// Compas generates the compas analog: 6,172 defendants with continuous
// attributes age, prior (number of prior offenses) and stay (days in jail),
// and categorical attributes sex, race and charge, together with true
// two-year recidivism and the prediction of a proprietary-style risk score
// (high-risk ⇒ predicted recidivist).
//
// The score is calibrated so the false-positive rate mirrors the paper's
// Table I shape: FPR rises steeply with the number of priors (Δ(#prior>8) ≫
// Δ(#prior>3) > 0), rises for young defendants, and peaks at their
// intersection — while age and priors are negatively correlated, so the
// young∩many-priors subgroup is small (sup ≈ 0.05) and reachable only by
// mixed-granularity exploration.
func Compas(cfg Config) Classified {
	n := cfg.n(6_172)
	r := rand.New(rand.NewSource(cfg.Seed))

	age := make([]float64, n)
	prior := make([]float64, n)
	stay := make([]float64, n)
	sex := make([]string, n)
	race := make([]string, n)
	charge := make([]string, n)
	actual := make([]bool, n)
	pred := make([]bool, n)

	for i := 0; i < n; i++ {
		age[i] = clamp(18+r.ExpFloat64()*25, 18, 80)
		prior[i] = samplePriors(r, age[i])
		// Jail stay: heavy-tailed, longer for defendants with many priors.
		stay[i] = clamp(r.ExpFloat64()*3*(1+0.3*prior[i]), 0, 800)
		sex[i] = pick(r, []string{"Male", "Female"}, []float64{0.81, 0.19})
		race[i] = pick(r,
			[]string{"Afr-Am", "Caucasian", "Hispanic", "Other"},
			[]float64{0.51, 0.34, 0.09, 0.06})
		charge[i] = pick(r, []string{"F", "M"}, []float64{0.64, 0.36})

		// True recidivism: grows with priors, shrinks with age.
		pRecid := sigmoid(-1.0 + 0.20*minF(prior[i], 15) - 0.03*(age[i]-30))
		actual[i] = r.Float64() < pRecid

		// Proprietary-style risk score: over-weights priors and youth
		// relative to the true model, and carries a race-linked offset —
		// the miscalibration that produces the FPR divergences under study.
		latent := -2.4 +
			0.30*minF(prior[i], 15) -
			0.085*(age[i]-30) +
			0.45*boolF(stay[i] > 7) +
			0.25*boolF(sex[i] == "Male") +
			0.35*boolF(race[i] == "Afr-Am") +
			0.15*boolF(charge[i] == "F") +
			1.0*r.NormFloat64()
		pred[i] = latent > 0.4
	}

	tab := dataset.NewBuilder().
		AddFloat("age", age).
		AddFloat("prior", prior).
		AddFloat("stay", stay).
		AddCategorical("sex", sex).
		AddCategorical("race", race).
		AddCategorical("charge", charge).
		MustBuild()
	return Classified{Table: tab, Actual: actual, Predicted: pred}
}

// samplePriors draws a prior-offense count whose marginal matches the
// support profile of the paper's Figure 1 (≈34% zero, 18% one, 19% two or
// three, 18% four to eight, 11% more than eight) and which is shifted down
// for young defendants, inducing the negative age–priors correlation the
// paper highlights.
func samplePriors(r *rand.Rand, age float64) float64 {
	u := r.Float64()
	var p float64
	switch {
	case u < 0.32:
		p = 0
	case u < 0.49:
		p = 1
	case u < 0.58:
		p = 2
	case u < 0.67:
		p = 3
	case u < 0.85:
		p = 4 + float64(r.Intn(5)) // 4..8
	default:
		p = 9 + float64(r.Intn(12)) // 9..20
	}
	if age < 25 && p > 0 && r.Float64() < 0.65 {
		p = float64(int(p / 3))
	}
	return p
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
