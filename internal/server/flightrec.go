package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FlightRecord is one request's compact flight-recorder entry: enough to
// reconstruct what the daemon was serving around an incident without
// retaining full traces. Recorded for every exploration request,
// including rejected ones.
type FlightRecord struct {
	// Seq is the record's position in the recorder's lifetime sequence
	// (monotonic; gaps mean the write was dropped under contention).
	Seq uint64 `json:"seq"`
	// ID is the request's correlation ID; Endpoint the handler that served
	// it ("explore" or "explore_batch").
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	// Dataset and Stat key the exploration; empty when the request was
	// rejected before resolving.
	Dataset string `json:"dataset,omitempty"`
	Stat    string `json:"stat,omitempty"`
	// Status is the request outcome: done, truncated, cancelled, error or
	// rejected (back-pressure or malformed body).
	Status string `json:"status"`
	// LatencyNS is the end-to-end handler latency; UnixNano the completion
	// time.
	LatencyNS int64 `json:"latency_ns"`
	UnixNano  int64 `json:"unix_nano"`
	// Truncated and CacheHit mirror the report flags; Candidates,
	// Itemsets and Subgroups are the top-level explain numbers.
	Truncated  bool  `json:"truncated,omitempty"`
	CacheHit   bool  `json:"cache_hit,omitempty"`
	Candidates int64 `json:"candidates,omitempty"`
	Itemsets   int64 `json:"itemsets,omitempty"`
	Subgroups  int   `json:"subgroups,omitempty"`
}

// flightSlot is one ring entry guarded by a seqlock: seq is even when the
// record is stable, odd while a writer owns the slot. Readers validate
// seq before and after copying; writers claim the slot by CAS from an
// even value.
type flightSlot struct {
	seq atomic.Uint64
	rec FlightRecord
}

// SlowCapture retains the full trace and explain profile of one slow
// request, alongside its flight record.
type SlowCapture struct {
	Record  FlightRecord `json:"record"`
	Explain *obs.Explain `json:"explain,omitempty"`

	trace *obs.Trace
}

// flightRecorder is the always-on request ring plus the N-slowest
// capture. The ring is lock-light: record claims a slot with one atomic
// increment and a seqlock write, so the per-request cost is independent
// of readers; only the (rare, explicitly slow) captures take a mutex.
type flightRecorder struct {
	slots  []flightSlot
	cursor atomic.Uint64 // next sequence number to claim

	threshold time.Duration // capture requests at least this slow
	slowCap   int

	mu   sync.Mutex
	slow []*SlowCapture // sorted by latency descending, at most slowCap
}

// newFlightRecorder sizes the ring and the slow capture. size and keep
// are assumed validated (positive) by the server's Config handling.
func newFlightRecorder(size, keep int, threshold time.Duration) *flightRecorder {
	return &flightRecorder{
		slots:     make([]flightSlot, size),
		threshold: threshold,
		slowCap:   keep,
	}
}

// record appends rec to the ring. Lock-free: one atomic add to claim the
// sequence number, then a seqlock write into the slot. If the claimed
// slot is still owned by another writer (possible only when concurrent
// writers outnumber the ring), the record is dropped rather than spun
// on.
func (f *flightRecorder) record(rec FlightRecord) {
	if f == nil {
		return
	}
	seq := f.cursor.Add(1) - 1
	rec.Seq = seq
	slot := &f.slots[seq%uint64(len(f.slots))]
	for attempt := 0; attempt < 4; attempt++ {
		s := slot.seq.Load()
		if s%2 != 0 {
			continue // writer in progress; retry briefly, then drop
		}
		if !slot.seq.CompareAndSwap(s, s+1) {
			continue
		}
		slot.rec = rec
		slot.seq.Store(s + 2)
		return
	}
}

// recorded returns the lifetime count of record calls (including any
// dropped under contention).
func (f *flightRecorder) recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.cursor.Load()
}

// snapshot copies the ring's stable records, newest first. Slots being
// written (or torn mid-copy) are skipped after one retry; the result is
// a consistent sample, not a transactional view.
func (f *flightRecorder) snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	n := uint64(len(f.slots))
	head := f.cursor.Load()
	out := make([]FlightRecord, 0, n)
	count := head
	if count > n {
		count = n
	}
	for i := uint64(0); i < count; i++ {
		seq := head - 1 - i
		slot := &f.slots[seq%n]
		for attempt := 0; attempt < 2; attempt++ {
			s1 := slot.seq.Load()
			if s1%2 != 0 {
				continue
			}
			rec := slot.rec
			if slot.seq.Load() != s1 {
				continue
			}
			// The slot may have been reused by a newer wrap or hold an older
			// record after a dropped write; keep whatever stable record it
			// holds (its own Seq says which request it describes).
			out = append(out, rec)
			break
		}
	}
	return out
}

// noteSlow offers a completed request to the slow capture: requests at or
// over the latency threshold keep their full trace and explain profile,
// competing for the slowCap slots by latency.
func (f *flightRecorder) noteSlow(rec FlightRecord, trace *obs.Trace) {
	if f == nil || f.threshold <= 0 || time.Duration(rec.LatencyNS) < f.threshold {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.slow) >= f.slowCap && rec.LatencyNS <= f.slow[len(f.slow)-1].Record.LatencyNS {
		return // faster than everything already captured
	}
	f.slow = append(f.slow, &SlowCapture{Record: rec, Explain: obs.NewExplain(trace), trace: trace})
	sort.SliceStable(f.slow, func(a, b int) bool {
		return f.slow[a].Record.LatencyNS > f.slow[b].Record.LatencyNS
	})
	if len(f.slow) > f.slowCap {
		f.slow = f.slow[:f.slowCap]
	}
}

// slowList returns the captured slow requests, slowest first.
func (f *flightRecorder) slowList() []*SlowCapture {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*SlowCapture(nil), f.slow...)
}

// debugRequestsReply is the GET /v1/debug/requests reply.
type debugRequestsReply struct {
	// RingSize is the recorder's capacity; Recorded the lifetime request
	// count (so Recorded − len(Recent) requests have rotated out).
	RingSize int    `json:"ring_size"`
	Recorded uint64 `json:"recorded"`
	// SlowThresholdMS is the slow-capture latency bar (0 = capture off).
	SlowThresholdMS int64 `json:"slow_threshold_ms"`
	// Recent holds the ring's stable records, newest first. Slow holds the
	// retained slow captures with their explain profiles, slowest first.
	Recent []FlightRecord `json:"recent"`
	Slow   []*SlowCapture `json:"slow,omitempty"`
}

// handleDebugRequests dumps the flight recorder: the compact per-request
// ring plus the retained slow captures. This is the "what was the daemon
// doing" incident endpoint — always on, bounded memory, no configuration
// needed.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "debug_requests").Add(1)
	reply := debugRequestsReply{
		RingSize:        len(s.flight.slots),
		Recorded:        s.flight.recorded(),
		SlowThresholdMS: s.flight.threshold.Milliseconds(),
		Recent:          s.flight.snapshot(),
		Slow:            s.flight.slowList(),
	}
	if reply.Recent == nil {
		reply.Recent = []FlightRecord{}
	}
	writeJSON(w, http.StatusOK, reply)
}

// slowTrace returns the retained trace of a captured request by ID, or
// nil. Lets /v1/trace/{id} and /v1/explain/{id} answer for slow requests
// that have already rotated out of the recent-request ring.
func (f *flightRecorder) slowTrace(id string) *obs.Trace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.slow {
		if c.Record.ID == id {
			return c.trace
		}
	}
	return nil
}
