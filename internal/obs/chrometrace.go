package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// chromeEvent is one Chrome/Perfetto trace_event object. Only the fields
// the viewers read are emitted: name, phase, timestamp (microseconds),
// process/thread lane and free-form args.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object trace container Perfetto and
// chrome://tracing both load.
type chromeTraceFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the trace's spans as Chrome trace_event JSON
// (the `{"traceEvents": [...]}` form), loadable in Perfetto or
// chrome://tracing. Every span becomes a balanced B/E duration pair.
// Chrome requires events on one thread lane to nest like a call stack,
// but spans from concurrent goroutines may overlap arbitrarily, so spans
// are assigned greedily to the lowest "track" (tid) on which they nest
// properly; serial pipelines collapse to a single track. Events are
// globally sorted by timestamp, and unfinished spans close at their
// snapshot-elapsed time, so the output always validates as balanced and
// monotonic (see ValidateChromeTrace).
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	type spanIv struct {
		rec   *SpanRecord
		start int64
		end   int64
	}
	ivs := make([]spanIv, len(tr.Spans))
	for i := range tr.Spans {
		r := &tr.Spans[i]
		end := r.StartNS + r.DurNS
		if end < r.StartNS { // defensive: negative durations clamp to zero
			end = r.StartNS
		}
		ivs[i] = spanIv{rec: r, start: r.StartNS, end: end}
	}
	sort.SliceStable(ivs, func(a, b int) bool {
		if ivs[a].start != ivs[b].start {
			return ivs[a].start < ivs[b].start
		}
		if ivs[a].end != ivs[b].end {
			return ivs[a].end > ivs[b].end // enclosing spans first
		}
		return ivs[a].rec.ID < ivs[b].rec.ID
	})

	// Greedy track assignment: each track keeps a stack of open span end
	// times; a span joins the first track where, after closing everything
	// that ended before it starts, it either opens fresh or nests inside
	// the currently open span.
	type track struct {
		stack []int64  // open span end times, outermost first
		spans []spanIv // assignment, in start order
	}
	var tracks []*track
	for _, iv := range ivs {
		placed := false
		for _, t := range tracks {
			for len(t.stack) > 0 && t.stack[len(t.stack)-1] <= iv.start {
				t.stack = t.stack[:len(t.stack)-1]
			}
			if len(t.stack) == 0 || t.stack[len(t.stack)-1] >= iv.end {
				t.stack = append(t.stack, iv.end)
				t.spans = append(t.spans, iv)
				placed = true
				break
			}
		}
		if !placed {
			tracks = append(tracks, &track{stack: []int64{iv.end}, spans: []spanIv{iv}})
		}
	}

	// Per track, unroll the assignment into a balanced B/E sequence, then
	// merge all tracks with a stable sort by timestamp: each track's
	// sequence is non-decreasing in ts, so stability preserves its
	// internal B/E discipline while interleaving tracks.
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	var events []chromeEvent
	for ti, t := range tracks {
		type open struct {
			name string
			end  int64
		}
		var stack []open
		pop := func(upTo int64) {
			for len(stack) > 0 && stack[len(stack)-1].end <= upTo {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				events = append(events, chromeEvent{
					Name: top.name, Ph: "E", TS: us(top.end), PID: 1, TID: ti + 1,
				})
			}
		}
		for _, iv := range t.spans {
			pop(iv.start)
			args := map[string]any{
				"span_id": iv.rec.ID,
				"bytes":   iv.rec.Bytes,
				"allocs":  iv.rec.Allocs,
			}
			if iv.rec.Unfinished {
				args["unfinished"] = true
			}
			events = append(events, chromeEvent{
				Name: iv.rec.Name, Ph: "B", TS: us(iv.start), PID: 1, TID: ti + 1, Args: args,
			})
			stack = append(stack, open{name: iv.rec.Name, end: iv.end})
		}
		pop(math.MaxInt64) // flush everything still open
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].TS < events[b].TS })

	out := chromeTraceFile{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": processName(tr)},
	})
	out.TraceEvents = append(out.TraceEvents, events...)
	raw, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// processName labels the trace's process lane with the request ID when
// the trace carries one.
func processName(tr *Trace) string {
	if tr.ID != "" {
		return "hdivexplorer request " + tr.ID
	}
	return "hdivexplorer"
}

// ValidateChromeTrace structurally checks Chrome trace_event JSON the way
// cmd/checktrace does: the stream must decode (either the traceEvents
// object form or a bare event array), non-metadata timestamps must be
// monotonically non-decreasing in file order, and every thread lane's
// B/E events must balance with matching names, LIFO-style. Returns the
// number of events checked.
func ValidateChromeTrace(r io.Reader) (int, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	var file chromeTraceFile
	if err := json.Unmarshal(raw, &file); err != nil {
		var arr []chromeEvent
		if err2 := json.Unmarshal(raw, &arr); err2 != nil {
			return 0, fmt.Errorf("chrome trace does not parse: %w", err)
		}
		file.TraceEvents = arr
	}
	if len(file.TraceEvents) == 0 {
		return 0, fmt.Errorf("chrome trace has no events")
	}
	type lane struct{ pid, tid int }
	stacks := map[lane][]string{}
	lastTS := map[lane]float64{}
	durations := 0
	for i, ev := range file.TraceEvents {
		l := lane{ev.PID, ev.TID}
		switch ev.Ph {
		case "M": // metadata carries no timeline position
			continue
		case "B":
			stacks[l] = append(stacks[l], ev.Name)
			durations++
		case "E":
			st := stacks[l]
			if len(st) == 0 {
				return 0, fmt.Errorf("event %d: E %q on pid=%d tid=%d with no open B", i, ev.Name, ev.PID, ev.TID)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return 0, fmt.Errorf("event %d: E %q does not match open B %q", i, ev.Name, top)
			}
			stacks[l] = st[:len(st)-1]
		case "X":
			durations++
		default:
			return 0, fmt.Errorf("event %d: unsupported phase %q", i, ev.Ph)
		}
		if prev, seen := lastTS[l]; seen && ev.TS < prev {
			return 0, fmt.Errorf("event %d: timestamp %g goes backwards (prev %g) on pid=%d tid=%d", i, ev.TS, prev, ev.PID, ev.TID)
		}
		lastTS[l] = ev.TS
	}
	for l, st := range stacks {
		if len(st) > 0 {
			return 0, fmt.Errorf("pid=%d tid=%d: %d unbalanced B events (first open: %q)", l.pid, l.tid, len(st), st[0])
		}
	}
	if durations == 0 {
		return 0, fmt.Errorf("chrome trace has no duration events")
	}
	return len(file.TraceEvents), nil
}
