package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzExploreDecode throws arbitrary bytes at both exploration
// endpoints' request decoding: the server must never panic (the fuzzer
// fails on any panic through ServeHTTP) and must answer malformed or
// oversized bodies with a 4xx, never a 5xx.
func FuzzExploreDecode(f *testing.F) {
	f.Add([]byte(`{"dataset":"anomaly","stat":"error","actual":"y","predicted":"p"}`))
	f.Add([]byte(`{"dataset":"anomaly","budget":{"max_itemsets":1}}`))
	f.Add([]byte(`{"dataset":"anomaly","budget":{"max_candidates":-1}}`))
	f.Add([]byte(`{"stats":["error","fpr"],"dataset":"anomaly"}`))
	f.Add([]byte(`{"bogus_field":1}`))
	f.Add([]byte(`{"dataset":42}`))
	f.Add([]byte(`{"dataset":"anomaly","workers":-3,"shards":-9}`))
	f.Add([]byte(`{"dataset":"anomaly","timeout_ms":-5,"s":-0.5,"max_len":-2}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"dataset":"anomaly","format":"` + strings.Repeat("x", 1<<11) + `"}`))
	f.Add(bytes.Repeat([]byte(`{"dataset":"anomaly"}`), 1<<16)) // > 1MiB: MaxBytesReader territory

	s, err := New(Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(f)}}})
	if err != nil {
		f.Fatal(err)
	}

	// decodes reports whether body parses as the endpoint's request type
	// under the same decoder discipline the server uses.
	decodes := func(body []byte, into any) bool {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		return dec.Decode(into) == nil
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		for _, ep := range []struct {
			path string
			req  func() any
		}{
			{"/v1/explore", func() any { return new(ExploreRequest) }},
			{"/v1/explore/batch", func() any { return new(BatchExploreRequest) }},
		} {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("POST", ep.path, bytes.NewReader(body)))
			if rec.Code >= 500 {
				t.Fatalf("%s: status %d for body %q", ep.path, rec.Code, body)
			}
			// Anything that is not a decodable request object must be turned
			// away as a client error.
			if len(body) > 1<<20 || !decodes(body, ep.req()) {
				if rec.Code < 400 || rec.Code > 499 {
					t.Fatalf("%s: malformed body answered %d, want 4xx (body %q)", ep.path, rec.Code, body)
				}
			}
		}
	})
}
