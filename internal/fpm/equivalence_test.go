package fpm

import (
	"fmt"
	"testing"

	"repro/internal/outcome"
)

// sortedCopy ranks a result's itemsets by |divergence| with the miner's
// canonical tie-breaking, leaving the original slice untouched.
func sortedCopy(res *Result, o *outcome.Outcome) []MinedItemset {
	items := append([]MinedItemset(nil), res.Itemsets...)
	SortByDivergence(items, o, false, false)
	return items
}

// sameRanked requires two ranked itemset lists to agree exactly: same
// order, same items, same support, bit-identical moments. The fixture's
// error-rate outcome has 0/1 values, so partial sums are exact integers
// and cross-algorithm, cross-worker and cross-shard agreement must be
// bitwise, not approximate.
func sameRanked(t *testing.T, label string, got, want []MinedItemset) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d itemsets, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		g, w := got[i], want[i]
		if key(g.Items) != key(w.Items) || g.Count != w.Count || g.M != w.M {
			t.Errorf("%s: rank %d differs: (%v, %d, %+v) vs (%v, %d, %+v)",
				label, i, g.Items, g.Count, g.M, w.Items, w.Count, w.M)
			return
		}
	}
}

// TestRankedEquivalenceProperty is the cross-algorithm equivalence
// property: over randomized small universes, Apriori and FP-Growth
// produce identical ranked results — for serial and parallel mining
// (Workers ∈ {0, 1, 4}) and across shard layouts. Run under -race in CI,
// it doubles as a race detector for both parallel paths.
func TestRankedEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, generalized := range []bool{false, true} {
			n := 300 + int(seed)*70
			u, o := randomUniverse(t, seed, n, generalized)
			for _, prune := range []bool{false, true} {
				var ref []MinedItemset
				for _, workers := range []int{0, 1, 4} {
					for _, shards := range []int{0, 3} {
						for _, alg := range []Algorithm{Apriori, FPGrowth} {
							label := fmt.Sprintf("seed=%d gen=%v prune=%v workers=%d shards=%d %s",
								seed, generalized, prune, workers, shards, alg)
							res, err := Mine(u, o, Options{
								MinSupport: 0.05, PolarityPrune: prune,
								Algorithm: alg, Workers: workers, Shards: shards,
							})
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							ranked := sortedCopy(res, o)
							if ref == nil {
								ref = ranked
								if len(ref) == 0 {
									t.Fatalf("%s: no itemsets mined", label)
								}
								continue
							}
							sameRanked(t, label, ranked, ref)
						}
					}
				}
			}
		}
	}
}

// TestMineMultiMatchesIndependentMines verifies the single-pass bundle
// contract at the miner level: MineMulti over {error, fpr, fnr} yields,
// for every outcome, exactly the moments an independent Mine over the
// same universe accumulates — and the primary's moments live in M with
// the extras in Multi, in bundle order.
func TestMineMultiMatchesIndependentMines(t *testing.T) {
	u, o := randomUniverse(t, 17, 700, true)
	// Rebuild the label vectors underlying the fixture's error outcome is
	// not possible from here, so derive extra outcomes from the primary:
	// its complement (1-x on defined rows) and a copy. Both are boolean
	// and defined on the same rows.
	vals := make([]float64, o.Len())
	for i := range vals {
		if o.Valid.Get(i) {
			vals[i] = 1 - o.Values[i]
		}
	}
	comp := &outcome.Outcome{Name: "complement", Values: vals, Valid: o.Valid, Boolean: true}
	bun, err := outcome.NewBundle(o, comp)
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		for _, shards := range []int{0, 4} {
			opt := Options{MinSupport: 0.05, Algorithm: alg, Shards: shards}
			multi, err := MineMulti(u, bun, opt)
			if err != nil {
				t.Fatal(err)
			}
			single, err := Mine(u, o, opt)
			if err != nil {
				t.Fatal(err)
			}
			ranked, want := sortedCopy(multi, o), sortedCopy(single, o)
			sameRanked(t, fmt.Sprintf("%s shards=%d primary", alg, shards), ranked, want)
			for _, it := range multi.Itemsets {
				if len(it.Multi) != 1 {
					t.Fatalf("%s shards=%d: Multi has %d entries, want 1", alg, shards, len(it.Multi))
				}
				m, x := it.M, it.MomentsAt(1)
				if x.N != m.N {
					t.Fatalf("%s shards=%d: extra N=%d, primary N=%d", alg, shards, x.N, m.N)
				}
				if x.Sum != float64(m.N)-m.Sum {
					t.Fatalf("%s shards=%d: complement sum %v, want %v", alg, shards, x.Sum, float64(m.N)-m.Sum)
				}
			}
		}
	}
}
