// Package faultinject provides deterministic failpoints for robustness
// testing. A failpoint is a named site planted in production code with
// Hit; tests (or an operator, via the HDIV_FAILPOINTS environment
// variable) arm a site with an action — return an error, panic, or
// delay — and optionally restrict it to the Nth execution of the site.
// The integration suites drive these failpoints against the live daemon
// to prove that panics are contained, budgets degrade gracefully and
// cache errors release their waiters.
//
// Failpoints are compiled in unconditionally but cost one atomic load
// when nothing is armed, so planting a site in a hot path is safe. All
// functions are safe for concurrent use.
//
// The spec grammar is
//
//	action[(arg)][@N]
//
// where action is one of
//
//	error          return a generic injected error
//	error(msg)     return an error with the given message
//	panic          panic with a site-tagged message
//	panic(msg)     panic with the given message
//	delay(dur)     sleep for the time.ParseDuration duration, then proceed
//
// and the optional @N suffix (N ≥ 1) fires the action only on the Nth
// hit of the site, counting from arming; earlier and later hits pass
// through. Without @N the action fires on every hit. Examples:
//
//	Arm("server.cache_fill", "error(disk gone)")
//	Arm("fpm.candidate_batch", "panic@2")
//	HDIV_FAILPOINTS="dataset.read_csv=delay(50ms),engine.shard_merge=error"
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable ArmFromEnv reads: a comma-separated
// list of site=spec pairs.
const EnvVar = "HDIV_FAILPOINTS"

// action is what an armed failpoint does when it fires.
type action int

const (
	actError action = iota
	actPanic
	actDelay
)

// failpoint is one armed site.
type failpoint struct {
	act   action
	msg   string        // error/panic message ("" = default)
	delay time.Duration // actDelay sleep
	onNth int64         // fire only on this hit count (0 = every hit)
	hits  atomic.Int64  // hits observed since arming
}

// Error is the error returned by a fired error-action failpoint. Checking
// for it with errors.As lets tests distinguish injected failures from
// organic ones.
type Error struct {
	// Site is the failpoint site that fired.
	Site string
	// Msg is the configured message ("" for the default).
	Msg string
}

// Error renders the injected error with its site.
func (e *Error) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("faultinject: %s: %s", e.Site, e.Msg)
	}
	return fmt.Sprintf("faultinject: injected error at %s", e.Site)
}

var (
	// armed counts armed sites; Hit fast-paths out while it is zero, so a
	// disarmed failpoint costs a single atomic load.
	armed  atomic.Int64
	mu     sync.Mutex
	points = map[string]*failpoint{}
)

// Hit executes the failpoint at site: it returns an injected error,
// panics, or sleeps if the site is armed with a matching action (and, for
// @N specs, this is the Nth hit); otherwise it returns nil. Disarmed
// sites — the production state — cost one atomic load.
func Hit(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	return hitSlow(site)
}

func hitSlow(site string) error {
	mu.Lock()
	fp := points[site]
	mu.Unlock()
	if fp == nil {
		return nil
	}
	n := fp.hits.Add(1)
	if fp.onNth != 0 && n != fp.onNth {
		return nil
	}
	switch fp.act {
	case actPanic:
		msg := fp.msg
		if msg == "" {
			msg = fmt.Sprintf("faultinject: injected panic at %s", site)
		}
		panic(msg)
	case actDelay:
		time.Sleep(fp.delay)
		return nil
	default:
		return &Error{Site: site, Msg: fp.msg}
	}
}

// Arm configures the failpoint at site with the given spec (see the
// package comment for the grammar), replacing any previous arming of the
// site and resetting its hit count.
func Arm(site, spec string) error {
	if site == "" {
		return fmt.Errorf("faultinject: empty site")
	}
	fp, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("faultinject: site %s: %w", site, err)
	}
	mu.Lock()
	if _, exists := points[site]; !exists {
		armed.Add(1)
	}
	points[site] = fp
	mu.Unlock()
	return nil
}

// Disarm removes the failpoint at site; a no-op if the site is not armed.
func Disarm(site string) {
	mu.Lock()
	if _, exists := points[site]; exists {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint, restoring the zero-cost production
// state. Tests call it in cleanup so armings never leak across tests.
func Reset() {
	mu.Lock()
	armed.Add(-int64(len(points)))
	points = map[string]*failpoint{}
	mu.Unlock()
}

// Armed reports whether the site is currently armed.
func Armed(site string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := points[site]
	return ok
}

// ArmFromEnv arms every site=spec pair in the HDIV_FAILPOINTS environment
// variable (comma-separated). An empty or unset variable is a no-op. The
// binaries call this at startup so operators can inject faults without
// recompiling.
func ArmFromEnv() error {
	return armList(os.Getenv(EnvVar))
}

// armList arms a comma-separated site=spec list (the EnvVar payload).
func armList(list string) error {
	if strings.TrimSpace(list) == "" {
		return nil
	}
	for _, pair := range strings.Split(list, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		site, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("faultinject: %s entry %q: want site=spec", EnvVar, pair)
		}
		if err := Arm(strings.TrimSpace(site), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// parseSpec parses action[(arg)][@N].
func parseSpec(spec string) (*failpoint, error) {
	spec = strings.TrimSpace(spec)
	fp := &failpoint{}
	if at := strings.LastIndex(spec, "@"); at >= 0 {
		n, err := strconv.ParseInt(spec[at+1:], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad @N suffix in %q (want a positive integer)", spec)
		}
		fp.onNth = n
		spec = spec[:at]
	}
	name, arg := spec, ""
	if open := strings.Index(spec, "("); open >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("unbalanced parentheses in %q", spec)
		}
		name = spec[:open]
		arg = spec[open+1 : len(spec)-1]
	}
	switch name {
	case "error":
		fp.act = actError
		fp.msg = arg
	case "panic":
		fp.act = actPanic
		fp.msg = arg
	case "delay":
		fp.act = actDelay
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("delay wants a non-negative duration, got %q", arg)
		}
		fp.delay = d
	default:
		return nil, fmt.Errorf("unknown action %q (want error, panic or delay)", name)
	}
	return fp, nil
}
