package obs

import (
	"sync/atomic"
	"time"
)

// Progress is a live, lock-free view into a running mining pass. The
// miners publish into it from their hot loops (single atomic adds, same
// cost profile as Counter) and any number of readers — the daemon's
// GET /v1/progress/{id}, the CLI's -progress ticker — snapshot it
// concurrently. Candidate, pruned and frequent counts only ever grow, so
// successive snapshots of a live run advance monotonically.
//
// A nil *Progress accepts every call as a no-op, matching the package's
// nil-safe contract: un-instrumented runs pay a nil check per update.
type Progress struct {
	startNS    int64 // tracer-independent wall clock origin (UnixNano)
	level      atomic.Int64
	candidates atomic.Int64
	pruned     atomic.Int64
	frequent   atomic.Int64
	doneNS     atomic.Int64 // UnixNano at Finish, 0 while running
}

// NewProgress returns a progress reporter whose clock starts now.
func NewProgress() *Progress {
	return &Progress{startNS: time.Now().UnixNano()}
}

// SetLevel records the mining level currently being processed (Apriori's
// itemset length k). No-op on nil.
func (p *Progress) SetLevel(l int) {
	if p != nil {
		p.level.Store(int64(l))
	}
}

// RaiseLevel records l only if it exceeds the current level — the deepest
// itemset length reached so far (FP-Growth's recursion depth, which has
// no single global "current level"). No-op on nil.
func (p *Progress) RaiseLevel(l int) {
	if p == nil {
		return
	}
	for {
		cur := p.level.Load()
		if int64(l) <= cur || p.level.CompareAndSwap(cur, int64(l)) {
			return
		}
	}
}

// AddCandidates counts candidates whose support was evaluated. No-op on nil.
func (p *Progress) AddCandidates(n int64) {
	if p != nil {
		p.candidates.Add(n)
	}
}

// AddPruned counts candidates discarded by support or polarity pruning.
// No-op on nil.
func (p *Progress) AddPruned(n int64) {
	if p != nil {
		p.pruned.Add(n)
	}
}

// AddFrequent counts frequent itemsets emitted so far. No-op on nil.
func (p *Progress) AddFrequent(n int64) {
	if p != nil {
		p.frequent.Add(n)
	}
}

// Finish freezes the elapsed clock and marks the run done. Later calls
// are no-ops, as is Finish on nil.
func (p *Progress) Finish() {
	if p != nil {
		p.doneNS.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// Snapshot captures the current state. Snapshots of a nil reporter are
// zero-valued with Done false.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Level:      int(p.level.Load()),
		Candidates: p.candidates.Load(),
		Pruned:     p.pruned.Load(),
		Frequent:   p.frequent.Load(),
	}
	end := p.doneNS.Load()
	if end != 0 {
		s.Done = true
	} else {
		end = time.Now().UnixNano()
	}
	s.ElapsedMS = (end - p.startNS) / int64(time.Millisecond)
	return s
}

// ProgressSnapshot is one point-in-time reading of a Progress reporter;
// it marshals to the GET /v1/progress/{id} reply body.
type ProgressSnapshot struct {
	// Level is the mining level being processed (Apriori) or the deepest
	// itemset length reached (FP-Growth).
	Level int `json:"level"`
	// Candidates, Pruned and Frequent are running totals; they advance
	// monotonically over the life of a run.
	Candidates int64 `json:"candidates"`
	Pruned     int64 `json:"pruned"`
	Frequent   int64 `json:"frequent"`
	// ElapsedMS is wall time since mining began, frozen once Done.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Done reports whether the run has finished.
	Done bool `json:"done"`
}
