package dataset

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func snapshotFixture(t *testing.T) *Table {
	t.Helper()
	return NewBuilder().
		AddFloat("age", []float64{41, math.NaN(), 17.5, -3}).
		AddCategorical("sex", []string{"male", "female", "female", "male"}).
		AddCategorical("site", []string{"a", "b", "a", "c"}).
		MustBuild()
}

func TestSnapshotRoundTrip(t *testing.T) {
	tab := snapshotFixture(t)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, tab, 9); err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	back, epoch, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if epoch != 9 {
		t.Fatalf("epoch = %d, want 9", epoch)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatalf("dims (%d,%d)", back.NumRows(), back.NumCols())
	}
	wantFields := tab.Fields()
	for i, f := range back.Fields() {
		if f != wantFields[i] {
			t.Fatalf("field %d = %+v, want %+v", i, f, wantFields[i])
		}
	}
	af := back.Floats("age")
	bf := tab.Floats("age")
	for i := range bf {
		if af[i] != bf[i] && !(math.IsNaN(af[i]) && math.IsNaN(bf[i])) {
			t.Fatalf("age[%d] = %v, want %v", i, af[i], bf[i])
		}
	}
	for _, name := range []string{"sex", "site"} {
		ac, al := back.Codes(name), back.Levels(name)
		bc, bl := tab.Codes(name), tab.Levels(name)
		if len(al) != len(bl) {
			t.Fatalf("%s dictionary %v, want %v", name, al, bl)
		}
		for i := range bl {
			if al[i] != bl[i] {
				t.Fatalf("%s level %d = %q, want %q", name, i, al[i], bl[i])
			}
		}
		for i := range bc {
			if ac[i] != bc[i] {
				t.Fatalf("%s code %d = %d, want %d", name, i, ac[i], bc[i])
			}
		}
	}
}

func TestSnapshotChecksumRejectsFlips(t *testing.T) {
	tab := snapshotFixture(t)
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, tab, 3); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, off := range []int{0, 10, len(data) / 2, len(data) - 5} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20
		if _, _, err := DecodeSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at %d decoded cleanly", off)
		}
	}
	if _, _, err := DecodeSnapshot(bytes.NewReader(data[:8])); err == nil {
		t.Fatal("short snapshot decoded cleanly")
	}
}

func TestNewVersionedAt(t *testing.T) {
	v := NewVersionedAt(snapshotFixture(t), 12)
	if got := v.Epoch(); got != 12 {
		t.Fatalf("Epoch = %d, want 12", got)
	}
	if v2 := NewVersionedAt(snapshotFixture(t), 0); v2.Epoch() != 1 {
		t.Fatalf("epoch 0 clamps to 1, got %d", v2.Epoch())
	}
}

func TestAppendWithDurabilityHook(t *testing.T) {
	v := NewVersioned(snapshotFixture(t))
	batch := &Batch{
		Floats: map[string][]float64{"age": {50}},
		Levels: map[string][]string{"sex": {"male"}, "site": {"d"}},
		N:      1,
	}
	// A failing hook aborts the append with nothing applied.
	sentinel := errors.New("wal unavailable")
	var sawEpoch uint64
	if _, _, err := v.AppendWith(batch, func(epoch uint64) error {
		sawEpoch = epoch
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("AppendWith error = %v, want sentinel", err)
	}
	if sawEpoch != 2 {
		t.Fatalf("hook saw epoch %d, want the next epoch 2", sawEpoch)
	}
	if v.Epoch() != 1 || v.NumRows() != 4 {
		t.Fatalf("failed hook mutated state: epoch %d rows %d", v.Epoch(), v.NumRows())
	}
	// A succeeding hook applies exactly like Append.
	epoch, total, err := v.AppendWith(batch, func(epoch uint64) error { return nil })
	if err != nil || epoch != 2 || total != 5 {
		t.Fatalf("AppendWith = %d, %d, %v", epoch, total, err)
	}
	// Invalid batches never reach the hook.
	called := false
	if _, _, err := v.AppendWith(&Batch{N: 1}, func(uint64) error { called = true; return nil }); err == nil || called {
		t.Fatalf("invalid batch: err=%v hook called=%v", err, called)
	}
}
