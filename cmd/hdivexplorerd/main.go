// Command hdivexplorerd serves H-DivExplorer explorations over HTTP.
//
// It loads one or more CSV datasets at startup, then answers exploration
// requests against them, caching the discretized item hierarchies and
// mining universes so repeated explorations skip straight to mining:
//
//	hdivexplorerd -addr :8080 -dataset compas=compas.csv -dataset census=census.csv
//
//	curl -s localhost:8080/v1/datasets
//	curl -s -X POST localhost:8080/v1/explore -d '{
//	    "dataset": "compas", "stat": "fpr",
//	    "actual": "recid", "predicted": "pred", "top": 10
//	}'
//
// Datasets are live: POST /v1/datasets/{name}/rows appends a row batch,
// atomically bumping the dataset's epoch. New explorations see the new
// rows (the universe is grown incrementally when the appended batch's
// quantile drift allows, re-discretized otherwise — tune with
// -rediscretize-drift), in-flight and epoch-pinned explorations keep
// their frozen snapshot, and a debounced background re-mine compares
// subgroup t-values across epochs: GET /v1/drift/{name} lists subgroups
// whose |t| crossed -drift-t since the last baseline.
//
// Endpoints: POST /v1/explore, POST /v1/explore/batch (several
// statistics over one mining pass), GET /v1/datasets, GET /v1/progress,
// GET /v1/progress/{id}, GET /v1/trace/{id}, GET /v1/explain/{id}
// (query cost-attribution profile), GET /v1/debug/requests (always-on
// flight recorder: recent requests plus retained slow captures),
// GET /healthz, GET /readyz, GET /metrics (Prometheus text format, or
// OpenMetrics with request-ID exemplars when the Accept header asks;
// both include curated runtime/metrics families).
//
// -trace-ring bounds how many completed requests keep their trace,
// explain profile and flight record queryable; -slow-threshold sets the
// latency bar over which requests are retained in full (trace +
// explain) for post-hoc debugging, -slow-requests how many such
// captures are kept.
//
// -slo declares service-level objectives (e.g.
// -slo p99=250ms,availability=99.9): GET /v1/slo then reports each
// endpoint class's error-budget burn rate over sliding short/long
// windows, and /metrics grows windowed server_window_* and server_slo_*
// gauge families. With -slow-threshold left at its automatic default the
// flight recorder's slow bar follows the tightest -slo latency target,
// so every objective-violating request keeps its full trace.
//
// The listener comes up immediately; GET /readyz answers 503 while the
// datasets load, 200 once the daemon can take traffic, and 503 again
// while a SIGINT/SIGTERM-triggered graceful shutdown drains in-flight
// explorations (liveness, GET /healthz, stays 200 throughout). Point
// load-balancer readiness probes at /readyz and liveness probes at
// /healthz.
//
// -wal-dir makes appends durable: every acknowledged batch is first
// written to a checksummed per-dataset write-ahead log under the
// directory, and a restart replays the log so datasets resume at their
// exact pre-crash epoch (byte-identical explore output included). While
// replay runs, /readyz answers 503 with a JSON progress body
// {"state":"recovering","replayed":N,"total":M}. -wal-sync picks the
// durability/throughput trade (always = fsync before every ack, with
// group commit; interval = background flush; none = page cache),
// -wal-segment-bytes the segment rotation size (each rotation also
// triggers a background full-table snapshot that lets old segments be
// deleted), and -epoch-retain how many recent epochs stay servable as
// pinned replays before the retention sweep ages them out (410 Gone).
//
// The -budget-* flags bound every exploration's resource consumption;
// on exhaustion the request is answered 200 with a ranked report flagged
// "truncated" instead of stalling or exhausting the machine. Requests
// may tighten (never loosen) the budget via the body's budget object.
//
// Every exploration carries a correlation ID (client-supplied via
// X-Request-ID or generated, echoed in the response header) that keys
// the structured request log, the live progress endpoint and the
// Chrome/Perfetto trace export. -debug-addr starts a second listener
// with net/http/pprof and expvar handlers for live profiling:
//
//	hdivexplorerd -dataset d=d.csv -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=5
//	curl -s localhost:6060/debug/vars
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fpm"
	"repro/internal/server"
	"repro/internal/wal"
)

// datasetFlags collects repeated -dataset name=path.csv values.
type datasetFlags []server.DatasetConfig

func (d *datasetFlags) String() string {
	var parts []string
	for _, c := range *d {
		parts = append(parts, c.Name+"="+c.Path)
	}
	return strings.Join(parts, ",")
}

func (d *datasetFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.csv, got %q", v)
	}
	*d = append(*d, server.DatasetConfig{Name: name, Path: path})
	return nil
}

// daemonConfig holds the flag values for one daemon run.
type daemonConfig struct {
	datasets  []server.DatasetConfig
	addr      string
	debugAddr string
	inflight  int
	cacheMax  int
	timeout   time.Duration
	drain     time.Duration
	logJSON   bool
	budget    fpm.Budget

	traceRing     int
	slowThreshold time.Duration
	slowRequests  int
	slo           server.SLOConfig

	rediscretizeDrift float64
	driftT            float64
	driftDebounce     time.Duration

	walDir          string
	walSync         string
	walSegmentBytes int64
	epochRetain     int

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration

	// onListen, when non-nil, receives the bound listener address before
	// serving starts. Tests use it to reach a daemon started on port 0.
	onListen func(addr string)
}

func main() {
	var (
		datasets  datasetFlags
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional second listener for /debug/pprof and /debug/vars (e.g. localhost:6060); off when empty")
		inflight  = flag.Int("max-inflight", 0, "max concurrent explorations (0 = GOMAXPROCS)")
		cacheMax  = flag.Int("cache-max", 32, "max cached universes before LRU eviction (negative = unbounded)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request exploration timeout")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		traceRing     = flag.Int("trace-ring", server.DefaultTraceRing, "completed requests whose trace/explain/flight record stay queryable (clamped to 4096)")
		slowThreshold = flag.Duration("slow-threshold", 0, "latency over which a request's full trace and explain profile are retained (0 = auto: the tightest -slo latency target, else 1s; negative = off)")
		slowRequests  = flag.Int("slow-requests", 8, "how many slow requests to retain, competing by latency")
		sloSpec       = flag.String("slo", "", "service-level objectives as key=value pairs, e.g. p99=250ms,availability=99.9,short=10s,long=60s; GET /v1/slo reports windowed burn rates against them")

		rediscretizeDrift = flag.Float64("rediscretize-drift", 0, "per-column Kolmogorov–Smirnov drift of an appended batch above which the universe is re-discretized instead of grown incrementally (0 = default 0.2; negative = always re-discretize)")
		driftT            = flag.Float64("drift-t", 0, "|t| threshold for drift events after appends (0 = default 3; negative = disable the drift monitor)")
		driftDebounce     = flag.Duration("drift-debounce", 0, "quiet period coalescing append bursts before the background drift re-mine (0 = default 2s)")

		walDir          = flag.String("wal-dir", "", "directory for per-dataset write-ahead logs; appends become durable and survive restarts (empty = in-memory only)")
		walSync         = flag.String("wal-sync", "always", "WAL durability policy: always (fsync before every ack, group-committed), interval (background flush) or none (page cache)")
		walSegmentBytes = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes; each rotation triggers background snapshot/compaction (0 = default 4 MiB)")
		epochRetain     = flag.Int("epoch-retain", 0, "recent epochs kept servable as pinned replays before the retention sweep retires them (0 = default 8; negative = no sweep)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server.ReadHeaderTimeout: slow-header (Slowloris) guard")
		readTimeout       = flag.Duration("read-timeout", time.Minute, "http.Server.ReadTimeout: full request read bound (0 = none)")
		writeTimeout      = flag.Duration("write-timeout", 2*time.Minute, "http.Server.WriteTimeout: response write bound; keep it above -timeout (0 = none)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server.IdleTimeout: keep-alive connection reap (0 = none)")

		budgetCandidates = flag.Int("budget-candidates", 0, "per-exploration cap on evaluated itemset candidates (0 = unlimited); exhaustion truncates the report")
		budgetItemsets   = flag.Int("budget-itemsets", 0, "per-exploration cap on frequent itemsets kept (0 = unlimited); exhaustion truncates the report")
		budgetDeadline   = flag.Duration("budget-deadline", 0, "per-exploration soft mining deadline (0 = none); expiry truncates the report instead of failing the request")
		budgetHeap       = flag.Uint64("budget-heap-bytes", 0, "process heap watermark that truncates in-flight mining (0 = off)")
	)
	flag.Var(&datasets, "dataset", "dataset to serve as name=path.csv (repeatable, required)")
	flag.Parse()
	slo, err := server.ParseSLO(*sloSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdivexplorerd:", err)
		os.Exit(2)
	}
	cfg := daemonConfig{
		datasets: datasets, addr: *addr, debugAddr: *debugAddr,
		inflight: *inflight, cacheMax: *cacheMax,
		timeout: *timeout, drain: *drain, logJSON: *logJSON,
		traceRing: *traceRing, slowThreshold: *slowThreshold, slowRequests: *slowRequests,
		slo:               slo,
		rediscretizeDrift: *rediscretizeDrift,
		driftT:            *driftT,
		driftDebounce:     *driftDebounce,
		walDir:            *walDir,
		walSync:           *walSync,
		walSegmentBytes:   *walSegmentBytes,
		epochRetain:       *epochRetain,
		budget: fpm.Budget{
			MaxCandidates: *budgetCandidates,
			MaxItemsets:   *budgetItemsets,
			SoftDeadline:  *budgetDeadline,
			MaxHeapBytes:  *budgetHeap,
		},
		readHeaderTimeout: *readHeaderTimeout,
		readTimeout:       *readTimeout,
		writeTimeout:      *writeTimeout,
		idleTimeout:       *idleTimeout,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hdivexplorerd:", err)
		os.Exit(1)
	}
}

// debugMux returns the opt-in debug handler set: the net/http/pprof
// endpoints plus expvar, registered explicitly so nothing depends on
// http.DefaultServeMux.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// loadingMux is the handler served between listener start and dataset
// load completion: the process is alive (/healthz 200) but not ready
// (/readyz 503), and every other request is turned away with 503 so
// probes and eager clients get a consistent "not yet" instead of a
// connection refused or a partial service. With durability on, the 503
// body is a JSON progress report sourced from the WAL replay state, so
// operators (and the load generator's recovery backoff) can watch a
// long replay converge instead of guessing.
func loadingMux(rec *server.RecoveryState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "loading datasets", http.StatusServiceUnavailable)
			return
		}
		replayed, total := rec.Progress()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"state":"recovering","replayed":%d,"total":%d}`+"\n", replayed, total)
	})
	return mux
}

func run(cfg daemonConfig) error {
	if len(cfg.datasets) == 0 {
		return fmt.Errorf("at least one -dataset name=path.csv is required")
	}
	// Deterministic fault injection for the integration suite; inert (and
	// free) unless HDIV_FAILPOINTS is set.
	if err := faultinject.ArmFromEnv(); err != nil {
		return fmt.Errorf("%s: %w", faultinject.EnvVar, err)
	}
	var logger *slog.Logger
	if cfg.logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	walSync := wal.SyncAlways
	if cfg.walSync != "" {
		var err error
		if walSync, err = wal.ParseSyncPolicy(cfg.walSync); err != nil {
			return err
		}
	}
	var rec *server.RecoveryState
	if cfg.walDir != "" {
		rec = &server.RecoveryState{}
	}

	// The listener starts before the datasets load: a gate handler answers
	// /readyz 503 (and everything else 503, /healthz 200) until server.New
	// finishes in the background, then the real handler is swapped in. A
	// failed load surfaces on loaded and shuts the daemon down.
	var handler atomic.Pointer[http.Handler]
	gate := http.Handler(loadingMux(rec))
	handler.Store(&gate)
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           root,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	loaded := make(chan error, 1)
	var explorer atomic.Pointer[server.Server]
	go func() {
		h, err := server.New(server.Config{
			Datasets:          cfg.datasets,
			MaxInFlight:       cfg.inflight,
			RequestTimeout:    cfg.timeout,
			CacheMax:          cfg.cacheMax,
			Budget:            cfg.budget,
			TraceRing:         cfg.traceRing,
			SlowThreshold:     cfg.slowThreshold,
			SlowRequests:      cfg.slowRequests,
			SLO:               cfg.slo,
			RediscretizeDrift: cfg.rediscretizeDrift,
			DriftT:            cfg.driftT,
			DriftDebounce:     cfg.driftDebounce,
			WALDir:            cfg.walDir,
			WALSync:           walSync,
			WALSegmentBytes:   cfg.walSegmentBytes,
			EpochRetain:       cfg.epochRetain,
			Recovery:          rec,
			Logger:            logger,
		})
		if err != nil {
			loaded <- err
			return
		}
		for _, name := range h.Datasets() {
			logger.Info("serving dataset", slog.String("dataset", name))
		}
		explorer.Store(h)
		ready := http.Handler(h)
		handler.Store(&ready)
		logger.Info("ready")
		loaded <- nil
	}()

	var dsrv *http.Server
	if cfg.debugAddr != "" {
		dsrv = &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: cfg.readHeaderTimeout,
		}
		go func() {
			logger.Info("debug listener on", slog.String("addr", cfg.debugAddr))
			if err := dsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.onListen != nil {
		cfg.onListen(ln.Addr().String())
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("addr", ln.Addr().String()))
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Interrupted while the datasets were still loading; fall through
		// to the drain path (there are no explorations to wait for).
	case err := <-loaded:
		if err != nil {
			srv.Close()
			return err
		}
		select {
		case err := <-errc:
			return err
		case <-ctx.Done():
		}
	}

	// Drain: flip /readyz to 503 so load balancers stop routing here, stop
	// accepting connections, let in-flight explorations finish within the
	// drain budget, then force-close stragglers.
	logger.Info("shutting down", slog.Duration("drain", cfg.drain))
	if h := explorer.Load(); h != nil {
		h.StartDrain()
	}
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if dsrv != nil {
		dsrv.Close() // debug listener holds no exploration state; close hard
	}
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Final fsync + close of the write-ahead logs, after the last
	// in-flight append has been answered.
	if h := explorer.Load(); h != nil {
		if err := h.Close(); err != nil {
			return fmt.Errorf("closing write-ahead logs: %w", err)
		}
	}
	return nil
}
