// Network error triage with IP-prefix hierarchies.
//
// A service's request log carries client IPs, a datacenter/region pair and
// request latency; some requests fail. The failure rate spikes for one
// /16 client prefix hitting one region — an anomaly that spans an IP
// *prefix*, not any single address. The example builds the paper's
// IP-style item hierarchy (each address belongs to its /8, /16 and /24
// prefixes), derives the datacenter→region hierarchy from the functional
// dependency in the data, explores hierarchically, and then uses the
// analysis extensions: FDR screening, Shapley attribution of the winning
// pattern, and redundancy-aware top-k.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	hdiv "repro"
)

func main() {
	tab, failed := makeRequestLog(30_000, 7)
	ok := make([]bool, len(failed)) // "prediction": every request should succeed
	for i := range ok {
		ok[i] = true
	}
	actual := make([]bool, len(failed))
	for i := range actual {
		actual[i] = !failed[i]
	}
	o := hdiv.ErrorRate(actual, ok) // 1 where the request failed
	fmt.Printf("requests: %d, overall failure rate: %.3f\n\n", tab.NumRows(), o.GlobalMean())

	// IP taxonomy: every address belongs to its /8, /16 and /24 prefixes.
	ipTax := hdiv.PathTaxonomy(tab, "ip", func(ip string) []string {
		parts := strings.Split(ip, ".")
		return []string{
			parts[0],
			strings.Join(parts[:2], "."),
			strings.Join(parts[:3], "."),
		}
	})

	// The datacenter → region dependency holds exactly in the log; derive
	// the datacenter hierarchy from it instead of specifying it by hand.
	if v := hdiv.FDViolation(tab, "dc", "region"); v != 0 {
		log.Fatalf("dc→region violated: %v", v)
	}
	dcTax, err := hdiv.FromFunctionalDependency(tab, "dc", "region", 0)
	if err != nil {
		log.Fatal(err)
	}

	// region is excluded from the exploration: it is reachable only as the
	// FD-derived group level of the dc hierarchy, exercising the taxonomy.
	rep, err := hdiv.Pipeline(tab, o, hdiv.PipelineOptions{
		TreeSupport: 0.1,
		MinSupport:  0.02,
		Taxonomies:  []*hdiv.Hierarchy{ipTax, dcTax},
		Exclude:     []string{"region"},
		Workers:     4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Screen through FDR control, then pick non-overlapping subgroups.
	sig := rep.Significant(0.01)
	fmt.Printf("subgroups: %d frequent, %d significant at FDR 1%%\n\n", len(rep.Subgroups), len(sig))
	diverse, err := rep.TopKDiverse(tab, 3, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distinct anomalous regions (pairwise overlap ≤ 0.3):")
	for _, sg := range diverse {
		fmt.Printf("  %s\n", sg.String())
	}

	// Attribute the top pattern's divergence to its items.
	top := rep.Top()
	phi, err := hdiv.ItemShapley(tab, o, top.Itemset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhy {%s} diverges (Shapley shares of Δ=%+.3f):\n", top.Itemset, top.Divergence)
	for i, it := range top.Itemset {
		fmt.Printf("  %-24s %+.3f\n", it.String(), phi[i])
	}
}

// makeRequestLog fabricates a request log where clients in 10.42.0.0/16
// hitting the eu region fail disproportionately.
func makeRequestLog(n int, seed int64) (*hdiv.Table, []bool) {
	r := rand.New(rand.NewSource(seed))
	ips := make([]string, n)
	dcs := make([]string, n)
	latency := make([]float64, n)
	failed := make([]bool, n)

	regionOf := map[string]string{
		"fra1": "eu", "ams2": "eu", "iad1": "us", "sfo3": "us", "sin1": "ap",
	}
	dcNames := []string{"fra1", "ams2", "iad1", "sfo3", "sin1"}
	firstOctets := []string{"10", "172", "192"}

	for i := 0; i < n; i++ {
		first := firstOctets[r.Intn(len(firstOctets))]
		second := r.Intn(64)
		if first == "10" && r.Float64() < 0.3 {
			second = 42 // make the anomalous /16 well-populated
		}
		ips[i] = fmt.Sprintf("%s.%d.%d.%d", first, second, r.Intn(8), r.Intn(200))
		dcs[i] = dcNames[r.Intn(len(dcNames))]
		latency[i] = 20 + r.ExpFloat64()*80

		p := 0.01
		if first == "10" && second == 42 && regionOf[dcs[i]] == "eu" {
			p = 0.55 // the planted incident
		}
		failed[i] = r.Float64() < p
	}

	regions := make([]string, n)
	for i, dc := range dcs {
		regions[i] = regionOf[dc]
	}
	tab := hdiv.NewTableBuilder().
		AddCategorical("ip", ips).
		AddCategorical("dc", dcs).
		AddCategorical("region", regions).
		AddFloat("latency_ms", latency).
		MustBuild()
	return tab, failed
}
