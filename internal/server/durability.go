package server

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/wal"
)

// RecoveryState publishes WAL replay progress while New reconstructs
// datasets — the daemon's loading gate renders it as the /readyz
// recovery body {"state":"recovering","replayed":N,"total":M}. All
// methods are nil-safe and lock-free, so the gate can poll while New
// replays.
type RecoveryState struct {
	replayed atomic.Int64
	total    atomic.Int64
}

// Progress returns how many WAL records have been applied and how many
// the scan found in total (across all datasets).
func (r *RecoveryState) Progress() (replayed, total int64) {
	if r == nil {
		return 0, 0
	}
	return r.replayed.Load(), r.total.Load()
}

func (r *RecoveryState) addTotal(n int64) {
	if r != nil {
		r.total.Add(n)
	}
}

func (r *RecoveryState) noteReplayed() {
	if r != nil {
		r.replayed.Add(1)
	}
}

// epochHistory retains the frozen snapshot tables of a dataset's most
// recent epochs. It exists for durability: universe-cache entries die
// with the process, so after a restart a pinned-epoch exploration would
// answer 410 Gone even though WAL replay reconstructed every epoch
// byte for byte. With the history, a pinned request whose cache entry
// is gone rebuilds it from the retained epoch table — 410 is then
// decided by the retention policy alone, in step with log compaction.
// Tables share canonical column storage (frozen-prefix sub-slices), so
// retaining an epoch costs O(columns), not O(rows).
type epochHistory struct {
	mu     sync.Mutex
	tables map[uint64]*dataset.Table
	retain int // epochs kept behind the newest; <= 0 = unbounded
}

func newEpochHistory(retain int) *epochHistory {
	return &epochHistory{tables: make(map[uint64]*dataset.Table), retain: retain}
}

// note records epoch's frozen table and drops epochs that fell out of
// the retention window.
func (h *epochHistory) note(epoch uint64, tab *dataset.Table) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tables[epoch] = tab
	if h.retain > 0 && epoch > uint64(h.retain) {
		for e := range h.tables {
			if e <= epoch-uint64(h.retain) {
				delete(h.tables, e)
			}
		}
	}
}

// at returns the retained table of the given epoch, nil when it was
// never noted or has been retired.
func (h *epochHistory) at(epoch uint64) *dataset.Table {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tables[epoch]
}

// retire drops every epoch at or below maxEpoch.
func (h *epochHistory) retire(maxEpoch uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for e := range h.tables {
		if e <= maxEpoch {
			delete(h.tables, e)
		}
	}
}

// pinnedTable returns the retained frozen table for a pinned epoch, nil
// when the server runs without durability or the epoch is outside the
// retention window.
func (s *Server) pinnedTable(name string, epoch uint64) *dataset.Table {
	h := s.history[name]
	if h == nil {
		return nil
	}
	return h.at(epoch)
}

// walOptions derives one dataset's log options from the server config.
func (cfg *Config) walOptions(name string) wal.Options {
	return wal.Options{
		Dir:          filepath.Join(cfg.WALDir, name),
		SegmentBytes: cfg.WALSegmentBytes,
		Sync:         cfg.WALSync,
		SyncInterval: cfg.WALSyncInterval,
		Name:         name,
		Tracer:       cfg.Tracer,
		Logf: func(format string, args ...any) {
			cfg.Logger.Warn(fmt.Sprintf(format, args...), slog.String("dataset", name))
		},
	}
}

// recoverDataset opens the dataset's write-ahead log and reconstructs
// the versioned table to its exact pre-crash epoch: newest decodable
// snapshot as the base (the as-loaded table when none), then WAL replay
// record by record through the same ParseBatch+apply path HTTP appends
// take, so dictionaries and column bytes come out identical. Replay
// failures past the snapshot keep the recovered prefix — startup never
// refuses over a bad tail.
func recoverDataset(cfg *Config, name string, tab *dataset.Table, rec *RecoveryState, hist *epochHistory) (*dataset.Versioned, *wal.Log, error) {
	w, err := wal.Open(cfg.walOptions(name))
	if err != nil {
		return nil, nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	base, baseEpoch := tab, uint64(1)
	for _, snap := range w.Snapshots() {
		f, err := os.Open(snap.Path)
		if err != nil {
			cfg.Logger.Warn("snapshot unreadable, falling back",
				slog.String("dataset", name), slog.String("path", snap.Path), slog.String("error", err.Error()))
			continue
		}
		t, epoch, derr := dataset.DecodeSnapshot(f)
		f.Close()
		if derr != nil {
			cfg.Logger.Warn("snapshot corrupt, falling back",
				slog.String("dataset", name), slog.String("path", snap.Path), slog.String("error", derr.Error()))
			continue
		}
		base, baseEpoch = t, epoch
		break
	}
	v := dataset.NewVersionedAt(base, baseEpoch)
	noteEpoch := func() {
		if hist != nil {
			t, e := v.Snapshot()
			hist.note(e, t)
		}
	}
	noteEpoch()
	info := w.Info()
	rec.addTotal(int64(info.Records))
	if info.Truncated {
		cfg.Logger.Warn("wal tail truncated",
			slog.String("dataset", name), slog.String("at", info.TruncatedAt))
	}
	replayErr := w.Replay(func(r wal.Record) error {
		cur := v.Epoch()
		switch {
		case r.Epoch <= cur:
			// Already covered by the snapshot base; count it as consumed
			// so the progress gate still converges.
			rec.noteReplayed()
			return nil
		case r.Epoch != cur+1:
			return fmt.Errorf("epoch gap: log jumps %d → %d", cur, r.Epoch)
		}
		batch, err := dataset.ParseBatch(r.Payload, v.Fields())
		if err != nil {
			return fmt.Errorf("epoch %d: %w", r.Epoch, err)
		}
		if _, _, err := v.Append(batch); err != nil {
			return fmt.Errorf("epoch %d: %w", r.Epoch, err)
		}
		noteEpoch()
		rec.noteReplayed()
		return nil
	})
	if replayErr != nil {
		// The applied prefix is consistent; serve it rather than refuse
		// to start. Whatever follows the poisoned record is unreachable —
		// the next snapshot/compaction retires it from the log.
		cfg.Logger.Warn("wal replay stopped early, serving recovered prefix",
			slog.String("dataset", name),
			slog.Uint64("epoch", v.Epoch()),
			slog.String("error", replayErr.Error()))
	}
	cfg.Logger.Info("dataset recovered",
		slog.String("dataset", name),
		slog.Uint64("snapshot_epoch", info.SnapshotEpoch),
		slog.Int("wal_records", info.Records),
		slog.Uint64("epoch", v.Epoch()),
		slog.Int("rows", v.NumRows()))
	return v, w, nil
}

// sweepRetention enforces the epoch-retention policy after an append
// acked epoch: cache entries of the dataset more than retain epochs old
// are retired, so their pinned replays answer 410 Gone in step with the
// log's compaction horizon.
func (s *Server) sweepRetention(name string, epoch uint64) {
	if s.epochRetain <= 0 || epoch <= uint64(s.epochRetain) {
		return
	}
	floor := epoch - uint64(s.epochRetain)
	if h := s.history[name]; h != nil {
		h.retire(floor)
	}
	if n := s.cache.retire(name, floor); n > 0 {
		s.tracer.Counter(obs.CtrServerEpochsRetired).Add(int64(n))
		s.tracer.SetGauge(obs.GaugeServerCachedUniverses, float64(s.cache.len()))
		s.logger.Info("epochs retired",
			slog.String("dataset", name),
			slog.Uint64("through_epoch", floor),
			slog.Int("entries", n))
	}
}

// maybeCompact kicks off background snapshot/compaction for the dataset
// after a segment rotation. At most one compaction per dataset runs at a
// time; overlapping triggers are dropped (the next rotation retries).
func (s *Server) maybeCompact(name string) {
	if !s.compacting[name].CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting[name].Store(false)
		defer func() {
			if r := recover(); r != nil {
				s.tracer.Counter(obs.CtrServerPanics).Add(1)
				s.logger.Error("compaction panic",
					slog.String("dataset", name), slog.String("panic", fmt.Sprint(r)))
			}
		}()
		s.compact(name)
	}()
}

// compact writes a full-table snapshot of the dataset's current epoch
// and lets the log delete every segment the snapshot covers. A failure
// mid-write (including the server.snapshot_write failpoint) discards
// the staged file; the previous snapshot stays authoritative and no
// segment is touched.
func (s *Server) compact(name string) {
	w := s.wals[name]
	v := s.tables[name]
	if w == nil || v == nil {
		return
	}
	tab, epoch := v.Snapshot()
	start := time.Now()
	err := w.WriteSnapshot(epoch, func(out io.Writer) error {
		if err := faultinject.Hit(faultinject.SiteSnapshotWrite); err != nil {
			return err
		}
		return dataset.EncodeSnapshot(out, tab, epoch)
	})
	if err != nil {
		s.logger.Warn("compaction failed, old snapshot stays authoritative",
			slog.String("dataset", name),
			slog.Uint64("epoch", epoch),
			slog.String("error", err.Error()))
		return
	}
	s.logger.Info("compaction",
		slog.String("dataset", name),
		slog.Uint64("snapshot_epoch", epoch),
		slog.Int64("elapsed_ms", time.Since(start).Milliseconds()))
}

// Close releases the server's write-ahead logs (final fsync included).
// Safe on a server without durability; call it when the daemon is done
// serving.
func (s *Server) Close() error {
	var first error
	for _, name := range s.order {
		if w := s.wals[name]; w != nil {
			if err := w.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
