# Development targets for the H-DivExplorer reproduction.
#
#   make check        vet + build + race tests + bench/trace smoke (CI entry)
#   make test         go test ./...
#   make race         go test -race ./...
#   make bench        full benchmark suite (slow; paper artifacts + ablations)
#   make smoke        1-iteration pipeline benches + CLI trace-JSON round trip
#   make smoke-daemon live hdivexplorerd round trip: explore, /metrics,
#                     /v1/progress, Chrome-trace export, debug listener
#   make loadtest     sustained-load smoke: hdivloadgen drives a live
#                     daemon with declared SLOs, writes BENCH_PR8_SLO.json
#                     and diffs its p99 against the committed baseline
#   make test-faults  fault-injection + budget + panic-containment suite
#                     under the race detector
#   make test-crash   durability suite under the race detector: WAL
#                     append/replay/rotation, crash-recovery equivalence
#                     property, daemon restart, FuzzWALReplay seed corpus

GO ?= go
# BENCHTIME feeds -benchtime: the default 1s gives stable numbers; CI
# passes 1x for a fast structural run. BENCHOUT is the JSON artifact;
# BENCHBASE is the committed baseline benchdiff compares it against.
BENCHTIME ?= 1s
BENCHOUT ?= BENCH_PR10.json
BENCHBASE ?= BENCH_PR9.json

.PHONY: check vet build test race bench benchdiff benchgate smoke smoke-daemon loadtest test-faults test-crash fmt

check: vet build race test-faults test-crash smoke smoke-daemon

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# test-faults runs the failure-containment suite under the race
# detector: the faultinject package itself, plus every fault-injection,
# budget-truncation, panic-recovery and saturation test in the engine,
# miners and HTTP server (FuzzExploreDecode runs its seed corpus only).
test-faults:
	$(GO) test -race ./internal/faultinject
	$(GO) test -race -run 'Fault|Budget|Panic|Readyz|RetryAfter|SoftDeadline|FuzzExploreDecode|Daemon' \
		./internal/engine ./internal/fpm ./internal/server ./cmd/hdivexplorerd

# test-crash runs the durability suite under the race detector: the wal
# package in full (record codec, group commit, torn-tail truncation,
# segment rotation, snapshot compaction, FuzzWALReplay's seed corpus),
# the dataset snapshot codec, the server-level crash-recovery
# equivalence property (seeded kill-and-restart across workers ×
# shards), and the daemon restart round trip.
test-crash:
	$(GO) test -race ./internal/wal ./internal/dataset
	$(GO) test -race -run 'Durable|Recovery|Retention|SnapshotCompaction|DriftRearms|WALSync' \
		./internal/server ./cmd/hdivexplorerd

# bench runs the full suite and also writes $(BENCHOUT): a JSON record
# per benchmark (name, iterations, ns/op, B/op, allocs/op and custom
# counters) parsed from the live output by cmd/benchjson, which fails
# the pipe when the stream contains FAIL lines or no benchmarks.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -out $(BENCHOUT)

# benchdiff compares the fresh artifact against the committed baseline
# and warns (never fails) on >2x ns/op regressions in the watched paper
# benchmarks. See scripts/benchdiff for the CI wrapper.
benchdiff:
	./scripts/benchdiff $(BENCHBASE) $(BENCHOUT)

# benchgate is the enforcing variant CI runs after the advisory diff:
# a watched benchmark whose B/op or allocs/op grows more than 25% (or
# whose ns/op doubles) fails the build. README.md §Memory tuning
# explains how to read the output.
benchgate:
	./scripts/benchdiff $(BENCHBASE) $(BENCHOUT) -strict -alloc-threshold 1.25

# smoke runs the pipeline benchmarks once each (reporting the mining
# counters) and exercises the CLI trace path end to end: mkdata generates
# a dataset, hdivexplorer runs with -trace-json, and the snapshot must be
# parseable JSON with a non-empty span list.
smoke:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline' -benchtime=1x .
	rm -rf .smoke && mkdir .smoke
	$(GO) run ./cmd/mkdata -dataset compas -n 1000 -out .smoke
	$(GO) run ./cmd/hdivexplorer -data .smoke/compas.csv \
		-actual label -predicted prediction -stat fpr -polarity \
		-trace-json .smoke/trace.json -top 3 > /dev/null
	$(GO) run ./cmd/checktrace .smoke/trace.json
	rm -rf .smoke

# smoke-daemon starts a real hdivexplorerd, runs one exploration under a
# known request ID and checks the whole observability surface: /metrics
# histograms (classic + OpenMetrics with runtime families and
# exemplars), /v1/progress/{id}, the Chrome-trace export (validated by
# checktrace -chrome), the /v1/explain/{id} cost profile, the
# /v1/debug/requests flight recorder, the pprof/expvar debug listener
# and the structured request log. Artifacts land in .smoke-daemon/ for
# CI upload.
smoke-daemon:
	./scripts/daemon_smoke.sh .smoke-daemon

# loadtest runs the ~15s sustained-load smoke: a live daemon with
# -slo p99=500ms,availability=99.0 takes seeded open-loop traffic from
# cmd/hdivloadgen, the run's per-class latency quantiles land in
# .loadtest/BENCH_PR8_SLO.json (uploaded by CI), the /v1/slo and
# windowed-metrics surfaces are asserted live, and benchdiff warns
# (never fails) when a class's p99 more than doubles against the
# committed BENCH_PR8_SLO.json baseline.
loadtest:
	./scripts/loadtest.sh .loadtest

fmt:
	gofmt -l -w .
