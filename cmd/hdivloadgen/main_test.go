package main

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchfmt"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("explore=6,batch=1,progress=2,metrics=1")
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 6 || w[1] != 1 || w[2] != 2 || w[3] != 1 {
		t.Errorf("weights = %v", w)
	}
	w, err = parseMix("metrics=1")
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0 || w[3] != 1 {
		t.Errorf("sparse mix = %v, want only metrics weighted", w)
	}
	for _, bad := range []string{"explore", "unknown=1", "explore=-1", "explore=0,batch=0", ""} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestPickClassDeterministic pins the seeded request sequence: the same
// seed draws the same classes in the same order, and zero-weight classes
// never appear.
func TestPickClassDeterministic(t *testing.T) {
	weights := []float64{6, 0, 2, 1}
	draw := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int, 200)
		for i := range out {
			out[i] = pickClass(rng, weights)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] == 1 {
			t.Fatalf("zero-weight class drawn at %d", i)
		}
	}
	if c := draw(43); equalInts(a, c) {
		t.Error("different seeds drew identical 200-class sequences")
	}
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuantile(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i))
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 50}, {0.95, 95}, {0.99, 99}, {0.999, 100}, {1, 100}} {
		if got := quantile(lats, tc.q); got != tc.want {
			t.Errorf("quantile(%g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Error("empty quantile != 0")
	}
}

// fakeDaemon serves just enough of the hdivexplorerd surface for the
// generator: /readyz, /v1/explore (every 5th report truncated),
// /v1/explore/batch, /v1/progress and /metrics.
func fakeDaemon(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var explores atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("POST /v1/explore", func(w http.ResponseWriter, r *http.Request) {
		n := explores.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n%5 == 0 {
			io.WriteString(w, `{"truncated": true, "subgroups": []}`)
			return
		}
		io.WriteString(w, `{"subgroups": []}`)
	})
	mux.HandleFunc("POST /v1/explore/batch", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `[{"stat": "error", "report": {"subgroups": []}}]`)
	})
	mux.HandleFunc("GET /v1/progress", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "[]\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "# TYPE server_explores counter\nserver_explores 1\n")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &explores
}

func testConfig(addr string) lgConfig {
	return lgConfig{
		addr:                 addr,
		duration:             300 * time.Millisecond,
		warmup:               50 * time.Millisecond,
		concurrency:          4,
		seed:                 1,
		mix:                  "explore=6,batch=1,progress=2,metrics=1",
		dataset:              "anomaly",
		stat:                 "error",
		top:                  3,
		timeout:              5 * time.Second,
		readyTimeout:         2 * time.Second,
		maxConsecutiveErrors: 5,
	}
}

// TestRunClosedLoop drives the fake daemon closed loop and checks the
// artifact: every mixed class reports, quantiles are ordered, the
// aggregate rides along, and the truncation fraction shows up.
func TestRunClosedLoop(t *testing.T) {
	srv, _ := fakeDaemon(t)
	out, err := run(context.Background(), testConfig(srv.URL), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if out.Aborted {
		t.Error("clean run marked aborted")
	}
	byName := map[string]benchfmt.Benchmark{}
	for _, b := range out.Benchmarks {
		byName[b.Name] = b
	}
	agg, ok := byName["BenchmarkLoadGen"]
	if !ok {
		t.Fatalf("no aggregate in %v", out.Benchmarks)
	}
	if agg.Iterations == 0 {
		t.Fatal("aggregate completed no requests")
	}
	for _, name := range []string{"BenchmarkLoadGen/explore", "BenchmarkLoadGen/metrics"} {
		b, ok := byName[name]
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		m := b.Metrics
		if m["ns/op"] <= 0 || m["p50-ns"] <= 0 || m["rps"] <= 0 {
			t.Errorf("%s metrics = %v", name, m)
		}
		if m["p50-ns"] > m["p95-ns"] || m["p95-ns"] > m["p99-ns"] || m["p99-ns"] > m["p999-ns"] {
			t.Errorf("%s quantiles out of order: %v", name, m)
		}
		if m["err-rate"] != 0 || m["http429-rate"] != 0 {
			t.Errorf("%s spurious errors: %v", name, m)
		}
	}
	// Every 5th explore is truncated; with dozens of samples the rate must
	// land near 0.2 (warmup skew allowed).
	tr := byName["BenchmarkLoadGen/explore"].Metrics["truncated-rate"]
	if tr <= 0.05 || tr >= 0.5 {
		t.Errorf("truncated-rate = %g, want ~0.2", tr)
	}
}

// TestRunOpenLoop checks paced arrivals: the completed count tracks the
// target rate rather than the concurrency.
func TestRunOpenLoop(t *testing.T) {
	srv, _ := fakeDaemon(t)
	cfg := testConfig(srv.URL)
	cfg.rps = 100
	cfg.warmup = 0
	cfg.duration = 500 * time.Millisecond
	out, err := run(context.Background(), cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var agg *benchfmt.Benchmark
	for i := range out.Benchmarks {
		if out.Benchmarks[i].Name == "BenchmarkLoadGen" {
			agg = &out.Benchmarks[i]
		}
	}
	if agg == nil {
		t.Fatal("no aggregate")
	}
	// 100 rps over 500ms ≈ 50 arrivals; allow generous scheduling slack.
	if agg.Iterations < 20 || agg.Iterations > 80 {
		t.Errorf("open-loop completed %d requests, want ≈50", agg.Iterations)
	}
}

// TestRunToleratesRecoveryWindow drops the fake daemon into a recovery
// window mid-run — every endpoint (including /readyz) answers 503 with
// the {"state":"recovering",...} body for a while, as a restarted
// hdivexplorerd does while replaying its WAL — and checks the workers
// wait it out and reissue: no abort, no error-rate pollution, and
// traffic resumes after recovery.
func TestRunToleratesRecoveryWindow(t *testing.T) {
	srv, explores := fakeDaemon(t)
	var recovering atomic.Bool
	inner := srv.Config.Handler
	srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if recovering.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"state":"recovering","replayed":1,"total":2}`)
			return
		}
		inner.ServeHTTP(w, r)
	})
	cfg := testConfig(srv.URL)
	cfg.warmup = 0
	cfg.duration = 1200 * time.Millisecond
	cfg.maxConsecutiveErrors = 3
	go func() {
		time.Sleep(150 * time.Millisecond)
		recovering.Store(true)
		time.Sleep(400 * time.Millisecond)
		recovering.Store(false)
	}()
	before := explores.Load()
	out, err := run(context.Background(), cfg, io.Discard)
	if err != nil {
		t.Fatalf("run through recovery window errored: %v", err)
	}
	if out.Aborted {
		t.Error("recovery window aborted the run")
	}
	for _, b := range out.Benchmarks {
		if rate := b.Metrics["err-rate"]; rate != 0 {
			t.Errorf("%s err-rate = %g, want 0 (503s from the gate must not count)", b.Name, rate)
		}
	}
	if after := explores.Load(); after <= before {
		t.Error("no traffic observed around the recovery window")
	}
}

// TestAwaitRecoveredGivesUpOnTransportError pins the distinction the
// abort accounting relies on: a dead listener is not a recovery window.
func TestAwaitRecoveredGivesUpOnTransportError(t *testing.T) {
	client := &http.Client{Timeout: time.Second}
	if awaitRecovered(context.Background(), client, "http://127.0.0.1:1") {
		t.Error("awaitRecovered reported recovery from an unreachable address")
	}
}

// TestRunAbortsWhenUnreachable pins the graceful-abort contract for a
// server that never comes up: nonzero error, artifact marked aborted.
func TestRunAbortsWhenUnreachable(t *testing.T) {
	cfg := testConfig("http://127.0.0.1:1")
	cfg.readyTimeout = 300 * time.Millisecond
	out, err := run(context.Background(), cfg, io.Discard)
	if err == nil {
		t.Fatal("unreachable server did not error")
	}
	if !out.Aborted {
		t.Error("unreachable-server artifact not marked aborted")
	}
}

// TestRunAbortsWhenServerVanishes kills the server mid-run and checks
// the generator flushes partial results instead of spinning on errors
// for the full duration.
func TestRunAbortsWhenServerVanishes(t *testing.T) {
	srv, _ := fakeDaemon(t)
	cfg := testConfig(srv.URL)
	cfg.warmup = 0
	cfg.duration = 10 * time.Second
	go func() {
		time.Sleep(200 * time.Millisecond)
		srv.CloseClientConnections()
		srv.Close()
	}()
	start := time.Now()
	out, err := run(context.Background(), cfg, io.Discard)
	if err == nil {
		t.Fatal("vanished server did not error")
	}
	if !out.Aborted {
		t.Error("partial artifact not marked aborted")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("abort took %v, want well under the 10s duration", elapsed)
	}
	// The pre-crash traffic is still in the artifact.
	var agg *benchfmt.Benchmark
	for i := range out.Benchmarks {
		if out.Benchmarks[i].Name == "BenchmarkLoadGen" {
			agg = &out.Benchmarks[i]
		}
	}
	if agg == nil || agg.Iterations == 0 {
		t.Errorf("partial results lost: %+v", out.Benchmarks)
	}
}

// TestRunAbortsOnInterrupt cancels the parent context (the SIGINT path)
// and checks the same flush-partial contract.
func TestRunAbortsOnInterrupt(t *testing.T) {
	srv, _ := fakeDaemon(t)
	cfg := testConfig(srv.URL)
	cfg.warmup = 0
	cfg.duration = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out, err := run(ctx, cfg, io.Discard)
	if err == nil || !out.Aborted {
		t.Fatalf("interrupt: err=%v aborted=%v", err, out.Aborted)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("interrupt abort took %v", elapsed)
	}
}

// TestRunRequiresDataset checks the flag validation for exploration
// traffic, and that a metrics-only mix needs none.
func TestRunRequiresDataset(t *testing.T) {
	srv, _ := fakeDaemon(t)
	cfg := testConfig(srv.URL)
	cfg.dataset = ""
	if _, err := run(context.Background(), cfg, io.Discard); err == nil {
		t.Error("explore mix without -dataset accepted")
	}
	cfg.mix = "metrics=1,progress=1"
	cfg.duration = 100 * time.Millisecond
	cfg.warmup = 0
	out, err := run(context.Background(), cfg, io.Discard)
	if err != nil {
		t.Errorf("metrics-only mix without -dataset rejected: %v", err)
	}
	for _, b := range out.Benchmarks {
		if b.Name == "BenchmarkLoadGen/explore" || b.Name == "BenchmarkLoadGen/batch" {
			t.Errorf("unmixed class reported: %s", b.Name)
		}
	}
}
