// Command hdivexplorer runs H-DivExplorer on a CSV file.
//
// The CSV must contain the feature columns plus the columns naming the
// ground truth and (for classification statistics) the model prediction.
// Example:
//
//	hdivexplorer -data compas.csv -actual recid -predicted pred \
//	    -stat fpr -s 0.05 -st 0.1 -top 15
//
// For a numeric statistic (e.g. income divergence):
//
//	hdivexplorer -data census.csv -target income -stat numeric -s 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	hdiv "repro"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "input CSV file (required)")
		actualCol = flag.String("actual", "", "ground-truth boolean column (true/1 = positive)")
		predCol   = flag.String("predicted", "", "prediction boolean column")
		targetCol = flag.String("target", "", "numeric target column (for -stat numeric)")
		stat      = flag.String("stat", "error", "statistic: fpr, fnr, error, accuracy, numeric")
		s         = flag.Float64("s", 0.05, "exploration support threshold")
		st        = flag.Float64("st", 0.1, "tree discretization support threshold")
		criterion = flag.String("criterion", "divergence", "tree split criterion: divergence or entropy")
		mode      = flag.String("mode", "hierarchical", "exploration mode: hierarchical or base")
		algorithm = flag.String("algorithm", "fpgrowth", "miner: fpgrowth or apriori")
		polarity  = flag.Bool("polarity", false, "enable polarity pruning")
		maxLen    = flag.Int("maxlen", 0, "max itemset length (0 = unlimited)")
		top       = flag.Int("top", 20, "number of subgroups to print")
		minT      = flag.Float64("mint", 0, "only print subgroups with |t| at least this")
		format    = flag.String("format", "text", "output format: text, csv or json")
		workers   = flag.Int("workers", 0, "parallel mining goroutines (0 = serial)")
	)
	flag.Parse()
	if err := run(*dataPath, *actualCol, *predCol, *targetCol, *stat, *criterion, *mode, *algorithm, *format,
		*s, *st, *minT, *polarity, *maxLen, *top, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "hdivexplorer:", err)
		os.Exit(1)
	}
}

func run(dataPath, actualCol, predCol, targetCol, stat, criterion, mode, algorithm, format string,
	s, st, minT float64, polarity bool, maxLen, top, workers int) error {
	if dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	tab, err := hdiv.ReadCSVFile(dataPath, hdiv.CSVOptions{})
	if err != nil {
		return err
	}

	o, exclude, err := buildOutcome(tab, stat, actualCol, predCol, targetCol)
	if err != nil {
		return err
	}

	opt := hdiv.PipelineOptions{
		TreeSupport:   st,
		MinSupport:    s,
		MaxLen:        maxLen,
		PolarityPrune: polarity,
		Workers:       workers,
		Exclude:       exclude,
	}
	switch strings.ToLower(criterion) {
	case "divergence":
		opt.Criterion = hdiv.DivergenceGain
	case "entropy":
		opt.Criterion = hdiv.EntropyGain
	default:
		return fmt.Errorf("unknown criterion %q", criterion)
	}
	switch strings.ToLower(mode) {
	case "hierarchical":
		opt.Mode = hdiv.Hierarchical
	case "base":
		opt.Mode = hdiv.Base
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	switch strings.ToLower(algorithm) {
	case "fpgrowth", "fp-growth":
		opt.Algorithm = hdiv.FPGrowth
	case "apriori":
		opt.Algorithm = hdiv.Apriori
	default:
		return fmt.Errorf("unknown algorithm %q", algorithm)
	}

	rep, err := hdiv.Pipeline(tab, o, opt)
	if err != nil {
		return err
	}
	switch strings.ToLower(format) {
	case "csv":
		return rep.WriteCSV(os.Stdout)
	case "json":
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(raw, '\n'))
		return err
	case "text":
		// fall through to the aligned text report below
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	fmt.Printf("dataset: %d rows, %d items explored, %s=%.4f overall\n",
		rep.NumRows, rep.NumItems, o.Name, rep.Global)
	fmt.Printf("frequent subgroups: %d (mining %v)\n\n", len(rep.Subgroups), rep.Elapsed)
	if minT > 0 {
		filtered := rep.FilterMinT(minT)
		if top > len(filtered) {
			top = len(filtered)
		}
		for _, sg := range filtered[:top] {
			fmt.Println(sg.String())
		}
		return nil
	}
	fmt.Print(rep.Table(top))
	return nil
}

// buildOutcome assembles the statistic and the label columns to exclude
// from the exploration itself.
func buildOutcome(tab *hdiv.Table, stat, actualCol, predCol, targetCol string) (*hdiv.Outcome, []string, error) {
	switch strings.ToLower(stat) {
	case "numeric":
		if targetCol == "" {
			return nil, nil, fmt.Errorf("-stat numeric requires -target")
		}
		if !tab.HasColumn(targetCol) {
			return nil, nil, fmt.Errorf("no column %q", targetCol)
		}
		return hdiv.Numeric(targetCol, tab.Floats(targetCol)), []string{targetCol}, nil
	case "fpr", "fnr", "error", "accuracy":
		if actualCol == "" || predCol == "" {
			return nil, nil, fmt.Errorf("-stat %s requires -actual and -predicted", stat)
		}
		actual, err := boolColumn(tab, actualCol)
		if err != nil {
			return nil, nil, err
		}
		pred, err := boolColumn(tab, predCol)
		if err != nil {
			return nil, nil, err
		}
		exclude := []string{actualCol, predCol}
		switch strings.ToLower(stat) {
		case "fpr":
			return hdiv.FalsePositiveRate(actual, pred), exclude, nil
		case "fnr":
			return hdiv.FalseNegativeRate(actual, pred), exclude, nil
		case "error":
			return hdiv.ErrorRate(actual, pred), exclude, nil
		default:
			return hdiv.Accuracy(actual, pred), exclude, nil
		}
	default:
		return nil, nil, fmt.Errorf("unknown statistic %q", stat)
	}
}

// boolColumn reads a column as booleans: numeric columns treat nonzero as
// true; categorical columns accept true/false, yes/no, 1/0, t/f.
func boolColumn(tab *hdiv.Table, name string) ([]bool, error) {
	if !tab.HasColumn(name) {
		return nil, fmt.Errorf("no column %q", name)
	}
	n := tab.NumRows()
	out := make([]bool, n)
	if tab.KindOf(name) == hdiv.Continuous {
		for i, v := range tab.Floats(name) {
			out[i] = v != 0
		}
		return out, nil
	}
	codes := tab.Codes(name)
	levels := tab.Levels(name)
	truth := make([]bool, len(levels))
	for c, l := range levels {
		switch strings.ToLower(strings.TrimSpace(l)) {
		case "true", "yes", "1", "t", "y":
			truth[c] = true
		case "false", "no", "0", "f", "n":
			truth[c] = false
		default:
			return nil, fmt.Errorf("column %q: level %q is not boolean", name, l)
		}
	}
	for i, c := range codes {
		out[i] = truth[c]
	}
	return out, nil
}
