package obs

// Canonical span names emitted by the pipeline. Stage packages use these
// constants so the CLI, benchmarks and tests agree on one vocabulary;
// README.md §Observability documents the full registry.
const (
	// SpanReadCSV covers dataset.ReadCSV; its children split raw CSV
	// decoding (SpanCSVParse) from column building and kind inference
	// (SpanCSVColumns).
	SpanReadCSV    = "read_csv"
	SpanCSVParse   = "read_csv.parse"
	SpanCSVColumns = "read_csv.columns"

	// SpanDiscretize covers discretize.TreeSet; one child per continuous
	// attribute, named SpanTreePrefix + attribute.
	SpanDiscretize = "discretize"
	SpanTreePrefix = "discretize.tree:"

	// SpanExplore covers core.Explore end to end; children are universe
	// construction, mining (SpanMine, owned by fpm) and ranking.
	SpanExplore  = "explore"
	SpanUniverse = "explore.universe"
	SpanRank     = "explore.rank"

	// SpanMine covers fpm.Mine. FP-Growth emits SpanMineScan (global item
	// frequency scan), SpanMineBuild (FP-tree construction, with a
	// SpanMineMerge child when shard trees are folded together) and
	// SpanMineGrow (conditional-tree recursion); Apriori emits
	// SpanMineScan (level 1) and SpanMineLevels (levels ≥ 2).
	SpanMine       = "mine"
	SpanMineScan   = "mine.scan"
	SpanMineBuild  = "mine.build"
	SpanMineMerge  = "mine.build.merge"
	SpanMineGrow   = "mine.grow"
	SpanMineLevels = "mine.levels"
)

// Canonical counter names.
const (
	CtrRows            = "dataset.rows"
	CtrCols            = "dataset.cols"
	CtrColsContinuous  = "dataset.cols_continuous"
	CtrColsCategorical = "dataset.cols_categorical"

	// CtrTreeNodes counts hierarchy nodes grown by the tree discretizer
	// (beyond roots); CtrSplitsNoSupport counts leaves that could not be
	// split because the st support floor left no feasible cut;
	// CtrSplitsNoGain counts leaves whose best feasible cut had zero gain.
	CtrTreeNodes       = "discretize.nodes_grown"
	CtrSplitsNoSupport = "discretize.splits_rejected_support"
	CtrSplitsNoGain    = "discretize.splits_rejected_gain"

	// CtrCandidates counts itemset candidates whose support was evaluated;
	// CtrPrunedSupport the candidates discarded as infrequent (including
	// Apriori's subset-infrequency prunes); CtrPrunedPolarity the
	// combinations skipped by §V-C polarity pruning; CtrItemsetsEmitted
	// the frequent itemsets returned.
	CtrCandidates      = "fpm.candidates"
	CtrPrunedSupport   = "fpm.pruned_support"
	CtrPrunedPolarity  = "fpm.pruned_polarity"
	CtrItemsetsEmitted = "fpm.itemsets_emitted"

	// CtrWorkerTaskPrefix + worker index counts tasks completed by each
	// engine.ParallelFor worker goroutine (utilization; nondeterministic
	// split).
	CtrWorkerTaskPrefix = "fpm.worker_tasks.w"

	// CtrShardRowsPrefix + shard index counts the transactions (non-empty
	// rows) each engine shard inserted during FP-tree construction;
	// deterministic per shard for a given plan.
	CtrShardRowsPrefix = "engine.shard_rows.s"

	// CtrShardSupportPrefix + shard index counts the candidate-support
	// increments Apriori's sharded counting phase attributed to each
	// engine shard; deterministic per shard for a given plan, and the
	// load signal behind the explain profile's shard-skew ratio.
	CtrShardSupportPrefix = "engine.shard_support.s"

	// CtrWorkerAllocBytesPrefix / CtrWorkerAllocObjsPrefix + worker index
	// record the heap-allocation delta (bytes, objects) sampled over each
	// ParallelFor worker goroutine's lifetime. Process-global samples, so
	// approximate when workers overlap; nondeterministic like the task
	// split.
	CtrWorkerAllocBytesPrefix = "engine.worker_alloc_bytes.w"
	CtrWorkerAllocObjsPrefix  = "engine.worker_allocs.w"

	// CtrPoolHits / CtrPoolMisses count buffer acquisitions served by the
	// run's engine.Pool from recycled storage vs freshly allocated — row
	// vectors, partial-count matrices, FP-Growth conditional trees and
	// scratches alike. The split depends on GC timing and worker
	// interleaving, so it is measured (nondeterministic) telemetry.
	CtrPoolHits   = "engine.pool_hits"
	CtrPoolMisses = "engine.pool_misses"

	// CtrPanicsRecovered counts panics recovered into errors by the
	// failure-containment layer: engine.ParallelFor worker recoveries and
	// the miners' serial-section recoveries. Zero in a healthy process.
	CtrPanicsRecovered = "engine.panics_recovered"

	// CtrBudgetExhaustedPrefix + dimension (candidates, itemsets,
	// deadline, heap) counts mining runs truncated because that resource
	// budget was exhausted.
	CtrBudgetExhaustedPrefix = "fpm.budget_exhausted."

	// Serving-layer counters (internal/server, accumulated on the server's
	// lifetime tracer and rendered by GET /metrics).
	//
	// CtrServerRequestPrefix + endpoint counts requests per endpoint
	// (datasets, explore, healthz, metrics); CtrServerExplores counts
	// explorations actually run; CtrServerErrors counts requests answered
	// with a 4xx/5xx status; CtrServerRejected counts explorations turned
	// away with 429 because the in-flight limit was reached;
	// CtrServerCancelled counts explorations aborted by client disconnect
	// or per-request timeout; CtrServerCacheHits / CtrServerCacheMisses
	// count universe-cache lookups (a hit skips discretization and
	// universe construction entirely).
	CtrServerRequestPrefix = "server.requests."
	CtrServerExplores      = "server.explores"
	CtrServerErrors        = "server.http_errors"
	CtrServerRejected      = "server.rejected_saturated"
	CtrServerCancelled     = "server.explores_cancelled"
	CtrServerCacheHits     = "server.universe_cache_hits"
	CtrServerCacheMisses   = "server.universe_cache_misses"

	// CtrServerCacheEvictions counts universe-cache entries evicted by the
	// LRU capacity bound; CtrServerBatchStats counts the statistics
	// computed across /v1/explore/batch requests (one mining pass may
	// cover several).
	CtrServerCacheEvictions = "server.universe_cache_evictions"
	CtrServerBatchStats     = "server.batch_statistics"

	// CtrServerPanics counts handler panics recovered by the server's
	// recovery middleware (each answered with a 500 while the daemon keeps
	// serving); CtrServerTruncated counts explorations answered 200 with a
	// budget-truncated (best-effort) report.
	CtrServerPanics    = "server.panics_recovered"
	CtrServerTruncated = "server.explorations_truncated"

	// Dataset-lifecycle counters. CtrServerAppends counts accepted append
	// batches (each bumping its dataset's epoch); CtrServerAppendRows the
	// rows they carried. CtrServerCacheStaleEvictions counts universe-cache
	// evictions that picked a stale-epoch entry over the plain LRU tail.
	// CtrServerUniverseIncremental counts universe builds served by
	// incremental append maintenance (cutpoints kept, bitvec tails grown);
	// CtrServerUniverseRediscretized counts epoch-bump builds that fell
	// back to a full re-discretization (quantile drift over threshold or
	// new categorical levels). CtrServerDriftRemines counts background
	// drift re-mines; CtrServerDriftEvents the threshold crossings they
	// detected.
	CtrServerAppends               = "server.appends"
	CtrServerAppendRows            = "server.append_rows"
	CtrServerCacheStaleEvictions   = "server.universe_cache_stale_evictions"
	CtrServerUniverseIncremental   = "server.universe_builds_incremental"
	CtrServerUniverseRediscretized = "server.universe_builds_rediscretized"
	CtrServerDriftRemines          = "server.drift_remines"
	CtrServerDriftEvents           = "server.drift_events"

	// Write-ahead-log counters (internal/wal, accumulated on the server's
	// lifetime tracer when durability is enabled). CtrWALRecords counts
	// records appended to the active segment; CtrWALReplayedRecords the
	// records applied during startup recovery; CtrWALTruncatedRecords the
	// torn or checksum-failed records recovery truncated the log at
	// (everything after the first bad record is discarded rather than
	// refusing to start); CtrWALSnapshotsWritten the full-table snapshots
	// compaction has staged and committed; CtrWALSegmentsDeleted the
	// sealed segments deleted because a snapshot covers every record in
	// them. CtrServerEpochsRetired counts pinned-replay cache entries the
	// epoch-retention sweep aged out (their epochs now answer 410 Gone).
	CtrWALRecords          = "wal.records_appended"
	CtrWALReplayedRecords  = "wal.replayed_records"
	CtrWALTruncatedRecords = "wal.truncated_records"
	CtrWALSnapshotsWritten = "wal.snapshots_written"
	CtrWALSegmentsDeleted  = "wal.segments_deleted"
	CtrServerEpochsRetired = "server.epochs_retired"

	// SLO lifetime counters. CtrServerSLOBreachPrefix + endpoint class +
	// "." + objective name (e.g. "explore.p99") counts requests that
	// violated that latency objective over the process lifetime — the
	// monotonic series behind the windowed burn-rate gauges.
	// CtrServerSLOErrPrefix + endpoint class counts 5xx answers per class
	// (the availability objective's lifetime breach count).
	CtrServerSLOBreachPrefix = "server.slo_breaches."
	CtrServerSLOErrPrefix    = "server.slo_errors."
)

// Canonical gauge names.
const (
	// GaugeWorkers is the clamped worker count actually used by the miner.
	GaugeWorkers = "fpm.workers"
	// GaugeShards is the number of row shards of the engine data plane the
	// last mining run partitioned the dataset into.
	GaugeShards = "engine.shards"
	// GaugeMaxDepth is the FP-Growth conditional-recursion high-water mark
	// (equals the longest frequent itemset mined).
	GaugeMaxDepth = "fpm.max_depth"

	// Budget gauges mirror the mining run's configured Budget limits (set
	// only for dimensions with a limit) plus the heap high-water mark the
	// budget tracker observed; the explain profile derives consumption
	// fractions from them.
	GaugeBudgetMaxCandidates  = "fpm.budget.max_candidates"
	GaugeBudgetMaxItemsets    = "fpm.budget.max_itemsets"
	GaugeBudgetSoftDeadlineNS = "fpm.budget.soft_deadline_ns"
	GaugeBudgetMaxHeapBytes   = "fpm.budget.max_heap_bytes"
	GaugeBudgetHeapBytes      = "fpm.budget.heap_bytes"

	// Universe memory gauges, set by core from fpm.Universe.Memory():
	// per-item row-set representation counts (dense vectors vs compressed
	// bitmaps), the compressed container mix, and the byte footprint
	// against the all-dense equivalent. Deterministic for a given dataset
	// and item set.
	GaugeItemsDense         = "bitvec.items_dense"
	GaugeItemsCompressed    = "bitvec.items_compressed"
	GaugeContainersArray    = "bitvec.containers_array"
	GaugeContainersBitmap   = "bitvec.containers_bitmap"
	GaugeContainersRun      = "bitvec.containers_run"
	GaugeUniverseBytes      = "bitvec.universe_bytes"
	GaugeUniverseDenseBytes = "bitvec.universe_dense_bytes"

	// GaugeCacheHit is set on a per-request tracer by the server: 1 when
	// the universe cache satisfied the exploration, 0 on a miss. Absent on
	// CLI runs.
	GaugeCacheHit = "server.cache_hit"

	// GaugeServerInFlight is the number of explorations currently running;
	// GaugeServerInFlightMax its high-water mark; GaugeServerDatasets the
	// number of datasets loaded; GaugeServerCachedUniverses the number of
	// (dataset, statistic, criterion, st) universe-cache entries built.
	GaugeServerInFlight        = "server.in_flight"
	GaugeServerInFlightMax     = "server.in_flight_max"
	GaugeServerDatasets        = "server.datasets"
	GaugeServerCachedUniverses = "server.cached_universes"

	// GaugeServerEpochPrefix + dataset name is the dataset's current epoch
	// (1 at load, +1 per accepted append batch).
	GaugeServerEpochPrefix = "server.dataset_epoch."

	// GaugeWALActiveSegmentPrefix + dataset name is the sequence number of
	// the segment that dataset's appends currently land in;
	// GaugeWALSegmentsPrefix + name the number of live segment files
	// (sealed + active); GaugeWALSnapshotEpochPrefix + name the epoch of
	// the newest committed snapshot (0 before the first compaction).
	// Dynamic names, exported without HELP like the epoch gauges.
	GaugeWALActiveSegmentPrefix = "wal.active_segment."
	GaugeWALSegmentsPrefix      = "wal.segments."
	GaugeWALSnapshotEpochPrefix = "wal.snapshot_epoch."
)

// Canonical histogram names.
const (
	// HistRequestSeconds is the end-to-end /v1/explore latency in seconds,
	// observed once per exploration request (including rejected ones).
	HistRequestSeconds = "server.request_seconds"
	// HistCandidateBatch is the size distribution of candidate batches:
	// Apriori records the candidate count of each level, FP-Growth the
	// item count of each conditional universe.
	HistCandidateBatch = "fpm.candidate_batch"
	// HistItemsetSupport is the support-fraction distribution of the
	// frequent itemsets a mining run emitted.
	HistItemsetSupport = "fpm.itemset_support"
	// HistWALFsyncSeconds is the latency distribution of WAL fsyncs — one
	// observation per group commit, not per acknowledged append, so the
	// count against CtrWALRecords shows the fsync-batching ratio.
	HistWALFsyncSeconds = "wal.fsync_seconds"
)

// Default bucket bounds for the canonical histograms. Call sites pass
// these to Tracer.Histogram so the CLI, server and tests bucket
// identically.
var (
	// LatencyBuckets spans 1ms–65s in log-spaced steps (×2 per bucket).
	LatencyBuckets = ExpBuckets(0.001, 2, 17)
	// SizeBuckets spans 1–2^20 items (×4 per bucket).
	SizeBuckets = ExpBuckets(1, 4, 11)
	// SupportBuckets spans support fractions 0.001–1 (roughly ×2 steps).
	SupportBuckets = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1}
)

// MetricHelp maps sanitized Prometheus metric names to their `# HELP`
// text; WritePrometheus consults it for every exported family. Only the
// stable serving-layer and mining metrics are registered — dynamic names
// (per-worker counters, per-endpoint request counts) export without HELP.
var MetricHelp = map[string]string{
	"server_request_seconds":                "End-to-end /v1/explore request latency in seconds.",
	"server_explores":                       "Explorations actually run to completion or error.",
	"server_http_errors":                    "Requests answered with a 4xx/5xx status.",
	"server_rejected_saturated":             "Explorations rejected with 429 at the in-flight limit.",
	"server_explores_cancelled":             "Explorations aborted by timeout or client disconnect.",
	"server_universe_cache_hits":            "Universe-cache lookups that skipped discretization.",
	"server_universe_cache_misses":          "Universe-cache lookups that built a new universe.",
	"server_universe_cache_evictions":       "Universe-cache entries evicted by the LRU capacity bound.",
	"server_universe_cache_stale_evictions": "Universe-cache evictions that picked a stale-epoch entry over the LRU tail.",
	"server_appends":                        "Accepted dataset append batches (each bumps its dataset's epoch).",
	"server_append_rows":                    "Rows appended across accepted batches.",
	"server_universe_builds_incremental":    "Universe builds served by incremental append maintenance.",
	"server_universe_builds_rediscretized":  "Epoch-bump universe builds that re-discretized from scratch.",
	"server_drift_remines":                  "Background drift re-mines triggered by epoch bumps.",
	"server_drift_events":                   "Subgroup divergence t-threshold crossings detected between epochs.",
	"server_epochs_retired":                 "Pinned-replay cache entries aged out by the epoch-retention sweep.",
	"wal_records_appended":                  "Records appended to the write-ahead log's active segment.",
	"wal_replayed_records":                  "WAL records applied during startup recovery.",
	"wal_truncated_records":                 "Torn or checksum-failed records recovery truncated the log at.",
	"wal_snapshots_written":                 "Full-table snapshots committed by WAL compaction.",
	"wal_segments_deleted":                  "Sealed WAL segments deleted because a snapshot covers them.",
	"wal_fsync_seconds":                     "WAL fsync latency; one observation per group commit.",
	"server_batch_statistics":               "Statistics computed across /v1/explore/batch requests.",
	"server_panics_recovered":               "Handler panics recovered by the middleware (answered 500, daemon alive).",
	"server_explorations_truncated":         "Explorations answered 200 with a budget-truncated report.",
	"engine_panics_recovered":               "Worker and miner panics recovered into errors.",
	"engine_shards":                         "Row shards of the engine data plane in the last mining run.",
	"server_in_flight":                      "Explorations currently running.",
	"server_in_flight_max":                  "High-water mark of concurrent explorations.",
	"server_datasets":                       "Datasets loaded at startup.",
	"server_cached_universes":               "Universe-cache entries currently built.",
	"fpm_candidate_batch":                   "Candidate-batch sizes: Apriori level widths and FP-Growth conditional universe sizes.",
	"fpm_itemset_support":                   "Support fraction of emitted frequent itemsets.",
	"fpm_candidates":                        "Itemset candidates whose support was evaluated.",
	"fpm_pruned_support":                    "Candidates discarded as infrequent.",
	"fpm_pruned_polarity":                   "Combinations skipped by polarity pruning.",
	"fpm_itemsets_emitted":                  "Frequent itemsets returned by the miner.",
	"fpm_budget_max_candidates":             "Configured candidate budget of the last mining run (0 = unlimited).",
	"fpm_budget_max_itemsets":               "Configured itemset budget of the last mining run (0 = unlimited).",
	"fpm_budget_soft_deadline_ns":           "Configured soft mining deadline in nanoseconds (0 = none).",
	"fpm_budget_max_heap_bytes":             "Configured heap budget of the last mining run (0 = unlimited).",
	"fpm_budget_heap_bytes":                 "Heap high-water mark observed by the mining budget tracker.",
	"engine_pool_hits":                      "Buffer acquisitions served from the run pool's recycled storage.",
	"engine_pool_misses":                    "Buffer acquisitions that allocated fresh storage.",
	"bitvec_items_dense":                    "Universe items kept as dense bit vectors.",
	"bitvec_items_compressed":               "Universe items stored as compressed bitmaps.",
	"bitvec_containers_array":               "Array containers across the universe's compressed bitmaps.",
	"bitvec_containers_bitmap":              "Bitmap containers across the universe's compressed bitmaps.",
	"bitvec_containers_run":                 "Run containers across the universe's compressed bitmaps.",
	"bitvec_universe_bytes":                 "Row-set payload bytes actually held by the universe.",
	"bitvec_universe_dense_bytes":           "Row-set payload bytes an all-dense universe would hold.",

	// Windowed serving-layer families, hand-rendered by the server's SLO
	// engine on GET /metrics (labeled by endpoint class; the Trace
	// exposition itself has no label support).
	"server_window_latency_seconds": "Latency quantiles over the trailing long window, by endpoint class.",
	"server_window_requests":        "Requests served over the trailing long window, by endpoint class.",
	"server_window_errors":          "5xx answers over the trailing long window, by endpoint class.",
	"server_window_rejected":        "429 rejections over the trailing long window, by endpoint class.",
	"server_slo_burn_rate":          "Error-budget burn rate per objective and window (1.0 consumes the budget exactly at the allowed rate).",
	"server_slo_budget_remaining":   "Unconsumed error-budget fraction over the long window, per objective.",
}
