// Package bitvec provides the row-set representations used throughout the
// mining code: dense fixed-length bit vectors (Vector) and roaring-style
// compressed bitmaps (Compressed), unified behind the Set interface. Every
// item is associated with the set of dataset rows it covers; itemset
// supports and divergence accumulators are then computed by word-wise AND
// and popcount, which is the performance backbone of both the Apriori and
// FP-Growth implementations.
//
// The Set contract (see the interface doc in compressed.go) is the
// determinism seam: every *Range primitive visits set bits in ascending
// index order over word-aligned [loWord, hiWord) windows, so float
// accumulation order — and hence the ranked output — is identical whichever
// representation holds an item. Pack selects the representation per item by
// density at universe build time; DESIGN.md §11 documents the container
// formats and the selection rule.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty vector of
// length 0; use New to create one with a given length.
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a zeroed vector with n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewFull returns a vector with all n bits set.
func NewFull(n int) *Vector {
	v := New(n)
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
	return v
}

// FromIndices returns a vector of length n with the given bit positions set.
func FromIndices(n int, idx []int) *Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// trim clears any bits beyond the logical length in the last word.
func (v *Vector) trim() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i.
func (v *Vector) Set(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Set(%d) out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Clear(%d) out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// And sets v to v AND u and returns v. The vectors must have equal length.
func (v *Vector) And(u *Vector) *Vector {
	v.mustMatch(u)
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
	return v
}

// Or sets v to v OR u and returns v. The vectors must have equal length.
func (v *Vector) Or(u *Vector) *Vector {
	v.mustMatch(u)
	for i := range v.words {
		v.words[i] |= u.words[i]
	}
	return v
}

// AndNot sets v to v AND NOT u and returns v.
func (v *Vector) AndNot(u *Vector) *Vector {
	v.mustMatch(u)
	for i := range v.words {
		v.words[i] &^= u.words[i]
	}
	return v
}

// Not inverts all bits of v in place and returns v.
func (v *Vector) Not() *Vector {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trim()
	return v
}

// AndCount returns the popcount of v AND u without allocating.
func (v *Vector) AndCount(u *Vector) int {
	v.mustMatch(u)
	c := 0
	for i, w := range v.words {
		c += bits.OnesCount64(w & u.words[i])
	}
	return c
}

// AndInto stores v AND u into dst (which must have equal length) and returns
// dst. dst may alias v or u.
func (v *Vector) AndInto(u, dst *Vector) *Vector {
	v.mustMatch(u)
	v.mustMatch(dst)
	for i := range v.words {
		dst.words[i] = v.words[i] & u.words[i]
	}
	return dst
}

// Intersects reports whether v and u share at least one set bit.
func (v *Vector) Intersects(u *Vector) bool {
	v.mustMatch(u)
	for i, w := range v.words {
		if w&u.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every set bit of v is also set in u.
func (v *Vector) IsSubsetOf(u *Vector) bool {
	v.mustMatch(u)
	for i, w := range v.words {
		if w&^u.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and u have the same length and identical bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range v.words {
		if w != u.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each set bit index in increasing order.
func (v *Vector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Indices returns the indices of all set bits in increasing order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// SumFloat64 returns the sum of vals[i] over all set bits i.
// vals must have at least Len elements.
func (v *Vector) SumFloat64(vals []float64) float64 {
	if len(vals) < v.n {
		panic("bitvec: SumFloat64 slice too short")
	}
	s := 0.0
	v.ForEach(func(i int) { s += vals[i] })
	return s
}

// Moments returns, over the set bits i of v, the count, the sum of vals[i]
// and the sum of squares of vals[i]. It is the single pass used by divergence
// and Welch t-value accumulation.
func (v *Vector) Moments(vals []float64) (n int, sum, sumSq float64) {
	if len(vals) < v.n {
		panic("bitvec: Moments slice too short")
	}
	v.ForEach(func(i int) {
		x := vals[i]
		n++
		sum += x
		sumSq += x * x
	})
	return n, sum, sumSq
}

// AndMoments returns, over the set bits i of v AND u, the count, the sum
// of vals[i] and the sum of squares of vals[i] — the fused equivalent of
// v.Clone().And(u).Moments(vals) with no intermediate vector. It is the
// divergence-accumulation hot path: the AND happens word by word in
// registers, and per-bit work is only spent on the (typically sparse)
// intersection.
func (v *Vector) AndMoments(u *Vector, vals []float64) (n int, sum, sumSq float64) {
	v.mustMatch(u)
	if len(vals) < v.n {
		panic("bitvec: AndMoments slice too short")
	}
	for wi, w := range v.words {
		w &= u.words[wi]
		base := wi * wordBits
		for w != 0 {
			x := vals[base+bits.TrailingZeros64(w)]
			n++
			sum += x
			sumSq += x * x
			w &= w - 1
		}
	}
	return n, sum, sumSq
}

// NumWords returns the number of 64-bit words backing the vector. Word w
// covers bits [64w, 64w+64) ∩ [0, Len); the shard views below address
// sub-ranges of whole words so shard boundaries never split a word.
func (v *Vector) NumWords() int { return len(v.words) }

// CountRange returns the popcount of the words in [loWord, hiWord).
func (v *Vector) CountRange(loWord, hiWord int) int {
	c := 0
	for _, w := range v.words[loWord:hiWord] {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCountRange returns the popcount of v AND u restricted to the words in
// [loWord, hiWord) — the shard view of AndCount.
func (v *Vector) AndCountRange(u *Vector, loWord, hiWord int) int {
	v.mustMatch(u)
	c := 0
	for wi := loWord; wi < hiWord; wi++ {
		c += bits.OnesCount64(v.words[wi] & u.words[wi])
	}
	return c
}

// AndNotCountRange returns the popcount of v AND NOT u restricted to the
// words in [loWord, hiWord). Used to count rows whose outcome is ⊥ (set in
// the row mask, clear in the validity mask) shard by shard.
func (v *Vector) AndNotCountRange(u *Vector, loWord, hiWord int) int {
	v.mustMatch(u)
	c := 0
	for wi := loWord; wi < hiWord; wi++ {
		c += bits.OnesCount64(v.words[wi] &^ u.words[wi])
	}
	return c
}

// AndMomentsRange is AndMoments restricted to the words in [loWord,
// hiWord): over the set bits i of v AND u with 64·loWord ≤ i < 64·hiWord,
// it returns the count, the sum of vals[i] and the sum of squares. Merging
// the per-shard results of a word partition reproduces AndMoments exactly
// for integral-valued outcomes (the sums are then exact in float64, so
// addition order cannot matter).
func (v *Vector) AndMomentsRange(u *Vector, vals []float64, loWord, hiWord int) (n int, sum, sumSq float64) {
	v.mustMatch(u)
	if len(vals) < v.n {
		panic("bitvec: AndMomentsRange slice too short")
	}
	for wi := loWord; wi < hiWord; wi++ {
		w := v.words[wi] & u.words[wi]
		base := wi * wordBits
		for w != 0 {
			x := vals[base+bits.TrailingZeros64(w)]
			n++
			sum += x
			sumSq += x * x
			w &= w - 1
		}
	}
	return n, sum, sumSq
}

// ForEachRange calls fn for each set bit in the words [loWord, hiWord), in
// increasing order — the shard view of ForEach.
func (v *Vector) ForEachRange(loWord, hiWord int, fn func(i int)) {
	for wi := loWord; wi < hiWord; wi++ {
		w := v.words[wi]
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// String renders the vector as a 0/1 string, bit 0 first, for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (v *Vector) mustMatch(u *Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, u.n))
	}
}
