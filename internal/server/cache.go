package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/outcome"
)

// cacheKey identifies one discretization+universe build. Everything that
// influences stages 1–2 of the pipeline is part of the key; parameters
// that only affect mining (s, MaxLen, polarity, algorithm, workers) are
// deliberately absent so explorations with different mining settings
// share one universe. The epoch pins the build to one dataset version:
// requests arriving after an append miss the old entry and build (or
// incrementally grow) the new epoch's universe, while explorations
// already holding the old entry keep their consistent snapshot until the
// LRU ages it out.
type cacheKey struct {
	dataset   string
	epoch     uint64
	stat      string
	actual    string
	predicted string
	target    string
	criterion discretize.Criterion
	st        float64
}

// sameBuild reports whether two keys describe the same build apart from
// the dataset epoch.
func (k cacheKey) sameBuild(o cacheKey) bool {
	k.epoch, o.epoch = 0, 0
	return k == o
}

// cacheEntry holds the request-independent artifacts for one key: the
// table snapshot the build ran on, the outcome function, the item
// hierarchies and the precomputed universes for both exploration modes.
// All fields are written once by the build goroutine before ready is
// closed and are read-only afterwards, so entries are safe to share
// across concurrent explorations.
type cacheEntry struct {
	ready chan struct{} // closed when the build finishes (ok or not)
	err   error

	tab      *dataset.Table
	out      *outcome.Outcome
	excludes []string
	hs       *hierarchy.Set
	uni      map[core.Mode]*fpm.Universe
	// incremental marks an entry grown by fpm.AppendUniverse from a
	// prior-epoch entry rather than re-discretized from scratch.
	incremental bool
}

// built reports whether the entry finished building successfully, without
// blocking.
func (e *cacheEntry) built() bool {
	select {
	case <-e.ready:
		return e.err == nil
	default:
		return false
	}
}

// universeCache is a keyed singleflight LRU cache of cacheEntry values:
// at most max entries are retained (0 or negative = unbounded), and
// inserting past the bound evicts a victim. Eviction prefers stale-epoch
// entries — ones whose key epoch no longer matches their dataset's
// current epoch — over the plain LRU tail, so append churn on one
// dataset cannot wash distinct still-current keys out of the cache.
// Evicted entries stay valid for requests already holding them —
// eviction only drops the cache's reference, so in-flight explorations
// are unaffected.
type universeCache struct {
	mu             sync.Mutex
	max            int
	entries        map[cacheKey]*list.Element // values: elements of lru
	lru            *list.List                 // front = most recently used *lruItem
	evictions      *obs.Counter               // may be nil
	staleEvictions *obs.Counter               // may be nil
	// currentEpoch reports a dataset's live epoch for stale-preferring
	// eviction; nil treats every entry as current (plain LRU).
	currentEpoch func(dataset string) uint64
}

// lruItem is one recency-list node: the key is carried along so eviction
// from the list tail can delete the map entry too.
type lruItem struct {
	key   cacheKey
	entry *cacheEntry
}

func newUniverseCache(max int, evictions, staleEvictions *obs.Counter) *universeCache {
	return &universeCache{
		max:            max,
		entries:        map[cacheKey]*list.Element{},
		lru:            list.New(),
		evictions:      evictions,
		staleEvictions: staleEvictions,
	}
}

// len reports the number of successfully built (or in-flight) entries.
func (c *universeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get returns the entry for key, building it with build on a miss. The
// build runs in a detached goroutine so that cancelling the requesting
// context never aborts (or poisons) a build other requests may be
// waiting on; the caller only stops waiting. Failed builds are removed
// from the cache before ready is closed, so errors are returned to every
// current waiter but never cached. The second result reports whether the
// entry already existed (a cache hit).
func (c *universeCache) get(ctx context.Context, key cacheKey, build func(*cacheEntry) error) (*cacheEntry, bool, error) {
	c.mu.Lock()
	var e *cacheEntry
	el, hit := c.entries[key]
	if hit {
		e = el.Value.(*lruItem).entry
		c.lru.MoveToFront(el)
	} else {
		e = &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = c.lru.PushFront(&lruItem{key: key, entry: e})
		c.evictOverflowLocked()
		go func() {
			e.err = runBuild(build, e)
			if e.err != nil {
				c.remove(key, e)
			}
			close(e.ready)
		}()
	}
	c.mu.Unlock()

	select {
	case <-e.ready:
		return e, hit, e.err
	case <-ctx.Done():
		return nil, hit, fmt.Errorf("server: waiting for universe build: %w", ctx.Err())
	}
}

// peek returns the entry for key if it is cached and fully built, without
// building, blocking or touching recency. Epoch-pinned requests use it:
// an old epoch is servable exactly while its entry survives in the cache.
func (c *universeCache) peek(key cacheKey) (*cacheEntry, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := el.Value.(*lruItem).entry
	if !e.built() {
		return nil, false
	}
	return e, true
}

// prior returns the ready entry for the same build at the highest epoch
// below key.epoch, if any — the base an incremental append build grows
// from.
func (c *universeCache) prior(key cacheKey) *cacheEntry {
	c.mu.Lock()
	var best *cacheEntry
	var bestEpoch uint64
	for k, el := range c.entries {
		if !k.sameBuild(key) || k.epoch >= key.epoch {
			continue
		}
		e := el.Value.(*lruItem).entry
		if !e.built() {
			continue
		}
		if best == nil || k.epoch > bestEpoch {
			best, bestEpoch = e, k.epoch
		}
	}
	c.mu.Unlock()
	return best
}

// evictOverflowLocked drops entries until the cache fits its bound again.
// Victim selection prefers the least-recently-used *stale-epoch* entry (its
// dataset has moved past its epoch) and falls back to the plain LRU tail
// when every entry is current. Caller holds c.mu.
func (c *universeCache) evictOverflowLocked() {
	if c.max <= 0 {
		return
	}
	for c.lru.Len() > c.max {
		el := c.staleVictimLocked()
		stale := el != nil
		if el == nil {
			el = c.lru.Back()
		}
		it := el.Value.(*lruItem)
		c.lru.Remove(el)
		delete(c.entries, it.key)
		c.evictions.Add(1)
		if stale {
			c.staleEvictions.Add(1)
		}
	}
}

// staleVictimLocked scans from the LRU tail for the first entry whose key
// epoch is behind its dataset's current epoch; nil when all are current
// (or no epoch oracle is wired).
func (c *universeCache) staleVictimLocked() *list.Element {
	if c.currentEpoch == nil {
		return nil
	}
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		k := el.Value.(*lruItem).key
		if k.epoch != c.currentEpoch(k.dataset) {
			return el
		}
	}
	return nil
}

// retire drops every entry of the dataset at or below maxEpoch — the
// epoch-retention sweep. Retired pinned replays answer 410 Gone exactly
// like LRU-evicted ones; entries still held by in-flight explorations
// stay valid, only the cache's reference goes.
func (c *universeCache) retire(dataset string, maxEpoch uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, el := range c.entries {
		if k.dataset != dataset || k.epoch > maxEpoch {
			continue
		}
		c.lru.Remove(el)
		delete(c.entries, k)
		n++
	}
	return n
}

// remove deletes key from the cache, but only while it still maps to e:
// a failed build must not knock out a newer entry that replaced it after
// eviction.
func (c *universeCache) remove(key cacheKey, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok && el.Value.(*lruItem).entry == e {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// runBuild invokes build, converting a panic into an error: the build
// goroutine is detached, so an unrecovered panic there would kill the
// whole process instead of failing one entry. With the recover, a
// panicking build poisons only its own waiters — the error is returned
// to every request waiting on the entry and the entry is never cached.
func runBuild(build func(*cacheEntry) error, e *cacheEntry) (err error) {
	defer func() {
		if pe := engine.RecoverError(recover()); pe != nil {
			err = pe
		}
	}()
	return build(e)
}

// buildEntry runs pipeline stages 1–2 for one cache key on the given
// table: statistic resolution, tree discretization of every continuous
// attribute, flat hierarchies for the remaining categorical attributes,
// then universe precomputation for both exploration modes. The hierarchy
// assembly mirrors hdivexplorer.PipelineContext exactly so server
// explorations are indistinguishable from CLI ones. The tracer (usually
// the first requester's, possibly nil) receives the discretize spans.
func buildEntry(e *cacheEntry, tab *dataset.Table, key cacheKey, tracer *obs.Tracer) error {
	if err := faultinject.Hit(faultinject.SiteCacheFill); err != nil {
		return err
	}
	out, excludes, err := core.BuildStatistic(tab, key.stat, key.actual, key.predicted, key.target)
	if err != nil {
		return err
	}
	hs, err := discretize.TreeSet(tab, out, discretize.TreeOptions{
		Criterion:  key.criterion,
		MinSupport: key.st,
		Tracer:     tracer,
	}, excludes...)
	if err != nil {
		return err
	}
	skip := map[string]bool{}
	for _, x := range excludes {
		skip[x] = true
	}
	for _, f := range tab.Fields() {
		if f.Kind == dataset.Categorical && !skip[f.Name] {
			hs.Add(hierarchy.FlatCategorical(tab, f.Name))
		}
	}
	e.tab = tab
	e.out = out
	e.excludes = excludes
	e.hs = hs
	e.uni = map[core.Mode]*fpm.Universe{
		core.Hierarchical: fpm.GeneralizedUniverse(tab, hs, out),
		core.Base:         fpm.BaseUniverse(tab, hs, out),
	}
	return nil
}

// appendEntry builds the entry for a new epoch incrementally from a
// prior-epoch entry: the outcome is recomputed over the full table (its
// global moments must cover the appended rows), the discretization
// cutpoints and hierarchies are kept, and each universe's item bitvecs
// grow by appended tail words only. By fpm.AppendUniverse's contract the
// resulting universes are byte-identical to a from-scratch rebuild with
// the same items, so incremental and full paths are interchangeable.
func appendEntry(e *cacheEntry, tab *dataset.Table, key cacheKey, prior *cacheEntry) error {
	out, excludes, err := core.BuildStatistic(tab, key.stat, key.actual, key.predicted, key.target)
	if err != nil {
		return err
	}
	uni := make(map[core.Mode]*fpm.Universe, len(prior.uni))
	for mode, u := range prior.uni {
		grown, err := fpm.AppendUniverse(tab, u, out)
		if err != nil {
			return err
		}
		uni[mode] = grown
	}
	e.tab = tab
	e.out = out
	e.excludes = excludes
	e.hs = prior.hs
	e.uni = uni
	e.incremental = true
	return nil
}
