package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hdiv "repro"
	"repro/internal/obs"
)

// anomalyTable builds the planted-anomaly dataset used across the repo's
// end-to-end tests: the x > 80 tail is mispredicted.
func anomalyTable(t testing.TB) *hdiv.Table {
	t.Helper()
	n := 600
	x := make([]float64, n)
	y := make([]string, n)
	p := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 100)
		y[i] = "false"
		if i%2 == 0 {
			y[i] = "true"
		}
		p[i] = y[i]
		if x[i] > 80 {
			if p[i] == "true" {
				p[i] = "false"
			} else {
				p[i] = "true"
			}
		}
	}
	return hdiv.NewTableBuilder().
		AddFloat("x", x).
		AddCategorical("y", y).
		AddCategorical("p", p).
		MustBuild()
}

// slowTable builds a wide continuous dataset whose exploration at low
// support takes long enough to be cancelled mid-mine.
func slowTable(t *testing.T) *hdiv.Table {
	t.Helper()
	n := 4000
	b := hdiv.NewTableBuilder()
	for c := 0; c < 8; c++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = float64((i*37 + c*1009 + i*i%97) % 211)
		}
		b.AddFloat(fmt.Sprintf("f%d", c), col)
	}
	y := make([]string, n)
	p := make([]string, n)
	for i := range y {
		y[i] = "false"
		if i%2 == 0 {
			y[i] = "true"
		}
		p[i] = y[i]
		if (i*31)%17 == 0 {
			p[i] = "false"
		}
	}
	b.AddCategorical("y", y)
	b.AddCategorical("p", p)
	return b.MustBuild()
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postExplore(t *testing.T, h http.Handler, req ExploreRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body)))
	return rec
}

func TestHealthzAndDatasets(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/datasets", nil))
	if rec.Code != 200 {
		t.Fatalf("datasets = %d", rec.Code)
	}
	var infos []datasetInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "anomaly" || infos[0].Rows != 600 {
		t.Errorf("datasets = %+v", infos)
	}
	kinds := map[string]string{}
	for _, c := range infos[0].Columns {
		kinds[c.Name] = c.Kind
	}
	if kinds["x"] != "continuous" || kinds["y"] != "categorical" {
		t.Errorf("column kinds = %v", kinds)
	}
}

func TestLoadsCSVFromDisk(t *testing.T) {
	path := t.TempDir() + "/d.csv"
	if err := anomalyTable(t).WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "d", Path: path}}})
	if got := s.Datasets(); len(got) != 1 || got[0] != "d" {
		t.Errorf("Datasets() = %v", got)
	}
	if _, err := New(Config{Datasets: []DatasetConfig{{Name: "d", Path: path + ".missing"}}}); err == nil {
		t.Error("missing CSV should fail construction")
	}
}

// cliCSV renders the exploration the way `hdivexplorer -format csv` does:
// the same Pipeline call followed by Report.WriteCSV.
func cliCSV(t *testing.T, tab *hdiv.Table, req ExploreRequest) []byte {
	t.Helper()
	o, excl, err := hdiv.BuildStatistic(tab, req.Stat, req.Actual, req.Predicted, req.Target)
	if err != nil {
		t.Fatal(err)
	}
	opt := hdiv.PipelineOptions{
		TreeSupport:   req.ST,
		MinSupport:    req.S,
		MaxLen:        req.MaxLen,
		PolarityPrune: req.Polarity,
		Workers:       req.Workers,
		Exclude:       excl,
	}
	switch req.Mode {
	case "base":
		opt.Mode = hdiv.Base
	}
	switch req.Algorithm {
	case "apriori":
		opt.Algorithm = hdiv.Apriori
	}
	switch req.Criterion {
	case "entropy":
		opt.Criterion = hdiv.EntropyGain
	}
	rep, err := hdiv.Pipeline(tab, o, opt)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestConcurrentExploreMatchesCLI fires concurrent explorations with
// varied mining parameters and checks each CSV reply is byte-identical
// to what the CLI pipeline produces for the same parameters. Run under
// -race this also exercises cache sharing across goroutines.
func TestConcurrentExploreMatchesCLI(t *testing.T) {
	tab := anomalyTable(t)
	s := newTestServer(t, Config{
		Datasets:    []DatasetConfig{{Name: "anomaly", Table: tab}},
		MaxInFlight: 64, // above the 18 concurrent requests below: no 429s here
	})

	reqs := []ExploreRequest{
		{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv"},
		{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv", Workers: 4},
		{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv", Algorithm: "apriori"},
		{Dataset: "anomaly", Stat: "fpr", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv", Polarity: true},
		{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv", Mode: "base"},
		{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv", Criterion: "entropy", MaxLen: 2},
	}
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		want[i] = cliCSV(t, tab, r)
	}

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i, r := range reqs {
			wg.Add(1)
			go func(i int, r ExploreRequest) {
				defer wg.Done()
				rec := postExplore(t, s, r)
				if rec.Code != 200 {
					t.Errorf("req %d: status %d: %s", i, rec.Code, rec.Body.String())
					return
				}
				if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
					t.Errorf("req %d: Content-Type %q", i, ct)
				}
				if !bytes.Equal(rec.Body.Bytes(), want[i]) {
					t.Errorf("req %d: server CSV differs from CLI CSV\nserver:\n%s\ncli:\n%s",
						i, rec.Body.Bytes(), want[i])
				}
			}(i, r)
		}
	}
	wg.Wait()

	// All six requests share a dataset but differ in mining-only
	// parameters for only two (dataset, stat, criterion, st) keys.
	if n := s.cache.len(); n != 3 {
		t.Errorf("cache holds %d entries, want 3 (error/div, fpr/div, error/entropy)", n)
	}
}

// TestWarmCacheSkipsDiscretize asserts the observable cache contract:
// a cold request's trace contains the discretize and universe-build
// spans, a warm repeat's trace contains neither, and the lifetime
// metrics count the hit.
func TestWarmCacheSkipsDiscretize(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
		S: 0.05, ST: 0.1, Trace: true,
	}

	spanNames := func(rec *httptest.ResponseRecorder) map[string]bool {
		t.Helper()
		var rep struct {
			Trace struct {
				Spans []struct {
					Name string `json:"name"`
				} `json:"spans"`
			} `json:"trace"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("bad JSON reply: %v", err)
		}
		names := map[string]bool{}
		for _, sp := range rep.Trace.Spans {
			names[sp.Name] = true
		}
		return names
	}

	cold := postExplore(t, s, req)
	if cold.Code != 200 {
		t.Fatalf("cold: %d %s", cold.Code, cold.Body.String())
	}
	names := spanNames(cold)
	for _, want := range []string{obs.SpanDiscretize, obs.SpanMine} {
		if !names[want] {
			t.Errorf("cold trace missing span %q (have %v)", want, names)
		}
	}

	warm := postExplore(t, s, req)
	if warm.Code != 200 {
		t.Fatalf("warm: %d %s", warm.Code, warm.Body.String())
	}
	names = spanNames(warm)
	for _, absent := range []string{obs.SpanDiscretize, obs.SpanUniverse} {
		if names[absent] {
			t.Errorf("warm trace still contains span %q: stages 1-2 were re-run", absent)
		}
	}
	if !names[obs.SpanMine] {
		t.Errorf("warm trace missing mining span (have %v)", names)
	}

	snap := s.tracer.Snapshot()
	if snap.Counter(obs.CtrServerCacheMisses) != 1 || snap.Counter(obs.CtrServerCacheHits) != 1 {
		t.Errorf("cache counters: misses=%d hits=%d, want 1/1",
			snap.Counter(obs.CtrServerCacheMisses), snap.Counter(obs.CtrServerCacheHits))
	}
}

// TestCancelMidMineKeepsCacheIntact cancels a heavy exploration mid-mine
// via a tiny timeout_ms, checks the request returns promptly with 504,
// and then verifies a follow-up exploration over the same cached
// universe still matches the CLI byte for byte.
func TestCancelMidMineKeepsCacheIntact(t *testing.T) {
	tab := slowTable(t)
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "slow", Table: tab}}})
	heavy := ExploreRequest{
		Dataset: "slow", Stat: "error", Actual: "y", Predicted: "p",
		S: 0.002, ST: 0.05, Format: "csv", Algorithm: "apriori",
	}

	// Warm the cache first so the timeout below lands inside mining, not
	// inside the universe build.
	quick := heavy
	quick.S = 0.4
	if rec := postExplore(t, s, quick); rec.Code != 200 {
		t.Fatalf("warmup: %d %s", rec.Code, rec.Body.String())
	}

	cancelled := heavy
	cancelled.TimeoutMS = 25
	start := time.Now()
	rec := postExplore(t, s, cancelled)
	elapsed := time.Since(start)
	if rec.Code == 200 {
		t.Logf("mining finished inside %v; cancellation not exercised", elapsed)
	} else {
		if rec.Code != http.StatusGatewayTimeout {
			t.Errorf("cancelled request: status %d %s", rec.Code, rec.Body.String())
		}
		if elapsed > 2*time.Second {
			t.Errorf("cancelled request took %v, want prompt return", elapsed)
		}
		if got := s.tracer.Snapshot().Counter(obs.CtrServerCancelled); got == 0 {
			t.Error("cancelled exploration not counted")
		}
	}

	// The cached universe must be untouched: a moderate exploration over
	// it still matches a from-scratch CLI run exactly.
	check := heavy
	check.S = 0.3
	rec = postExplore(t, s, check)
	if rec.Code != 200 {
		t.Fatalf("post-cancel explore: %d %s", rec.Code, rec.Body.String())
	}
	if want := cliCSV(t, tab, check); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("post-cancel CSV differs from CLI:\nserver:\n%s\ncli:\n%s", rec.Body.Bytes(), want)
	}
}

// TestClientDisconnectCancels aborts the request context mid-mine and
// checks the handler notices (via the cancelled counter) promptly.
func TestClientDisconnectCancels(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "slow", Table: slowTable(t)}}})
	body, _ := json.Marshal(ExploreRequest{
		Dataset: "slow", Stat: "error", Actual: "y", Predicted: "p",
		S: 0.002, ST: 0.05, Algorithm: "apriori",
	})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body)).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}

// TestSaturationRejects fills the in-flight semaphore and checks the
// next exploration is turned away with 429 + Retry-After instead of
// queueing.
func TestSaturationRejects(t *testing.T) {
	s := newTestServer(t, Config{
		Datasets:    []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		MaxInFlight: 1,
	})
	s.sem <- struct{}{} // occupy the only slot
	rec := postExplore(t, s, ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated explore: status %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 reply missing Retry-After")
	}
	<-s.sem
	if rec := postExplore(t, s, ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
	}); rec.Code != 200 {
		t.Errorf("after slot freed: status %d %s", rec.Code, rec.Body.String())
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrServerRejected); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

// TestExploreErrors covers the request-validation failure paths, and
// that failed universe builds (bad column names) are not cached.
func TestExploreErrors(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	for name, tc := range map[string]struct {
		req  ExploreRequest
		code int
	}{
		"unknown dataset":   {ExploreRequest{Dataset: "nope"}, 404},
		"bad criterion":     {ExploreRequest{Dataset: "anomaly", Criterion: "nope"}, 400},
		"bad mode":          {ExploreRequest{Dataset: "anomaly", Mode: "nope"}, 400},
		"bad algorithm":     {ExploreRequest{Dataset: "anomaly", Algorithm: "nope"}, 400},
		"bad format":        {ExploreRequest{Dataset: "anomaly", Format: "nope"}, 400},
		"bad stat":          {ExploreRequest{Dataset: "anomaly", Stat: "nope", Actual: "y", Predicted: "p"}, 400},
		"missing label col": {ExploreRequest{Dataset: "anomaly", Stat: "fpr", Actual: "missing", Predicted: "p"}, 400},
	} {
		rec := postExplore(t, s, tc.req)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.code, rec.Body.String())
		}
	}
	if n := s.cache.len(); n != 0 {
		t.Errorf("failed builds left %d cache entries, want 0", n)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/explore", strings.NewReader(`{"bogus_field": 1}`)))
	if rec.Code != 400 {
		t.Errorf("unknown JSON field: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/explore", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/explore: status %d, want 405", rec.Code)
	}
}

// TestMetricsEndpoint checks /metrics renders the server counters in
// Prometheus text format after some traffic.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	if rec := postExplore(t, s, ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
	}); rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"server_requests_explore 1",
		"server_explores 1",
		"server_universe_cache_misses 1",
		"# TYPE server_datasets gauge",
		"server_datasets 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestGracefulShutdownDrains starts a real http.Server, begins an
// exploration, shuts the server down mid-request, and checks the
// in-flight exploration completes with a full, valid reply.
func TestGracefulShutdownDrains(t *testing.T) {
	tab := slowTable(t)
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "slow", Table: tab}}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Moderate request: the universe build over 8 continuous attributes
	// keeps the request in flight when Shutdown fires, while mining at
	// high support stays quick enough to drain well inside the budget.
	req := ExploreRequest{
		Dataset: "slow", Stat: "error", Actual: "y", Predicted: "p",
		S: 0.4, ST: 0.1, Format: "csv",
	}
	body, _ := json.Marshal(req)
	type result struct {
		code int
		body []byte
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/explore", "application/json", bytes.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resc <- result{code: resp.StatusCode, body: b, err: err}
	}()

	time.Sleep(30 * time.Millisecond) // let the request reach the handler
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v", err)
	}

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.code != 200 {
		t.Fatalf("in-flight request got %d: %s", res.code, res.body)
	}
	if want := cliCSV(t, tab, req); !bytes.Equal(res.body, want) {
		t.Error("drained reply truncated or corrupted")
	}
}
