// Command benchdiff compares two benchjson artifacts and flags ns/op,
// B/op and allocs/op regressions on the watched benchmarks:
//
//	benchdiff -old BENCH_PR2.json -new BENCH_PR4.json
//
// For every benchmark present in both files it prints the new/old ratio
// of each tracked metric. Watched benchmarks (-watch, a substring list
// defaulting to the paper's tracked runtime artifacts BenchmarkTable3
// and BenchmarkFigure2) whose ns/op ratio exceeds -threshold (default
// 2.0), or whose B/op or allocs/op ratio exceeds -alloc-threshold
// (default 2.0), emit a GitHub Actions `::warning::` annotation. By
// default the comparison is advisory: the exit status is 0 whether or
// not regressions are found, so CI surfaces the warning without failing
// the build. With -strict, watched regressions exit nonzero and fail
// the build — CI runs the allocation gate this way so B/op regressions
// on the tracked artifacts cannot land silently. Unreadable or
// unparseable inputs always exit nonzero; a missing -old baseline is
// reported and skipped (exit 0) so fresh branches without an inherited
// artifact still pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchFile mirrors the cmd/benchjson output layout.
type benchFile struct {
	Benchmarks []struct {
		Package string             `json:"package"`
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// trackedMetrics are the metrics compared, in display order. ns/op is
// the primary (a benchmark without it is skipped); the allocation
// metrics are compared when both files carry them (benchmarks run with
// -benchmem).
var trackedMetrics = []string{"ns/op", "B/op", "allocs/op"}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson file (required)")
	newPath := flag.String("new", "", "candidate benchjson file (required)")
	watch := flag.String("watch", "BenchmarkTable3,BenchmarkFigure2", "comma-separated benchmark name substrings that warn on regression")
	threshold := flag.Float64("threshold", 2.0, "ns/op ratio (new/old) above which a watched benchmark warns")
	allocThreshold := flag.Float64("alloc-threshold", 2.0, "B/op and allocs/op ratio (new/old) above which a watched benchmark warns")
	strict := flag.Bool("strict", false, "exit nonzero when a watched benchmark regresses beyond its threshold")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	regressions, err := run(os.Stdout, *oldPath, *newPath, strings.Split(*watch, ","), *threshold, *allocThreshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}

// load parses one benchjson artifact into a (package/name → metrics)
// map, keeping only the tracked metrics. Sub-benchmarks keep their full
// slash-separated names.
func load(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[string]map[string]float64{}
	for _, b := range f.Benchmarks {
		if _, ok := b.Metrics["ns/op"]; !ok {
			continue
		}
		kept := map[string]float64{}
		for _, metric := range trackedMetrics {
			if v, ok := b.Metrics[metric]; ok {
				kept[metric] = v
			}
		}
		m[b.Package+"/"+b.Name] = kept
	}
	return m, nil
}

// run prints the comparison and returns the number of watched metrics
// that regressed beyond their threshold.
func run(w io.Writer, oldPath, newPath string, watch []string, threshold, allocThreshold float64) (int, error) {
	oldM, err := load(oldPath)
	if os.IsNotExist(err) {
		// No inherited baseline (fresh branch): nothing to compare against.
		fmt.Fprintf(w, "benchdiff: baseline %s not found, skipping comparison\n", oldPath)
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	newM, err := load(newPath)
	if err != nil {
		return 0, err
	}

	watched := func(name string) bool {
		for _, sub := range watch {
			if sub = strings.TrimSpace(sub); sub != "" && strings.Contains(name, sub) {
				return true
			}
		}
		return false
	}

	names := make([]string, 0, len(newM))
	for name := range newM {
		if _, ok := oldM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "benchdiff: no common benchmarks between the two files")
		return 0, nil
	}

	regressions := 0
	fmt.Fprintf(w, "%-72s %14s %14s %8s\n", "benchmark", "old", "new", "ratio")
	for _, name := range names {
		for _, metric := range trackedMetrics {
			o, okOld := oldM[name][metric]
			n, okNew := newM[name][metric]
			if !okOld || !okNew {
				continue
			}
			ratio := n / o
			bar := threshold
			if metric != "ns/op" {
				bar = allocThreshold
			}
			mark := ""
			if watched(name) {
				mark = " [watched]"
				if o > 0 && ratio > bar {
					mark = " [REGRESSION]"
					regressions++
					fmt.Fprintf(w, "::warning title=benchmark regression::%s %s grew %.2fx (%.0f -> %.0f), over the %.1fx threshold\n",
						name, metric, ratio, o, n, bar)
				}
			}
			fmt.Fprintf(w, "%-72s %14.0f %14.0f %7.2fx%s\n", name+" "+metric, o, n, ratio, mark)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchdiff: %d watched metric(s) regressed beyond their threshold\n", regressions)
	} else {
		fmt.Fprintf(w, "benchdiff: no watched regressions beyond %.1fx ns/op, %.1fx B/op and allocs/op\n", threshold, allocThreshold)
	}
	return regressions, nil
}
