package stats

import (
	"math"
	"sort"
)

// NormalCDF returns the standard normal cumulative distribution function
// Φ(x), computed via the complementary error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// TwoSidedP returns the two-sided p-value of a t-statistic under the
// large-sample normal approximation: P(|Z| ≥ |t|). Subgroup exploration
// deals with samples of dozens to thousands of rows, where the t and
// normal distributions are practically indistinguishable; the
// approximation errs conservative-enough for screening and is exact in
// the limit.
func TwoSidedP(t float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	if math.IsNaN(t) {
		return 1
	}
	return 2 * NormalCDF(-math.Abs(t))
}

// BenjaminiHochberg applies the Benjamini–Hochberg step-up procedure at
// false-discovery-rate level alpha to a set of p-values. It returns a
// boolean slice parallel to ps marking the rejected (significant)
// hypotheses. Exploring thousands of subgroups is a textbook
// multiple-testing setting; DivExplorer-style reports should be screened
// through FDR control before any subgroup is called anomalous.
func BenjaminiHochberg(ps []float64, alpha float64) []bool {
	n := len(ps)
	out := make([]bool, n)
	if n == 0 || alpha <= 0 {
		return out
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ps[order[a]] < ps[order[b]] })
	// Find the largest k with p_(k) ≤ k/n·α.
	cut := -1
	for k, idx := range order {
		if ps[idx] <= float64(k+1)/float64(n)*alpha {
			cut = k
		}
	}
	for k := 0; k <= cut; k++ {
		out[order[k]] = true
	}
	return out
}

// BonferroniThreshold returns the per-test significance threshold for a
// family-wise error rate alpha over n tests.
func BonferroniThreshold(alpha float64, n int) float64 {
	if n <= 0 {
		return alpha
	}
	return alpha / float64(n)
}
