package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
		{-3, 0.0013498980},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalCDFProperties(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 10)
		p := NormalCDF(x)
		// Bounded, monotone via symmetry check.
		return p >= 0 && p <= 1 && math.Abs(p+NormalCDF(-x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoSidedP(t *testing.T) {
	if got := TwoSidedP(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("TwoSidedP(0) = %v, want 1", got)
	}
	if got := TwoSidedP(1.959963985); math.Abs(got-0.05) > 1e-8 {
		t.Errorf("TwoSidedP(1.96) = %v, want 0.05", got)
	}
	if got := TwoSidedP(-1.959963985); math.Abs(got-0.05) > 1e-8 {
		t.Error("TwoSidedP must be symmetric in t")
	}
	if TwoSidedP(math.Inf(1)) != 0 || TwoSidedP(math.Inf(-1)) != 0 {
		t.Error("infinite t must have p = 0")
	}
	if TwoSidedP(math.NaN()) != 1 {
		t.Error("NaN t must have p = 1")
	}
}

func TestBenjaminiHochbergKnownExample(t *testing.T) {
	// Classic worked example: 10 p-values at α = 0.05.
	ps := []float64{0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205, 0.212, 0.216}
	got := BenjaminiHochberg(ps, 0.05)
	// Thresholds k/10·0.05: 0.005, 0.010, 0.015, 0.020, 0.025, 0.030, ...
	// The largest k with p_(k) ≤ threshold is k = 2 (0.008 ≤ 0.010);
	// p_(3..5) ≈ 0.04 all exceed their thresholds.
	want := []bool{true, true, false, false, false, false, false, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BH = %v, want %v", got, want)
		}
	}
}

func TestBenjaminiHochbergStepUp(t *testing.T) {
	// The step-up property: a large p-value can rescue smaller ones.
	ps := []float64{0.01, 0.02, 0.03, 0.04}
	got := BenjaminiHochberg(ps, 0.05)
	// Thresholds: 0.0125, 0.025, 0.0375, 0.05. p_(4)=0.04 ≤ 0.05, so all
	// four are rejected even though p_(3)=0.03 alone misses 0.0375? No:
	// 0.03 ≤ 0.0375 anyway; the point is the largest k wins.
	for i, g := range got {
		if !g {
			t.Fatalf("index %d not rejected: %v", i, got)
		}
	}
}

func TestBenjaminiHochbergEdgeCases(t *testing.T) {
	if out := BenjaminiHochberg(nil, 0.05); len(out) != 0 {
		t.Error("empty input should give empty output")
	}
	out := BenjaminiHochberg([]float64{0.5}, 0)
	if out[0] {
		t.Error("alpha = 0 rejects nothing")
	}
	out = BenjaminiHochberg([]float64{0.9, 0.95}, 0.05)
	if out[0] || out[1] {
		t.Error("large p-values must not be rejected")
	}
}

// Property: BH rejections are a superset of Bonferroni rejections, and the
// rejected set is always a prefix of the sorted p-values.
func TestQuickBHDominatesBonferroni(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = r.Float64()
		}
		alpha := 0.01 + 0.2*r.Float64()
		bh := BenjaminiHochberg(ps, alpha)
		bonf := BonferroniThreshold(alpha, n)
		maxRejected := 0.0
		minAccepted := 2.0
		for i, rej := range bh {
			if ps[i] <= bonf && !rej {
				return false // BH must reject whatever Bonferroni rejects
			}
			if rej && ps[i] > maxRejected {
				maxRejected = ps[i]
			}
			if !rej && ps[i] < minAccepted {
				minAccepted = ps[i]
			}
		}
		return maxRejected <= minAccepted // rejected = prefix of sorted order
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBonferroniThreshold(t *testing.T) {
	if got := BonferroniThreshold(0.05, 10); got != 0.005 {
		t.Errorf("Bonferroni = %v", got)
	}
	if got := BonferroniThreshold(0.05, 0); got != 0.05 {
		t.Errorf("n=0 should return alpha, got %v", got)
	}
}
