package experiments

import (
	"strings"
	"testing"
	"time"
)

// testCfg keeps experiment tests fast: small datasets, small forest.
var testCfg = Config{
	Seed:        1,
	ForestTrees: 5,
	SizeOverride: map[string]int{
		"adult":          3_000,
		"bank":           3_000,
		"compas":         6_172,
		"folktables":     12_000,
		"german":         1_000,
		"intentions":     3_000,
		"synthetic-peak": 8_000,
		"wine":           3_000,
	},
}

func TestLoadAllWorkloads(t *testing.T) {
	for _, name := range append([]string{"folktables"}, ClassificationNames...) {
		w, err := Load(name, testCfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", name)
		}
		if w.Outcome.Len() != w.Table.NumRows() {
			t.Errorf("%s: outcome length mismatch", name)
		}
		hs, err := w.Hierarchies(0.1, 0)
		if err != nil {
			t.Fatalf("%s hierarchies: %v", name, err)
		}
		if err := hs.Validate(); err != nil {
			t.Errorf("%s: invalid hierarchies: %v", name, err)
		}
		if len(hs.AllItems()) == 0 {
			t.Errorf("%s: no items", name)
		}
	}
	if _, err := Load("nope", testCfg); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Row 0: whole dataset, Δ = 0, support 1.
	if rows[0].Divergence != 0 || rows[0].Support != 1 {
		t.Errorf("entire-dataset row wrong: %+v", rows[0])
	}
	// The paper's ordering: Δ(#prior>8) > Δ(#prior>3) > Δ(age<27) > 0, and
	// the age∩prior combo exceeds #prior>3 at small support.
	d3, d8, dAge, dBoth := rows[1].Divergence, rows[2].Divergence, rows[3].Divergence, rows[4].Divergence
	if !(d8 > d3 && d3 > dAge && dAge > 0 && dBoth > d3) {
		t.Errorf("Table I ordering violated: %+v", rows)
	}
	if rows[4].Support > 0.12 {
		t.Errorf("combo support %v too large", rows[4].Support)
	}
	txt := RenderTable1(rows)
	if !strings.Contains(txt, "Entire dataset") {
		t.Error("render missing rows")
	}
}

func TestFigure1Tree(t *testing.T) {
	txt, err := Figure1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "root sup=1.00") || !strings.Contains(txt, "prior") {
		t.Errorf("Figure 1 tree malformed:\n%s", txt)
	}
	// The tree must have at least two levels (internal items).
	if strings.Count(txt, "\n") < 4 {
		t.Errorf("tree too shallow:\n%s", txt)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][4]int{ // |D|, |A|, num, cat
		"adult":          {45_222, 11, 4, 7},
		"bank":           {45_211, 15, 7, 8},
		"compas":         {6_172, 6, 3, 3},
		"folktables":     {195_556, 10, 2, 8},
		"german":         {1_000, 21, 7, 14},
		"intentions":     {12_330, 17, 11, 6},
		"synthetic-peak": {10_000, 3, 3, 0},
		"wine":           {9_796, 11, 11, 0},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		w := want[r.Dataset]
		if r.Rows != w[0] || r.Attrs != w[1] || r.NumAttrs != w[2] || r.CatAttrs != w[3] {
			t.Errorf("%s: got (%d,%d,%d,%d), want %v", r.Dataset, r.Rows, r.Attrs, r.NumAttrs, r.CatAttrs, w)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	rows, err := Table3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 supports × 3 approaches
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	// Per support threshold: tree-generalized ≥ tree-base (superset
	// guarantee) and tree-base ≥ manual is the paper's typical finding; we
	// require the guarantee strictly and the manual comparison weakly.
	byS := map[float64]map[string]Table3Row{}
	for _, r := range rows {
		if byS[r.S] == nil {
			byS[r.S] = map[string]Table3Row{}
		}
		byS[r.S][r.Approach] = r
		if r.Support < r.S-1e-9 {
			t.Errorf("row below its support threshold: %+v", r)
		}
	}
	for s, m := range byS {
		if m["tree-generalized"].Divergence+1e-9 < m["tree-base"].Divergence {
			t.Errorf("s=%v: generalized Δ %v < base Δ %v", s,
				m["tree-generalized"].Divergence, m["tree-base"].Divergence)
		}
	}
	// Lowering s must not lower the best achievable divergence.
	if byS[0.01]["tree-generalized"].Divergence+1e-9 < byS[0.05]["tree-generalized"].Divergence {
		t.Error("smaller support found less divergent subgroup")
	}
}

func TestTable4Shapes(t *testing.T) {
	rows, err := Table4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 supports × 2 approaches
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	foundOCCPGroup := false
	for _, r := range rows {
		if r.Approach == "tree-generalized" && strings.Contains(r.Itemset, "OCCP=MGR") &&
			!strings.Contains(r.Itemset, "OCCP=MGR-") {
			foundOCCPGroup = true
		}
	}
	byS := map[float64]map[string]Table3Row{}
	for _, r := range rows {
		if byS[r.S] == nil {
			byS[r.S] = map[string]Table3Row{}
		}
		byS[r.S][r.Approach] = r
	}
	for s, m := range byS {
		if m["tree-generalized"].Divergence+1e-9 < m["tree-base"].Divergence {
			t.Errorf("s=%v: generalized %v < base %v", s,
				m["tree-generalized"].Divergence, m["tree-base"].Divergence)
		}
	}
	// The signature Table IV result: at some support the generalized top
	// itemset uses the OCCP supercategory item, unreachable by base
	// exploration.
	if !foundOCCPGroup {
		t.Log("rows:", rows)
		t.Error("no generalized top itemset used an OCCP supercategory item")
	}
}

func TestFigure2Superset(t *testing.T) {
	pts, err := Figure2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(ClassificationNames)*len(SweepSupports) {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.HierMax+1e-9 < p.BaseMax {
			t.Errorf("%s s=%v: hier %v < base %v", p.Dataset, p.S, p.HierMax, p.BaseMax)
		}
	}
	// On at least half the measurements the hierarchy should be strictly
	// better — the paper's headline quality result.
	strict := 0
	for _, p := range pts {
		if p.HierMax > p.BaseMax+1e-9 {
			strict++
		}
	}
	if strict*2 < len(pts) {
		t.Errorf("hierarchical strictly better on only %d/%d points", strict, len(pts))
	}
}

func TestFigure3aSuperset(t *testing.T) {
	pts, err := Figure3a(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.HierMax+1e-9 < p.BaseMax {
			t.Errorf("s=%v: hier %v < base %v", p.S, p.HierMax, p.BaseMax)
		}
	}
}

func TestFigure3bCriteriaComparable(t *testing.T) {
	pts, err := Figure3b(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The two criteria must be similarly effective (paper: "similar
	// effectiveness"): on average within 35% of each other.
	var sumD, sumE float64
	for _, p := range pts {
		sumD += p.Divergence
		sumE += p.Entropy
	}
	ratio := sumD / sumE
	if ratio < 0.65 || ratio > 1.55 {
		t.Errorf("criteria effectiveness ratio = %v, want ≈ 1", ratio)
	}
}

func TestFigure4PruningQualityAndCost(t *testing.T) {
	pts, err := Figure4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var totalRelLoss float64
	for _, p := range pts {
		if p.PrunedCandidates > p.CompleteCandidates {
			t.Errorf("%s s=%v: pruning increased candidates", p.Dataset, p.S)
		}
		if p.PrunedMax > p.CompleteMax+1e-9 {
			t.Errorf("%s s=%v: pruned found more than complete", p.Dataset, p.S)
		}
		if p.CompleteMax > 0 {
			rel := (p.CompleteMax - p.PrunedMax) / p.CompleteMax
			totalRelLoss += rel
			// Paper: the highest divergence is "the same or very close"
			// under pruning — any individual loss must stay slight.
			if rel > 0.15 {
				t.Errorf("%s s=%v: pruning lost %.0f%% of max divergence", p.Dataset, p.S, rel*100)
			}
		}
	}
	if avg := totalRelLoss / float64(len(pts)); avg > 0.04 {
		t.Errorf("average relative quality loss %v, want slight", avg)
	}
	// The attribute-heavy wine dataset must show a large candidate
	// reduction at the smallest support in the sweep.
	for _, p := range pts {
		if p.Dataset == "wine" && p.S == 0.05 {
			factor := float64(p.CompleteCandidates) / float64(p.PrunedCandidates)
			if factor < 2 {
				t.Errorf("wine pruning factor = %v, want ≫ 1", factor)
			}
		}
	}
}

func TestFigure5PeakRecovery(t *testing.T) {
	res, err := Figure5(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d, want 4", len(res))
	}
	find := func(s float64, mode string) *Fig5Result {
		for i := range res {
			if res[i].S == s && res[i].Mode == mode {
				return &res[i]
			}
		}
		return nil
	}
	for _, s := range []float64{0.05, 0.025} {
		base, hier := find(s, "base"), find(s, "hierarchical")
		if base == nil || hier == nil {
			t.Fatalf("missing results at s=%v", s)
		}
		if hier.Divergence+1e-9 < base.Divergence {
			t.Errorf("s=%v: hier Δ %v < base Δ %v", s, hier.Divergence, base.Divergence)
		}
	}
	// The paper's headline: at s=0.05 the generalized itemset constrains
	// all three attributes and is several times more divergent than base.
	h05, b05 := find(0.05, "hierarchical"), find(0.05, "base")
	if len(h05.Ranges) != 3 {
		t.Errorf("s=0.05 generalized itemset constrains %d attrs, want 3 (%s)", len(h05.Ranges), h05.Itemset)
	}
	if h05.Divergence < 2*b05.Divergence {
		t.Errorf("s=0.05: hier Δ %v not ≫ base Δ %v", h05.Divergence, b05.Divergence)
	}
	// Each range should bracket the corresponding peak coordinate [0,1,2].
	peak := map[string]float64{"a": 0, "b": 1, "c": 2}
	for attr, rg := range h05.Ranges {
		if !(rg[0] <= peak[attr] && peak[attr] <= rg[1]) {
			t.Errorf("range %v for %s does not bracket peak %v", rg, attr, peak[attr])
		}
	}
}

func TestFigure6SliceFinderFailureModes(t *testing.T) {
	res, err := Figure6(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	def, high := res[0], res[1]
	if high.Length <= def.Length {
		t.Errorf("T=1 slice not finer: %d vs %d", high.Length, def.Length)
	}
	if high.Support >= def.Support {
		t.Errorf("T=1 slice support %v not below default %v", high.Support, def.Support)
	}
	if high.Support >= 0.025 {
		t.Errorf("T=1 slice support %v, want below DivExplorer's smallest threshold", high.Support)
	}
}

func TestFigure7TreeBeatsQuantile(t *testing.T) {
	pts, err := Figure7(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, p := range pts {
		if p.TreeHier+1e-9 >= p.QuantileBest {
			wins++
		}
	}
	// Paper: "H-DivExplorer achieves the highest results for all the input
	// thresholds". Require it for at least all but one sweep point.
	if wins < len(pts)-1 {
		t.Errorf("tree-hier beat best-quantile on only %d/%d points", wins, len(pts))
	}
}

func TestFigure8Stability(t *testing.T) {
	pts, err := Figure8(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	byDS := map[string][]Fig8Point{}
	for _, p := range pts {
		byDS[p.Dataset] = append(byDS[p.Dataset], p)
		if p.HierMax+1e-9 < p.BaseMax {
			t.Errorf("%s st=%v: hier < base", p.Dataset, p.St)
		}
	}
	for name, series := range byDS {
		// Hierarchical exploration is stable for st ≤ 0.1: relative spread
		// of hier max Δ over st ∈ [0.01, 0.1] must be small, while base
		// exploration degrades for st < s (0.025).
		var hmin, hmax float64
		first := true
		var baseAtTiny, baseAtMid float64
		for _, p := range series {
			if p.St <= 0.1 {
				if first {
					hmin, hmax = p.HierMax, p.HierMax
					first = false
				} else {
					if p.HierMax < hmin {
						hmin = p.HierMax
					}
					if p.HierMax > hmax {
						hmax = p.HierMax
					}
				}
			}
			if p.St == 0.01 {
				baseAtTiny = p.BaseMax
			}
			if p.St == 0.05 {
				baseAtMid = p.BaseMax
			}
		}
		if hmin < 0.6*hmax {
			t.Errorf("%s: hierarchical unstable over st: [%v, %v]", name, hmin, hmax)
		}
		// For st=0.01 < s=0.025 the leaf items are finer than the
		// exploration support; base should do no better than at st=0.05.
		if baseAtTiny > baseAtMid+0.25*baseAtMid {
			t.Errorf("%s: base at st=0.01 (%v) unexpectedly beats st=0.05 (%v)", name, baseAtTiny, baseAtMid)
		}
	}
}

func TestPerfMeasurements(t *testing.T) {
	res, err := Perf(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"wine", "intentions"} {
		if res.DiscretizationTime[name] <= 0 {
			t.Errorf("%s: no discretization time", name)
		}
	}
	// Wine (11 continuous attrs) must show a larger average reduction
	// factor than adult (4 continuous attrs) — the 2^(n−1) scaling.
	if res.PolaritySpeedup["wine"] <= res.PolaritySpeedup["adult"] {
		t.Errorf("wine speedup %v ≤ adult %v", res.PolaritySpeedup["wine"], res.PolaritySpeedup["adult"])
	}
}

func TestSliceLineComparisonMatches(t *testing.T) {
	res, err := SliceLineComparison(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.Match {
			t.Errorf("s=%v: SliceLine best %q != DivExplorer best %q", r.S, r.SliceLineBest, r.DivExplorerBest)
		}
	}
}

func TestRunDispatcher(t *testing.T) {
	if len(IDs()) != 16 {
		t.Errorf("IDs = %v", IDs())
	}
	a, err := Run("table2", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "table2" || a.Title == "" || !strings.Contains(a.Text, "compas") {
		t.Errorf("artifact malformed: %+v", a)
	}
	if _, err := Run("nope", testCfg); err == nil {
		t.Error("unknown ID should fail")
	}
}

// The §V-A trade-off, both directions: on the isotropic synthetic-peak
// anomaly the exhaustive hierarchical lattice search dominates the
// combined tree's single partition; on compas the combined tree's
// conditional refinement can win. Either way both methods must produce
// non-trivial results.
func TestExtCombinedTree(t *testing.T) {
	rows, err := ExtCombinedTree(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TreeBest <= 0 || r.HierBest <= 0 || r.TreeTop == "" || r.HierTop == "" {
			t.Errorf("row incomplete: %+v", r)
		}
		if r.Dataset == "synthetic-peak" && r.HierBest+1e-9 < r.TreeBest {
			t.Errorf("peak s=%v: combined tree (%v) beat hierarchical (%v)",
				r.S, r.TreeBest, r.HierBest)
		}
	}
}

// Renderer smoke tests: every renderer produces a non-empty, well-formed
// header and one line per row/point.
func TestRenderers(t *testing.T) {
	rows1 := []Table1Row{{Subgroup: "x", FPR: 0.1, Divergence: 0.01, Support: 0.5}}
	if out := RenderTable1(rows1); !strings.Contains(out, "Data subgroup") || strings.Count(out, "\n") != 2 {
		t.Errorf("RenderTable1:\n%s", out)
	}
	rows2 := []Table2Row{{Dataset: "d", Rows: 10, Attrs: 3, NumAttrs: 2, CatAttrs: 1}}
	if out := RenderTable2(rows2); !strings.Contains(out, "|D|") {
		t.Errorf("RenderTable2:\n%s", out)
	}
	rows3 := []Table3Row{{S: 0.05, Approach: "manual", Itemset: "a>1", Support: 0.1, Divergence: 0.2, T: 3}}
	if out := RenderTable3(rows3); !strings.Contains(out, "manual") {
		t.Errorf("RenderTable3:\n%s", out)
	}
	f2 := []Fig2Point{{Dataset: "d", S: 0.05, BaseMax: 0.1, HierMax: 0.2}}
	if out := RenderFigure2(f2); !strings.Contains(out, "hier-maxΔ") {
		t.Errorf("RenderFigure2:\n%s", out)
	}
	f3a := []Fig3aPoint{{S: 0.05, BaseMax: 1, HierMax: 2}}
	if out := RenderFigure3a(f3a); strings.Count(out, "\n") != 2 {
		t.Errorf("RenderFigure3a:\n%s", out)
	}
	f3b := []Fig3bPoint{{Dataset: "d", S: 0.05, Divergence: 1, Entropy: 2}}
	if out := RenderFigure3b(f3b); !strings.Contains(out, "entropy-crit") {
		t.Errorf("RenderFigure3b:\n%s", out)
	}
	f4 := []Fig4Point{{Dataset: "d", S: 0.05, CompleteMax: 1, PrunedMax: 1, CompleteCandidates: 10, PrunedCandidates: 5}}
	if out := RenderFigure4(f4); !strings.Contains(out, "2.0x") {
		t.Errorf("RenderFigure4:\n%s", out)
	}
	f5 := []Fig5Result{{S: 0.05, Mode: "base", Itemset: "a>1", Ranges: map[string][2]float64{"a": {1, 2}}}}
	if out := RenderFigure5(f5); !strings.Contains(out, "a ∈") || !strings.Contains(out, "b unconstrained") {
		t.Errorf("RenderFigure5:\n%s", out)
	}
	f6 := []Fig6Result{{Threshold: 0.4, Slice: "a>1", Length: 1, Support: 0.1, EffectSize: 0.5}}
	if out := RenderFigure6(f6); !strings.Contains(out, "threshold") {
		t.Errorf("RenderFigure6:\n%s", out)
	}
	f7 := []Fig7Point{{S: 0.02, QuantileBest: 0.1, TreeHier: 0.4}}
	if out := RenderFigure7(f7); !strings.Contains(out, "quantile") {
		t.Errorf("RenderFigure7:\n%s", out)
	}
	f8 := []Fig8Point{{Dataset: "d", St: 0.05, BaseMax: 0.1, HierMax: 0.2}}
	if out := RenderFigure8(f8); !strings.Contains(out, "st") {
		t.Errorf("RenderFigure8:\n%s", out)
	}
	ext := []ExtTreeRow{{Dataset: "d", S: 0.05, TreeBest: 1, HierBest: 2, TreeTop: "a", HierTop: "b"}}
	if out := RenderExtCombinedTree(ext); !strings.Contains(out, "tree:") {
		t.Errorf("RenderExtCombinedTree:\n%s", out)
	}
	sl := []SliceLineResult{{S: 0.05, SliceLineBest: "a", DivExplorerBest: "a", Match: true}}
	if out := RenderSliceLine(sl); !strings.Contains(out, "match=true") {
		t.Errorf("RenderSliceLine:\n%s", out)
	}
	pr := &PerfResult{
		DiscretizationTime: map[string]time.Duration{"wine": time.Millisecond, "intentions": time.Millisecond},
		PolaritySpeedup:    map[string]float64{"wine": 3.5},
	}
	if out := RenderPerf(pr); !strings.Contains(out, "wine") {
		t.Errorf("RenderPerf:\n%s", out)
	}
}
