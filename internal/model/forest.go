package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// ForestOptions configures random-forest training.
type ForestOptions struct {
	// NumTrees is the ensemble size (default 50).
	NumTrees int
	// MaxDepth bounds each tree (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum rows per leaf (default 1).
	MinLeaf int
	// FeatureFraction is the per-split feature sample; 0 means sqrt(p)/p,
	// the usual random-forest default.
	FeatureFraction float64
	// Seed makes training deterministic.
	Seed int64
}

// Forest is a bagged ensemble of decision trees with majority voting.
type Forest struct {
	trees []*Tree
}

// TrainForest fits a random forest: each tree is trained on a bootstrap
// sample of the rows with per-split feature subsampling.
func TrainForest(t *dataset.Table, features []string, labels []bool, opt ForestOptions) (*Forest, error) {
	if len(labels) != t.NumRows() {
		return nil, fmt.Errorf("model: %d labels for %d rows", len(labels), t.NumRows())
	}
	if opt.NumTrees <= 0 {
		opt.NumTrees = 50
	}
	if opt.MinLeaf <= 0 {
		opt.MinLeaf = 1
	}
	frac := opt.FeatureFraction
	if frac <= 0 {
		frac = math.Sqrt(float64(len(features))) / float64(len(features))
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	f := &Forest{}
	n := t.NumRows()
	for k := 0; k < opt.NumTrees; k++ {
		// Bootstrap sample of row indices.
		sample := make([]int, n)
		for i := range sample {
			sample[i] = rng.Intn(n)
		}
		boot := t.FilterRows(sample)
		bootLabels := make([]bool, n)
		for i, r := range sample {
			bootLabels[i] = labels[r]
		}
		tr, err := TrainTree(boot, features, bootLabels, TreeOptions{
			MaxDepth:        opt.MaxDepth,
			MinLeaf:         opt.MinLeaf,
			FeatureFraction: frac,
			rng:             rand.New(rand.NewSource(rng.Int63())),
		})
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tr)
	}
	return f, nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// PredictProb returns the mean positive-class probability over the
// ensemble for every row.
func (f *Forest) PredictProb(t *dataset.Table) ([]float64, error) {
	sum := make([]float64, t.NumRows())
	for _, tr := range f.trees {
		p, err := tr.PredictProb(t)
		if err != nil {
			return nil, err
		}
		for i, v := range p {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(len(f.trees))
	}
	return sum, nil
}

// Predict returns the majority-vote class prediction for every row.
func (f *Forest) Predict(t *dataset.Table) ([]bool, error) {
	p, err := f.PredictProb(t)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(p))
	for i, v := range p {
		out[i] = v >= 0.5
	}
	return out, nil
}

// Accuracy returns the fraction of predictions matching the labels.
func Accuracy(pred, labels []bool) float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("model: %d predictions vs %d labels", len(pred), len(labels)))
	}
	ok := 0
	for i := range pred {
		if pred[i] == labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(pred))
}
