// Package server implements the H-DivExplorer exploration service: an
// http.Handler that loads CSV datasets once at startup and answers
// exploration requests over them.
//
// Endpoints:
//
//	POST /v1/explore   run an exploration; JSON request, JSON or CSV reply
//	GET  /v1/datasets  list the loaded datasets with their schemas
//	GET  /healthz      liveness probe
//	GET  /metrics      server counters in Prometheus text exposition format
//
// The expensive, request-independent pipeline stages — statistic
// construction, divergence-aware tree discretization and item-universe
// precomputation — are cached per (dataset, statistic columns, split
// criterion, tree support st). The first request with a given key builds
// the entry in a detached goroutine; concurrent requests for the same key
// share that single build, and every later request skips straight to
// mining. Universes are never mutated by mining, so a cancelled or
// timed-out request leaves the cached entry intact.
//
// Each exploration honours the request context: client disconnects and
// per-request timeouts cancel mining at candidate granularity. A bounded
// semaphore caps concurrent explorations; requests beyond the cap are
// rejected immediately with 429 rather than queued, so saturation is
// visible to callers and the server's memory stays bounded.
package server
