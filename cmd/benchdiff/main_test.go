package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// defaults mirrors the -metrics default for tests exercising the classic
// microbenchmark comparison.
var defaults = splitList(defaultMetrics)

// writeBench writes a benchfmt artifact with the given per-benchmark
// metrics and returns its path.
func writeBench(t *testing.T, name string, benches map[string]map[string]float64) string {
	t.Helper()
	return writeBenchAborted(t, name, benches, false)
}

func writeBenchAborted(t *testing.T, name string, benches map[string]map[string]float64, aborted bool) string {
	t.Helper()
	f := benchfmt.Output{Aborted: aborted}
	for bname, metrics := range benches {
		f.Benchmarks = append(f.Benchmarks, benchfmt.Benchmark{
			Package: "repro", Name: bname, Metrics: metrics,
		})
	}
	path := filepath.Join(t.TempDir(), name)
	if err := benchfmt.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunAllocRegression pins the satellite contract: a watched benchmark
// whose B/op grows past -alloc-threshold warns even when its ns/op is
// fine, unwatched benchmarks never warn, and the exit stays advisory
// (nil error).
func TestRunAllocRegression(t *testing.T) {
	oldPath := writeBench(t, "old.json", map[string]map[string]float64{
		"BenchmarkTable3":    {"ns/op": 100, "B/op": 1000, "allocs/op": 10},
		"BenchmarkUnrelated": {"ns/op": 100, "B/op": 50},
	})
	newPath := writeBench(t, "new.json", map[string]map[string]float64{
		"BenchmarkTable3":    {"ns/op": 150, "B/op": 2500, "allocs/op": 12},
		"BenchmarkUnrelated": {"ns/op": 1000, "B/op": 500},
	})
	var out bytes.Buffer
	regs, err := run(&out, oldPath, newPath, []string{"BenchmarkTable3"}, defaults, 2.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 1 {
		t.Errorf("run returned %d regressions, want 1 (the -strict exit signal)", regs)
	}
	s := out.String()
	if !strings.Contains(s, "::warning title=benchmark regression::repro/BenchmarkTable3 B/op grew 2.50x") {
		t.Errorf("no B/op regression warning:\n%s", s)
	}
	if strings.Contains(s, "BenchmarkTable3 ns/op grew") || strings.Contains(s, "allocs/op grew") {
		t.Errorf("warned on metrics inside their threshold:\n%s", s)
	}
	if strings.Contains(s, "BenchmarkUnrelated ns/op grew") {
		t.Errorf("unwatched benchmark warned:\n%s", s)
	}
	// Every common benchmark/metric pair gets a comparison row.
	for _, row := range []string{
		"BenchmarkTable3 ns/op", "BenchmarkTable3 B/op", "BenchmarkTable3 allocs/op",
		"BenchmarkUnrelated ns/op", "BenchmarkUnrelated B/op",
	} {
		if !strings.Contains(s, row) {
			t.Errorf("missing comparison row %q:\n%s", row, s)
		}
	}
	if !strings.Contains(s, "[REGRESSION]") || !strings.Contains(s, "1 watched metric(s) regressed") {
		t.Errorf("regression summary missing:\n%s", s)
	}
}

// TestRunNsOpRegressionThreshold checks the ns/op and alloc thresholds
// are independent knobs.
func TestRunNsOpRegressionThreshold(t *testing.T) {
	oldPath := writeBench(t, "old.json", map[string]map[string]float64{
		"BenchmarkFigure2": {"ns/op": 100, "B/op": 100},
	})
	newPath := writeBench(t, "new.json", map[string]map[string]float64{
		"BenchmarkFigure2": {"ns/op": 350, "B/op": 120},
	})
	var out bytes.Buffer
	regs, err := run(&out, oldPath, newPath, []string{"BenchmarkFigure2"}, defaults, 3.0, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 2 {
		t.Errorf("run returned %d regressions, want 2", regs)
	}
	s := out.String()
	if !strings.Contains(s, "BenchmarkFigure2 ns/op grew 3.50x") {
		t.Errorf("ns/op regression over its own threshold not flagged:\n%s", s)
	}
	if !strings.Contains(s, "BenchmarkFigure2 B/op grew 1.20x") {
		t.Errorf("B/op regression over the alloc threshold not flagged:\n%s", s)
	}
}

// TestRunNoAllocMetrics checks artifacts produced without -benchmem
// (no B/op or allocs/op) still compare cleanly on ns/op alone.
func TestRunNoAllocMetrics(t *testing.T) {
	oldPath := writeBench(t, "old.json", map[string]map[string]float64{
		"BenchmarkTable3": {"ns/op": 100},
	})
	newPath := writeBench(t, "new.json", map[string]map[string]float64{
		"BenchmarkTable3": {"ns/op": 110},
	})
	var out bytes.Buffer
	regs, err := run(&out, oldPath, newPath, []string{"BenchmarkTable3"}, defaults, 2.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 0 {
		t.Errorf("run returned %d regressions, want 0", regs)
	}
	s := out.String()
	if strings.Contains(s, "BenchmarkTable3 B/op") || strings.Contains(s, "BenchmarkTable3 allocs/op") {
		t.Errorf("alloc rows fabricated without -benchmem data:\n%s", s)
	}
	if !strings.Contains(s, "no watched regressions") {
		t.Errorf("clean comparison not reported:\n%s", s)
	}
}

// TestRunMissingBaseline checks a fresh branch without an inherited
// artifact skips the comparison instead of failing.
func TestRunMissingBaseline(t *testing.T) {
	newPath := writeBench(t, "new.json", map[string]map[string]float64{
		"BenchmarkTable3": {"ns/op": 100},
	})
	var out bytes.Buffer
	regs, err := run(&out, filepath.Join(t.TempDir(), "absent.json"), newPath, nil, defaults, 2.0, 2.0)
	if err != nil {
		t.Fatalf("missing baseline must not fail: %v", err)
	}
	if regs != 0 {
		t.Errorf("run returned %d regressions on a skipped comparison, want 0", regs)
	}
	if !strings.Contains(out.String(), "skipping comparison") {
		t.Errorf("skip not reported: %s", out.String())
	}
}

// TestRunCustomMetrics pins the load-generator comparison path: latency
// quantiles tracked via -metrics diff like any other metric (gated by
// -threshold, not -alloc-threshold), benchmarks without any tracked
// metric are skipped, and an aborted candidate artifact is called out.
func TestRunCustomMetrics(t *testing.T) {
	oldPath := writeBench(t, "old.json", map[string]map[string]float64{
		"BenchmarkLoadGen/explore": {"p99-ns": 1e6, "err-rate": 0.01, "ns/op": 5e5},
		"BenchmarkTable3":          {"ns/op": 100}, // no p99-ns: skipped
	})
	newPath := writeBenchAborted(t, "new.json", map[string]map[string]float64{
		"BenchmarkLoadGen/explore": {"p99-ns": 2.5e6, "err-rate": 0.01, "ns/op": 5e5},
		"BenchmarkTable3":          {"ns/op": 400},
	}, true)
	var out bytes.Buffer
	regs, err := run(&out, oldPath, newPath, []string{"BenchmarkLoadGen"},
		[]string{"p99-ns", "err-rate"}, 2.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regs != 1 {
		t.Errorf("run returned %d regressions, want 1 (p99-ns 2.5x)", regs)
	}
	s := out.String()
	if !strings.Contains(s, "BenchmarkLoadGen/explore p99-ns grew 2.50x") {
		t.Errorf("p99 regression not flagged:\n%s", s)
	}
	if strings.Contains(s, "BenchmarkTable3") {
		t.Errorf("benchmark without tracked metrics compared anyway:\n%s", s)
	}
	if !strings.Contains(s, "marked aborted") {
		t.Errorf("aborted candidate not called out:\n%s", s)
	}
}
