package treebaseline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/discretize"
	"repro/internal/outcome"
)

func peakFixture(t *testing.T, n int) (*datagen.Classified, *outcome.Outcome) {
	t.Helper()
	d := datagen.SyntheticPeak(datagen.Config{N: n, Seed: 1})
	o := outcome.ErrorRate(d.Actual, d.Predicted)
	return &d, o
}

func TestLeavesPartitionDataset(t *testing.T) {
	d, o := peakFixture(t, 4000)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) < 2 {
		t.Fatalf("tree did not split: %d leaves", len(leaves))
	}
	union := bitvec.New(d.Table.NumRows())
	total := 0
	for _, l := range leaves {
		rows := l.Itemset.Rows(d.Table)
		if rows.Count() != l.Count {
			t.Fatalf("leaf %v count mismatch", l.Itemset)
		}
		if rows.Intersects(union) {
			t.Fatalf("leaf %v overlaps another leaf", l.Itemset)
		}
		union.Or(rows)
		total += l.Count
	}
	if total != d.Table.NumRows() {
		t.Fatalf("leaves cover %d of %d rows", total, d.Table.NumRows())
	}
}

func TestSupportConstraint(t *testing.T) {
	d, o := peakFixture(t, 3000)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves {
		if l.Support < 0.1-1e-12 {
			t.Errorf("leaf %v below support", l.String())
		}
	}
}

func TestSortedByAbsDivergence(t *testing.T) {
	d, o := peakFixture(t, 3000)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(leaves); i++ {
		if math.Abs(leaves[i].Divergence) > math.Abs(leaves[i-1].Divergence)+1e-12 {
			t.Fatal("leaves not sorted by |divergence|")
		}
	}
}

func TestMaxDepth(t *testing.T) {
	d, o := peakFixture(t, 3000)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.01, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) > 4 {
		t.Errorf("depth-2 tree has %d leaves", len(leaves))
	}
}

func TestAttrsRestriction(t *testing.T) {
	d, o := peakFixture(t, 3000)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.05, Attrs: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves {
		for _, it := range l.Itemset {
			if it.Attr != "a" {
				t.Fatalf("restricted tree split on %q", it.Attr)
			}
		}
	}
	if _, err := Grow(d.Table, o, Options{MinSupport: 0.05, Attrs: []string{"nope"}}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := Grow(d.Table, o, Options{MinSupport: 0}); err == nil {
		t.Error("bad support should fail")
	}
}

func TestCategoricalSplits(t *testing.T) {
	d := datagen.Compas(datagen.Config{N: 4000, Seed: 2})
	o := outcome.FalsePositiveRate(d.Actual, d.Predicted)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Some leaf should constrain a categorical attribute (race/sex/charge
	// carry signal in the compas analog).
	foundCat := false
	for _, l := range leaves {
		for _, it := range l.Itemset {
			if len(it.Codes) > 0 {
				foundCat = true
			}
		}
	}
	if !foundCat {
		t.Log("no categorical split chosen (acceptable, signal-dependent)")
	}
	// Leaves still partition.
	total := 0
	for _, l := range leaves {
		total += l.Count
	}
	if total != d.Table.NumRows() {
		t.Fatalf("leaves cover %d of %d", total, d.Table.NumRows())
	}
}

// The paper's §V-A argument: the combined tree's best leaf is at most as
// divergent as what hierarchical exploration finds at the same support,
// because the tree's partition is one path through the lattice the
// explorer searches exhaustively.
func TestHierarchicalExplorationDominatesCombinedTree(t *testing.T) {
	d, o := peakFixture(t, 10_000)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	bestLeaf := 0.0
	for _, l := range leaves {
		if v := math.Abs(l.Divergence); v > bestLeaf {
			bestLeaf = v
		}
	}
	hs, err := discretize.TreeSet(d.Table, o, discretize.TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Explore(d.Table, core.Config{
		Outcome: o, Hierarchies: hs, MinSupport: 0.05, Mode: core.Hierarchical,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxAbsDivergence() < bestLeaf {
		t.Errorf("hierarchical exploration (%v) below combined tree (%v)",
			rep.MaxAbsDivergence(), bestLeaf)
	}
}

func TestLeafString(t *testing.T) {
	d, o := peakFixture(t, 2000)
	leaves, err := Grow(d.Table, o, Options{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(leaves[0].String(), "Δ=") {
		t.Errorf("String = %q", leaves[0].String())
	}
}
