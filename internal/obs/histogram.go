package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution of float64 observations:
// request latencies, batch sizes, support fractions. Buckets are chosen
// at construction (typically log-spaced via ExpBuckets) and never change,
// so Observe is lock-free — a binary search over the bounds plus two
// atomic adds — and safe for concurrent use from mining worker
// goroutines. A nil *Histogram ignores Observe, mirroring the package's
// nil-safe contract.
//
// The exported snapshot follows Prometheus histogram semantics: one
// cumulative count per upper bound plus an implicit +Inf bucket, a total
// observation count and a value sum, rendered by Trace.WritePrometheus as
// the `_bucket`/`_sum`/`_count` series.
type Histogram struct {
	bounds    []float64      // sorted upper bounds (inclusive), excluding +Inf
	bins      []atomic.Int64 // len(bounds)+1; the last bin is the +Inf overflow
	count     atomic.Int64
	sum       atomic.Uint64              // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[Exemplar] // per-bin latest exemplar, aligned with bins
}

// newHistogram builds a histogram over the given bucket upper bounds.
// Bounds are copied, sorted and deduplicated; an empty slice yields a
// single +Inf bucket (count/sum only).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if math.IsInf(b, +1) || math.IsNaN(b) {
			continue
		}
		if i > 0 && len(uniq) > 0 && b == uniq[len(uniq)-1] {
			continue
		}
		uniq = append(uniq, b)
	}
	return &Histogram{
		bounds:    uniq,
		bins:      make([]atomic.Int64, len(uniq)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(uniq)+1),
	}
}

// Exemplar ties one histogram observation back to the request that
// produced it, in the OpenMetrics sense: a label value (the request ID),
// the observed value and the observation time. Each bucket retains its
// most recent exemplar.
type Exemplar struct {
	Label    string  `json:"request_id"`
	Value    float64 `json:"value"`
	UnixNano int64   `json:"unix_nano"`
}

// Observe records one value. Values above the largest bound land in the
// implicit +Inf bucket; NaN observations are dropped. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound b with v <= b; len(bounds) means +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.bins[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value like Observe and additionally tags
// the bucket it lands in with an exemplar carrying the given label
// (typically a request ID). The bucket keeps only its latest exemplar;
// WriteOpenMetrics renders them on the `_bucket` lines. No-op on nil, on
// NaN, and (exemplar-wise) on an empty label.
func (h *Histogram) ObserveExemplar(v float64, label string, now int64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.bins[i].Add(1)
	h.count.Add(1)
	if label != "" && i < len(h.exemplars) {
		h.exemplars[i].Store(&Exemplar{Label: label, Value: v, UnixNano: now})
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot captures the histogram as an immutable record. Bin reads are
// individually atomic but not mutually consistent under concurrent
// Observe; the record is repaired so Count is never below the bin total.
func (h *Histogram) snapshot() HistogramRecord {
	rec := HistogramRecord{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bins)),
		Sum:    h.Sum(),
	}
	var total int64
	for i := range h.bins {
		c := h.bins[i].Load()
		rec.Counts[i] = c
		total += c
	}
	rec.Count = h.count.Load()
	if rec.Count < total {
		rec.Count = total
	}
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			if rec.Exemplars == nil {
				rec.Exemplars = make([]*Exemplar, len(h.bins))
			}
			rec.Exemplars[i] = ex
		}
	}
	return rec
}

// add folds another record's bins into the histogram; bounds must match
// exactly (the caller checks). Used by Tracer.Absorb.
func (h *Histogram) add(rec HistogramRecord) {
	for i := range rec.Counts {
		if i < len(h.bins) {
			h.bins[i].Add(rec.Counts[i])
		}
	}
	for i, ex := range rec.Exemplars {
		if ex != nil && i < len(h.exemplars) {
			h.exemplars[i].Store(ex)
		}
	}
	h.count.Add(rec.Count)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + rec.Sum)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramRecord is the immutable snapshot of one histogram: per-bucket
// (non-cumulative) counts aligned with Bounds plus the trailing +Inf
// bucket, and the Prometheus-style sum and count.
type HistogramRecord struct {
	// Bounds are the inclusive upper bounds; Counts has len(Bounds)+1
	// entries, the last being the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	// Exemplars, when present, is aligned with Counts: the latest exemplar
	// observed in each bucket, nil for buckets without one.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucketed
// counts, attributing each bucket's mass to its upper bound — the same
// upper-bound estimate Prometheus' histogram_quantile uses. A quantile
// that lands in the +Inf overflow bucket clamps to the highest finite
// bound (again matching histogram_quantile), so downstream SLO and
// burn-rate arithmetic never sees an infinite latency; the clamp is an
// underestimate, which choosing wide enough top buckets avoids. Returns
// NaN on an empty record or on a record with no finite bounds.
func (r HistogramRecord) Quantile(q float64) float64 {
	if r.Count == 0 || len(r.Bounds) == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(r.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range r.Counts {
		cum += c
		if cum >= rank {
			if i < len(r.Bounds) {
				return r.Bounds[i]
			}
			break
		}
	}
	return r.Bounds[len(r.Bounds)-1]
}

// ExpBuckets returns n log-spaced bucket upper bounds starting at min and
// multiplying by factor: min, min·factor, …, min·factor^(n−1). It is the
// bound generator behind the package's default latency/size buckets.
func ExpBuckets(min, factor float64, n int) []float64 {
	if n <= 0 || min <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds). Returns nil (a
// usable no-op histogram) on a nil tracer. Hot loops should hoist the
// lookup and call Observe on the result.
func (t *Tracer) Histogram(name string, bounds []float64) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		t.histograms[name] = h
	}
	return h
}
