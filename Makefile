# Development targets for the H-DivExplorer reproduction.
#
#   make check        vet + build + race tests + bench/trace smoke (CI entry)
#   make test         go test ./...
#   make race         go test -race ./...
#   make bench        full benchmark suite (slow; paper artifacts + ablations)
#   make smoke        1-iteration pipeline benches + CLI trace-JSON round trip

GO ?= go
# BENCHTIME feeds -benchtime: the default 1s gives stable numbers; CI
# passes 1x for a fast structural run. BENCHOUT is the JSON artifact.
BENCHTIME ?= 1s
BENCHOUT ?= BENCH_PR2.json

.PHONY: check vet build test race bench smoke fmt

check: vet build race smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the full suite and also writes $(BENCHOUT): a JSON record
# per benchmark (name, iterations, ns/op, B/op, allocs/op and custom
# counters) parsed from the live output by cmd/benchjson, which fails
# the pipe when the stream contains FAIL lines or no benchmarks.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -out $(BENCHOUT)

# smoke runs the pipeline benchmarks once each (reporting the mining
# counters) and exercises the CLI trace path end to end: mkdata generates
# a dataset, hdivexplorer runs with -trace-json, and the snapshot must be
# parseable JSON with a non-empty span list.
smoke:
	$(GO) test -run='^$$' -bench='BenchmarkPipeline' -benchtime=1x .
	rm -rf .smoke && mkdir .smoke
	$(GO) run ./cmd/mkdata -dataset compas -n 1000 -out .smoke
	$(GO) run ./cmd/hdivexplorer -data .smoke/compas.csv \
		-actual label -predicted prediction -stat fpr -polarity \
		-trace-json .smoke/trace.json -top 3 > /dev/null
	$(GO) run ./cmd/checktrace .smoke/trace.json
	rm -rf .smoke

fmt:
	gofmt -l -w .
