// Command checktrace validates a -trace-json snapshot: the file must be
// parseable JSON whose spans cover the four pipeline stages (parse,
// discretize, mine, rank) and whose counters include the mining pruning
// statistics. It is the assertion half of `make smoke`.
//
//	checktrace trace.json
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checktrace <trace.json>")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "checktrace:", err)
		os.Exit(1)
	}
}

func check(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := obs.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, name := range []string{
		obs.SpanReadCSV, obs.SpanCSVParse, obs.SpanDiscretize,
		obs.SpanExplore, obs.SpanMine, obs.SpanRank,
	} {
		if tr.Span(name) == nil {
			return fmt.Errorf("%s: missing span %q", path, name)
		}
	}
	for _, name := range []string{
		obs.CtrRows, obs.CtrCandidates, obs.CtrPrunedSupport,
		obs.CtrPrunedPolarity, obs.CtrItemsetsEmitted,
	} {
		if _, ok := tr.Counters[name]; !ok {
			return fmt.Errorf("%s: missing counter %q", path, name)
		}
	}
	fmt.Printf("%s: ok (%d spans, %d counters)\n", path, len(tr.Spans), len(tr.Counters))
	return nil
}
