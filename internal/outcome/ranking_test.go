package outcome

import (
	"math"
	"testing"

	"repro/internal/bitvec"
)

func TestTopKMembership(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8, 0.3, 0.7}
	o, err := TopKMembership(scores, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	// Top 2 by score: rows 0 (0.9) and 2 (0.8).
	want := []float64{1, 0, 1, 0, 0}
	for i := range want {
		if o.Values[i] != want[i] {
			t.Fatalf("Values = %v, want %v", o.Values, want)
		}
	}
	if got := o.GlobalMean(); got != 0.4 {
		t.Errorf("GlobalMean = %v, want k/n = 0.4", got)
	}
	// lowerIsBetter flips the selection.
	o2, err := TopKMembership(scores, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Values[1] != 1 || o2.Values[3] != 1 {
		t.Errorf("lower-is-better top-2 = %v", o2.Values)
	}
}

func TestTopKMembershipTies(t *testing.T) {
	scores := []float64{1, 1, 1, 0}
	o, err := TopKMembership(scores, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	// Stable tie-breaking: rows 0 and 1 win.
	if o.Values[0] != 1 || o.Values[1] != 1 || o.Values[2] != 0 {
		t.Errorf("tie handling = %v", o.Values)
	}
}

func TestTopKMembershipErrors(t *testing.T) {
	if _, err := TopKMembership([]float64{1, 2}, 0, true); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := TopKMembership([]float64{1, 2}, 3, true); err == nil {
		t.Error("k>n should fail")
	}
}

func TestTopKDivergenceMeaning(t *testing.T) {
	// A subgroup fully inside the top-k has divergence 1 − k/n.
	scores := make([]float64, 10)
	for i := range scores {
		scores[i] = float64(10 - i)
	}
	o, err := TopKMembership(scores, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	sub := bitvec.FromIndices(10, []int{0, 1, 2})
	if got := o.DivergenceOf(sub); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("in-top divergence = %v, want 0.7", got)
	}
	out := bitvec.FromIndices(10, []int{7, 8, 9})
	if got := o.DivergenceOf(out); math.Abs(got+0.3) > 1e-12 {
		t.Errorf("out-of-top divergence = %v, want -0.3", got)
	}
}

func TestExposureRate(t *testing.T) {
	scores := []float64{5, 1, 3}
	o, err := ExposureRate(scores, true)
	if err != nil {
		t.Fatal(err)
	}
	// Ranking: row 0 first, row 2 second, row 1 third.
	if math.Abs(o.Values[0]-1) > 1e-12 {
		t.Errorf("rank-1 exposure = %v, want 1", o.Values[0])
	}
	if math.Abs(o.Values[2]-1/math.Log2(3)) > 1e-12 {
		t.Errorf("rank-2 exposure = %v", o.Values[2])
	}
	if math.Abs(o.Values[1]-0.5) > 1e-12 {
		t.Errorf("rank-3 exposure = %v, want 1/log2(4) = 0.5", o.Values[1])
	}
	// Exposure is monotone decreasing in rank.
	if !(o.Values[0] > o.Values[2] && o.Values[2] > o.Values[1]) {
		t.Error("exposure not monotone in rank")
	}
	if _, err := ExposureRate(nil, true); err == nil {
		t.Error("empty ranking should fail")
	}
}
