package discretize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/outcome"
)

// stepTable builds a dataset where the outcome is 1 exactly when x > cut:
// the sharpest possible divergence boundary.
func stepTable(n int, cut float64, seed int64) (*dataset.Table, *outcome.Outcome) {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	vals := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 10
		if xs[i] > cut {
			vals[i] = 1
		}
	}
	t := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	return t, outcome.Numeric("step", vals)
}

func TestTreeFindsStepBoundary(t *testing.T) {
	for _, crit := range []Criterion{DivergenceGain, EntropyGain} {
		tab, o := stepTable(2000, 5.0, 1)
		h, err := Tree(tab, "x", o, TreeOptions{Criterion: crit, MinSupport: 0.1})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		// The first split (children of the root) must be at ≈ 5.
		root := h.Nodes[0]
		if len(root.Children) != 2 {
			t.Fatalf("%v: root not split", crit)
		}
		cut := h.Nodes[root.Children[0]].Item.Hi
		if math.Abs(cut-5.0) > 0.1 {
			t.Errorf("%v: first cut at %v, want ≈ 5", crit, cut)
		}
	}
}

func TestTreeRespectsSupport(t *testing.T) {
	tab, o := stepTable(1000, 3.0, 2)
	st := 0.15
	h, err := Tree(tab, "x", o, TreeOptions{MinSupport: st})
	if err != nil {
		t.Fatal(err)
	}
	minRows := int(math.Ceil(st * float64(tab.NumRows())))
	for i, n := range h.Nodes {
		if i == 0 {
			continue
		}
		if c := n.Item.Rows(tab).Count(); c < minRows {
			t.Errorf("node %d (%v) has %d rows < st·n = %d", i, n.Item, c, minRows)
		}
	}
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
}

func TestTreeConstantOutcomeNoSplit(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	o := outcome.Numeric("const", make([]float64, 100))
	h, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Nodes) != 1 {
		t.Errorf("constant outcome grew %d nodes, want root only", len(h.Nodes))
	}
	if len(h.LeafItems()) != 0 {
		t.Error("root-only hierarchy must expose no leaf items")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	tab, o := stepTable(2000, 5.0, 3)
	h, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0.01, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Nodes {
		if d := h.Depth(i); d > 2 {
			t.Errorf("node %d at depth %d > MaxDepth 2", i, d)
		}
	}
}

func TestTreeNaNRowsExcluded(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, math.NaN(), math.NaN()}
	vals := []float64{0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	o := outcome.Numeric("v", vals)
	h, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// NaN rows must satisfy no item.
	for _, it := range h.Items() {
		rows := it.Rows(tab)
		if rows.Get(8) || rows.Get(9) {
			t.Errorf("item %v covers a NaN row", it)
		}
	}
	// Support denominator includes the NaN rows: with st=0.2 each node needs
	// ≥ 2 of the 10 rows.
	minRows := 2
	for i, n := range h.Nodes {
		if i != 0 && n.Item.Rows(tab).Count() < minRows {
			t.Errorf("node %v below support", n.Item)
		}
	}
}

func TestTreeErrors(t *testing.T) {
	tab, o := stepTable(100, 5, 4)
	if _, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0}); err == nil {
		t.Error("MinSupport 0 should fail")
	}
	if _, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0.7}); err == nil {
		t.Error("MinSupport > 0.5 should fail")
	}
	cat := dataset.NewBuilder().AddCategorical("c", []string{"a", "b"}).MustBuild()
	o2 := outcome.Numeric("v", []float64{0, 1})
	if _, err := Tree(cat, "c", o2, TreeOptions{MinSupport: 0.1}); err == nil {
		t.Error("categorical attribute should fail")
	}
	short := outcome.Numeric("v", []float64{0, 1})
	if _, err := Tree(tab, "x", short, TreeOptions{MinSupport: 0.1}); err == nil {
		t.Error("outcome length mismatch should fail")
	}
	nonBool := outcome.Numeric("v", makeRange(100))
	if _, err := Tree(tab, "x", nonBool, TreeOptions{Criterion: EntropyGain, MinSupport: 0.1}); err == nil {
		t.Error("entropy criterion on non-boolean outcome should fail")
	}
}

func makeRange(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * 1.5
	}
	return out
}

func TestTreeSet(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	vals := make([]float64, n)
	for i := range a {
		a[i] = r.Float64() * 10
		b[i] = r.Float64() * 10
		if a[i] > 5 {
			vals[i] = 1
		}
	}
	tab := dataset.NewBuilder().
		AddFloat("a", a).
		AddFloat("b", b).
		AddCategorical("c", repeatStrings([]string{"x", "y"}, n)).
		MustBuild()
	o := outcome.Numeric("v", vals)
	set, err := TreeSet(tab, o, TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	attrs := set.Attrs()
	if len(attrs) != 2 || attrs[0] != "a" || attrs[1] != "b" {
		t.Errorf("Attrs = %v, want [a b]", attrs)
	}
	set2, err := TreeSet(tab, o, TreeOptions{MinSupport: 0.1}, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(set2.Attrs()) != 1 {
		t.Errorf("exclude failed: %v", set2.Attrs())
	}
}

func repeatStrings(vals []string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = vals[i%len(vals)]
	}
	return out
}

func TestQuantileBalancedBins(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	h, err := Quantile(tab, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	leaves := h.LeafItems()
	if len(leaves) != 4 {
		t.Fatalf("leaves = %d, want 4", len(leaves))
	}
	for _, it := range leaves {
		c := it.Rows(tab).Count()
		if c < 200 || c > 300 {
			t.Errorf("bin %v has %d rows, want ≈ 250", it, c)
		}
	}
}

func TestQuantileDuplicateValuesMergeBins(t *testing.T) {
	// 90% zeros: many quantile cuts collapse onto 0.
	xs := make([]float64, 100)
	for i := 90; i < 100; i++ {
		xs[i] = float64(i)
	}
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	h, err := Quantile(tab, "x", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	if got := len(h.LeafItems()); got >= 10 {
		t.Errorf("duplicate cuts should merge bins, got %d", got)
	}
	// No empty bins.
	for _, it := range h.LeafItems() {
		if it.Rows(tab).Count() == 0 {
			t.Errorf("empty bin %v", it)
		}
	}
}

func TestUniformWidth(t *testing.T) {
	xs := makeRange(100) // 0 .. 148.5
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	h, err := UniformWidth(tab, "x", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	leaves := h.LeafItems()
	if len(leaves) != 5 {
		t.Fatalf("leaves = %d, want 5", len(leaves))
	}
	// Interior bins all have width (148.5-0)/5 = 29.7.
	for _, it := range leaves {
		if math.IsInf(it.Lo, -1) || math.IsInf(it.Hi, 1) {
			continue
		}
		if w := it.Hi - it.Lo; math.Abs(w-29.7) > 1e-9 {
			t.Errorf("bin %v has width %v, want 29.7", it, w)
		}
	}
}

func TestUniformWidthConstantColumn(t *testing.T) {
	tab := dataset.NewBuilder().AddFloat("x", []float64{2, 2, 2}).MustBuild()
	h, err := UniformWidth(tab, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.LeafItems()) != 0 {
		t.Error("constant column should produce no bins")
	}
}

func TestManualCuts(t *testing.T) {
	h, err := ManualCuts("age", []float64{25, 45})
	if err != nil {
		t.Fatal(err)
	}
	leaves := h.LeafItems()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(leaves))
	}
	if leaves[0].String() != "age≤25" || leaves[2].String() != "age>45" {
		t.Errorf("leaves = %v, %v, %v", leaves[0], leaves[1], leaves[2])
	}
	if _, err := ManualCuts("age", []float64{45, 25}); err == nil {
		t.Error("non-increasing cuts should fail")
	}
}

func TestBinArgumentValidation(t *testing.T) {
	tab := dataset.NewBuilder().AddFloat("x", []float64{1, 2}).MustBuild()
	if _, err := Quantile(tab, "x", 1); err == nil {
		t.Error("quantile bins < 2 should fail")
	}
	if _, err := UniformWidth(tab, "x", 0); err == nil {
		t.Error("uniform bins < 2 should fail")
	}
	empty := dataset.NewBuilder().AddFloat("x", []float64{math.NaN()}).MustBuild()
	if _, err := Quantile(empty, "x", 2); err == nil {
		t.Error("all-NaN column should fail")
	}
	if _, err := UniformWidth(empty, "x", 2); err == nil {
		t.Error("all-NaN column should fail")
	}
}

func TestCriterionString(t *testing.T) {
	if DivergenceGain.String() != "divergence" || EntropyGain.String() != "entropy" {
		t.Error("Criterion.String wrong")
	}
	if Criterion(9).String() == "" {
		t.Error("unknown criterion should still render")
	}
}

// Property: for random data and random st, the tree's leaves partition the
// non-NaN rows and every non-root node satisfies the support constraint.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(400)
		xs := make([]float64, n)
		vals := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 5
			if r.Float64() < 0.3+0.4*sigmoid(xs[i]) {
				vals[i] = 1
			}
		}
		tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
		o := outcome.Numeric("v", vals)
		st := 0.05 + r.Float64()*0.2
		crit := DivergenceGain
		if r.Intn(2) == 0 {
			crit = EntropyGain
		}
		h, err := Tree(tab, "x", o, TreeOptions{Criterion: crit, MinSupport: st})
		if err != nil {
			return false
		}
		if h.ValidateOn(tab) != nil {
			return false
		}
		minRows := int(math.Ceil(st * float64(n)))
		for i, node := range h.Nodes {
			if i != 0 && node.Item.Rows(tab).Count() < minRows {
				return false
			}
		}
		// Leaves partition all rows (no NaNs here).
		if len(h.LeafItems()) > 0 {
			union := bitvec.New(n)
			for _, it := range h.LeafItems() {
				rows := it.Rows(tab)
				if rows.Intersects(union) {
					return false
				}
				union.Or(rows)
			}
			if union.Count() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Property: every split the divergence tree makes has nonnegative gain, and
// children means straddle the parent mean (one ≥, one ≤).
func TestQuickSplitMeansStraddleParent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(200)
		xs := make([]float64, n)
		vals := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 10
			vals[i] = r.Float64() * (1 + xs[i])
		}
		tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
		o := outcome.Numeric("v", vals)
		h, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0.1})
		if err != nil {
			return false
		}
		for i, node := range h.Nodes {
			if len(node.Children) != 2 {
				continue
			}
			pm := o.StatOf(node.Item.Rows(tab))
			if i == 0 {
				pm = o.GlobalMean()
			}
			m1 := o.StatOf(h.Nodes[node.Children[0]].Item.Rows(tab))
			m2 := o.StatOf(h.Nodes[node.Children[1]].Item.Rows(tab))
			lo, hi := math.Min(m1, m2), math.Max(m1, m2)
			if !(lo <= pm+1e-9 && pm-1e-9 <= hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The hierarchical tree's leaf cut set must be identical whether we read
// leaves or reconstruct from the item hierarchy — i.e. Items() is a strict
// superset of LeafItems().
func TestItemsSupersetOfLeaves(t *testing.T) {
	// A graded outcome (probability rising with x) keeps splits profitable
	// below the first cut, so the tree grows internal levels.
	r := rand.New(rand.NewSource(9))
	n := 2000
	xs := make([]float64, n)
	vals := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 10
		if r.Float64() < xs[i]/10 {
			vals[i] = 1
		}
	}
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	o := outcome.Numeric("v", vals)
	h, err := Tree(tab, "x", o, TreeOptions{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	all := map[string]bool{}
	for _, it := range h.Items() {
		all[it.String()] = true
	}
	for _, it := range h.LeafItems() {
		if !all[it.String()] {
			t.Errorf("leaf %v missing from Items()", it)
		}
	}
	if len(h.Items()) <= len(h.LeafItems()) {
		t.Error("hierarchy should contain internal items beyond leaves")
	}
}

func BenchmarkTreeDiscretize(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 100_000
	xs := make([]float64, n)
	vals := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64() * 10
		if r.Float64() < sigmoid(xs[i]/5) {
			vals[i] = 1
		}
	}
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	o := outcome.Numeric("v", vals)
	for _, crit := range []Criterion{DivergenceGain, EntropyGain} {
		b.Run(crit.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Tree(tab, "x", o, TreeOptions{Criterion: crit, MinSupport: 0.05}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQuantile(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 100_000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	tab := dataset.NewBuilder().AddFloat("x", xs).MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quantile(tab, "x", 8); err != nil {
			b.Fatal(err)
		}
	}
}
