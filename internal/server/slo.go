package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// sloClasses are the endpoint classes the SLO engine tracks. Every
// request the server handles is attributed to exactly one class; the set
// is fixed at construction so the hot path takes no locks.
var sloClasses = []string{"explore", "explore_batch", "progress", "append", "drift", "metrics", "slo", "other"}

// endpointClass attributes one request path to its SLO class.
func endpointClass(path string) string {
	switch {
	case path == "/v1/explore":
		return "explore"
	case path == "/v1/explore/batch":
		return "explore_batch"
	case path == "/v1/progress" || strings.HasPrefix(path, "/v1/progress/"):
		return "progress"
	case strings.HasPrefix(path, "/v1/datasets/") && strings.HasSuffix(path, "/rows"):
		return "append"
	case strings.HasPrefix(path, "/v1/drift/"):
		return "drift"
	case path == "/metrics":
		return "metrics"
	case path == "/v1/slo":
		return "slo"
	default:
		return "other"
	}
}

// LatencyObjective is one latency service-level objective: at least
// `Quantile` of requests must answer within Target. "p99=250ms" parses to
// {Quantile: 0.99, Target: 250ms}.
type LatencyObjective struct {
	Quantile float64
	Target   time.Duration
}

// Name renders the objective's conventional name (p50, p99, p999, ...).
func (o LatencyObjective) Name() string {
	s := strconv99(o.Quantile)
	return "p" + s
}

// strconv99 renders a quantile's decimals: 0.99 → "99", 0.999 → "999".
// The %.6g rounding absorbs float noise (0.999*100 is not exactly 99.9).
func strconv99(q float64) string {
	s := fmt.Sprintf("%.6g", q*100)
	return strings.ReplaceAll(s, ".", "")
}

// SLOConfig declares the server's service-level objectives and the
// windows its error-budget burn is computed over. The zero value
// declares no objectives; the windowed latency/error tracking and the
// GET /v1/slo surface stay live regardless, so operators see recent
// quantiles even before committing to targets.
type SLOConfig struct {
	// Latency objectives, e.g. p99 ≤ 250ms. Burn rate for an objective at
	// quantile q is (fraction of windowed requests slower than Target) /
	// (1 − q): burning at 1.0 consumes the error budget exactly as fast
	// as the objective allows.
	Latency []LatencyObjective
	// Availability is the objective's percentage (e.g. 99.9); requests
	// answered 5xx count against it. 0 means no availability objective.
	Availability float64
	// ShortWindow and LongWindow are the multiwindow burn-rate horizons
	// (defaults 10s and 60s): the short window catches fast burns in
	// seconds, the long window smooths noise for paging decisions.
	ShortWindow, LongWindow time.Duration
	// Epoch is the ring's rotation granularity (default 1s).
	Epoch time.Duration

	// now overrides the engine clock in tests.
	now func() time.Time
}

// ParseSLO parses the -slo flag grammar: comma-separated key=value
// pairs, e.g. "p99=250ms,availability=99.9,short=10s,long=60s". Latency
// keys are p followed by quantile decimals (p50, p95, p99, p999);
// availability takes a percentage; short, long and epoch take durations.
func ParseSLO(s string) (SLOConfig, error) {
	var cfg SLOConfig
	s = strings.TrimSpace(s)
	if s == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || key == "" || val == "" {
			return cfg, fmt.Errorf("slo: want key=value, got %q", part)
		}
		switch key = strings.ToLower(key); key {
		case "availability":
			var pct float64
			if _, err := fmt.Sscanf(val, "%g", &pct); err != nil || pct <= 0 || pct >= 100 {
				return cfg, fmt.Errorf("slo: availability wants a percentage in (0, 100), got %q", val)
			}
			cfg.Availability = pct
		case "short", "long", "epoch":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("slo: %s wants a positive duration, got %q", key, val)
			}
			switch key {
			case "short":
				cfg.ShortWindow = d
			case "long":
				cfg.LongWindow = d
			case "epoch":
				cfg.Epoch = d
			}
		default:
			digits := strings.TrimPrefix(key, "p")
			if digits == key || len(digits) < 2 {
				return cfg, fmt.Errorf("slo: unknown objective %q (latency objectives look like p99=250ms)", key)
			}
			q, scale := 0.0, 1.0
			for _, r := range digits {
				if r < '0' || r > '9' {
					return cfg, fmt.Errorf("slo: unknown objective %q", key)
				}
				q = q*10 + float64(r-'0')
				scale *= 10
			}
			q /= scale // p99 → 0.99, p999 → 0.999
			if q <= 0 || q >= 1 {
				return cfg, fmt.Errorf("slo: latency objective %q wants a quantile like p99 or p999", key)
			}
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("slo: %s wants a positive duration target, got %q", key, val)
			}
			cfg.Latency = append(cfg.Latency, LatencyObjective{Quantile: q, Target: d})
		}
	}
	sort.Slice(cfg.Latency, func(i, j int) bool { return cfg.Latency[i].Quantile < cfg.Latency[j].Quantile })
	return cfg, nil
}

// normalize applies defaults and validates the window geometry.
func (c *SLOConfig) normalize() error {
	if c.Epoch <= 0 {
		c.Epoch = time.Second
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 10 * time.Second
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 60 * time.Second
	}
	if c.ShortWindow > c.LongWindow {
		return fmt.Errorf("slo: short window %v exceeds long window %v", c.ShortWindow, c.LongWindow)
	}
	if c.LongWindow/c.Epoch > 3600 {
		return fmt.Errorf("slo: long window %v over %v epochs needs more than 3600 ring slots", c.LongWindow, c.Epoch)
	}
	for _, o := range c.Latency {
		if o.Quantile <= 0 || o.Quantile >= 1 || o.Target <= 0 {
			return fmt.Errorf("slo: invalid latency objective %+v", o)
		}
	}
	if c.Availability < 0 || c.Availability >= 100 {
		return fmt.Errorf("slo: availability %g%% out of range", c.Availability)
	}
	return nil
}

// slowCaptureThreshold is the latency bar the flight recorder derives
// from the objectives when -slow-threshold is left on auto: the tightest
// latency target, so every objective-violating request is retained in
// full. 0 when no latency objective is declared.
func (c SLOConfig) slowCaptureThreshold() time.Duration {
	var min time.Duration
	for _, o := range c.Latency {
		if min == 0 || o.Target < min {
			min = o.Target
		}
	}
	return min
}

// sloClass is the windowed state of one endpoint class: a latency
// histogram ring plus event rings for totals, errors (5xx), shed load
// (429) and per-latency-objective violations. Lifetime breach counters
// live on the server tracer so /metrics keeps a monotonic series
// alongside the windowed gauges.
type sloClass struct {
	name     string
	lat      *obs.Windowed
	total    *obs.Windowed
	errs     *obs.Windowed
	rejected *obs.Windowed
	slow     []*obs.Windowed // aligned with SLOConfig.Latency
	breaches []*obs.Counter  // aligned with SLOConfig.Latency
	errsLife *obs.Counter
}

// sloEngine computes service-level-objective status from sliding-window
// observations. All state is created at construction; observe is
// lock-free past the windows' own epoch rotation.
type sloEngine struct {
	cfg     SLOConfig
	short   int // window sizes in epochs
	long    int
	classes map[string]*sloClass
}

func newSLOEngine(cfg SLOConfig, tracer *obs.Tracer) *sloEngine {
	e := &sloEngine{
		cfg:     cfg,
		short:   int((cfg.ShortWindow + cfg.Epoch - 1) / cfg.Epoch),
		long:    int((cfg.LongWindow + cfg.Epoch - 1) / cfg.Epoch),
		classes: make(map[string]*sloClass, len(sloClasses)),
	}
	epochs := e.long
	for _, name := range sloClasses {
		c := &sloClass{
			name:     name,
			lat:      obs.NewWindowed(obs.LatencyBuckets, cfg.Epoch, epochs, cfg.now),
			total:    obs.NewWindowed(nil, cfg.Epoch, epochs, cfg.now),
			errs:     obs.NewWindowed(nil, cfg.Epoch, epochs, cfg.now),
			rejected: obs.NewWindowed(nil, cfg.Epoch, epochs, cfg.now),
			errsLife: tracer.Counter(obs.CtrServerSLOErrPrefix + name),
		}
		for _, o := range cfg.Latency {
			c.slow = append(c.slow, obs.NewWindowed(nil, cfg.Epoch, epochs, cfg.now))
			c.breaches = append(c.breaches, tracer.Counter(obs.CtrServerSLOBreachPrefix+name+"."+o.Name()))
		}
		e.classes[name] = c
	}
	return e
}

// observe records one served request into its class's windows.
func (e *sloEngine) observe(class string, status int, d time.Duration) {
	c := e.classes[class]
	if c == nil {
		c = e.classes["other"]
	}
	c.lat.Observe(d.Seconds())
	c.total.Add(1)
	switch {
	case status >= 500:
		c.errs.Add(1)
		c.errsLife.Add(1)
	case status == http.StatusTooManyRequests:
		c.rejected.Add(1)
	}
	for i, o := range e.cfg.Latency {
		if d > o.Target {
			c.slow[i].Add(1)
			c.breaches[i].Add(1)
		}
	}
}

// burnRate is the error-budget burn: the fraction of windowed requests
// that violated the objective, divided by the fraction the objective
// allows. 1.0 consumes the budget exactly at the allowed rate; values
// above it exhaust the budget early. An empty window burns nothing.
func burnRate(bad, total int64, allowed float64) float64 {
	if total == 0 || allowed <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / allowed
}

// ObjectiveStatus is the reported state of one objective on one endpoint
// class.
type ObjectiveStatus struct {
	// Name is "p99"-style for latency objectives, "availability" for the
	// availability objective.
	Name string `json:"name"`
	// TargetMS is the latency target (latency objectives only).
	TargetMS float64 `json:"target_ms,omitempty"`
	// TargetPct is the availability target (availability only).
	TargetPct float64 `json:"target_pct,omitempty"`
	// OK is the paging signal: the long-window burn rate is at or under
	// 1.0, i.e. the error budget is being consumed no faster than allowed.
	OK bool `json:"ok"`
	// BurnShort and BurnLong are the burn rates over the short and long
	// windows.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	// BudgetRemaining is the long window's unconsumed error-budget
	// fraction: max(0, 1 − BurnLong).
	BudgetRemaining float64 `json:"budget_remaining"`
	// Violations is the number of long-window requests that violated the
	// objective; Breaches the process-lifetime count.
	Violations int64 `json:"violations"`
	Breaches   int64 `json:"breaches"`
}

// EndpointSLO is the GET /v1/slo entry for one endpoint class.
type EndpointSLO struct {
	Endpoint string `json:"endpoint"`
	// Requests, Errors and Rejected count the long window.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	// LatencyMS reports the long-window latency quantiles (upper-bound
	// bucket estimates, clamped finite).
	LatencyMS map[string]float64 `json:"latency_ms"`
	// Objectives reports each declared objective's budget state; empty
	// when the server declares none.
	Objectives []ObjectiveStatus `json:"objectives,omitempty"`
}

// SLOStatus is the GET /v1/slo reply.
type SLOStatus struct {
	// EpochMS, ShortWindowS and LongWindowS describe the measurement
	// geometry: windowed numbers cover the trailing long window at epoch
	// granularity.
	EpochMS      int64   `json:"epoch_ms"`
	ShortWindowS float64 `json:"short_window_s"`
	LongWindowS  float64 `json:"long_window_s"`
	// OK is the conjunction over every endpoint objective (true when no
	// objectives are declared).
	OK        bool          `json:"ok"`
	Endpoints []EndpointSLO `json:"endpoints"`
}

// windowQuantiles are the quantiles reported per endpoint, by display
// name.
var windowQuantiles = []struct {
	name string
	q    float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}}

// status assembles the full SLO report.
func (e *sloEngine) status() SLOStatus {
	st := SLOStatus{
		EpochMS:      e.cfg.Epoch.Milliseconds(),
		ShortWindowS: (time.Duration(e.short) * e.cfg.Epoch).Seconds(),
		LongWindowS:  (time.Duration(e.long) * e.cfg.Epoch).Seconds(),
		OK:           true,
	}
	for _, name := range sloClasses {
		c := e.classes[name]
		rec := c.lat.Merged(e.long)
		ep := EndpointSLO{
			Endpoint:  name,
			Requests:  c.total.CountWindow(e.long),
			Errors:    c.errs.CountWindow(e.long),
			Rejected:  c.rejected.CountWindow(e.long),
			LatencyMS: map[string]float64{},
		}
		for _, wq := range windowQuantiles {
			if q := rec.Quantile(wq.q); q == q { // skip NaN (empty window)
				ep.LatencyMS[wq.name] = q * 1000
			}
		}
		shortTotal := c.total.CountWindow(e.short)
		for i, o := range e.cfg.Latency {
			slowLong := c.slow[i].CountWindow(e.long)
			os := ObjectiveStatus{
				Name:       o.Name(),
				TargetMS:   float64(o.Target) / float64(time.Millisecond),
				BurnShort:  burnRate(c.slow[i].CountWindow(e.short), shortTotal, 1-o.Quantile),
				BurnLong:   burnRate(slowLong, ep.Requests, 1-o.Quantile),
				Violations: slowLong,
				Breaches:   c.breaches[i].Value(),
			}
			os.OK = os.BurnLong <= 1
			os.BudgetRemaining = max(0, 1-os.BurnLong)
			st.OK = st.OK && os.OK
			ep.Objectives = append(ep.Objectives, os)
		}
		if e.cfg.Availability > 0 {
			allowed := 1 - e.cfg.Availability/100
			os := ObjectiveStatus{
				Name:       "availability",
				TargetPct:  e.cfg.Availability,
				BurnShort:  burnRate(c.errs.CountWindow(e.short), shortTotal, allowed),
				BurnLong:   burnRate(ep.Errors, ep.Requests, allowed),
				Violations: ep.Errors,
				Breaches:   c.errsLife.Value(),
			}
			os.OK = os.BurnLong <= 1
			os.BudgetRemaining = max(0, 1-os.BurnLong)
			st.OK = st.OK && os.OK
			ep.Objectives = append(ep.Objectives, os)
		}
		st.Endpoints = append(st.Endpoints, ep)
	}
	return st
}

// writeText renders the status as an aligned human-readable table, the
// `?format=text` variant of GET /v1/slo.
func (st SLOStatus) writeText(w io.Writer) {
	overall := "OK"
	if !st.OK {
		overall = "VIOLATED"
	}
	fmt.Fprintf(w, "slo: %s (epoch %dms, windows %gs/%gs)\n",
		overall, st.EpochMS, st.ShortWindowS, st.LongWindowS)
	fmt.Fprintf(w, "%-14s %9s %7s %7s %9s %9s %9s %9s\n",
		"endpoint", "requests", "errors", "429", "p50_ms", "p95_ms", "p99_ms", "p999_ms")
	for _, ep := range st.Endpoints {
		q := func(name string) string {
			v, ok := ep.LatencyMS[name]
			if !ok {
				return "-"
			}
			return fmt.Sprintf("%.1f", v)
		}
		fmt.Fprintf(w, "%-14s %9d %7d %7d %9s %9s %9s %9s\n",
			ep.Endpoint, ep.Requests, ep.Errors, ep.Rejected,
			q("p50"), q("p95"), q("p99"), q("p999"))
		for _, o := range ep.Objectives {
			state := "ok"
			if !o.OK {
				state = "VIOLATED"
			}
			target := fmt.Sprintf("%.0fms", o.TargetMS)
			if o.Name == "availability" {
				target = fmt.Sprintf("%g%%", o.TargetPct)
			}
			fmt.Fprintf(w, "  %-12s target=%-8s %-8s burn_short=%-8.2f burn_long=%-8.2f budget_remaining=%.2f violations=%d\n",
				o.Name, target, state, o.BurnShort, o.BurnLong, o.BudgetRemaining, o.Violations)
		}
	}
}

// writeMetrics renders the windowed gauges in the Prometheus text
// exposition format: recent latency quantiles, windowed request/error
// counts and per-objective burn rates, all labeled by endpoint. These
// are hand-rendered (the Trace exposition has no label support) and ride
// on every GET /metrics scrape after the lifetime families.
func (e *sloEngine) writeMetrics(w io.Writer) {
	header := func(name, typ string) {
		if help, ok := obs.MetricHelp[name]; ok {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	st := e.status()
	header("server_window_latency_seconds", "gauge")
	for _, ep := range st.Endpoints {
		for _, wq := range windowQuantiles {
			if v, ok := ep.LatencyMS[wq.name]; ok {
				fmt.Fprintf(w, "server_window_latency_seconds{endpoint=%q,quantile=%q} %g\n",
					ep.Endpoint, fmt.Sprintf("%g", wq.q), v/1000)
			}
		}
	}
	header("server_window_requests", "gauge")
	for _, ep := range st.Endpoints {
		fmt.Fprintf(w, "server_window_requests{endpoint=%q} %d\n", ep.Endpoint, ep.Requests)
	}
	header("server_window_errors", "gauge")
	for _, ep := range st.Endpoints {
		fmt.Fprintf(w, "server_window_errors{endpoint=%q} %d\n", ep.Endpoint, ep.Errors)
	}
	header("server_window_rejected", "gauge")
	for _, ep := range st.Endpoints {
		fmt.Fprintf(w, "server_window_rejected{endpoint=%q} %d\n", ep.Endpoint, ep.Rejected)
	}
	if len(e.cfg.Latency) == 0 && e.cfg.Availability <= 0 {
		return
	}
	header("server_slo_burn_rate", "gauge")
	for _, ep := range st.Endpoints {
		for _, o := range ep.Objectives {
			fmt.Fprintf(w, "server_slo_burn_rate{endpoint=%q,objective=%q,window=\"short\"} %g\n",
				ep.Endpoint, o.Name, o.BurnShort)
			fmt.Fprintf(w, "server_slo_burn_rate{endpoint=%q,objective=%q,window=\"long\"} %g\n",
				ep.Endpoint, o.Name, o.BurnLong)
		}
	}
	header("server_slo_budget_remaining", "gauge")
	for _, ep := range st.Endpoints {
		for _, o := range ep.Objectives {
			fmt.Fprintf(w, "server_slo_budget_remaining{endpoint=%q,objective=%q} %g\n",
				ep.Endpoint, o.Name, o.BudgetRemaining)
		}
	}
}

// handleSLO serves GET /v1/slo: the SLO engine's per-endpoint objective
// status, error-budget burn and recent latency quantiles — all computed
// from sliding windows, never lifetime-cumulative totals.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "slo").Add(1)
	st := s.slo.status()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st.writeText(w)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// statusRecorder captures the status code written through a
// ResponseWriter so the SLO middleware can attribute the request.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}
