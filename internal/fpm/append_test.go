package fpm

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/faultinject"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
)

// appendFixture builds a dataset with a rare categorical level (so at least
// one item compresses), returning the full table, a prefix table of oldN
// rows sharing the same values, outcomes over both, and the item set built
// on the prefix.
func appendFixture(t testing.TB, seed int64, oldN, newN int) (full, prefix *dataset.Table, oFull, oPrefix *outcome.Outcome, items []*hierarchy.Item) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	a := make([]float64, newN)
	c := make([]string, newN)
	actual := make([]bool, newN)
	pred := make([]bool, newN)
	for i := 0; i < newN; i++ {
		a[i] = r.Float64() * 10
		switch {
		case i < 4:
			c[i] = "rare" // ensure the rare level exists in the prefix
		case r.Float64() < 0.005:
			c[i] = "rare"
		case r.Float64() < 0.5:
			c[i] = "common"
		default:
			c[i] = "other"
		}
		actual[i] = r.Intn(2) == 0
		pred[i] = actual[i]
		if r.Float64() < 0.2+0.3*a[i]/10 {
			pred[i] = !pred[i]
		}
	}
	full = dataset.NewBuilder().AddFloat("a", a).AddCategorical("c", c).MustBuild()
	prefix = dataset.NewBuilder().
		AddFloat("a", a[:oldN:oldN]).
		AddCategoricalCodes("c", full.Codes("c")[:oldN:oldN], full.Levels("c")).
		MustBuild()
	oFull = outcome.ErrorRate(actual, pred)
	oPrefix = outcome.ErrorRate(actual[:oldN], pred[:oldN])
	hs, err := discretize.TreeSet(prefix, oPrefix, discretize.TreeOptions{MinSupport: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	hs.Add(hierarchy.FlatCategorical(prefix, "c"))
	return full, prefix, oFull, oPrefix, hs.AllItems()
}

// TestAppendUniverseMatchesRebuild pins the incremental-maintenance
// contract: AppendUniverse is byte-identical — row sets, representations,
// polarity, memory stats — to NewUniverse over the full table with the
// same items.
func TestAppendUniverseMatchesRebuild(t *testing.T) {
	for _, tc := range []struct{ oldN, newN int }{
		{1000, 1100},   // small, all-dense
		{20000, 22000}, // rare level compressed, mid-container split
		{65536, 72000}, // prefix on a container boundary
		{20000, 20001}, // single-row append
	} {
		full, prefix, oFull, oPrefix, items := appendFixture(t, 99, tc.oldN, tc.newN)
		base := NewUniverse(prefix, items, oPrefix)
		grown, err := AppendUniverse(full, base, oFull)
		if err != nil {
			t.Fatalf("%d->%d: %v", tc.oldN, tc.newN, err)
		}
		want := NewUniverse(full, items, oFull)
		if !reflect.DeepEqual(grown, want) {
			t.Errorf("%d->%d: incremental universe differs from from-scratch rebuild", tc.oldN, tc.newN)
		}
		// The base universe must be untouched (old-epoch readers).
		if base.NumRows != tc.oldN {
			t.Errorf("%d->%d: base universe mutated", tc.oldN, tc.newN)
		}
		for i := range base.Rows {
			if base.Rows[i].Len() != tc.oldN {
				t.Fatalf("%d->%d: base row set %d grew", tc.oldN, tc.newN, i)
			}
		}
	}
}

// TestAppendUniverseCompressedRepresentation asserts the fixture actually
// exercises the compressed path, so the DeepEqual above is not vacuous.
func TestAppendUniverseCompressedRepresentation(t *testing.T) {
	full, prefix, oFull, oPrefix, items := appendFixture(t, 99, 20000, 22000)
	base := NewUniverse(prefix, items, oPrefix)
	grown, err := AppendUniverse(full, base, oFull)
	if err != nil {
		t.Fatal(err)
	}
	var compressed int
	for _, rs := range grown.Rows {
		if _, ok := rs.(*bitvec.Compressed); ok {
			compressed++
		}
	}
	if compressed == 0 {
		t.Error("fixture produced no compressed row sets; equivalence test is vacuous")
	}
	if grown.Memory().ItemsCompressed != compressed {
		t.Errorf("MemStats.ItemsCompressed = %d, want %d", grown.Memory().ItemsCompressed, compressed)
	}
}

func TestAppendUniverseShrinkError(t *testing.T) {
	full, prefix, oFull, oPrefix, items := appendFixture(t, 7, 1000, 1200)
	grownBase := NewUniverse(full, items, oFull)
	if _, err := AppendUniverse(prefix, grownBase, oPrefix); err == nil {
		t.Error("shrinking append accepted")
	}
}

// TestAppendUniverseFaultSite pins that the fpm.universe_append failpoint
// aborts incremental maintenance before any work, with a clean error.
func TestAppendUniverseFaultSite(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	full, prefix, _, oPrefix, items := appendFixture(t, 7, 1000, 1200)
	base := NewUniverse(prefix, items, oPrefix)
	if err := faultinject.Arm(faultinject.SiteUniverseAppend, "error(injected append fault)"); err != nil {
		t.Fatal(err)
	}
	oFull := outcome.ErrorRate(make([]bool, full.NumRows()), make([]bool, full.NumRows()))
	if _, err := AppendUniverse(full, base, oFull); err == nil {
		t.Error("armed failpoint did not surface an error")
	}
}

// BenchmarkAppendEpoch pins the incremental-maintenance speedup: growing
// a universe by a 10% row batch through AppendUniverse against
// rebuilding it from scratch over the full table with the same items.
// The rebuild sub-benchmark reports the measured advantage as the
// speedup-x metric; the lifecycle acceptance floor is 5x.
func BenchmarkAppendEpoch(b *testing.B) {
	const oldN, newN = 90_000, 100_000
	full, prefix, oFull, oPrefix, items := appendFixture(b, 7, oldN, newN)
	base := NewUniverse(prefix, items, oPrefix)

	var incPerOp float64
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := AppendUniverse(full, base, oFull); err != nil {
				b.Fatal(err)
			}
		}
		incPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewUniverse(full, items, oFull)
		}
		if incPerOp > 0 {
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perOp/incPerOp, "speedup-x")
		}
	})
}
