package hierarchy

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Node is one node of an item hierarchy tree.
type Node struct {
	Item     *Item
	Parent   int   // index of the parent node, -1 for the root
	Children []int // indices of child nodes; their domains partition this node's
}

// Hierarchy is an item hierarchy (I_A, ≻_A) for a single attribute: a tree
// whose nodes carry items and whose child items partition the parent item's
// domain (Definition 4.1). Node 0 is the root and covers the whole domain.
type Hierarchy struct {
	Attr  string
	Nodes []Node
}

// NewRooted returns a hierarchy containing only the given root item.
func NewRooted(attr string, root *Item) *Hierarchy {
	return &Hierarchy{Attr: attr, Nodes: []Node{{Item: root, Parent: -1}}}
}

// AddChild appends a child of the node at index parent and returns the new
// node's index.
func (h *Hierarchy) AddChild(parent int, it *Item) int {
	if parent < 0 || parent >= len(h.Nodes) {
		panic(fmt.Sprintf("hierarchy: parent index %d out of range", parent))
	}
	idx := len(h.Nodes)
	h.Nodes = append(h.Nodes, Node{Item: it, Parent: parent})
	h.Nodes[parent].Children = append(h.Nodes[parent].Children, idx)
	return idx
}

// Root returns the root node index (always 0).
func (h *Hierarchy) Root() int { return 0 }

// IsLeaf reports whether node i has no children.
func (h *Hierarchy) IsLeaf(i int) bool { return len(h.Nodes[i].Children) == 0 }

// Depth returns the depth of node i (root = 0).
func (h *Hierarchy) Depth(i int) int {
	d := 0
	for h.Nodes[i].Parent >= 0 {
		i = h.Nodes[i].Parent
		d++
	}
	return d
}

// Items returns the items of all non-root nodes: the exploration item
// universe contributed by this attribute under hierarchical exploration.
// The root is excluded because it constrains nothing.
func (h *Hierarchy) Items() []*Item {
	out := make([]*Item, 0, len(h.Nodes)-1)
	for i, n := range h.Nodes {
		if i != 0 {
			out = append(out, n.Item)
		}
	}
	return out
}

// LeafItems returns the items of the leaves only: the non-overlapping
// discretization used by base (non-hierarchical) exploration. If the root is
// the only node, it has no usable leaf items and an empty slice is returned.
func (h *Hierarchy) LeafItems() []*Item {
	var out []*Item
	for i, n := range h.Nodes {
		if i != 0 && h.IsLeaf(i) {
			out = append(out, n.Item)
		}
	}
	return out
}

// Ancestors returns the node indices on the path from node i's parent up to
// (and including) the root.
func (h *Hierarchy) Ancestors(i int) []int {
	var out []int
	for p := h.Nodes[i].Parent; p >= 0; p = h.Nodes[p].Parent {
		out = append(out, p)
	}
	return out
}

// Validate checks the structural partition property of Definition 4.1: for
// every internal node, the children's domains are pairwise disjoint and
// their union equals the parent's domain. For continuous attributes this is
// checked on interval endpoints; for categorical attributes on code sets.
func (h *Hierarchy) Validate() error {
	if len(h.Nodes) == 0 {
		return fmt.Errorf("hierarchy %q: empty", h.Attr)
	}
	for i, n := range h.Nodes {
		if n.Item == nil {
			return fmt.Errorf("hierarchy %q: node %d has nil item", h.Attr, i)
		}
		if n.Item.Attr != h.Attr {
			return fmt.Errorf("hierarchy %q: node %d constrains attribute %q", h.Attr, i, n.Item.Attr)
		}
		if len(n.Children) == 0 {
			continue
		}
		if err := h.validateSplit(i); err != nil {
			return err
		}
	}
	return nil
}

func (h *Hierarchy) validateSplit(parent int) error {
	p := h.Nodes[parent].Item
	kids := h.Nodes[parent].Children
	switch p.Kind {
	case dataset.Continuous:
		// Children must tile (Lo, Hi] exactly.
		type iv struct{ lo, hi float64 }
		ivs := make([]iv, len(kids))
		for j, k := range kids {
			c := h.Nodes[k].Item
			if c.Kind != dataset.Continuous {
				return fmt.Errorf("hierarchy %q: node %d mixes kinds", h.Attr, parent)
			}
			ivs[j] = iv{c.Lo, c.Hi}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
		if ivs[0].lo != p.Lo {
			return fmt.Errorf("hierarchy %q: children of node %d start at %v, want %v", h.Attr, parent, ivs[0].lo, p.Lo)
		}
		for j := 1; j < len(ivs); j++ {
			if ivs[j].lo != ivs[j-1].hi {
				return fmt.Errorf("hierarchy %q: children of node %d have gap/overlap at %v", h.Attr, parent, ivs[j].lo)
			}
		}
		if last := ivs[len(ivs)-1].hi; last != p.Hi {
			return fmt.Errorf("hierarchy %q: children of node %d end at %v, want %v", h.Attr, parent, last, p.Hi)
		}
	case dataset.Categorical:
		seen := map[int]int{} // code -> child node index
		total := 0
		for _, k := range kids {
			c := h.Nodes[k].Item
			if c.Kind != dataset.Categorical {
				return fmt.Errorf("hierarchy %q: node %d mixes kinds", h.Attr, parent)
			}
			for _, code := range c.Codes {
				if prev, dup := seen[code]; dup {
					return fmt.Errorf("hierarchy %q: code %d covered by children %d and %d of node %d", h.Attr, code, prev, k, parent)
				}
				seen[code] = k
				if !p.MatchesCode(code) {
					return fmt.Errorf("hierarchy %q: child of node %d covers code %d outside parent", h.Attr, parent, code)
				}
				total++
			}
		}
		if total != len(p.Codes) {
			return fmt.Errorf("hierarchy %q: children of node %d cover %d codes, parent covers %d", h.Attr, parent, total, len(p.Codes))
		}
	}
	return nil
}

// ValidateOn empirically checks the partition property against a table: for
// each internal node, each row matching the node's item must match exactly
// one child item.
func (h *Hierarchy) ValidateOn(t *dataset.Table) error {
	if err := h.Validate(); err != nil {
		return err
	}
	for i, n := range h.Nodes {
		if len(n.Children) == 0 {
			continue
		}
		parentRows := n.Item.Rows(t)
		union := parentRows.Clone()
		union.AndNot(union) // zero
		covered := 0
		for _, k := range n.Children {
			cr := h.Nodes[k].Item.Rows(t)
			if cr.Intersects(union) {
				return fmt.Errorf("hierarchy %q: children of node %d overlap on data", h.Attr, i)
			}
			union.Or(cr)
			covered += cr.Count()
		}
		if covered != parentRows.Count() || !union.Equal(parentRows) {
			return fmt.Errorf("hierarchy %q: children of node %d cover %d rows, parent has %d", h.Attr, i, covered, parentRows.Count())
		}
	}
	return nil
}

// String renders the hierarchy as an indented tree for debugging.
func (h *Hierarchy) String() string {
	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), h.Nodes[i].Item)
		for _, c := range h.Nodes[i].Children {
			walk(c, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

// FlatCategorical builds a depth-1 hierarchy for a categorical column: a
// universal root with one child per observed level. This is the
// non-hierarchical treatment of a categorical attribute (items A=a for all
// a ∈ D_A).
func FlatCategorical(t *dataset.Table, attr string) *Hierarchy {
	levels := t.Levels(attr)
	all := make([]int, len(levels))
	for i := range all {
		all[i] = i
	}
	root := CategoricalItemNamed(attr, attr+"=*", levels, all...)
	h := NewRooted(attr, root)
	for code, level := range levels {
		h.AddChild(0, CategoricalItemNamed(attr, fmt.Sprintf("%s=%s", attr, level), []string{level}, code))
	}
	return h
}

// PathTaxonomy builds a multi-level hierarchy for a categorical column from
// a path function: pathOf(level) returns the chain of group labels from
// coarsest to finest (excluding the level itself), e.g. for an IP address
// "118.114.119.88" → ["118", "118.114", "118.114.119"]. Levels sharing a
// prefix share the corresponding internal nodes; each leaf covers exactly
// one level code. An empty path attaches the level directly under the root.
func PathTaxonomy(t *dataset.Table, attr string, pathOf func(level string) []string) *Hierarchy {
	levels := t.Levels(attr)
	all := make([]int, len(levels))
	for i := range all {
		all[i] = i
	}
	h := NewRooted(attr, CategoricalItemNamed(attr, attr+"=*", levels, all...))
	// Group nodes are created lazily; codes and names are added to every
	// ancestor.
	groupNode := map[string]int{} // joined path -> node index
	for code, level := range levels {
		parent := 0
		key := ""
		for _, g := range pathOf(level) {
			key += "/" + g
			idx, ok := groupNode[key]
			if !ok {
				idx = h.AddChild(parent, CategoricalItem(attr, fmt.Sprintf("%s=%s", attr, g)))
				groupNode[key] = idx
			}
			// Extend the group's coverage with this code and level name.
			it := h.Nodes[idx].Item
			it.Codes = append(it.Codes, code)
			sort.Ints(it.Codes)
			it.Codes = dedupInts(it.Codes)
			it.Names = append(it.Names, level)
			sort.Strings(it.Names)
			it.Names = dedupStrings(it.Names)
			parent = idx
		}
		h.AddChild(parent, CategoricalItemNamed(attr, fmt.Sprintf("%s=%s", attr, level), []string{level}, code))
	}
	collapseUnaryGroups(h)
	return h
}

func dedupStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// collapseUnaryGroups removes internal group nodes that have exactly one
// child whose item covers the same codes (a group containing a single level
// adds no granularity and would duplicate the item in the universe).
func collapseUnaryGroups(h *Hierarchy) {
	// Rebuild the tree, skipping redundant unary group nodes.
	out := NewRooted(h.Attr, h.Nodes[0].Item)
	var copyTree func(src, dstParent int)
	copyTree = func(src, dstParent int) {
		n := h.Nodes[src]
		if len(n.Children) == 1 {
			only := h.Nodes[n.Children[0]]
			if sameCodes(n.Item.Codes, only.Item.Codes) {
				// Skip this node; graft its only child in its place.
				copyTree(n.Children[0], dstParent)
				return
			}
		}
		idx := out.AddChild(dstParent, n.Item)
		for _, c := range n.Children {
			copyTree(c, idx)
		}
	}
	for _, c := range h.Nodes[0].Children {
		copyTree(c, 0)
	}
	*h = *out
}

func sameCodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IntervalHierarchyFromCuts builds a hierarchy for a continuous attribute
// from nested cut layers. cuts[0] is the coarsest layer: a sorted list of
// interior cut points partitioning (-Inf,+Inf]; each subsequent layer must
// contain the previous as a subset and refines it. This is a convenience
// for manually specified hierarchical discretizations; the tree discretizer
// in package discretize builds richer hierarchies automatically.
func IntervalHierarchyFromCuts(attr string, layers [][]float64) (*Hierarchy, error) {
	h := NewRooted(attr, ContinuousItem(attr, math.Inf(-1), math.Inf(1)))
	// frontier maps each current leaf interval to its node index.
	type span struct{ lo, hi float64 }
	frontier := map[span]int{{math.Inf(-1), math.Inf(1)}: 0}
	prev := []float64{}
	for li, cuts := range layers {
		if !sort.Float64sAreSorted(cuts) {
			return nil, fmt.Errorf("hierarchy: layer %d cuts not sorted", li)
		}
		if !isSubset(prev, cuts) {
			return nil, fmt.Errorf("hierarchy: layer %d does not refine layer %d", li, li-1)
		}
		next := map[span]int{}
		for sp, node := range frontier {
			inner := cutsWithin(cuts, sp.lo, sp.hi)
			if len(inner) == 0 {
				next[sp] = node
				continue
			}
			bounds := append(append([]float64{sp.lo}, inner...), sp.hi)
			for i := 0; i+1 < len(bounds); i++ {
				child := ContinuousItem(attr, bounds[i], bounds[i+1])
				idx := h.AddChild(node, child)
				next[span{bounds[i], bounds[i+1]}] = idx
			}
		}
		frontier = next
		prev = cuts
	}
	return h, nil
}

func isSubset(sub, super []float64) bool {
	j := 0
	for _, v := range sub {
		for j < len(super) && super[j] < v {
			j++
		}
		if j >= len(super) || super[j] != v {
			return false
		}
	}
	return true
}

func cutsWithin(cuts []float64, lo, hi float64) []float64 {
	var out []float64
	for _, c := range cuts {
		if c > lo && c < hi {
			out = append(out, c)
		}
	}
	return out
}

// Set is the collection of hierarchies for a dataset: one per attribute
// taking part in the exploration (the paper's Γ).
type Set struct {
	ByAttr map[string]*Hierarchy
	order  []string
}

// NewSet returns an empty hierarchy set.
func NewSet() *Set {
	return &Set{ByAttr: map[string]*Hierarchy{}}
}

// Add registers a hierarchy, replacing any previous one for the attribute.
func (s *Set) Add(h *Hierarchy) {
	if _, dup := s.ByAttr[h.Attr]; !dup {
		s.order = append(s.order, h.Attr)
	}
	s.ByAttr[h.Attr] = h
}

// Attrs returns attribute names in insertion order.
func (s *Set) Attrs() []string { return append([]string(nil), s.order...) }

// AllItems returns the union of Items() over all hierarchies, in attribute
// insertion order: the generalized exploration universe.
func (s *Set) AllItems() []*Item {
	var out []*Item
	for _, a := range s.order {
		out = append(out, s.ByAttr[a].Items()...)
	}
	return out
}

// AllLeafItems returns the union of LeafItems() over all hierarchies: the
// base exploration universe.
func (s *Set) AllLeafItems() []*Item {
	var out []*Item
	for _, a := range s.order {
		out = append(out, s.ByAttr[a].LeafItems()...)
	}
	return out
}

// Validate validates every hierarchy in the set.
func (s *Set) Validate() error {
	for _, a := range s.order {
		if err := s.ByAttr[a].Validate(); err != nil {
			return err
		}
	}
	return nil
}
