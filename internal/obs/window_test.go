package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a test clock for Windowed: an atomically advanced instant.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestWindowedBasicRotation pins the ring semantics with a fake clock:
// observations live for exactly `epochs` epochs, the merge window slices
// recency, and a full ring revolution forgets everything.
func TestWindowedBasicRotation(t *testing.T) {
	var clk fakeClock
	w := NewWindowed([]float64{1, 10, 100}, time.Second, 4, clk.now)

	w.Observe(5) // epoch 0
	clk.advance(time.Second)
	w.Observe(50) // epoch 1
	w.Observe(50)
	clk.advance(time.Second)
	w.Observe(0.5) // epoch 2

	if got := w.Merged(0).Count; got != 4 { // 0 = full ring
		t.Errorf("full-window count = %d, want 4", got)
	}
	if got := w.Merged(1).Count; got != 1 {
		t.Errorf("current-epoch count = %d, want 1", got)
	}
	if got := w.Merged(2).Count; got != 3 {
		t.Errorf("2-epoch count = %d, want 3", got)
	}
	if got := w.CountWindow(2); got != 3 {
		t.Errorf("CountWindow(2) = %d, want 3", got)
	}
	rec := w.Merged(4)
	if q := rec.Quantile(0.5); q != 10 {
		t.Errorf("windowed p50 = %g, want 10 (upper-bound estimate)", q)
	}
	if q := rec.Quantile(0.9); q != 100 {
		t.Errorf("windowed p90 = %g, want 100", q)
	}

	// Four epochs later everything has aged out, without any Observe
	// having to touch the stale slots.
	clk.advance(4 * time.Second)
	if got := w.Merged(0).Count; got != 0 {
		t.Errorf("count after ring revolution = %d, want 0", got)
	}

	// Reuse after rotation: the slot of epoch 6 (same slot as epoch 2)
	// resets before accumulating.
	w.Observe(5)
	if got, sum := w.Merged(1).Count, w.Merged(1).Sum; got != 1 || sum != 5 {
		t.Errorf("post-rotation epoch = count %d sum %g, want 1 5", got, sum)
	}
}

// TestWindowedNilAndCounter covers the nil contract and the bounds-less
// windowed-counter degenerate form.
func TestWindowedNilAndCounter(t *testing.T) {
	var w *Windowed
	w.Observe(1)
	w.Add(3)
	if w.Merged(1).Count != 0 || w.CountWindow(1) != 0 || w.Epochs() != 0 || w.EpochDuration() != 0 {
		t.Error("nil Windowed holds data")
	}

	var clk fakeClock
	c := NewWindowed(nil, time.Second, 8, clk.now)
	c.Add(5)
	c.Observe(2.5)
	clk.advance(time.Second)
	c.Add(2)
	if got := c.CountWindow(2); got != 8 {
		t.Errorf("windowed counter = %d, want 8", got)
	}
	if got := c.CountWindow(1); got != 2 {
		t.Errorf("current-epoch counter = %d, want 2", got)
	}
	if sum := c.Merged(2).Sum; sum != 2.5 {
		t.Errorf("counter sum = %g, want 2.5 (Add contributes no sum)", sum)
	}
	if !math.IsNaN(c.Merged(2).Quantile(0.5)) {
		t.Error("bounds-less window should have NaN quantiles")
	}

	// Degenerate construction falls back to the documented defaults.
	d := NewWindowed(nil, 0, 0, nil)
	if d.Epochs() != 64 || d.EpochDuration() != time.Second {
		t.Errorf("defaults = %d epochs × %v", d.Epochs(), d.EpochDuration())
	}
}

// TestWindowedMergeMatchesReference is the property test: over randomized
// observation streams with a randomly advancing fake clock, the merged
// rotating-window record agrees bin-for-bin with a plain Histogram fed
// exactly the in-window observations, and its quantiles agree with a
// sort-based reference quantile (observations are drawn from the bucket
// bounds so the upper-bound estimate is exact).
func TestWindowedMergeMatchesReference(t *testing.T) {
	bounds := []float64{1, 2, 4, 8, 16, 32}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var clk fakeClock
		epochs := 2 + rng.Intn(7) // ring of 2..8 epochs
		w := NewWindowed(bounds, time.Second, epochs, clk.now)

		type obsAt struct {
			epoch int64
			v     float64
		}
		var stream []obsAt
		for i := 0; i < 500; i++ {
			if rng.Float64() < 0.3 {
				clk.advance(time.Duration(rng.Int63n(int64(1500 * time.Millisecond))))
			}
			v := bounds[rng.Intn(len(bounds))]
			w.Observe(v)
			stream = append(stream, obsAt{clk.ns.Load() / int64(time.Second), v})
		}

		cur := clk.ns.Load() / int64(time.Second)
		for window := 1; window <= epochs; window++ {
			// Reference: a plain histogram (and a sorted slice) over exactly
			// the observations whose epoch falls inside the window.
			ref := newHistogram(bounds)
			var vals []float64
			for _, o := range stream {
				if o.epoch > cur-int64(window) && o.epoch <= cur {
					ref.Observe(o.v)
					vals = append(vals, o.v)
				}
			}
			want := ref.snapshot()
			got := w.Merged(window)
			if got.Count != want.Count || got.Sum != want.Sum {
				t.Fatalf("trial %d window %d: count/sum = %d/%g, want %d/%g",
					trial, window, got.Count, got.Sum, want.Count, want.Sum)
			}
			for i := range want.Counts {
				if got.Counts[i] != want.Counts[i] {
					t.Fatalf("trial %d window %d bin %d: %d, want %d (got %v want %v)",
						trial, window, i, got.Counts[i], want.Counts[i], got.Counts, want.Counts)
				}
			}
			if len(vals) == 0 {
				continue
			}
			sort.Float64s(vals)
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
				rank := int(math.Ceil(q * float64(len(vals))))
				if rank < 1 {
					rank = 1
				}
				if gq, wq := got.Quantile(q), vals[rank-1]; gq != wq {
					t.Fatalf("trial %d window %d q=%g: windowed %g, sort-based %g",
						trial, window, q, gq, wq)
				}
			}
		}
	}
}

// TestWindowedRaceStress hammers one Windowed from concurrent writers
// while the clock advances fast enough to force slot rotation and
// concurrent readers merge every window size; `make race` runs it under
// the race detector. Total conservation is asserted where it is exact:
// nothing is ever counted twice, and with the clock frozen afterwards the
// final full-ring merge sees every observation recorded in the live ring
// span.
func TestWindowedRaceStress(t *testing.T) {
	const writers, ops = 8, 5000
	var clk fakeClock
	w := NewWindowed([]float64{250, 500, 5000}, time.Second, 4, clk.now)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // rotator: advances the fake clock across ~3 epochs
		defer wg.Done()
		for i := 0; i < 30; i++ {
			clk.advance(100 * time.Millisecond)
			time.Sleep(200 * time.Microsecond)
		}
		close(stop)
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				w.Observe(float64(i % 7000))
				if i%64 == 0 {
					w.Add(1)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // reader racing record and rotation
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for win := 1; win <= 4; win++ {
				rec := w.Merged(win)
				if rec.Count < 0 {
					t.Error("negative merged count")
				}
				w.CountWindow(win)
				rec.Quantile(0.99)
			}
		}
	}()
	wg.Wait()

	// The clock advanced 3s total, so every epoch written (0..3) is still
	// in the 4-slot ring: the full merge must conserve all observations.
	const total = writers * (ops + (ops+63)/64)
	if got := w.Merged(0).Count; got != total {
		t.Errorf("final full-ring count = %d, want %d", got, total)
	}
}
