// Package model provides the classifier substrate used by the experiment
// pipeline: a CART-style decision tree and a bagged random forest. The
// paper's quantitative experiments train "a random forest classifier with
// default parameters" on each UCI dataset and explore the divergence of its
// error rate; this package plays that role for the synthetic analogs.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// TreeOptions configures decision-tree induction.
type TreeOptions struct {
	// MaxDepth bounds tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of training rows per leaf (default 1).
	MinLeaf int
	// FeatureFraction is the fraction of features sampled at each split;
	// 0 means all features (single trees) — forests override it.
	FeatureFraction float64
	// rng drives feature subsampling; nil means deterministic full search.
	rng *rand.Rand
}

// node is one decision-tree node.
type node struct {
	leaf    bool
	value   bool    // majority class at this node
	prob    float64 // fraction of positive training rows
	feature int     // column index in the feature schema
	isCat   bool
	thresh  float64 // continuous: go left iff v <= thresh (NaN goes left)
	level   string  // categorical: go left iff the row's level equals this
	left    *node
	right   *node
}

// Tree is a trained decision tree.
type Tree struct {
	root     *node
	features []dataset.Field
}

// TrainTree fits a CART tree with Gini impurity on the given feature
// columns and boolean labels.
func TrainTree(t *dataset.Table, features []string, labels []bool, opt TreeOptions) (*Tree, error) {
	cols, fields, err := featureColumns(t, features)
	if err != nil {
		return nil, err
	}
	if len(labels) != t.NumRows() {
		return nil, fmt.Errorf("model: %d labels for %d rows", len(labels), t.NumRows())
	}
	if opt.MinLeaf <= 0 {
		opt.MinLeaf = 1
	}
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	tr := &Tree{features: fields}
	tr.root = grow(cols, labels, rows, opt, 0)
	return tr, nil
}

// column holds one feature column in a split-friendly layout.
type column struct {
	field      dataset.Field
	floats     []float64
	codes      []int
	levels     []string
	levelIndex map[string]int
}

func featureColumns(t *dataset.Table, features []string) ([]column, []dataset.Field, error) {
	if len(features) == 0 {
		return nil, nil, fmt.Errorf("model: no features")
	}
	cols := make([]column, len(features))
	fields := make([]dataset.Field, len(features))
	for i, name := range features {
		if !t.HasColumn(name) {
			return nil, nil, fmt.Errorf("model: no column %q", name)
		}
		k := t.KindOf(name)
		fields[i] = dataset.Field{Name: name, Kind: k}
		if k == dataset.Continuous {
			cols[i] = column{field: fields[i], floats: t.Floats(name)}
		} else {
			levels := t.Levels(name)
			idx := make(map[string]int, len(levels))
			for code, l := range levels {
				idx[l] = code
			}
			cols[i] = column{field: fields[i], codes: t.Codes(name), levels: levels, levelIndex: idx}
		}
	}
	return cols, fields, nil
}

func grow(cols []column, labels []bool, rows []int, opt TreeOptions, depth int) *node {
	pos := 0
	for _, r := range rows {
		if labels[r] {
			pos++
		}
	}
	n := &node{
		leaf:  true,
		value: 2*pos >= len(rows),
		prob:  float64(pos) / float64(len(rows)),
	}
	if pos == 0 || pos == len(rows) || len(rows) < 2*opt.MinLeaf {
		return n
	}
	if opt.MaxDepth > 0 && depth >= opt.MaxDepth {
		return n
	}

	// Feature subsample.
	feat := make([]int, len(cols))
	for i := range feat {
		feat[i] = i
	}
	if opt.FeatureFraction > 0 && opt.FeatureFraction < 1 && opt.rng != nil {
		k := int(math.Ceil(opt.FeatureFraction * float64(len(cols))))
		opt.rng.Shuffle(len(feat), func(a, b int) { feat[a], feat[b] = feat[b], feat[a] })
		feat = feat[:k]
	}

	best := split{gain: 0}
	parentGini := gini(pos, len(rows)-pos)
	for _, fi := range feat {
		var s split
		if cols[fi].field.Kind == dataset.Continuous {
			s = bestContinuousSplit(cols[fi], labels, rows, opt.MinLeaf, parentGini)
		} else {
			s = bestCategoricalSplit(cols[fi], labels, rows, opt.MinLeaf, parentGini)
		}
		if s.gain > best.gain {
			best = s
			best.feature = fi
		}
	}
	if best.gain <= 1e-12 {
		return n
	}

	var left, right []int
	for _, r := range rows {
		if goesLeft(&cols[best.feature], r, best) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < opt.MinLeaf || len(right) < opt.MinLeaf {
		return n
	}
	n.leaf = false
	n.feature = best.feature
	n.isCat = best.isCat
	n.thresh = best.thresh
	n.level = best.level
	n.left = grow(cols, labels, left, opt, depth+1)
	n.right = grow(cols, labels, right, opt, depth+1)
	return n
}

type split struct {
	gain    float64
	feature int
	isCat   bool
	thresh  float64
	level   string
}

// goesLeft routes a row at a split. Categorical splits are matched by level
// name, not dictionary code, so a tree predicts correctly on tables whose
// dictionaries assign different codes to the same levels.
func goesLeft(c *column, row int, s split) bool {
	if s.isCat {
		code, ok := c.levelIndex[s.level]
		return ok && c.codes[row] == code
	}
	v := c.floats[row]
	return math.IsNaN(v) || v <= s.thresh
}

// gini returns the Gini impurity of a (pos, neg) node.
func gini(pos, neg int) float64 {
	n := float64(pos + neg)
	if n == 0 {
		return 0
	}
	p := float64(pos) / n
	return 2 * p * (1 - p)
}

// weightedChildGini returns the size-weighted Gini of a binary split.
func weightedChildGini(posL, negL, posR, negR int) float64 {
	nL, nR := float64(posL+negL), float64(posR+negR)
	n := nL + nR
	return nL/n*gini(posL, negL) + nR/n*gini(posR, negR)
}

func bestContinuousSplit(c column, labels []bool, rows []int, minLeaf int, parentGini float64) split {
	// Sort rows by value; NaNs first (they always go left).
	idx := append([]int(nil), rows...)
	sort.Slice(idx, func(a, b int) bool {
		va, vb := c.floats[idx[a]], c.floats[idx[b]]
		if math.IsNaN(va) {
			return !math.IsNaN(vb)
		}
		if math.IsNaN(vb) {
			return false
		}
		return va < vb
	})
	totalPos := 0
	for _, r := range idx {
		if labels[r] {
			totalPos++
		}
	}
	best := split{gain: 0}
	posL, nL := 0, 0
	for i := 0; i < len(idx)-1; i++ {
		r := idx[i]
		nL++
		if labels[r] {
			posL++
		}
		v, next := c.floats[r], c.floats[idx[i+1]]
		if math.IsNaN(next) || v == next || math.IsNaN(v) && math.IsNaN(next) {
			continue
		}
		if nL < minLeaf || len(idx)-nL < minLeaf {
			continue
		}
		g := parentGini - weightedChildGini(posL, nL-posL, totalPos-posL, len(idx)-nL-(totalPos-posL))
		if g > best.gain {
			thresh := v
			if math.IsNaN(thresh) {
				// All left rows so far are NaN: split "NaN vs rest".
				thresh = math.Inf(-1)
			}
			best = split{gain: g, thresh: thresh}
		}
	}
	return best
}

func bestCategoricalSplit(c column, labels []bool, rows []int, minLeaf int, parentGini float64) split {
	posBy := make([]int, len(c.levels))
	cntBy := make([]int, len(c.levels))
	totalPos := 0
	for _, r := range rows {
		cntBy[c.codes[r]]++
		if labels[r] {
			posBy[c.codes[r]]++
			totalPos++
		}
	}
	best := split{gain: 0, isCat: true}
	for code := range c.levels {
		nL := cntBy[code]
		if nL < minLeaf || len(rows)-nL < minLeaf {
			continue
		}
		posL := posBy[code]
		g := parentGini - weightedChildGini(posL, nL-posL, totalPos-posL, len(rows)-nL-(totalPos-posL))
		if g > best.gain {
			best = split{gain: g, isCat: true, level: c.levels[code]}
		}
	}
	return best
}

// Predict returns the tree's class prediction for every row of the table,
// which must contain the training feature columns.
func (tr *Tree) Predict(t *dataset.Table) ([]bool, error) {
	probs, err := tr.PredictProb(t)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(probs))
	for i, p := range probs {
		out[i] = p >= 0.5
	}
	return out, nil
}

// PredictProb returns the positive-class probability for every row.
func (tr *Tree) PredictProb(t *dataset.Table) ([]float64, error) {
	names := make([]string, len(tr.features))
	for i, f := range tr.features {
		names[i] = f.Name
	}
	cols, _, err := featureColumns(t, names)
	if err != nil {
		return nil, err
	}
	out := make([]float64, t.NumRows())
	for r := range out {
		n := tr.root
		for !n.leaf {
			s := split{isCat: n.isCat, thresh: n.thresh, level: n.level, feature: n.feature}
			if goesLeft(&cols[n.feature], r, s) {
				n = n.left
			} else {
				n = n.right
			}
		}
		out[r] = n.prob
	}
	return out, nil
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (tr *Tree) Depth() int {
	var d func(n *node) int
	d = func(n *node) int {
		if n.leaf {
			return 0
		}
		l, r := d(n.left), d(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(tr.root)
}
