package server

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultTraceRing is the default capacity of the completed-request
// ring: only the most recent explorations keep their progress and trace
// snapshot queryable, so the registry's memory is bounded no matter how
// many requests the daemon serves over its lifetime. Configurable via
// Config.TraceRing (the daemon's -trace-ring flag).
const DefaultTraceRing = 64

// maxTraceRing bounds configurable ring sizes: each retained entry holds
// a full trace snapshot, so an unbounded ring would reintroduce the
// unbounded memory growth the ring exists to avoid.
const maxTraceRing = 4096

// requestState tracks one exploration request for the progress and trace
// endpoints. Progress is written lock-free by the miner; the remaining
// fields are written once, under the registry mutex, when the request
// finishes.
type requestState struct {
	ID      string
	Dataset string
	Started time.Time

	Progress *obs.Progress

	// Status is "running" until finish, then "done", "cancelled" or
	// "error". Trace is the request tracer's snapshot, set at finish.
	Status string
	Trace  *obs.Trace
}

// requestRegistry indexes in-flight and recently completed explorations
// by correlation ID.
type requestRegistry struct {
	mu     sync.Mutex
	cap    int
	active map[string]*requestState
	recent []*requestState // newest last, at most cap entries
}

func newRequestRegistry(cap int) *requestRegistry {
	if cap <= 0 {
		cap = DefaultTraceRing
	}
	if cap > maxTraceRing {
		cap = maxTraceRing
	}
	return &requestRegistry{cap: cap, active: map[string]*requestState{}}
}

// start registers a running request. A client-supplied ID colliding with
// an active request simply replaces it in the index (last wins); callers
// wanting reliable polling should send unique IDs.
func (g *requestRegistry) start(id, dataset string, prog *obs.Progress) *requestState {
	st := &requestState{
		ID:       id,
		Dataset:  dataset,
		Started:  time.Now(),
		Progress: prog,
		Status:   "running",
	}
	g.mu.Lock()
	g.active[id] = st
	g.mu.Unlock()
	return st
}

// finish moves a request from the active index into the bounded recent
// ring, attaching its final status and trace snapshot.
func (g *requestRegistry) finish(st *requestState, trace *obs.Trace, status string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st.Status = status
	st.Trace = trace
	if g.active[st.ID] == st {
		delete(g.active, st.ID)
	}
	// Drop any older completed entry with the same ID so lookups are
	// unambiguous, then append and trim to capacity.
	for i, old := range g.recent {
		if old.ID == st.ID {
			g.recent = append(g.recent[:i], g.recent[i+1:]...)
			break
		}
	}
	g.recent = append(g.recent, st)
	if len(g.recent) > g.cap {
		g.recent = g.recent[len(g.recent)-g.cap:]
	}
}

// oldestActive returns the start time of the longest-running in-flight
// request, feeding the 429 Retry-After estimate. ok is false when
// nothing is in flight.
func (g *requestRegistry) oldestActive() (oldest time.Time, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, st := range g.active {
		if !ok || st.Started.Before(oldest) {
			oldest, ok = st.Started, true
		}
	}
	return oldest, ok
}

// get returns the state for an ID plus a consistent copy of its Status
// and Trace (the fields finish mutates). Active requests win over
// completed ones.
func (g *requestRegistry) get(id string) (st *requestState, status string, trace *obs.Trace) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.active[id]; st != nil {
		return st, st.Status, st.Trace
	}
	for i := len(g.recent) - 1; i >= 0; i-- {
		if g.recent[i].ID == id {
			return g.recent[i], g.recent[i].Status, g.recent[i].Trace
		}
	}
	return nil, "", nil
}

// list snapshots every known request: running ones first (oldest first),
// then completed ones, newest first.
func (g *requestRegistry) list() []progressReply {
	g.mu.Lock()
	defer g.mu.Unlock()
	running := make([]*requestState, 0, len(g.active))
	for _, st := range g.active {
		running = append(running, st)
	}
	sort.Slice(running, func(a, b int) bool { return running[a].Started.Before(running[b].Started) })
	out := make([]progressReply, 0, len(running)+len(g.recent))
	for _, st := range running {
		out = append(out, progressReplyOf(st, st.Status))
	}
	for i := len(g.recent) - 1; i >= 0; i-- {
		out = append(out, progressReplyOf(g.recent[i], g.recent[i].Status))
	}
	return out
}

// progressReply is the GET /v1/progress reply element.
type progressReply struct {
	ID       string               `json:"id"`
	Dataset  string               `json:"dataset"`
	Status   string               `json:"status"`
	Progress obs.ProgressSnapshot `json:"progress"`
}

func progressReplyOf(st *requestState, status string) progressReply {
	return progressReply{
		ID:       st.ID,
		Dataset:  st.Dataset,
		Status:   status,
		Progress: st.Progress.Snapshot(),
	}
}

// requestID returns the request's correlation ID: a well-formed
// client-supplied X-Request-ID (letters, digits, '.', '_', '-'; at most
// 64 bytes) is honoured so clients can poll /v1/progress/{id} while the
// exploration runs; anything else gets a generated ID.
func requestID(r *http.Request) string {
	id := strings.TrimSpace(r.Header.Get("X-Request-ID"))
	if id == "" || len(id) > 64 {
		return obs.NewRequestID()
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return obs.NewRequestID()
		}
	}
	return id
}

func (s *Server) handleProgressList(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "progress").Add(1)
	writeJSON(w, http.StatusOK, s.requests.list())
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "progress").Add(1)
	id := r.PathValue("id")
	st, status, _ := s.requests.get(id)
	if st == nil {
		s.httpError(w, http.StatusNotFound, "unknown request %q", id)
		return
	}
	writeJSON(w, http.StatusOK, progressReplyOf(st, status))
}

// handleTrace exports a completed request's trace. The default rendering
// is Chrome/Perfetto trace_event JSON (load it at ui.perfetto.dev or
// chrome://tracing); ?format=json returns the raw span snapshot and
// ?format=tree the human-readable span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "trace").Add(1)
	id := r.PathValue("id")
	st, status, trace := s.requests.get(id)
	if st == nil {
		// Slow requests keep their trace in the flight recorder even after
		// rotating out of the recent-request ring.
		if trace = s.flight.slowTrace(id); trace == nil {
			s.httpError(w, http.StatusNotFound, "unknown request %q", id)
			return
		}
	} else if trace == nil {
		s.httpError(w, http.StatusConflict, "request %q is %s; its trace is available on completion", id, status)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = trace.WriteChromeTrace(w)
	case "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = trace.WriteJSON(w)
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(trace.Tree()))
	default:
		s.httpError(w, http.StatusBadRequest, "unknown trace format %q", r.URL.Query().Get("format"))
	}
}

// handleExplain exports a completed request's cost-attribution profile,
// computed on demand from the same trace snapshot /v1/trace/{id} serves.
// The default rendering is the JSON profile; ?format=text the aligned
// table the CLI's -explain flag prints.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "explain").Add(1)
	id := r.PathValue("id")
	st, status, trace := s.requests.get(id)
	if st == nil {
		if trace = s.flight.slowTrace(id); trace == nil {
			s.httpError(w, http.StatusNotFound, "unknown request %q", id)
			return
		}
	} else if trace == nil {
		s.httpError(w, http.StatusConflict, "request %q is %s; its explain profile is available on completion", id, status)
		return
	}
	ex := obs.NewExplain(trace)
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, ex)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(ex.Text()))
	default:
		s.httpError(w, http.StatusBadRequest, "unknown explain format %q", r.URL.Query().Get("format"))
	}
}
