// Package discretize turns continuous attributes into item hierarchies.
//
// The central algorithm is the paper's individual-attribute tree
// discretization (§V-A): starting from a root covering the whole attribute
// range, leaf nodes are recursively split at the value that maximizes a
// split gain, subject to both children retaining at least a minimum support
// st. Two gain criteria are provided: the classic entropy gain on a boolean
// outcome function, and the paper's novel divergence gain that applies to
// any outcome. Every node of the resulting tree — not just the leaves —
// becomes an item, yielding the item hierarchy consumed by H-DivExplorer;
// the leaves alone form a conventional non-overlapping discretization for
// base explorers.
//
// Unsupervised baselines (equal-frequency quantile and equal-width binning)
// and manually specified cut points are also provided; they produce flat
// (depth-1) hierarchies.
package discretize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// Criterion selects the split gain used by the tree discretizer.
type Criterion int

const (
	// DivergenceGain is the paper's criterion
	//   g(S1,S2|S,f) = #S1/#D·|f(S1)−f(S)| + #S2/#D·|f(S2)−f(S)|,
	// applicable to any outcome function.
	DivergenceGain Criterion = iota
	// EntropyGain is the classic weighted-entropy reduction on a boolean
	// outcome; it requires Outcome.Boolean.
	EntropyGain
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case DivergenceGain:
		return "divergence"
	case EntropyGain:
		return "entropy"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// TreeOptions configures the tree discretizer.
type TreeOptions struct {
	// Criterion is the split gain; DivergenceGain by default.
	Criterion Criterion
	// MinSupport is st: each tree node must cover at least this fraction of
	// the dataset. Must be in (0, 0.5].
	MinSupport float64
	// MaxDepth bounds the tree depth below the root; 0 means unlimited.
	MaxDepth int
	// Tracer, when non-nil, receives a span per attribute tree plus
	// counters for nodes grown and splits rejected.
	Tracer *obs.Tracer

	// parent nests the per-attribute spans under an enclosing span
	// (set by TreeSet).
	parent *obs.Span
}

// Tree builds the item hierarchy for one continuous attribute by recursive
// divergence-aware binary splitting. Rows whose attribute value is NaN take
// part in no node (they satisfy no item) but still count toward the dataset
// size in the support denominator, mirroring itemset support semantics.
func Tree(t *dataset.Table, attr string, o *outcome.Outcome, opts TreeOptions) (*hierarchy.Hierarchy, error) {
	if t.KindOf(attr) != dataset.Continuous {
		return nil, fmt.Errorf("discretize: attribute %q is not continuous", attr)
	}
	if o.Len() != t.NumRows() {
		return nil, fmt.Errorf("discretize: outcome has %d rows, table has %d", o.Len(), t.NumRows())
	}
	if opts.MinSupport <= 0 || opts.MinSupport > 0.5 {
		return nil, fmt.Errorf("discretize: MinSupport %v out of (0, 0.5]", opts.MinSupport)
	}
	if opts.Criterion == EntropyGain && !o.Boolean {
		return nil, fmt.Errorf("discretize: entropy criterion requires a boolean outcome, %q is not", o.Name)
	}

	if err := faultinject.Hit(faultinject.SiteDiscretizeTree); err != nil {
		return nil, err
	}
	span := opts.parent.Start(obs.SpanTreePrefix + attr)
	if span == nil {
		span = opts.Tracer.Start(obs.SpanTreePrefix + attr)
	}
	defer span.End()

	vals := t.Floats(attr)
	// Sort row order by attribute value, dropping NaNs.
	order := make([]int, 0, len(vals))
	for i, v := range vals {
		if !math.IsNaN(v) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

	n := len(order)
	// Prefix sums over the sorted order: valid-outcome count and outcome sum.
	sorted := make([]float64, n)
	prefValid := make([]int, n+1)
	prefSum := make([]float64, n+1)
	for i, row := range order {
		sorted[i] = vals[row]
		prefValid[i+1] = prefValid[i]
		prefSum[i+1] = prefSum[i]
		if o.Valid.Get(row) {
			prefValid[i+1]++
			prefSum[i+1] += o.Values[row]
		}
	}

	total := t.NumRows() // support denominator includes NaN rows
	minRows := int(math.Ceil(opts.MinSupport * float64(total)))
	if minRows < 1 {
		minRows = 1
	}

	h := hierarchy.NewRooted(attr, hierarchy.ContinuousItem(attr, math.Inf(-1), math.Inf(1)))

	type task struct {
		node   int
		a, b   int // sorted range [a, b)
		lo, hi float64
		depth  int
	}
	queue := []task{{node: 0, a: 0, b: n, lo: math.Inf(-1), hi: math.Inf(1), depth: 0}}
	g := gainer{criterion: opts.Criterion, total: float64(total), prefValid: prefValid, prefSum: prefSum}

	cNodes := opts.Tracer.Counter(obs.CtrTreeNodes)
	cNoSupport := opts.Tracer.Counter(obs.CtrSplitsNoSupport)
	cNoGain := opts.Tracer.Counter(obs.CtrSplitsNoGain)

	for len(queue) > 0 {
		tk := queue[0]
		queue = queue[1:]
		if opts.MaxDepth > 0 && tk.depth >= opts.MaxDepth {
			continue
		}
		if tk.b-tk.a < 2*minRows {
			cNoSupport.Add(1)
			continue
		}
		p, gain := g.bestSplit(tk.a, tk.b, sorted, minRows)
		if p < 0 || gain <= 0 {
			cNoGain.Add(1)
			continue
		}
		cNodes.Add(2)
		cut := sorted[p-1]
		left := h.AddChild(tk.node, hierarchy.ContinuousItem(attr, tk.lo, cut))
		right := h.AddChild(tk.node, hierarchy.ContinuousItem(attr, cut, tk.hi))
		queue = append(queue,
			task{node: left, a: tk.a, b: p, lo: tk.lo, hi: cut, depth: tk.depth + 1},
			task{node: right, a: p, b: tk.b, lo: cut, hi: tk.hi, depth: tk.depth + 1},
		)
	}
	return h, nil
}

// gainer evaluates split gains over a sorted range using prefix sums.
type gainer struct {
	criterion Criterion
	total     float64
	prefValid []int
	prefSum   []float64
}

// segment returns (#rows, #valid, Σo) for the sorted range [a,b).
func (g *gainer) segment(a, b int) (rows, valid int, sum float64) {
	return b - a, g.prefValid[b] - g.prefValid[a], g.prefSum[b] - g.prefSum[a]
}

// bestSplit scans candidate boundaries between distinct values in [a,b),
// honoring the support constraint, and returns the best split position p
// (left = [a,p), right = [p,b)) and its gain. p = -1 when no feasible
// candidate exists.
func (g *gainer) bestSplit(a, b int, sorted []float64, minRows int) (int, float64) {
	bestP, bestGain := -1, 0.0
	if b-a < 2*minRows {
		return -1, 0
	}
	_, validS, sumS := g.segment(a, b)
	var fS float64
	if validS > 0 {
		fS = sumS / float64(validS)
	}
	for p := a + minRows; p <= b-minRows; p++ {
		if sorted[p-1] == sorted[p] {
			continue // not a boundary between distinct values
		}
		gain := g.splitGain(a, p, b, validS, fS)
		if gain > bestGain {
			bestGain, bestP = gain, p
		}
	}
	return bestP, bestGain
}

func (g *gainer) splitGain(a, p, b, validS int, fS float64) float64 {
	rows1, valid1, sum1 := g.segment(a, p)
	rows2, valid2, sum2 := g.segment(p, b)
	switch g.criterion {
	case EntropyGain:
		// Weighted entropy reduction; the parent term is constant across
		// candidate splits of the same node but kept for interpretability.
		hS := 0.0
		if validS > 0 {
			hS = stats.BinaryEntropy(fS)
		}
		h1, h2 := 0.0, 0.0
		if valid1 > 0 {
			h1 = stats.BinaryEntropy(sum1 / float64(valid1))
		}
		if valid2 > 0 {
			h2 = stats.BinaryEntropy(sum2 / float64(valid2))
		}
		rowsS := float64(rows1 + rows2)
		return rowsS/g.total*hS - (float64(rows1)/g.total*h1 + float64(rows2)/g.total*h2)
	default: // DivergenceGain
		gain := 0.0
		if valid1 > 0 {
			gain += float64(rows1) / g.total * math.Abs(sum1/float64(valid1)-fS)
		}
		if valid2 > 0 {
			gain += float64(rows2) / g.total * math.Abs(sum2/float64(valid2)-fS)
		}
		return gain
	}
}

// TreeSet builds a tree hierarchy for every continuous attribute of the
// table (except those listed in exclude) and returns them as a hierarchy
// set. Categorical attributes are not included; add them separately.
func TreeSet(t *dataset.Table, o *outcome.Outcome, opts TreeOptions, exclude ...string) (*hierarchy.Set, error) {
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	span := opts.parent.Start(obs.SpanDiscretize)
	if span == nil {
		span = opts.Tracer.Start(obs.SpanDiscretize)
	}
	defer span.End()
	opts.parent = span
	set := hierarchy.NewSet()
	for _, f := range t.Fields() {
		if f.Kind != dataset.Continuous || skip[f.Name] {
			continue
		}
		h, err := Tree(t, f.Name, o, opts)
		if err != nil {
			return nil, err
		}
		set.Add(h)
	}
	return set, nil
}

// Quantile builds a flat (depth-1) equal-frequency discretization with the
// given number of bins: the unsupervised baseline of §VI-D. Duplicate cut
// points (from repeated values) are merged, so the result may have fewer
// bins than requested.
func Quantile(t *dataset.Table, attr string, bins int) (*hierarchy.Hierarchy, error) {
	if bins < 2 {
		return nil, fmt.Errorf("discretize: quantile bins must be ≥ 2, got %d", bins)
	}
	vals := nonNaN(t.Floats(attr))
	if len(vals) == 0 {
		return nil, fmt.Errorf("discretize: attribute %q has no values", attr)
	}
	sort.Float64s(vals)
	// Cuts are snapped to observed order statistics (the lower neighbour of
	// the interpolated quantile) so that every resulting half-open bin
	// (c_i, c_{i+1}] contains at least one observed value.
	cuts := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		pos := float64(i) / float64(bins) * float64(len(vals)-1)
		cuts = append(cuts, vals[int(pos)])
	}
	return flatFromCuts(attr, dedupCuts(cuts, vals[0], vals[len(vals)-1])), nil
}

// UniformWidth builds a flat equal-width discretization with the given
// number of bins over the observed value range.
func UniformWidth(t *dataset.Table, attr string, bins int) (*hierarchy.Hierarchy, error) {
	if bins < 2 {
		return nil, fmt.Errorf("discretize: uniform bins must be ≥ 2, got %d", bins)
	}
	vals := nonNaN(t.Floats(attr))
	if len(vals) == 0 {
		return nil, fmt.Errorf("discretize: attribute %q has no values", attr)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo == hi {
		return flatFromCuts(attr, nil), nil
	}
	cuts := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		cuts = append(cuts, lo+(hi-lo)*float64(i)/float64(bins))
	}
	return flatFromCuts(attr, dedupCuts(cuts, lo, hi)), nil
}

// ManualCuts builds a flat discretization from explicit interior cut points
// (must be strictly increasing), reproducing the "manual discretization"
// baselines used in prior work.
func ManualCuts(attr string, cuts []float64) (*hierarchy.Hierarchy, error) {
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return nil, fmt.Errorf("discretize: manual cuts must be strictly increasing")
		}
	}
	return flatFromCuts(attr, cuts), nil
}

func flatFromCuts(attr string, cuts []float64) *hierarchy.Hierarchy {
	h := hierarchy.NewRooted(attr, hierarchy.ContinuousItem(attr, math.Inf(-1), math.Inf(1)))
	bounds := append([]float64{math.Inf(-1)}, cuts...)
	bounds = append(bounds, math.Inf(1))
	if len(bounds) == 2 {
		return h // no cuts: root only, no leaf items
	}
	for i := 0; i+1 < len(bounds); i++ {
		h.AddChild(0, hierarchy.ContinuousItem(attr, bounds[i], bounds[i+1]))
	}
	return h
}

// dedupCuts sorts, deduplicates and strips cut points that would create
// empty end bins (cuts at or beyond the observed extremes).
func dedupCuts(cuts []float64, lo, hi float64) []float64 {
	sort.Float64s(cuts)
	out := cuts[:0]
	for i, c := range cuts {
		if c < lo || c >= hi {
			continue // cut ≥ hi leaves an empty (c, +Inf] bin: (lo-ε ok: lo itself goes to first bin)
		}
		if i > 0 && len(out) > 0 && c == out[len(out)-1] {
			continue
		}
		out = append(out, c)
	}
	return out
}

func nonNaN(vals []float64) []float64 {
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}
