package fpm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestMineCancelledBeforeStart checks that an already-cancelled context
// aborts Mine before any work, for both algorithms.
func TestMineCancelledBeforeStart(t *testing.T) {
	u, o := randomUniverse(t, 1, 400, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		_, err := Mine(u, o, Options{Ctx: ctx, MinSupport: 0.05, Algorithm: alg})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", alg, err)
		}
	}
}

// TestMineCancelMidMine cancels shortly after mining starts and checks
// that both miners, serial and parallel, return promptly with the
// context's error rather than running to completion.
func TestMineCancelMidMine(t *testing.T) {
	u, o := randomUniverse(t, 7, 4000, true)
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		for _, workers := range []int{0, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(2 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			res, err := Mine(u, o, Options{Ctx: ctx, MinSupport: 0.001, Algorithm: alg, Workers: workers})
			elapsed := time.Since(start)
			cancel()
			if err == nil {
				// The run may legitimately finish before the cancel lands on
				// a fast machine; only a cancelled run must report the error.
				if res == nil {
					t.Fatalf("%v workers=%d: nil result without error", alg, workers)
				}
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v workers=%d: err = %v, want context.Canceled", alg, workers, err)
			}
			if elapsed > 10*time.Second {
				t.Errorf("%v workers=%d: cancellation took %v", alg, workers, elapsed)
			}
		}
	}
}

// TestMineDeadlineExceeded checks that a context deadline surfaces as
// context.DeadlineExceeded.
func TestMineDeadlineExceeded(t *testing.T) {
	u, o := randomUniverse(t, 3, 4000, true)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := Mine(u, o, Options{Ctx: ctx, MinSupport: 0.001, Algorithm: FPGrowth})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded (or completion)", err)
	}
}

// TestMineUncancellableCtxMatchesNil checks that supplying a
// non-cancellable context changes nothing about the results.
func TestMineUncancellableCtxMatchesNil(t *testing.T) {
	u, o := randomUniverse(t, 5, 500, true)
	plain, err := Mine(u, o, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Mine(u, o, Options{Ctx: context.Background(), MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Itemsets) != len(withCtx.Itemsets) || plain.Stats != withCtx.Stats {
		t.Fatalf("results differ with context.Background: %+v vs %+v", plain.Stats, withCtx.Stats)
	}
	for i := range plain.Itemsets {
		if plain.Itemsets[i].Count != withCtx.Itemsets[i].Count {
			t.Fatalf("itemset %d differs", i)
		}
	}
}
