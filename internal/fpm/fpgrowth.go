package fpm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// fpNode is one node of an arena-backed FP-tree. Nodes live in the tree's
// flat slab and link by index (firstChild/nextSib replace the historical
// per-node child map; next chains nodes of the same item for the header
// table), so a whole tree is a handful of slice allocations instead of one
// map-bearing heap object per node. Beyond the usual support count, each
// node carries the outcome moments of the transactions (rows) flowing
// through it, which is what lets divergence fall out of the mining
// recursion with no extra dataset pass. Under a multi-outcome bundle the
// node's extra moments live in the tree's parallel mx slab.
type fpNode struct {
	item       int32 // universe item id; -1 for the root
	parent     int32
	firstChild int32
	nextSib    int32
	next       int32 // header chain of nodes with the same item
	count      int
	m          stats.Moments
}

// fpTree is an arena FP-tree plus its header table. headers/tails are
// indexed by position in order; pos maps a universe item id to its order
// position + 1 (0 = absent), giving O(1) item→header lookup without a map.
// mx is the flat extra-moments slab, mxStride entries per node (empty on
// single-outcome runs). Conditional trees are recycled through growScratch,
// which resets pos via the order list — O(|order|), not O(universe).
type fpTree struct {
	nodes    []fpNode
	mx       []stats.Moments
	mxStride int
	order    []int // the tree's items, most to least frequent
	headers  []int32
	tails    []int32
	pos      []int32
}

// rootFPNode is the arena's node 0.
func rootFPNode() fpNode {
	return fpNode{item: -1, parent: -1, firstChild: -1, nextSib: -1, next: -1}
}

// newFPTree builds a fresh tree (used for the per-shard root trees, which
// live for the whole run and are not pooled).
func newFPTree(order []int, numItems, mxStride int) *fpTree {
	t := &fpTree{
		mxStride: mxStride,
		order:    order,
		pos:      make([]int32, numItems),
	}
	t.nodes = append(t.nodes, rootFPNode())
	if mxStride > 0 {
		t.mx = make([]stats.Moments, mxStride, mxStride*64)
	}
	t.headers = make([]int32, len(order))
	t.tails = make([]int32, len(order))
	for p := range order {
		t.headers[p], t.tails[p] = -1, -1
		t.pos[order[p]] = int32(p) + 1
	}
	return t
}

// child returns node parent's child for item it, creating it (and linking
// it onto the header chain in creation order, which absorb and the growth
// recursion rely on for determinism) if absent.
func (t *fpTree) child(parent, it int32) int32 {
	for c := t.nodes[parent].firstChild; c >= 0; c = t.nodes[c].nextSib {
		if t.nodes[c].item == it {
			return c
		}
	}
	c := int32(len(t.nodes))
	t.nodes = append(t.nodes, fpNode{
		item: it, parent: parent,
		firstChild: -1, nextSib: t.nodes[parent].firstChild, next: -1,
	})
	t.nodes[parent].firstChild = c
	for k := 0; k < t.mxStride; k++ {
		t.mx = append(t.mx, stats.Moments{})
	}
	p := t.pos[it] - 1
	if t.headers[p] < 0 {
		t.headers[p] = c
	} else {
		t.nodes[t.tails[p]].next = c
	}
	t.tails[p] = c
	return c
}

// insert adds a transaction (items already filtered to the tree's universe
// and sorted by rank) with the given weight and moments. mx, when
// non-empty, carries the moments of the bundle's extra outcomes; its values
// are added into the node slab (the caller may reuse the slice).
func (t *fpTree) insert(items []int32, count int, m stats.Moments, mx []stats.Moments) {
	cur := int32(0)
	for _, it := range items {
		c := t.child(cur, it)
		nd := &t.nodes[c]
		nd.count += count
		nd.m.AddN(m)
		if t.mxStride > 0 {
			base := int(c) * t.mxStride
			for k := range mx {
				t.mx[base+k].AddN(mx[k])
			}
		}
		cur = c
	}
}

// nodeMx returns node n's extra-moments view (nil stride-0).
func (t *fpTree) nodeMx(n int32) []stats.Moments {
	if t.mxStride == 0 {
		return nil
	}
	return t.mx[int(n)*t.mxStride : (int(n)+1)*t.mxStride]
}

// absorb merges src (a shard tree built over the same item order) into t.
// Children are visited in rank order — the same order insertions create
// them — so header chains, and therefore the whole mining recursion, are
// deterministic regardless of how rows were split into shards. Counts and
// integer-valued moment sums merge exactly; see the engine package note on
// float exactness.
func (t *fpTree) absorb(src *fpTree, rank []int32) {
	var walk func(dst, s int32)
	walk = func(dst, s int32) {
		var keys []int32
		for c := src.nodes[s].firstChild; c >= 0; c = src.nodes[c].nextSib {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(a, b int) bool {
			return rank[src.nodes[keys[a]].item] < rank[src.nodes[keys[b]].item]
		})
		for _, sc := range keys {
			sn := &src.nodes[sc]
			c := t.child(dst, sn.item)
			nd := &t.nodes[c]
			nd.count += sn.count
			nd.m.AddN(sn.m)
			if t.mxStride > 0 {
				base := int(c) * t.mxStride
				for k, v := range src.nodeMx(sc) {
					t.mx[base+k].AddN(v)
				}
			}
			walk(c, sc)
		}
	}
	walk(0, 0)
}

// buildShardTree builds the FP-tree of one row shard. Per-row transactions
// are assembled in CSR form — one counting pass per item over the shard's
// word range, a prefix sum, one fill pass — so the whole shard costs three
// flat slices instead of a slice header (and its growth reallocations) per
// row. Items land in each row's segment in rank order because the fill
// iterates items in order. The returned rows count is the number of
// non-empty transactions inserted.
func buildShardTree(u *Universe, bun *outcome.Bundle, order []int, numItems int, plan engine.Plan, s int, cancel *canceller) (t *fpTree, rows int) {
	nOut := bun.Len()
	t = newFPTree(order, numItems, nOut-1)
	rowLo, rowHi := plan.RowRange(s)
	wordLo, wordHi := plan.WordRange(s)
	nRows := rowHi - rowLo
	off := make([]int32, nRows+1)
	for _, it := range order {
		if cancel.cancelled() {
			return t, 0
		}
		u.Rows[it].ForEachRange(wordLo, wordHi, func(r int) {
			off[r-rowLo+1]++
		})
	}
	for i := 1; i <= nRows; i++ {
		off[i] += off[i-1]
	}
	flat := make([]int32, off[nRows])
	cur := make([]int32, nRows)
	copy(cur, off[:nRows])
	for _, it := range order {
		if cancel.cancelled() {
			return t, 0
		}
		it32 := int32(it)
		u.Rows[it].ForEachRange(wordLo, wordHi, func(r int) {
			flat[cur[r-rowLo]] = it32
			cur[r-rowLo]++
		})
	}
	var mx []stats.Moments
	if nOut > 1 {
		mx = make([]stats.Moments, nOut-1) // reused per row; insert adds values
	}
	prim := bun.Primary()
	for i := 0; i < nRows; i++ {
		items := flat[off[i]:off[i+1]]
		if len(items) == 0 {
			continue
		}
		r := rowLo + i
		var m stats.Moments
		if prim.Valid.Get(r) {
			m.Add(prim.Values[r])
		}
		for k := 1; k < nOut; k++ {
			mx[k-1] = stats.Moments{}
			if o := bun.At(k); o.Valid.Get(r) {
				mx[k-1].Add(o.Values[r])
			}
		}
		t.insert(items, 1, m, mx)
		rows++
	}
	return t, rows
}

// growScratch is the per-goroutine reusable state of the growth phase:
// the conditional support counters (item-indexed, reset via the parent
// tree's order after each use), the suffix stack, per-occurrence path and
// conditional-order buffers, and a free list of released conditional
// trees. One scratch serves one branch recursion at a time; the sync.Pool
// in mineFPGrowth hands them to workers and its reuse is counted through
// the run's engine.Pool.
type growScratch struct {
	cnt     []int   // per universe item: conditional support count
	suffix  []int   // current itemset suffix (append/truncate stack)
	path    []int32 // one occurrence's filtered, rank-sorted ancestors
	condBuf []int   // conditional item order under construction
	trees   []*fpTree
}

// resetCnt zeroes the counters touched by a pass over tree order (a
// superset of the items actually incremented).
func (sc *growScratch) resetCnt(order []int) {
	for _, it := range order {
		sc.cnt[it] = 0
	}
}

// getTree returns a conditional tree over the given order, recycling a
// released tree's arenas when possible. The order slice is copied into
// tree-owned storage (the caller's buffer is reused by deeper recursion).
func (sc *growScratch) getTree(order []int, numItems, mxStride int, pool *engine.Pool) *fpTree {
	var t *fpTree
	if n := len(sc.trees); n > 0 {
		t = sc.trees[n-1]
		sc.trees = sc.trees[:n-1]
		pool.NoteHit()
		t.nodes = t.nodes[:1]
		t.nodes[0] = rootFPNode()
		t.mx = t.mx[:0]
	} else {
		pool.NoteMiss()
		t = &fpTree{pos: make([]int32, numItems)}
		t.nodes = append(t.nodes, rootFPNode())
	}
	t.mxStride = mxStride
	for k := 0; k < mxStride; k++ {
		t.mx = append(t.mx, stats.Moments{})
	}
	t.order = append(t.order[:0], order...)
	if cap(t.headers) < len(order) {
		t.headers = make([]int32, len(order))
		t.tails = make([]int32, len(order))
	}
	t.headers = t.headers[:len(order)]
	t.tails = t.tails[:len(order)]
	for p, it := range order {
		t.headers[p], t.tails[p] = -1, -1
		t.pos[it] = int32(p) + 1
	}
	return t
}

// putTree releases a conditional tree back to the free list, clearing its
// pos registrations (O(|order|)) so the arena can serve any item order.
func (sc *growScratch) putTree(t *fpTree) {
	for _, it := range t.order {
		t.pos[it] = 0
	}
	sc.trees = append(sc.trees, t)
}

// mineFPGrowth mines all frequent generalized itemsets via recursive
// conditional FP-trees, in the style of FP-tax: the conditional pattern
// base of an item excludes items of the same attribute (its hierarchy
// ancestors/descendants), which enforces the one-item-per-attribute rule of
// generalized itemsets.
//
// Tree construction is sharded: each row shard builds its own tree in
// parallel, and the shard trees are folded into shard 0's tree in
// ascending shard order with rank-ordered child traversal, so the merged
// tree — and everything mined from it — is identical across shard and
// worker counts. With a single shard the build is exactly the unsharded
// construction.
//
// A deterministic budget (MaxCandidates or MaxItemsets) serializes the
// growth phase: the recursion then visits branches in the fixed serial
// order, so the truncation point — and hence the ranked output — is
// byte-identical across Workers and Shards. A capped run is bounded by
// construction, so the lost parallelism is bounded too. The soft
// dimensions (deadline, heap) stay parallel and stop cooperatively.
//
// Memory: trees are index-linked arenas, conditional trees and all
// per-branch working arrays are recycled through growScratch (reuse
// surfaces in the run pool's hit counters), the conditional pattern base
// is consumed in two header-chain passes with no materialized path list,
// and emitted Items slices are carved from per-branch chunk slabs.
func mineFPGrowth(u *Universe, bun *outcome.Bundle, opt Options, minCount int, plan engine.Plan, pool *engine.Pool, span *obs.Span, cancel *canceller, budget *budgetTracker, hBatch *obs.Histogram) (*Result, error) {
	res := &Result{}
	prog := opt.Progress
	nOut := bun.Len()
	numItems := len(u.Items)
	stopped := func() bool { return cancel.cancelled() || budget.softExhausted() != "" }

	// Global frequent items, ranked by support descending (ties by index).
	scan := span.Start(obs.SpanMineScan)
	prog.SetLevel(1)
	hBatch.Observe(float64(len(u.Items)))
	if err := faultinject.Hit(faultinject.SiteCandidateBatch); err != nil {
		scan.End()
		return nil, err
	}
	nAllowed := budget.allowCandidates(len(u.Items))
	type freq struct{ item, count int }
	var fr []freq
	for i := 0; i < nAllowed; i++ {
		res.Stats.Candidates++
		prog.AddCandidates(1)
		if c := u.Rows[i].Count(); c >= minCount {
			fr = append(fr, freq{i, c})
		} else {
			res.Stats.PrunedSupport++
			prog.AddPruned(1)
		}
	}
	sort.Slice(fr, func(a, b int) bool {
		if fr[a].count != fr[b].count {
			return fr[a].count > fr[b].count
		}
		return fr[a].item < fr[b].item
	})
	order := make([]int, len(fr))
	// rank maps a universe item to its root-order position. Conditional
	// orders are subsequences of the root order, so sorting by this global
	// rank is equivalent to sorting by any conditional tree's local rank.
	rank := make([]int32, numItems)
	for i, f := range fr {
		order[i] = f.item
		rank[f.item] = int32(i)
	}
	scan.End()

	// Sharded build: one tree per row shard, in parallel, then a
	// deterministic fold into shard 0's tree.
	build := span.Start(obs.SpanMineBuild)
	nShards := plan.NumShards()
	trees := make([]*fpTree, nShards)
	if err := engine.ParallelFor(nShards, opt.Workers, opt.Tracer, func(s int) {
		if cancel.cancelled() {
			trees[s] = newFPTree(order, numItems, nOut-1)
			return
		}
		t, rows := buildShardTree(u, bun, order, numItems, plan, s, cancel)
		trees[s] = t
		if tr := opt.Tracer; tr != nil {
			tr.Counter(fmt.Sprintf("%s%d", obs.CtrShardRowsPrefix, s)).Add(int64(rows))
		}
	}); err != nil {
		build.End()
		return nil, err
	}
	tree := trees[0]
	if nShards > 1 {
		merge := build.Start(obs.SpanMineMerge)
		for s := 1; s < nShards; s++ {
			if cancel.cancelled() {
				break
			}
			if err := faultinject.Hit(faultinject.SiteShardMerge); err != nil {
				merge.End()
				build.End()
				return nil, err
			}
			tree.absorb(trees[s], rank)
		}
		merge.End()
	}
	build.End()
	if cancel.cancelled() {
		return res, nil
	}

	// branch mines the suffix {item}+suffix rooted at one header item of
	// tree t, appending to the local accumulator. Branches of distinct
	// top-level items are independent, which is what the parallel path
	// exploits. All transient state lives in the worker's scratch.
	var local func(acc *fpLocal, sc *growScratch, t *fpTree, idx int)
	local = func(acc *fpLocal, sc *growScratch, t *fpTree, idx int) {
		// Each (conditional tree, header item) pair is one candidate; bail
		// out here and the whole recursion unwinds promptly on cancel,
		// soft-budget exhaustion or an injected branch failure.
		if acc.err != nil || stopped() {
			return
		}
		it := t.order[idx]
		head := t.headers[idx]
		if head < 0 {
			return
		}
		total := 0
		var m stats.Moments
		var mx []stats.Moments
		if nOut > 1 {
			mx = make([]stats.Moments, nOut-1)
		}
		for n := head; n >= 0; n = t.nodes[n].next {
			nd := &t.nodes[n]
			total += nd.count
			m.AddN(nd.m)
			if mx != nil {
				base := int(n) * t.mxStride
				for k := range mx {
					mx[k].AddN(t.mx[base+k])
				}
			}
		}
		if total < minCount {
			return
		}
		// Itemset budget: consumed in the fixed serial order (a
		// deterministic budget forces Workers=1 on the growth phase), so
		// which itemsets make the cut is reproducible.
		if budget.allowItemsets(1) < 1 {
			return
		}
		depth := len(sc.suffix) + 1
		sorted := acc.allocItems(depth)
		copy(sorted, sc.suffix)
		sorted[depth-1] = it
		sort.Ints(sorted)
		acc.emit(MinedItemset{Items: sorted, Count: total, M: m, Multi: mx})
		prog.AddFrequent(1)
		// FP-Growth has no global level sweep, so the live "level" is the
		// deepest itemset emitted so far across all branches.
		prog.RaiseLevel(depth)
		if depth > acc.maxDepth {
			acc.maxDepth = depth
		}

		if opt.MaxLen > 0 && depth >= opt.MaxLen {
			return
		}

		// Conditional pattern base, pass 1: walk each occurrence's
		// ancestors — excluding items of it's attribute (generalized-
		// itemset rule) and, under polarity pruning, items of opposite
		// polarity — accumulating conditional supports in the scratch
		// counters. No path is materialized.
		attr, pol := u.AttrID[it], u.Polarity[it]
		pathsFound := 0
		for n := head; n >= 0; n = t.nodes[n].next {
			w := t.nodes[n].count
			pathLen := 0
			for p := t.nodes[n].parent; t.nodes[p].item >= 0; p = t.nodes[p].parent {
				pi := int(t.nodes[p].item)
				if u.AttrID[pi] == attr {
					continue
				}
				if opt.PolarityPrune && u.Polarity[pi] != pol {
					acc.prunedPolarity++
					prog.AddPruned(1)
					continue
				}
				sc.cnt[pi] += w
				pathLen++
			}
			if pathLen > 0 {
				pathsFound++
			}
		}
		if pathsFound == 0 {
			sc.resetCnt(t.order)
			return
		}
		// Conditional universe: items frequent within the base, keeping
		// the parent tree's rank order. The whole batch must fit the
		// remaining candidate budget; otherwise this expansion stops here.
		if budget.allowCandidates(len(t.order)) < len(t.order) {
			sc.resetCnt(t.order)
			return
		}
		condOrder := sc.condBuf[:0]
		for _, oi := range t.order {
			acc.candidates++
			prog.AddCandidates(1)
			if sc.cnt[oi] >= minCount {
				condOrder = append(condOrder, oi)
			} else {
				acc.prunedSupport++
				prog.AddPruned(1)
			}
		}
		sc.condBuf = condOrder
		if len(condOrder) == 0 {
			sc.resetCnt(t.order)
			return
		}
		hBatch.Observe(float64(len(condOrder)))
		if err := faultinject.Hit(faultinject.SiteCandidateBatch); err != nil {
			acc.err = err
			sc.resetCnt(t.order)
			return
		}
		// Pass 2: re-walk the header chain, now inserting each occurrence's
		// filtered path (same exclusions, plus the conditional support
		// floor) into the conditional tree in chain order — exactly the
		// order the historical pattern-base list was consumed in.
		cond := sc.getTree(condOrder, numItems, t.mxStride, pool)
		for n := head; n >= 0; n = t.nodes[n].next {
			path := sc.path[:0]
			for p := t.nodes[n].parent; t.nodes[p].item >= 0; p = t.nodes[p].parent {
				pi := int(t.nodes[p].item)
				if u.AttrID[pi] == attr {
					continue
				}
				if opt.PolarityPrune && u.Polarity[pi] != pol {
					continue
				}
				if sc.cnt[pi] >= minCount {
					path = append(path, int32(pi))
				}
			}
			sc.path = path
			if len(path) == 0 {
				continue
			}
			// Insertion sort ascending by global rank (paths are short and
			// near-sorted: ancestors arrive in descending rank order).
			for i := 1; i < len(path); i++ {
				x := path[i]
				rx := rank[x]
				j := i - 1
				for j >= 0 && rank[path[j]] > rx {
					path[j+1] = path[j]
					j--
				}
				path[j+1] = x
			}
			cond.insert(path, t.nodes[n].count, t.nodes[n].m, t.nodeMx(n))
		}
		sc.resetCnt(t.order)
		sc.suffix = append(sc.suffix, it)
		for i := len(cond.order) - 1; i >= 0; i-- {
			local(acc, sc, cond, i)
		}
		sc.suffix = sc.suffix[:len(sc.suffix)-1]
		sc.putTree(cond)
	}

	// Top-level branches, least-frequent first, optionally in parallel.
	// Each branch accumulates locally; concatenating in branch order makes
	// the output identical to the serial traversal. Scratches are pooled
	// per worker; their reuse counts into the run pool's hit rate.
	grow := span.Start(obs.SpanMineGrow)
	defer grow.End()
	nBranch := len(tree.order)
	locals := make([]fpLocal, nBranch)
	var scratchPool sync.Pool
	getScratch := func() *growScratch {
		if v := scratchPool.Get(); v != nil {
			pool.NoteHit()
			return v.(*growScratch)
		}
		pool.NoteMiss()
		return &growScratch{cnt: make([]int, numItems)}
	}
	growWorkers := opt.Workers
	if opt.Budget.deterministic() {
		// Serialize so budget consumption follows the fixed branch order;
		// the budget bounds the total work, so serial stays affordable.
		growWorkers = 1
	}
	if err := engine.ParallelFor(nBranch, growWorkers, opt.Tracer, func(j int) {
		idx := nBranch - 1 - j
		sc := getScratch()
		local(&locals[j], sc, tree, idx)
		// On a panic the scratch is simply dropped (its counters may be
		// dirty); ParallelFor recovers and the run fails.
		scratchPool.Put(sc)
	}); err != nil {
		return nil, err
	}
	maxDepth := 0
	total := len(res.Itemsets)
	for j := range locals {
		if locals[j].err != nil {
			return nil, locals[j].err
		}
		for _, ch := range locals[j].sets {
			total += len(ch)
		}
		res.Stats.Candidates += locals[j].candidates
		res.Stats.PrunedSupport += locals[j].prunedSupport
		res.Stats.PrunedPolarity += locals[j].prunedPolarity
		if locals[j].maxDepth > maxDepth {
			maxDepth = locals[j].maxDepth
		}
	}
	// One exact-size allocation for the concatenated result: branch slabs
	// are copied in branch order, reproducing the serial traversal order.
	all := make([]MinedItemset, len(res.Itemsets), total)
	copy(all, res.Itemsets)
	for j := range locals {
		for _, ch := range locals[j].sets {
			all = append(all, ch...)
		}
	}
	res.Itemsets = all
	opt.Tracer.MaxGauge(obs.GaugeMaxDepth, float64(maxDepth))
	return res, nil
}

// fpLocal accumulates one FP-Growth branch's results. Both the itemsets
// and their Items storage are carved out of chunk slabs — closed chunks
// are never reallocated, so a branch's emissions cost no append-growth
// churn; the run's result is assembled by one exact-size concatenation.
// Items sub-slices are handed out at full capacity, so an append by a
// consumer cannot clobber a neighbour.
type fpLocal struct {
	sets           [][]MinedItemset // chunked emissions, in order; last is open
	chunk          []int            // current Items slab
	candidates     int
	prunedSupport  int
	prunedPolarity int
	maxDepth       int
	err            error // injected failure surfaced from this branch
}

// fpChunkSize is the slab granularity for emitted Items storage;
// fpSetChunk the itemsets per emission chunk.
const (
	fpChunkSize = 4096
	fpSetChunk  = 1024
)

// emit appends one mined itemset to the branch's chunked emission list.
func (acc *fpLocal) emit(m MinedItemset) {
	n := len(acc.sets)
	if n == 0 || len(acc.sets[n-1]) == fpSetChunk {
		acc.sets = append(acc.sets, make([]MinedItemset, 0, fpSetChunk))
		n++
	}
	acc.sets[n-1] = append(acc.sets[n-1], m)
}

// allocItems returns a fresh n-int slice backed by the branch's current
// chunk slab.
func (acc *fpLocal) allocItems(n int) []int {
	if len(acc.chunk)+n > cap(acc.chunk) {
		size := fpChunkSize
		if n > size {
			size = n
		}
		acc.chunk = make([]int, 0, size)
	}
	off := len(acc.chunk)
	acc.chunk = acc.chunk[:off+n]
	return acc.chunk[off : off+n : off+n]
}
