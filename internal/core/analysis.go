package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// ItemShapley returns, for each item of the itemset, its Shapley value
// with respect to the itemset's divergence: the item's average marginal
// contribution Δ(J ∪ {α}) − Δ(J) over all sub-itemsets J, with Δ(∅) = 0.
// This is the per-itemset item attribution of DivExplorer (§5 of the
// SIGMOD'21 paper), inherited by H-DivExplorer: it explains *which
// constraints drive* a subgroup's divergence. The values sum to the
// itemset's divergence.
//
// The computation enumerates all 2^|I| sub-itemsets, evaluating each
// divergence directly on the table; itemsets in practice have ≤ 8 items.
func ItemShapley(t *dataset.Table, o *outcome.Outcome, itemset hierarchy.Itemset) ([]float64, error) {
	n := len(itemset)
	if n == 0 {
		return nil, fmt.Errorf("core: empty itemset")
	}
	if n > 20 {
		return nil, fmt.Errorf("core: itemset too long for exact Shapley (%d items)", n)
	}
	if !itemset.Valid() {
		return nil, fmt.Errorf("core: itemset constrains an attribute twice")
	}
	// Divergence of every subset, indexed by bitmask.
	div := make([]float64, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		var sub hierarchy.Itemset
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, itemset[i])
			}
		}
		d := o.DivergenceOf(sub.Rows(t))
		if math.IsNaN(d) {
			d = 0 // empty subgroup contributes nothing
		}
		div[mask] = d
	}
	// Precompute |J|!(n−|J|−1)!/n! by subset size.
	weight := make([]float64, n)
	for k := 0; k < n; k++ {
		weight[k] = 1 / (float64(n) * binom(n-1, k))
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		bit := 1 << i
		for mask := 0; mask < 1<<n; mask++ {
			if mask&bit != 0 {
				continue
			}
			k := popcount(mask)
			out[i] += weight[k] * (div[mask|bit] - div[mask])
		}
	}
	return out, nil
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// PValue returns the two-sided p-value of the subgroup's divergence under
// the large-sample normal approximation of its Welch t-statistic.
func (s *Subgroup) PValue() float64 {
	return stats.TwoSidedP(s.T)
}

// Significant screens the report through Benjamini–Hochberg FDR control
// at level alpha and returns the significant subgroups, preserving the
// report's |divergence| order. Exploring thousands of subgroups is a
// multiple-testing exercise; use this instead of a raw t cutoff when the
// anomalies must survive statistical scrutiny.
func (r *Report) Significant(alpha float64) []Subgroup {
	ps := make([]float64, len(r.Subgroups))
	for i := range r.Subgroups {
		ps[i] = r.Subgroups[i].PValue()
	}
	keep := stats.BenjaminiHochberg(ps, alpha)
	var out []Subgroup
	for i, k := range keep {
		if k {
			out = append(out, r.Subgroups[i])
		}
	}
	return out
}

// itemsetKey canonically encodes sorted universe indices.
func itemsetKey(idx []int) string {
	s := append([]int(nil), idx...)
	sort.Ints(s)
	b := make([]byte, 0, len(s)*4)
	for _, v := range s {
		b = strconv.AppendInt(b, int64(v), 32)
		b = append(b, ',')
	}
	return string(b)
}

// index lazily builds the itemset-key → subgroup index map used by the
// lattice navigation helpers.
func (r *Report) index() map[string]int {
	if r.byKey == nil {
		r.byKey = make(map[string]int, len(r.Subgroups))
		for i := range r.Subgroups {
			r.byKey[itemsetKey(r.Subgroups[i].ItemIdx)] = i
		}
	}
	return r.byKey
}

// Parents returns the frequent subgroups whose itemsets are obtained from
// sg by removing exactly one item (its generalizations within the report).
func (r *Report) Parents(sg *Subgroup) []*Subgroup {
	idx := r.index()
	var out []*Subgroup
	sub := make([]int, 0, len(sg.ItemIdx)-1)
	for drop := range sg.ItemIdx {
		sub = sub[:0]
		for i, v := range sg.ItemIdx {
			if i != drop {
				sub = append(sub, v)
			}
		}
		if len(sub) == 0 {
			continue
		}
		if j, ok := idx[itemsetKey(sub)]; ok {
			out = append(out, &r.Subgroups[j])
		}
	}
	return out
}

// Children returns the frequent subgroups whose itemsets extend sg by
// exactly one item (its refinements within the report).
func (r *Report) Children(sg *Subgroup) []*Subgroup {
	key := itemsetKey(sg.ItemIdx)
	var out []*Subgroup
	for i := range r.Subgroups {
		cand := &r.Subgroups[i]
		if len(cand.ItemIdx) != len(sg.ItemIdx)+1 {
			continue
		}
		if containsAll(cand.ItemIdx, sg.ItemIdx) && itemsetKey(cand.ItemIdx) != key {
			out = append(out, cand)
		}
	}
	return out
}

func containsAll(super, sub []int) bool {
	has := make(map[int]bool, len(super))
	for _, v := range super {
		has[v] = true
	}
	for _, v := range sub {
		if !has[v] {
			return false
		}
	}
	return true
}

// subgroupJSON is the serialization shape of one subgroup.
type subgroupJSON struct {
	Itemset    string   `json:"itemset"`
	Items      []string `json:"items"`
	Support    float64  `json:"support"`
	Count      int      `json:"count"`
	Statistic  float64  `json:"statistic"`
	Divergence float64  `json:"divergence"`
	T          float64  `json:"t"`
	PValue     float64  `json:"p_value"`
}

// reportJSON is the serialization shape of a report.
type reportJSON struct {
	Global    float64         `json:"global"`
	NumRows   int             `json:"num_rows"`
	NumItems  int             `json:"num_items"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Mining    fpm.MiningStats `json:"mining"`
	// Truncated/Exhausted surface budget-cut runs; omitted (keeping the
	// serialization of unbudgeted runs unchanged) when the lattice was
	// fully explored.
	Truncated bool           `json:"truncated,omitempty"`
	Exhausted string         `json:"exhausted,omitempty"`
	Subgroups []subgroupJSON `json:"subgroups"`
	Trace     *obs.Trace     `json:"trace,omitempty"`
	Explain   *obs.Explain   `json:"explain,omitempty"`
}

// MarshalJSON serializes the report: global statistic, dataset and
// universe sizes, mining time and counters, every subgroup (itemset,
// support, divergence, t, p-value), and — when the exploration ran with a
// tracer — the full trace snapshot and, when requested, the explain
// profile.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Global:    r.Global,
		NumRows:   r.NumRows,
		NumItems:  r.NumItems,
		ElapsedMS: float64(r.Elapsed.Nanoseconds()) / 1e6,
		Mining:    r.Mining,
		Truncated: r.Truncated,
		Exhausted: r.Exhausted,
		Trace:     r.Trace,
		Explain:   r.Explain,
	}
	for i := range r.Subgroups {
		sg := &r.Subgroups[i]
		items := make([]string, len(sg.Itemset))
		for j, it := range sg.Itemset {
			items[j] = it.String()
		}
		sort.Strings(items)
		out.Subgroups = append(out.Subgroups, subgroupJSON{
			Itemset:    sg.Itemset.String(),
			Items:      items,
			Support:    sg.Support,
			Count:      sg.Count,
			Statistic:  sg.Statistic,
			Divergence: sg.Divergence,
			T:          sg.T,
			PValue:     sg.PValue(),
		})
	}
	return json.Marshal(out)
}

// WriteCSV writes the subgroups as CSV rows (itemset, support, count,
// statistic, divergence, t, p_value) with a header.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"itemset", "support", "count", "statistic", "divergence", "t", "p_value"}); err != nil {
		return err
	}
	for i := range r.Subgroups {
		sg := &r.Subgroups[i]
		rec := []string{
			sg.Itemset.String(),
			strconv.FormatFloat(sg.Support, 'g', -1, 64),
			strconv.Itoa(sg.Count),
			strconv.FormatFloat(sg.Statistic, 'g', -1, 64),
			strconv.FormatFloat(sg.Divergence, 'g', -1, 64),
			strconv.FormatFloat(sg.T, 'g', -1, 64),
			strconv.FormatFloat(sg.PValue(), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// EvaluateItemsets recomputes support, statistic, divergence and t-value
// for a fixed list of patterns on a table — no mining. This is the
// monitoring path: explore once, persist the winning patterns (and the
// hierarchies via the hierarchy JSON codec), then re-evaluate the same
// subgroups on every new data snapshot to track drift. Patterns whose
// attributes are missing from the table produce an error; empty subgroups
// are returned with zero support and NaN statistics.
func EvaluateItemsets(t *dataset.Table, o *outcome.Outcome, itemsets []hierarchy.Itemset) ([]Subgroup, error) {
	if o.Len() != t.NumRows() {
		return nil, fmt.Errorf("core: outcome has %d rows, table has %d", o.Len(), t.NumRows())
	}
	out := make([]Subgroup, 0, len(itemsets))
	for i, its := range itemsets {
		if !its.Valid() {
			return nil, fmt.Errorf("core: itemset %d constrains an attribute twice", i)
		}
		bound := make(hierarchy.Itemset, len(its))
		for j, it := range its {
			if !t.HasColumn(it.Attr) {
				return nil, fmt.Errorf("core: itemset %d references missing attribute %q", i, it.Attr)
			}
			// Categorical items are re-mapped onto t's dictionary by level
			// name, so patterns mined on one snapshot evaluate correctly on
			// another even when dictionaries assign different codes.
			bound[j] = it.Rebind(t)
		}
		rows := bound.Rows(t)
		m := o.MomentsOf(rows)
		out = append(out, Subgroup{
			Itemset:    bound,
			Count:      rows.Count(),
			Support:    float64(rows.Count()) / float64(t.NumRows()),
			Statistic:  m.Mean(),
			Divergence: o.DivergenceFromMoments(m),
			T:          o.TValueFromMoments(m),
		})
	}
	return out, nil
}
