// Fairness audit: reproduce the paper's compas analysis.
//
// The example audits a recidivism risk score for false-positive-rate bias:
// which defendant subgroups are disproportionately predicted to recidivate
// when they do not? It contrasts three pipelines — the manual
// discretization of prior work, tree discretization explored flat (leaf
// items only), and full hierarchical exploration — and prints the annotated
// discretization tree of the paper's Figure 1.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	hdiv "repro"
	"repro/internal/datagen"
)

func main() {
	// The compas analog: demographic/criminal-history features plus the
	// true recidivism outcome and a proprietary-style score's predictions
	// (see DESIGN.md §4 for the substitution).
	d := datagen.Compas(datagen.Config{Seed: 1})
	o := hdiv.FalsePositiveRate(d.Actual, d.Predicted)
	fmt.Printf("defendants: %d, overall FPR: %.3f\n\n", d.Table.NumRows(), o.GlobalMean())

	// Figure 1: the divergence-aware interval hierarchy for #prior.
	tree, err := hdiv.Tree(d.Table, "prior", o, hdiv.TreeOptions{
		Criterion:  hdiv.DivergenceGain,
		MinSupport: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("item hierarchy for the prior attribute (sup / ΔFPR per node):")
	fmt.Print(hdiv.DescribeHierarchy(d.Table, tree, o))

	// Manual discretization (the fixed cuts used by prior work).
	manual := hdiv.NewHierarchySet()
	for attr, cuts := range map[string][]float64{
		"age": {24.999, 45}, "prior": {0, 3}, "stay": {7, 90},
	} {
		h, err := hdiv.ManualCuts(attr, cuts)
		if err != nil {
			log.Fatal(err)
		}
		manual.Add(h)
	}
	for _, attr := range []string{"sex", "race", "charge"} {
		manual.Add(hdiv.FlatCategorical(d.Table, attr))
	}
	manualRep, err := hdiv.Explore(d.Table, hdiv.ExploreConfig{
		Outcome: o, Hierarchies: manual, MinSupport: 0.05, Mode: hdiv.Base,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Tree discretization, explored flat and hierarchically.
	baseRep, err := hdiv.Pipeline(d.Table, o, hdiv.PipelineOptions{
		TreeSupport: 0.1, MinSupport: 0.05, Mode: hdiv.Base,
	})
	if err != nil {
		log.Fatal(err)
	}
	hierRep, err := hdiv.Pipeline(d.Table, o, hdiv.PipelineOptions{
		TreeSupport: 0.1, MinSupport: 0.05, Mode: hdiv.Hierarchical,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntop FPR-divergent subgroup by pipeline (s = 0.05):")
	for _, row := range []struct {
		name string
		rep  *hdiv.Report
	}{
		{"manual discretization ", manualRep},
		{"tree leaves (base)    ", baseRep},
		{"hierarchical          ", hierRep},
	} {
		top := row.rep.Top()
		fmt.Printf("  %s Δ=%+.3f sup=%.3f  {%s}\n", row.name, top.Divergence, top.Support, top.Itemset)
	}

	fmt.Println("\nstatistically significant subgroups (|t| ≥ 5), hierarchical:")
	sig := hierRep.FilterMinT(5)
	for i, sg := range sig {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", sg.String())
	}
}
