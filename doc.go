// Package hdivexplorer is a Go implementation of H-DivExplorer, the
// hierarchical anomalous-subgroup discovery system of Pastor, Baralis and
// de Alfaro, "A Hierarchical Approach to Anomalous Subgroup Discovery"
// (ICDE 2023).
//
// Given a dataset and an outcome function (false-positive rate, error rate,
// a numeric target such as income, …), H-DivExplorer finds interpretable
// data subgroups — conjunctions of attribute constraints — whose statistic
// diverges from the whole-dataset value. Continuous attributes are
// discretized into hierarchies of intervals by divergence-aware trees;
// exploration then mines generalized itemsets that may mix granularities
// across attributes, which finds strictly more divergent subgroups than
// fixed discretizations at the same support threshold.
//
// The quickest route is the Pipeline helper:
//
//	tab, _ := hdivexplorer.ReadCSVFile("data.csv", hdivexplorer.CSVOptions{})
//	o := hdivexplorer.FalsePositiveRate(actual, predicted)
//	rep, _ := hdivexplorer.Pipeline(tab, o, hdivexplorer.PipelineOptions{
//		TreeSupport: 0.1,
//		MinSupport:  0.05,
//	})
//	fmt.Print(rep.Table(10))
//
// For finer control, build hierarchies with the discretization functions
// (Tree, Quantile, ManualCuts, FlatCategorical, PathTaxonomy), assemble a
// HierarchySet, and call Explore. The package re-exports the library's
// types; the internal packages contain the implementations.
//
// Long-running callers use the Context variants — PipelineContext,
// ExploreContext, ExploreUniverseContext — whose context is checked
// between pipeline stages and polled at candidate granularity inside the
// miners, so cancellation and deadlines take effect promptly without
// affecting completed results. The same machinery backs the HTTP service
// (internal/server, cmd/hdivexplorerd), which caches discretized
// hierarchies and mining universes across requests.
package hdivexplorer
