package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestAllocSample(t *testing.T) {
	b1, o1 := AllocSample()
	// Allocate measurably so the cumulative totals must advance.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 1024)
	}
	_ = sink
	b2, o2 := AllocSample()
	if b2 < b1 || o2 < o1 {
		t.Fatalf("AllocSample went backwards: bytes %d -> %d, objects %d -> %d", b1, b2, o1, o2)
	}
	if b2 == b1 && o2 == o1 {
		t.Error("AllocSample did not observe 64KiB of allocations")
	}
}

// TestWriteRuntimeMetricsConformance pins the exposition contract for the
// curated runtime/metrics families: every present family carries exactly
// one HELP and TYPE line, histogram families emit cumulative
// monotonically nondecreasing buckets ending in +Inf plus _sum/_count,
// and the core memory/GC/scheduler families this Go version supports are
// all present.
func TestWriteRuntimeMetricsConformance(t *testing.T) {
	for _, openMetrics := range []bool{false, true} {
		t.Run(fmt.Sprintf("openmetrics=%v", openMetrics), func(t *testing.T) {
			var b strings.Builder
			if err := WriteRuntimeMetrics(&b, openMetrics); err != nil {
				t.Fatal(err)
			}
			out := b.String()

			for _, family := range []string{
				"go_mem_heap_objects_bytes",
				"go_gc_heap_allocs_bytes",
				"go_gc_cycles",
				"go_goroutines",
				"go_gomaxprocs",
				"go_gc_pauses_seconds",
				"go_sched_latencies_seconds",
			} {
				if !strings.Contains(out, "# TYPE "+family+" ") {
					t.Errorf("family %s missing from output", family)
				}
			}

			// Counter samples carry _total exactly when OpenMetrics.
			wantCounter := "go_gc_cycles "
			if openMetrics {
				wantCounter = "go_gc_cycles_total "
			}
			found := false
			for _, line := range strings.Split(out, "\n") {
				if strings.HasPrefix(line, wantCounter) {
					found = true
				}
			}
			if !found {
				t.Errorf("no counter sample line starting %q", wantCounter)
			}

			checkRuntimeExposition(t, out)
		})
	}
}

// checkRuntimeExposition validates structural properties of a runtime
// metrics exposition: metadata uniqueness and histogram invariants.
func checkRuntimeExposition(t *testing.T, out string) {
	t.Helper()
	meta := map[string]int{}
	var histFamily string
	var lastCum uint64
	var sawInf bool
	closeHistogram := func() {
		if histFamily != "" && !sawInf {
			t.Errorf("histogram %s has no +Inf bucket", histFamily)
		}
		histFamily, lastCum, sawInf = "", 0, false
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			key := fields[1] + " " + fields[2]
			meta[key]++
			if meta[key] > 1 {
				t.Errorf("duplicate metadata line %q", line)
			}
			if fields[1] == "TYPE" && len(fields) > 3 && fields[3] == "histogram" {
				closeHistogram()
				histFamily = fields[2]
			} else if fields[1] == "TYPE" {
				closeHistogram()
			}
			continue
		}
		if histFamily != "" && strings.HasPrefix(line, histFamily+"_bucket{le=") {
			n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if n < lastCum {
				t.Errorf("histogram %s buckets not cumulative: %d after %d", histFamily, n, lastCum)
			}
			lastCum = n
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
			}
		}
	}
	closeHistogram()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRuntimeMetricsBucketCap(t *testing.T) {
	var b strings.Builder
	if err := WriteRuntimeMetrics(&b, false); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(b.String(), "\n") {
		if i := strings.Index(line, "_bucket{le="); i > 0 {
			counts[line[:i]]++
		}
	}
	for family, n := range counts {
		// +1 allows the synthesized +Inf bucket on top of the merged ones.
		if n > maxRuntimeBuckets+1 {
			t.Errorf("family %s exports %d buckets, cap is %d", family, n, maxRuntimeBuckets+1)
		}
	}
	if len(counts) == 0 {
		t.Error("no histogram families exported")
	}
}
