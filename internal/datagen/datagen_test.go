package datagen

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/outcome"
)

// Table II schema check: every generator must reproduce the paper's
// attribute counts exactly.
func TestTableIISchemas(t *testing.T) {
	cases := []struct {
		name       string
		table      *dataset.Table
		defaultN   int
		nNum, nCat int
	}{
		{"adult", Adult(Config{N: 50, Seed: 1}).Table, 45_222, 4, 7},
		{"bank", Bank(Config{N: 50, Seed: 1}).Table, 45_211, 7, 8},
		{"compas", Compas(Config{N: 50, Seed: 1}).Table, 6_172, 3, 3},
		{"folktables", Folktables(Config{N: 50, Seed: 1}).Table, 195_556, 2, 8},
		{"german", German(Config{N: 50, Seed: 1}).Table, 1_000, 7, 14},
		{"intentions", Intentions(Config{N: 50, Seed: 1}).Table, 12_330, 11, 6},
		{"synthetic-peak", SyntheticPeak(Config{N: 50, Seed: 1}).Table, 10_000, 3, 0},
		{"wine", Wine(Config{N: 50, Seed: 1}).Table, 9_796, 11, 0},
	}
	for _, c := range cases {
		nNum, nCat := c.table.CountKinds()
		if nNum != c.nNum || nCat != c.nCat {
			t.Errorf("%s: (num,cat) = (%d,%d), want (%d,%d)", c.name, nNum, nCat, c.nNum, c.nCat)
		}
		if c.table.NumCols() != c.nNum+c.nCat {
			t.Errorf("%s: NumCols = %d", c.name, c.table.NumCols())
		}
	}
	// Default sizes reproduce the paper's |D|.
	if got := Compas(Config{Seed: 1}).Table.NumRows(); got != 6_172 {
		t.Errorf("compas default N = %d", got)
	}
	if got := SyntheticPeak(Config{Seed: 1}).Table.NumRows(); got != 10_000 {
		t.Errorf("peak default N = %d", got)
	}
	if got := German(Config{Seed: 1}).Table.NumRows(); got != 1_000 {
		t.Errorf("german default N = %d", got)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Compas(Config{N: 500, Seed: 7})
	b := Compas(Config{N: 500, Seed: 7})
	for i := 0; i < 500; i++ {
		if a.Table.Floats("age")[i] != b.Table.Floats("age")[i] ||
			a.Actual[i] != b.Actual[i] || a.Predicted[i] != b.Predicted[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	c := Compas(Config{N: 500, Seed: 8})
	same := true
	for i := 0; i < 500; i++ {
		if a.Table.Floats("age")[i] != c.Table.Floats("age")[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticPeakProperties(t *testing.T) {
	d := SyntheticPeak(Config{Seed: 3})
	tab := d.Table
	a, b, c := tab.Floats("a"), tab.Floats("b"), tab.Floats("c")
	// Values uniform in [-5,5].
	for i := 0; i < tab.NumRows(); i++ {
		for _, v := range []float64{a[i], b[i], c[i]} {
			if v < -5 || v > 5 {
				t.Fatalf("coordinate %v outside [-5,5]", v)
			}
		}
	}
	// Error rate near the peak [0,1,2] must be far higher than far away.
	var nearErr, nearN, farErr, farN float64
	for i := 0; i < tab.NumRows(); i++ {
		d2 := (a[i]-0)*(a[i]-0) + (b[i]-1)*(b[i]-1) + (c[i]-2)*(c[i]-2)
		isErr := 0.0
		if d.Actual[i] != d.Predicted[i] {
			isErr = 1
		}
		if d2 < 1 {
			nearErr += isErr
			nearN++
		} else if d2 > 16 {
			farErr += isErr
			farN++
		}
	}
	if nearN < 10 || farN < 100 {
		t.Fatal("unexpected point distribution")
	}
	if nearErr/nearN < 0.4 {
		t.Errorf("error rate near peak = %v, want high", nearErr/nearN)
	}
	if farErr/farN > 0.05 {
		t.Errorf("error rate far from peak = %v, want ≈ 0", farErr/farN)
	}
	// Class labels are balanced.
	pos := 0
	for _, v := range d.Actual {
		if v {
			pos++
		}
	}
	if frac := float64(pos) / float64(len(d.Actual)); frac < 0.45 || frac > 0.55 {
		t.Errorf("class balance = %v", frac)
	}
}

// The compas analog must reproduce the monotone FPR-divergence shape of the
// paper's Table I: Δ(#prior>8) > Δ(#prior>3) > Δ(age<27) > 0, a global FPR
// below ~0.1, and a small (≈0.05–0.09) young∩many-priors subgroup whose FPR
// divergence exceeds Δ(#prior>3).
func TestCompasTableIShape(t *testing.T) {
	d := Compas(Config{Seed: 1})
	o := outcome.FalsePositiveRate(d.Actual, d.Predicted)
	tab := d.Table
	age, prior := tab.Floats("age"), tab.Floats("prior")

	div := func(f func(i int) bool) (float64, float64) {
		nAll, fp, neg := 0, 0, 0
		for i := 0; i < tab.NumRows(); i++ {
			if !f(i) {
				continue
			}
			nAll++
			if !d.Actual[i] {
				neg++
				if d.Predicted[i] {
					fp++
				}
			}
		}
		return float64(fp)/float64(neg) - o.GlobalMean(), float64(nAll) / float64(tab.NumRows())
	}
	g := o.GlobalMean()
	if g < 0.04 || g > 0.12 {
		t.Errorf("global FPR = %v, want ≈ 0.08", g)
	}
	d3, s3 := div(func(i int) bool { return prior[i] > 3 })
	d8, s8 := div(func(i int) bool { return prior[i] > 8 })
	dAge, sAge := div(func(i int) bool { return age[i] < 27 })
	dBoth, sBoth := div(func(i int) bool { return age[i] < 27 && prior[i] > 3 })

	if !(d8 > d3 && d3 > dAge && dAge > 0) {
		t.Errorf("divergence ordering violated: d8=%v d3=%v dAge=%v", d8, d3, dAge)
	}
	if dBoth < d3 {
		t.Errorf("combo divergence %v should exceed d3 %v", dBoth, d3)
	}
	if s3 < 0.2 || s3 > 0.4 || s8 < 0.07 || s8 > 0.17 || sAge < 0.2 || sAge > 0.4 {
		t.Errorf("supports off: s3=%v s8=%v sAge=%v", s3, s8, sAge)
	}
	if sBoth < 0.03 || sBoth > 0.11 {
		t.Errorf("combo support = %v, want small (≈0.05)", sBoth)
	}
}

func TestFolktablesShape(t *testing.T) {
	d := Folktables(Config{N: 30_000, Seed: 2})
	tab := d.Table
	o := outcome.Numeric("income", d.Target)

	// The MGR supercategory must be frequent (> 0.05) while every MGR leaf
	// occupation is individually infrequent (< 0.05): only hierarchical
	// exploration can use occupation at s = 0.05.
	codes := tab.Codes("OCCP")
	levels := tab.Levels("OCCP")
	counts := map[string]int{}
	mgrTotal := 0
	for _, c := range codes {
		counts[levels[c]]++
	}
	for l, c := range counts {
		if len(l) >= 4 && l[:4] == "MGR-" {
			mgrTotal += c
			if frac := float64(c) / float64(tab.NumRows()); frac >= 0.05 {
				t.Errorf("leaf occupation %s support %v ≥ 0.05", l, frac)
			}
		}
	}
	mgrFrac := float64(mgrTotal) / float64(tab.NumRows())
	if mgrFrac < 0.05 || mgrFrac > 0.15 {
		t.Errorf("MGR group support = %v, want ≈ 0.08", mgrFrac)
	}

	// Senior male managers must have strongly positive income divergence.
	agep := tab.Floats("AGEP")
	sexCodes := tab.Codes("SEX")
	maleCode := tab.LevelCode("SEX", "Male")
	var sub, rest []float64
	for i := 0; i < tab.NumRows(); i++ {
		isMGR := len(levels[codes[i]]) >= 4 && levels[codes[i]][:4] == "MGR-"
		if isMGR && agep[i] >= 35 && sexCodes[i] == maleCode {
			sub = append(sub, d.Target[i])
		} else {
			rest = append(rest, d.Target[i])
		}
	}
	if len(sub) < 100 {
		t.Fatalf("only %d senior male managers", len(sub))
	}
	if div := mean(sub) - o.GlobalMean(); div < 50_000 {
		t.Errorf("senior-male-manager divergence = %v, want ≫ 0", div)
	}
	// Incomes are nonnegative.
	for _, v := range d.Target {
		if v < 0 || math.IsNaN(v) {
			t.Fatal("invalid income")
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFolktablesTaxonomies(t *testing.T) {
	d := Folktables(Config{N: 5_000, Seed: 3})
	hs := FolktablesTaxonomies(d.Table)
	if len(hs) != 2 {
		t.Fatalf("want 2 taxonomies, got %d", len(hs))
	}
	for _, h := range hs {
		if err := h.ValidateOn(d.Table); err != nil {
			t.Errorf("%s taxonomy invalid: %v", h.Attr, err)
		}
		if len(h.Items()) <= len(h.LeafItems()) {
			t.Errorf("%s taxonomy has no group items", h.Attr)
		}
	}
}

// Label rates of the classification analogs must be non-degenerate so
// classifiers have something to learn.
func TestUCILabelRates(t *testing.T) {
	cases := []struct {
		name string
		d    Classified
		lo   float64
		hi   float64
	}{
		{"adult", Adult(Config{N: 5_000, Seed: 4}), 0.15, 0.5},
		{"bank", Bank(Config{N: 5_000, Seed: 4}), 0.05, 0.4},
		{"german", German(Config{Seed: 4}), 0.5, 0.85},
		{"intentions", Intentions(Config{N: 5_000, Seed: 4}), 0.08, 0.45},
		{"wine", Wine(Config{N: 5_000, Seed: 4}), 0.4, 0.8},
	}
	for _, c := range cases {
		pos := 0
		for _, v := range c.d.Actual {
			if v {
				pos++
			}
		}
		frac := float64(pos) / float64(len(c.d.Actual))
		if frac < c.lo || frac > c.hi {
			t.Errorf("%s positive rate = %v, want in [%v, %v]", c.name, frac, c.lo, c.hi)
		}
		if c.d.Predicted != nil {
			t.Errorf("%s should not carry intrinsic predictions", c.name)
		}
	}
}

// The injected hard regions must have elevated label unpredictability:
// within the region the label should be ≈ 50/50 regardless of features.
func TestHardRegionsInjected(t *testing.T) {
	d := Adult(Config{N: 30_000, Seed: 5})
	hours := d.Table.Floats("hours")
	wc := d.Table.Codes("workclass")
	se := d.Table.LevelCode("workclass", "Self-emp")
	pos, n := 0, 0
	for i := 0; i < d.Table.NumRows(); i++ {
		if wc[i] == se && hours[i] > 50 {
			n++
			if d.Actual[i] {
				pos++
			}
		}
	}
	if n < 50 {
		t.Fatalf("hard region too small: %d", n)
	}
	if frac := float64(pos) / float64(n); frac < 0.4 || frac > 0.6 {
		t.Errorf("hard-region label rate = %v, want ≈ 0.5", frac)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.n(123) != 123 {
		t.Error("zero N should use default")
	}
	c.N = 7
	if c.n(123) != 7 {
		t.Error("explicit N should win")
	}
}
