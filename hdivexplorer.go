// The package comment lives in doc.go; this file re-exports the library
// surface from the internal packages.
package hdivexplorer

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/faultinject"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/obs"
	"repro/internal/outcome"
)

// Observability.
type (
	// Tracer collects hierarchical spans, counters and gauges across the
	// pipeline; a nil *Tracer disables collection at no cost.
	Tracer = obs.Tracer
	// TraceSpan is one timed region of a trace.
	TraceSpan = obs.Span
	// Trace is an immutable tracer snapshot (JSON-marshalable; renders a
	// human-readable span tree via Tree and exports Chrome/Perfetto
	// trace_event JSON via WriteChromeTrace).
	Trace = obs.Trace
	// Progress is a lock-free live progress reporter for a mining run;
	// poll Snapshot from any goroutine while the run is in flight.
	Progress = obs.Progress
	// ProgressSnapshot is one consistent view of a Progress reporter.
	ProgressSnapshot = obs.ProgressSnapshot
	// Explain is a query-level cost-attribution profile: per-stage wall
	// time and allocations, mining counters, shard balance, cache outcome
	// and budget consumption, aggregated from a trace snapshot. Reports
	// carry one when the run asked for it (PipelineOptions.Explain or
	// ExploreConfig.Explain).
	Explain = obs.Explain
)

// NewExplain computes an explain profile from a trace snapshot; it
// returns nil on a nil trace. Use it to profile a run after the fact
// when only the trace was kept.
func NewExplain(tr *Trace) *Explain { return obs.NewExplain(tr) }

// NewTracer returns an empty tracer whose clock starts now. Set it on
// CSVOptions, PipelineOptions or ExploreConfig to instrument a run; the
// resulting Report.Trace holds the snapshot.
func NewTracer() *Tracer { return obs.New() }

// NewProgress returns a progress reporter whose clock starts now. Set it
// on PipelineOptions or ExploreConfig and poll Snapshot from another
// goroutine to watch a long run live.
func NewProgress() *Progress { return obs.NewProgress() }

// Dataset substrate.
type (
	// Table is a columnar dataset with continuous and categorical columns.
	Table = dataset.Table
	// TableBuilder assembles a Table column by column.
	TableBuilder = dataset.Builder
	// Field describes one attribute.
	Field = dataset.Field
	// Kind distinguishes continuous from categorical attributes.
	Kind = dataset.Kind
	// CSVOptions controls CSV parsing.
	CSVOptions = dataset.CSVOptions
)

// Attribute kinds.
const (
	Continuous  = dataset.Continuous
	Categorical = dataset.Categorical
)

// NewTableBuilder returns an empty table builder.
func NewTableBuilder() *TableBuilder { return dataset.NewBuilder() }

// ReadCSV parses a headed CSV stream, inferring column kinds.
var ReadCSV = dataset.ReadCSV

// ReadCSVFile parses a headed CSV file, inferring column kinds.
var ReadCSVFile = dataset.ReadCSVFile

// Outcome functions.
type (
	// Outcome is a per-row outcome function o: D → ℝ ∪ {⊥}; subgroup
	// statistics are means of o over subgroup members with defined outcome.
	Outcome = outcome.Outcome
	// OutcomeBundle is an ordered set of outcomes evaluated together in one
	// mining pass; the first outcome is the primary and determines the
	// itemset lattice (discretization and polarities).
	OutcomeBundle = outcome.Bundle
)

// NewOutcomeBundle validates and assembles a multi-statistic bundle; all
// outcomes must cover the same rows.
var NewOutcomeBundle = outcome.NewBundle

// BuildStatistic assembles the outcome named by stat ("fpr", "fnr",
// "error", "accuracy", "numeric") from a table's label columns, returning
// the outcome plus the columns to exclude from the exploration. Both the
// CLI and the HTTP server resolve statistics through this function.
var BuildStatistic = core.BuildStatistic

// BoolColumn reads a table column as booleans (nonzero for continuous
// columns; true/false, yes/no, 1/0, t/f, y/n for categorical ones).
var BoolColumn = core.BoolColumn

// Outcome constructors.
var (
	// FalsePositiveRate builds the FPR outcome from actual and predicted
	// labels.
	FalsePositiveRate = outcome.FalsePositiveRate
	// FalseNegativeRate builds the FNR outcome.
	FalseNegativeRate = outcome.FalseNegativeRate
	// ErrorRate builds the misclassification outcome.
	ErrorRate = outcome.ErrorRate
	// Accuracy builds the accuracy outcome.
	Accuracy = outcome.Accuracy
	// Numeric builds an outcome directly from a numeric target column.
	Numeric = outcome.Numeric
)

// Items and hierarchies.
type (
	// Item is a constraint on one attribute (interval or level set).
	Item = hierarchy.Item
	// Itemset is a conjunction of items, at most one per attribute.
	Itemset = hierarchy.Itemset
	// Hierarchy is an item hierarchy for one attribute.
	Hierarchy = hierarchy.Hierarchy
	// HierarchySet maps attributes to their hierarchies (the paper's Γ).
	HierarchySet = hierarchy.Set
)

// Hierarchy constructors.
var (
	// ContinuousItem returns the item attr ∈ (lo, hi].
	ContinuousItem = hierarchy.ContinuousItem
	// CategoricalItem returns an item covering level codes of attr.
	CategoricalItem = hierarchy.CategoricalItem
	// NewHierarchySet returns an empty hierarchy set.
	NewHierarchySet = hierarchy.NewSet
	// FlatCategorical builds the depth-1 hierarchy A=a for all levels a.
	FlatCategorical = hierarchy.FlatCategorical
	// PathTaxonomy builds a multi-level categorical hierarchy from a path
	// function (e.g. occupation supercategories, IP prefixes).
	PathTaxonomy = hierarchy.PathTaxonomy
)

// Discretization.
type (
	// TreeOptions configures the divergence-aware tree discretizer.
	TreeOptions = discretize.TreeOptions
	// Criterion selects the tree split gain.
	Criterion = discretize.Criterion
)

// Tree split criteria.
const (
	// DivergenceGain is the paper's divergence-based split criterion,
	// applicable to any outcome.
	DivergenceGain = discretize.DivergenceGain
	// EntropyGain is the classic entropy criterion for boolean outcomes.
	EntropyGain = discretize.EntropyGain
)

// ArmFaultsFromEnv arms the deterministic fault-injection failpoints
// listed in the HDIV_FAILPOINTS environment variable (comma-separated
// site=spec pairs, e.g. "dataset.read_csv=error(disk gone)"); see
// internal/faultinject for the spec grammar and DESIGN.md §Failure
// containment for the site catalog. A no-op when the variable is unset;
// disarmed failpoints cost one atomic load. Intended for fault-injection
// testing of binaries built on this package.
var ArmFaultsFromEnv = faultinject.ArmFromEnv

// Discretizers.
var (
	// Tree builds the item hierarchy for one continuous attribute.
	Tree = discretize.Tree
	// TreeSet builds tree hierarchies for every continuous attribute.
	TreeSet = discretize.TreeSet
	// Quantile builds a flat equal-frequency discretization.
	Quantile = discretize.Quantile
	// UniformWidth builds a flat equal-width discretization.
	UniformWidth = discretize.UniformWidth
	// ManualCuts builds a flat discretization from explicit cut points.
	ManualCuts = discretize.ManualCuts
)

// Exploration.
type (
	// ExploreConfig parameterizes Explore.
	ExploreConfig = core.Config
	// Report is an exploration result: subgroups ranked by |divergence|.
	Report = core.Report
	// Subgroup is one explored subgroup with support, divergence and
	// t-value.
	Subgroup = core.Subgroup
	// Mode selects base or hierarchical exploration.
	Mode = core.Mode
	// Algorithm selects the mining algorithm.
	Algorithm = fpm.Algorithm
	// Budget bounds a mining run's resource consumption; on exhaustion the
	// exploration returns a ranked Report flagged Truncated instead of
	// failing. The zero value is unlimited.
	Budget = fpm.Budget
)

// Exploration modes and algorithms.
const (
	// Hierarchical explores generalized itemsets over all hierarchy levels.
	Hierarchical = core.Hierarchical
	// Base explores leaf items only (classic DivExplorer).
	Base = core.Base
	// FPGrowth selects the FP-tree miner (default).
	FPGrowth = fpm.FPGrowth
	// Apriori selects the level-wise miner.
	Apriori = fpm.Apriori
)

// Explore runs (H-)DivExplorer over a table with explicit hierarchies.
var Explore = core.Explore

// ExploreContext is Explore with cancellation: the miners poll the context
// at candidate granularity, so cancelling it (or letting its deadline
// expire) makes the exploration return promptly with an error wrapping
// ctx.Err().
var ExploreContext = core.ExploreContext

// ExploreUniverseContext runs a cancellable exploration over a prebuilt
// item universe. The universe is never mutated, so it stays valid for
// reuse after a cancelled run — the property the serving layer's universe
// cache relies on.
var ExploreUniverseContext = core.ExploreUniverseContext

// ExploreMulti mines the itemset lattice once for a bundle of statistics
// and returns one ranked report per statistic; a bundle of one is
// byte-identical to Explore. See core.ExploreMulti for the polarity
// caveat when pruning is enabled.
var ExploreMulti = core.ExploreMulti

// ExploreMultiContext is ExploreMulti with cancellation.
var ExploreMultiContext = core.ExploreMultiContext

// ExploreUniverseMultiContext is the multi-statistic exploration over a
// prebuilt universe (built against the bundle's primary outcome).
var ExploreUniverseMultiContext = core.ExploreUniverseMultiContext

// DescribeHierarchy renders an item hierarchy annotated with per-node
// support and divergence (the paper's Figure 1).
var DescribeHierarchy = core.DescribeHierarchy

// PipelineOptions configures the end-to-end Pipeline helper.
type PipelineOptions struct {
	// TreeSupport is the tree-node support st used by the hierarchical
	// discretizer (default 0.1).
	TreeSupport float64
	// Criterion is the tree split gain (default DivergenceGain).
	Criterion Criterion
	// MinSupport is the exploration support threshold s (default 0.05).
	MinSupport float64
	// MaxLen bounds itemset length (0 = unlimited).
	MaxLen int
	// PolarityPrune enables polarity pruning.
	PolarityPrune bool
	// Mode selects hierarchical (default) or base exploration.
	Mode Mode
	// Algorithm selects the miner (default FPGrowth).
	Algorithm Algorithm
	// Workers enables parallel mining (0 or 1 = serial; results are
	// identical regardless).
	Workers int
	// Shards fixes the engine data plane's row-shard count (0 = default
	// layout). Ranked output is byte-identical across shard counts for
	// boolean outcomes (all built-in rate statistics).
	Shards int
	// ResourceBudget bounds the mining run; on exhaustion the pipeline
	// returns a ranked Report flagged Truncated instead of failing. The
	// zero value is unlimited.
	ResourceBudget Budget
	// Taxonomies supplies multi-level hierarchies for specific categorical
	// attributes; all other categorical attributes get flat hierarchies.
	Taxonomies []*Hierarchy
	// Exclude lists attributes to leave out of the exploration entirely.
	Exclude []string
	// Explain computes a query-level cost-attribution profile for the run;
	// the report's Explain field receives it. Implies tracing: when Tracer
	// is nil a run-local tracer is created for the exploration stages, so
	// Explain is self-sufficient (set Tracer too to also cover parsing and
	// discretization in the profile).
	Explain bool
	// Tracer, when non-nil, instruments the whole pipeline — tree
	// discretization, universe build, mining, ranking — with spans and
	// counters; the report's Trace field receives the snapshot. Thread the
	// same tracer through CSVOptions to cover parsing too.
	Tracer *Tracer
	// Progress, when non-nil, receives live mining progress; poll its
	// Snapshot from another goroutine while the pipeline runs.
	Progress *Progress
}

// Pipeline runs the full H-DivExplorer pipeline on a table: divergence-
// aware tree discretization of every continuous attribute, flat or
// taxonomic hierarchies for categorical attributes, then (hierarchical)
// divergence subgroup exploration.
func Pipeline(t *Table, o *Outcome, opt PipelineOptions) (*Report, error) {
	return PipelineContext(context.Background(), t, o, opt)
}

// PipelineContext is Pipeline with cancellation: the context is checked
// between pipeline stages and polled at candidate granularity inside the
// miners, so a cancelled or timed-out context aborts the run promptly
// with an error wrapping ctx.Err().
func PipelineContext(ctx context.Context, t *Table, o *Outcome, opt PipelineOptions) (*Report, error) {
	hs, cfg, err := pipelinePrepare(ctx, t, o, &opt)
	if err != nil {
		return nil, err
	}
	cfg.Outcome = o
	cfg.Hierarchies = hs
	return core.ExploreContext(ctx, t, cfg)
}

// PipelineMulti runs the full pipeline once for a bundle of statistics:
// discretization and the itemset lattice follow the bundle's primary
// outcome, a single mining pass accumulates every outcome's moments, and
// one ranked report per statistic is returned (in bundle order). A bundle
// of one is byte-identical to Pipeline.
func PipelineMulti(t *Table, b *OutcomeBundle, opt PipelineOptions) ([]*Report, error) {
	return PipelineMultiContext(context.Background(), t, b, opt)
}

// PipelineMultiContext is PipelineMulti with cancellation.
func PipelineMultiContext(ctx context.Context, t *Table, b *OutcomeBundle, opt PipelineOptions) ([]*Report, error) {
	if b == nil || b.Len() == 0 {
		return nil, fmt.Errorf("hdivexplorer: nil or empty outcome bundle")
	}
	hs, cfg, err := pipelinePrepare(ctx, t, b.Primary(), &opt)
	if err != nil {
		return nil, err
	}
	cfg.Hierarchies = hs
	return core.ExploreMultiContext(ctx, t, cfg, b)
}

// pipelinePrepare applies pipeline defaults, builds the hierarchy set
// (tree discretization driven by o plus categorical hierarchies) and
// assembles the exploration config shared by the single- and
// multi-statistic pipelines.
func pipelinePrepare(ctx context.Context, t *Table, o *Outcome, opt *PipelineOptions) (*HierarchySet, core.Config, error) {
	if opt.TreeSupport == 0 {
		opt.TreeSupport = 0.1
	}
	if opt.MinSupport == 0 {
		opt.MinSupport = 0.05
	}
	skip := map[string]bool{}
	for _, e := range opt.Exclude {
		if !t.HasColumn(e) {
			return nil, core.Config{}, fmt.Errorf("hdivexplorer: excluded attribute %q not in table", e)
		}
		skip[e] = true
	}
	if err := ctx.Err(); err != nil {
		return nil, core.Config{}, fmt.Errorf("hdivexplorer: pipeline cancelled: %w", err)
	}
	hs, err := discretize.TreeSet(t, o, discretize.TreeOptions{
		Criterion:  opt.Criterion,
		MinSupport: opt.TreeSupport,
		Tracer:     opt.Tracer,
	}, opt.Exclude...)
	if err != nil {
		return nil, core.Config{}, err
	}
	taxed := map[string]bool{}
	for _, h := range opt.Taxonomies {
		if skip[h.Attr] {
			continue
		}
		hs.Add(h)
		taxed[h.Attr] = true
	}
	for _, f := range t.Fields() {
		if f.Kind == dataset.Categorical && !skip[f.Name] && !taxed[f.Name] {
			hs.Add(hierarchy.FlatCategorical(t, f.Name))
		}
	}
	return hs, core.Config{
		MinSupport:    opt.MinSupport,
		MaxLen:        opt.MaxLen,
		PolarityPrune: opt.PolarityPrune,
		Algorithm:     opt.Algorithm,
		Mode:          opt.Mode,
		Workers:       opt.Workers,
		Shards:        opt.Shards,
		Budget:        opt.ResourceBudget,
		Explain:       opt.Explain,
		Tracer:        opt.Tracer,
		Progress:      opt.Progress,
	}, nil
}
