package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// explainTrace builds a deterministic trace by hand so the profile's
// arithmetic can be checked exactly (real spans have measured durations).
func explainTrace() *Trace {
	return &Trace{
		ID: "req-1",
		Spans: []SpanRecord{
			{ID: 0, Parent: -1, Name: "explore", DurNS: 1000, Bytes: 500, Allocs: 50},
			{ID: 1, Parent: 0, Name: "explore.universe", DurNS: 200, Bytes: 100, Allocs: 10},
			{ID: 2, Parent: 0, Name: "mine", DurNS: 700, Bytes: 350, Allocs: 30},
			{ID: 3, Parent: 2, Name: "mine.scan", DurNS: 300, Bytes: 100, Allocs: 10},
		},
		Counters: map[string]int64{
			CtrCandidates:                           40,
			CtrPrunedSupport:                        15,
			CtrItemsetsEmitted:                      25,
			CtrShardRowsPrefix + "0":                60,
			CtrShardRowsPrefix + "1":                40,
			CtrShardSupportPrefix + "0":             30,
			CtrShardSupportPrefix + "1":             10,
			CtrWorkerTaskPrefix + "0":               7,
			CtrWorkerAllocBytesPrefix + "0":         4096,
			CtrWorkerAllocObjsPrefix + "0":          12,
			CtrBudgetExhaustedPrefix + "candidates": 1,
		},
		Gauges: map[string]float64{
			GaugeBudgetMaxCandidates: 50,
			GaugeBudgetMaxItemsets:   100,
			GaugeCacheHit:            1,
		},
	}
}

func TestNewExplainStages(t *testing.T) {
	e := NewExplain(explainTrace())
	if e == nil {
		t.Fatal("NewExplain returned nil for non-nil trace")
	}
	if e.RequestID != "req-1" {
		t.Errorf("RequestID = %q", e.RequestID)
	}
	if e.TotalNS != 1000 {
		t.Errorf("TotalNS = %d, want 1000 (sum of root spans)", e.TotalNS)
	}
	// Pre-order: explore, explore.universe, mine, mine.scan.
	names := make([]string, len(e.Stages))
	var selfSum int64
	var fracSum float64
	for i, st := range e.Stages {
		names[i] = st.Name
		selfSum += st.SelfNS
		fracSum += st.SelfFrac
	}
	if want := []string{"explore", "explore.universe", "mine", "mine.scan"}; strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("stage order = %v, want %v", names, want)
	}
	// The self-time invariant: self columns sum exactly to the total, so
	// the "stage times sum within 10% of total" contract holds by
	// construction.
	if selfSum != e.TotalNS {
		t.Errorf("sum(SelfNS) = %d, want TotalNS %d", selfSum, e.TotalNS)
	}
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Errorf("sum(SelfFrac) = %v, want 1", fracSum)
	}
	// explore: 1000 − (200 + 700) = 100 self; mine: 700 − 300 = 400.
	if e.Stages[0].SelfNS != 100 || e.Stages[2].SelfNS != 400 {
		t.Errorf("SelfNS explore=%d mine=%d, want 100, 400", e.Stages[0].SelfNS, e.Stages[2].SelfNS)
	}
	if e.Stages[0].Depth != 0 || e.Stages[1].Depth != 1 || e.Stages[3].Depth != 2 {
		t.Error("stage depths do not follow the span tree")
	}
	// Allocation self deltas follow the same subtraction.
	if e.Stages[0].SelfBytes != 50 || e.Stages[0].SelfAllocs != 10 {
		t.Errorf("explore self allocs = %d B / %d objs, want 50 / 10",
			e.Stages[0].SelfBytes, e.Stages[0].SelfAllocs)
	}
}

func TestNewExplainNegativeSelfFloored(t *testing.T) {
	// Concurrent children whose summed duration exceeds the parent's must
	// floor to zero, not go negative.
	tr := &Trace{Spans: []SpanRecord{
		{ID: 0, Parent: -1, Name: "p", DurNS: 100, Bytes: 10, Allocs: 1},
		{ID: 1, Parent: 0, Name: "a", DurNS: 90, Bytes: 20, Allocs: 5},
		{ID: 2, Parent: 0, Name: "b", DurNS: 80, Bytes: 20, Allocs: 5},
	}}
	e := NewExplain(tr)
	if st := e.Stages[0]; st.SelfNS != 0 || st.SelfBytes != 0 || st.SelfAllocs != 0 {
		t.Errorf("parent self not floored: %+v", st)
	}
}

func TestNewExplainCountersShardsBudget(t *testing.T) {
	e := NewExplain(explainTrace())
	if e.Mining.Candidates != 40 || e.Mining.PrunedSupport != 15 || e.Mining.Itemsets != 25 {
		t.Errorf("mining counters = %+v", e.Mining)
	}
	if len(e.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(e.Shards))
	}
	if e.Shards[0].Rows != 60 || e.Shards[0].Support != 30 || e.Shards[1].Support != 10 {
		t.Errorf("shard loads = %+v", e.Shards)
	}
	// Skew over support loads: max=30, n=2, sum=40 → 1.5.
	if e.ShardSkew != 1.5 {
		t.Errorf("ShardSkew = %v, want 1.5", e.ShardSkew)
	}
	if len(e.Workers) != 1 || e.Workers[0].Tasks != 7 || e.Workers[0].AllocBytes != 4096 || e.Workers[0].Allocs != 12 {
		t.Errorf("workers = %+v", e.Workers)
	}
	if e.Cache == nil || !e.Cache.Hit {
		t.Errorf("cache = %+v, want hit", e.Cache)
	}
	if len(e.Budget) != 2 {
		t.Fatalf("budget rows = %+v, want candidates and itemsets", e.Budget)
	}
	cand := e.Budget[0]
	if cand.Dimension != "candidates" || cand.Used != 40 || cand.Limit != 50 || cand.Frac != 0.8 || !cand.Exhausted {
		t.Errorf("candidates budget row = %+v", cand)
	}
	if it := e.Budget[1]; it.Dimension != "itemsets" || it.Used != 25 || it.Limit != 100 || it.Exhausted {
		t.Errorf("itemsets budget row = %+v", it)
	}
}

func TestNewExplainSkewFallsBackToRows(t *testing.T) {
	// FP-Growth runs emit shard rows but no support counters.
	tr := &Trace{Counters: map[string]int64{
		CtrShardRowsPrefix + "0": 90,
		CtrShardRowsPrefix + "1": 10,
	}}
	e := NewExplain(tr)
	// max=90, n=2, sum=100 → 1.8.
	if e.ShardSkew != 1.8 {
		t.Errorf("ShardSkew = %v, want 1.8 (rows fallback)", e.ShardSkew)
	}
}

func TestExplainDeterministic(t *testing.T) {
	full := NewExplain(explainTrace())
	// Measured fields present on the full profile...
	if full.TotalNS == 0 || full.Stages[0].TotalNS == 0 || len(full.Workers) == 0 {
		t.Fatal("test trace lost its measured fields")
	}
	d := full.Deterministic()
	// ...and stripped from the deterministic view.
	if d.TotalNS != 0 {
		t.Error("Deterministic kept TotalNS")
	}
	if len(d.Workers) != 0 {
		t.Error("Deterministic kept the worker split")
	}
	for _, st := range d.Stages {
		if st.TotalNS != 0 || st.SelfNS != 0 || st.Bytes != 0 || st.SelfAllocs != 0 {
			t.Errorf("Deterministic kept measured stage fields: %+v", st)
		}
	}
	if len(d.Stages) != len(full.Stages) || d.Stages[2].Name != "mine" || d.Stages[2].Depth != 1 {
		t.Error("Deterministic lost the stage tree shape")
	}
	if d.Mining != full.Mining || d.ShardSkew != full.ShardSkew || len(d.Shards) != 2 {
		t.Error("Deterministic dropped deterministic content")
	}
	for _, b := range d.Budget {
		if b.Dimension == "deadline" || b.Dimension == "heap" {
			t.Errorf("Deterministic kept measured budget row %q", b.Dimension)
		}
	}
	if (&Explain{}).Deterministic() == nil {
		t.Error("Deterministic on empty profile returned nil")
	}
	var nilEx *Explain
	if nilEx.Deterministic() != nil {
		t.Error("Deterministic on nil profile returned non-nil")
	}
}

func TestExplainDeadlineBudgetNeedsMineSpan(t *testing.T) {
	tr := explainTrace()
	tr.Gauges[GaugeBudgetSoftDeadlineNS] = 1e6
	e := NewExplain(tr)
	var deadline *ExplainBudget
	for i := range e.Budget {
		if e.Budget[i].Dimension == "deadline" {
			deadline = &e.Budget[i]
		}
	}
	if deadline == nil {
		t.Fatal("no deadline budget row despite soft-deadline gauge and mine span")
	}
	if deadline.Used != 700 { // the mine span's DurNS
		t.Errorf("deadline Used = %d, want the mine span duration 700", deadline.Used)
	}

	// Without a mine span (e.g. a request rejected before mining) the row
	// is omitted rather than reported as 0/limit.
	tr.Spans = tr.Spans[:2]
	for _, b := range NewExplain(tr).Budget {
		if b.Dimension == "deadline" {
			t.Error("deadline budget row emitted without a mine span")
		}
	}
}

func TestNewExplainFromRealTracer(t *testing.T) {
	tr := New()
	sp := tr.Start("outer")
	time.Sleep(time.Millisecond)
	in := sp.Start("inner")
	buf := make([]byte, 1<<16)
	_ = buf
	in.End()
	sp.End()
	e := NewExplain(tr.Snapshot())
	if len(e.Stages) != 2 || e.Stages[0].Name != "outer" {
		t.Fatalf("stages = %+v", e.Stages)
	}
	if e.TotalNS <= 0 {
		t.Error("TotalNS not measured")
	}
	var selfSum int64
	for _, st := range e.Stages {
		selfSum += st.SelfNS
	}
	if selfSum != e.TotalNS {
		t.Errorf("self sum %d != total %d on a live trace", selfSum, e.TotalNS)
	}
	if NewExplain(nil) != nil {
		t.Error("NewExplain(nil) != nil")
	}
}

func TestExplainTextAndJSON(t *testing.T) {
	e := NewExplain(explainTrace())
	text := e.Text()
	for _, want := range []string{
		"explain req-1", "explore.universe", "mine.scan",
		"candidates=40", "skew=1.50", "cache: hit",
		"candidates 40/50 (80.0%) EXHAUSTED",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	var b strings.Builder
	if err := e.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Explain
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("WriteJSON output does not round-trip: %v", err)
	}
	if back.Mining != e.Mining || back.TotalNS != e.TotalNS {
		t.Error("JSON round trip lost fields")
	}
}
