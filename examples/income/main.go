// Income divergence with categorical taxonomies: reproduce the paper's
// folktables analysis.
//
// The statistic here is not a model metric but the income itself: which
// population subgroups earn far above or below the average? Occupation and
// place of birth carry multi-level taxonomies (MGR-Sales Managers → MGR;
// US-California → US), and the hierarchical exploration mixes granularity
// levels: the paper's headline subgroup {AGEP≥35, OCCP=MGR, SEX=Male} uses
// the occupation *supercategory*, which no fixed discretization reaches at
// support 0.05 because every individual manager occupation is too rare.
//
//	go run ./examples/income
package main

import (
	"fmt"
	"log"
	"strings"

	hdiv "repro"
	"repro/internal/datagen"
)

func main() {
	d := datagen.Folktables(datagen.Config{N: 40_000, Seed: 1})
	o := hdiv.Numeric("income", d.Target)
	fmt.Printf("population: %d, mean income: $%.0f\n\n", d.Table.NumRows(), o.GlobalMean())

	// Multi-level taxonomies for occupation and place of birth, derived
	// from the level-name prefixes.
	taxonomies := datagen.FolktablesTaxonomies(d.Table)

	for _, mode := range []hdiv.Mode{hdiv.Base, hdiv.Hierarchical} {
		rep, err := hdiv.Pipeline(d.Table, o, hdiv.PipelineOptions{
			TreeSupport: 0.1,
			MinSupport:  0.05,
			Mode:        mode,
			Taxonomies:  taxonomies,
			// Only the divergence criterion applies: income is not a
			// probability (it has no boolean outcome function).
			Criterion: hdiv.DivergenceGain,
		})
		if err != nil {
			log.Fatal(err)
		}
		top := rep.Top()
		fmt.Printf("%-13s top subgroup: {%s}\n", mode, top.Itemset)
		fmt.Printf("              mean income $%.0f (Δ=%+.0f), support %.3f, t=%.1f\n",
			top.Statistic, top.Divergence, top.Support, top.T)
		if mode == hdiv.Hierarchical {
			explainGranularity(top)
		}
		fmt.Println()
	}
}

// explainGranularity points out which items of the winning subgroup are
// taxonomy supercategories rather than leaf levels.
func explainGranularity(sg *hdiv.Subgroup) {
	for _, it := range sg.Itemset {
		label := it.String()
		if strings.Contains(label, "OCCP=") && !strings.Contains(label, "-") {
			fmt.Printf("              %s is a supercategory covering %d occupations —\n", label, len(it.Codes))
			fmt.Println("              unreachable by non-hierarchical exploration at this support")
		}
	}
}
