package fpm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/engine"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// randomUniverse builds a small random dataset with two continuous and one
// categorical attribute, tree-discretized hierarchies, and an error-rate
// outcome. It is the shared fixture for equivalence tests.
func randomUniverse(t *testing.T, seed int64, n int, generalized bool) (*Universe, *outcome.Outcome) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]string, n)
	actual := make([]bool, n)
	pred := make([]bool, n)
	cats := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		a[i] = r.Float64() * 10
		b[i] = r.NormFloat64() * 3
		c[i] = cats[r.Intn(len(cats))]
		actual[i] = r.Intn(2) == 0
		// Error concentrates where a is large and c is red.
		errP := 0.1
		if a[i] > 7 {
			errP += 0.4
		}
		if c[i] == "red" {
			errP += 0.2
		}
		pred[i] = actual[i]
		if r.Float64() < errP {
			pred[i] = !pred[i]
		}
	}
	tab := dataset.NewBuilder().
		AddFloat("a", a).
		AddFloat("b", b).
		AddCategorical("c", c).
		MustBuild()
	o := outcome.ErrorRate(actual, pred)
	hs, err := discretize.TreeSet(tab, o, discretize.TreeOptions{MinSupport: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	hs.Add(hierarchy.FlatCategorical(tab, "c"))
	if generalized {
		return GeneralizedUniverse(tab, hs, o), o
	}
	return BaseUniverse(tab, hs, o), o
}

// mineBrute enumerates every itemset (one item per attribute) by exhaustive
// recursion, as a correctness oracle.
func mineBrute(u *Universe, o *outcome.Outcome, opt Options, minCount int) []MinedItemset {
	var out []MinedItemset
	var rec func(start int, items []int, rows *bitvec.Vector)
	rec = func(start int, items []int, rows *bitvec.Vector) {
		for i := start; i < len(u.Items); i++ {
			conflict := false
			for _, j := range items {
				if u.AttrID[j] == u.AttrID[i] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			if opt.PolarityPrune && len(items) >= 1 {
				mismatch := false
				for _, j := range items {
					if u.Polarity[j] != u.Polarity[i] {
						mismatch = true
						break
					}
				}
				if mismatch {
					continue
				}
			}
			var newRows *bitvec.Vector
			if rows == nil {
				newRows = u.Rows[i].Dense().Clone()
			} else {
				newRows = u.Rows[i].AndInto(rows, bitvec.New(u.NumRows))
			}
			count := newRows.Count()
			if count < minCount {
				continue
			}
			newItems := append(append([]int{}, items...), i)
			out = append(out, MinedItemset{Items: newItems, Count: count, M: o.MomentsOf(newRows)})
			if opt.MaxLen == 0 || len(newItems) < opt.MaxLen {
				rec(i+1, newItems, newRows)
			}
		}
	}
	rec(0, nil, nil)
	return out
}

func canonicalize(items []MinedItemset) map[string]MinedItemset {
	m := map[string]MinedItemset{}
	for _, it := range items {
		s := append([]int(nil), it.Items...)
		sort.Ints(s)
		m[fmt.Sprint(s)] = it
	}
	return m
}

func momentsClose(a, b stats.Moments) bool {
	return a.N == b.N && math.Abs(a.Sum-b.Sum) < 1e-9 && math.Abs(a.SumSq-b.SumSq) < 1e-6
}

func TestAprioriMatchesFPGrowth(t *testing.T) {
	for _, generalized := range []bool{false, true} {
		for _, prune := range []bool{false, true} {
			for _, s := range []float64{0.02, 0.05, 0.1} {
				name := fmt.Sprintf("gen=%v/prune=%v/s=%v", generalized, prune, s)
				u, o := randomUniverse(t, 42, 800, generalized)
				ra, err := Mine(u, o, Options{MinSupport: s, PolarityPrune: prune, Algorithm: Apriori})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				rf, err := Mine(u, o, Options{MinSupport: s, PolarityPrune: prune, Algorithm: FPGrowth})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				ma, mf := canonicalize(ra.Itemsets), canonicalize(rf.Itemsets)
				if len(ma) != len(mf) {
					t.Errorf("%s: apriori %d itemsets, fp-growth %d", name, len(ma), len(mf))
				}
				for k, va := range ma {
					vf, ok := mf[k]
					if !ok {
						t.Errorf("%s: itemset %v missing from fp-growth", name, u.Itemset(va.Items))
						continue
					}
					if va.Count != vf.Count || !momentsClose(va.M, vf.M) {
						t.Errorf("%s: itemset %v stats differ: apriori (%d,%+v) vs fp (%d,%+v)",
							name, u.Itemset(va.Items), va.Count, va.M, vf.Count, vf.M)
					}
				}
			}
		}
	}
}

func TestMinersMatchBruteForce(t *testing.T) {
	for _, generalized := range []bool{false, true} {
		for _, prune := range []bool{false, true} {
			u, o := randomUniverse(t, 7, 400, generalized)
			opt := Options{MinSupport: 0.05, PolarityPrune: prune}
			minCount := int(math.Ceil(opt.MinSupport * float64(u.NumRows)))
			want := canonicalize(mineBrute(u, o, opt, minCount))
			for _, alg := range []Algorithm{Apriori, FPGrowth} {
				opt.Algorithm = alg
				res, err := Mine(u, o, opt)
				if err != nil {
					t.Fatal(err)
				}
				got := canonicalize(res.Itemsets)
				if len(got) != len(want) {
					t.Errorf("gen=%v prune=%v %v: %d itemsets, brute force %d",
						generalized, prune, alg, len(got), len(want))
				}
				for k, w := range want {
					g, ok := got[k]
					if !ok {
						t.Errorf("gen=%v prune=%v %v: missing %v", generalized, prune, alg, u.Itemset(w.Items))
						continue
					}
					if g.Count != w.Count || !momentsClose(g.M, w.M) {
						t.Errorf("gen=%v prune=%v %v: stats differ for %v", generalized, prune, alg, u.Itemset(w.Items))
					}
				}
			}
		}
	}
}

// The paper's superset guarantee: for the same support threshold, the
// hierarchical exploration finds itemsets at least as divergent as the base
// exploration, because generalized itemsets are a superset of base itemsets.
func TestGeneralizedSupersetGuarantee(t *testing.T) {
	for _, s := range []float64{0.02, 0.05, 0.1} {
		ub, o := randomUniverse(t, 99, 1000, false)
		ug, _ := randomUniverse(t, 99, 1000, true)
		rb, err := Mine(ub, o, Options{MinSupport: s})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := Mine(ug, o, Options{MinSupport: s})
		if err != nil {
			t.Fatal(err)
		}
		maxAbs := func(r *Result) float64 {
			best := 0.0
			for _, m := range r.Itemsets {
				if d := math.Abs(o.DivergenceFromMoments(m.M)); d > best {
					best = d
				}
			}
			return best
		}
		if len(rg.Itemsets) < len(rb.Itemsets) {
			t.Errorf("s=%v: generalized found %d < base %d itemsets", s, len(rg.Itemsets), len(rb.Itemsets))
		}
		if maxAbs(rg)+1e-12 < maxAbs(rb) {
			t.Errorf("s=%v: generalized max |Δ| %v < base %v", s, maxAbs(rg), maxAbs(rb))
		}
	}
}

func TestPolarityPruneKeepsSingletons(t *testing.T) {
	u, o := randomUniverse(t, 5, 500, true)
	full, err := Mine(u, o, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Mine(u, o, Options{MinSupport: 0.05, PolarityPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	singles := func(r *Result) int {
		c := 0
		for _, m := range r.Itemsets {
			if len(m.Items) == 1 {
				c++
			}
		}
		return c
	}
	if singles(full) != singles(pruned) {
		t.Errorf("pruning changed singleton count: %d vs %d", singles(full), singles(pruned))
	}
	if len(pruned.Itemsets) > len(full.Itemsets) {
		t.Error("pruned search returned more itemsets than complete search")
	}
	// Every pruned itemset of length ≥ 2 is polarity-uniform.
	for _, m := range pruned.Itemsets {
		if len(m.Items) < 2 {
			continue
		}
		p := u.Polarity[m.Items[0]]
		for _, it := range m.Items[1:] {
			if u.Polarity[it] != p {
				t.Fatalf("pruned result contains mixed-polarity itemset %v", u.Itemset(m.Items))
			}
		}
	}
	// Pruned results are a subset of complete results with identical stats.
	fullMap := canonicalize(full.Itemsets)
	for k, g := range canonicalize(pruned.Itemsets) {
		w, ok := fullMap[k]
		if !ok {
			t.Fatalf("pruned itemset %v absent from complete search", u.Itemset(g.Items))
		}
		if g.Count != w.Count || !momentsClose(g.M, w.M) {
			t.Fatalf("pruned stats differ for %v", u.Itemset(g.Items))
		}
	}
}

func TestMaxLen(t *testing.T) {
	u, o := randomUniverse(t, 11, 500, true)
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		res, err := Mine(u, o, Options{MinSupport: 0.05, MaxLen: 2, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Itemsets {
			if len(m.Items) > 2 {
				t.Errorf("%v: itemset %v exceeds MaxLen", alg, u.Itemset(m.Items))
			}
		}
		// MaxLen=2 results must equal the length ≤ 2 slice of the full run.
		fullRes, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, m := range fullRes.Itemsets {
			if len(m.Items) <= 2 {
				want++
			}
		}
		if len(res.Itemsets) != want {
			t.Errorf("%v: MaxLen=2 found %d itemsets, want %d", alg, len(res.Itemsets), want)
		}
	}
}

func TestOneItemPerAttribute(t *testing.T) {
	u, o := randomUniverse(t, 13, 600, true)
	res, err := Mine(u, o, Options{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Itemsets {
		seen := map[int]bool{}
		for _, it := range m.Items {
			if seen[u.AttrID[it]] {
				t.Fatalf("itemset %v uses attribute %q twice", u.Itemset(m.Items), u.Attr(u.AttrID[it]))
			}
			seen[u.AttrID[it]] = true
		}
	}
}

func TestSupportMonotone(t *testing.T) {
	u, o := randomUniverse(t, 17, 600, true)
	prev := -1
	for _, s := range []float64{0.2, 0.1, 0.05, 0.02} {
		res, err := Mine(u, o, Options{MinSupport: s})
		if err != nil {
			t.Fatal(err)
		}
		minCount := int(math.Ceil(s * float64(u.NumRows)))
		for _, m := range res.Itemsets {
			if m.Count < minCount {
				t.Fatalf("s=%v: itemset with count %d < %d", s, m.Count, minCount)
			}
		}
		if prev >= 0 && len(res.Itemsets) < prev {
			t.Errorf("lowering support reduced itemset count: %d -> %d", prev, len(res.Itemsets))
		}
		prev = len(res.Itemsets)
	}
}

func TestMineErrors(t *testing.T) {
	u, o := randomUniverse(t, 1, 100, false)
	if _, err := Mine(u, o, Options{MinSupport: 0}); err == nil {
		t.Error("MinSupport 0 should fail")
	}
	if _, err := Mine(u, o, Options{MinSupport: 1.5}); err == nil {
		t.Error("MinSupport > 1 should fail")
	}
	if _, err := Mine(u, o, Options{MinSupport: 0.1, Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	short := outcome.Numeric("x", []float64{1, 2, 3})
	if _, err := Mine(u, short, Options{MinSupport: 0.1}); err == nil {
		t.Error("outcome length mismatch should fail")
	}
}

func TestUniverseBasics(t *testing.T) {
	u, _ := randomUniverse(t, 3, 200, true)
	if u.NumAttrs() != 3 {
		t.Errorf("NumAttrs = %d, want 3", u.NumAttrs())
	}
	names := map[string]bool{}
	for id := 0; id < u.NumAttrs(); id++ {
		names[u.Attr(id)] = true
	}
	if !names["a"] || !names["b"] || !names["c"] {
		t.Errorf("attrs = %v", names)
	}
	if err := u.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	its := u.Itemset([]int{0, len(u.Items) - 1})
	if len(its) != 2 {
		t.Error("Itemset materialization wrong")
	}
}

func TestSupportHelper(t *testing.T) {
	m := MinedItemset{Count: 25}
	if got := m.Support(100); got != 0.25 {
		t.Errorf("Support = %v, want 0.25", got)
	}
}

func TestSortByDivergence(t *testing.T) {
	u, o := randomUniverse(t, 23, 500, true)
	res, err := Mine(u, o, Options{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	items := append([]MinedItemset(nil), res.Itemsets...)
	SortByDivergence(items, o, false, false)
	for i := 1; i < len(items); i++ {
		da := math.Abs(o.DivergenceFromMoments(items[i-1].M))
		db := math.Abs(o.DivergenceFromMoments(items[i].M))
		if db > da+1e-12 {
			t.Fatalf("abs sort violated at %d: %v < %v", i, da, db)
		}
	}
	SortByDivergence(items, o, true, true)
	for i := 1; i < len(items); i++ {
		if o.DivergenceFromMoments(items[i].M) > o.DivergenceFromMoments(items[i-1].M)+1e-12 {
			t.Fatal("signed positive sort violated")
		}
	}
	SortByDivergence(items, o, true, false)
	for i := 1; i < len(items); i++ {
		if o.DivergenceFromMoments(items[i].M) < o.DivergenceFromMoments(items[i-1].M)-1e-12 {
			t.Fatal("signed negative sort violated")
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if Apriori.String() != "apriori" || FPGrowth.String() != "fp-growth" {
		t.Error("Algorithm.String wrong")
	}
	if Algorithm(7).String() == "" {
		t.Error("unknown algorithm should render")
	}
}

// Mined moments must agree with a direct recomputation from the itemset's
// rows — the "no additional pass" bookkeeping is exact.
func TestMinedMomentsMatchDirect(t *testing.T) {
	u, o := randomUniverse(t, 31, 700, true)
	res, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: FPGrowth})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Itemsets {
		rows := u.Rows[m.Items[0]].Dense().Clone()
		for _, it := range m.Items[1:] {
			rows = u.Rows[it].AndInto(rows, bitvec.New(u.NumRows))
		}
		if rows.Count() != m.Count {
			t.Fatalf("count mismatch for %v: %d vs %d", u.Itemset(m.Items), rows.Count(), m.Count)
		}
		direct := o.MomentsOf(rows)
		if !momentsClose(direct, m.M) {
			t.Fatalf("moments mismatch for %v", u.Itemset(m.Items))
		}
	}
}

// Parallel mining must produce byte-identical results to serial mining,
// in the same order, for both algorithms and all pruning modes.
func TestParallelMatchesSerial(t *testing.T) {
	u, o := randomUniverse(t, 51, 900, true)
	for _, alg := range []Algorithm{Apriori, FPGrowth} {
		for _, prune := range []bool{false, true} {
			serial, err := Mine(u, o, Options{MinSupport: 0.03, Algorithm: alg, PolarityPrune: prune})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 16} {
				par, err := Mine(u, o, Options{MinSupport: 0.03, Algorithm: alg, PolarityPrune: prune, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if len(par.Itemsets) != len(serial.Itemsets) {
					t.Fatalf("%v workers=%d: %d itemsets vs %d serial",
						alg, workers, len(par.Itemsets), len(serial.Itemsets))
				}
				for i := range serial.Itemsets {
					a, b := serial.Itemsets[i], par.Itemsets[i]
					if fmt.Sprint(a.Items) != fmt.Sprint(b.Items) || a.Count != b.Count || !momentsClose(a.M, b.M) {
						t.Fatalf("%v workers=%d: itemset %d differs (order or stats)", alg, workers, i)
					}
				}
				if par.Stats.Candidates != serial.Stats.Candidates {
					t.Errorf("%v workers=%d: candidate count %d vs %d",
						alg, workers, par.Stats.Candidates, serial.Stats.Candidates)
				}
			}
		}
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		hit := make([]atomicBool, n)
		engine.ParallelFor(n, workers, nil, func(i int) { hit[i].Store(true) })
		for i := range hit {
			if !hit[i].Load() {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
	// n == 0 and n == 1 edge cases.
	engine.ParallelFor(0, 4, nil, func(int) { t.Fatal("should not be called") })
	called := 0
	engine.ParallelFor(1, 4, nil, func(int) { called++ })
	if called != 1 {
		t.Fatal("n=1 not called exactly once")
	}
}

// atomicBool wraps atomic.Bool for pre-1.19-style field embedding clarity.
type atomicBool = atomic.Bool

func BenchmarkMineFPGrowth(b *testing.B) {
	u, o := benchUniverse(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(u, o, Options{MinSupport: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineApriori(b *testing.B) {
	u, o := benchUniverse(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(u, o, Options{MinSupport: 0.05, Algorithm: Apriori}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinePolarityPruned(b *testing.B) {
	u, o := benchUniverse(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(u, o, Options{MinSupport: 0.05, PolarityPrune: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchUniverse(b *testing.B, n int) (*Universe, *outcome.Outcome) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	a := make([]float64, n)
	c := make([]float64, n)
	g := make([]string, n)
	actual := make([]bool, n)
	pred := make([]bool, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64() * 10
		c[i] = r.NormFloat64()
		g[i] = []string{"u", "v", "w"}[r.Intn(3)]
		actual[i] = r.Intn(2) == 0
		pred[i] = actual[i]
		if a[i] > 8 && r.Float64() < 0.4 {
			pred[i] = !pred[i]
		}
	}
	tab := dataset.NewBuilder().AddFloat("a", a).AddFloat("c", c).AddCategorical("g", g).MustBuild()
	o := outcome.ErrorRate(actual, pred)
	hs, err := discretize.TreeSet(tab, o, discretize.TreeOptions{MinSupport: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	hs.Add(hierarchy.FlatCategorical(tab, "g"))
	return GeneralizedUniverse(tab, hs, o), o
}

// Property (testing/quick): for random small universes, random supports and
// random pruning settings, both miners agree with brute force exactly.
func TestQuickMinersMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(150)
		// Random dataset: 2 continuous, 1 categorical attribute.
		a := make([]float64, n)
		c := make([]float64, n)
		g := make([]string, n)
		actual := make([]bool, n)
		pred := make([]bool, n)
		for i := 0; i < n; i++ {
			a[i] = r.Float64() * 10
			c[i] = r.NormFloat64()
			g[i] = []string{"u", "v", "w"}[r.Intn(3)]
			actual[i] = r.Intn(2) == 0
			pred[i] = r.Intn(2) == 0
		}
		tab := dataset.NewBuilder().AddFloat("a", a).AddFloat("c", c).AddCategorical("g", g).MustBuild()
		o := outcome.ErrorRate(actual, pred)
		hs, err := discretize.TreeSet(tab, o, discretize.TreeOptions{MinSupport: 0.1 + 0.2*r.Float64()})
		if err != nil {
			return false
		}
		hs.Add(hierarchy.FlatCategorical(tab, "g"))
		var u *Universe
		if r.Intn(2) == 0 {
			u = GeneralizedUniverse(tab, hs, o)
		} else {
			u = BaseUniverse(tab, hs, o)
		}
		opt := Options{
			MinSupport:    0.02 + 0.2*r.Float64(),
			PolarityPrune: r.Intn(2) == 0,
			MaxLen:        r.Intn(4), // 0..3
		}
		minCount := int(math.Ceil(opt.MinSupport * float64(u.NumRows)))
		if minCount < 1 {
			minCount = 1
		}
		want := canonicalize(mineBrute(u, o, opt, minCount))
		for _, alg := range []Algorithm{Apriori, FPGrowth} {
			opt.Algorithm = alg
			opt.Workers = r.Intn(3) // 0..2
			res, err := Mine(u, o, opt)
			if err != nil {
				return false
			}
			got := canonicalize(res.Itemsets)
			if len(got) != len(want) {
				return false
			}
			for k, w := range want {
				gv, ok := got[k]
				if !ok || gv.Count != w.Count || !momentsClose(gv.M, w.M) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
