package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
)

// Table1Row is one row of the paper's Table I: FPR and FPR divergence of a
// manually defined compas subgroup.
type Table1Row struct {
	Subgroup   string
	FPR        float64
	Divergence float64
	Support    float64
}

// Table1 reproduces Table I: the impact of #prior discretization on FPR
// divergence for fixed, manually chosen compas subgroups.
func Table1(cfg Config) ([]Table1Row, error) {
	w, err := Load("compas", cfg)
	if err != nil {
		return nil, err
	}
	inf := math.Inf(1)
	subgroups := []struct {
		name  string
		items hierarchy.Itemset
	}{
		{"Entire dataset", hierarchy.Itemset{}},
		{"#prior>3", hierarchy.Itemset{hierarchy.ContinuousItem("prior", 3, inf)}},
		{"#prior>8", hierarchy.Itemset{hierarchy.ContinuousItem("prior", 8, inf)}},
		{"age<27", hierarchy.Itemset{hierarchy.ContinuousItem("age", math.Inf(-1), 26.999)}},
		{"age<27, #prior>3", hierarchy.Itemset{
			hierarchy.ContinuousItem("age", math.Inf(-1), 26.999),
			hierarchy.ContinuousItem("prior", 3, inf),
		}},
	}
	rows := make([]Table1Row, 0, len(subgroups))
	for _, sg := range subgroups {
		r := sg.items.Rows(w.Table)
		rows = append(rows, Table1Row{
			Subgroup:   sg.name,
			FPR:        w.Outcome.StatOf(r),
			Divergence: w.Outcome.DivergenceOf(r),
			Support:    float64(r.Count()) / float64(w.Table.NumRows()),
		})
	}
	return rows, nil
}

// RenderTable1 renders Table I.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %8s %8s\n", "Data subgroup", "FPR", "ΔFPR", "Support")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %8.3f %+8.3f %8.2f\n", r.Subgroup, r.FPR, r.Divergence, r.Support)
	}
	return b.String()
}

// Figure1 reproduces Figure 1: the annotated item hierarchy that the
// divergence-gain tree discretizer builds for the compas #prior attribute
// at st = 0.1.
func Figure1(cfg Config) (string, error) {
	w, err := Load("compas", cfg)
	if err != nil {
		return "", err
	}
	h, err := discretize.Tree(w.Table, "prior", w.Outcome, discretize.TreeOptions{
		Criterion:  discretize.DivergenceGain,
		MinSupport: 0.1,
	})
	if err != nil {
		return "", err
	}
	return core.DescribeHierarchy(w.Table, h, w.Outcome), nil
}

// Table2Row is one row of Table II: dataset characteristics.
type Table2Row struct {
	Dataset  string
	Rows     int
	Attrs    int
	NumAttrs int
	CatAttrs int
}

// Table2 reproduces Table II over all eight datasets. It always reports the
// paper-scale sizes (generator defaults), regardless of cfg.FullScale.
func Table2(cfg Config) ([]Table2Row, error) {
	names := []string{"adult", "bank", "compas", "folktables", "german", "intentions", "synthetic-peak", "wine"}
	paperSizes := map[string]int{
		"adult": 45_222, "bank": 45_211, "compas": 6_172, "folktables": 195_556,
		"german": 1_000, "intentions": 12_330, "synthetic-peak": 10_000, "wine": 9_796,
	}
	rows := make([]Table2Row, 0, len(names))
	for _, n := range names {
		// Schema only: generate a tiny instance to read the schema.
		w, err := Load(n, Config{Seed: cfg.Seed, ForestTrees: 1, SizeOverride: map[string]int{n: 200}})
		if err != nil {
			return nil, err
		}
		nNum, nCat := w.Table.CountKinds()
		rows = append(rows, Table2Row{
			Dataset:  n,
			Rows:     paperSizes[n],
			Attrs:    nNum + nCat,
			NumAttrs: nNum,
			CatAttrs: nCat,
		})
	}
	return rows, nil
}

// RenderTable2 renders Table II.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %5s %7s %7s\n", "dataset", "|D|", "|A|", "|A|num", "|A|cat")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %5d %7d %7d\n", r.Dataset, r.Rows, r.Attrs, r.NumAttrs, r.CatAttrs)
	}
	return b.String()
}

// Table3Row is one row of Table III / Table IV: the top divergent itemset
// found by one exploration setting at one support threshold.
type Table3Row struct {
	S          float64
	Approach   string
	Itemset    string
	Support    float64
	Divergence float64
	T          float64
}

// compasManualHierarchies reproduces the manual discretization used by
// prior work on compas: age <25 / 25–45 / >45, #prior 0 / 1–3 / >3, stay
// ≤1w / 1w–3M / >3M, plus the flat categorical attributes.
func compasManualHierarchies(w *Workload) (*hierarchy.Set, error) {
	set := hierarchy.NewSet()
	manual := map[string][]float64{
		"age":   {24.999, 45},
		"prior": {0, 3},
		"stay":  {7, 90},
	}
	for attr, cuts := range manual {
		h, err := discretize.ManualCuts(attr, cuts)
		if err != nil {
			return nil, err
		}
		set.Add(h)
	}
	for _, h := range w.catHier() {
		set.Add(h)
	}
	return set, nil
}

// Table3 reproduces Table III: the top FPR-divergent compas itemset under
// manual discretization (base), tree discretization with leaf items only
// (base), and tree discretization with hierarchical exploration, for
// s ∈ {0.05, 0.025, 0.01} and st = 0.1.
func Table3(cfg Config) ([]Table3Row, error) {
	w, err := Load("compas", cfg)
	if err != nil {
		return nil, err
	}
	manualSet, err := compasManualHierarchies(w)
	if err != nil {
		return nil, err
	}
	treeSet, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		return nil, err
	}
	return topByApproach(w, manualSet, treeSet, []float64{0.05, 0.025, 0.01})
}

// Table4 reproduces Table IV: the top income-divergent folktables itemset
// under tree discretization, base vs hierarchical exploration, with the
// OCCP and POBP taxonomies available to the hierarchical explorer.
func Table4(cfg Config) ([]Table3Row, error) {
	w, err := Load("folktables", cfg)
	if err != nil {
		return nil, err
	}
	treeSet, err := w.Hierarchies(0.1, discretize.DivergenceGain)
	if err != nil {
		return nil, err
	}
	return topByApproach(w, nil, treeSet, []float64{0.05, 0.025, 0.01})
}

// topByApproach runs the three (or two, when manualSet is nil) exploration
// settings at each support threshold and returns each setting's top
// subgroup. The top subgroup is the one with the largest positive
// divergence, matching the paper's tables.
func topByApproach(w *Workload, manualSet, treeSet *hierarchy.Set, supports []float64) ([]Table3Row, error) {
	var rows []Table3Row
	run := func(s float64, label string, hs *hierarchy.Set, mode core.Mode) error {
		rep, err := core.Explore(w.Table, core.Config{
			Outcome:     w.Outcome,
			Hierarchies: hs,
			MinSupport:  s,
			Mode:        mode,
			Algorithm:   fpm.FPGrowth,
		})
		if err != nil {
			return err
		}
		best := topPositive(rep)
		if best == nil {
			rows = append(rows, Table3Row{S: s, Approach: label, Itemset: "(none)"})
			return nil
		}
		rows = append(rows, Table3Row{
			S: s, Approach: label,
			Itemset: best.Itemset.String(), Support: best.Support,
			Divergence: best.Divergence, T: best.T,
		})
		return nil
	}
	for _, s := range supports {
		if manualSet != nil {
			if err := run(s, "manual", manualSet, core.Base); err != nil {
				return nil, err
			}
		}
		if err := run(s, "tree-base", treeSet, core.Base); err != nil {
			return nil, err
		}
		if err := run(s, "tree-generalized", treeSet, core.Hierarchical); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func topPositive(rep *core.Report) *core.Subgroup {
	var best *core.Subgroup
	for i := range rep.Subgroups {
		sg := &rep.Subgroups[i]
		if best == nil || sg.Divergence > best.Divergence {
			best = sg
		}
	}
	return best
}

// RenderTable3 renders Table III/IV rows.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %-18s %-64s %7s %12s %7s\n", "s", "approach", "itemset", "sup", "Δ", "t")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.3f %-18s %-64s %7.3f %+12.4g %7.1f\n",
			r.S, r.Approach, r.Itemset, r.Support, r.Divergence, r.T)
	}
	return b.String()
}
