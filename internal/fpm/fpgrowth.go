package fpm

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// fpNode is one node of an FP-tree. Beyond the usual support count, each
// node carries the outcome moments of the transactions (rows) flowing
// through it, which is what lets divergence fall out of the mining
// recursion with no extra dataset pass.
type fpNode struct {
	item     int
	count    int
	m        stats.Moments
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header-list chain of nodes with the same item
}

// fpTree is an FP-tree plus its header table.
type fpTree struct {
	root    *fpNode
	headers map[int]*fpNode
	tails   map[int]*fpNode
	// order lists the tree's items from most to least frequent; transactions
	// are inserted in this order.
	order []int
	rank  map[int]int
}

func newFPTree(order []int) *fpTree {
	rank := make(map[int]int, len(order))
	for r, it := range order {
		rank[it] = r
	}
	return &fpTree{
		root:    &fpNode{item: -1, children: map[int]*fpNode{}},
		headers: map[int]*fpNode{},
		tails:   map[int]*fpNode{},
		order:   order,
		rank:    rank,
	}
}

// insert adds a transaction (items already filtered to the tree's
// universe and sorted by rank) with the given weight and moments.
func (t *fpTree) insert(items []int, count int, m stats.Moments) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: map[int]*fpNode{}}
			node.children[it] = child
			if t.headers[it] == nil {
				t.headers[it] = child
			} else {
				t.tails[it].next = child
			}
			t.tails[it] = child
		}
		child.count += count
		child.m.AddN(m)
		node = child
	}
}

// weightedPath is one conditional-pattern-base entry: the ancestor items of
// an occurrence, with the occurrence's count and moments.
type weightedPath struct {
	items []int
	count int
	m     stats.Moments
}

// mineFPGrowth mines all frequent generalized itemsets via recursive
// conditional FP-trees, in the style of FP-tax: the conditional pattern
// base of an item excludes items of the same attribute (its hierarchy
// ancestors/descendants), which enforces the one-item-per-attribute rule of
// generalized itemsets.
func mineFPGrowth(u *Universe, o *outcome.Outcome, opt Options, minCount int, span *obs.Span, cancel *canceller, hBatch *obs.Histogram) *Result {
	res := &Result{}
	prog := opt.Progress

	// Global frequent items, ranked by support descending (ties by index).
	scan := span.Start(obs.SpanMineScan)
	prog.SetLevel(1)
	hBatch.Observe(float64(len(u.Items)))
	type freq struct{ item, count int }
	var fr []freq
	for i := range u.Items {
		res.Stats.Candidates++
		prog.AddCandidates(1)
		if c := u.Rows[i].Count(); c >= minCount {
			fr = append(fr, freq{i, c})
		} else {
			res.Stats.PrunedSupport++
			prog.AddPruned(1)
		}
	}
	sort.Slice(fr, func(a, b int) bool {
		if fr[a].count != fr[b].count {
			return fr[a].count > fr[b].count
		}
		return fr[a].item < fr[b].item
	})
	order := make([]int, len(fr))
	for i, f := range fr {
		order[i] = f.item
	}
	scan.End()

	build := span.Start(obs.SpanMineBuild)
	tree := newFPTree(order)

	// Build per-row transactions: the frequent items covering each row, in
	// rank order. Iterating items (not rows) keeps this cache-friendly.
	perRow := make([][]int, u.NumRows)
	for _, it := range order {
		if cancel.cancelled() {
			build.End()
			return res
		}
		u.Rows[it].ForEach(func(r int) {
			perRow[r] = append(perRow[r], it)
		})
	}
	for r, items := range perRow {
		if len(items) == 0 {
			continue
		}
		var m stats.Moments
		if o.Valid.Get(r) {
			m.Add(o.Values[r])
		}
		tree.insert(items, 1, m)
	}
	build.End()

	// branch mines the suffix {item}+suffix rooted at one header item of
	// tree t, appending to the local accumulator. Branches of distinct
	// top-level items are independent, which is what the parallel path
	// exploits.
	var local func(acc *fpLocal, t *fpTree, idx int, suffix []int)
	local = func(acc *fpLocal, t *fpTree, idx int, suffix []int) {
		// Each (conditional tree, header item) pair is one candidate; bail
		// out here and the whole recursion unwinds promptly on cancel.
		if cancel.cancelled() {
			return
		}
		it := t.order[idx]
		head := t.headers[it]
		if head == nil {
			return
		}
		total := 0
		var m stats.Moments
		for n := head; n != nil; n = n.next {
			total += n.count
			m.AddN(n.m)
		}
		if total < minCount {
			return
		}
		itemset := append([]int{it}, suffix...)
		sorted := append([]int(nil), itemset...)
		sort.Ints(sorted)
		acc.itemsets = append(acc.itemsets, MinedItemset{Items: sorted, Count: total, M: m})
		prog.AddFrequent(1)
		// FP-Growth has no global level sweep, so the live "level" is the
		// deepest itemset emitted so far across all branches.
		prog.RaiseLevel(len(itemset))
		if len(itemset) > acc.maxDepth {
			acc.maxDepth = len(itemset)
		}

		if opt.MaxLen > 0 && len(itemset) >= opt.MaxLen {
			return
		}

		// Conditional pattern base: ancestors of each occurrence,
		// excluding items of it's attribute (generalized-itemset rule)
		// and, under polarity pruning, items of opposite polarity.
		var base []weightedPath
		condCount := map[int]int{}
		for n := head; n != nil; n = n.next {
			var path []int
			for p := n.parent; p.item >= 0; p = p.parent {
				if u.AttrID[p.item] == u.AttrID[it] {
					continue
				}
				if opt.PolarityPrune && u.Polarity[p.item] != u.Polarity[it] {
					acc.prunedPolarity++
					prog.AddPruned(1)
					continue
				}
				path = append(path, p.item)
			}
			if len(path) == 0 {
				continue
			}
			base = append(base, weightedPath{items: path, count: n.count, m: n.m})
			for _, pi := range path {
				condCount[pi] += n.count
			}
		}
		if len(base) == 0 {
			return
		}
		// Conditional universe: items frequent within the base, keeping
		// the parent tree's rank order.
		var condOrder []int
		for _, oi := range t.order {
			acc.candidates++
			prog.AddCandidates(1)
			if condCount[oi] >= minCount {
				condOrder = append(condOrder, oi)
			} else {
				acc.prunedSupport++
				prog.AddPruned(1)
			}
		}
		if len(condOrder) == 0 {
			return
		}
		hBatch.Observe(float64(len(condOrder)))
		cond := newFPTree(condOrder)
		for _, wp := range base {
			kept := wp.items[:0]
			for _, pi := range wp.items {
				if condCount[pi] >= minCount {
					kept = append(kept, pi)
				}
			}
			if len(kept) == 0 {
				continue
			}
			sort.Slice(kept, func(a, b int) bool { return cond.rank[kept[a]] < cond.rank[kept[b]] })
			cond.insert(kept, wp.count, wp.m)
		}
		for i := len(cond.order) - 1; i >= 0; i-- {
			local(acc, cond, i, itemset)
		}
	}

	// Top-level branches, least-frequent first, optionally in parallel.
	// Each branch accumulates locally; concatenating in branch order makes
	// the output identical to the serial traversal.
	grow := span.Start(obs.SpanMineGrow)
	nBranch := len(tree.order)
	locals := make([]fpLocal, nBranch)
	parallelFor(nBranch, opt.Workers, opt.Tracer, func(j int) {
		idx := nBranch - 1 - j
		local(&locals[j], tree, idx, nil)
	})
	maxDepth := 0
	for j := range locals {
		res.Itemsets = append(res.Itemsets, locals[j].itemsets...)
		res.Stats.Candidates += locals[j].candidates
		res.Stats.PrunedSupport += locals[j].prunedSupport
		res.Stats.PrunedPolarity += locals[j].prunedPolarity
		if locals[j].maxDepth > maxDepth {
			maxDepth = locals[j].maxDepth
		}
	}
	grow.End()
	opt.Tracer.MaxGauge(obs.GaugeMaxDepth, float64(maxDepth))
	return res
}

// fpLocal accumulates one FP-Growth branch's results.
type fpLocal struct {
	itemsets       []MinedItemset
	candidates     int
	prunedSupport  int
	prunedPolarity int
	maxDepth       int
}
