// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file, echoing the input through so it can sit at
// the end of a pipe without hiding the live benchmark log:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -out BENCH_PR2.json
//
// Every benchmark line becomes one record carrying the package (tracked
// from the `pkg:` header lines), the benchmark name, the iteration count
// and every reported metric — the standard ns/op, B/op and allocs/op as
// well as custom b.ReportMetric units such as candidates/op. The file
// layout is the shared internal/benchfmt schema, the same one
// cmd/hdivloadgen writes and cmd/benchdiff reads. The command exits
// nonzero when the stream contains a FAIL line or no benchmark lines at
// all, so a failing `go test` still fails the make target even through
// the pipe.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "JSON output file (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	if err := run(os.Stdin, os.Stdout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run copies benchmark output from r to echo while parsing it, then
// writes the JSON summary to outPath.
func run(r io.Reader, echo io.Writer, outPath string) error {
	var res benchfmt.Output
	pkg := ""
	failed := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			res.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			res.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(pkg, line); ok {
				res.Benchmarks = append(res.Benchmarks, b)
			}
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			failed = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("benchmark stream contains failures")
	}
	if len(res.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	return benchfmt.WriteFile(outPath, res)
}

// parseLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...` line.
func parseLine(pkg, line string) (benchfmt.Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchfmt.Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchfmt.Benchmark{}, false
	}
	b := benchfmt.Benchmark{
		Package:    pkg,
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchfmt.Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
