package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// refScan is the independent reference parser the fuzz target checks
// recovery against: walk the byte stream record by record, stop at the
// first torn or checksum-failing record, return the valid prefix.
func refScan(data []byte) (payloads [][]byte, epochs []uint64) {
	off := 0
	for {
		if off+headerSize > len(data) {
			return
		}
		hdr := data[off : off+headerSize]
		n := int(binary.LittleEndian.Uint32(hdr[0:4]))
		epoch := binary.LittleEndian.Uint64(hdr[4:12])
		want := binary.LittleEndian.Uint32(hdr[12:16])
		if n == 0 || n > maxRecordBytes || epoch == 0 {
			return
		}
		if off+headerSize+n > len(data) {
			return
		}
		payload := data[off+headerSize : off+headerSize+n]
		crc := crc32.Update(crc32.Checksum(hdr[0:12], castagnoli), castagnoli, payload)
		if crc != want {
			return
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		epochs = append(epochs, epoch)
		off += headerSize + n
	}
}

// validSegment builds a well-formed segment through the real API, for
// the seed corpus.
func validSegment(t *testing.F, payloads ...string) []byte {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		res, err := l.Append(uint64(i+2), []byte(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(res.Off); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "000000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes to the recovery scan as a segment
// file and pins the two safety properties: recovery never panics, and
// replay never delivers a record the checksum does not cover — the
// delivered records are exactly the reference parser's valid prefix.
// The log must also stay appendable after recovering arbitrary garbage.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(validSegment(f, `{"rows":[[1]]}`))
	f.Add(validSegment(f, `{"rows":[[1]]}`, `{"rows":[[2,3]]}`, `{"rows":[[4]]}`))
	corrupt := validSegment(f, `{"rows":[[1]]}`, `{"rows":[[2]]}`)
	corrupt[len(corrupt)-3] ^= 0x40
	f.Add(corrupt)
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add([]byte("not a wal segment at all, just text padding to 40+"))

	f.Fuzz(func(t *testing.T, data []byte) {
		wantPayloads, wantEpochs := refScan(data)

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "000000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir, Sync: SyncNone})
		if err != nil {
			// Open refuses only on I/O errors, never on content; any error
			// here is a bug surfaced by the fuzzer.
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		defer l.Close()

		var gotPayloads [][]byte
		var gotEpochs []uint64
		if err := l.Replay(func(rec Record) error {
			gotPayloads = append(gotPayloads, append([]byte(nil), rec.Payload...))
			gotEpochs = append(gotEpochs, rec.Epoch)
			return nil
		}); err != nil {
			t.Fatalf("Replay on recovered segment: %v", err)
		}
		if len(gotPayloads) != len(wantPayloads) {
			t.Fatalf("replayed %d records, reference parser found %d", len(gotPayloads), len(wantPayloads))
		}
		for i := range gotPayloads {
			if !bytes.Equal(gotPayloads[i], wantPayloads[i]) || gotEpochs[i] != wantEpochs[i] {
				t.Fatalf("record %d: got epoch %d payload %q, want epoch %d payload %q",
					i, gotEpochs[i], gotPayloads[i], wantEpochs[i], wantPayloads[i])
			}
		}

		// Whatever the scan salvaged, the log must accept new records at
		// the parked offset and read them back.
		nextEpoch := uint64(2)
		if n := len(wantEpochs); n > 0 {
			nextEpoch = wantEpochs[n-1] + 1
		}
		res, err := l.Append(nextEpoch, []byte("post-recovery"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Commit(res.Off); err != nil {
			t.Fatalf("Commit after recovery: %v", err)
		}
	})
}
