package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFlightRecorderRingWrap drives more records than slots through the
// ring: the snapshot returns the newest records first, lifetime sequence
// numbers survive the wrap, and recorded() counts every offer.
func TestFlightRecorderRingWrap(t *testing.T) {
	f := newFlightRecorder(4, 2, 0)
	for i := 0; i < 10; i++ {
		f.record(FlightRecord{ID: fmt.Sprintf("req-%d", i), Status: "done"})
	}
	if got := f.recorded(); got != 10 {
		t.Errorf("recorded() = %d, want 10", got)
	}
	recs := f.snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot holds %d records, want the 4 ring slots", len(recs))
	}
	for i, rec := range recs {
		wantSeq := uint64(9 - i) // newest first
		if rec.Seq != wantSeq || rec.ID != fmt.Sprintf("req-%d", wantSeq) {
			t.Errorf("snapshot[%d] = seq %d id %q, want seq %d", i, rec.Seq, rec.ID, wantSeq)
		}
	}
}

// TestFlightRecorderConcurrent hammers the seqlock from many writers
// while a reader snapshots: every record that comes back stable must be
// internally consistent (its ID matches its sequence number), i.e. no
// torn reads. Run under -race in CI.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := newFlightRecorder(8, 2, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.record(FlightRecord{Status: "done"})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		for _, rec := range f.snapshot() {
			if rec.Status != "done" {
				t.Fatalf("torn record: %+v", rec)
			}
		}
	}
	close(stop)
	wg.Wait()
	// A consistency pass with quiesced writers: IDs must match Seqs.
	f2 := newFlightRecorder(8, 2, 0)
	for i := 0; i < 20; i++ {
		f2.record(FlightRecord{ID: fmt.Sprintf("req-%d", i)})
	}
	for _, rec := range f2.snapshot() {
		if rec.ID != fmt.Sprintf("req-%d", rec.Seq) {
			t.Errorf("record %d carries id %q", rec.Seq, rec.ID)
		}
	}
}

// TestFlightRecorderNilSafe exercises every method on a nil recorder —
// the disabled configuration must be a no-op, not a panic.
func TestFlightRecorderNilSafe(t *testing.T) {
	var f *flightRecorder
	f.record(FlightRecord{})
	f.noteSlow(FlightRecord{LatencyNS: 1 << 40}, nil)
	if f.recorded() != 0 || f.snapshot() != nil || f.slowList() != nil || f.slowTrace("x") != nil {
		t.Error("nil recorder returned non-zero state")
	}
}

// TestNoteSlowCompetition checks the N-slowest capture: requests under
// the threshold are ignored, the capture keeps only the slowest keep
// entries sorted slowest-first, and the retained trace is recoverable by
// request ID for the explain fallback.
func TestNoteSlowCompetition(t *testing.T) {
	f := newFlightRecorder(4, 2, 10*time.Millisecond)
	offer := func(id string, lat time.Duration) {
		f.noteSlow(FlightRecord{ID: id, LatencyNS: lat.Nanoseconds()}, &obs.Trace{ID: id})
	}
	offer("fast", 5*time.Millisecond) // below threshold: dropped
	offer("slow-20", 20*time.Millisecond)
	offer("slow-30", 30*time.Millisecond)
	offer("slow-15", 15*time.Millisecond) // competes, loses to 20 and 30

	slow := f.slowList()
	if len(slow) != 2 || slow[0].Record.ID != "slow-30" || slow[1].Record.ID != "slow-20" {
		ids := make([]string, len(slow))
		for i, c := range slow {
			ids[i] = c.Record.ID
		}
		t.Fatalf("slow captures = %v, want [slow-30 slow-20]", ids)
	}
	if slow[0].Explain == nil {
		t.Error("slow capture lost its explain profile")
	}
	if tr := f.slowTrace("slow-20"); tr == nil || tr.ID != "slow-20" {
		t.Errorf("slowTrace(slow-20) = %+v", tr)
	}
	if f.slowTrace("slow-15") != nil {
		t.Error("evicted capture still resolvable")
	}
	if f.slowTrace("fast") != nil {
		t.Error("sub-threshold request captured")
	}
}

// TestExploreExplainField checks the explain opt-in on POST /v1/explore:
// the response report carries the profile (with stages, mining counters
// and total time) while the full trace stays server-side.
func TestExploreExplainField(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	rec := postExplore(t, s, ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", Explain: true,
	})
	if rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}
	var rep struct {
		Explain *obs.Explain    `json:"explain"`
		Trace   json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Error("explain response leaked the raw trace")
	}
	if rep.Explain == nil {
		t.Fatal("explain=true produced no explain profile")
	}
	if len(rep.Explain.Stages) == 0 || rep.Explain.TotalNS <= 0 {
		t.Errorf("explain profile empty: %+v", rep.Explain)
	}
	if rep.Explain.Mining.Candidates <= 0 {
		t.Errorf("explain mining counters empty: %+v", rep.Explain.Mining)
	}

	// Without the opt-in the field is absent entirely.
	plain := postExplore(t, s, ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
	})
	if bytes.Contains(plain.Body.Bytes(), []byte(`"explain"`)) {
		t.Error("explain profile present without explain:true")
	}
}

// TestExplainEndpoint checks GET /v1/explain/{id}: JSON by default, the
// aligned text table on ?format=text, 400 on unknown formats and 404 on
// unknown IDs.
func TestExplainEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	const id = "explain-req-1"
	body, _ := json.Marshal(ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", id)
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	jr := get("/v1/explain/" + id)
	if jr.Code != 200 {
		t.Fatalf("explain: %d %s", jr.Code, jr.Body.String())
	}
	var ex obs.Explain
	if err := json.Unmarshal(jr.Body.Bytes(), &ex); err != nil {
		t.Fatalf("explain body is not a profile: %v", err)
	}
	if ex.RequestID != id || len(ex.Stages) == 0 || ex.TotalNS <= 0 {
		t.Errorf("explain profile = %+v", ex)
	}
	var selfSum int64
	for _, st := range ex.Stages {
		selfSum += st.SelfNS
	}
	if selfSum != ex.TotalNS {
		t.Errorf("served profile violates the self-time invariant: %d != %d", selfSum, ex.TotalNS)
	}

	if text := get("/v1/explain/" + id + "?format=text"); text.Code != 200 ||
		!strings.Contains(text.Body.String(), "explain "+id) {
		t.Errorf("text explain: %d %s", text.Code, text.Body.String())
	}
	if bad := get("/v1/explain/" + id + "?format=nope"); bad.Code != 400 {
		t.Errorf("bad format: %d", bad.Code)
	}
	if missing := get("/v1/explain/absent"); missing.Code != 404 {
		t.Errorf("unknown explain id: %d", missing.Code)
	}
}

// TestDebugRequestsEndpoint checks GET /v1/debug/requests end to end:
// every request — including rejected ones — lands in the ring with its
// outcome, and with an aggressive slow threshold the slow captures carry
// explain profiles and keep /v1/explain answering after the request
// rotates out of the trace ring.
func TestDebugRequestsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{
		Datasets:      []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		TraceRing:     1,               // rotate traces out immediately
		SlowThreshold: time.Nanosecond, // every request is "slow"
		SlowRequests:  4,
	})
	const first = "debug-req-1"
	body, _ := json.Marshal(ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", first)
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}
	// A second success rotates the first out of the size-1 trace ring; a
	// malformed request exercises the rejected path.
	if rec := postExplore(t, s, ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"}); rec.Code != 200 {
		t.Fatalf("explore 2: %d %s", rec.Code, rec.Body.String())
	}
	bad := httptest.NewRecorder()
	s.ServeHTTP(bad, httptest.NewRequest("POST", "/v1/explore", strings.NewReader("{not json")))
	if bad.Code != 400 {
		t.Fatalf("malformed explore: %d", bad.Code)
	}

	dr := httptest.NewRecorder()
	s.ServeHTTP(dr, httptest.NewRequest("GET", "/v1/debug/requests", nil))
	if dr.Code != 200 {
		t.Fatalf("debug/requests: %d %s", dr.Code, dr.Body.String())
	}
	var reply debugRequestsReply
	if err := json.Unmarshal(dr.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.RingSize != 1 || reply.Recorded < 3 {
		t.Errorf("ring_size=%d recorded=%d, want 1 and >=3", reply.RingSize, reply.Recorded)
	}
	statuses := map[string]int{}
	for _, r := range append(reply.Recent, flightRecords(reply.Slow)...) {
		statuses[r.Status]++
		if r.LatencyNS <= 0 || r.UnixNano <= 0 {
			t.Errorf("record missing timing: %+v", r)
		}
	}
	if statuses["rejected"] == 0 {
		t.Errorf("rejected request not in the flight record: %v", statuses)
	}
	if statuses["done"] == 0 {
		t.Errorf("completed request not in the flight record: %v", statuses)
	}
	if len(reply.Slow) == 0 {
		t.Fatal("no slow captures despite 1ns threshold")
	}
	for _, c := range reply.Slow {
		if c.Explain == nil || len(c.Explain.Stages) == 0 {
			t.Errorf("slow capture %q has no explain profile", c.Record.ID)
		}
	}

	// The first request's trace left the size-1 ring, but the slow capture
	// still answers for it.
	er := httptest.NewRecorder()
	s.ServeHTTP(er, httptest.NewRequest("GET", "/v1/explain/"+first, nil))
	if er.Code != 200 {
		t.Errorf("explain after rotation: %d %s (slow-capture fallback broken)", er.Code, er.Body.String())
	}
	tr := httptest.NewRecorder()
	s.ServeHTTP(tr, httptest.NewRequest("GET", "/v1/trace/"+first+"?format=json", nil))
	if tr.Code != 200 {
		t.Errorf("trace after rotation: %d (slow-capture fallback broken)", tr.Code)
	}
}

// flightRecords projects the records out of slow captures for shared
// assertions.
func flightRecords(slow []*SlowCapture) []FlightRecord {
	out := make([]FlightRecord, len(slow))
	for i, c := range slow {
		out[i] = c.Record
	}
	return out
}

// TestMetricsOpenMetrics checks content negotiation on /metrics: an
// OpenMetrics Accept header switches the exposition to the suffixed
// counter syntax terminated by # EOF, with the runtime-metrics families
// present in both renderings and exemplars only in the OpenMetrics one.
func TestMetricsOpenMetrics(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	const id = "exemplar-req-1"
	body, _ := json.Marshal(ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/explore", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", id)
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("explore: %d %s", rec.Code, rec.Body.String())
	}

	scrape := func(accept string) (*httptest.ResponseRecorder, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		s.ServeHTTP(rec, req)
		return rec, rec.Body.String()
	}

	crec, classic := scrape("")
	if got := crec.Header().Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("classic content type = %q", got)
	}
	if strings.Contains(classic, "# EOF") || strings.Contains(classic, "request_id=") {
		t.Error("classic exposition carries OpenMetrics syntax")
	}

	orec, om := scrape("application/openmetrics-text; version=1.0.0")
	if got := orec.Header().Get("Content-Type"); !strings.Contains(got, "application/openmetrics-text") {
		t.Errorf("openmetrics content type = %q", got)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OpenMetrics exposition not terminated by # EOF")
	}
	if !strings.Contains(om, "fpm_candidates_total ") {
		t.Error("OpenMetrics counters missing _total suffix")
	}
	if !strings.Contains(om, `request_id="`+id+`"`) {
		t.Error("latency histogram lost the request-ID exemplar")
	}
	for _, family := range []string{"go_mem_heap_objects_bytes", "go_gc_pauses_seconds", "go_goroutines"} {
		for _, body := range []string{classic, om} {
			if !strings.Contains(body, "# TYPE "+family+" ") {
				t.Errorf("runtime family %s missing from a /metrics rendering", family)
			}
		}
	}
}
