package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheus checks the exposition format: sanitized names, TYPE
// lines, deterministic order.
func TestWritePrometheus(t *testing.T) {
	tr := New()
	tr.Counter("fpm.candidates").Add(42)
	tr.Counter("server.requests.explore").Add(3)
	tr.SetGauge("server.in_flight", 2)
	var b strings.Builder
	if err := tr.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP fpm_candidates Itemset candidates whose support was evaluated.\n" +
		"# TYPE fpm_candidates counter\n" +
		"fpm_candidates 42\n" +
		"# TYPE server_requests_explore counter\n" +
		"server_requests_explore 3\n" +
		"# HELP server_in_flight Explorations currently running.\n" +
		"# TYPE server_in_flight gauge\n" +
		"server_in_flight 2\n"
	if b.String() != want {
		t.Errorf("WritePrometheus:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWritePrometheusConformance pins the exposition-format contract:
// dotted/dashed names sanitize to [a-zA-Z0-9_:], output is sorted by
// sanitized name within each family, HELP text is escaped, and names
// that collide after sanitization produce exactly one HELP/TYPE line
// (counters merge by sum; gauges drop all but the first).
func TestWritePrometheusConformance(t *testing.T) {
	MetricHelp["weird_help"] = "line one\nline two with a \\ backslash"
	defer delete(MetricHelp, "weird_help")

	tr := New()
	tr.Counter("a.b-c").Add(1)                        // sanitizes to a_b_c
	tr.Counter("a.b.c").Add(2)                        // collides with a.b-c -> merged sum 3
	tr.Counter("z.last").Add(9)                       // sorts after a_b_c
	tr.SetGauge("a.b.c", 5)                           // collides with the counter family -> dropped
	tr.SetGauge("weird.help", 7)                      // has multi-line HELP registered
	tr.Histogram("z.last", []float64{1}).Observe(0.5) // collides with counter -> dropped

	var b strings.Builder
	if err := tr.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	want := "# TYPE a_b_c counter\n" +
		"a_b_c 3\n" +
		"# TYPE z_last counter\n" +
		"z_last 9\n" +
		"# HELP weird_help line one\\nline two with a \\\\ backslash\n" +
		"# TYPE weird_help gauge\n" +
		"weird_help 7\n"
	if out != want {
		t.Errorf("conformance output:\n%s\nwant:\n%s", out, want)
	}

	// No duplicate HELP/TYPE lines for any name, ever.
	seen := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") || strings.HasPrefix(line, "# HELP ") {
			key := strings.Join(strings.Fields(line)[:3], " ")
			seen[key]++
			if seen[key] > 1 {
				t.Errorf("duplicate metadata line %q", line)
			}
		}
	}

	// Two snapshots render byte-identically (stable order).
	var b2 strings.Builder
	if err := tr.Snapshot().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus output is not stable across snapshots")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"fpm.worker_tasks.w0": "fpm_worker_tasks_w0",
		"0bad":                "_bad",
		"a:b-c":               "a:b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	child := sp.Start("y")
	if child != nil {
		t.Fatal("nil span returned non-nil child")
	}
	sp.End() // must not panic
	child.End()
	c := tr.Counter("n")
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter holds a value")
	}
	tr.SetGauge("g", 1)
	tr.MaxGauge("g", 2)
	if snap := tr.Snapshot(); snap != nil {
		t.Error("nil tracer snapshot should be nil")
	}
	var snap *Trace
	if snap.Span("x") != nil || snap.Counter("n") != 0 {
		t.Error("nil trace accessors should be empty")
	}
}

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := New()
	root := tr.Start("pipeline")
	a := root.Start("parse")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Start("mine")
	bb := b.Start("mine.grow")
	bb.End()
	b.End()
	root.End()
	open := tr.Start("dangling") // left unfinished on purpose
	_ = open

	snap := tr.Snapshot()
	if len(snap.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(snap.Spans))
	}
	if snap.Spans[0].Parent != -1 || snap.Spans[1].Parent != 0 || snap.Spans[3].Parent != 2 {
		t.Errorf("bad parent links: %+v", snap.Spans)
	}
	if got := snap.Span("parse"); got == nil || got.Duration() < time.Millisecond {
		t.Errorf("parse span missing or too short: %+v", got)
	}
	if !snap.Span("dangling").Unfinished {
		t.Error("open span not marked unfinished")
	}
	if snap.Span("pipeline").Unfinished {
		t.Error("ended span marked unfinished")
	}

	tree := snap.Tree()
	for _, want := range []string{"pipeline", "  parse", "  mine", "    mine.grow", "(unfinished)"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	tr := New()
	sp := tr.Start("x")
	sp.End()
	d := tr.Snapshot().Span("x").DurNS
	time.Sleep(2 * time.Millisecond)
	sp.End() // second End must not extend the duration
	if got := tr.Snapshot().Span("x").DurNS; got != d {
		t.Errorf("double End changed duration: %d != %d", got, d)
	}
}

func TestCountersAndGauges(t *testing.T) {
	tr := New()
	c := tr.Counter("hits")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if tr.Counter("hits") != c {
		t.Error("Counter must return the same instance per name")
	}
	tr.MaxGauge("depth", 3)
	tr.MaxGauge("depth", 7)
	tr.MaxGauge("depth", 5)
	tr.SetGauge("workers", 4)
	snap := tr.Snapshot()
	if snap.Gauges["depth"] != 7 {
		t.Errorf("MaxGauge = %v, want 7", snap.Gauges["depth"])
	}
	if snap.Counter("hits") != 8000 || snap.Counter("absent") != 0 {
		t.Errorf("snapshot counters wrong: %v", snap.Counters)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Start("worker")
			tr.Counter("spawned").Add(1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 17 {
		t.Fatalf("got %d spans, want 17", len(snap.Spans))
	}
	if snap.Counter("spawned") != 16 {
		t.Errorf("spawned = %d", snap.Counter("spawned"))
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New()
	sp := tr.Start("stage")
	tr.Counter("fpm.candidates").Add(42)
	tr.SetGauge("fpm.workers", 4)
	sp.End()

	var buf bytes.Buffer
	if err := tr.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if back.Span("stage") == nil || back.Counter("fpm.candidates") != 42 || back.Gauges["fpm.workers"] != 4 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	if back.Span("stage").Bytes < 0 || back.Span("stage").Allocs < 0 {
		t.Errorf("negative alloc deltas: %+v", back.Span("stage"))
	}
}

// BenchmarkDisabledCounter measures the nil-tracer fast path that every
// instrumented hot loop pays.
func BenchmarkDisabledCounter(b *testing.B) {
	var tr *Tracer
	c := tr.Counter("x")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
