package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
)

// fixture builds a dataset with a planted divergent subgroup: error rate is
// much higher where x>7 AND group=g1.
func fixture(t *testing.T, n int, seed int64) (*dataset.Table, *outcome.Outcome, *hierarchy.Set) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	g := make([]string, n)
	actual := make([]bool, n)
	pred := make([]bool, n)
	groups := []string{"g0", "g1", "g2"}
	for i := 0; i < n; i++ {
		x[i] = r.Float64() * 10
		g[i] = groups[r.Intn(3)]
		actual[i] = r.Intn(2) == 0
		p := 0.05
		if x[i] > 7 && g[i] == "g1" {
			p = 0.8
		}
		pred[i] = actual[i]
		if r.Float64() < p {
			pred[i] = !pred[i]
		}
	}
	tab := dataset.NewBuilder().AddFloat("x", x).AddCategorical("g", g).MustBuild()
	o := outcome.ErrorRate(actual, pred)
	hs, err := discretize.TreeSet(tab, o, discretize.TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	hs.Add(hierarchy.FlatCategorical(tab, "g"))
	return tab, o, hs
}

func TestExploreFindsPlantedSubgroup(t *testing.T) {
	tab, o, hs := fixture(t, 3000, 1)
	rep, err := Explore(tab, Config{
		Outcome: o, Hierarchies: hs, MinSupport: 0.05, Mode: Hierarchical,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Top()
	if top == nil {
		t.Fatal("no subgroups")
	}
	// The top subgroup must involve both x and g, with x's interval around
	// (7, ...] and the g1 group, and a strongly positive divergence.
	s := top.Itemset.String()
	if !strings.Contains(s, "x>") || !strings.Contains(s, "g=g1") {
		t.Errorf("top subgroup %q does not isolate the planted anomaly", s)
	}
	if top.Divergence < 0.3 {
		t.Errorf("top divergence %v too small", top.Divergence)
	}
	if top.T < 5 {
		t.Errorf("top t-value %v too small", top.T)
	}
}

func TestHierarchicalBeatsBase(t *testing.T) {
	tab, o, hs := fixture(t, 3000, 2)
	base, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05, Mode: Base})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05, Mode: Hierarchical})
	if err != nil {
		t.Fatal(err)
	}
	if hier.MaxAbsDivergence()+1e-12 < base.MaxAbsDivergence() {
		t.Errorf("hierarchical max |Δ| %v < base %v (superset guarantee violated)",
			hier.MaxAbsDivergence(), base.MaxAbsDivergence())
	}
	if hier.NumItems <= base.NumItems {
		t.Errorf("hierarchical universe (%d) should exceed base (%d)", hier.NumItems, base.NumItems)
	}
}

func TestSubgroupsSortedByAbsDivergence(t *testing.T) {
	tab, o, hs := fixture(t, 1500, 3)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Subgroups); i++ {
		if math.Abs(rep.Subgroups[i].Divergence) > math.Abs(rep.Subgroups[i-1].Divergence)+1e-12 {
			t.Fatal("subgroups not sorted by |divergence|")
		}
	}
}

func TestSupportThresholdHonored(t *testing.T) {
	tab, o, hs := fixture(t, 1000, 4)
	s := 0.08
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: s})
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range rep.Subgroups {
		if sg.Support < s-1e-12 {
			t.Fatalf("subgroup %v below support threshold", sg.String())
		}
		// Support and count must be consistent.
		if math.Abs(sg.Support-float64(sg.Count)/float64(rep.NumRows)) > 1e-12 {
			t.Fatal("support/count inconsistent")
		}
	}
}

func TestStatisticDivergenceConsistency(t *testing.T) {
	tab, o, hs := fixture(t, 1200, 5)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range rep.Subgroups {
		if math.Abs(sg.Statistic-rep.Global-sg.Divergence) > 1e-12 {
			t.Fatalf("f(S) - f(D) != Δ for %v", sg.String())
		}
		// Cross-check against a direct recomputation from the itemset.
		rows := sg.Itemset.Rows(tab)
		if rows.Count() != sg.Count {
			t.Fatalf("count mismatch for %v", sg.String())
		}
		if math.Abs(o.DivergenceOf(rows)-sg.Divergence) > 1e-9 {
			t.Fatalf("divergence mismatch for %v", sg.String())
		}
		if math.Abs(o.TValueOf(rows)-sg.T) > 1e-9 {
			t.Fatalf("t mismatch for %v", sg.String())
		}
	}
}

func TestExploreConfigErrors(t *testing.T) {
	tab, o, hs := fixture(t, 200, 6)
	if _, err := Explore(tab, Config{Hierarchies: hs, MinSupport: 0.1}); err == nil {
		t.Error("nil outcome should fail")
	}
	if _, err := Explore(tab, Config{Outcome: o, MinSupport: 0.1}); err == nil {
		t.Error("nil hierarchies should fail")
	}
	if _, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.1, Mode: Mode(9)}); err == nil {
		t.Error("unknown mode should fail")
	}
	if _, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0}); err == nil {
		t.Error("zero support should fail")
	}
	bad := hierarchy.NewSet()
	h := hierarchy.NewRooted("x", hierarchy.ContinuousItem("x", math.Inf(-1), math.Inf(1)))
	h.AddChild(0, hierarchy.ContinuousItem("x", math.Inf(-1), 1))
	h.AddChild(0, hierarchy.ContinuousItem("x", 2, math.Inf(1))) // gap
	bad.Add(h)
	if _, err := Explore(tab, Config{Outcome: o, Hierarchies: bad, MinSupport: 0.1}); err == nil {
		t.Error("invalid hierarchy should fail")
	}
}

func TestReportHelpers(t *testing.T) {
	tab, o, hs := fixture(t, 1500, 7)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.TopK(3); len(got) != 3 {
		t.Errorf("TopK(3) = %d", len(got))
	}
	if got := rep.TopK(10_000); len(got) != len(rep.Subgroups) {
		t.Error("TopK should clamp")
	}
	if rep.MaxDivergence() <= 0 {
		t.Error("planted anomaly should give positive max divergence")
	}
	if rep.MaxAbsDivergence() < rep.MaxDivergence() {
		t.Error("MaxAbs < MaxPositive")
	}
	for _, sg := range rep.FilterMinT(5) {
		if math.Abs(sg.T) < 5 {
			t.Error("FilterMinT returned low-t subgroup")
		}
	}
	for _, sg := range rep.FilterLength(2) {
		if len(sg.Itemset) != 2 {
			t.Error("FilterLength wrong")
		}
	}
	top := rep.Top()
	if found := rep.Find(top.Itemset.String()); found == nil || found.Divergence != top.Divergence {
		t.Error("Find failed to locate top subgroup")
	}
	if rep.Find("no such pattern") != nil {
		t.Error("Find of absent pattern should be nil")
	}
	tbl := rep.Table(5)
	if !strings.Contains(tbl, "itemset") || len(strings.Split(strings.TrimSpace(tbl), "\n")) != 6 {
		t.Errorf("Table(5) malformed:\n%s", tbl)
	}
}

func TestEmptyReportHelpers(t *testing.T) {
	rep := &Report{}
	if rep.Top() != nil || rep.MaxAbsDivergence() != 0 || rep.MaxDivergence() != 0 {
		t.Error("empty report helpers should be zero-valued")
	}
}

func TestAlgorithmsAgreeThroughExplore(t *testing.T) {
	tab, o, hs := fixture(t, 1000, 8)
	var reps [2]*Report
	for i, alg := range []fpm.Algorithm{fpm.Apriori, fpm.FPGrowth} {
		rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	if len(reps[0].Subgroups) != len(reps[1].Subgroups) {
		t.Fatalf("different subgroup counts: %d vs %d", len(reps[0].Subgroups), len(reps[1].Subgroups))
	}
	if math.Abs(reps[0].MaxAbsDivergence()-reps[1].MaxAbsDivergence()) > 1e-12 {
		t.Error("algorithms disagree on max divergence")
	}
}

func TestPolarityPruningPreservesQualityHere(t *testing.T) {
	tab, o, hs := fixture(t, 2000, 9)
	full, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05, PolarityPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Mining.Candidates > full.Mining.Candidates {
		t.Error("pruning should not increase candidate count")
	}
	// On this planted-anomaly dataset the top subgroup combines items that
	// individually diverge positively, so pruning keeps it.
	if math.Abs(pruned.MaxAbsDivergence()-full.MaxAbsDivergence()) > 1e-9 {
		t.Errorf("pruned max |Δ| %v differs from complete %v",
			pruned.MaxAbsDivergence(), full.MaxAbsDivergence())
	}
}

func TestDescribeHierarchy(t *testing.T) {
	tab, o, hs := fixture(t, 1000, 10)
	desc := DescribeHierarchy(tab, hs.ByAttr["x"], o)
	if !strings.Contains(desc, "root sup=1.00") {
		t.Errorf("missing root line:\n%s", desc)
	}
	if !strings.Contains(desc, "Δ=") || !strings.Contains(desc, "x≤") {
		t.Errorf("missing node annotations:\n%s", desc)
	}
}

func TestModeString(t *testing.T) {
	if Hierarchical.String() != "hierarchical" || Base.String() != "base" {
		t.Error("Mode.String wrong")
	}
	if Mode(5).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestSubgroupString(t *testing.T) {
	tab, o, hs := fixture(t, 800, 11)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Top().String()
	if !strings.Contains(s, "sup=") || !strings.Contains(s, "Δ=") {
		t.Errorf("Subgroup.String = %q", s)
	}
}

// outcomeOfLen builds a tiny outcome of the given length for error-path
// tests.
func outcomeOfLen(t *testing.T, n int) *outcome.Outcome {
	t.Helper()
	vals := make([]float64, n)
	vals[0] = 1
	return outcome.Numeric("tiny", vals)
}
