// Package benchfmt is the shared schema of the repo's benchmark
// artifacts (BENCH_*.json): cmd/benchjson writes it from `go test -bench`
// output, cmd/hdivloadgen writes it from live load-generator runs, and
// cmd/benchdiff reads two of them to flag regressions. Keeping the types
// in one place means a latency quantile measured under sustained load
// diffs across PRs with exactly the same tooling as a microbenchmark.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Benchmark is one measured result: a microbenchmark line or one
// load-generator traffic class.
type Benchmark struct {
	// Package is the import path of the producer (the `pkg:` header for
	// go-test benchmarks, the command path for generated results).
	Package string `json:"package"`
	// Name is the benchmark name, including any -P GOMAXPROCS suffix or
	// /class sub-name.
	Name string `json:"name"`
	// Iterations is b.N for go-test results, the completed request count
	// for load-generator classes.
	Iterations int64 `json:"iterations"`
	// Metrics maps each reported unit to its value: the standard ns/op,
	// B/op and allocs/op, custom b.ReportMetric units, and the
	// load-generator's p50-ns/p95-ns/p99-ns/p999-ns, rps and *-rate
	// series.
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the artifact file layout.
type Output struct {
	// Goos and Goarch are the context lines from the benchmark header.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	// Aborted marks a partial artifact: the producing run was interrupted
	// (SIGINT, unreachable server) and flushed what it had. Numbers are
	// real but cover less traffic than configured; regressions diffed
	// against an aborted artifact are advisory at best.
	Aborted bool `json:"aborted,omitempty"`
	// Benchmarks lists every result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// WriteFile writes the artifact as indented JSON with a trailing newline.
func WriteFile(path string, out Output) error {
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadFile parses an artifact previously written by WriteFile.
func ReadFile(path string) (Output, error) {
	var out Output
	raw, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return out, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}
