package dataset

import (
	"math"
	"strings"
	"testing"
)

func seedTable() *Table {
	return NewBuilder().
		AddFloat("age", []float64{25, 40, 33, math.NaN()}).
		AddCategorical("sex", []string{"male", "female", "male", "female"}).
		MustBuild()
}

func floatBatch(ages []float64, sexes []string) *Batch {
	return &Batch{
		Floats: map[string][]float64{"age": ages},
		Levels: map[string][]string{"sex": sexes},
		N:      len(ages),
	}
}

func TestVersionedSnapshotIsolation(t *testing.T) {
	v := NewVersioned(seedTable())
	s1, e1 := v.Snapshot()
	if e1 != 1 {
		t.Fatalf("initial epoch = %d, want 1", e1)
	}
	if s1.NumRows() != 4 {
		t.Fatalf("initial snapshot rows = %d, want 4", s1.NumRows())
	}

	// Append enough rows to force the backing arrays to reallocate at least
	// once, then verify the old snapshot is untouched.
	for i := 0; i < 8; i++ {
		if _, _, err := v.Append(floatBatch(
			[]float64{float64(50 + i), 60},
			[]string{"male", "other"},
		)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	s2, e2 := v.Snapshot()
	if e2 != 9 {
		t.Fatalf("epoch after 8 appends = %d, want 9", e2)
	}
	if s2.NumRows() != 4+16 {
		t.Fatalf("rows after appends = %d, want 20", s2.NumRows())
	}
	if s1.NumRows() != 4 {
		t.Errorf("old snapshot row count changed to %d", s1.NumRows())
	}
	if got := s1.Floats("age"); len(got) != 4 || got[0] != 25 || got[1] != 40 {
		t.Errorf("old snapshot floats mutated: %v", got)
	}
	if got := s1.Levels("sex"); len(got) != 2 {
		t.Errorf("old snapshot dictionary grew: %v", got)
	}
	// Appending to the old snapshot's clamped slices must not be possible
	// via shared backing arrays: the new snapshot sees its own data.
	if got := s2.Floats("age")[4]; got != 50 {
		t.Errorf("new snapshot first appended age = %v, want 50", got)
	}

	// Snapshot is cached per epoch: same pointer until the next append.
	s2b, _ := v.Snapshot()
	if s2b != s2 {
		t.Error("Snapshot not cached within an epoch")
	}
}

func TestVersionedDictionaryStability(t *testing.T) {
	v := NewVersioned(seedTable())
	s1, _ := v.Snapshot()
	maleCode := s1.LevelCode("sex", "male")
	femaleCode := s1.LevelCode("sex", "female")

	if _, _, err := v.Append(floatBatch([]float64{1}, []string{"other"})); err != nil {
		t.Fatal(err)
	}
	s2, _ := v.Snapshot()
	if got := s2.LevelCode("sex", "male"); got != maleCode {
		t.Errorf("male code changed %d -> %d", maleCode, got)
	}
	if got := s2.LevelCode("sex", "female"); got != femaleCode {
		t.Errorf("female code changed %d -> %d", femaleCode, got)
	}
	if got := s2.LevelCode("sex", "other"); got != 2 {
		t.Errorf("new level code = %d, want 2 (appended to dictionary)", got)
	}
	if got := s2.Levels("sex"); len(got) != 3 || got[2] != "other" {
		t.Errorf("dictionary = %v, want [male female other]", got)
	}
}

func TestVersionedNewLevels(t *testing.T) {
	v := NewVersioned(seedTable())
	if v.NewLevels(floatBatch([]float64{1}, []string{"male"})) {
		t.Error("NewLevels true for known level")
	}
	if !v.NewLevels(floatBatch([]float64{1}, []string{"other"})) {
		t.Error("NewLevels false for unknown level")
	}
}

func TestVersionedAppendAtomicity(t *testing.T) {
	v := NewVersioned(seedTable())
	// Ragged batch: float column shorter than N.
	bad := &Batch{
		Floats: map[string][]float64{"age": {1}},
		Levels: map[string][]string{"sex": {"male", "female"}},
		N:      2,
	}
	if _, _, err := v.Append(bad); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if e := v.Epoch(); e != 1 {
		t.Errorf("epoch advanced to %d on failed append", e)
	}
	if n := v.NumRows(); n != 4 {
		t.Errorf("rows changed to %d on failed append", n)
	}
	if _, _, err := v.Append(nil); err == nil {
		t.Fatal("nil batch accepted")
	}
	if _, _, err := v.Append(&Batch{N: 0}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestParseBatch(t *testing.T) {
	fields := seedTable().Fields()

	b, err := ParseBatch([]byte(`{
		"columns": ["sex", "age"],
		"rows": [["male", 41], ["female", null]]
	}`), fields)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 2 {
		t.Fatalf("N = %d, want 2", b.N)
	}
	if got := b.Floats["age"]; got[0] != 41 || !math.IsNaN(got[1]) {
		t.Errorf("age = %v, want [41 NaN]", got)
	}
	if got := b.Levels["sex"]; got[0] != "male" || got[1] != "female" {
		t.Errorf("sex = %v", got)
	}

	for name, body := range map[string]string{
		"not json":       `{`,
		"no rows":        `{"columns": ["age", "sex"], "rows": []}`,
		"unknown column": `{"columns": ["age", "sex", "zz"], "rows": [[1, "m", 2]]}`,
		"dup column":     `{"columns": ["age", "age"], "rows": [[1, 2]]}`,
		"missing column": `{"columns": ["age"], "rows": [[1]]}`,
		"ragged row":     `{"columns": ["age", "sex"], "rows": [[1]]}`,
		"string for num": `{"columns": ["age", "sex"], "rows": [["x", "m"]]}`,
		"num for string": `{"columns": ["age", "sex"], "rows": [[1, 2]]}`,
	} {
		if _, err := ParseBatch([]byte(body), fields); err == nil {
			t.Errorf("%s: ParseBatch accepted invalid body", name)
		} else if !strings.Contains(err.Error(), "dataset:") {
			t.Errorf("%s: error %q missing package prefix", name, err)
		}
	}
}
