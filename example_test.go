package hdivexplorer_test

import (
	"fmt"

	hdiv "repro"
)

// The tiny fixture used by the examples: ten loan decisions where the
// model errs exactly on the two young large-amount applicants.
func exampleData() (*hdiv.Table, []bool, []bool) {
	tab := hdiv.NewTableBuilder().
		AddFloat("age", []float64{22, 24, 31, 38, 45, 52, 29, 61, 23, 44}).
		AddFloat("amount", []float64{9000, 8500, 3000, 2000, 1500, 2500, 4000, 1000, 8800, 3500}).
		AddCategorical("purpose", []string{"car", "car", "home", "home", "car", "home", "car", "home", "car", "home"}).
		MustBuild()
	actual := []bool{true, false, true, true, false, true, false, true, true, false}
	predicted := []bool{false, true, true, true, false, true, false, true, false, false}
	return tab, actual, predicted
}

// ExamplePipeline runs the end-to-end H-DivExplorer pipeline and prints
// the most divergent subgroup of the model's error rate.
func ExamplePipeline() {
	tab, actual, predicted := exampleData()
	rep, err := hdiv.Pipeline(tab, hdiv.ErrorRate(actual, predicted), hdiv.PipelineOptions{
		TreeSupport: 0.2,
		MinSupport:  0.2,
	})
	if err != nil {
		panic(err)
	}
	top := rep.Top()
	fmt.Printf("global error rate: %.1f\n", rep.Global)
	fmt.Printf("top subgroup: {%s} with error rate %.1f\n", top.Itemset, top.Statistic)
	// Output:
	// global error rate: 0.3
	// top subgroup: {age≤24} with error rate 1.0
}

// ExampleManualCuts explores with a fixed, manually specified
// discretization (the behaviour of non-hierarchical tools).
func ExampleManualCuts() {
	tab, actual, predicted := exampleData()
	h, err := hdiv.ManualCuts("age", []float64{30, 50})
	if err != nil {
		panic(err)
	}
	hs := hdiv.NewHierarchySet()
	hs.Add(h)
	rep, err := hdiv.Explore(tab, hdiv.ExploreConfig{
		Outcome:     hdiv.ErrorRate(actual, predicted),
		Hierarchies: hs,
		MinSupport:  0.2,
		Mode:        hdiv.Base,
	})
	if err != nil {
		panic(err)
	}
	for _, sg := range rep.TopK(2) {
		fmt.Printf("%s Δ=%+.2f\n", sg.Itemset, sg.Divergence)
	}
	// Output:
	// age≤30 Δ=+0.45
	// age=(30-50] Δ=-0.30
}

// ExampleItem demonstrates item semantics: half-open intervals for
// continuous attributes, level sets for categorical ones.
func ExampleItem() {
	age := hdiv.ContinuousItem("age", 25, 45)
	fmt.Println(age, age.MatchesFloat(25), age.MatchesFloat(30), age.MatchesFloat(45.5))
	// Output:
	// age=(25-45] false true false
}

// ExampleOutcome_DivergenceOf computes a subgroup statistic directly.
func ExampleOutcome_DivergenceOf() {
	tab, actual, predicted := exampleData()
	o := hdiv.FalsePositiveRate(actual, predicted)
	young := hdiv.ContinuousItem("age", 0, 30)
	fmt.Printf("FPR(age≤30) - FPR(all) = %+.2f\n", o.DivergenceOf(young.Rows(tab)))
	// Output:
	// FPR(age≤30) - FPR(all) = +0.25
}
