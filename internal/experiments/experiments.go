package experiments

import (
	"fmt"
	"sort"
)

// Artifact is one rendered experiment: a paper table or figure.
type Artifact struct {
	ID    string
	Title string
	Text  string
}

// runners maps experiment IDs to their run-and-render functions.
var runners = map[string]struct {
	title string
	run   func(Config) (string, error)
}{
	"table1": {"Table I: impact of #prior discretization on FPR divergence (compas)", func(c Config) (string, error) {
		rows, err := Table1(c)
		if err != nil {
			return "", err
		}
		return RenderTable1(rows), nil
	}},
	"fig1": {"Figure 1: item hierarchy for the #prior attribute (compas, FPR)", Figure1},
	"table2": {"Table II: dataset characteristics", func(c Config) (string, error) {
		rows, err := Table2(c)
		if err != nil {
			return "", err
		}
		return RenderTable2(rows), nil
	}},
	"table3": {"Table III: top divergent compas itemsets by discretization/exploration", func(c Config) (string, error) {
		rows, err := Table3(c)
		if err != nil {
			return "", err
		}
		return RenderTable3(rows), nil
	}},
	"table4": {"Table IV: top divergent folktables itemsets, base vs generalized", func(c Config) (string, error) {
		rows, err := Table4(c)
		if err != nil {
			return "", err
		}
		return RenderTable3(rows), nil
	}},
	"fig2": {"Figure 2: max divergence and execution time, base vs hierarchical", func(c Config) (string, error) {
		pts, err := Figure2(c)
		if err != nil {
			return "", err
		}
		return RenderFigure2(pts), nil
	}},
	"fig3a": {"Figure 3a: folktables highest income divergence, base vs hierarchical", func(c Config) (string, error) {
		pts, err := Figure3a(c)
		if err != nil {
			return "", err
		}
		return RenderFigure3a(pts), nil
	}},
	"fig3b": {"Figure 3b: divergence vs entropy split criteria", func(c Config) (string, error) {
		pts, err := Figure3b(c)
		if err != nil {
			return "", err
		}
		return RenderFigure3b(pts), nil
	}},
	"fig4": {"Figure 4: complete vs polarity-pruned hierarchical search", func(c Config) (string, error) {
		pts, err := Figure4(c)
		if err != nil {
			return "", err
		}
		return RenderFigure4(pts), nil
	}},
	"fig5": {"Figure 5: synthetic-peak top-itemset ranges, base vs generalized", func(c Config) (string, error) {
		res, err := Figure5(c)
		if err != nil {
			return "", err
		}
		return RenderFigure5(res), nil
	}},
	"fig6": {"Figure 6: Slice Finder on synthetic-peak", func(c Config) (string, error) {
		res, err := Figure6(c)
		if err != nil {
			return "", err
		}
		return RenderFigure6(res), nil
	}},
	"fig7": {"Figure 7: quantile discretization vs hierarchical tree discretization", func(c Config) (string, error) {
		pts, err := Figure7(c)
		if err != nil {
			return "", err
		}
		return RenderFigure7(pts), nil
	}},
	"fig8": {"Figure 8: sensitivity to the tree support st", func(c Config) (string, error) {
		pts, err := Figure8(c)
		if err != nil {
			return "", err
		}
		return RenderFigure8(pts), nil
	}},
	"perf": {"§VI-F: performance analysis (discretization cost, polarity speedup)", func(c Config) (string, error) {
		r, err := Perf(c)
		if err != nil {
			return "", err
		}
		return RenderPerf(r), nil
	}},
	"sliceline": {"§VI-G: SliceLine vs base DivExplorer on synthetic-peak", func(c Config) (string, error) {
		res, err := SliceLineComparison(c)
		if err != nil {
			return "", err
		}
		return RenderSliceLine(res), nil
	}},
	"exttree": {"Extension: combined-tree baseline (§V-A discussion) vs H-DivExplorer", func(c Config) (string, error) {
		rows, err := ExtCombinedTree(c)
		if err != nil {
			return "", err
		}
		return RenderExtCombinedTree(rows), nil
	}},
}

// IDs returns the experiment identifiers in a stable order.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Artifact, error) {
	r, ok := runners[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	text, err := r.run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return &Artifact{ID: id, Title: r.title, Text: text}, nil
}

// RunAll executes every experiment in ID order, stopping at the first
// error.
func RunAll(cfg Config) ([]*Artifact, error) {
	var out []*Artifact
	for _, id := range IDs() {
		a, err := Run(id, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
	return out, nil
}
