package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 129, 1000} {
		v := NewFull(n)
		if got := v.Count(); got != n {
			t.Errorf("NewFull(%d).Count() = %d, want %d", n, got, n)
		}
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", v.Count(), len(idx))
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if v.Count() != len(idx)-1 {
		t.Errorf("Count = %d, want %d", v.Count(), len(idx)-1)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for name, fn := range map[string]func(){
		"Set":       func() { v.Set(10) },
		"Get":       func() { v.Get(-1) },
		"Clear":     func() { v.Clear(100) },
		"SetNeg":    func() { v.Set(-5) },
		"MismatchA": func() { v.And(New(11)) },
		"MismatchC": func() { v.AndCount(New(9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromIndices(t *testing.T) {
	v := FromIndices(100, []int{3, 50, 99, 3})
	if v.Count() != 3 {
		t.Fatalf("Count = %d, want 3", v.Count())
	}
	want := []int{3, 50, 99}
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromIndices(130, []int{1, 2, 3, 64, 65, 129})
	b := FromIndices(130, []int{2, 3, 4, 65, 128})

	and := a.Clone().And(b)
	wantAnd := FromIndices(130, []int{2, 3, 65})
	if !and.Equal(wantAnd) {
		t.Errorf("And = %v, want %v", and.Indices(), wantAnd.Indices())
	}

	or := a.Clone().Or(b)
	wantOr := FromIndices(130, []int{1, 2, 3, 4, 64, 65, 128, 129})
	if !or.Equal(wantOr) {
		t.Errorf("Or = %v, want %v", or.Indices(), wantOr.Indices())
	}

	andNot := a.Clone().AndNot(b)
	wantAndNot := FromIndices(130, []int{1, 64, 129})
	if !andNot.Equal(wantAndNot) {
		t.Errorf("AndNot = %v, want %v", andNot.Indices(), wantAndNot.Indices())
	}

	if got := a.AndCount(b); got != 3 {
		t.Errorf("AndCount = %d, want 3", got)
	}
}

func TestNotRespectsLength(t *testing.T) {
	v := FromIndices(70, []int{0, 69})
	v.Not()
	if v.Count() != 68 {
		t.Fatalf("Not().Count() = %d, want 68", v.Count())
	}
	if v.Get(0) || v.Get(69) {
		t.Error("Not did not clear original bits")
	}
	// Double negation restores.
	v.Not()
	if !v.Equal(FromIndices(70, []int{0, 69})) {
		t.Error("double Not is not identity")
	}
}

func TestAndInto(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3})
	b := FromIndices(100, []int{2, 3, 4})
	dst := New(100)
	a.AndInto(b, dst)
	if !dst.Equal(FromIndices(100, []int{2, 3})) {
		t.Errorf("AndInto = %v", dst.Indices())
	}
	// Aliasing dst with a receiver must work.
	a.AndInto(b, a)
	if !a.Equal(FromIndices(100, []int{2, 3})) {
		t.Errorf("aliased AndInto = %v", a.Indices())
	}
}

func TestSubsetIntersect(t *testing.T) {
	a := FromIndices(80, []int{1, 70})
	b := FromIndices(80, []int{1, 2, 70})
	c := FromIndices(80, []int{5})
	if !a.IsSubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	empty := New(80)
	if !empty.IsSubsetOf(c) {
		t.Error("empty set is subset of everything")
	}
}

func TestForEachOrder(t *testing.T) {
	idx := []int{0, 5, 63, 64, 100, 127}
	v := FromIndices(128, idx)
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(idx) {
		t.Fatalf("ForEach visited %v, want %v", got, idx)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("ForEach visited %v, want %v", got, idx)
		}
	}
}

func TestSumAndMoments(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	v := FromIndices(5, []int{0, 2, 4})
	if got := v.SumFloat64(vals); got != 9 {
		t.Errorf("SumFloat64 = %v, want 9", got)
	}
	n, sum, sumSq := v.Moments(vals)
	if n != 3 || sum != 9 || sumSq != 1+9+25 {
		t.Errorf("Moments = (%d,%v,%v), want (3,9,35)", n, sum, sumSq)
	}
}

func TestStringRoundTrip(t *testing.T) {
	v := FromIndices(6, []int{0, 3, 5})
	if got := v.String(); got != "100101" {
		t.Errorf("String = %q, want %q", got, "100101")
	}
}

// Property: Count(a AND b) == AndCount(a, b) for random vectors.
func TestQuickAndCountConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				a.Set(i)
			}
			if r.Intn(2) == 0 {
				b.Set(i)
			}
		}
		return a.Clone().And(b).Count() == a.AndCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AndMoments(a, b, vals) == Moments of a AND b, for random
// vectors and values — the fused accumulator must match the allocating
// two-step form exactly (same bits, same fp addition order).
func TestQuickAndMomentsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := New(n), New(n)
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				a.Set(i)
			}
			if r.Intn(2) == 0 {
				b.Set(i)
			}
			vals[i] = r.NormFloat64()
		}
		n1, s1, q1 := a.Clone().And(b).Moments(vals)
		n2, s2, q2 := a.AndMoments(b, vals)
		return n1 == n2 && s1 == s2 && q1 == q2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAndCountWordBoundaries pins AndCount and AndMoments at lengths
// around the 64-bit word edges, where trim/masking bugs would hide.
func TestAndCountWordBoundaries(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 192} {
		a, b := NewFull(n), NewFull(n)
		if got := a.AndCount(b); got != n {
			t.Errorf("n=%d: AndCount = %d, want %d", n, got, n)
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 1
		}
		cnt, sum, _ := a.AndMoments(b, vals)
		if cnt != n || sum != float64(n) {
			t.Errorf("n=%d: AndMoments = (%d, %g), want (%d, %d)", n, cnt, sum, n, n)
		}
	}
}

// Property: De Morgan — NOT(a OR b) == NOT a AND NOT b.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				a.Set(i)
			}
			if r.Intn(3) == 0 {
				b.Set(i)
			}
		}
		left := a.Clone().Or(b).Not()
		right := a.Clone().Not().And(b.Clone().Not())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Indices round-trips through FromIndices.
func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		v := New(n)
		for i := 0; i < n; i++ {
			if r.Intn(4) == 0 {
				v.Set(i)
			}
		}
		return FromIndices(n, v.Indices()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: subset relation is consistent with AND: a ⊆ b iff a AND b == a.
func TestQuickSubsetConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				a.Set(i)
				b.Set(i)
			case 1:
				b.Set(i)
			case 2:
				a.Set(i)
			}
		}
		return a.IsSubsetOf(b) == a.Clone().And(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAndCount(b *testing.B) {
	n := 200_000
	r := rand.New(rand.NewSource(1))
	x, y := New(n), New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			x.Set(i)
		}
		if r.Intn(2) == 0 {
			y.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}

// randomPair builds two random vectors of length n plus a value slice,
// for exercising the word-range shard-view primitives.
func randomPair(rng *rand.Rand, n int) (v, u *Vector, vals []float64) {
	v, u = New(n), New(n)
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			v.Set(i)
		}
		if rng.Intn(3) != 0 {
			u.Set(i)
		}
		vals[i] = float64(rng.Intn(3)) // integral so partial sums are exact
	}
	return v, u, vals
}

// TestRangePrimitivesMatchNaive checks every word-range primitive against
// a naive per-bit evaluation over the same row interval, and that summing
// over a full word-range partition reproduces the whole-vector primitive.
func TestRangePrimitivesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 64, 65, 130, 1000} {
		v, u, vals := randomPair(rng, n)
		words := v.NumWords()
		if words != (n+63)/64 {
			t.Fatalf("n=%d: NumWords() = %d, want %d", n, words, (n+63)/64)
		}
		// All word-aligned [lo, hi) sub-ranges.
		for lo := 0; lo <= words; lo++ {
			for hi := lo; hi <= words; hi++ {
				rowLo, rowHi := lo*64, hi*64
				if rowHi > n {
					rowHi = n
				}
				var count, andCount, andNotCount, mN int
				var mSum, mSumSq float64
				for i := rowLo; i < rowHi; i++ {
					if !v.Get(i) {
						continue
					}
					count++
					if u.Get(i) {
						andCount++
						mN++
						mSum += vals[i]
						mSumSq += vals[i] * vals[i]
					} else {
						andNotCount++
					}
				}
				if got := v.CountRange(lo, hi); got != count {
					t.Fatalf("n=%d [%d,%d): CountRange = %d, want %d", n, lo, hi, got, count)
				}
				if got := v.AndCountRange(u, lo, hi); got != andCount {
					t.Fatalf("n=%d [%d,%d): AndCountRange = %d, want %d", n, lo, hi, got, andCount)
				}
				if got := v.AndNotCountRange(u, lo, hi); got != andNotCount {
					t.Fatalf("n=%d [%d,%d): AndNotCountRange = %d, want %d", n, lo, hi, got, andNotCount)
				}
				gotN, gotSum, gotSumSq := v.AndMomentsRange(u, vals, lo, hi)
				if gotN != mN || gotSum != mSum || gotSumSq != mSumSq {
					t.Fatalf("n=%d [%d,%d): AndMomentsRange = (%d, %v, %v), want (%d, %v, %v)",
						n, lo, hi, gotN, gotSum, gotSumSq, mN, mSum, mSumSq)
				}
			}
		}
		// A partition of the word range must sum to the unsharded primitives.
		for _, parts := range []int{1, 2, 3, 5} {
			if parts > words && words > 0 {
				continue
			}
			total := 0
			var tN int
			var tSum, tSumSq float64
			bounds := []int{0}
			for p := 1; p < parts; p++ {
				bounds = append(bounds, p*words/parts)
			}
			bounds = append(bounds, words)
			for p := 0; p < len(bounds)-1; p++ {
				total += v.AndCountRange(u, bounds[p], bounds[p+1])
				pn, ps, pss := v.AndMomentsRange(u, vals, bounds[p], bounds[p+1])
				tN, tSum, tSumSq = tN+pn, tSum+ps, tSumSq+pss
			}
			if want := v.AndCount(u); total != want {
				t.Errorf("n=%d parts=%d: partitioned AndCount = %d, want %d", n, parts, total, want)
			}
			wN, wSum, wSumSq := v.AndMoments(u, vals)
			if tN != wN || tSum != wSum || tSumSq != wSumSq {
				t.Errorf("n=%d parts=%d: partitioned moments (%d, %v, %v), want (%d, %v, %v)",
					n, parts, tN, tSum, tSumSq, wN, wSum, wSumSq)
			}
		}
	}
}

// TestForEachRange checks the shard-view iterator yields exactly the set
// bits of the row interval, in ascending order.
func TestForEachRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v, _, _ := randomPair(rng, 300)
	words := v.NumWords()
	for lo := 0; lo <= words; lo++ {
		for hi := lo; hi <= words; hi++ {
			var got []int
			v.ForEachRange(lo, hi, func(i int) { got = append(got, i) })
			var want []int
			rowHi := hi * 64
			if rowHi > v.Len() {
				rowHi = v.Len()
			}
			for i := lo * 64; i < rowHi; i++ {
				if v.Get(i) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("[%d,%d): %d indices, want %d", lo, hi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("[%d,%d): index %d = %d, want %d", lo, hi, i, got[i], want[i])
				}
			}
		}
	}
}
