// Package wal implements a checksummed, segmented write-ahead log for
// dataset append batches (DESIGN §14).
//
// Each acknowledged POST /v1/datasets/{name}/rows batch becomes exactly
// one record: a 16-byte header (little-endian payload length, the epoch
// the batch produces, and a CRC32C over header prefix + payload)
// followed by the raw batch JSON. Records append to the active segment
// file; segments rotate at a size bound and are deleted once a
// full-table snapshot covers every epoch they hold.
//
// Durability is prefix-closed: fsync covers a file prefix, so if epoch
// E survives a crash every earlier epoch does too. Recovery scans
// segments in order, truncates at the first torn or checksum-failed
// record (counting wal.truncated_records and logging the offset), and
// never refuses to start over a corrupt tail.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// SyncPolicy selects when an acknowledged append is durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every acknowledgement, batching
	// concurrent appenders behind a single group-commit fsync. Loss
	// window: none for acked batches.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer. Loss window: up to one
	// interval of acked batches.
	SyncInterval
	// SyncNone never fsyncs; the OS page cache decides. Loss window:
	// everything since the kernel last wrote back.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

const (
	headerSize = 16
	// maxRecordBytes bounds a single record's payload during recovery;
	// anything larger is treated as a torn length field. The append
	// handler caps request bodies well below this.
	maxRecordBytes = 64 << 20

	segmentSuffix  = ".wal"
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".snap"

	defaultSegmentBytes = 4 << 20
	defaultSyncInterval = 50 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open.
type Options struct {
	// Dir is the per-dataset log directory; created if absent.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes. Defaults to 4 MiB.
	SegmentBytes int64
	// Sync is the durability policy for Commit.
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval. Defaults to
	// 50ms.
	SyncInterval time.Duration
	// Name labels per-dataset gauges; empty disables them.
	Name string
	// Tracer receives wal counters, gauges and the fsync histogram.
	// Nil-safe.
	Tracer *obs.Tracer
	// Logf, when set, receives recovery diagnostics (truncation offsets).
	Logf func(format string, args ...any)
}

// Record is one replayable append batch.
type Record struct {
	// Epoch is the dataset epoch applying this record produces.
	Epoch uint64
	// Payload is the raw append-batch JSON body.
	Payload []byte
}

type segment struct {
	seq        uint64
	path       string
	f          *os.File
	size       int64
	firstEpoch uint64 // 0 when the segment holds no records
	lastEpoch  uint64
}

type recMeta struct {
	seg   int // index into l.segs at scan time
	off   int64
	epoch uint64
	n     int // payload length
}

// SnapshotRef names a committed snapshot file.
type SnapshotRef struct {
	Epoch uint64
	Path  string
}

// RecoveryInfo summarizes what Open found on disk.
type RecoveryInfo struct {
	// SnapshotEpoch is the newest committed snapshot's epoch, 0 if none.
	SnapshotEpoch uint64
	// Records is the number of valid records with epoch > SnapshotEpoch
	// that Replay will deliver.
	Records int
	// Truncated reports whether a torn or corrupt tail was cut.
	Truncated bool
	// TruncatedAt is "<segment path>@<offset>" when Truncated.
	TruncatedAt string
}

// Log is a single dataset's write-ahead log. One writer (the append
// handler, serialized per dataset by Versioned's lock) plus any number
// of Commit waiters.
type Log struct {
	dir      string
	segBytes int64
	policy   SyncPolicy
	interval time.Duration
	name     string
	tracer   *obs.Tracer
	logf     func(string, ...any)

	ctrRecords   *obs.Counter
	ctrReplayed  *obs.Counter
	ctrTruncated *obs.Counter
	ctrSnapshots *obs.Counter
	ctrSegDel    *obs.Counter
	hFsync       *obs.Histogram

	info      RecoveryInfo
	replay    []recMeta
	snapshots []SnapshotRef // descending by epoch

	mu        sync.Mutex // guards segs, writes, rotation, snapshot state
	segs      []*segment
	writtenTo uint64 // global byte counter across all appended records
	snapEpoch uint64
	closed    bool

	smu      sync.Mutex // guards group-commit state; never held across mu
	scond    *sync.Cond
	syncedTo uint64
	syncing  bool
	failed   error // sticky write/fsync failure: the log is wedged

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open scans dir, enacts torn-tail truncation, and prepares the log for
// Replay followed by appends.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		dir:      opts.Dir,
		segBytes: opts.SegmentBytes,
		policy:   opts.Sync,
		interval: opts.SyncInterval,
		name:     opts.Name,
		tracer:   opts.Tracer,
		logf:     opts.Logf,

		ctrRecords:   opts.Tracer.Counter(obs.CtrWALRecords),
		ctrReplayed:  opts.Tracer.Counter(obs.CtrWALReplayedRecords),
		ctrTruncated: opts.Tracer.Counter(obs.CtrWALTruncatedRecords),
		ctrSnapshots: opts.Tracer.Counter(obs.CtrWALSnapshotsWritten),
		ctrSegDel:    opts.Tracer.Counter(obs.CtrWALSegmentsDeleted),
		hFsync:       opts.Tracer.Histogram(obs.HistWALFsyncSeconds, obs.LatencyBuckets),
	}
	if l.segBytes <= 0 {
		l.segBytes = defaultSegmentBytes
	}
	if l.interval <= 0 {
		l.interval = defaultSyncInterval
	}
	l.scond = sync.NewCond(&l.smu)

	if err := l.scanDir(); err != nil {
		l.closeFiles()
		return nil, err
	}
	if len(l.segs) == 0 {
		if err := l.openSegmentLocked(1); err != nil {
			return nil, err
		}
	}
	if l.policy == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	l.publishGauges()
	return l, nil
}

func (l *Log) logfSafe(format string, args ...any) {
	if l.logf != nil {
		l.logf(format, args...)
	}
}

// scanDir enumerates snapshots and segments, validates every record,
// truncates the first torn/corrupt tail, and deletes segments past it.
func (l *Log) scanDir() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Staged snapshot that never committed; the old snapshot
			// stays authoritative.
			os.Remove(filepath.Join(l.dir, name))
		case strings.HasSuffix(name, segmentSuffix):
			seq, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
			if err != nil || seq == 0 {
				continue // not ours
			}
			seqs = append(seqs, seq)
		case strings.HasPrefix(name, snapshotPrefix) && strings.HasSuffix(name, snapshotSuffix):
			es := strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix)
			epoch, err := strconv.ParseUint(es, 10, 64)
			if err != nil || epoch == 0 {
				continue
			}
			l.snapshots = append(l.snapshots, SnapshotRef{Epoch: epoch, Path: filepath.Join(l.dir, name)})
		}
	}
	sort.Slice(l.snapshots, func(i, j int) bool { return l.snapshots[i].Epoch > l.snapshots[j].Epoch })
	if len(l.snapshots) > 0 {
		l.snapEpoch = l.snapshots[0].Epoch
		l.info.SnapshotEpoch = l.snapEpoch
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	truncated := false
	for _, seq := range seqs {
		path := l.segmentPath(seq)
		if truncated {
			// Everything past the first corrupt record is unreachable
			// by the truncation rule; drop whole later segments.
			os.Remove(path)
			l.info.Truncated = true
			continue
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: open segment: %w", err)
		}
		seg := &segment{seq: seq, path: path, f: f}
		validEnd, metas, scanErr := l.scanSegment(f, len(l.segs))
		if scanErr != nil {
			f.Close()
			return scanErr
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: stat segment: %w", err)
		}
		if validEnd < fi.Size() {
			truncated = true
			l.info.Truncated = true
			l.info.TruncatedAt = fmt.Sprintf("%s@%d", path, validEnd)
			l.ctrTruncated.Add(1)
			l.logfSafe("wal: truncating torn tail at %s (dropping %d bytes)", l.info.TruncatedAt, fi.Size()-validEnd)
			if err := f.Truncate(validEnd); err != nil {
				f.Close()
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		// The bufio scan moved the file offset; park it at the end of
		// the valid prefix so appends land exactly there.
		if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("wal: seek append position: %w", err)
		}
		seg.size = validEnd
		for _, m := range metas {
			if seg.firstEpoch == 0 {
				seg.firstEpoch = m.epoch
			}
			seg.lastEpoch = m.epoch
			if m.epoch > l.snapEpoch {
				l.replay = append(l.replay, m)
			}
		}
		l.segs = append(l.segs, seg)
		l.writtenTo += uint64(validEnd)
	}
	// Bytes found on disk are trivially durable; only this
	// incarnation's appends need fsync coverage.
	l.syncedTo = l.writtenTo
	l.info.Records = len(l.replay)
	return nil
}

// scanSegment validates records sequentially and returns the byte
// offset of the valid prefix plus metadata for each good record. A
// short header, oversized length, or CRC mismatch ends the valid
// prefix; it is never an error.
func (l *Log) scanSegment(f *os.File, segIdx int) (int64, []recMeta, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, fmt.Errorf("wal: seek segment: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var metas []recMeta
	var off int64
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, metas, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		epoch := binary.LittleEndian.Uint64(hdr[4:12])
		sum := binary.LittleEndian.Uint32(hdr[12:16])
		if n == 0 || n > maxRecordBytes || epoch == 0 {
			return off, metas, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, metas, nil // torn payload
		}
		crc := crc32.Update(crc32.Checksum(hdr[0:12], castagnoli), castagnoli, payload)
		if crc != sum {
			return off, metas, nil
		}
		metas = append(metas, recMeta{seg: segIdx, off: off, epoch: epoch, n: int(n)})
		off += headerSize + int64(n)
	}
}

// Info reports what Open found.
func (l *Log) Info() RecoveryInfo { return l.info }

// Snapshots lists committed snapshots, newest first.
func (l *Log) Snapshots() []SnapshotRef { return l.snapshots }

// Replay delivers every valid record with epoch greater than the newest
// snapshot, in order. Each record passes the wal.replay_record
// failpoint after checksum verification and before delivery. fn
// returning an error aborts replay and surfaces the error; the caller
// decides whether a poisoned record is fatal. The payload slice is
// reused across records — copy it if it must outlive the call.
func (l *Log) Replay(fn func(rec Record) error) error {
	payload := []byte(nil)
	for _, m := range l.replay {
		seg := l.segs[m.seg]
		if cap(payload) < m.n+headerSize {
			payload = make([]byte, m.n+headerSize)
		}
		buf := payload[:m.n+headerSize]
		if _, err := seg.f.ReadAt(buf, m.off); err != nil {
			return fmt.Errorf("wal: reread record at %s@%d: %w", seg.path, m.off, err)
		}
		sum := binary.LittleEndian.Uint32(buf[12:16])
		crc := crc32.Update(crc32.Checksum(buf[0:12], castagnoli), castagnoli, buf[headerSize:])
		if crc != sum {
			return fmt.Errorf("wal: record at %s@%d changed between scan and replay", seg.path, m.off)
		}
		if err := faultinject.Hit(faultinject.SiteWALReplayRecord); err != nil {
			return err
		}
		if err := fn(Record{Epoch: m.epoch, Payload: buf[headerSize:]}); err != nil {
			return err
		}
		l.ctrReplayed.Add(1)
	}
	return nil
}

// AppendResult reports where an Append landed.
type AppendResult struct {
	// Off is the global byte offset one past this record; pass it to
	// Commit to satisfy the sync policy before acknowledging.
	Off uint64
	// Rotated reports that this append sealed the previous segment —
	// the caller's cue to consider snapshot/compaction.
	Rotated bool
}

// Append buffers one record. It does NOT make the record durable; call
// Commit with the returned offset before acknowledging the batch.
// Errors are sticky: a failed write wedges the log so no later batch
// can be acked ahead of a hole.
func (l *Log) Append(epoch uint64, payload []byte) (AppendResult, error) {
	if len(payload) == 0 {
		return AppendResult{}, errors.New("wal: empty payload")
	}
	if len(payload) > maxRecordBytes {
		return AppendResult{}, fmt.Errorf("wal: payload %d bytes exceeds record bound %d", len(payload), maxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return AppendResult{}, errors.New("wal: closed")
	}
	if err := l.stickyErr(); err != nil {
		return AppendResult{}, err
	}
	var res AppendResult
	active := l.segs[len(l.segs)-1]
	if active.size >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			return AppendResult{}, err
		}
		active = l.segs[len(l.segs)-1]
		res.Rotated = true
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], epoch)
	crc := crc32.Update(crc32.Checksum(hdr[0:12], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
	if err := l.writeAllLocked(active, hdr[:]); err != nil {
		return AppendResult{}, err
	}
	if err := l.writeAllLocked(active, payload); err != nil {
		return AppendResult{}, err
	}
	n := int64(headerSize + len(payload))
	active.size += n
	if active.firstEpoch == 0 {
		active.firstEpoch = epoch
	}
	active.lastEpoch = epoch
	l.writtenTo += uint64(n)
	res.Off = l.writtenTo
	l.ctrRecords.Add(1)
	return res, nil
}

func (l *Log) writeAllLocked(seg *segment, b []byte) error {
	if _, err := seg.f.Write(b); err != nil {
		err = fmt.Errorf("wal: write segment %s: %w", seg.path, err)
		l.wedge(err)
		return err
	}
	return nil
}

// stickyErr reads the group-commit failure flag. Callers hold l.mu;
// smu is safe to take under mu (never the reverse while blocking).
func (l *Log) stickyErr() error {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.failed
}

func (l *Log) wedge(err error) {
	l.smu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.scond.Broadcast()
	l.smu.Unlock()
}

// rotateLocked seals the active segment (fsync under always/interval so
// its bytes are durable before any successor record) and opens the next
// one. Failure fails the triggering append and wedges the log.
func (l *Log) rotateLocked() error {
	if err := faultinject.Hit(faultinject.SiteWALSegmentRotate); err != nil {
		return err
	}
	active := l.segs[len(l.segs)-1]
	if l.policy != SyncNone {
		start := time.Now()
		if err := active.f.Sync(); err != nil {
			err = fmt.Errorf("wal: seal segment %s: %w", active.path, err)
			l.wedge(err)
			return err
		}
		l.hFsync.Observe(time.Since(start).Seconds())
	}
	// Everything written so far lives in sealed, synced files; release
	// any group-commit waiters parked on those offsets.
	l.smu.Lock()
	if l.writtenTo > l.syncedTo {
		l.syncedTo = l.writtenTo
	}
	l.scond.Broadcast()
	l.smu.Unlock()
	if err := l.openSegmentLocked(active.seq + 1); err != nil {
		l.wedge(err)
		return err
	}
	return nil
}

func (l *Log) openSegmentLocked(seq uint64) error {
	path := l.segmentPath(seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.segs = append(l.segs, &segment{seq: seq, path: path, f: f})
	l.publishGaugesLocked()
	return nil
}

func (l *Log) segmentPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%09d%s", seq, segmentSuffix))
}

// Commit blocks until bytes [0, off) satisfy the sync policy. Under
// SyncAlways concurrent committers share one group-commit fsync: the
// first waiter becomes leader, syncs everything buffered so far, and
// releases every waiter at or below the synced watermark.
func (l *Log) Commit(off uint64) error {
	if err := faultinject.Hit(faultinject.SiteWALAppendSync); err != nil {
		return err
	}
	if l.policy != SyncAlways {
		l.smu.Lock()
		err := l.failed
		l.smu.Unlock()
		return err
	}
	l.smu.Lock()
	defer l.smu.Unlock()
	for {
		if l.failed != nil {
			return l.failed
		}
		if l.syncedTo >= off {
			return nil
		}
		if !l.syncing {
			l.syncing = true
			l.smu.Unlock()
			l.leaderSync()
			l.smu.Lock()
			continue
		}
		l.scond.Wait()
	}
}

// leaderSync fsyncs the active segment on behalf of every pending
// committer. Called without smu held; re-acquires it to publish.
func (l *Log) leaderSync() {
	l.mu.Lock()
	target := l.writtenTo
	var f *os.File
	if !l.closed && len(l.segs) > 0 {
		f = l.segs[len(l.segs)-1].f
	}
	l.mu.Unlock()
	var err error
	if f != nil {
		start := time.Now()
		err = f.Sync()
		l.hFsync.Observe(time.Since(start).Seconds())
	} else {
		err = errors.New("wal: closed")
	}
	l.smu.Lock()
	l.syncing = false
	if err != nil {
		if l.failed == nil {
			l.failed = fmt.Errorf("wal: fsync: %w", err)
		}
	} else if target > l.syncedTo {
		l.syncedTo = target
	}
	l.scond.Broadcast()
	l.smu.Unlock()
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.smu.Lock()
			dirty := l.failed == nil
			synced := l.syncedTo
			l.smu.Unlock()
			if !dirty {
				return
			}
			l.mu.Lock()
			pending := l.writtenTo > synced
			l.mu.Unlock()
			if pending {
				l.leaderSyncInterval()
			}
		}
	}
}

func (l *Log) leaderSyncInterval() {
	l.smu.Lock()
	if l.syncing {
		l.smu.Unlock()
		return
	}
	l.syncing = true
	l.smu.Unlock()
	l.leaderSync()
}

// WriteSnapshot stages a full-table snapshot at epoch via write, then
// commits it atomically (tmp + fsync + rename) and deletes sealed
// segments whose every record the snapshot covers. A write error —
// including the server.snapshot_write failpoint firing inside write —
// discards the staged file and leaves the previous snapshot
// authoritative.
func (l *Log) WriteSnapshot(epoch uint64, write func(w io.Writer) error) error {
	final := filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", snapshotPrefix, epoch, snapshotSuffix))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: stage snapshot: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: commit snapshot: %w", err)
	}
	l.ctrSnapshots.Add(1)

	l.mu.Lock()
	if epoch > l.snapEpoch {
		l.snapEpoch = epoch
	}
	// Drop sealed segments entirely below the snapshot, and any older
	// snapshot files it supersedes.
	kept := l.segs[:0]
	for i, seg := range l.segs {
		sealed := i < len(l.segs)-1
		if sealed && seg.lastEpoch <= l.snapEpoch {
			seg.f.Close()
			os.Remove(seg.path)
			l.ctrSegDel.Add(1)
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	l.publishGaugesLocked()
	snapEpoch := l.snapEpoch
	l.mu.Unlock()

	for _, s := range l.snapshots {
		if s.Epoch < snapEpoch {
			os.Remove(s.Path)
		}
	}
	l.snapshots = []SnapshotRef{{Epoch: snapEpoch, Path: final}}
	return nil
}

func (l *Log) publishGauges() {
	l.mu.Lock()
	l.publishGaugesLocked()
	l.mu.Unlock()
}

func (l *Log) publishGaugesLocked() {
	if l.name == "" || l.tracer == nil {
		return
	}
	if len(l.segs) > 0 {
		l.tracer.SetGauge(obs.GaugeWALActiveSegmentPrefix+l.name, float64(l.segs[len(l.segs)-1].seq))
	}
	l.tracer.SetGauge(obs.GaugeWALSegmentsPrefix+l.name, float64(len(l.segs)))
	l.tracer.SetGauge(obs.GaugeWALSnapshotEpochPrefix+l.name, float64(l.snapEpoch))
}

// Close stops the background flusher, fsyncs the active segment under
// always/interval, and closes every file.
func (l *Log) Close() error {
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
		l.flushStop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	if l.policy != SyncNone && len(l.segs) > 0 {
		if err := l.segs[len(l.segs)-1].f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	l.closeFilesLocked()
	l.smu.Lock()
	if l.failed == nil {
		l.failed = errors.New("wal: closed")
	}
	l.scond.Broadcast()
	l.smu.Unlock()
	return first
}

func (l *Log) closeFiles() {
	l.mu.Lock()
	l.closeFilesLocked()
	l.mu.Unlock()
}

func (l *Log) closeFilesLocked() {
	for _, seg := range l.segs {
		seg.f.Close()
	}
}
