package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkPipelineCompas-8   	      10	 110512345 ns/op	  6942 candidates/op	  1234 B/op	      56 allocs/op
PASS
ok  	repro	2.34s
pkg: repro/internal/bitvec
BenchmarkAndCount-8   	 5000000	       231.5 ns/op
PASS
ok  	repro/internal/bitvec	1.2s
`

func TestRunParsesBenchOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var echo strings.Builder
	if err := run(strings.NewReader(sample), &echo, out); err != nil {
		t.Fatal(err)
	}
	if echo.String() != sample {
		t.Error("input not echoed through verbatim")
	}
	got, err := benchfmt.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Goos != "linux" || got.Goarch != "amd64" {
		t.Errorf("header = %q/%q", got.Goos, got.Goarch)
	}
	if len(got.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got.Benchmarks))
	}
	b := got.Benchmarks[0]
	if b.Package != "repro" || b.Name != "BenchmarkPipelineCompas-8" || b.Iterations != 10 {
		t.Errorf("first benchmark = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 110512345, "candidates/op": 6942, "B/op": 1234, "allocs/op": 56,
	} {
		if b.Metrics[unit] != want {
			t.Errorf("metrics[%q] = %v, want %v", unit, b.Metrics[unit], want)
		}
	}
	if got.Benchmarks[1].Package != "repro/internal/bitvec" || got.Benchmarks[1].Metrics["ns/op"] != 231.5 {
		t.Errorf("second benchmark = %+v", got.Benchmarks[1])
	}
}

func TestRunRejectsFailuresAndEmptyStreams(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	failing := sample + "--- FAIL: TestX (0.00s)\nFAIL\n"
	if err := run(strings.NewReader(failing), io.Discard, out); err == nil {
		t.Error("FAIL lines should make run error")
	}
	if err := run(strings.NewReader("PASS\nok  \trepro\t0.1s\n"), io.Discard, out); err == nil {
		t.Error("benchmark-free stream should make run error")
	}
}
