package faultinject

// Canonical failpoint sites planted across the pipeline. DESIGN.md
// §Failure containment documents what each site covers and what the
// fault-injection suite pins about it.
const (
	// SiteCSVLoad fires at the start of dataset.ReadCSV, before any bytes
	// are parsed — a failing or stalling dataset source.
	SiteCSVLoad = "dataset.read_csv"
	// SiteDiscretizeTree fires once per continuous attribute inside
	// discretize.Tree, before the attribute's hierarchy is grown.
	SiteDiscretizeTree = "discretize.tree"
	// SiteCandidateBatch fires once per candidate batch in both miners:
	// each Apriori level and each FP-Growth conditional universe (the
	// hBatch observation sites).
	SiteCandidateBatch = "fpm.candidate_batch"
	// SiteShardMerge fires once per shard merge: each FP-Growth shard-tree
	// absorb and each Apriori partial-count reduction.
	SiteShardMerge = "engine.shard_merge"
	// SiteCacheFill fires inside the server's universe-cache build
	// function, while singleflight waiters block on the entry.
	SiteCacheFill = "server.cache_fill"
	// SiteAppendParse fires in the append handler after the body is read
	// but before the batch is applied — a malformed or truncated batch.
	// Appends are atomic: a fault here must leave the epoch unchanged.
	SiteAppendParse = "server.append_parse"
	// SiteUniverseAppend fires at the start of fpm.AppendUniverse, before
	// any item bitvec tail is grown — incremental maintenance failing over
	// to a full rebuild.
	SiteUniverseAppend = "fpm.universe_append"
	// SiteDriftRemine fires inside the drift monitor's background re-mine,
	// exercising the panic isolation around the per-dataset watcher.
	SiteDriftRemine = "server.drift_remine"
	// SiteWALAppendSync fires in the write-ahead log's append path after
	// the record bytes are buffered but before the sync policy is
	// satisfied — an fsync that never completes. Acknowledge-after-durable
	// demands a fault here answers 5xx without acking the batch: replay
	// must be able to reproduce every 200.
	SiteWALAppendSync = "wal.append_sync"
	// SiteWALSegmentRotate fires when the active WAL segment reaches its
	// size bound, before the next segment file is created — rotation
	// failing must fail the triggering append, not corrupt the log.
	SiteWALSegmentRotate = "wal.segment_rotate"
	// SiteWALReplayRecord fires once per record during startup replay,
	// after the checksum verified but before the batch is applied — a
	// poisoned record surfacing mid-recovery.
	SiteWALReplayRecord = "wal.replay_record"
	// SiteSnapshotWrite fires inside the server's WAL compaction while the
	// full-table snapshot is being staged; a fault here must leave the
	// previous snapshot authoritative and every segment in place.
	SiteSnapshotWrite = "server.snapshot_write"
)
