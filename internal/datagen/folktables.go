package datagen

import (
	"math"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
)

// occGroups lists the occupation taxonomy: supercategory → sub-occupations.
// Each leaf occupation has small support (≲ 2%), while supercategories like
// MGR reach ≈ 8%, so itemsets constraining occupation at s = 0.05 exist
// only at the supercategory level — the paper's Table IV finding.
var occGroups = []struct {
	group  string
	subs   []string
	weight float64
	effect float64 // additive income effect of the group (USD)
}{
	{"MGR", []string{"Financial Managers", "Sales Managers", "Operations Managers", "Marketing Managers"}, 0.08, 52_000},
	{"MED", []string{"Physicians", "Dentists", "Registered Nurses", "Pharmacists"}, 0.07, 48_000},
	{"CMM", []string{"Software Developers", "Systems Analysts", "Network Admins"}, 0.07, 42_000},
	{"FIN", []string{"Accountants", "Financial Analysts"}, 0.05, 30_000},
	{"ENG", []string{"Civil Engineers", "Mechanical Engineers", "Electrical Engineers"}, 0.05, 36_000},
	{"EDU", []string{"Elementary Teachers", "Secondary Teachers", "Postsecondary Teachers"}, 0.08, 8_000},
	{"SAL", []string{"Retail Salespersons", "Sales Reps", "Cashiers"}, 0.12, 2_000},
	{"OFF", []string{"Secretaries", "Clerks", "Receptionists"}, 0.12, -2_000},
	{"CON", []string{"Carpenters", "Electricians", "Laborers"}, 0.08, 4_000},
	{"TRN", []string{"Truck Drivers", "Delivery Drivers"}, 0.07, -1_000},
	{"SRV", []string{"Cooks", "Waiters", "Janitors", "Home Health Aides"}, 0.14, -9_000},
	{"PRT", []string{"Police Officers", "Firefighters"}, 0.04, 12_000},
	{"SCI", []string{"Biologists", "Chemists"}, 0.03, 25_000},
}

// pobGroups is the geographic place-of-birth taxonomy (region → place).
var pobGroups = []struct {
	region string
	places []string
	weight float64
}{
	{"US", []string{"California", "New York", "Texas", "Florida", "Other State"}, 0.62},
	{"LATAM", []string{"Mexico", "El Salvador", "Guatemala"}, 0.16},
	{"ASIA", []string{"China", "India", "Philippines", "Vietnam"}, 0.14},
	{"EU", []string{"Germany", "United Kingdom", "Italy"}, 0.05},
	{"AFR", []string{"Nigeria", "Ethiopia"}, 0.03},
}

var schlLevels = []string{"No HS", "HS diploma", "Some college", "Bachelor", "Master", "Prof beyond bachelor", "Doctorate"}
var schlWeights = []float64{0.11, 0.26, 0.28, 0.21, 0.09, 0.03, 0.02}
var schlEffect = map[string]float64{
	"No HS": -12_000, "HS diploma": 0, "Some college": 6_000, "Bachelor": 28_000,
	"Master": 42_000, "Prof beyond bachelor": 95_000, "Doctorate": 70_000,
}

// Folktables generates the folktables analog (income task, CA 2018 shape):
// 195,556 instances, continuous AGEP (age) and WKHP (weekly work hours),
// eight categorical attributes including the taxonomic OCCP (occupation)
// and POBP (place of birth), and a numeric income target whose divergence
// is explored directly. Income carries the interactions the paper surfaces:
// older male managers working long hours earn far above the mean.
func Folktables(cfg Config) Regression {
	n := cfg.n(195_556)
	r := rand.New(rand.NewSource(cfg.Seed))

	agep := make([]float64, n)
	wkhp := make([]float64, n)
	schl := make([]string, n)
	mar := make([]string, n)
	sex := make([]string, n)
	rac := make([]string, n)
	occp := make([]string, n)
	pobp := make([]string, n)
	cow := make([]string, n)
	relp := make([]string, n)
	income := make([]float64, n)

	occNames := make([]string, 0, 40)
	occWeights := make([]float64, 0, 40)
	occEffect := map[string]float64{}
	occGroupOf := map[string]string{}
	for _, g := range occGroups {
		per := g.weight / float64(len(g.subs))
		for _, s := range g.subs {
			name := g.group + "-" + s
			occNames = append(occNames, name)
			occWeights = append(occWeights, per)
			occEffect[name] = g.effect
			occGroupOf[name] = g.group
		}
	}
	pobNames := make([]string, 0, 20)
	pobWeights := make([]float64, 0, 20)
	for _, g := range pobGroups {
		per := g.weight / float64(len(g.places))
		for _, p := range g.places {
			pobNames = append(pobNames, g.region+"-"+p)
			pobWeights = append(pobWeights, per)
		}
	}

	for i := 0; i < n; i++ {
		agep[i] = math.Round(truncNorm(r, 43, 14, 18, 90))
		schl[i] = pick(r, schlLevels, schlWeights)
		sex[i] = pick(r, []string{"Male", "Female"}, []float64{0.52, 0.48})
		rac[i] = pick(r, []string{"White", "Black", "Asian", "Other"}, []float64{0.58, 0.07, 0.17, 0.18})
		mar[i] = pick(r, []string{"Married", "Never married", "Divorced", "Widowed"},
			[]float64{0.48, 0.36, 0.12, 0.04})
		occp[i] = pick(r, occNames, occWeights)
		// Managers skew male and older, producing the correlated subgroup
		// structure of Table IV.
		if occGroupOf[occp[i]] == "MGR" {
			if sex[i] == "Female" && r.Float64() < 0.35 {
				sex[i] = "Male"
			}
			if agep[i] < 35 && r.Float64() < 0.5 {
				agep[i] = math.Round(truncNorm(r, 48, 9, 35, 70))
			}
		}
		pobp[i] = pick(r, pobNames, pobWeights)
		cow[i] = pick(r, []string{"Private", "Government", "Self-employed", "Nonprofit"},
			[]float64{0.67, 0.15, 0.11, 0.07})
		relp[i] = pick(r, []string{"Householder", "Spouse", "Child", "Other"},
			[]float64{0.42, 0.25, 0.18, 0.15})

		// Work hours: mostly full time; managers and professionals overwork.
		switch {
		case r.Float64() < 0.18:
			wkhp[i] = math.Round(clamp(22+8*r.NormFloat64(), 1, 39))
		default:
			wkhp[i] = math.Round(clamp(40+6*r.NormFloat64(), 20, 99))
		}
		grp := occGroupOf[occp[i]]
		if grp == "MGR" || grp == "MED" || schl[i] == "Prof beyond bachelor" {
			wkhp[i] = math.Round(clamp(wkhp[i]+8+6*r.Float64(), 20, 99))
		}

		// Income model with the paper's interactions.
		exp := math.Min(agep[i], 62) - 22
		if exp < 0 {
			exp = 0
		}
		base := 18_000 +
			schlEffect[schl[i]] +
			occEffect[occp[i]] +
			1_000*exp +
			900*(wkhp[i]-40)
		if sex[i] == "Male" {
			base += 9_000
			if grp == "MGR" && agep[i] >= 35 {
				base += 55_000 // senior male managers: the Table IV subgroup
			}
		}
		if grp == "MGR" && wkhp[i] >= 44 {
			base += 25_000
		}
		if schl[i] == "Prof beyond bachelor" && wkhp[i] >= 40 {
			base += 60_000
		}
		if mar[i] == "Married" {
			base += 6_000
		}
		income[i] = math.Max(0, base*math.Exp(0.35*r.NormFloat64()))
	}

	tab := dataset.NewBuilder().
		AddFloat("AGEP", agep).
		AddFloat("WKHP", wkhp).
		AddCategorical("SCHL", schl).
		AddCategorical("MAR", mar).
		AddCategorical("SEX", sex).
		AddCategorical("RAC", rac).
		AddCategorical("OCCP", occp).
		AddCategorical("POBP", pobp).
		AddCategorical("COW", cow).
		AddCategorical("RELP", relp).
		MustBuild()
	return Regression{Table: tab, Target: income}
}

// FolktablesTaxonomies returns the OCCP and POBP item hierarchies for a
// folktables table: occupations grouped by supercategory prefix, places of
// birth by region prefix (the paper's §VI-A categorical hierarchies).
func FolktablesTaxonomies(t *dataset.Table) []*hierarchy.Hierarchy {
	prefix := func(level string) []string {
		return []string{strings.SplitN(level, "-", 2)[0]}
	}
	return []*hierarchy.Hierarchy{
		hierarchy.PathTaxonomy(t, "OCCP", prefix),
		hierarchy.PathTaxonomy(t, "POBP", prefix),
	}
}
