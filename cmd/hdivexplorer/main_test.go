package main

import (
	"os"
	"path/filepath"
	"testing"

	hdiv "repro"
)

func sampleTable(t *testing.T) *hdiv.Table {
	t.Helper()
	return hdiv.NewTableBuilder().
		AddFloat("x", []float64{1, 0, 2, 0}).
		AddCategorical("flag", []string{"true", "false", "YES", "no"}).
		AddCategorical("g", []string{"a", "b", "a", "b"}).
		MustBuild()
}

func TestBoolColumnNumeric(t *testing.T) {
	tab := sampleTable(t)
	got, err := boolColumn(tab, "x")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boolColumn(x) = %v", got)
		}
	}
}

func TestBoolColumnCategorical(t *testing.T) {
	tab := sampleTable(t)
	got, err := boolColumn(tab, "flag")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boolColumn(flag) = %v", got)
		}
	}
}

func TestBoolColumnErrors(t *testing.T) {
	tab := sampleTable(t)
	if _, err := boolColumn(tab, "missing"); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := boolColumn(tab, "g"); err == nil {
		t.Error("non-boolean levels should fail")
	}
}

func TestBuildOutcome(t *testing.T) {
	tab := hdiv.NewTableBuilder().
		AddFloat("income", []float64{10, 20, 30}).
		AddCategorical("y", []string{"true", "false", "true"}).
		AddCategorical("p", []string{"true", "true", "false"}).
		MustBuild()

	o, excl, err := buildOutcome(tab, "numeric", "", "", "income")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "income" || len(excl) != 1 || excl[0] != "income" {
		t.Errorf("numeric outcome wrong: %v %v", o.Name, excl)
	}

	for _, stat := range []string{"fpr", "fnr", "error", "accuracy"} {
		o, excl, err := buildOutcome(tab, stat, "y", "p", "")
		if err != nil {
			t.Fatalf("%s: %v", stat, err)
		}
		if o == nil || len(excl) != 2 {
			t.Errorf("%s: outcome/excludes wrong", stat)
		}
	}

	if _, _, err := buildOutcome(tab, "numeric", "", "", ""); err == nil {
		t.Error("numeric without target should fail")
	}
	if _, _, err := buildOutcome(tab, "numeric", "", "", "nope"); err == nil {
		t.Error("numeric with missing target should fail")
	}
	if _, _, err := buildOutcome(tab, "fpr", "", "", ""); err == nil {
		t.Error("fpr without labels should fail")
	}
	if _, _, err := buildOutcome(tab, "wat", "y", "p", ""); err == nil {
		t.Error("unknown stat should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Build a CSV with a planted anomaly and run the full CLI path.
	n := 600
	x := make([]float64, n)
	y := make([]string, n)
	p := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 100)
		y[i] = "false"
		if i%2 == 0 {
			y[i] = "true"
		}
		p[i] = y[i]
		if x[i] > 80 { // mispredict the tail
			if p[i] == "true" {
				p[i] = "false"
			} else {
				p[i] = "true"
			}
		}
	}
	tab := hdiv.NewTableBuilder().
		AddFloat("x", x).
		AddCategorical("y", y).
		AddCategorical("p", p).
		MustBuild()
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}

	// Silence stdout during run.
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() { os.Stdout = old }()

	if err := run(path, "y", "p", "", "error", "divergence", "hierarchical", "fpgrowth", "text",
		0.05, 0.1, 0, false, 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "y", "p", "", "error", "entropy", "base", "apriori", "text",
		0.05, 0.1, 2, true, 2, 5, 2); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"csv", "json"} {
		if err := run(path, "y", "p", "", "error", "divergence", "hierarchical", "fpgrowth", format,
			0.05, 0.1, 0, false, 0, 5, 0); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}

	// Error paths.
	if err := run("", "y", "p", "", "error", "divergence", "hierarchical", "fpgrowth", "text", 0.05, 0.1, 0, false, 0, 5, 0); err == nil {
		t.Error("missing -data should fail")
	}
	if err := run(path, "y", "p", "", "error", "nope", "hierarchical", "fpgrowth", "text", 0.05, 0.1, 0, false, 0, 5, 0); err == nil {
		t.Error("bad criterion should fail")
	}
	if err := run(path, "y", "p", "", "error", "divergence", "nope", "fpgrowth", "text", 0.05, 0.1, 0, false, 0, 5, 0); err == nil {
		t.Error("bad mode should fail")
	}
	if err := run(path, "y", "p", "", "error", "divergence", "hierarchical", "nope", "text", 0.05, 0.1, 0, false, 0, 5, 0); err == nil {
		t.Error("bad algorithm should fail")
	}
	if err := run(path, "y", "p", "", "error", "divergence", "hierarchical", "fpgrowth", "nope", 0.05, 0.1, 0, false, 0, 5, 0); err == nil {
		t.Error("bad format should fail")
	}
	if err := run(path+".missing", "y", "p", "", "error", "divergence", "hierarchical", "fpgrowth", "text", 0.05, 0.1, 0, false, 0, 5, 0); err == nil {
		t.Error("missing file should fail")
	}
}
