// Injected-anomaly recovery: reproduce the paper's synthetic-peak study
// (§VI-C) and the baseline comparison (§VI-G).
//
// A model's error rate peaks around the point [0, 1, 2] of a 3-attribute
// space. Recovering the anomaly requires constraining all three attributes
// at once — which the fixed-discretization explorers cannot afford at a
// meaningful support threshold, while hierarchical exploration spends its
// "selectivity budget" across attributes by picking coarser intervals.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"

	hdiv "repro"
	"repro/internal/datagen"
	"repro/internal/fpm"
	"repro/internal/slicefinder"
	"repro/internal/sliceline"
)

func main() {
	d := datagen.SyntheticPeak(datagen.Config{Seed: 1})
	o := hdiv.ErrorRate(d.Actual, d.Predicted)
	fmt.Printf("points: %d, overall error rate: %.3f, anomaly injected at (0, 1, 2)\n\n",
		d.Table.NumRows(), o.GlobalMean())

	// Base vs hierarchical at two support thresholds (the paper's Fig. 5).
	for _, s := range []float64{0.05, 0.025} {
		for _, mode := range []hdiv.Mode{hdiv.Base, hdiv.Hierarchical} {
			rep, err := hdiv.Pipeline(d.Table, o, hdiv.PipelineOptions{
				TreeSupport: 0.1, MinSupport: s, Mode: mode,
			})
			if err != nil {
				log.Fatal(err)
			}
			top := rep.Top()
			fmt.Printf("s=%.3f %-13s Δerror=%+.3f sup=%.3f attrs=%d  {%s}\n",
				s, mode, top.Divergence, top.Support, len(top.Itemset), top.Itemset)
		}
	}

	// Baselines on the same leaf items (the paper's §VI-G).
	hs, err := hdiv.TreeSet(d.Table, o, hdiv.TreeOptions{MinSupport: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	u := fpm.BaseUniverse(d.Table, hs, o)

	fmt.Println("\nSlice Finder (effect-size search, no support control):")
	for _, thr := range []float64{0.4, 1.0} {
		slices := slicefinder.Search(u, o, slicefinder.Options{EffectSize: thr})
		if len(slices) == 0 {
			fmt.Printf("  T=%.1f: no slice found\n", thr)
			continue
		}
		top := slices[0]
		fmt.Printf("  T=%.1f: {%s} sup=%.4f eff=%.2f\n", thr, top.Itemset, top.Support, top.EffectSize)
	}
	fmt.Println("  → default T stops at the first, coarser problematic slice; high T returns a sliver")

	fmt.Println("\nSliceLine (α-weighted slice scoring, leaf items):")
	slices, err := sliceline.TopK(u, o, sliceline.Options{K: 1, MinSupport: 0.05, Alpha: 0.99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best: {%s} err=%.3f sup=%.3f\n", slices[0].Itemset, slices[0].AvgError, slices[0].Support)
	fmt.Println("  → matches base DivExplorer: fixed discretization is the shared ceiling")
}
