// Command checktrace validates observability exports; it is the
// assertion half of `make smoke` and the CI daemon smoke step.
//
// With a positional argument it checks a -trace-json snapshot: the file
// must be parseable JSON whose spans cover the four pipeline stages
// (parse, discretize, mine, rank) and whose counters include the mining
// pruning statistics. With -chrome it structurally validates a
// Chrome/Perfetto trace_event file: balanced B/E events per track,
// monotonic timestamps, at least one duration event. Both may be given
// in one invocation.
//
//	checktrace trace.json
//	checktrace -chrome chrome.json
//	checktrace -chrome chrome.json trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	chrome := flag.String("chrome", "", "Chrome trace_event JSON file to validate")
	flag.Parse()
	args := flag.Args()
	if (len(args) != 1 && *chrome == "") || len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: checktrace [-chrome chrome.json] [trace.json]")
		os.Exit(2)
	}
	if len(args) == 1 {
		if err := check(args[0]); err != nil {
			fmt.Fprintln(os.Stderr, "checktrace:", err)
			os.Exit(1)
		}
	}
	if *chrome != "" {
		if err := checkChrome(*chrome); err != nil {
			fmt.Fprintln(os.Stderr, "checktrace:", err)
			os.Exit(1)
		}
	}
}

func check(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := obs.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, name := range []string{
		obs.SpanReadCSV, obs.SpanCSVParse, obs.SpanDiscretize,
		obs.SpanExplore, obs.SpanMine, obs.SpanRank,
	} {
		if tr.Span(name) == nil {
			return fmt.Errorf("%s: missing span %q", path, name)
		}
	}
	for _, name := range []string{
		obs.CtrRows, obs.CtrCandidates, obs.CtrPrunedSupport,
		obs.CtrPrunedPolarity, obs.CtrItemsetsEmitted,
	} {
		if _, ok := tr.Counters[name]; !ok {
			return fmt.Errorf("%s: missing counter %q", path, name)
		}
	}
	fmt.Printf("%s: ok (%d spans, %d counters)\n", path, len(tr.Spans), len(tr.Counters))
	return nil
}

func checkChrome(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := obs.ValidateChromeTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: ok (%d trace events)\n", path, n)
	return nil
}
