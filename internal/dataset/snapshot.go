package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary full-table snapshot format, the compaction anchor of the
// write-ahead log (DESIGN §14). Layout, all integers little-endian:
//
//	magic   "HDSNAP01"                     8 bytes
//	epoch   uint64
//	nrows   uint64
//	ncols   uint32
//	per column:
//	  kind    uint8   (0 continuous, 1 categorical)
//	  name    uint32 length + bytes
//	  continuous:   nrows × float64 (IEEE 754 bits)
//	  categorical:  uint32 nlevels, nlevels × (uint32 length + bytes),
//	                nrows × uint32 codes
//	crc     uint32 CRC32C over everything above
//
// A snapshot whose checksum fails decodes to an error; recovery then
// falls back to an older snapshot or the as-loaded table.

var snapshotMagic = [8]byte{'H', 'D', 'S', 'N', 'A', 'P', '0', '1'}

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, snapCastagnoli, p[:n])
	return n, err
}

// EncodeSnapshot writes t (at the given epoch) in the snapshot format.
func EncodeSnapshot(w io.Writer, t *Table, epoch uint64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("dataset: encode snapshot: %w", err)
	}
	var u64 [8]byte
	var u32 [4]byte
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := cw.Write(u64[:])
		return err
	}
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := cw.Write(u32[:])
		return err
	}
	putStr := func(s string) error {
		if err := putU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}
	if err := putU64(epoch); err != nil {
		return err
	}
	if err := putU64(uint64(t.nrows)); err != nil {
		return err
	}
	if err := putU32(uint32(len(t.cols))); err != nil {
		return err
	}
	for i := range t.cols {
		c := &t.cols[i]
		kind := byte(0)
		if c.field.Kind == Categorical {
			kind = 1
		}
		if _, err := cw.Write([]byte{kind}); err != nil {
			return err
		}
		if err := putStr(c.field.Name); err != nil {
			return err
		}
		if c.field.Kind == Continuous {
			for _, f := range c.floats {
				if err := putU64(math.Float64bits(f)); err != nil {
					return err
				}
			}
			continue
		}
		if err := putU32(uint32(len(c.levels))); err != nil {
			return err
		}
		for _, l := range c.levels {
			if err := putStr(l); err != nil {
				return err
			}
		}
		for _, code := range c.codes {
			if err := putU32(uint32(code)); err != nil {
				return err
			}
		}
	}
	binary.LittleEndian.PutUint32(u32[:], cw.crc)
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeSnapshot reads a snapshot back into a table and its epoch,
// verifying the trailing checksum before trusting any field.
func DecodeSnapshot(r io.Reader) (*Table, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: read snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+8+8+4+4 {
		return nil, 0, fmt.Errorf("dataset: snapshot too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, snapCastagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, 0, fmt.Errorf("dataset: snapshot checksum mismatch (%08x != %08x)", got, want)
	}
	if string(body[:8]) != string(snapshotMagic[:]) {
		return nil, 0, fmt.Errorf("dataset: bad snapshot magic %q", body[:8])
	}
	pos := 8
	need := func(n int) error {
		if len(body)-pos < n {
			return fmt.Errorf("dataset: snapshot truncated at offset %d", pos)
		}
		return nil
	}
	getU64 := func() (uint64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		return v, nil
	}
	getU32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := getU32()
		if err != nil {
			return "", err
		}
		if err := need(int(n)); err != nil {
			return "", err
		}
		s := string(body[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	epoch, err := getU64()
	if err != nil {
		return nil, 0, err
	}
	nrows64, err := getU64()
	if err != nil {
		return nil, 0, err
	}
	// The checksum already passed, so these bounds only guard against a
	// snapshot from a different format revision.
	if nrows64 > uint64(len(body)) {
		return nil, 0, fmt.Errorf("dataset: snapshot claims %d rows in %d bytes", nrows64, len(body))
	}
	nrows := int(nrows64)
	ncols, err := getU32()
	if err != nil {
		return nil, 0, err
	}
	b := NewBuilder()
	for ci := 0; ci < int(ncols); ci++ {
		if err := need(1); err != nil {
			return nil, 0, err
		}
		kind := body[pos]
		pos++
		name, err := getStr()
		if err != nil {
			return nil, 0, err
		}
		switch kind {
		case 0:
			floats := make([]float64, nrows)
			for i := range floats {
				bits, err := getU64()
				if err != nil {
					return nil, 0, err
				}
				floats[i] = math.Float64frombits(bits)
			}
			b.AddFloat(name, floats)
		case 1:
			nlev, err := getU32()
			if err != nil {
				return nil, 0, err
			}
			if uint64(nlev) > uint64(len(body)) {
				return nil, 0, fmt.Errorf("dataset: snapshot claims %d levels in %d bytes", nlev, len(body))
			}
			levels := make([]string, nlev)
			for i := range levels {
				if levels[i], err = getStr(); err != nil {
					return nil, 0, err
				}
			}
			codes := make([]int, nrows)
			for i := range codes {
				c, err := getU32()
				if err != nil {
					return nil, 0, err
				}
				if int(c) >= len(levels) {
					return nil, 0, fmt.Errorf("dataset: snapshot code %d out of dictionary (%d levels)", c, len(levels))
				}
				codes[i] = int(c)
			}
			b.AddCategoricalCodes(name, codes, levels)
		default:
			return nil, 0, fmt.Errorf("dataset: snapshot column kind %d unknown", kind)
		}
	}
	if pos != len(body) {
		return nil, 0, fmt.Errorf("dataset: %d trailing snapshot bytes", len(body)-pos)
	}
	tab, err := b.Build()
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: rebuild snapshot table: %w", err)
	}
	return tab, epoch, nil
}

// NewVersionedAt wraps t as the given epoch instead of 1 — the recovery
// constructor: a decoded snapshot resumes at its recorded epoch, then
// WAL replay advances it record by record.
func NewVersionedAt(t *Table, epoch uint64) *Versioned {
	if epoch < 1 {
		epoch = 1
	}
	v := NewVersioned(t)
	v.epoch = epoch
	return v
}

// AppendWith is Append with a durability hook: after the batch
// validates and the next epoch is known, but before any column is
// touched, durable(nextEpoch) runs inside the critical section. If it
// fails (e.g. the write-ahead record cannot be buffered) the append
// aborts with the epoch unchanged — the memory image never runs ahead
// of what the log can replay. durable must not call back into v.
func (v *Versioned) AppendWith(b *Batch, durable func(epoch uint64) error) (epoch uint64, total int, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.validate(b); err != nil {
		return v.epoch, v.nrows, err
	}
	if durable != nil {
		if err := durable(v.epoch + 1); err != nil {
			return v.epoch, v.nrows, err
		}
	}
	v.applyLocked(b)
	return v.epoch, v.nrows, nil
}
