package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseSLO(t *testing.T) {
	cfg, err := ParseSLO("p99=250ms,p999=1s,availability=99.9,short=5s,long=30s,epoch=500ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Latency) != 2 {
		t.Fatalf("latency objectives = %+v, want 2", cfg.Latency)
	}
	// Sorted by quantile ascending.
	if cfg.Latency[0].Quantile != 0.99 || cfg.Latency[0].Target != 250*time.Millisecond {
		t.Errorf("objective 0 = %+v", cfg.Latency[0])
	}
	if cfg.Latency[1].Quantile != 0.999 || cfg.Latency[1].Target != time.Second {
		t.Errorf("objective 1 = %+v", cfg.Latency[1])
	}
	if cfg.Latency[0].Name() != "p99" || cfg.Latency[1].Name() != "p999" {
		t.Errorf("names = %q, %q", cfg.Latency[0].Name(), cfg.Latency[1].Name())
	}
	if cfg.Availability != 99.9 {
		t.Errorf("availability = %g", cfg.Availability)
	}
	if cfg.ShortWindow != 5*time.Second || cfg.LongWindow != 30*time.Second || cfg.Epoch != 500*time.Millisecond {
		t.Errorf("windows = %v/%v epoch %v", cfg.ShortWindow, cfg.LongWindow, cfg.Epoch)
	}
	if got := cfg.slowCaptureThreshold(); got != 250*time.Millisecond {
		t.Errorf("slowCaptureThreshold = %v, want the tightest target", got)
	}

	if cfg, err := ParseSLO(""); err != nil || len(cfg.Latency) != 0 {
		t.Errorf("empty spec = %+v, %v", cfg, err)
	}
	for _, bad := range []string{
		"p99",              // no value
		"p99=fast",         // not a duration
		"p5=10ms",          // single digit: quantile ambiguous
		"p00=10ms",         // quantile 0
		"q99=10ms",         // unknown key
		"availability=101", // out of range
		"availability=0",
		"short=-1s",
		"p99=250ms,,",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestSLOConfigNormalize(t *testing.T) {
	var cfg SLOConfig
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Epoch != time.Second || cfg.ShortWindow != 10*time.Second || cfg.LongWindow != 60*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
	bad := SLOConfig{ShortWindow: time.Minute, LongWindow: time.Second}
	if err := bad.normalize(); err == nil {
		t.Error("short > long accepted")
	}
	huge := SLOConfig{Epoch: time.Millisecond, LongWindow: time.Hour}
	if err := huge.normalize(); err == nil {
		t.Error("3.6M-slot ring accepted")
	}
}

// TestSLOBurnRateCrossesOne is the acceptance-criterion integration test:
// a server declaring an unattainable latency objective (p99 ≤ 1ns) is
// driven with real traffic, and GET /v1/slo reports the error-budget burn
// rate crossing 1.0 with the objective marked violated.
func TestSLOBurnRateCrossesOne(t *testing.T) {
	slo, err := ParseSLO("p99=1ns,availability=99.9")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		SLO:      slo,
	})
	for i := 0; i < 30; i++ {
		rec := postExplore(t, s, ExploreRequest{Dataset: "anomaly", Actual: "y", Predicted: "p", Top: 3})
		if rec.Code != 200 {
			t.Fatalf("explore %d = %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /v1/slo = %d", rec.Code)
	}
	var st SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.OK {
		t.Error("overall ok = true with every request over the 1ns objective")
	}
	var explore *EndpointSLO
	for i := range st.Endpoints {
		if st.Endpoints[i].Endpoint == "explore" {
			explore = &st.Endpoints[i]
		}
	}
	if explore == nil {
		t.Fatalf("no explore endpoint in %+v", st.Endpoints)
	}
	if explore.Requests != 30 {
		t.Errorf("windowed explore requests = %d, want 30", explore.Requests)
	}
	var p99, avail *ObjectiveStatus
	for i := range explore.Objectives {
		switch explore.Objectives[i].Name {
		case "p99":
			p99 = &explore.Objectives[i]
		case "availability":
			avail = &explore.Objectives[i]
		}
	}
	if p99 == nil || avail == nil {
		t.Fatalf("objectives = %+v", explore.Objectives)
	}
	// Every request violates 1ns, so the burn is 1/0.01 = 100x budget.
	if p99.OK || p99.BurnLong <= 1 || p99.BurnShort <= 1 {
		t.Errorf("p99 = %+v, want burn rates over 1.0 and ok=false", p99)
	}
	if p99.BudgetRemaining != 0 {
		t.Errorf("p99 budget remaining = %g, want 0", p99.BudgetRemaining)
	}
	if p99.Violations != 30 || p99.Breaches != 30 {
		t.Errorf("p99 violations/breaches = %d/%d, want 30/30", p99.Violations, p99.Breaches)
	}
	// No 5xx was served, so the availability objective holds.
	if !avail.OK || avail.BurnLong != 0 || avail.BudgetRemaining != 1 {
		t.Errorf("availability = %+v, want clean", avail)
	}

	// The text rendering carries the same verdict.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo?format=text", nil))
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("text variant = %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	body := rec.Body.String()
	if !strings.Contains(body, "slo: VIOLATED") || !strings.Contains(body, "p99") {
		t.Errorf("text rendering:\n%s", body)
	}

	// The windowed families ride on /metrics with endpoint labels.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := rec.Body.String()
	for _, want := range []string{
		`server_window_requests{endpoint="explore"} 30`,
		`server_window_latency_seconds{endpoint="explore",quantile="0.99"}`,
		`server_slo_burn_rate{endpoint="explore",objective="p99",window="long"}`,
		`server_slo_budget_remaining{endpoint="explore",objective="p99"} 0`,
		"server_slo_breaches_explore_p99 30",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSLOWindowedNotLifetime pins the windowing contract: burn rates and
// violation counts come from the sliding windows, so they decay to zero
// once the violating traffic ages past the long window, while the
// lifetime breach counter keeps the history.
func TestSLOWindowedNotLifetime(t *testing.T) {
	var ns atomic.Int64
	cfg := SLOConfig{
		Latency:     []LatencyObjective{{Quantile: 0.99, Target: 10 * time.Millisecond}},
		ShortWindow: 2 * time.Second,
		LongWindow:  4 * time.Second,
		Epoch:       time.Second,
		now:         func() time.Time { return time.Unix(0, ns.Load()) },
	}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	e := newSLOEngine(cfg, tr)
	for i := 0; i < 20; i++ {
		e.observe("explore", 200, 50*time.Millisecond) // all violate 10ms
	}
	st := e.status()
	p99 := st.Endpoints[0].Objectives[0]
	if st.Endpoints[0].Endpoint != "explore" || p99.BurnLong <= 1 || p99.Violations != 20 {
		t.Fatalf("fresh violations not visible: %+v", st.Endpoints[0])
	}

	// Age the traffic out: advance past the long window entirely.
	ns.Add(int64(10 * time.Second))
	st = e.status()
	ep := st.Endpoints[0]
	p99 = ep.Objectives[0]
	if ep.Requests != 0 || p99.BurnLong != 0 || p99.BurnShort != 0 || p99.Violations != 0 {
		t.Errorf("windowed numbers did not age out: %+v", ep)
	}
	if !p99.OK || p99.BudgetRemaining != 1 {
		t.Errorf("aged-out objective not ok: %+v", p99)
	}
	if p99.Breaches != 20 {
		t.Errorf("lifetime breaches = %d, want 20 (history survives the window)", p99.Breaches)
	}
}

// TestSLOAvailabilityBurn drives 5xx and 429 answers through the engine
// and checks the availability objective burns on 5xx only (shed load is
// back-pressure, not an error) while both windows see the split.
func TestSLOAvailabilityBurn(t *testing.T) {
	cfg := SLOConfig{Availability: 99.0}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	e := newSLOEngine(cfg, obs.New())
	for i := 0; i < 90; i++ {
		e.observe("explore", 200, time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		e.observe("explore", 500, time.Millisecond)
		e.observe("explore", 429, time.Millisecond)
	}
	st := e.status()
	ep := st.Endpoints[0]
	if ep.Requests != 100 || ep.Errors != 5 || ep.Rejected != 5 {
		t.Fatalf("windowed split = %+v", ep)
	}
	avail := ep.Objectives[0]
	// 5% errors against a 1% budget: burning at 5x.
	if avail.Name != "availability" || avail.OK || avail.BurnLong < 4.9 || avail.BurnLong > 5.1 {
		t.Errorf("availability = %+v, want ~5x burn", avail)
	}
}

// TestSLOSlowThresholdAutoDerived checks the flight recorder's slow bar
// follows the tightest latency objective when -slow-threshold is left on
// auto, and stays at the explicit value otherwise.
func TestSLOSlowThresholdAutoDerived(t *testing.T) {
	slo, err := ParseSLO("p99=250ms,p95=2s")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		SLO:      slo,
	})
	if s.flight.threshold != 250*time.Millisecond {
		t.Errorf("auto slow threshold = %v, want 250ms (tightest objective)", s.flight.threshold)
	}
	s = newTestServer(t, Config{
		Datasets:      []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		SLO:           slo,
		SlowThreshold: 5 * time.Second,
	})
	if s.flight.threshold != 5*time.Second {
		t.Errorf("explicit slow threshold overridden: %v", s.flight.threshold)
	}
	s = newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	if s.flight.threshold != time.Second {
		t.Errorf("no-SLO auto slow threshold = %v, want 1s", s.flight.threshold)
	}
}

// TestSLOEndpointClassification pins the request-path attribution.
func TestSLOEndpointClassification(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/explore":       "explore",
		"/v1/explore/batch": "explore_batch",
		"/v1/progress":      "progress",
		"/v1/progress/abc":  "progress",
		"/metrics":          "metrics",
		"/v1/slo":           "slo",
		"/healthz":          "other",
		"/v1/datasets":      "other",
	} {
		if got := endpointClass(path); got != want {
			t.Errorf("endpointClass(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestSLONoObjectives checks the windowed surfaces stay live without any
// declared objective: /v1/slo serves quantiles and counts, reports ok,
// and lists no objectives.
func TestSLONoObjectives(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /v1/slo = %d", rec.Code)
	}
	var st SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.OK {
		t.Error("ok = false with no objectives declared")
	}
	for _, ep := range st.Endpoints {
		if len(ep.Objectives) != 0 {
			t.Errorf("endpoint %s grew objectives: %+v", ep.Endpoint, ep.Objectives)
		}
		if ep.Endpoint == "other" && ep.Requests != 1 {
			t.Errorf("healthz not attributed to other: %+v", ep)
		}
	}
}

// TestSLOObservesRecoveredPanic checks the middleware ordering: a
// panicking handler's recovery 500 is what the SLO engine records.
func TestSLOObservesRecoveredPanic(t *testing.T) {
	cfg := SLOConfig{Availability: 99.9}
	s := newTestServer(t, Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		SLO:      cfg,
	})
	s.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/boom", nil))
	if rec.Code != 500 {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	st := s.slo.status()
	for _, ep := range st.Endpoints {
		if ep.Endpoint == "other" {
			if ep.Errors != 1 {
				t.Errorf("recovered panic not counted as windowed 5xx: %+v", ep)
			}
			return
		}
	}
	t.Fatal("no other endpoint class")
}
