package hdivexplorer

import (
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
)

// Additional classifier statistics (see Outcome for semantics).
var (
	// TruePositiveRate builds the TPR (recall) outcome.
	TruePositiveRate = outcome.TruePositiveRate
	// TrueNegativeRate builds the TNR (specificity) outcome.
	TrueNegativeRate = outcome.TrueNegativeRate
	// Precision builds the positive-predictive-value outcome.
	Precision = outcome.Precision
	// FalseDiscoveryRate builds the FDR outcome (1 − precision).
	FalseDiscoveryRate = outcome.FalseDiscoveryRate
	// FalseOmissionRate builds the FOR outcome.
	FalseOmissionRate = outcome.FalseOmissionRate
	// PredictedPositiveRate builds the demographic-parity outcome.
	PredictedPositiveRate = outcome.PredictedPositiveRate
	// PositiveRate builds the base-rate outcome.
	PositiveRate = outcome.PositiveRate
	// FromBoolFunc builds a custom three-valued outcome o: D → {T, F, ⊥}.
	FromBoolFunc = outcome.FromBoolFunc
)

// Tristate is the value domain of FromBoolFunc outcome functions.
type Tristate = outcome.Tristate

// Tristate values for FromBoolFunc.
const (
	Bottom = outcome.Bottom
	False  = outcome.False
	True   = outcome.True
)

// ItemShapley attributes a subgroup's divergence to its individual items
// via exact Shapley values (they sum to the subgroup's divergence).
var ItemShapley = core.ItemShapley

// Hierarchy derivation from data.
var (
	// FDViolation measures how far attr → byAttr is from holding.
	FDViolation = hierarchy.FDViolation
	// FromFunctionalDependency derives an item hierarchy for attr by
	// grouping its levels under the byAttr values it determines
	// (e.g. city → state).
	FromFunctionalDependency = hierarchy.FromFunctionalDependency
	// IntervalHierarchyFromCuts builds a hierarchy from nested manual cut
	// layers.
	IntervalHierarchyFromCuts = hierarchy.IntervalHierarchyFromCuts
)

// EvaluateItemsets recomputes support, divergence and t-values for a fixed
// list of patterns on a (new) table without mining — the monitoring path.
// Categorical items are re-mapped onto the table's dictionary by level
// name.
var EvaluateItemsets = core.EvaluateItemsets

// DriftEntry is one pattern's change between two snapshot evaluations.
type DriftEntry = core.DriftEntry

// Drift pairs two EvaluateItemsets results over the same patterns and
// returns per-pattern divergence/support shifts, largest first.
var Drift = core.Drift

// Hierarchy persistence.
var (
	// MarshalHierarchySet encodes a hierarchy set as JSON so a
	// discretization can be reused across runs.
	MarshalHierarchySet = hierarchy.MarshalSetJSON
	// UnmarshalHierarchySet decodes a hierarchy set encoded by
	// MarshalHierarchySet.
	UnmarshalHierarchySet = hierarchy.UnmarshalSetJSON
)
