package engine

import (
	"sync"
	"testing"

	"repro/internal/bitvec"
)

// Concurrent Get/Put traffic from many goroutines must be race-free (the
// whole point of building on sync.Pool) and every dispensed buffer must
// have the right geometry and, for GetInts, arrive zeroed even when it was
// returned dirty. Run with -race for the real assertion.
func TestPoolConcurrentReuse(t *testing.T) {
	const rows = 1000
	pl := NewPool(NewPlan(rows, 4))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := pl.GetVector()
				if v.Len() != rows {
					t.Errorf("GetVector length %d, want %d", v.Len(), rows)
					return
				}
				v.Set(i % rows) // dirty it; the next user must overwrite anyway
				pl.PutVector(v)

				n := 10 + (g+i)%50
				s := pl.GetInts(n)
				if len(s) != n {
					t.Errorf("GetInts length %d, want %d", len(s), n)
					return
				}
				for j, x := range s {
					if x != 0 {
						t.Errorf("GetInts[%d] = %d, want zeroed", j, x)
						return
					}
					s[j] = j + 1 // dirty it for the next round
				}
				pl.PutInts(s)
			}
		}(g)
	}
	wg.Wait()
	if got := pl.Hits() + pl.Misses(); got != 8*200*2 {
		t.Fatalf("hits+misses = %d, want %d", got, 8*200*2)
	}
}

// Wrong-geometry vectors must be dropped, not recycled: a later Get must
// never dispense a vector of another run's length.
func TestPoolDropsWrongGeometry(t *testing.T) {
	pl := NewPool(NewPlan(128, 1))
	pl.PutVector(bitvec.New(64))
	pl.PutVector(nil)
	for i := 0; i < 10; i++ {
		if v := pl.GetVector(); v.Len() != 128 {
			t.Fatalf("dispensed vector of length %d, want 128", v.Len())
		}
	}
}

// NoteHit/NoteMiss must fold into the same counters the Gets use.
func TestPoolNoteCounters(t *testing.T) {
	pl := NewPool(NewPlan(10, 1))
	pl.NoteHit()
	pl.NoteHit()
	pl.NoteMiss()
	if pl.Hits() != 2 || pl.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", pl.Hits(), pl.Misses())
	}
}
