// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list              # list experiment IDs
//	experiments -run fig5          # one experiment
//	experiments -run all           # everything (DESIGN.md §3 index)
//	experiments -run all -full     # at the paper's dataset sizes
//
// Output is text: tables print the same rows the paper reports; figures
// print the series (one line per point) behind each plot.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment ID to run, or 'all'")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		seed  = flag.Int64("seed", 1, "generation/training seed")
		full  = flag.Bool("full", false, "use the paper's dataset sizes (slower)")
		trees = flag.Int("trees", 15, "random-forest size for the UCI analogs")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, FullScale: *full, ForestTrees: *trees}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		a, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("==== %s — %s (%v)\n%s\n", a.ID, a.Title, time.Since(start).Round(time.Millisecond), a.Text)
	}
}
