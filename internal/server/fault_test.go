package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fpm"
	"repro/internal/obs"
)

// leakCheck asserts the server holds no per-request state: every
// semaphore slot free, no in-flight gauge residue, no active registry
// entry. Run it after failure paths to prove containment released
// everything during unwinding.
func leakCheck(t *testing.T, s *Server) {
	t.Helper()
	if n := len(s.sem); n != 0 {
		t.Errorf("%d semaphore slots leaked", n)
	}
	if n := s.inFlight.Load(); n != 0 {
		t.Errorf("in-flight count leaked: %d", n)
	}
	if _, ok := s.requests.oldestActive(); ok {
		t.Error("request registry still holds an active entry")
	}
}

// TestFaultMinerPanicContained injects a panic into the mining hot path
// and checks the containment chain end to end: the request is answered
// 500, the panic is recovered and counted, no request state leaks, and
// the daemon keeps serving — the very next exploration succeeds.
func TestFaultMinerPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"}

	// Warm the cache so the panic lands inside mining, not the build.
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("warmup: %d %s", rec.Code, rec.Body.String())
	}
	before := runtime.NumGoroutine()

	if err := faultinject.Arm(faultinject.SiteCandidateBatch, "panic(injected miner panic)"); err != nil {
		t.Fatal(err)
	}
	rec := postExplore(t, s, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking exploration: status %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "injected miner panic") {
		t.Errorf("500 body does not name the panic: %q", rec.Body.String())
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("failed request lost its correlation ID")
	}
	leakCheck(t, s)
	snap := s.tracer.Snapshot()
	if snap.Counter(obs.CtrPanicsRecovered) < 1 {
		t.Error("miner panic recovery not counted")
	}

	faultinject.Reset()
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Errorf("daemon did not keep serving after panic: %d %s", rec.Code, rec.Body.String())
	}
	leakCheck(t, s)

	// Goroutine count settles back to the pre-fault baseline (generous
	// slack for the runtime's own background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+4 {
		t.Errorf("goroutines leaked: %d before the fault, %d after", before, n)
	}
}

// TestFaultHandlerPanicMiddleware drives the ServeHTTP recovery
// middleware directly with a panicking route: 500 naming the request,
// panic counted, liveness intact. http.ErrAbortHandler must pass
// through untouched — it is net/http's own control flow.
func TestFaultHandlerPanicMiddleware(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	s.mux.HandleFunc("GET /test/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	s.mux.HandleFunc("GET /test/abort", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/test/panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error (request") {
		t.Errorf("500 body = %q", rec.Body.String())
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrServerPanics); got != 1 {
		t.Errorf("server panics counter = %d, want 1", got)
	}

	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Error("http.ErrAbortHandler was swallowed by the recovery middleware")
			}
		}()
		s.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/test/abort", nil))
	}()

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("healthz after panics: %d", rec.Code)
	}
}

// TestFaultCacheFillErrorReleasesWaiters errors the universe build under
// concurrent identical requests: singleflight must hand every waiter the
// error, cache nothing, and let the next request rebuild cleanly.
func TestFaultCacheFillErrorReleasesWaiters(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, Config{
		Datasets:    []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		MaxInFlight: 16,
	})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"}

	if err := faultinject.Arm(faultinject.SiteCacheFill, "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	codes := make([]int, 8)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postExplore(t, s, req)
			codes[i] = rec.Code
			if !strings.Contains(rec.Body.String(), "disk gone") {
				t.Errorf("waiter %d: body %q does not carry the injected error", i, rec.Body.String())
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters not released after failed build")
	}
	for i, code := range codes {
		if code != http.StatusBadRequest {
			t.Errorf("waiter %d: status %d, want 400", i, code)
		}
	}
	if n := s.cache.len(); n != 0 {
		t.Errorf("failed build left %d cache entries", n)
	}
	leakCheck(t, s)

	// Disarmed, the same request rebuilds and succeeds — the failure was
	// never cached.
	faultinject.Reset()
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("retry after failed build: %d %s", rec.Code, rec.Body.String())
	}
	if n := s.cache.len(); n != 1 {
		t.Errorf("successful rebuild cached %d entries, want 1", n)
	}
}

// TestFaultCacheFillPanicContained panics the universe build, which runs
// on a detached goroutine: without containment this would kill the whole
// process. It must instead answer 500, cache nothing, and leave the
// daemon serving.
func TestFaultCacheFillPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"}

	if err := faultinject.Arm(faultinject.SiteCacheFill, "panic(build exploded)"); err != nil {
		t.Fatal(err)
	}
	rec := postExplore(t, s, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking build: status %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "build exploded") {
		t.Errorf("500 body = %q", rec.Body.String())
	}
	if n := s.cache.len(); n != 0 {
		t.Errorf("panicked build left %d cache entries", n)
	}
	leakCheck(t, s)

	faultinject.Reset()
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Errorf("daemon did not keep serving after build panic: %d %s", rec.Code, rec.Body.String())
	}
}

// TestFaultDiscretizeErrorNotCached errors the tree-discretization
// failpoint inside the universe build: the request fails, nothing is
// cached, and the next request rebuilds successfully.
func TestFaultDiscretizeErrorNotCached(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"}

	if err := faultinject.Arm(faultinject.SiteDiscretizeTree, "error(split storage lost)"); err != nil {
		t.Fatal(err)
	}
	rec := postExplore(t, s, req)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "split storage lost") {
		t.Fatalf("discretize fault: %d %s", rec.Code, rec.Body.String())
	}
	if n := s.cache.len(); n != 0 {
		t.Errorf("failed discretization left %d cache entries", n)
	}
	leakCheck(t, s)

	faultinject.Reset()
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Errorf("daemon did not keep serving after discretize fault: %d %s", rec.Code, rec.Body.String())
	}
}

// TestFaultCSVLoadFailsConstruction errors the CSV-load failpoint: a
// daemon booting against a faulty dataset source fails construction
// cleanly instead of serving a partial dataset set.
func TestFaultCSVLoadFailsConstruction(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	path := t.TempDir() + "/d.csv"
	if err := anomalyTable(t).WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.SiteCSVLoad, "error(io stalled)"); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Datasets: []DatasetConfig{{Name: "d", Path: path}}}); err == nil || !strings.Contains(err.Error(), "io stalled") {
		t.Fatalf("New with faulty CSV load: err = %v, want injected error", err)
	}
	faultinject.Reset()
	if _, err := New(Config{Datasets: []DatasetConfig{{Name: "d", Path: path}}}); err != nil {
		t.Fatalf("disarmed New failed: %v", err)
	}
}

// truncatedReply is the part of the exploration JSON reply the budget
// tests care about.
type truncatedReply struct {
	Truncated bool              `json:"truncated"`
	Exhausted string            `json:"exhausted"`
	Subgroups []json.RawMessage `json:"subgroups"`
}

// TestFaultBudgetTruncatedOverHTTP checks graceful degradation end to
// end: a budget-exhausted exploration answers 200 with the report
// flagged truncated (never an error), the truncation is counted, and the
// ranked prefix is byte-identical across workers/shards settings.
func TestFaultBudgetTruncatedOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		Budget:   fpm.Budget{MaxItemsets: 1},
	})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"}

	rec := postExplore(t, s, req)
	if rec.Code != 200 {
		t.Fatalf("budgeted exploration: status %d %s", rec.Code, rec.Body.String())
	}
	var rep truncatedReply
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Exhausted != fpm.ExhaustedItemsets {
		t.Fatalf("reply truncated=%v exhausted=%q, want true/%q", rep.Truncated, rep.Exhausted, fpm.ExhaustedItemsets)
	}
	if len(rep.Subgroups) == 0 {
		t.Error("truncated reply carries no ranked prefix")
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrServerTruncated); got != 1 {
		t.Errorf("truncated counter = %d, want 1", got)
	}

	// The truncated ranked prefix is deterministic: CSV replies across
	// workers/shards settings are byte-identical.
	csvReq := req
	csvReq.Format = "csv"
	var ref []byte
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			r := csvReq
			r.Workers, r.Shards = workers, shards
			rec := postExplore(t, s, r)
			if rec.Code != 200 {
				t.Fatalf("w%d/s%d: status %d %s", workers, shards, rec.Code, rec.Body.String())
			}
			if ref == nil {
				ref = rec.Body.Bytes()
				continue
			}
			if !bytes.Equal(rec.Body.Bytes(), ref) {
				t.Errorf("w%d/s%d: truncated CSV differs from w1/s1 reply", workers, shards)
			}
		}
	}
}

// TestFaultBudgetRequestTightening covers the per-request budget knob:
// a request can impose a budget on an unbudgeted server and tighten a
// configured one, but can never loosen it, and negative dimensions are
// rejected.
func TestFaultBudgetRequestTightening(t *testing.T) {
	unbudgeted := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
		Budget: &BudgetRequest{MaxItemsets: 1},
	}
	rec := postExplore(t, unbudgeted, req)
	if rec.Code != 200 {
		t.Fatalf("request budget: status %d %s", rec.Code, rec.Body.String())
	}
	var rep truncatedReply
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Exhausted != fpm.ExhaustedItemsets {
		t.Errorf("request budget ignored: truncated=%v exhausted=%q", rep.Truncated, rep.Exhausted)
	}

	// A request asking for more than the server allows still runs under
	// the server's (tighter) cap.
	budgeted := newTestServer(t, Config{
		Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		Budget:   fpm.Budget{MaxItemsets: 1},
	})
	wide := req
	wide.Budget = &BudgetRequest{MaxItemsets: 1 << 20}
	rec = postExplore(t, budgeted, wide)
	if rec.Code != 200 {
		t.Fatalf("loosening request: status %d %s", rec.Code, rec.Body.String())
	}
	rep = truncatedReply{}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("request loosened the server budget")
	}

	bad := req
	bad.Budget = &BudgetRequest{MaxCandidates: -1}
	if rec := postExplore(t, unbudgeted, bad); rec.Code != http.StatusBadRequest {
		t.Errorf("negative budget: status %d, want 400", rec.Code)
	}
}

// TestFaultUnbudgetedOmitsFlags pins the wire-compatibility contract:
// without a budget the JSON reply must not grow truncated/exhausted
// fields (omitempty keeps it byte-identical to earlier releases).
func TestFaultUnbudgetedOmitsFlags(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	rec := postExplore(t, s, ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p"})
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if body := rec.Body.String(); strings.Contains(body, `"truncated"`) || strings.Contains(body, `"exhausted"`) {
		t.Error("unbudgeted reply carries truncation fields")
	}
}

// TestReadyzDrainLifecycle covers the readiness satellite: ready while
// serving, 503 during drain while liveness and in-flight work continue.
func TestReadyzDrainLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 || rec.Body.String() != "ready\n" {
		t.Errorf("readyz = %d %q, want 200 ready", rec.Code, rec.Body.String())
	}

	s.StartDrain()
	s.StartDrain() // idempotent
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Body.String() != "draining\n" {
		t.Errorf("draining readyz = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("healthz during drain = %d, want 200", rec.Code)
	}
	if rec := postExplore(t, s, ExploreRequest{
		Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p",
	}); rec.Code != 200 {
		t.Errorf("exploration during drain = %d, want 200 (in-flight work must finish)", rec.Code)
	}
}

// TestRetryAfterEstimate pins the 429 Retry-After computation: the hint
// is the oldest in-flight exploration's residual timeout, rounded up,
// clamped to [1, ceil(timeout)] — and 1 when nothing is registered yet.
func TestRetryAfterEstimate(t *testing.T) {
	s := newTestServer(t, Config{
		Datasets:       []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}},
		RequestTimeout: 30 * time.Second,
	})
	now := time.Now()

	if got := s.retryAfter(now); got != 1 {
		t.Errorf("no active requests: Retry-After %d, want 1", got)
	}

	for _, tc := range []struct {
		elapsed time.Duration
		want    int
	}{
		{0, 30},                       // just admitted: full window
		{25 * time.Second, 5},         // mid-flight: the residual
		{29100 * time.Millisecond, 1}, // nearly done: rounded up from 900ms
		{40 * time.Second, 1},         // overdue: clamped to the floor
	} {
		st := s.requests.start("retry-test", "anomaly", obs.NewProgress())
		st.Started = now.Add(-tc.elapsed)
		if got := s.retryAfter(now); got != tc.want {
			t.Errorf("elapsed %v: Retry-After %d, want %d", tc.elapsed, got, tc.want)
		}
		s.requests.finish(st, nil, "done")
	}

	// Several in flight: the oldest one drives the estimate.
	a := s.requests.start("retry-a", "anomaly", obs.NewProgress())
	a.Started = now.Add(-20 * time.Second)
	b := s.requests.start("retry-b", "anomaly", obs.NewProgress())
	b.Started = now.Add(-5 * time.Second)
	if got := s.retryAfter(now); got != 10 {
		t.Errorf("two active: Retry-After %d, want 10 (oldest wins)", got)
	}
	s.requests.finish(a, nil, "done")
	s.requests.finish(b, nil, "done")
}
