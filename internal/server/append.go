package server

import (
	"io"
	"log/slog"
	"net/http"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/wal"
)

// appendReply is the POST /v1/datasets/{name}/rows response body.
type appendReply struct {
	Dataset   string `json:"dataset"`
	Epoch     uint64 `json:"epoch"`
	Rows      int    `json:"rows"`
	TotalRows int    `json:"total_rows"`
}

// handleAppend implements POST /v1/datasets/{name}/rows: append a batch of
// rows to a live dataset, bumping its epoch. The append is atomic — the
// body is parsed and schema-checked in full before any column grows, so a
// rejected batch (parse error, schema mismatch, injected fault) leaves the
// epoch and every snapshot untouched. Explorations in flight keep the
// snapshot they resolved; the next exploration sees the new epoch.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	s.tracer.Counter(obs.CtrServerRequestPrefix + "append").Add(1)
	name := r.PathValue("name")
	logger := obs.RequestLogger(s.logger, requestID(r))
	v, ok := s.tables[name]
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "reading append body: %v", err)
		return
	}
	// The parse failpoint models a batch that dies mid-decode; it must
	// reject the request before any state changes.
	if err := faultinject.Hit(faultinject.SiteAppendParse); err != nil {
		logger.Warn("append rejected", slog.String("dataset", name), slog.String("error", err.Error()))
		s.httpError(w, http.StatusBadRequest, "parsing append body: %v", err)
		return
	}
	batch, err := dataset.ParseBatch(body, v.Fields())
	if err != nil {
		logger.Warn("append rejected", slog.String("dataset", name), slog.String("error", err.Error()))
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Acknowledge-after-durable: the record is buffered into the WAL
	// inside the append's critical section (so log order equals epoch
	// order), then the sync policy is satisfied outside it (so
	// concurrent appends share one group-commit fsync). A WAL failure at
	// either point answers 5xx without acking — replay can reproduce
	// every batch the server ever answered 200 for.
	wlog := s.wals[name]
	var res wal.AppendResult
	var walErr error
	epoch, total, err := v.AppendWith(batch, func(epoch uint64) error {
		if wlog == nil {
			return nil
		}
		res, walErr = wlog.Append(epoch, body)
		return walErr
	})
	if err != nil {
		logger.Warn("append rejected", slog.String("dataset", name), slog.String("error", err.Error()))
		if walErr != nil {
			s.httpError(w, http.StatusInternalServerError, "append not durable: %v", err)
			return
		}
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if wlog != nil {
		if err := wlog.Commit(res.Off); err != nil {
			// The batch is applied in memory but its durability is unknown;
			// refusing the ack keeps the contract (the client must retry, and
			// replay-after-crash may or may not include this epoch — both
			// outcomes are consistent with "never acked").
			logger.Warn("append not durable", slog.String("dataset", name), slog.String("error", err.Error()))
			s.httpError(w, http.StatusInternalServerError, "append not durable: %v", err)
			return
		}
	}
	s.tracer.Counter(obs.CtrServerAppends).Add(1)
	s.tracer.Counter(obs.CtrServerAppendRows).Add(int64(batch.N))
	s.tracer.SetGauge(obs.GaugeServerEpochPrefix+name, float64(epoch))
	if h := s.history[name]; h != nil {
		t, e := v.Snapshot()
		h.note(e, t)
	}
	s.drift.noteEpoch(name)
	s.sweepRetention(name, epoch)
	if res.Rotated {
		s.maybeCompact(name)
	}
	logger.Info("append",
		slog.String("dataset", name),
		slog.Int("rows", batch.N),
		slog.Uint64("epoch", epoch),
		slog.Int("total_rows", total),
	)
	writeJSON(w, http.StatusOK, appendReply{Dataset: name, Epoch: epoch, Rows: batch.N, TotalRows: total})
}

// buildOrAppend is the universe-cache build function for a current-epoch
// miss: when a prior epoch of the same build is still cached and the
// appended rows pass the drift policy, the entry is grown incrementally
// (discretization cutpoints kept, item bitvecs extended by tail words);
// otherwise — large quantile drift, new categorical levels, no prior, or
// incremental maintenance disabled or failing — it is built from scratch.
// Either way the resulting entry is byte-identical for identical data, so
// the choice is purely a latency/throughput optimization.
func (s *Server) buildOrAppend(e *cacheEntry, p *exploreParams, tracer *obs.Tracer) error {
	key := p.key()
	prior := s.cache.prior(key)
	if prior != nil && s.rediscretizeDrift >= 0 && s.canAppend(prior.tab, p.tab) {
		if err := appendEntry(e, p.tab, key, prior); err == nil {
			s.tracer.Counter(obs.CtrServerUniverseIncremental).Add(1)
			return nil
		}
		// A failed incremental build (injected fault, representation edge
		// case) degrades to the full path instead of failing the request.
		// appendEntry assigns the entry's fields only on success, so no
		// partial state leaks into the rebuild.
	}
	if prior != nil {
		s.tracer.Counter(obs.CtrServerUniverseRediscretized).Add(1)
	}
	return buildEntry(e, p.tab, key, tracer)
}

// canAppend decides whether the new snapshot may reuse a prior entry's
// discretization: the old table must be a frozen prefix of the new one
// with unchanged categorical dictionaries (new level names force a
// rebuild — the cached hierarchies carry no items for them), and every
// continuous column's appended batch must sit within the configured
// Kolmogorov–Smirnov drift of the rows before it (otherwise the cached
// cutpoints no longer reflect the data's quantile structure).
func (s *Server) canAppend(old, cur *dataset.Table) bool {
	oldN, newN := old.NumRows(), cur.NumRows()
	if newN < oldN {
		return false
	}
	for _, f := range cur.Fields() {
		if !old.HasColumn(f.Name) || old.KindOf(f.Name) != f.Kind {
			return false
		}
		if f.Kind == dataset.Categorical {
			if len(cur.Levels(f.Name)) != len(old.Levels(f.Name)) {
				return false
			}
			continue
		}
		vals := cur.Floats(f.Name)
		if discretize.KSDrift(vals[:oldN], vals[oldN:]) > s.rediscretizeDrift {
			return false
		}
	}
	return true
}
