package bitvec

import (
	"math/bits"
)

// Set is the read-only row-set contract shared by the dense Vector and the
// roaring-style Compressed representation. The engine data plane and both
// miners are written against this interface, so an item's representation is
// invisible to them.
//
// The *Range primitives address half-open word intervals [loWord, hiWord)
// of the underlying 64-bit word layout — the unit engine.Plan shards are
// expressed in. Every implementation must visit set bits in ascending index
// order, both within a word range and across the whole set: the float
// accumulations layered on top (AndMomentsRange) then see an identical
// addition order regardless of representation, which is what keeps ranked
// mining output byte-identical when compressed items engage.
//
// The dense operand u of the And* primitives is always a *Vector: validity
// masks and materialized subgroup row sets stay dense; only per-item
// universe bitsets are representation-selected.
type Set interface {
	// Len returns the number of rows (bits) covered.
	Len() int
	// Count returns the number of set bits.
	Count() int
	// NumWords returns the number of 64-bit words of the layout.
	NumWords() int
	// CountRange returns the popcount of the words in [loWord, hiWord).
	CountRange(loWord, hiWord int) int
	// AndCountRange returns the popcount of (set AND u) over the word range.
	AndCountRange(u *Vector, loWord, hiWord int) int
	// AndNotCountRange returns the popcount of (set AND NOT u) over the range.
	AndNotCountRange(u *Vector, loWord, hiWord int) int
	// AndMomentsRange accumulates count, Σvals[i] and Σvals[i]² over the set
	// bits of (set AND u) in the word range, in ascending index order.
	AndMomentsRange(u *Vector, vals []float64, loWord, hiWord int) (n int, sum, sumSq float64)
	// ForEach calls fn for every set bit in ascending order.
	ForEach(fn func(i int))
	// ForEachRange calls fn for every set bit in the word range, ascending.
	ForEachRange(loWord, hiWord int, fn func(i int))
	// AndInto stores (set AND u) into dst, overwriting every word of dst,
	// and returns dst. dst must have the same length and may alias u.
	AndInto(u, dst *Vector) *Vector
	// Dense returns a dense view of the set: the receiver itself for a
	// Vector, a freshly materialized Vector for a Compressed.
	Dense() *Vector
}

// Dense returns v itself; Vector is its own dense view.
func (v *Vector) Dense() *Vector { return v }

// Compile-time checks that both representations satisfy the contract.
var (
	_ Set = (*Vector)(nil)
	_ Set = (*Compressed)(nil)
)

// DenseCutoff is the density (set bits / length) at or below which Pack
// selects the compressed representation. 1/64 is the break-even point of
// the array container: at most one set bit per word means the dense words
// are ≥ 97% zero and a 2-byte array entry per bit beats an 8-byte word.
const DenseCutoff = 1.0 / 64

// Pack selects a representation for v by density: vectors with more than
// DenseCutoff of their bits set stay dense (word-parallel AND/popcount is
// unbeatable there), sparser ones are compressed. The caller keeps
// ownership of v; the compressed copy shares no storage with it.
func Pack(v *Vector) Set {
	if v.n == 0 {
		return v
	}
	if float64(v.Count()) > DenseCutoff*float64(v.n) {
		return v
	}
	return Compress(v)
}

// Container geometry: each container covers 2^16 bits = 1024 words, so a
// container index is a bit index >> 16 and container boundaries are always
// word-aligned (a shard's word range never splits a bit across containers).
const (
	containerBits  = 1 << 16
	containerWords = containerBits / wordBits
	// arrayMaxCard is the largest cardinality an array container may hold;
	// beyond it a bitmap (8 KiB) is smaller than the 2-byte-per-bit array.
	arrayMaxCard = containerBits / 16
)

// Container kinds.
const (
	cEmpty uint8 = iota
	cArray
	cBitmap
	cRun
)

// interval is one run of consecutive set bits within a container,
// inclusive on both ends (local bit offsets 0..65535).
type interval struct{ start, last uint16 }

// container is one 2^16-bit chunk of a Compressed set in its selected
// encoding. Exactly one of arr/words/runs is non-nil depending on kind;
// card caches the popcount.
type container struct {
	kind  uint8
	card  int32
	arr   []uint16   // cArray: sorted local bit offsets
	words []uint64   // cBitmap: dense words (possibly short in the last container)
	runs  []interval // cRun: sorted, disjoint, non-adjacent runs
}

// Compressed is an immutable roaring-style compressed bit set: a sequence
// of per-container encodings (array, bitmap or run), each chosen to
// minimize that container's footprint. It implements Set with the same
// ascending-order visit semantics as Vector; see the package comment for
// the determinism contract. Build one with Compress (or Pack).
type Compressed struct {
	n    int
	card int
	cs   []container
}

// Compress encodes v as a Compressed set, choosing per container the
// smallest of the three encodings. The result is independent of v.
func Compress(v *Vector) *Compressed {
	c := &Compressed{n: v.n}
	total := len(v.words)
	for base := 0; base < total; base += containerWords {
		hi := base + containerWords
		if hi > total {
			hi = total
		}
		ct := encodeContainer(v.words[base:hi])
		c.card += int(ct.card)
		c.cs = append(c.cs, ct)
	}
	return c
}

// encodeContainer picks the smallest encoding for one chunk of words.
func encodeContainer(chunk []uint64) container {
	card := 0
	nRuns := 0
	var prevMSB uint64
	for _, w := range chunk {
		card += bits.OnesCount64(w)
		// Run starts: set bits whose predecessor bit is clear; bits
		// continuing a run from the previous word are subtracted back out.
		nRuns += bits.OnesCount64(w &^ (w << 1))
		if prevMSB != 0 && w&1 != 0 {
			nRuns--
		}
		prevMSB = w >> 63
	}
	if card == 0 {
		return container{kind: cEmpty}
	}
	runBytes := nRuns * 4
	bmpBytes := len(chunk) * 8
	arrBytes := bmpBytes + 1 // array ineligible beyond arrayMaxCard
	if card <= arrayMaxCard {
		arrBytes = card * 2
	}
	switch {
	case runBytes < arrBytes && runBytes < bmpBytes:
		runs := make([]interval, 0, nRuns)
		prev, start := -2, -1
		forEachChunkBit(chunk, func(b int) {
			if b != prev+1 {
				if start >= 0 {
					runs = append(runs, interval{uint16(start), uint16(prev)})
				}
				start = b
			}
			prev = b
		})
		if start >= 0 {
			runs = append(runs, interval{uint16(start), uint16(prev)})
		}
		return container{kind: cRun, card: int32(card), runs: runs}
	case arrBytes <= bmpBytes:
		arr := make([]uint16, 0, card)
		forEachChunkBit(chunk, func(b int) { arr = append(arr, uint16(b)) })
		return container{kind: cArray, card: int32(card), arr: arr}
	default:
		words := make([]uint64, len(chunk))
		copy(words, chunk)
		return container{kind: cBitmap, card: int32(card), words: words}
	}
}

// forEachChunkBit visits the set bits of one word chunk in ascending order.
func forEachChunkBit(chunk []uint64, fn func(b int)) {
	for wi, w := range chunk {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Len returns the number of bits.
func (c *Compressed) Len() int { return c.n }

// Count returns the number of set bits (cached; O(1)).
func (c *Compressed) Count() int { return c.card }

// NumWords returns the number of 64-bit words of the dense layout.
func (c *Compressed) NumWords() int { return (c.n + wordBits - 1) / wordBits }

// containerSpan clips the word range [loWord, hiWord) to container ci,
// returning local word bounds [lw0, lw1) within the container (possibly
// empty) and the container's own word count.
func (c *Compressed) containerSpan(ci, loWord, hiWord int) (lw0, lw1 int) {
	base := ci * containerWords
	cw := c.NumWords() - base
	if cw > containerWords {
		cw = containerWords
	}
	lw0, lw1 = loWord-base, hiWord-base
	if lw0 < 0 {
		lw0 = 0
	}
	if lw1 > cw {
		lw1 = cw
	}
	return lw0, lw1
}

// forContainers invokes fn for every container overlapping [loWord,
// hiWord) with the clipped local word bounds, in ascending order.
func (c *Compressed) forContainers(loWord, hiWord int, fn func(ci int, ct *container, lw0, lw1 int)) {
	for ci := loWord / containerWords; ci < len(c.cs); ci++ {
		if ci*containerWords >= hiWord {
			break
		}
		lw0, lw1 := c.containerSpan(ci, loWord, hiWord)
		if lw0 >= lw1 {
			continue
		}
		fn(ci, &c.cs[ci], lw0, lw1)
	}
}

// arrBounds returns the index range [i0, i1) of arr entries falling in the
// local bit range [lw0*64, lw1*64).
func arrBounds(arr []uint16, lw0, lw1 int) (i0, i1 int) {
	lo, hi := lw0*wordBits, lw1*wordBits
	i0 = lowerBound(arr, lo)
	i1 = lowerBound(arr, hi)
	return i0, i1
}

// lowerBound returns the first index whose entry is ≥ b.
func lowerBound(arr []uint16, b int) int {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(arr[mid]) < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// maskFrom has bits [a, 64) set; maskUpTo has bits [0, b] set.
func maskFrom(a int) uint64 { return ^uint64(0) << uint(a) }
func maskUpTo(b int) uint64 {
	if b >= 63 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(b+1)) - 1
}

// clipRun clips an inclusive run [start, last] (local bits) to the local
// word range [lw0, lw1), reporting ok=false when the intersection is empty.
func clipRun(r interval, lw0, lw1 int) (rs, re int, ok bool) {
	rs, re = int(r.start), int(r.last)
	if lo := lw0 * wordBits; rs < lo {
		rs = lo
	}
	if hi := lw1*wordBits - 1; re > hi {
		re = hi
	}
	return rs, re, rs <= re
}

// CountRange returns the popcount of the words in [loWord, hiWord).
func (c *Compressed) CountRange(loWord, hiWord int) int {
	total := 0
	c.forContainers(loWord, hiWord, func(ci int, ct *container, lw0, lw1 int) {
		if lw0 == 0 && lw1 == c.wordsInContainer(ci) {
			total += int(ct.card)
			return
		}
		switch ct.kind {
		case cArray:
			i0, i1 := arrBounds(ct.arr, lw0, lw1)
			total += i1 - i0
		case cBitmap:
			for _, w := range ct.words[lw0:lw1] {
				total += bits.OnesCount64(w)
			}
		case cRun:
			for _, r := range ct.runs {
				if rs, re, ok := clipRun(r, lw0, lw1); ok {
					total += re - rs + 1
				}
			}
		}
	})
	return total
}

// wordsInContainer returns container ci's word count (short for the last).
func (c *Compressed) wordsInContainer(ci int) int {
	cw := c.NumWords() - ci*containerWords
	if cw > containerWords {
		cw = containerWords
	}
	return cw
}

// AndCountRange returns the popcount of (c AND u) over the word range.
func (c *Compressed) AndCountRange(u *Vector, loWord, hiWord int) int {
	c.mustMatch(u)
	total := 0
	c.forContainers(loWord, hiWord, func(ci int, ct *container, lw0, lw1 int) {
		base := ci * containerWords
		switch ct.kind {
		case cArray:
			i0, i1 := arrBounds(ct.arr, lw0, lw1)
			for _, b := range ct.arr[i0:i1] {
				if u.words[base+int(b)/wordBits]&(1<<uint(b%wordBits)) != 0 {
					total++
				}
			}
		case cBitmap:
			for lw := lw0; lw < lw1; lw++ {
				total += bits.OnesCount64(ct.words[lw] & u.words[base+lw])
			}
		case cRun:
			for _, r := range ct.runs {
				rs, re, ok := clipRun(r, lw0, lw1)
				if !ok {
					continue
				}
				total += andCountRunWords(u.words[base:], rs, re)
			}
		}
	})
	return total
}

// andCountRunWords counts u's set bits within the inclusive local bit
// range [rs, re], offset into uw (the container's slice of u's words).
func andCountRunWords(uw []uint64, rs, re int) int {
	w0, w1 := rs/wordBits, re/wordBits
	if w0 == w1 {
		return bits.OnesCount64(uw[w0] & maskFrom(rs%wordBits) & maskUpTo(re%wordBits))
	}
	n := bits.OnesCount64(uw[w0] & maskFrom(rs%wordBits))
	for w := w0 + 1; w < w1; w++ {
		n += bits.OnesCount64(uw[w])
	}
	return n + bits.OnesCount64(uw[w1]&maskUpTo(re%wordBits))
}

// AndNotCountRange returns the popcount of (c AND NOT u) over the range.
func (c *Compressed) AndNotCountRange(u *Vector, loWord, hiWord int) int {
	return c.CountRange(loWord, hiWord) - c.AndCountRange(u, loWord, hiWord)
}

// AndMomentsRange accumulates (count, Σvals, Σvals²) over the set bits of
// (c AND u) in the word range, visiting bits in ascending order so the
// float addition order matches the dense implementation exactly.
func (c *Compressed) AndMomentsRange(u *Vector, vals []float64, loWord, hiWord int) (n int, sum, sumSq float64) {
	c.mustMatch(u)
	if len(vals) < c.n {
		panic("bitvec: AndMomentsRange slice too short")
	}
	add := func(i int) {
		x := vals[i]
		n++
		sum += x
		sumSq += x * x
	}
	c.forContainers(loWord, hiWord, func(ci int, ct *container, lw0, lw1 int) {
		base := ci * containerWords
		bitBase := base * wordBits
		switch ct.kind {
		case cArray:
			i0, i1 := arrBounds(ct.arr, lw0, lw1)
			for _, b := range ct.arr[i0:i1] {
				if u.words[base+int(b)/wordBits]&(1<<uint(b%wordBits)) != 0 {
					add(bitBase + int(b))
				}
			}
		case cBitmap:
			for lw := lw0; lw < lw1; lw++ {
				w := ct.words[lw] & u.words[base+lw]
				wb := bitBase + lw*wordBits
				for w != 0 {
					add(wb + bits.TrailingZeros64(w))
					w &= w - 1
				}
			}
		case cRun:
			for _, r := range ct.runs {
				rs, re, ok := clipRun(r, lw0, lw1)
				if !ok {
					continue
				}
				w0, w1 := rs/wordBits, re/wordBits
				for wi := w0; wi <= w1; wi++ {
					w := u.words[base+wi]
					if wi == w0 {
						w &= maskFrom(rs % wordBits)
					}
					if wi == w1 {
						w &= maskUpTo(re % wordBits)
					}
					wb := bitBase + wi*wordBits
					for w != 0 {
						add(wb + bits.TrailingZeros64(w))
						w &= w - 1
					}
				}
			}
		}
	})
	return n, sum, sumSq
}

// ForEach calls fn for every set bit in ascending order.
func (c *Compressed) ForEach(fn func(i int)) {
	c.ForEachRange(0, c.NumWords(), fn)
}

// ForEachRange calls fn for every set bit in the word range, ascending.
func (c *Compressed) ForEachRange(loWord, hiWord int, fn func(i int)) {
	c.forContainers(loWord, hiWord, func(ci int, ct *container, lw0, lw1 int) {
		bitBase := ci * containerBits
		switch ct.kind {
		case cArray:
			i0, i1 := arrBounds(ct.arr, lw0, lw1)
			for _, b := range ct.arr[i0:i1] {
				fn(bitBase + int(b))
			}
		case cBitmap:
			for lw := lw0; lw < lw1; lw++ {
				w := ct.words[lw]
				wb := bitBase + lw*wordBits
				for w != 0 {
					fn(wb + bits.TrailingZeros64(w))
					w &= w - 1
				}
			}
		case cRun:
			for _, r := range ct.runs {
				rs, re, ok := clipRun(r, lw0, lw1)
				if !ok {
					continue
				}
				for b := rs; b <= re; b++ {
					fn(bitBase + b)
				}
			}
		}
	})
}

// AndInto stores (c AND u) into dst, overwriting every word of dst, and
// returns dst. dst must have the same length; dst may alias u.
func (c *Compressed) AndInto(u, dst *Vector) *Vector {
	c.mustMatch(u)
	c.mustMatch(dst)
	for ci := range c.cs {
		ct := &c.cs[ci]
		base := ci * containerWords
		cw := c.wordsInContainer(ci)
		switch ct.kind {
		case cEmpty:
			for w := base; w < base+cw; w++ {
				dst.words[w] = 0
			}
		case cBitmap:
			for lw := 0; lw < cw; lw++ {
				dst.words[base+lw] = ct.words[lw] & u.words[base+lw]
			}
		case cArray:
			for w := base; w < base+cw; w++ {
				dst.words[w] = 0
			}
			for _, b := range ct.arr {
				w := base + int(b)/wordBits
				dst.words[w] |= u.words[w] & (1 << uint(b%wordBits))
			}
		case cRun:
			// Build the run mask word by word over a zeroed span. Runs are
			// disjoint and sorted, so |= accumulates without overlap.
			for w := base; w < base+cw; w++ {
				dst.words[w] = 0
			}
			for _, r := range ct.runs {
				rs, re := int(r.start), int(r.last)
				w0, w1 := rs/wordBits, re/wordBits
				for wi := w0; wi <= w1; wi++ {
					m := ^uint64(0)
					if wi == w0 {
						m &= maskFrom(rs % wordBits)
					}
					if wi == w1 {
						m &= maskUpTo(re % wordBits)
					}
					dst.words[base+wi] |= u.words[base+wi] & m
				}
			}
		}
	}
	return dst
}

// Dense materializes the set as a freshly allocated dense Vector.
func (c *Compressed) Dense() *Vector {
	v := New(c.n)
	for ci := range c.cs {
		ct := &c.cs[ci]
		base := ci * containerWords
		switch ct.kind {
		case cBitmap:
			copy(v.words[base:], ct.words)
		case cArray:
			for _, b := range ct.arr {
				v.words[base+int(b)/wordBits] |= 1 << uint(b%wordBits)
			}
		case cRun:
			for _, r := range ct.runs {
				rs, re := int(r.start), int(r.last)
				w0, w1 := rs/wordBits, re/wordBits
				for wi := w0; wi <= w1; wi++ {
					m := ^uint64(0)
					if wi == w0 {
						m &= maskFrom(rs % wordBits)
					}
					if wi == w1 {
						m &= maskUpTo(re % wordBits)
					}
					v.words[base+wi] |= m
				}
			}
		}
	}
	return v
}

// ContainerStats summarizes a Compressed set's encoding mix and footprint.
type ContainerStats struct {
	Array, Bitmap, Run, Empty int
	// Bytes is the payload footprint of the chosen encodings; DenseBytes is
	// what the equivalent dense Vector's words would occupy.
	Bytes, DenseBytes int64
}

// Stats returns the container mix and byte footprint of the set.
func (c *Compressed) Stats() ContainerStats {
	var s ContainerStats
	s.DenseBytes = int64(c.NumWords()) * 8
	for ci := range c.cs {
		switch c.cs[ci].kind {
		case cArray:
			s.Array++
			s.Bytes += int64(len(c.cs[ci].arr)) * 2
		case cBitmap:
			s.Bitmap++
			s.Bytes += int64(len(c.cs[ci].words)) * 8
		case cRun:
			s.Run++
			s.Bytes += int64(len(c.cs[ci].runs)) * 4
		default:
			s.Empty++
		}
	}
	return s
}

func (c *Compressed) mustMatch(u *Vector) {
	if c.n != u.n {
		panic("bitvec: length mismatch between compressed and dense operands")
	}
}
