package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/hierarchy"
)

func TestItemShapleySumsToDivergence(t *testing.T) {
	tab, o, hs := fixture(t, 2000, 21)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := range rep.Subgroups {
		sg := &rep.Subgroups[i]
		if len(sg.Itemset) < 2 {
			continue
		}
		phi, err := ItemShapley(tab, o, sg.Itemset)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range phi {
			sum += v
		}
		if math.Abs(sum-sg.Divergence) > 1e-9 {
			t.Fatalf("Shapley sum %v != divergence %v for %v", sum, sg.Divergence, sg.Itemset)
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no multi-item subgroups to check")
	}
}

func TestItemShapleyIdentifiesDriver(t *testing.T) {
	// In the planted fixture, divergence needs both x>7 and g=g1; each item
	// should receive a substantial positive share.
	tab, o, hs := fixture(t, 4000, 22)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Top()
	if len(top.Itemset) < 2 {
		t.Skipf("top subgroup has %d items", len(top.Itemset))
	}
	phi, err := ItemShapley(tab, o, top.Itemset)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range phi {
		if v <= 0 {
			t.Errorf("item %v got non-positive Shapley %v", top.Itemset[i], v)
		}
	}
}

func TestItemShapleySingleItem(t *testing.T) {
	tab, o, hs := fixture(t, 1000, 23)
	_ = hs
	it := hierarchy.ContinuousItem("x", 7, math.Inf(1))
	phi, err := ItemShapley(tab, o, hierarchy.Itemset{it})
	if err != nil {
		t.Fatal(err)
	}
	want := o.DivergenceOf(it.Rows(tab))
	if math.Abs(phi[0]-want) > 1e-12 {
		t.Errorf("single-item Shapley %v != divergence %v", phi[0], want)
	}
}

func TestItemShapleyErrors(t *testing.T) {
	tab, o, _ := fixture(t, 200, 24)
	if _, err := ItemShapley(tab, o, nil); err == nil {
		t.Error("empty itemset should fail")
	}
	dup := hierarchy.Itemset{
		hierarchy.ContinuousItem("x", 0, 5),
		hierarchy.ContinuousItem("x", 5, 10),
	}
	if _, err := ItemShapley(tab, o, dup); err == nil {
		t.Error("duplicate attribute should fail")
	}
	long := make(hierarchy.Itemset, 21)
	for i := range long {
		long[i] = hierarchy.ContinuousItem("x", float64(i), float64(i+1))
	}
	if _, err := ItemShapley(tab, o, long); err == nil {
		t.Error("overlong itemset should fail")
	}
}

func TestPValueAndSignificant(t *testing.T) {
	tab, o, hs := fixture(t, 3000, 25)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Top()
	if p := top.PValue(); p > 1e-6 {
		t.Errorf("planted subgroup p = %v, want tiny", p)
	}
	sig := rep.Significant(0.05)
	if len(sig) == 0 {
		t.Fatal("no significant subgroups")
	}
	if len(sig) > len(rep.Subgroups) {
		t.Fatal("more significant than total")
	}
	// The planted subgroup must survive screening, and tighter alpha must
	// not admit more subgroups.
	if sig[0].Itemset.String() != top.Itemset.String() {
		t.Error("top subgroup lost by FDR screening")
	}
	if len(rep.Significant(0.001)) > len(sig) {
		t.Error("tighter alpha admitted more subgroups")
	}
}

func TestLatticeNavigation(t *testing.T) {
	tab, o, hs := fixture(t, 2000, 26)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var sg *Subgroup
	for i := range rep.Subgroups {
		if len(rep.Subgroups[i].Itemset) == 2 {
			sg = &rep.Subgroups[i]
			break
		}
	}
	if sg == nil {
		t.Fatal("no length-2 subgroup")
	}
	parents := rep.Parents(sg)
	// Both length-1 generalizations are frequent (support is antimonotone),
	// so both must be present.
	if len(parents) != 2 {
		t.Fatalf("parents = %d, want 2", len(parents))
	}
	for _, p := range parents {
		if len(p.Itemset) != 1 {
			t.Error("parent has wrong length")
		}
		if p.Support < sg.Support {
			t.Error("parent support below child support")
		}
		// sg must appear among the parent's children.
		found := false
		for _, c := range rep.Children(p) {
			if c.Itemset.String() == sg.Itemset.String() {
				found = true
			}
		}
		if !found {
			t.Error("child missing from parent's Children")
		}
	}
	// Children of sg are supersets with one more item.
	for _, c := range rep.Children(sg) {
		if len(c.Itemset) != 3 || c.Support > sg.Support+1e-12 {
			t.Error("bad child")
		}
	}
}

func TestReportJSON(t *testing.T) {
	tab, o, hs := fixture(t, 1000, 27)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Global    float64 `json:"global"`
		NumRows   int     `json:"num_rows"`
		Subgroups []struct {
			Itemset    string  `json:"itemset"`
			Support    float64 `json:"support"`
			Divergence float64 `json:"divergence"`
			PValue     float64 `json:"p_value"`
		} `json:"subgroups"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumRows != rep.NumRows || back.Global != rep.Global {
		t.Error("JSON header mismatch")
	}
	if len(back.Subgroups) != len(rep.Subgroups) {
		t.Fatal("JSON subgroup count mismatch")
	}
	if back.Subgroups[0].Itemset != rep.Subgroups[0].Itemset.String() {
		t.Error("JSON itemset mismatch")
	}
}

func TestReportCSV(t *testing.T) {
	tab, o, hs := fixture(t, 1000, 28)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Subgroups)+1 {
		t.Fatalf("CSV lines = %d, want %d", len(lines), len(rep.Subgroups)+1)
	}
	if !strings.HasPrefix(lines[0], "itemset,support,count") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestTopKDiverse(t *testing.T) {
	tab, o, hs := fixture(t, 3000, 29)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := rep.TopKDiverse(tab, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverse) == 0 || len(diverse) > 5 {
		t.Fatalf("diverse = %d", len(diverse))
	}
	// The first diverse subgroup is always the report's top.
	if diverse[0].Itemset.String() != rep.Top().Itemset.String() {
		t.Error("diverse selection must start from the top subgroup")
	}
	// Pairwise Jaccard must respect the bound.
	for i := range diverse {
		ri := diverse[i].Itemset.Rows(tab)
		for j := i + 1; j < len(diverse); j++ {
			rj := diverse[j].Itemset.Rows(tab)
			inter := ri.AndCount(rj)
			union := ri.Count() + rj.Count() - inter
			if union > 0 && float64(inter)/float64(union) > 0.5 {
				t.Fatalf("subgroups %d and %d overlap beyond the bound", i, j)
			}
		}
	}
	// Plain TopK(5) contains near-duplicates of the top subgroup; diverse
	// selection must differ from it whenever duplicates exist.
	plain := rep.TopK(5)
	if len(plain) == 5 && len(diverse) == 5 {
		same := true
		for i := range plain {
			if plain[i].Itemset.String() != diverse[i].Itemset.String() {
				same = false
			}
		}
		if same {
			t.Log("diverse == plain top-5 (acceptable but unusual for this fixture)")
		}
	}
	if _, err := rep.TopKDiverse(tab, 0, 0.5); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := rep.TopKDiverse(tab, 3, 1.0); err == nil {
		t.Error("maxJaccard=1 should fail")
	}
}

func TestFilterClosed(t *testing.T) {
	tab, o, hs := fixture(t, 2000, 30)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	closed := rep.FilterClosed()
	if len(closed) == 0 || len(closed) > len(rep.Subgroups) {
		t.Fatalf("closed = %d of %d", len(closed), len(rep.Subgroups))
	}
	// Every non-closed subgroup must have a same-count refinement in the
	// report; every closed one must not.
	closedKeys := map[string]bool{}
	for i := range closed {
		closedKeys[closed[i].Itemset.String()] = true
	}
	for i := range rep.Subgroups {
		sg := &rep.Subgroups[i]
		hasEqualChild := false
		for j := range rep.Subgroups {
			cand := &rep.Subgroups[j]
			if len(cand.ItemIdx) == len(sg.ItemIdx)+1 &&
				cand.Count == sg.Count && containsAll(cand.ItemIdx, sg.ItemIdx) {
				hasEqualChild = true
				break
			}
		}
		if hasEqualChild == closedKeys[sg.Itemset.String()] {
			t.Fatalf("closedness wrong for %v", sg.Itemset)
		}
	}
	// The maximum divergence is preserved: the top subgroup's row set
	// survives (possibly as a refinement with identical rows and hence
	// identical divergence).
	best := 0.0
	for i := range closed {
		if v := math.Abs(closed[i].Divergence); v > best {
			best = v
		}
	}
	if best+1e-12 < rep.MaxAbsDivergence() {
		t.Errorf("closed filtering lost max divergence: %v < %v", best, rep.MaxAbsDivergence())
	}
}

func TestEvaluateItemsets(t *testing.T) {
	tab, o, hs := fixture(t, 2000, 31)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Identity: evaluating the mined patterns on the same table reproduces
	// the report's numbers exactly.
	var pats []hierarchy.Itemset
	for _, sg := range rep.TopK(10) {
		pats = append(pats, sg.Itemset)
	}
	got, err := EvaluateItemsets(tab, o, pats)
	if err != nil {
		t.Fatal(err)
	}
	for i, sg := range rep.TopK(10) {
		if got[i].Count != sg.Count || math.Abs(got[i].Divergence-sg.Divergence) > 1e-12 ||
			math.Abs(got[i].T-sg.T) > 1e-12 {
			t.Fatalf("evaluation differs from report for %v", sg.Itemset)
		}
	}
	// Drift: on a fresh snapshot (different seed, same generator) the same
	// patterns stay evaluable and the planted anomaly stays divergent.
	tab2, o2, _ := fixture(t, 2000, 32)
	got2, err := EvaluateItemsets(tab2, o2, pats[:1])
	if err != nil {
		t.Fatal(err)
	}
	if got2[0].Divergence < 0.1 {
		t.Errorf("planted anomaly lost on new snapshot: Δ=%v", got2[0].Divergence)
	}
}

func TestEvaluateItemsetsErrors(t *testing.T) {
	tab, o, _ := fixture(t, 200, 33)
	bad := hierarchy.Itemset{
		hierarchy.ContinuousItem("x", 0, 5),
		hierarchy.ContinuousItem("x", 5, 9),
	}
	if _, err := EvaluateItemsets(tab, o, []hierarchy.Itemset{bad}); err == nil {
		t.Error("invalid itemset should fail")
	}
	missing := hierarchy.Itemset{hierarchy.ContinuousItem("nope", 0, 1)}
	if _, err := EvaluateItemsets(tab, o, []hierarchy.Itemset{missing}); err == nil {
		t.Error("missing attribute should fail")
	}
	shortOutcome := outcomeOfLen(t, 5)
	if _, err := EvaluateItemsets(tab, shortOutcome, nil); err == nil {
		t.Error("outcome length mismatch should fail")
	}
	// Empty subgroup: zero support, NaN statistic, no error.
	empty := hierarchy.Itemset{hierarchy.ContinuousItem("x", 1e9, 2e9)}
	got, err := EvaluateItemsets(tab, o, []hierarchy.Itemset{empty})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Count != 0 || !math.IsNaN(got[0].Statistic) {
		t.Errorf("empty subgroup = %+v", got[0])
	}
}

func TestDrift(t *testing.T) {
	tab1, o1, hs := fixture(t, 2500, 40)
	rep, err := Explore(tab1, Config{Outcome: o1, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var pats []hierarchy.Itemset
	for _, sg := range rep.TopK(8) {
		pats = append(pats, sg.Itemset)
	}
	before, err := EvaluateItemsets(tab1, o1, pats)
	if err != nil {
		t.Fatal(err)
	}
	tab2, o2, _ := fixture(t, 2500, 41)
	after, err := EvaluateItemsets(tab2, o2, pats)
	if err != nil {
		t.Fatal(err)
	}
	drift, err := Drift(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != len(pats) {
		t.Fatalf("drift entries = %d", len(drift))
	}
	for i := 1; i < len(drift); i++ {
		if math.Abs(drift[i].DivergenceShift) > math.Abs(drift[i-1].DivergenceShift)+1e-12 {
			t.Fatal("drift not sorted by |shift|")
		}
	}
	for _, d := range drift {
		if math.Abs(d.DivergenceShift-(d.After.Divergence-d.Before.Divergence)) > 1e-12 {
			t.Fatal("shift arithmetic wrong")
		}
	}
	// Error paths.
	if _, err := Drift(before, after[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	swapped := append([]Subgroup(nil), after...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := Drift(before, swapped); err == nil {
		t.Error("pattern mismatch should fail")
	}
}

func TestCovering(t *testing.T) {
	tab, o, hs := fixture(t, 2000, 42)
	rep, err := Explore(tab, Config{Outcome: o, Hierarchies: hs, MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a row inside the planted anomaly (x>7, g=g1).
	x := tab.Floats("x")
	g := tab.Codes("g")
	g1 := tab.LevelCode("g", "g1")
	row := -1
	for i := range x {
		if x[i] > 8 && g[i] == g1 {
			row = i
			break
		}
	}
	if row < 0 {
		t.Fatal("no anomalous row found")
	}
	covering := rep.Covering(tab, row)
	if len(covering) == 0 {
		t.Fatal("anomalous row covered by no subgroup")
	}
	// Exhaustive check: exactly the subgroups whose row set contains row.
	want := 0
	for i := range rep.Subgroups {
		if rep.Subgroups[i].Itemset.Rows(tab).Get(row) {
			want++
		}
	}
	if len(covering) != want {
		t.Fatalf("Covering = %d subgroups, want %d", len(covering), want)
	}
	// The most divergent covering subgroup should be strongly positive for
	// an anomaly member.
	if covering[0].Divergence < 0.2 {
		t.Errorf("top covering divergence = %v", covering[0].Divergence)
	}
	// Order preserved.
	for i := 1; i < len(covering); i++ {
		if math.Abs(covering[i].Divergence) > math.Abs(covering[i-1].Divergence)+1e-12 {
			t.Fatal("covering not in report order")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range row should panic")
		}
	}()
	rep.Covering(tab, tab.NumRows())
}
