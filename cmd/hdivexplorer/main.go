// Command hdivexplorer runs H-DivExplorer on a CSV file.
//
// The CSV must contain the feature columns plus the columns naming the
// ground truth and (for classification statistics) the model prediction.
// Example:
//
//	hdivexplorer -data compas.csv -actual recid -predicted pred \
//	    -stat fpr -s 0.05 -st 0.1 -top 15
//
// For a numeric statistic (e.g. income divergence):
//
//	hdivexplorer -data census.csv -target income -stat numeric -s 0.05
//
// Observability: -explain prints a query-level cost-attribution profile
// (per-stage self/cumulative time and allocations, mining counters,
// shard balance, budget consumption) to stderr and -explain-json writes
// it to a file; -trace prints the raw span tree with per-stage wall time
// and allocation deltas to stderr, -trace-json writes the
// machine-readable spans+counters snapshot to a file, -trace-chrome
// writes a Chrome/Perfetto trace_event file (load it at
// ui.perfetto.dev), -progress prints a live mining progress ticker to
// stderr, and -cpuprofile/-memprofile capture runtime/pprof profiles of
// the run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	hdiv "repro"
)

// cliConfig holds every flag value for one invocation.
type cliConfig struct {
	dataPath, actualCol, predCol, targetCol  string
	stat, criterion, mode, algorithm, format string
	stats                                    string
	s, st, minT                              float64
	polarity                                 bool
	maxLen, top, workers, shards             int
	budgetCandidates, budgetItemsets         int
	budgetDeadline                           time.Duration
	budgetHeap                               uint64
	trace, progress, explain                 bool
	traceJSON, traceChrome, explainJSON      string
	cpuProfile, memProfile                   string

	stdout, stderr io.Writer // test injection points; default os.Stdout/Stderr
}

// usageError marks an invalid flag value; main exits with status 2 for
// these (invalid invocation) versus 1 for runtime failures.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func main() {
	var c cliConfig
	flag.StringVar(&c.dataPath, "data", "", "input CSV file (required)")
	flag.StringVar(&c.actualCol, "actual", "", "ground-truth boolean column (true/1 = positive)")
	flag.StringVar(&c.predCol, "predicted", "", "prediction boolean column")
	flag.StringVar(&c.targetCol, "target", "", "numeric target column (for -stat numeric)")
	flag.StringVar(&c.stat, "stat", "error", "statistic: fpr, fnr, error, accuracy, numeric")
	flag.StringVar(&c.stats, "stats", "", "comma-separated statistics computed in one mining pass (overrides -stat); the first drives discretization")
	flag.Float64Var(&c.s, "s", 0.05, "exploration support threshold")
	flag.Float64Var(&c.st, "st", 0.1, "tree discretization support threshold")
	flag.StringVar(&c.criterion, "criterion", "divergence", "tree split criterion: divergence or entropy")
	flag.StringVar(&c.mode, "mode", "hierarchical", "exploration mode: hierarchical or base")
	flag.StringVar(&c.algorithm, "algorithm", "fpgrowth", "miner: fpgrowth or apriori")
	flag.BoolVar(&c.polarity, "polarity", false, "enable polarity pruning")
	flag.IntVar(&c.maxLen, "maxlen", 0, "max itemset length (0 = unlimited)")
	flag.IntVar(&c.top, "top", 20, "number of subgroups to print")
	flag.Float64Var(&c.minT, "mint", 0, "only print subgroups with |t| at least this")
	flag.StringVar(&c.format, "format", "text", "output format: text, csv or json")
	flag.IntVar(&c.workers, "workers", 0, "parallel mining goroutines (0 = serial)")
	flag.IntVar(&c.shards, "shards", 0, "row shards for the mining data plane (0 = automatic)")
	flag.IntVar(&c.budgetCandidates, "budget-candidates", 0, "cap on evaluated itemset candidates (0 = unlimited); exhaustion truncates the report")
	flag.IntVar(&c.budgetItemsets, "budget-itemsets", 0, "cap on frequent itemsets kept (0 = unlimited); exhaustion truncates the report")
	flag.DurationVar(&c.budgetDeadline, "budget-deadline", 0, "soft mining deadline (0 = none); expiry truncates the report instead of failing")
	flag.Uint64Var(&c.budgetHeap, "budget-heap-bytes", 0, "heap watermark that truncates mining (0 = off)")
	flag.BoolVar(&c.explain, "explain", false, "print the query cost-attribution profile (stage times, allocations, shard balance, budget use) to stderr")
	flag.StringVar(&c.explainJSON, "explain-json", "", "write the explain profile as JSON to this file")
	flag.BoolVar(&c.trace, "trace", false, "print the pipeline span tree and counters to stderr")
	flag.BoolVar(&c.progress, "progress", false, "print a live mining progress line to stderr every 500ms")
	flag.StringVar(&c.traceJSON, "trace-json", "", "write the trace snapshot as JSON to this file")
	flag.StringVar(&c.traceChrome, "trace-chrome", "", "write a Chrome/Perfetto trace_event file (open at ui.perfetto.dev)")
	flag.StringVar(&c.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&c.memProfile, "memprofile", "", "write a heap profile to this file")
	flag.Parse()
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "hdivexplorer:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(c cliConfig) error {
	if c.stdout == nil {
		c.stdout = os.Stdout
	}
	if c.stderr == nil {
		c.stderr = os.Stderr
	}
	if c.dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	if c.workers < 0 {
		return usageError{fmt.Sprintf("-workers must be >= 0 (got %d)", c.workers)}
	}
	if c.shards < 0 {
		return usageError{fmt.Sprintf("-shards must be >= 0 (got %d)", c.shards)}
	}
	if c.budgetCandidates < 0 || c.budgetItemsets < 0 || c.budgetDeadline < 0 {
		return usageError{"-budget-* values must be >= 0"}
	}
	if err := hdiv.ArmFaultsFromEnv(); err != nil {
		return usageError{err.Error()}
	}
	if c.s <= 0 || c.s > 1 {
		return usageError{fmt.Sprintf("-s must be a support fraction in (0, 1] (got %v)", c.s)}
	}
	if c.st <= 0 || c.st > 1 {
		return usageError{fmt.Sprintf("-st must be a support fraction in (0, 1] (got %v)", c.st)}
	}
	statList, err := parseStatList(c.stat, c.stats)
	if err != nil {
		return err
	}

	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var tracer *hdiv.Tracer
	if c.trace || c.traceJSON != "" || c.traceChrome != "" || c.explain || c.explainJSON != "" {
		// -explain creates the tracer too, so the profile covers parsing
		// and discretization alongside the exploration stages.
		tracer = hdiv.NewTracer()
	}

	tab, err := hdiv.ReadCSVFile(c.dataPath, hdiv.CSVOptions{Tracer: tracer})
	if err != nil {
		return err
	}

	outs := make([]*hdiv.Outcome, len(statList))
	var exclude []string
	seenExclude := map[string]bool{}
	for i, stat := range statList {
		o, exc, err := buildOutcome(tab, stat, c.actualCol, c.predCol, c.targetCol)
		if err != nil {
			return err
		}
		outs[i] = o
		for _, e := range exc {
			if !seenExclude[e] {
				seenExclude[e] = true
				exclude = append(exclude, e)
			}
		}
	}

	opt := hdiv.PipelineOptions{
		TreeSupport:   c.st,
		MinSupport:    c.s,
		MaxLen:        c.maxLen,
		PolarityPrune: c.polarity,
		Workers:       c.workers,
		Shards:        c.shards,
		ResourceBudget: hdiv.Budget{
			MaxCandidates: c.budgetCandidates,
			MaxItemsets:   c.budgetItemsets,
			SoftDeadline:  c.budgetDeadline,
			MaxHeapBytes:  c.budgetHeap,
		},
		Exclude: exclude,
		Explain: c.explain || c.explainJSON != "",
		Tracer:  tracer,
	}
	switch strings.ToLower(c.criterion) {
	case "divergence":
		opt.Criterion = hdiv.DivergenceGain
	case "entropy":
		opt.Criterion = hdiv.EntropyGain
	default:
		return fmt.Errorf("unknown criterion %q", c.criterion)
	}
	switch strings.ToLower(c.mode) {
	case "hierarchical":
		opt.Mode = hdiv.Hierarchical
	case "base":
		opt.Mode = hdiv.Base
	default:
		return fmt.Errorf("unknown mode %q", c.mode)
	}
	switch strings.ToLower(c.algorithm) {
	case "fpgrowth", "fp-growth":
		opt.Algorithm = hdiv.FPGrowth
	case "apriori":
		opt.Algorithm = hdiv.Apriori
	default:
		return fmt.Errorf("unknown algorithm %q", c.algorithm)
	}

	var prog *hdiv.Progress
	if c.progress {
		prog = hdiv.NewProgress()
		opt.Progress = prog
	}
	stopProgress := startProgressTicker(c.stderr, prog)
	var reps []*hdiv.Report
	if len(outs) == 1 {
		var rep *hdiv.Report
		rep, err = hdiv.Pipeline(tab, outs[0], opt)
		reps = []*hdiv.Report{rep}
	} else {
		var b *hdiv.OutcomeBundle
		b, err = hdiv.NewOutcomeBundle(outs...)
		if err == nil {
			reps, err = hdiv.PipelineMulti(tab, b, opt)
		}
	}
	stopProgress()
	if err != nil {
		return err
	}

	if err := emitTrace(c, reps[0].Trace); err != nil {
		return err
	}
	if err := emitExplain(c, reps[0].Explain); err != nil {
		return err
	}
	if c.memProfile != "" {
		f, err := os.Create(c.memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("writing heap profile: %w", err)
		}
	}

	switch strings.ToLower(c.format) {
	case "json":
		if len(reps) == 1 {
			raw, err := json.MarshalIndent(reps[0], "", "  ")
			if err != nil {
				return err
			}
			_, err = c.stdout.Write(append(raw, '\n'))
			return err
		}
		type statReport struct {
			Stat   string       `json:"stat"`
			Report *hdiv.Report `json:"report"`
		}
		arr := make([]statReport, len(reps))
		for i, rep := range reps {
			arr[i] = statReport{Stat: statList[i], Report: rep}
		}
		raw, err := json.MarshalIndent(arr, "", "  ")
		if err != nil {
			return err
		}
		_, err = c.stdout.Write(append(raw, '\n'))
		return err
	case "csv":
		for i, rep := range reps {
			if len(reps) > 1 {
				fmt.Fprintf(c.stdout, "# stat=%s\n", statList[i])
			}
			if err := rep.WriteCSV(c.stdout); err != nil {
				return err
			}
		}
		return nil
	case "text":
		for i, rep := range reps {
			if len(reps) > 1 {
				if i > 0 {
					fmt.Fprintln(c.stdout)
				}
				fmt.Fprintf(c.stdout, "== statistic: %s ==\n", statList[i])
			}
			emitText(c, rep, outs[i])
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", c.format)
	}
}

// emitText prints the human-readable report (the default -format).
func emitText(c cliConfig, rep *hdiv.Report, o *hdiv.Outcome) {
	fmt.Fprintf(c.stdout, "dataset: %d rows, %d items explored, %s=%.4f overall\n",
		rep.NumRows, rep.NumItems, o.Name, rep.Global)
	fmt.Fprintf(c.stdout, "frequent subgroups: %d (mining %v)\n", len(rep.Subgroups), rep.Elapsed)
	fmt.Fprintf(c.stdout, "mining: %d candidates, %d pruned by support, %d pruned by polarity\n",
		rep.Mining.Candidates, rep.Mining.PrunedSupport, rep.Mining.PrunedPolarity)
	if rep.Truncated {
		fmt.Fprintf(c.stdout, "NOTE: exploration truncated (budget exhausted: %s); subgroups shown are correctly scored but the lattice was not fully explored\n",
			rep.Exhausted)
	}
	fmt.Fprintln(c.stdout)
	if c.minT > 0 {
		filtered := rep.FilterMinT(c.minT)
		top := c.top
		if top > len(filtered) {
			top = len(filtered)
		}
		for _, sg := range filtered[:top] {
			fmt.Fprintln(c.stdout, sg.String())
		}
		return
	}
	fmt.Fprint(c.stdout, rep.Table(c.top))
}

// parseStatList resolves -stat / -stats into the ordered statistic list:
// -stats, when set, overrides -stat and may name several comma-separated
// statistics computed in one mining pass.
func parseStatList(stat, stats string) ([]string, error) {
	if stats == "" {
		return []string{stat}, nil
	}
	seen := map[string]bool{}
	var list []string
	for _, s := range strings.Split(stats, ",") {
		s = strings.ToLower(strings.TrimSpace(s))
		if s == "" {
			continue
		}
		if seen[s] {
			return nil, usageError{fmt.Sprintf("-stats names %q twice", s)}
		}
		seen[s] = true
		list = append(list, s)
	}
	if len(list) == 0 {
		return nil, usageError{"-stats must name at least one statistic"}
	}
	return list, nil
}

// startProgressTicker prints one progress line to w every 500ms while
// the pipeline runs. The returned stop function halts the ticker and
// prints a final line, so -progress always produces at least one line
// even for runs shorter than the tick interval.
func startProgressTicker(w io.Writer, prog *hdiv.Progress) (stop func()) {
	if prog == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				printProgress(w, prog.Snapshot())
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		printProgress(w, prog.Snapshot())
	}
}

func printProgress(w io.Writer, s hdiv.ProgressSnapshot) {
	fmt.Fprintf(w, "progress: level=%d candidates=%d pruned=%d frequent=%d elapsed=%dms\n",
		s.Level, s.Candidates, s.Pruned, s.Frequent, s.ElapsedMS)
}

// emitTrace writes the trace per -trace (human tree on stderr),
// -trace-json (snapshot file) and -trace-chrome (Chrome/Perfetto
// trace_event file).
func emitTrace(c cliConfig, tr *hdiv.Trace) error {
	if tr == nil {
		return nil
	}
	if c.trace {
		fmt.Fprint(c.stderr, tr.Tree())
	}
	if c.traceJSON != "" {
		f, err := os.Create(c.traceJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			return fmt.Errorf("writing trace JSON: %w", err)
		}
	}
	if c.traceChrome != "" {
		f, err := os.Create(c.traceChrome)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			return fmt.Errorf("writing Chrome trace: %w", err)
		}
	}
	return nil
}

// emitExplain writes the cost-attribution profile per -explain (aligned
// table on stderr) and -explain-json (JSON file).
func emitExplain(c cliConfig, ex *hdiv.Explain) error {
	if ex == nil {
		return nil
	}
	if c.explain {
		fmt.Fprint(c.stderr, ex.Text())
	}
	if c.explainJSON != "" {
		f, err := os.Create(c.explainJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ex.WriteJSON(f); err != nil {
			return fmt.Errorf("writing explain JSON: %w", err)
		}
	}
	return nil
}

// buildOutcome assembles the statistic and the label columns to exclude
// from the exploration itself. The heavy lifting lives in
// hdiv.BuildStatistic so the CLI and the HTTP server resolve statistics
// identically.
func buildOutcome(tab *hdiv.Table, stat, actualCol, predCol, targetCol string) (*hdiv.Outcome, []string, error) {
	return hdiv.BuildStatistic(tab, stat, actualCol, predCol, targetCol)
}
