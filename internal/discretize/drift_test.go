package discretize

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSDriftIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSDrift(a, a); d != 0 {
		t.Errorf("KSDrift(a, a) = %g, want 0", d)
	}
}

func TestKSDriftDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSDrift(a, b); d != 1 {
		t.Errorf("KSDrift(disjoint) = %g, want 1", d)
	}
}

func TestKSDriftKnownValue(t *testing.T) {
	// CDFs: a jumps at 1,2,3,4 (steps of 1/4); b jumps at 3,4,5,6.
	// Just after 2, Fa = 1/2 and Fb = 0.
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	if d := KSDrift(a, b); math.Abs(d-0.5) > 1e-15 {
		t.Errorf("KSDrift = %g, want 0.5", d)
	}
}

func TestKSDriftSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 200)
	b := make([]float64, 57)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()*2 + 1
	}
	if d1, d2 := KSDrift(a, b), KSDrift(b, a); d1 != d2 {
		t.Errorf("asymmetric: %g vs %g", d1, d2)
	}
}

func TestKSDriftIgnoresNaN(t *testing.T) {
	nan := math.NaN()
	a := []float64{1, nan, 2, 3, nan}
	b := []float64{nan, 1, 2, 3}
	if d := KSDrift(a, b); d != 0 {
		t.Errorf("KSDrift with NaNs = %g, want 0", d)
	}
}

func TestKSDriftDegenerate(t *testing.T) {
	if d := KSDrift(nil, []float64{1, 2}); d != 0 {
		t.Errorf("empty a: %g, want 0", d)
	}
	if d := KSDrift([]float64{1}, nil); d != 0 {
		t.Errorf("empty b: %g, want 0", d)
	}
	if d := KSDrift([]float64{math.NaN()}, []float64{1}); d != 0 {
		t.Errorf("all-NaN a: %g, want 0", d)
	}
}

func TestKSDriftSameDistributionSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 5000)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	if d := KSDrift(a, b); d > 0.1 {
		t.Errorf("same-uniform KS = %g, want small", d)
	}
}
