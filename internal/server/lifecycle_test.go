package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	hdiv "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// postAppend POSTs a row batch to /v1/datasets/{name}/rows.
func postAppend(t *testing.T, h http.Handler, name, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/datasets/"+name+"/rows", strings.NewReader(body)))
	return rec
}

// quietBatch builds an append body matching anomalyTable's generation
// pattern (x = i%100, alternating correct labels, no anomaly), so the
// appended rows sit inside the dataset's distribution and pass the
// incremental drift policy.
func quietBatch(n, offset int) string {
	var rows []string
	for i := 0; i < n; i++ {
		x := (offset + i) % 100
		y := "false"
		if (offset+i)%2 == 0 {
			y = "true"
		}
		rows = append(rows, fmt.Sprintf(`[%d,%q,%q]`, x, y, y))
	}
	return `{"columns":["x","y","p"],"rows":[` + strings.Join(rows, ",") + `]}`
}

// anomalousBatch builds rows concentrated in the x > 80 tail with every
// prediction wrong — appended on top of a clean dataset it creates a
// divergent subgroup that was not there before.
func anomalousBatch(n int) string {
	var rows []string
	for i := 0; i < n; i++ {
		x := 81 + i%19
		y := "false"
		p := "true"
		if i%2 == 0 {
			y, p = p, y
		}
		rows = append(rows, fmt.Sprintf(`[%d,%q,%q]`, x, y, p))
	}
	return `{"columns":["x","y","p"],"rows":[` + strings.Join(rows, ",") + `]}`
}

// cleanTable is anomalyTable without the anomaly: every prediction
// matches the label, so no subgroup diverges at epoch 1.
func cleanTable(t *testing.T) *hdiv.Table {
	t.Helper()
	n := 600
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 100)
		y[i] = "false"
		if i%2 == 0 {
			y[i] = "true"
		}
	}
	return hdiv.NewTableBuilder().
		AddFloat("x", x).
		AddCategorical("y", y).
		AddCategorical("p", append([]string(nil), y...)).
		MustBuild()
}

// datasetEpoch reads one dataset's epoch and row count from
// GET /v1/datasets.
func datasetEpoch(t *testing.T, h http.Handler, name string) (uint64, int) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/datasets", nil))
	if rec.Code != 200 {
		t.Fatalf("datasets: %d %s", rec.Code, rec.Body.String())
	}
	var infos []struct {
		Name  string `json:"name"`
		Rows  int    `json:"rows"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Name == name {
			return info.Epoch, info.Rows
		}
	}
	t.Fatalf("dataset %q not in reply", name)
	return 0, 0
}

// TestAppendLifecycleEpochPin walks the live-dataset lifecycle over
// HTTP: an append bumps the epoch and row count, current explorations
// see the new rows, an epoch-pinned exploration replays the pre-append
// reply byte for byte, a future epoch is rejected and an uncached pinned
// epoch answers 410 Gone.
func TestAppendLifecycleEpochPin(t *testing.T) {
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv"}

	before := postExplore(t, s, req)
	if before.Code != 200 {
		t.Fatalf("epoch-1 explore: %d %s", before.Code, before.Body.String())
	}
	if got := before.Header().Get("X-Dataset-Epoch"); got != "1" {
		t.Errorf("epoch-1 explore: X-Dataset-Epoch %q, want 1", got)
	}

	rec := postAppend(t, s, "anomaly", quietBatch(30, 600))
	if rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}
	var ap appendReply
	if err := json.Unmarshal(rec.Body.Bytes(), &ap); err != nil {
		t.Fatal(err)
	}
	if ap.Epoch != 2 || ap.Rows != 30 || ap.TotalRows != 630 {
		t.Errorf("append reply = %+v, want epoch 2, 30 rows, 630 total", ap)
	}
	if epoch, rows := datasetEpoch(t, s, "anomaly"); epoch != 2 || rows != 630 {
		t.Errorf("datasets reply: epoch %d rows %d, want 2/630", epoch, rows)
	}

	after := postExplore(t, s, req)
	if after.Code != 200 {
		t.Fatalf("epoch-2 explore: %d %s", after.Code, after.Body.String())
	}
	if got := after.Header().Get("X-Dataset-Epoch"); got != "2" {
		t.Errorf("epoch-2 explore: X-Dataset-Epoch %q, want 2", got)
	}

	// The pinned replay answers from the retained epoch-1 entry,
	// byte-identical to the pre-append reply.
	pinned := req
	pinned.Epoch = 1
	repin := postExplore(t, s, pinned)
	if repin.Code != 200 {
		t.Fatalf("pinned explore: %d %s", repin.Code, repin.Body.String())
	}
	if got := repin.Header().Get("X-Dataset-Epoch"); got != "1" {
		t.Errorf("pinned explore: X-Dataset-Epoch %q, want 1", got)
	}
	if !bytes.Equal(repin.Body.Bytes(), before.Body.Bytes()) {
		t.Errorf("pinned epoch-1 reply differs from the original:\npinned:\n%s\noriginal:\n%s",
			repin.Body.Bytes(), before.Body.Bytes())
	}

	future := req
	future.Epoch = 99
	if rec := postExplore(t, s, future); rec.Code != http.StatusBadRequest {
		t.Errorf("future epoch: status %d, want 400", rec.Code)
	}

	// A pinned epoch whose universe was never built (fpr at epoch 1) is
	// gone — pins replay cached snapshots, they never rebuild history.
	gone := pinned
	gone.Stat = "fpr"
	if rec := postExplore(t, s, gone); rec.Code != http.StatusGone {
		t.Errorf("uncached pinned epoch: status %d %s, want 410", rec.Code, rec.Body.String())
	}
}

// lifecyclePeriod is the cycle length of lifecycleTable's row pattern.
// Tables and batches sized in whole multiples of it have identical
// per-column joint distributions, so the supervised discretizer picks
// the same cutpoints on a prefix as on the full table and the
// incremental append path is byte-equivalent to a from-scratch build.
const lifecyclePeriod = 400

// lifecycleTable builds the equivalence fixture: a continuous column, a
// categorical column with one rare level (sparse enough for a compressed
// container in the universe), an x-tail anomaly, and one missing value
// per cycle. Every column is a pure function of i % lifecyclePeriod.
func lifecycleTable(t *testing.T, n int) *hdiv.Table {
	t.Helper()
	x := make([]float64, n)
	c := make([]string, n)
	y := make([]string, n)
	p := make([]string, n)
	for i := 0; i < n; i++ {
		j := i % lifecyclePeriod
		x[i] = float64(j%128) + float64(j%7)/8
		switch {
		case j%200 == 0:
			c[i] = "rare"
		case j%3 == 0:
			c[i] = "b"
		default:
			c[i] = "a"
		}
		y[i] = "false"
		if j%2 == 0 {
			y[i] = "true"
		}
		p[i] = y[i]
		if x[i] > 100 && j%4 != 0 {
			if p[i] == "true" {
				p[i] = "false"
			} else {
				p[i] = "true"
			}
		}
		// One missing value per cycle exercises the null path through
		// the append JSON without perturbing the distribution.
		if j == 5 {
			x[i] = math.NaN()
		}
	}
	return hdiv.NewTableBuilder().
		AddFloat("x", x).
		AddCategorical("c", c).
		AddCategorical("y", y).
		AddCategorical("p", p).
		MustBuild()
}

// batchFromTable renders rows [lo,hi) of a table as an append body.
func batchFromTable(t *testing.T, tab *hdiv.Table, lo, hi int) string {
	t.Helper()
	type cols struct {
		names []string
		rows  [][]any
	}
	b := cols{rows: make([][]any, hi-lo)}
	for _, f := range tab.Fields() {
		b.names = append(b.names, f.Name)
	}
	for i := lo; i < hi; i++ {
		row := make([]any, 0, len(b.names))
		for _, name := range b.names {
			if tab.KindOf(name) == hdiv.Categorical {
				row = append(row, tab.Levels(name)[tab.Codes(name)[i]])
			} else if v := tab.Floats(name)[i]; math.IsNaN(v) {
				row = append(row, nil)
			} else {
				row = append(row, v)
			}
		}
		b.rows[i-lo] = row
	}
	raw, err := json.Marshal(map[string]any{"columns": b.names, "rows": b.rows})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestAppendEquivalenceRebuild is the lifecycle equivalence property: a
// server that grew its dataset by appending the last 10% of rows over
// HTTP answers every exploration byte-identically (ranked CSV and the
// deterministic explain profile) to a server loaded with the full table
// from the start, across worker/shard settings, with the incremental
// universe-maintenance path proven to have run.
func TestAppendEquivalenceRebuild(t *testing.T) {
	const n = 8000
	full := lifecycleTable(t, n)
	prefixRows := n - n/10
	// Whole cycles only: the byte-equality below depends on the prefix,
	// the appended batch and the full table sharing one distribution.
	if n%lifecyclePeriod != 0 || prefixRows%lifecyclePeriod != 0 {
		t.Fatalf("n=%d and prefix=%d must be multiples of lifecyclePeriod=%d", n, prefixRows, lifecyclePeriod)
	}
	prefix := lifecycleTable(t, n)
	// Rebuild the prefix table from the same generator, truncated: the
	// builder copies its inputs, so slicing the full table's columns is
	// not possible — regenerate and cut instead.
	prefix = prefixTable(t, prefix, prefixRows)

	grown := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "d", Table: prefix}}, MaxInFlight: 8})
	fresh := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "d", Table: full}}, MaxInFlight: 8})

	// Warm the epoch-1 universe so the append has a prior entry to grow.
	warm := ExploreRequest{Dataset: "d", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1}
	if rec := postExplore(t, grown, warm); rec.Code != 200 {
		t.Fatalf("warm explore: %d %s", rec.Code, rec.Body.String())
	}
	if rec := postAppend(t, grown, "d", batchFromTable(t, full, prefixRows, n)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}

	for _, cfg := range []struct{ workers, shards int }{{0, 0}, {4, 0}, {0, 3}, {4, 3}} {
		name := fmt.Sprintf("w%d_s%d", cfg.workers, cfg.shards)
		req := ExploreRequest{
			Dataset: "d", Stat: "error", Actual: "y", Predicted: "p",
			S: 0.05, ST: 0.1, Format: "csv",
			Workers: cfg.workers, Shards: cfg.shards,
		}
		g := postExplore(t, grown, req)
		f := postExplore(t, fresh, req)
		if g.Code != 200 || f.Code != 200 {
			t.Fatalf("%s: grown %d, fresh %d", name, g.Code, f.Code)
		}
		if !bytes.Equal(g.Body.Bytes(), f.Body.Bytes()) {
			t.Errorf("%s: appended dataset's CSV differs from from-scratch build:\ngrown:\n%s\nfresh:\n%s",
				name, g.Body.Bytes(), f.Body.Bytes())
		}

		// The deterministic slice of the explain profile (stage tree,
		// candidate/itemset counts, universe stats) must agree too.
		exReq := req
		exReq.Format = ""
		exReq.Explain = true
		ge := deterministicExplain(t, postExplore(t, grown, exReq))
		fe := deterministicExplain(t, postExplore(t, fresh, exReq))
		if !reflect.DeepEqual(ge, fe) {
			gj, _ := json.Marshal(ge)
			fj, _ := json.Marshal(fe)
			t.Errorf("%s: deterministic explain differs:\ngrown: %s\nfresh: %s", name, gj, fj)
		}
	}

	if got := grown.tracer.Snapshot().Counter(obs.CtrServerUniverseIncremental); got < 1 {
		t.Errorf("incremental universe builds = %d, want >= 1 — the equivalence was tested against the full-rebuild path only", got)
	}
}

// prefixTable cuts a generated table down to its first rows rows by
// re-building from the column data.
func prefixTable(t *testing.T, tab *hdiv.Table, rows int) *hdiv.Table {
	t.Helper()
	b := hdiv.NewTableBuilder()
	for _, f := range tab.Fields() {
		if f.Kind == hdiv.Categorical {
			codes := tab.Codes(f.Name)
			levels := tab.Levels(f.Name)
			vals := make([]string, rows)
			for i := 0; i < rows; i++ {
				vals[i] = levels[codes[i]]
			}
			b.AddCategorical(f.Name, vals)
		} else {
			b.AddFloat(f.Name, append([]float64(nil), tab.Floats(f.Name)[:rows]...))
		}
	}
	return b.MustBuild()
}

// deterministicExplain decodes a JSON explore reply's explain profile
// and strips its measured fields.
func deterministicExplain(t *testing.T, rec *httptest.ResponseRecorder) *obs.Explain {
	t.Helper()
	if rec.Code != 200 {
		t.Fatalf("explain explore: %d %s", rec.Code, rec.Body.String())
	}
	var rep struct {
		Explain *obs.Explain `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Explain == nil {
		t.Fatal("reply carries no explain profile")
	}
	return rep.Explain.Deterministic()
}

// TestFaultAppendParseAtomic arms the append parse failpoint and proves
// the append is atomic: the request is rejected 400, the epoch and row
// count are untouched, and the identical batch succeeds once the fault
// clears.
func TestFaultAppendParseAtomic(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	body := quietBatch(20, 600)

	if err := faultinject.Arm(faultinject.SiteAppendParse, "error(injected parse fault)"); err != nil {
		t.Fatal(err)
	}
	rec := postAppend(t, s, "anomaly", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("faulted append: status %d %s, want 400", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "injected parse fault") {
		t.Errorf("400 body does not name the fault: %q", rec.Body.String())
	}
	if epoch, rows := datasetEpoch(t, s, "anomaly"); epoch != 1 || rows != 600 {
		t.Errorf("rejected append changed state: epoch %d rows %d, want 1/600", epoch, rows)
	}

	// Malformed bodies are equally atomic, fault machinery aside.
	for _, bad := range []string{`{"columns":["x","y","p"],"rows":[[1,"true"]]}`, `not json`} {
		if rec := postAppend(t, s, "anomaly", bad); rec.Code != http.StatusBadRequest {
			t.Errorf("bad body %q: status %d, want 400", bad, rec.Code)
		}
	}
	if epoch, rows := datasetEpoch(t, s, "anomaly"); epoch != 1 || rows != 600 {
		t.Errorf("malformed appends changed state: epoch %d rows %d, want 1/600", epoch, rows)
	}

	faultinject.Reset()
	if rec := postAppend(t, s, "anomaly", body); rec.Code != 200 {
		t.Fatalf("append after reset: %d %s", rec.Code, rec.Body.String())
	}
	if epoch, rows := datasetEpoch(t, s, "anomaly"); epoch != 2 || rows != 620 {
		t.Errorf("append after reset: epoch %d rows %d, want 2/620", epoch, rows)
	}
}

// TestFaultAppendIncrementalFallsBack errors the incremental
// universe-append failpoint: the exploration after an append must
// degrade to a full re-discretization (counted as such) and still answer
// 200; with the fault cleared the next epoch takes the incremental path.
func TestFaultAppendIncrementalFallsBack(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, Config{Datasets: []DatasetConfig{{Name: "anomaly", Table: anomalyTable(t)}}})
	req := ExploreRequest{Dataset: "anomaly", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1, Format: "csv"}

	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("epoch-1 explore: %d %s", rec.Code, rec.Body.String())
	}
	// A full 0..99 cycle keeps per-column KS drift near zero, so the
	// append qualifies for the incremental path and only the injected
	// fault decides which build runs.
	if rec := postAppend(t, s, "anomaly", quietBatch(100, 600)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}

	if err := faultinject.Arm(faultinject.SiteUniverseAppend, "error(injected append fault)"); err != nil {
		t.Fatal(err)
	}
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("explore under append fault: %d %s", rec.Code, rec.Body.String())
	}
	snap := s.tracer.Snapshot()
	if got := snap.Counter(obs.CtrServerUniverseIncremental); got != 0 {
		t.Errorf("incremental builds = %d under fault, want 0", got)
	}
	if got := snap.Counter(obs.CtrServerUniverseRediscretized); got != 1 {
		t.Errorf("rediscretized builds = %d under fault, want 1", got)
	}

	faultinject.Reset()
	if rec := postAppend(t, s, "anomaly", quietBatch(100, 700)); rec.Code != 200 {
		t.Fatalf("second append: %d %s", rec.Code, rec.Body.String())
	}
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("explore after reset: %d %s", rec.Code, rec.Body.String())
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrServerUniverseIncremental); got != 1 {
		t.Errorf("incremental builds after reset = %d, want 1", got)
	}
}

// TestFaultDriftReminePanicContained panics the background drift
// re-mine: the panic must stay inside the monitor goroutine (recorded on
// the watch, counted), the daemon must keep serving, and a later healthy
// epoch bump must re-mine successfully.
func TestFaultDriftReminePanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := newTestServer(t, Config{
		Datasets:      []DatasetConfig{{Name: "clean", Table: cleanTable(t)}},
		DriftT:        2,
		DriftDebounce: time.Millisecond,
	})
	req := ExploreRequest{Dataset: "clean", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1}
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("baseline explore: %d %s", rec.Code, rec.Body.String())
	}

	if err := faultinject.Arm(faultinject.SiteDriftRemine, "panic(injected remine panic)"); err != nil {
		t.Fatal(err)
	}
	if rec := postAppend(t, s, "clean", quietBatch(30, 600)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}

	reply := awaitDrift(t, s, "clean", func(d driftReply) bool { return d.LastError != "" })
	if !strings.Contains(reply.LastError, "injected remine panic") {
		t.Errorf("drift last_error = %q, want the injected panic", reply.LastError)
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrServerPanics); got < 1 {
		t.Error("remine panic was not counted")
	}
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Errorf("daemon stopped serving after remine panic: %d", rec.Code)
	}

	faultinject.Reset()
	if rec := postAppend(t, s, "clean", quietBatch(30, 630)); rec.Code != 200 {
		t.Fatalf("append after reset: %d %s", rec.Code, rec.Body.String())
	}
	reply = awaitDrift(t, s, "clean", func(d driftReply) bool {
		return d.LastError == "" && d.BaselineEpoch == 3
	})
	if reply.BaselineEpoch != 3 {
		t.Errorf("baseline epoch = %d after recovery, want 3", reply.BaselineEpoch)
	}
}

// awaitDrift polls GET /v1/drift/{name} until done(reply) or a deadline.
func awaitDrift(t *testing.T, s *Server, name string, done func(driftReply) bool) driftReply {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last driftReply
	for time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/drift/"+name, nil))
		if rec.Code != 200 {
			t.Fatalf("drift: %d %s", rec.Code, rec.Body.String())
		}
		// Decode into a zero value: fields omitted by omitempty (a
		// cleared last_error, say) must not inherit a prior poll's state.
		last = driftReply{}
		if err := json.Unmarshal(rec.Body.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
		if done(last) {
			return last
		}
		time.Sleep(25 * time.Millisecond)
	}
	raw, _ := json.Marshal(last)
	t.Fatalf("drift condition not reached before deadline; last reply: %s", raw)
	return last
}

// TestDriftMonitorDetectsCrossing appends an anomalous batch onto a
// clean dataset and waits for the debounced re-mine to report subgroups
// whose |t| crossed the threshold.
func TestDriftMonitorDetectsCrossing(t *testing.T) {
	s := newTestServer(t, Config{
		Datasets:      []DatasetConfig{{Name: "clean", Table: cleanTable(t)}},
		DriftT:        2,
		DriftDebounce: time.Millisecond,
	})
	req := ExploreRequest{Dataset: "clean", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1}
	if rec := postExplore(t, s, req); rec.Code != 200 {
		t.Fatalf("baseline explore: %d %s", rec.Code, rec.Body.String())
	}
	if d := awaitDrift(t, s, "clean", func(d driftReply) bool { return d.Watching }); d.BaselineEpoch != 1 {
		t.Fatalf("baseline epoch = %d, want 1", d.BaselineEpoch)
	}

	// 150 mispredicted rows concentrated in the x > 80 tail: the tail
	// subgroup's error rate leaps while the global rate stays moderate.
	if rec := postAppend(t, s, "clean", anomalousBatch(150)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}

	reply := awaitDrift(t, s, "clean", func(d driftReply) bool { return len(d.Events) > 0 })
	ev := reply.Events[0]
	if ev.Direction != "crossed_up" {
		t.Errorf("event direction = %q, want crossed_up", ev.Direction)
	}
	if ev.FromEpoch != 1 || ev.ToEpoch != 2 {
		t.Errorf("event epochs = %d -> %d, want 1 -> 2", ev.FromEpoch, ev.ToEpoch)
	}
	if math.Abs(ev.TAfter) < 2 {
		t.Errorf("crossed-up event has |t_after| = %v below the threshold", math.Abs(ev.TAfter))
	}
	if reply.BaselineEpoch != 2 {
		t.Errorf("baseline epoch after remine = %d, want 2", reply.BaselineEpoch)
	}
	if reply.WindowEvents < 1 {
		t.Errorf("window events = %d, want >= 1", reply.WindowEvents)
	}
	snap := s.tracer.Snapshot()
	if snap.Counter(obs.CtrServerDriftRemines) < 1 || snap.Counter(obs.CtrServerDriftEvents) < 1 {
		t.Errorf("drift counters: remines=%d events=%d, want >= 1 each",
			snap.Counter(obs.CtrServerDriftRemines), snap.Counter(obs.CtrServerDriftEvents))
	}
}

// TestCacheStaleEviction proves eviction prefers stale-epoch entries
// over the plain LRU tail: with the cache full, an append that outdates
// the most-recently-used entry makes it the victim, and the
// least-recently-used current-epoch entry survives.
func TestCacheStaleEviction(t *testing.T) {
	s := newTestServer(t, Config{
		Datasets: []DatasetConfig{
			{Name: "a", Table: anomalyTable(t)},
			{Name: "b", Table: anomalyTable(t)},
		},
		CacheMax: 2,
	})
	reqA := ExploreRequest{Dataset: "a", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1}
	reqB := ExploreRequest{Dataset: "b", Stat: "error", Actual: "y", Predicted: "p", S: 0.05, ST: 0.1}

	// LRU order after these: front = a@1 (most recent), back = b@1.
	if rec := postExplore(t, s, reqB); rec.Code != 200 {
		t.Fatalf("explore b: %d", rec.Code)
	}
	if rec := postExplore(t, s, reqA); rec.Code != 200 {
		t.Fatalf("explore a: %d", rec.Code)
	}

	// The append outdates a@1 — now the MRU entry is the stale one.
	if rec := postAppend(t, s, "a", quietBatch(20, 600)); rec.Code != 200 {
		t.Fatalf("append: %d %s", rec.Code, rec.Body.String())
	}

	// Overflowing the cache must evict stale a@1, not LRU-tail b@1.
	reqB2 := reqB
	reqB2.Stat = "fpr"
	if rec := postExplore(t, s, reqB2); rec.Code != 200 {
		t.Fatalf("explore b/fpr: %d", rec.Code)
	}

	snap := s.tracer.Snapshot()
	if got := snap.Counter(obs.CtrServerCacheStaleEvictions); got != 1 {
		t.Errorf("stale evictions = %d, want 1", got)
	}
	hitsBefore := snap.Counter(obs.CtrServerCacheHits)
	if rec := postExplore(t, s, reqB); rec.Code != 200 {
		t.Fatalf("re-explore b: %d", rec.Code)
	}
	if got := s.tracer.Snapshot().Counter(obs.CtrServerCacheHits); got != hitsBefore+1 {
		t.Errorf("b@1 did not survive the stale-preferring eviction (hits %d -> %d)", hitsBefore, got)
	}
}
