package hierarchy

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func inf() float64 { return math.Inf(1) }

func TestContinuousItemMatching(t *testing.T) {
	it := ContinuousItem("age", 25, 45) // (25, 45]
	cases := []struct {
		v    float64
		want bool
	}{
		{25, false}, {25.0001, true}, {45, true}, {45.0001, false}, {30, true},
		{math.NaN(), false},
	}
	for _, c := range cases {
		if got := it.MatchesFloat(c.v); got != c.want {
			t.Errorf("MatchesFloat(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if it.MatchesCode(0) {
		t.Error("continuous item should not match codes")
	}
}

func TestItemString(t *testing.T) {
	cases := []struct {
		it   *Item
		want string
	}{
		{ContinuousItem("age", math.Inf(-1), 27), "age≤27"},
		{ContinuousItem("age", 27, inf()), "age>27"},
		{ContinuousItem("age", 25, 32), "age=(25-32]"},
		{ContinuousItem("age", math.Inf(-1), inf()), "age=*"},
		{CategoricalItem("sex", "sex=Male", 0), "sex=Male"},
	}
	for _, c := range cases {
		if got := c.it.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestCategoricalItemDedup(t *testing.T) {
	it := CategoricalItem("x", "x=g", 3, 1, 3, 2)
	want := []int{1, 2, 3}
	if len(it.Codes) != 3 {
		t.Fatalf("Codes = %v, want %v", it.Codes, want)
	}
	for i := range want {
		if it.Codes[i] != want[i] {
			t.Fatalf("Codes = %v, want %v", it.Codes, want)
		}
	}
	if !it.MatchesCode(2) || it.MatchesCode(0) {
		t.Error("MatchesCode wrong")
	}
	if it.MatchesFloat(1) {
		t.Error("categorical item should not match floats")
	}
}

func TestSubsumesItem(t *testing.T) {
	outer := ContinuousItem("a", 0, 10)
	inner := ContinuousItem("a", 2, 5)
	if !outer.SubsumesItem(inner) {
		t.Error("outer should subsume inner")
	}
	if inner.SubsumesItem(outer) {
		t.Error("inner should not subsume outer")
	}
	if !outer.SubsumesItem(outer) {
		t.Error("subsumption should be reflexive")
	}
	otherAttr := ContinuousItem("b", 2, 5)
	if outer.SubsumesItem(otherAttr) {
		t.Error("different attributes never subsume")
	}
	g := CategoricalItem("c", "g", 1, 2, 3)
	l := CategoricalItem("c", "l", 2)
	if !g.SubsumesItem(l) || l.SubsumesItem(g) {
		t.Error("categorical subsumption wrong")
	}
}

func sampleTable(t *testing.T) *dataset.Table {
	t.Helper()
	return dataset.NewBuilder().
		AddFloat("age", []float64{20, 30, 40, 50, math.NaN()}).
		AddCategorical("occ", []string{"MGR-Sales", "MGR-Fin", "MED-Dent", "MGR-Sales", "MED-Nurse"}).
		MustBuild()
}

func TestItemRows(t *testing.T) {
	tab := sampleTable(t)
	it := ContinuousItem("age", 25, 45)
	rows := it.Rows(tab)
	if got := rows.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Rows = %v, want [1 2]", got)
	}
	mgr := CategoricalItem("occ", "occ=MGR", tab.LevelCode("occ", "MGR-Sales"), tab.LevelCode("occ", "MGR-Fin"))
	if got := mgr.Rows(tab).Indices(); len(got) != 3 {
		t.Errorf("MGR rows = %v, want 3 rows", got)
	}
}

func TestItemsetValidAndRows(t *testing.T) {
	tab := sampleTable(t)
	a := ContinuousItem("age", 25, 45)
	b := CategoricalItem("occ", "occ=MGR-Fin", tab.LevelCode("occ", "MGR-Fin"))
	s := Itemset{a, b}
	if !s.Valid() {
		t.Error("itemset should be valid")
	}
	dup := Itemset{a, ContinuousItem("age", 0, 10)}
	if dup.Valid() {
		t.Error("two items on same attribute should be invalid")
	}
	rows := s.Rows(tab)
	if got := rows.Indices(); len(got) != 1 || got[0] != 1 {
		t.Errorf("itemset rows = %v, want [1]", got)
	}
	empty := Itemset{}
	if empty.Rows(tab).Count() != tab.NumRows() {
		t.Error("empty itemset should cover all rows")
	}
}

func TestItemsetStringSorted(t *testing.T) {
	s := Itemset{ContinuousItem("b", 0, 1), ContinuousItem("a", 1, inf())}
	if got := s.String(); got != "a>1, b=(0-1]" {
		t.Errorf("String = %q", got)
	}
}

func buildAgeHierarchy() *Hierarchy {
	h := NewRooted("age", ContinuousItem("age", math.Inf(-1), inf()))
	left := h.AddChild(0, ContinuousItem("age", math.Inf(-1), 35))
	h.AddChild(0, ContinuousItem("age", 35, inf()))
	h.AddChild(left, ContinuousItem("age", math.Inf(-1), 25))
	h.AddChild(left, ContinuousItem("age", 25, 35))
	return h
}

func TestHierarchyStructure(t *testing.T) {
	h := buildAgeHierarchy()
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(h.Items()) != 4 {
		t.Errorf("Items = %d, want 4", len(h.Items()))
	}
	leaves := h.LeafItems()
	if len(leaves) != 3 {
		t.Errorf("LeafItems = %d, want 3", len(leaves))
	}
	if h.Depth(0) != 0 || h.Depth(1) != 1 || h.Depth(3) != 2 {
		t.Error("Depth wrong")
	}
	anc := h.Ancestors(3)
	if len(anc) != 2 || anc[0] != 1 || anc[1] != 0 {
		t.Errorf("Ancestors(3) = %v", anc)
	}
	if !h.IsLeaf(2) || h.IsLeaf(1) {
		t.Error("IsLeaf wrong")
	}
	if !strings.Contains(h.String(), "age≤25") {
		t.Error("String should render nodes")
	}
}

func TestValidateDetectsGap(t *testing.T) {
	h := NewRooted("x", ContinuousItem("x", math.Inf(-1), inf()))
	h.AddChild(0, ContinuousItem("x", math.Inf(-1), 1))
	h.AddChild(0, ContinuousItem("x", 2, inf())) // gap (1,2]
	if err := h.Validate(); err == nil {
		t.Error("gap should fail validation")
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	h := NewRooted("x", ContinuousItem("x", math.Inf(-1), inf()))
	h.AddChild(0, ContinuousItem("x", math.Inf(-1), 2))
	h.AddChild(0, ContinuousItem("x", 1, inf()))
	if err := h.Validate(); err == nil {
		t.Error("overlap should fail validation")
	}
}

func TestValidateDetectsWrongEnds(t *testing.T) {
	h := NewRooted("x", ContinuousItem("x", 0, 10))
	h.AddChild(0, ContinuousItem("x", 0, 5))
	h.AddChild(0, ContinuousItem("x", 5, 9)) // ends short of parent
	if err := h.Validate(); err == nil {
		t.Error("short coverage should fail validation")
	}
}

func TestValidateCategoricalPartition(t *testing.T) {
	h := NewRooted("c", CategoricalItem("c", "all", 0, 1, 2))
	h.AddChild(0, CategoricalItem("c", "g1", 0, 1))
	h.AddChild(0, CategoricalItem("c", "g2", 2))
	if err := h.Validate(); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	bad := NewRooted("c", CategoricalItem("c", "all", 0, 1, 2))
	bad.AddChild(0, CategoricalItem("c", "g1", 0, 1))
	bad.AddChild(0, CategoricalItem("c", "g2", 1, 2)) // duplicate coverage of 1
	if err := bad.Validate(); err == nil {
		t.Error("duplicate code coverage should fail")
	}
	short := NewRooted("c", CategoricalItem("c", "all", 0, 1, 2))
	short.AddChild(0, CategoricalItem("c", "g1", 0))
	if err := short.Validate(); err == nil {
		t.Error("incomplete code coverage should fail")
	}
}

func TestValidateWrongAttribute(t *testing.T) {
	h := NewRooted("a", ContinuousItem("b", math.Inf(-1), inf()))
	if err := h.Validate(); err == nil {
		t.Error("item attr mismatch should fail")
	}
}

func TestValidateOn(t *testing.T) {
	tab := sampleTable(t)
	h := buildAgeHierarchy()
	if err := h.ValidateOn(tab); err != nil {
		t.Fatalf("ValidateOn: %v", err)
	}
}

func TestFlatCategorical(t *testing.T) {
	tab := sampleTable(t)
	h := FlatCategorical(tab, "occ")
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	if len(h.LeafItems()) != 4 {
		t.Errorf("leaf items = %d, want 4 levels", len(h.LeafItems()))
	}
	// Flat: items == leaf items.
	if len(h.Items()) != len(h.LeafItems()) {
		t.Error("flat hierarchy should have no internal items")
	}
}

func TestPathTaxonomy(t *testing.T) {
	tab := sampleTable(t)
	h := PathTaxonomy(tab, "occ", func(level string) []string {
		return []string{strings.SplitN(level, "-", 2)[0]}
	})
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	// Leaves: 4 occupation levels; groups: MGR and MED.
	if got := len(h.LeafItems()); got != 4 {
		t.Errorf("leaves = %d, want 4", got)
	}
	if got := len(h.Items()); got != 6 {
		t.Errorf("items = %d, want 6 (4 leaves + 2 groups)", got)
	}
	// The MGR group must cover all three MGR rows.
	var mgr *Item
	for _, it := range h.Items() {
		if it.Label == "occ=MGR" {
			mgr = it
		}
	}
	if mgr == nil {
		t.Fatal("no MGR group item")
	}
	if mgr.Rows(tab).Count() != 3 {
		t.Errorf("MGR rows = %d, want 3", mgr.Rows(tab).Count())
	}
}

func TestPathTaxonomyCollapsesUnaryGroups(t *testing.T) {
	tab := dataset.NewBuilder().
		AddCategorical("c", []string{"A-1", "A-2", "B-1"}).
		MustBuild()
	h := PathTaxonomy(tab, "c", func(level string) []string {
		return []string{strings.SplitN(level, "-", 2)[0]}
	})
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	// Group B has a single level; it must be collapsed, keeping group A only.
	groups := 0
	for i := range h.Nodes {
		if i != 0 && !h.IsLeaf(i) {
			groups++
		}
	}
	if groups != 1 {
		t.Errorf("internal groups = %d, want 1 (B collapsed)", groups)
	}
}

func TestIPPathTaxonomy(t *testing.T) {
	ips := []string{"118.114.119.88", "118.114.119.2", "118.114.3.1", "118.9.1.1", "10.0.0.1", "10.0.0.2"}
	tab := dataset.NewBuilder().AddCategorical("ip", ips).MustBuild()
	h := PathTaxonomy(tab, "ip", func(ip string) []string {
		parts := strings.Split(ip, ".")
		out := make([]string, 3)
		for i := 1; i <= 3; i++ {
			out[i-1] = strings.Join(parts[:i], ".")
		}
		return out
	})
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	// An address must belong to each of its prefixes.
	var p118, p118114, p118114119 *Item
	for _, it := range h.Items() {
		switch it.Label {
		case "ip=118":
			p118 = it
		case "ip=118.114":
			p118114 = it
		case "ip=118.114.119":
			p118114119 = it
		}
	}
	if p118 == nil || p118114 == nil || p118114119 == nil {
		t.Fatal("missing prefix items")
	}
	if p118.Rows(tab).Count() != 4 || p118114.Rows(tab).Count() != 3 || p118114119.Rows(tab).Count() != 2 {
		t.Errorf("prefix coverage wrong: %d/%d/%d",
			p118.Rows(tab).Count(), p118114.Rows(tab).Count(), p118114119.Rows(tab).Count())
	}
}

func TestIntervalHierarchyFromCuts(t *testing.T) {
	h, err := IntervalHierarchyFromCuts("x", [][]float64{{0}, {-1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Layer 1: x≤0, x>0. Layer 2 refines into x≤-1,(−1,0],(0,1],x>1.
	if got := len(h.LeafItems()); got != 4 {
		t.Errorf("leaves = %d, want 4", got)
	}
	if got := len(h.Items()); got != 6 {
		t.Errorf("items = %d, want 6", got)
	}
}

func TestIntervalHierarchyFromCutsErrors(t *testing.T) {
	if _, err := IntervalHierarchyFromCuts("x", [][]float64{{1, 0}}); err == nil {
		t.Error("unsorted cuts should fail")
	}
	if _, err := IntervalHierarchyFromCuts("x", [][]float64{{0}, {1, 2}}); err == nil {
		t.Error("non-refining layer should fail")
	}
}

func TestSet(t *testing.T) {
	tab := sampleTable(t)
	s := NewSet()
	s.Add(buildAgeHierarchy())
	s.Add(FlatCategorical(tab, "occ"))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Attrs(); len(got) != 2 || got[0] != "age" || got[1] != "occ" {
		t.Errorf("Attrs = %v", got)
	}
	if got := len(s.AllItems()); got != 8 {
		t.Errorf("AllItems = %d, want 8", got)
	}
	if got := len(s.AllLeafItems()); got != 7 {
		t.Errorf("AllLeafItems = %d, want 7", got)
	}
	// Replacing a hierarchy keeps insertion order and count.
	s.Add(buildAgeHierarchy())
	if got := s.Attrs(); len(got) != 2 {
		t.Errorf("Attrs after replace = %v", got)
	}
}

// Property: for a random binary interval hierarchy, every internal node's
// row set equals the disjoint union of its children's row sets.
func TestQuickIntervalPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()*20 - 10
		}
		tab := dataset.NewBuilder().AddFloat("x", vals).MustBuild()

		h := NewRooted("x", ContinuousItem("x", math.Inf(-1), inf()))
		// Randomly split leaves a few times, tracking the items' true
		// (possibly infinite) bounds so children always tile their parent.
		type leaf struct {
			node   int
			lo, hi float64 // the node item's bounds
		}
		leaves := []leaf{{0, math.Inf(-1), inf()}}
		for k := 0; k < 5; k++ {
			i := r.Intn(len(leaves))
			l := leaves[i]
			cutLo, cutHi := math.Max(l.lo, -10), math.Min(l.hi, 10)
			if cutHi-cutLo < 0.5 {
				continue
			}
			cut := cutLo + (cutHi-cutLo)*(0.25+0.5*r.Float64())
			a := h.AddChild(l.node, ContinuousItem("x", l.lo, cut))
			b := h.AddChild(l.node, ContinuousItem("x", cut, l.hi))
			leaves[i] = leaf{a, l.lo, cut}
			leaves = append(leaves, leaf{b, cut, l.hi})
		}
		if err := h.Validate(); err != nil {
			return false
		}
		return h.ValidateOn(tab) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: item subsumption implies row-set containment.
func TestQuickSubsumptionImpliesContainment(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64() * 10
		}
		tab := dataset.NewBuilder().AddFloat("x", vals).MustBuild()
		lo := r.Float64() * 5
		hi := lo + r.Float64()*5
		outer := ContinuousItem("x", lo, hi)
		ilo := lo + r.Float64()*(hi-lo)/2
		ihi := ilo + r.Float64()*(hi-ilo)
		inner := ContinuousItem("x", ilo, ihi)
		if !outer.SubsumesItem(inner) {
			return false
		}
		return inner.Rows(tab).IsSubsetOf(outer.Rows(tab))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddChildPanics(t *testing.T) {
	h := NewRooted("x", ContinuousItem("x", math.Inf(-1), inf()))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad parent index")
		}
	}()
	h.AddChild(5, ContinuousItem("x", 0, 1))
}

func TestValidateEmptyHierarchy(t *testing.T) {
	h := &Hierarchy{Attr: "x"}
	if err := h.Validate(); err == nil {
		t.Error("empty hierarchy should fail validation")
	}
}

func TestCategoricalSortedCodesInvariant(t *testing.T) {
	// CategoricalItem must keep codes sorted for MatchesCode's binary search.
	it := CategoricalItem("c", "g", 9, 3, 7, 1)
	if !sort.IntsAreSorted(it.Codes) {
		t.Error("codes not sorted")
	}
	for _, c := range []int{1, 3, 7, 9} {
		if !it.MatchesCode(c) {
			t.Errorf("MatchesCode(%d) = false", c)
		}
	}
}

func TestRebindAcrossDictionaries(t *testing.T) {
	// Two tables with the same levels in different first-appearance order.
	t1 := dataset.NewBuilder().
		AddCategorical("g", []string{"a", "b", "c", "a"}).
		MustBuild()
	t2 := dataset.NewBuilder().
		AddCategorical("g", []string{"c", "a", "b", "b"}).
		MustBuild()
	h := FlatCategorical(t1, "g")
	for _, it := range h.Items() {
		r1 := it.Rows(t1).Count()
		bound := it.Rebind(t2)
		// The rebound item must cover exactly the rows of t2 whose level
		// name matches, not the rows whose code happens to coincide.
		want := 0
		codes2, levels2 := t2.Codes("g"), t2.Levels("g")
		for _, c := range codes2 {
			for _, name := range it.Names {
				if levels2[c] == name {
					want++
				}
			}
		}
		if got := bound.Rows(t2).Count(); got != want {
			t.Errorf("%v rebound covers %d rows of t2, want %d (t1 had %d)", it, got, want, r1)
		}
		// Unrebound evaluation on t2 is generally wrong — that is the bug
		// Rebind exists to fix.
	}
	// A level absent from the target covers no rows.
	t3 := dataset.NewBuilder().AddCategorical("g", []string{"x", "y"}).MustBuild()
	itemA := h.Items()[0]
	if itemA.Rebind(t3).Rows(t3).Count() != 0 {
		t.Error("absent level should cover no rows")
	}
	// Continuous items rebind to themselves.
	ci := ContinuousItem("v", 0, 1)
	if ci.Rebind(t3) != ci {
		t.Error("continuous Rebind should be identity")
	}
	// Nameless categorical items rebind to themselves.
	anon := CategoricalItem("g", "g=?", 0)
	if anon.Rebind(t3) != anon {
		t.Error("nameless Rebind should be identity")
	}
}

func TestNamesSurviveJSON(t *testing.T) {
	tab := sampleTable(t)
	h := FlatCategorical(tab, "occ")
	raw, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hierarchy
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i, it := range back.Items() {
		if len(it.Names) == 0 {
			t.Fatalf("item %d lost names through JSON", i)
		}
	}
}
