package hierarchy

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// cityStateTable builds the canonical FD example: city → state.
func cityStateTable(violations int) *dataset.Table {
	cities := []string{"SF", "LA", "NYC", "Buffalo", "Austin"}
	states := map[string]string{"SF": "CA", "LA": "CA", "NYC": "NY", "Buffalo": "NY", "Austin": "TX"}
	n := 200
	r := rand.New(rand.NewSource(1))
	city := make([]string, n)
	state := make([]string, n)
	for i := 0; i < n; i++ {
		city[i] = cities[r.Intn(len(cities))]
		state[i] = states[city[i]]
	}
	for i := 0; i < violations; i++ {
		state[i] = "TX" // corrupt some rows
	}
	return dataset.NewBuilder().
		AddCategorical("city", city).
		AddCategorical("state", state).
		MustBuild()
}

func TestFDViolationExact(t *testing.T) {
	tab := cityStateTable(0)
	if got := FDViolation(tab, "city", "state"); got != 0 {
		t.Errorf("exact FD violation = %v, want 0", got)
	}
	// state → city does NOT hold (a state has several cities).
	if got := FDViolation(tab, "state", "city"); got == 0 {
		t.Error("reverse dependency should be violated")
	}
}

func TestFromFunctionalDependencyExact(t *testing.T) {
	tab := cityStateTable(0)
	h, err := FromFunctionalDependency(tab, "city", "state", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
	// Leaves: the 5 cities. Groups: CA and NY (TX has a single city and is
	// collapsed).
	if got := len(h.LeafItems()); got != 5 {
		t.Errorf("leaves = %d, want 5", got)
	}
	groups := 0
	var ca *Item
	for i := range h.Nodes {
		if i != 0 && !h.IsLeaf(i) {
			groups++
			if h.Nodes[i].Item.Label == "city=CA" {
				ca = h.Nodes[i].Item
			}
		}
	}
	if groups != 2 {
		t.Errorf("groups = %d, want 2 (CA, NY)", groups)
	}
	if ca == nil {
		t.Fatal("no CA group")
	}
	// The CA group must cover exactly the SF and LA rows.
	caRows := ca.Rows(tab)
	cityCodes := tab.Codes("city")
	sf, la := tab.LevelCode("city", "SF"), tab.LevelCode("city", "LA")
	for i := 0; i < tab.NumRows(); i++ {
		want := cityCodes[i] == sf || cityCodes[i] == la
		if caRows.Get(i) != want {
			t.Fatalf("CA group coverage wrong at row %d", i)
		}
	}
}

func TestFromFunctionalDependencyApproximate(t *testing.T) {
	tab := cityStateTable(10) // 5% corrupted rows
	if _, err := FromFunctionalDependency(tab, "city", "state", 0.01); err == nil {
		t.Error("5% violation should exceed a 1% tolerance")
	}
	h, err := FromFunctionalDependency(tab, "city", "state", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// The hierarchy still partitions (grouping is by majority mapping).
	if err := h.ValidateOn(tab); err != nil {
		t.Fatal(err)
	}
}

func TestFromFunctionalDependencyErrors(t *testing.T) {
	tab := cityStateTable(0)
	if _, err := FromFunctionalDependency(tab, "city", "city", 0); err == nil {
		t.Error("same attribute should fail")
	}
	num := dataset.NewBuilder().
		AddFloat("x", []float64{1, 2}).
		AddCategorical("c", []string{"a", "b"}).
		MustBuild()
	if _, err := FromFunctionalDependency(num, "x", "c", 0); err == nil {
		t.Error("continuous attr should fail")
	}
	if _, err := FromFunctionalDependency(num, "c", "x", 0); err == nil {
		t.Error("continuous byAttr should fail")
	}
}
