// Package sliceline implements the SliceLine baseline (Sagadeeva & Boehm,
// SIGMOD 2021) used in the paper's §VI-G comparison. SliceLine searches the
// lattice of slices for the top-k by the score
//
//	σ(S) = α·(ē_S/ē − 1) − (1−α)·(n/|S| − 1)
//
// where ē_S is the average error in the slice, ē the overall average error,
// |S| the slice size and n the dataset size: α trades the importance of a
// high error rate against slice size. Like base DivExplorer it operates on
// a fixed (leaf-item) discretization with a minimum support threshold; the
// enumeration here reuses the bitset miner, which yields identical slices
// to the original's linear-algebra formulation.
package sliceline

import (
	"fmt"
	"sort"

	"repro/internal/fpm"
	"repro/internal/hierarchy"
	"repro/internal/outcome"
)

// Options configures the search.
type Options struct {
	// Alpha is the error-vs-size weight α ∈ (0, 1] (default 0.95, the
	// reference implementation's default).
	Alpha float64
	// MinSupport is the minimum slice support (default 0.01).
	MinSupport float64
	// K is the number of slices returned (default 10).
	K int
	// MaxLen bounds slice length (default 0 = unlimited).
	MaxLen int
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.95
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 0.01
	}
	if o.K <= 0 {
		o.K = 10
	}
	return o
}

// Slice is one scored slice.
type Slice struct {
	Itemset  hierarchy.Itemset
	ItemIdx  []int
	Count    int
	Support  float64
	AvgError float64
	Score    float64
}

// String renders the slice compactly.
func (s *Slice) String() string {
	return fmt.Sprintf("{%s} sup=%.3f err=%.3f score=%.3f", s.Itemset, s.Support, s.AvgError, s.Score)
}

// TopK returns the k highest-scoring slices over the item universe (use
// leaf items for the faithful baseline).
func TopK(u *fpm.Universe, o *outcome.Outcome, opt Options) ([]Slice, error) {
	opt = opt.withDefaults()
	res, err := fpm.Mine(u, o, fpm.Options{MinSupport: opt.MinSupport, MaxLen: opt.MaxLen})
	if err != nil {
		return nil, err
	}
	globalErr := o.GlobalMean()
	n := float64(u.NumRows)
	slices := make([]Slice, 0, len(res.Itemsets))
	for _, m := range res.Itemsets {
		if m.M.N == 0 {
			continue
		}
		avg := m.M.Mean()
		var ratio float64
		if globalErr > 0 {
			ratio = avg/globalErr - 1
		}
		score := opt.Alpha*ratio - (1-opt.Alpha)*(n/float64(m.Count)-1)
		slices = append(slices, Slice{
			Itemset:  u.Itemset(m.Items),
			ItemIdx:  m.Items,
			Count:    m.Count,
			Support:  m.Support(u.NumRows),
			AvgError: avg,
			Score:    score,
		})
	}
	sort.SliceStable(slices, func(a, b int) bool {
		if slices[a].Score != slices[b].Score {
			return slices[a].Score > slices[b].Score
		}
		return slices[a].Count > slices[b].Count
	})
	if len(slices) > opt.K {
		slices = slices[:opt.K]
	}
	return slices, nil
}
