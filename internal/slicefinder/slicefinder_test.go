package slicefinder

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/discretize"
	"repro/internal/fpm"
	"repro/internal/outcome"
)

// peakUniverse builds the synthetic-peak leaf-item universe used by the
// paper's Figure 6 comparison.
func peakUniverse(t *testing.T, n int) (*fpm.Universe, *outcome.Outcome) {
	t.Helper()
	d := datagen.SyntheticPeak(datagen.Config{N: n, Seed: 1})
	o := outcome.ErrorRate(d.Actual, d.Predicted)
	hs, err := discretize.TreeSet(d.Table, o, discretize.TreeOptions{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return fpm.BaseUniverse(d.Table, hs, o), o
}

func TestDefaultThresholdStopsAtFirstProblematicLevel(t *testing.T) {
	u, o := peakUniverse(t, 5000)
	got := Search(u, o, Options{}) // defaults: T=0.4, K=1
	if len(got) == 0 {
		t.Fatal("no slice found")
	}
	top := got[0]
	if top.EffectSize < 0.4 {
		t.Errorf("top slice effect size %v below threshold", top.EffectSize)
	}
	// BFS stops at the first level containing a problematic slice: no
	// strictly shorter slice may reach the threshold (the paper's Fig. 6a
	// "stops early at a coarse slice" behaviour).
	if len(top.Itemset) > 1 {
		shorter := Search(u, o, Options{MaxLen: len(top.Itemset) - 1, EffectSize: 0.4})
		if len(shorter) != 0 {
			t.Errorf("a shorter slice %v already exceeded the threshold", shorter[0].Itemset)
		}
	}
	// The search never refines a branch past the first problematic slice.
	if len(top.Itemset) >= 3 {
		t.Errorf("default threshold descended to length %d", len(top.Itemset))
	}
}

func TestHighThresholdFindsTinyDeepSlice(t *testing.T) {
	u, o := peakUniverse(t, 5000)
	coarse := Search(u, o, Options{})
	deep := Search(u, o, Options{EffectSize: 1.0})
	if len(deep) == 0 {
		t.Fatal("no slice found at T=1")
	}
	top := deep[0]
	// The T=1 slice must be finer (longer) than the default one and have
	// far smaller support — Slice Finder does not control slice size
	// (Fig. 6b: 13 of 10,000 instances).
	if len(top.Itemset) <= len(coarse[0].Itemset) {
		t.Errorf("T=1 slice %v not finer than default %v", top.Itemset, coarse[0].Itemset)
	}
	if top.Support >= coarse[0].Support {
		t.Errorf("T=1 slice support %v not below default %v", top.Support, coarse[0].Support)
	}
	// The returned slice falls below even the smallest support threshold
	// (0.025) that the DivExplorer experiments enforce — the uncontrolled-
	// size failure mode of Fig. 6b.
	if top.Support >= 0.025 {
		t.Errorf("T=1 slice support %v, want < 0.025", top.Support)
	}
	if top.EffectSize < 1.0 {
		t.Errorf("T=1 slice effect %v below threshold", top.EffectSize)
	}
}

func TestKSlices(t *testing.T) {
	u, o := peakUniverse(t, 3000)
	got := Search(u, o, Options{K: 3, EffectSize: 0.2})
	if len(got) > 3 {
		t.Errorf("K=3 returned %d slices", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].EffectSize > got[i-1].EffectSize {
			t.Error("slices not sorted by effect size")
		}
	}
	for _, s := range got {
		if s.EffectSize < 0.2 {
			t.Errorf("returned non-problematic slice %v", s.String())
		}
	}
}

func TestMinSize(t *testing.T) {
	u, o := peakUniverse(t, 3000)
	got := Search(u, o, Options{EffectSize: 1.0, MinSize: 200})
	for _, s := range got {
		if s.Count < 200 {
			t.Errorf("slice %v below MinSize", s.String())
		}
	}
}

func TestMaxLenBoundsSearch(t *testing.T) {
	u, o := peakUniverse(t, 3000)
	got := Search(u, o, Options{EffectSize: 10, MaxLen: 2}) // unattainable threshold
	if len(got) != 0 {
		t.Errorf("unattainable threshold returned %d slices", len(got))
	}
}

func TestOneItemPerAttribute(t *testing.T) {
	u, o := peakUniverse(t, 3000)
	got := Search(u, o, Options{K: 5, EffectSize: 0.6})
	for _, s := range got {
		seen := map[int]bool{}
		for _, i := range s.ItemIdx {
			if seen[u.AttrID[i]] {
				t.Fatalf("slice %v repeats an attribute", s.Itemset)
			}
			seen[u.AttrID[i]] = true
		}
	}
}

func TestSliceString(t *testing.T) {
	u, o := peakUniverse(t, 2000)
	got := Search(u, o, Options{})
	if len(got) == 0 {
		t.Fatal("no slices")
	}
	s := got[0].String()
	if !strings.Contains(s, "sup=") || !strings.Contains(s, "eff=") {
		t.Errorf("String = %q", s)
	}
}
